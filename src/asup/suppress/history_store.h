#ifndef ASUP_SUPPRESS_HISTORY_STORE_H_
#define ASUP_SUPPRESS_HISTORY_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asup/engine/query.h"
#include "asup/text/document.h"
#include "asup/util/bitvector.h"

namespace asup {

/// Width of the per-document query signature. The paper uses 1000-bit
/// vectors (Section 5.3).
inline constexpr size_t kSignatureBits = 1000;

/// Returns the signature bit of a query: its canonical-string hash mapped
/// into [0, kSignatureBits).
size_t QuerySignatureBit(const KeywordQuery& query);

/// AS-ARBI's record of past (non-virtual) query answers.
///
/// Two structures per the paper: for every returned document, (a) the array
/// of historic queries that returned it, and (b) a 1000-bit vector with one
/// bit set per such query (hash of the query string). The bit vectors give
/// a cheap upper bound for the cover trigger before exact enumeration.
class HistoryStore {
 public:
  /// One historic query and the answer it received from AS-SIMPLE.
  struct HistoricQuery {
    KeywordQuery query;
    /// Returned documents, ascending by id (for O(log) intersection).
    std::vector<DocId> answer;
  };

  HistoryStore() = default;

  /// Records an answered query. Returns its index in the history.
  /// `answer_docs` need not be sorted.
  uint32_t Record(const KeywordQuery& query, std::vector<DocId> answer_docs);

  /// Number of recorded queries.
  size_t NumQueries() const { return queries_.size(); }

  /// The idx-th recorded query.
  const HistoricQuery& QueryAt(size_t idx) const { return queries_[idx]; }

  /// Indices (into the history) of queries whose answers contained `doc`,
  /// or nullptr if no historic query returned it.
  const std::vector<uint32_t>* QueriesReturning(DocId doc) const;

  /// The document's 1000-bit query signature, or nullptr if unseen.
  const BitVector* SignatureOf(DocId doc) const;

  /// Number of documents appearing in at least one recorded answer.
  size_t NumDocumentsSeen() const { return per_doc_.size(); }

 private:
  struct DocHistory {
    std::vector<uint32_t> query_indices;
    BitVector signature{kSignatureBits};
  };

  std::vector<HistoricQuery> queries_;
  std::unordered_map<DocId, DocHistory> per_doc_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_HISTORY_STORE_H_
