#ifndef ASUP_SUPPRESS_COVER_FINDER_H_
#define ASUP_SUPPRESS_COVER_FINDER_H_

#include <cstdint>
#include <vector>

#include "asup/suppress/history_store.h"
#include "asup/text/document.h"

namespace asup {

/// Outcome of the AS-ARBI cover trigger (paper Equation 6).
struct CoverResult {
  bool found = false;
  /// Indices into the HistoryStore of the covering queries (at most m).
  std::vector<uint32_t> query_indices;
};

/// Decides whether a new query's match set can be covered by at most m
/// historic answers:
///
///   |q ∩ (Res(q1) ∪ ... ∪ Res(qu))| >= σ·|q|,  u <= m.
///
/// Two-phase evaluation, as in Section 5.3 of the paper: (1) a cheap upper
/// bound from the per-document 1000-bit query signatures — sum the signature
/// vectors of all matching documents, take the m largest counts, and reject
/// if even that optimistic total misses σ·|q|; (2) exact search over the
/// (small) set of candidate historic queries. For σ = 1 the exact phase is a
/// document-driven depth-first set-cover search of depth <= m; for σ < 1 it
/// is greedy max-coverage with a bounded exhaustive fallback.
class CoverFinder {
 public:
  /// Candidate historic query with the positions (into match_ids) its
  /// answer covers. Public for the internal search helpers.
  struct Candidate {
    uint32_t query_index;
    std::vector<uint32_t> positions;
  };

  /// `history` is borrowed and must outlive the finder. Requires
  /// cover_size >= 1 and cover_ratio in (0, 1].
  CoverFinder(const HistoryStore& history, size_t cover_size,
              double cover_ratio);

  /// Attempts to cover `match_ids` (ascending ids of the documents matching
  /// the new query). Returns not-found for an empty match set.
  CoverResult Find(const std::vector<DocId>& match_ids) const;

  size_t cover_size() const { return cover_size_; }
  double cover_ratio() const { return cover_ratio_; }

 private:
  std::vector<Candidate> GatherCandidates(
      const std::vector<DocId>& match_ids) const;

  bool PassesSignaturePrescreen(const std::vector<DocId>& match_ids,
                                size_t need) const;

  CoverResult ExactCover(const std::vector<Candidate>& candidates,
                         size_t num_positions) const;

  CoverResult GreedyPartialCover(const std::vector<Candidate>& candidates,
                                 size_t num_positions, size_t need) const;

  const HistoryStore* history_;
  size_t cover_size_;
  double cover_ratio_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_COVER_FINDER_H_
