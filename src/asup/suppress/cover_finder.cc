#include "asup/suppress/cover_finder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

CoverFinder::CoverFinder(const HistoryStore& history, size_t cover_size,
                         double cover_ratio)
    : history_(&history), cover_size_(cover_size), cover_ratio_(cover_ratio) {
  ASUP_CHECK(cover_size_ >= 1);
  ASUP_CHECK(cover_ratio_ > 0.0);
  ASUP_CHECK_LE(cover_ratio_, 1.0);
}

bool CoverFinder::PassesSignaturePrescreen(const std::vector<DocId>& match_ids,
                                           size_t need) const {
  // SUM the per-document binary vectors, then check whether the m largest
  // per-bit counts could possibly reach σ·|q|. Each historic query sets one
  // bit, so the count at its bit upper-bounds how many matching documents
  // that query's answer covers (collisions only make the bound looser).
  std::vector<uint32_t> counts(kSignatureBits, 0);
  for (DocId doc : match_ids) {
    const BitVector* signature = history_->SignatureOf(doc);
    if (signature != nullptr) signature->AccumulateInto(counts);
  }
  if (cover_size_ < counts.size()) {
    std::nth_element(counts.begin(), counts.begin() + cover_size_,
                     counts.end(), std::greater<uint32_t>());
    counts.resize(cover_size_);
  }
  uint64_t best_possible = 0;
  for (uint32_t c : counts) best_possible += c;
  return best_possible >= need;
}

std::vector<CoverFinder::Candidate> CoverFinder::GatherCandidates(
    const std::vector<DocId>& match_ids) const {
  std::unordered_map<uint32_t, std::vector<uint32_t>> covers;
  for (uint32_t pos = 0; pos < match_ids.size(); ++pos) {
    const std::vector<uint32_t>* queries =
        history_->QueriesReturning(match_ids[pos]);
    if (queries == nullptr) continue;
    for (uint32_t qi : *queries) covers[qi].push_back(pos);
  }
  std::vector<Candidate> candidates;
  candidates.reserve(covers.size());
  // NOLINTNEXTLINE(asup-unordered-iteration): total sort below canonicalizes
  for (auto& [qi, positions] : covers) {
    candidates.push_back(Candidate{qi, std::move(positions)});
  }
  // Deterministic order (largest coverage first, ties by history index).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.positions.size() != b.positions.size()) {
                return a.positions.size() > b.positions.size();
              }
              return a.query_index < b.query_index;
            });
  return candidates;
}

CoverResult CoverFinder::Find(const std::vector<DocId>& match_ids) const {
  CoverResult result;
  if (match_ids.empty()) return result;
  const size_t need = static_cast<size_t>(
      std::ceil(cover_ratio_ * static_cast<double>(match_ids.size())));
  if (need == 0) return result;

  if (cover_ratio_ >= 1.0) {
    // Full cover requires every matching document to have history.
    for (DocId doc : match_ids) {
      if (history_->QueriesReturning(doc) == nullptr) return result;
    }
  }
  if (!PassesSignaturePrescreen(match_ids, need)) {
    ASUP_METRIC_COUNT("asup_suppress_prescreen_reject_total", 1);
    return result;
  }
  ASUP_METRIC_COUNT("asup_suppress_prescreen_pass_total", 1);

  const std::vector<Candidate> candidates = GatherCandidates(match_ids);
  ASUP_METRIC_OBSERVE_SIZE("asup_suppress_cover_candidates",
                           candidates.size());
  ASUP_TRACE_NOTE("cover_candidates", candidates.size());
  if (candidates.empty()) return result;

  if (cover_ratio_ >= 1.0) {
    return ExactCover(candidates, match_ids.size());
  }
  return GreedyPartialCover(candidates, match_ids.size(), need);
}

namespace {

/// State of the document-driven exact set-cover DFS.
struct ExactSearch {
  const std::vector<CoverFinder::Candidate>* candidates;
  /// candidate indices covering each position.
  std::vector<std::vector<uint32_t>> coverers;
  /// how many chosen candidates currently cover each position.
  std::vector<uint32_t> cover_count;
  std::vector<uint32_t> chosen;
  size_t uncovered;
  size_t max_depth;
  size_t max_candidate_size;
  /// DFS nodes visited — the enumeration size the metrics report.
  size_t nodes = 0;

  bool Dfs() {
    ++nodes;
    if (uncovered == 0) return true;
    if (chosen.size() >= max_depth) return false;
    // Admissible pruning: even perfectly disjoint picks cannot finish.
    if ((max_depth - chosen.size()) * max_candidate_size < uncovered) {
      return false;
    }
    // Branch on the uncovered position with the fewest covering candidates.
    size_t pivot = SIZE_MAX;
    size_t best_options = SIZE_MAX;
    for (size_t pos = 0; pos < cover_count.size(); ++pos) {
      if (cover_count[pos] > 0) continue;
      if (coverers[pos].size() < best_options) {
        best_options = coverers[pos].size();
        pivot = pos;
      }
    }
    if (pivot == SIZE_MAX || best_options == 0) return false;
    for (uint32_t ci : coverers[pivot]) {
      Apply(ci);
      if (Dfs()) return true;
      Undo(ci);
    }
    return false;
  }

  void Apply(uint32_t ci) {
    chosen.push_back(ci);
    for (uint32_t pos : (*candidates)[ci].positions) {
      if (cover_count[pos]++ == 0) --uncovered;
    }
  }

  void Undo(uint32_t ci) {
    chosen.pop_back();
    for (uint32_t pos : (*candidates)[ci].positions) {
      if (--cover_count[pos] == 0) ++uncovered;
    }
  }
};

}  // namespace

CoverResult CoverFinder::ExactCover(const std::vector<Candidate>& candidates,
                                    size_t num_positions) const {
  ExactSearch search;
  search.candidates = &candidates;
  search.coverers.resize(num_positions);
  for (uint32_t ci = 0; ci < candidates.size(); ++ci) {
    for (uint32_t pos : candidates[ci].positions) {
      search.coverers[pos].push_back(ci);
    }
  }
  search.cover_count.assign(num_positions, 0);
  search.uncovered = num_positions;
  search.max_depth = cover_size_;
  search.max_candidate_size = 0;
  for (const Candidate& c : candidates) {
    search.max_candidate_size =
        std::max(search.max_candidate_size, c.positions.size());
  }

  CoverResult result;
  const bool found = search.Dfs();
  ASUP_METRIC_OBSERVE_SIZE("asup_suppress_exact_cover_nodes", search.nodes);
  ASUP_TRACE_NOTE("exact_cover_nodes", search.nodes);
  if (!found) return result;
  // Exact-cover postcondition (σ = 100%): every matching document covered
  // by at most m chosen historic answers.
  ASUP_CHECK_EQ(search.uncovered, 0u);
  ASUP_CHECK_LE(search.chosen.size(), cover_size_);
  result.found = true;
  for (uint32_t ci : search.chosen) {
    result.query_indices.push_back(candidates[ci].query_index);
  }
  return result;
}

CoverResult CoverFinder::GreedyPartialCover(
    const std::vector<Candidate>& candidates, size_t num_positions,
    size_t need) const {
  std::vector<bool> covered(num_positions, false);
  size_t total_covered = 0;
  std::vector<uint32_t> picks;
  for (size_t round = 0; round < cover_size_ && total_covered < need;
       ++round) {
    size_t best = SIZE_MAX;
    size_t best_gain = 0;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      size_t gain = 0;
      for (uint32_t pos : candidates[ci].positions) {
        if (!covered[pos]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = ci;
      }
    }
    if (best == SIZE_MAX || best_gain == 0) break;
    picks.push_back(static_cast<uint32_t>(best));
    for (uint32_t pos : candidates[best].positions) {
      if (!covered[pos]) {
        covered[pos] = true;
        ++total_covered;
      }
    }
  }

  CoverResult result;
  if (total_covered < need) return result;
  // Partial-cover postcondition: ≥ ⌈σ·|Sel(q)|⌉ matching documents covered
  // by at most m historic answers.
  ASUP_CHECK(total_covered >= need);
  ASUP_CHECK_LE(picks.size(), cover_size_);
  result.found = true;
  for (uint32_t ci : picks) {
    result.query_indices.push_back(candidates[ci].query_index);
  }
  return result;
}

}  // namespace asup
