#include "asup/suppress/as_arbi.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "asup/obs/event_log.h"
#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

namespace {

AsSimpleConfig InnerSimpleConfig(const AsArbiConfig& config) {
  AsSimpleConfig inner = config.simple;
  // AS-ARBI caches final answers itself; a second cache inside AS-SIMPLE
  // would never be hit (it only sees AS-ARBI cache misses) and would double
  // the memory footprint.
  inner.cache_answers = false;
  return inner;
}

}  // namespace

AsArbiEngine::AsArbiEngine(MatchingEngine& base, const AsArbiConfig& config)
    : base_(&base),
      config_(config),
      snapshot_(base.PinSnapshot()),
      // The inner engine pins *our* snapshot, not a fresh one: base_ may
      // publish a new epoch between the two pins, and the two engines must
      // never disagree about the corpus.
      simple_(base, InnerSimpleConfig(config), snapshot_),
      finder_(history_, config.cover_size, config.cover_ratio) {
  // Algorithm 2's trigger parameters: cover size m ≥ 1 historic answers,
  // cover ratio σ ∈ (0, 1].
  ASUP_CHECK(config.cover_size >= 1);
  ASUP_CHECK(config.cover_ratio > 0.0);
  ASUP_CHECK_LE(config.cover_ratio, 1.0);
}

AsArbiStats AsArbiEngine::stats() const {
  AsArbiStats snapshot;
  snapshot.queries_processed =
      stats_.queries_processed.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  snapshot.virtual_answers =
      stats_.virtual_answers.load(std::memory_order_relaxed);
  snapshot.simple_answers =
      stats_.simple_answers.load(std::memory_order_relaxed);
  snapshot.trigger_evaluations =
      stats_.trigger_evaluations.load(std::memory_order_relaxed);
  snapshot.epoch_migrations =
      stats_.epoch_migrations.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t AsArbiEngine::StateEpoch() const {
  ReaderLock lock(epoch_mutex_);
  return snapshot_->epoch();
}

void AsArbiEngine::MigrateToCurrentEpoch() {
  MigrateTo(base_->PinSnapshot());
}

bool AsArbiEngine::TriggerPlausible(size_t match_count) const {
  // The cover trigger is only satisfiable when m historic answers (of at
  // most k documents each) can reach σ·|q| documents, so the expensive
  // evaluation is skipped for broad queries — this is why most real
  // (overflowing) queries pay almost nothing for AS-ARBI (Figure 15).
  const double max_coverable =
      static_cast<double>(config_.cover_size * base_->k());
  return config_.cover_ratio * static_cast<double>(match_count) <=
         max_coverable;
}

QueryPrefetch AsArbiEngine::PrefetchMatches(const KeywordQuery& query) const {
  QueryPrefetch prefetch = simple_.PrefetchMatches(query);
  if (prefetch.ranked.total_matches > 0 &&
      TriggerPlausible(prefetch.ranked.total_matches)) {
    // Same snapshot as the ranked matches — a prefetch is one epoch's view.
    prefetch.match_ids = base_->MatchIdsIn(*prefetch.snapshot, query);
    prefetch.has_match_ids = true;
  }
  return prefetch;
}

bool AsArbiEngine::HasCachedAnswer(const KeywordQuery& query) const {
  return config_.cache_answers && answer_cache_.Contains(query.canonical());
}

SearchResult AsArbiEngine::Search(const KeywordQuery& query) {
  return SearchImpl(query, nullptr);
}

SearchResult AsArbiEngine::SearchPrefetched(const KeywordQuery& query,
                                            const QueryPrefetch& prefetch) {
  return SearchImpl(query, &prefetch);
}

SearchResult AsArbiEngine::SearchImpl(const KeywordQuery& query,
                                      const QueryPrefetch* prefetch) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    {
      ReaderLock lock(epoch_mutex_);
      if (snapshot_->epoch() == base_->CurrentEpoch()) {
        return SearchStateLocked(query, prefetch);
      }
    }
    // The corpus moved ahead of the state: migrate, then re-check.
    MigrateTo(base_->PinSnapshot());
  }
}

SearchResult AsArbiEngine::SearchStateLocked(const KeywordQuery& query,
                                             const QueryPrefetch* prefetch) {
  if (config_.cache_answers) {
    SearchResult cached;
    if (answer_cache_.LookupOrClaim(query.canonical(), &cached) ==
        AnswerCache::Claim::kHit) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ASUP_EVENT_EMIT(kCacheHit, query.client_id(), query.hash(),
                      cached.docs.size(), 0);
      return cached;
    }
  }

  // A prefetch computed against a different epoch is stale — its M(q) and
  // match ids reflect the wrong index. Recompute live in that case.
  const bool prefetch_usable =
      prefetch != nullptr &&
      (prefetch->snapshot == nullptr ||
       prefetch->snapshot->epoch() == snapshot_->epoch());

  SearchResult result;
  try {
    result = Process(query, prefetch_usable ? prefetch : nullptr);
  } catch (...) {
    if (config_.cache_answers) answer_cache_.Abandon(query.canonical());
    throw;
  }
  if (config_.cache_answers) answer_cache_.Publish(query.canonical(), result);
  return result;
}

void AsArbiEngine::MigrateTo(const SnapshotHandle& target) {
  WriterLock lock(epoch_mutex_);
  // Raced with another migrating query: the state may already be at (or
  // past) the epoch this caller saw.
  if (target->epoch() <= snapshot_->epoch()) return;
  ASUP_TRACE_STAGE(obs::Stage::kEpochMigrate);

  // Inner engine first: every fall-through query runs against simple_'s
  // Θ_R/μ, so those must reach the new epoch before any query does.
  simple_.MigrateTo(target);
  ASUP_CHECK_EQ(simple_.StateEpoch(), target->epoch());

  {
    WriterLock history_lock(history_mutex_);
    CompactHistoryLocked(*target);
  }

  // Per-epoch determinism: answers cached under the old history and μ must
  // not replay in the new epoch.
  answer_cache_.Clear();

  snapshot_ = target;
  stats_.epoch_migrations.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_epoch_migrations_total", 1);
  ASUP_EVENT_EMIT(kEpochMigration, 0, 0, target->epoch(), 0);
}

void AsArbiEngine::CompactHistoryLocked(const CorpusSnapshot& to) {
  // Rebuild the store keeping the original record order, so surviving
  // entries keep their relative indices and the cover search's tie-breaks
  // stay deterministic. Deleted documents can never be matched (they left
  // the index) nor disclosed again, so dropping them loses nothing; an
  // answer with no surviving document can no longer cover anything and is
  // removed outright.
  HistoryStore compacted;
  const size_t num_queries = history_.NumQueries();
  size_t dropped_entries = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const HistoryStore::HistoricQuery& entry = history_.QueryAt(i);
    std::vector<DocId> survivors;
    survivors.reserve(entry.answer.size());
    for (DocId doc : entry.answer) {
      if (to.Contains(doc)) survivors.push_back(doc);
    }
    if (survivors.empty()) {
      ++dropped_entries;
      continue;
    }
    compacted.Record(entry.query, std::move(survivors));
  }
  history_ = std::move(compacted);
  // The mirrors may shrink here — that is safe because the exclusive epoch
  // lock has quiesced every prescreen reader.
  history_docs_seen_.store(history_.NumDocumentsSeen(),
                           std::memory_order_release);
  history_queries_.store(history_.NumQueries(), std::memory_order_release);
  ASUP_TRACE_NOTE("epoch_history_dropped", dropped_entries);
  ASUP_METRIC_GAUGE_SET("asup_suppress_history_queries",
                        history_.NumQueries());
  ASUP_METRIC_GAUGE_SET("asup_suppress_history_docs_seen",
                        history_.NumDocumentsSeen());
}

SearchResult AsArbiEngine::Process(const KeywordQuery& query,
                                   const QueryPrefetch* prefetch) {
  SearchResult result;
  size_t match_count;
  if (prefetch) {
    match_count = prefetch->ranked.total_matches;
  } else {
    ASUP_TRACE_STAGE(obs::Stage::kMatch);
    match_count = base_->MatchCountIn(*snapshot_, query);
  }
  // |Sel(q)|; AS-SIMPLE notes its own "match_count" when we fall through.
  ASUP_TRACE_NOTE("sel_size", match_count);
  if (match_count == 0) {
    result.status = QueryStatus::kUnderflow;
    return result;
  }

  if (TriggerPlausible(match_count)) {
    stats_.trigger_evaluations.fetch_add(1, std::memory_order_relaxed);
    ASUP_METRIC_COUNT("asup_suppress_arbi_trigger_evals_total", 1);
    // Lock-free pre-screen: with no recorded answer, or fewer documents
    // ever disclosed than the coverage target, no cover can exist — skip
    // the history lock entirely.
    const size_t need = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               config_.cover_ratio * static_cast<double>(match_count))));
    if (history_queries_.load(std::memory_order_acquire) > 0 &&
        history_docs_seen_.load(std::memory_order_acquire) >= need) {
      const bool use_prefetched_ids = prefetch && prefetch->has_match_ids;
      std::vector<DocId> local_ids;
      if (!use_prefetched_ids) {
        ASUP_TRACE_STAGE(obs::Stage::kMatch);
        local_ids = base_->MatchIdsIn(*snapshot_, query);
      }
      const std::vector<DocId>& match_ids =
          use_prefetched_ids ? prefetch->match_ids : local_ids;
      ReaderLock lock(history_mutex_);
      CoverResult cover;
      {
        ASUP_TRACE_STAGE(obs::Stage::kCover);
        cover = finder_.Find(match_ids);
      }
      if (cover.found) {
        stats_.virtual_answers.fetch_add(1, std::memory_order_relaxed);
        ASUP_METRIC_COUNT("asup_suppress_arbi_virtual_answers_total", 1);
        ASUP_TRACE_NOTE("cover_answers_used", cover.query_indices.size());
        ASUP_EVENT_EMIT(kCoverFound, query.client_id(), query.hash(),
                        cover.query_indices.size(), match_ids.size());
        return AnswerVirtually(query, match_ids, cover);
      }
    }
  }

  // Lines 6-8: fall through to AS-SIMPLE and remember the answer. The
  // inner engine is driven pinned to our snapshot — it was migrated in
  // lockstep, so the epochs agree by construction.
  stats_.simple_answers.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_arbi_simple_answers_total", 1);
  result = simple_.SearchPinned(query, prefetch, *snapshot_);
  if (!result.docs.empty()) {
    ASUP_TRACE_STAGE(obs::Stage::kHistoryRecord);
    WriterLock lock(history_mutex_);
    ASUP_CONTRACTS_ONLY(const size_t queries_before = history_.NumQueries();
                        const size_t docs_before =
                            history_.NumDocumentsSeen();)
    history_.Record(query, result.DocIds());
    // Within one epoch the history only ever grows — answers, once
    // disclosed, cannot be retracted; the cover trigger's lock-free
    // prescreen relies on the mirrors being monotone lower bounds of the
    // store. (Epoch compaction may shrink both, but only with every
    // prescreen reader quiesced behind the exclusive epoch lock.)
    ASUP_CONTRACTS_ONLY(
        ASUP_CHECK_EQ(history_.NumQueries(), queries_before + 1);
        ASUP_CHECK(history_.NumDocumentsSeen() >= docs_before);)
    history_docs_seen_.store(history_.NumDocumentsSeen(),
                             std::memory_order_release);
    history_queries_.store(history_.NumQueries(), std::memory_order_release);
    ASUP_METRIC_GAUGE_SET("asup_suppress_history_queries",
                          history_.NumQueries());
    ASUP_METRIC_GAUGE_SET("asup_suppress_history_docs_seen",
                          history_.NumDocumentsSeen());
  }
  return result;
}

SearchResult AsArbiEngine::AnswerVirtually(const KeywordQuery& query,
                                           const std::vector<DocId>& match_ids,
                                           const CoverResult& cover) {
  ASUP_TRACE_STAGE(obs::Stage::kVirtual);
  // Algorithm 2's cover contract: at most m historic answers...
  ASUP_CHECK(cover.found);
  ASUP_CHECK(!cover.query_indices.empty());
  ASUP_CHECK_LE(cover.query_indices.size(), config_.cover_size);
  // Union of the covering historic answers. The caller holds the history
  // lock (shared side) across the cover search and this read.
  std::vector<DocId> pool;
  for (uint32_t qi : cover.query_indices) {
    ASUP_CHECK_LT(qi, history_.NumQueries());
    const auto& answer = history_.QueryAt(qi).answer;
    pool.insert(pool.end(), answer.begin(), answer.end());
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // q ∩ (Res(q1) ∪ ... ∪ Res(qu)); both inputs are ascending.
  std::vector<DocId> virtual_ids;
  std::set_intersection(match_ids.begin(), match_ids.end(), pool.begin(),
                        pool.end(), std::back_inserter(virtual_ids));
  ASUP_TRACE_NOTE("cover_pool_docs", pool.size());
  ASUP_TRACE_NOTE("virtual_docs", virtual_ids.size());

  // ...covering at least ⌈σ·|Sel(q)|⌉ matching documents, every one of them
  // already disclosed by an earlier answer (so the virtual answer reveals
  // no new query–document edge and no fresh degree evidence).
  ASUP_CONTRACTS_ONLY(
      const auto need = static_cast<size_t>(std::ceil(
          config_.cover_ratio * static_cast<double>(match_ids.size())));
      ASUP_CHECK(virtual_ids.size() >= need);
      for (DocId doc : virtual_ids) {
        ASUP_DCHECK(simple_.IsActivated(doc));
      })

  SearchResult result;
  if (virtual_ids.empty()) {
    result.status = QueryStatus::kUnderflow;
    return result;
  }
  std::vector<ScoredDoc> ranked =
      base_->RankDocsIn(*snapshot_, query, virtual_ids);
  if (ranked.size() > base_->k()) ranked.resize(base_->k());
  // Top-k interface bound, same as every non-virtual answer path.
  ASUP_CHECK_LE(ranked.size(), base_->k());
  result.docs = std::move(ranked);
  // Same emulated-overflow rule as AS-SIMPLE, so the two answer paths are
  // indistinguishable to the client.
  if (static_cast<double>(match_ids.size()) >
      simple_.segment().mu() * static_cast<double>(base_->k())) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  ASUP_EVENT_EMIT(kVirtualAnswer, query.client_id(), query.hash(),
                  result.docs.size(), cover.query_indices.size());
  return result;
}

}  // namespace asup
