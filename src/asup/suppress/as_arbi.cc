#include "asup/suppress/as_arbi.h"

#include <algorithm>

namespace asup {

namespace {

AsSimpleConfig InnerSimpleConfig(const AsArbiConfig& config) {
  AsSimpleConfig inner = config.simple;
  // AS-ARBI caches final answers itself; a second cache inside AS-SIMPLE
  // would never be hit (it only sees AS-ARBI cache misses) and would double
  // the memory footprint.
  inner.cache_answers = false;
  return inner;
}

}  // namespace

AsArbiEngine::AsArbiEngine(PlainSearchEngine& base, const AsArbiConfig& config)
    : base_(&base),
      config_(config),
      simple_(base, InnerSimpleConfig(config)),
      finder_(history_, config.cover_size, config.cover_ratio) {}

SearchResult AsArbiEngine::Search(const KeywordQuery& query) {
  ++stats_.queries_processed;
  if (config_.cache_answers) {
    auto it = answer_cache_.find(query.canonical());
    if (it != answer_cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }

  SearchResult result;
  const size_t match_count = base_->MatchCount(query);
  if (match_count == 0) {
    result.status = QueryStatus::kUnderflow;
    if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
    return result;
  }

  // The cover trigger is only satisfiable when m historic answers (of at
  // most k documents each) can reach σ·|q| documents, so the expensive
  // evaluation is skipped for broad queries — this is why most real
  // (overflowing) queries pay almost nothing for AS-ARBI (Figure 15).
  const double max_coverable =
      static_cast<double>(config_.cover_size * base_->k());
  if (config_.cover_ratio * static_cast<double>(match_count) <=
      max_coverable) {
    ++stats_.trigger_evaluations;
    const std::vector<DocId> match_ids = base_->MatchIds(query);
    const CoverResult cover = finder_.Find(match_ids);
    if (cover.found) {
      ++stats_.virtual_answers;
      result = AnswerVirtually(query, match_ids, cover);
      if (config_.cache_answers) {
        answer_cache_.emplace(query.canonical(), result);
      }
      return result;
    }
  }

  // Lines 6-8: fall through to AS-SIMPLE and remember the answer.
  ++stats_.simple_answers;
  result = simple_.Search(query);
  if (!result.docs.empty()) {
    history_.Record(query, result.DocIds());
  }
  if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
  return result;
}

SearchResult AsArbiEngine::AnswerVirtually(const KeywordQuery& query,
                                           const std::vector<DocId>& match_ids,
                                           const CoverResult& cover) {
  // Union of the covering historic answers.
  std::vector<DocId> pool;
  for (uint32_t qi : cover.query_indices) {
    const auto& answer = history_.QueryAt(qi).answer;
    pool.insert(pool.end(), answer.begin(), answer.end());
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // q ∩ (Res(q1) ∪ ... ∪ Res(qu)); both inputs are ascending.
  std::vector<DocId> virtual_ids;
  std::set_intersection(match_ids.begin(), match_ids.end(), pool.begin(),
                        pool.end(), std::back_inserter(virtual_ids));

  SearchResult result;
  if (virtual_ids.empty()) {
    result.status = QueryStatus::kUnderflow;
    return result;
  }
  std::vector<ScoredDoc> ranked = base_->RankDocs(query, virtual_ids);
  if (ranked.size() > base_->k()) ranked.resize(base_->k());
  result.docs = std::move(ranked);
  // Same emulated-overflow rule as AS-SIMPLE, so the two answer paths are
  // indistinguishable to the client.
  if (static_cast<double>(match_ids.size()) >
      simple_.segment().mu() * static_cast<double>(base_->k())) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  return result;
}

}  // namespace asup
