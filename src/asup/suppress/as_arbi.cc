#include "asup/suppress/as_arbi.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "asup/obs/event_log.h"
#include "asup/obs/trace.h"
#include "asup/suppress/processors.h"
#include "asup/util/check.h"

namespace asup {

namespace {

AsSimpleConfig InnerSimpleConfig(const AsArbiConfig& config) {
  AsSimpleConfig inner = config.simple;
  // AS-ARBI caches final answers itself; a second cache inside AS-SIMPLE
  // would never be hit (it only sees AS-ARBI cache misses) and would double
  // the memory footprint.
  inner.cache_answers = false;
  return inner;
}

}  // namespace

AsArbiEngine::AsArbiEngine(MatchingEngine& base, const AsArbiConfig& config)
    : base_(&base),
      config_(config),
      snapshot_(base.PinSnapshot()),
      // The inner engine pins *our* snapshot, not a fresh one: base_ may
      // publish a new epoch between the two pins, and the two engines must
      // never disagree about the corpus.
      simple_(base, InnerSimpleConfig(config), snapshot_),
      finder_(history_, config.cover_size, config.cover_ratio) {
  // Algorithm 2's trigger parameters: cover size m ≥ 1 historic answers,
  // cover ratio σ ∈ (0, 1].
  ASUP_CHECK(config.cover_size >= 1);
  ASUP_CHECK(config.cover_ratio > 0.0);
  ASUP_CHECK_LE(config.cover_ratio, 1.0);
  chain_.Add(std::make_unique<MatchCountProcessor>())
      .Add(std::make_unique<SelSizeNoteProcessor>())
      .Add(std::make_unique<UnderflowGuardProcessor>())
      .Add(std::make_unique<AsArbiCoverProcessor>(*this))
      .Add(std::make_unique<AsArbiVirtualProcessor>(*this))
      .Add(std::make_unique<AsArbiFallthroughProcessor>(*this))
      .Add(std::make_unique<AsArbiHistoryProcessor>(*this))
      .Add(std::make_unique<DefenseRecordProcessor>());
}

AsArbiStats AsArbiEngine::stats() const {
  AsArbiStats snapshot;
  snapshot.queries_processed =
      stats_.queries_processed.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  snapshot.virtual_answers =
      stats_.virtual_answers.load(std::memory_order_relaxed);
  snapshot.simple_answers =
      stats_.simple_answers.load(std::memory_order_relaxed);
  snapshot.trigger_evaluations =
      stats_.trigger_evaluations.load(std::memory_order_relaxed);
  snapshot.epoch_migrations =
      stats_.epoch_migrations.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t AsArbiEngine::StateEpoch() const {
  ReaderLock lock(epoch_mutex_);
  return snapshot_->epoch();
}

void AsArbiEngine::MigrateToCurrentEpoch() {
  MigrateTo(base_->PinSnapshot());
}

bool AsArbiEngine::TriggerPlausible(size_t match_count) const {
  // The cover trigger is only satisfiable when m historic answers (of at
  // most k documents each) can reach σ·|q| documents, so the expensive
  // evaluation is skipped for broad queries — this is why most real
  // (overflowing) queries pay almost nothing for AS-ARBI (Figure 15).
  const double max_coverable =
      static_cast<double>(config_.cover_size * base_->k());
  return config_.cover_ratio * static_cast<double>(match_count) <=
         max_coverable;
}

QueryPrefetch AsArbiEngine::PrefetchMatches(const KeywordQuery& query) const {
  QueryPrefetch prefetch = simple_.PrefetchMatches(query);
  if (prefetch.ranked.total_matches > 0 &&
      TriggerPlausible(prefetch.ranked.total_matches)) {
    // Same snapshot as the ranked matches — a prefetch is one epoch's view.
    prefetch.match_ids = base_->MatchIdsIn(*prefetch.snapshot, query);
    prefetch.has_match_ids = true;
  }
  return prefetch;
}

bool AsArbiEngine::HasCachedAnswer(const KeywordQuery& query) const {
  return config_.cache_answers && answer_cache_.Contains(query.canonical());
}

SearchResult AsArbiEngine::Search(const KeywordQuery& query) {
  return SearchImpl(query, nullptr);
}

SearchResult AsArbiEngine::SearchPrefetched(const KeywordQuery& query,
                                            const QueryPrefetch& prefetch) {
  return SearchImpl(query, &prefetch);
}

SearchResult AsArbiEngine::SearchImpl(const KeywordQuery& query,
                                      const QueryPrefetch* prefetch) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    {
      ReaderLock lock(epoch_mutex_);
      if (snapshot_->epoch() == base_->CurrentEpoch()) {
        return SearchStateLocked(query, prefetch);
      }
    }
    // The corpus moved ahead of the state: migrate, then re-check.
    MigrateTo(base_->PinSnapshot());
  }
}

SearchResult AsArbiEngine::SearchStateLocked(const KeywordQuery& query,
                                             const QueryPrefetch* prefetch) {
  if (config_.cache_answers) {
    SearchResult cached;
    if (answer_cache_.LookupOrClaim(query.canonical(), &cached) ==
        AnswerCache::Claim::kHit) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ASUP_EVENT_EMIT(kCacheHit, query.client_id(), query.hash(),
                      cached.docs.size(), 0);
      return cached;
    }
  }

  // A prefetch computed against a different epoch is stale — its M(q) and
  // match ids reflect the wrong index. Recompute live in that case.
  const bool prefetch_usable =
      prefetch != nullptr &&
      (prefetch->snapshot == nullptr ||
       prefetch->snapshot->epoch() == snapshot_->epoch());

  QueryContext context;
  context.query = &query;
  context.base = base_;
  context.snapshot = snapshot_.get();
  context.k = base_->k();
  context.match_limit = base_->k();
  context.prefetch = prefetch_usable ? prefetch : nullptr;
  context.trace_match = true;
  context.segment = &simple_.segment();
  SearchResult result;
  try {
    chain_.Run(context);
    result = std::move(context.result);
  } catch (...) {
    if (config_.cache_answers) answer_cache_.Abandon(query.canonical());
    throw;
  }
  if (config_.cache_answers) answer_cache_.Publish(query.canonical(), result);
  return result;
}

void AsArbiEngine::MigrateTo(const SnapshotHandle& target) {
  WriterLock lock(epoch_mutex_);
  // Raced with another migrating query: the state may already be at (or
  // past) the epoch this caller saw.
  if (target->epoch() <= snapshot_->epoch()) return;
  ASUP_TRACE_STAGE(obs::Stage::kEpochMigrate);

  // Inner engine first: every fall-through query runs against simple_'s
  // Θ_R/μ, so those must reach the new epoch before any query does.
  simple_.MigrateTo(target);
  ASUP_CHECK_EQ(simple_.StateEpoch(), target->epoch());

  {
    WriterLock history_lock(history_mutex_);
    CompactHistoryLocked(*target);
  }

  // Per-epoch determinism: answers cached under the old history and μ must
  // not replay in the new epoch.
  answer_cache_.Clear();

  snapshot_ = target;
  stats_.epoch_migrations.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_epoch_migrations_total", 1);
  ASUP_EVENT_EMIT(kEpochMigration, 0, 0, target->epoch(), 0);
}

void AsArbiEngine::CompactHistoryLocked(const CorpusSnapshot& to) {
  // Rebuild the store keeping the original record order, so surviving
  // entries keep their relative indices and the cover search's tie-breaks
  // stay deterministic. Deleted documents can never be matched (they left
  // the index) nor disclosed again, so dropping them loses nothing; an
  // answer with no surviving document can no longer cover anything and is
  // removed outright.
  HistoryStore compacted;
  const size_t num_queries = history_.NumQueries();
  size_t dropped_entries = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const HistoryStore::HistoricQuery& entry = history_.QueryAt(i);
    std::vector<DocId> survivors;
    survivors.reserve(entry.answer.size());
    for (DocId doc : entry.answer) {
      if (to.Contains(doc)) survivors.push_back(doc);
    }
    if (survivors.empty()) {
      ++dropped_entries;
      continue;
    }
    compacted.Record(entry.query, std::move(survivors));
  }
  history_ = std::move(compacted);
  // The mirrors may shrink here — that is safe because the exclusive epoch
  // lock has quiesced every prescreen reader.
  history_docs_seen_.store(history_.NumDocumentsSeen(),
                           std::memory_order_release);
  history_queries_.store(history_.NumQueries(), std::memory_order_release);
  ASUP_TRACE_NOTE("epoch_history_dropped", dropped_entries);
  ASUP_METRIC_GAUGE_SET("asup_suppress_history_queries",
                        history_.NumQueries());
  ASUP_METRIC_GAUGE_SET("asup_suppress_history_docs_seen",
                        history_.NumDocumentsSeen());
}

}  // namespace asup
