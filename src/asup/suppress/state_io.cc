#include "asup/suppress/state_io.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace asup {

namespace {

// Format v2 adds the epoch content fingerprint after the config
// fingerprint; the body is unchanged. v1 snapshots still load.
constexpr char kSimpleMagicV1[4] = {'A', 'S', 'S', '1'};
constexpr char kSimpleMagicV2[4] = {'A', 'S', 'S', '2'};
constexpr char kArbiMagicV1[4] = {'A', 'S', 'A', '1'};
constexpr char kArbiMagicV2[4] = {'A', 'S', 'A', '2'};

void PutU64(uint64_t value, std::ostream& out) {
  for (int i = 0; i < 8; ++i) out.put(static_cast<char>(value >> (8 * i)));
}

bool GetU64(std::istream& in, uint64_t& value) {
  value = 0;
  for (int i = 0; i < 8; ++i) {
    const int byte = in.get();
    if (byte == EOF) return false;
    value |= static_cast<uint64_t>(byte) << (8 * i);
  }
  return true;
}

void PutDouble(double value, std::ostream& out) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits, out);
}

bool GetDouble(std::istream& in, double& value) {
  uint64_t bits = 0;
  if (!GetU64(in, bits)) return false;
  std::memcpy(&value, &bits, sizeof(value));
  return true;
}

void PutString(const std::string& s, std::ostream& out) {
  PutU64(s.size(), out);
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(std::istream& in, std::string& s) {
  uint64_t length = 0;
  if (!GetU64(in, length) || length > (1u << 24)) return false;
  s.resize(length);
  in.read(s.data(), static_cast<std::streamsize>(length));
  return static_cast<bool>(in);
}

void PutResult(const SearchResult& result, std::ostream& out) {
  out.put(static_cast<char>(result.status));
  PutU64(result.docs.size(), out);
  for (const ScoredDoc& scored : result.docs) {
    PutU64(scored.doc, out);
    PutDouble(scored.score, out);
  }
}

bool GetResult(std::istream& in, SearchResult& result) {
  const int status = in.get();
  if (status == EOF || status > static_cast<int>(QueryStatus::kDeclined)) {
    return false;
  }
  result.status = static_cast<QueryStatus>(status);
  uint64_t count = 0;
  if (!GetU64(in, count) || count > (1u << 20)) return false;
  // The count is untrusted until the payload behind it parses: grow the
  // vector as entries validate instead of resizing to a claimed size.
  result.docs.clear();
  result.docs.reserve(std::min<uint64_t>(count, 4096));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t doc = 0;
    double score = 0.0;
    if (!GetU64(in, doc) || !GetDouble(in, score)) return false;
    result.docs.push_back({static_cast<DocId>(doc), score});
  }
  return true;
}

// Configuration fingerprint (v1 and v2): a snapshot only replays under the
// same corpus size, γ, and coin key. v2 appends the epoch *content*
// fingerprint — document ids, lengths and term frequencies, deliberately
// not the epoch counter, so incrementally maintained and freshly built
// engines over the same corpus interoperate byte-for-byte.
void PutFingerprint(const AsSimpleEngine& engine,
                    const CorpusSnapshot& snapshot, std::ostream& out) {
  PutU64(engine.segment().corpus_size(), out);
  PutDouble(engine.config().gamma, out);
  PutU64(engine.config().secret_key, out);
  PutU64(snapshot.Fingerprint(), out);
}

bool CheckFingerprint(const AsSimpleEngine& engine,
                      const CorpusSnapshot& snapshot, std::istream& in,
                      bool check_content) {
  uint64_t corpus_size = 0;
  double gamma = 0.0;
  uint64_t key = 0;
  if (!GetU64(in, corpus_size) || !GetDouble(in, gamma) || !GetU64(in, key)) {
    return false;
  }
  if (corpus_size != engine.segment().corpus_size() ||
      gamma != engine.config().gamma ||
      key != engine.config().secret_key) {
    return false;
  }
  if (!check_content) return true;  // v1 snapshot: size check only
  uint64_t content = 0;
  if (!GetU64(in, content)) return false;
  return content == snapshot.Fingerprint();
}

// Reads a 4-byte magic with prefix `kind` ('S' or 'A') and reports the
// format version, or 0 on mismatch.
int ReadVersion(std::istream& in, char kind) {
  char magic[4];
  in.read(magic, 4);
  if (!in || magic[0] != 'A' || magic[1] != 'S' || magic[2] != kind) return 0;
  if (magic[3] == '1') return 1;
  if (magic[3] == '2') return 2;
  return 0;
}

}  // namespace

// Quiesced by contract (see state_io.h): guarded state is read lock-free.
bool SaveDefenseState(const AsSimpleEngine& engine, std::ostream& out)
    ASUP_NO_THREAD_SAFETY_ANALYSIS {
  out.write(kSimpleMagicV2, 4);
  // Θ_R is stored as universe document ids (stable across restarts and
  // epochs); the engine's atomic bitmap is indexed by dense local id of
  // the *state's* pinned epoch.
  const CorpusSnapshot& snapshot = *engine.snapshot_;
  PutFingerprint(engine, snapshot, out);
  const std::vector<size_t> locals = engine.returned_before_.SetBits();
  PutU64(locals.size(), out);
  for (size_t local : locals) {
    PutU64(snapshot.LocalToId(static_cast<uint32_t>(local)), out);
  }
  const auto cache_entries = engine.answer_cache_.Snapshot();
  PutU64(cache_entries.size(), out);
  for (const auto& [canonical, result] : cache_entries) {
    PutString(canonical, out);
    PutResult(result, out);
  }
  out.flush();
  return static_cast<bool>(out);
}

// Quiesced by contract (see state_io.h): guarded state is written lock-free.
bool LoadDefenseState(AsSimpleEngine& engine, std::istream& in)
    ASUP_NO_THREAD_SAFETY_ANALYSIS {
  const int version = ReadVersion(in, 'S');
  if (version == 0) return false;
  const CorpusSnapshot& snapshot = *engine.snapshot_;
  if (!CheckFingerprint(engine, snapshot, in,
                        /*check_content=*/version >= 2)) {
    return false;
  }

  // Parse (and validate) everything before touching the engine, so a
  // corrupt snapshot leaves it unchanged.
  std::vector<DocId> returned;
  uint64_t count = 0;
  if (!GetU64(in, count) || count > snapshot.NumDocuments()) return false;
  returned.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t doc = 0;
    if (!GetU64(in, doc)) return false;
    if (!snapshot.Contains(static_cast<DocId>(doc))) return false;
    returned.push_back(static_cast<DocId>(doc));
  }

  // Staged in snapshot order (a vector, not a hash map: restore order is
  // part of the deterministic-replay story and must match the file).
  std::vector<std::pair<std::string, SearchResult>> cache;
  if (!GetU64(in, count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    std::string canonical;
    SearchResult result;
    if (!GetString(in, canonical) || !GetResult(in, result)) return false;
    cache.emplace_back(std::move(canonical), std::move(result));
  }

  engine.returned_before_.ClearAll();
  for (DocId doc : returned) {
    engine.returned_before_.Set(snapshot.LocalOf(doc));
  }
  engine.answer_cache_.Clear();
  for (auto& [canonical, result] : cache) {
    engine.answer_cache_.Insert(canonical, std::move(result));
  }
  return true;
}

// Quiesced by contract (see state_io.h): guarded state is read lock-free.
bool SaveDefenseState(const AsArbiEngine& engine, std::ostream& out)
    ASUP_NO_THREAD_SAFETY_ANALYSIS {
  out.write(kArbiMagicV2, 4);
  if (!SaveDefenseState(engine.simple_, out)) return false;
  PutU64(engine.history_.NumQueries(), out);
  for (size_t i = 0; i < engine.history_.NumQueries(); ++i) {
    const auto& entry = engine.history_.QueryAt(i);
    PutString(entry.query.canonical(), out);
    PutU64(entry.answer.size(), out);
    for (DocId doc : entry.answer) PutU64(doc, out);
  }
  const auto cache_entries = engine.answer_cache_.Snapshot();
  PutU64(cache_entries.size(), out);
  for (const auto& [canonical, result] : cache_entries) {
    PutString(canonical, out);
    PutResult(result, out);
  }
  out.flush();
  return static_cast<bool>(out);
}

// Quiesced by contract (see state_io.h): guarded state is written lock-free.
bool LoadDefenseState(AsArbiEngine& engine, std::istream& in)
    ASUP_NO_THREAD_SAFETY_ANALYSIS {
  const int version = ReadVersion(in, 'A');
  if (version == 0) return false;
  // Stage the inner AS-SIMPLE section in a scratch engine: a snapshot whose
  // history or cache section is corrupt must leave the real engine fully
  // unchanged, including its inner AS-SIMPLE state. The scratch engine pins
  // the *real* inner engine's snapshot so the fingerprints and the
  // local-id mapping agree regardless of what epoch the base is on now.
  AsSimpleEngine staged(*engine.base_, engine.config_.simple,
                        engine.simple_.snapshot_);
  if (!LoadDefenseState(staged, in)) return false;

  const Vocabulary& vocabulary = engine.snapshot_->corpus().vocabulary();
  HistoryStore history;
  uint64_t num_queries = 0;
  if (!GetU64(in, num_queries) || num_queries > (1u << 26)) return false;
  for (uint64_t i = 0; i < num_queries; ++i) {
    std::string canonical;
    if (!GetString(in, canonical)) return false;
    uint64_t answer_size = 0;
    if (!GetU64(in, answer_size) || answer_size > (1u << 20)) return false;
    std::vector<DocId> answer(answer_size);
    for (uint64_t d = 0; d < answer_size; ++d) {
      uint64_t doc = 0;
      if (!GetU64(in, doc)) return false;
      answer[d] = static_cast<DocId>(doc);
    }
    history.Record(KeywordQuery::Parse(vocabulary, canonical),
                   std::move(answer));
  }

  std::vector<std::pair<std::string, SearchResult>> cache;
  uint64_t cache_size = 0;
  if (!GetU64(in, cache_size)) return false;
  for (uint64_t i = 0; i < cache_size; ++i) {
    std::string canonical;
    SearchResult result;
    if (!GetString(in, canonical) || !GetResult(in, result)) return false;
    cache.emplace_back(std::move(canonical), std::move(result));
  }

  // Everything parsed: commit. The staged AS-SIMPLE state replays into the
  // real inner engine through its own saver/loader (same fingerprint by
  // construction, so this round trip cannot fail); committing it first
  // keeps the engine consistent even if it somehow did.
  std::stringstream simple_bytes;
  if (!SaveDefenseState(staged, simple_bytes) ||
      !LoadDefenseState(engine.simple_, simple_bytes)) {
    return false;
  }
  engine.history_ = std::move(history);
  engine.history_queries_.store(engine.history_.NumQueries(),
                                std::memory_order_release);
  engine.history_docs_seen_.store(engine.history_.NumDocumentsSeen(),
                                  std::memory_order_release);
  engine.answer_cache_.Clear();
  for (auto& [canonical, result] : cache) {
    engine.answer_cache_.Insert(canonical, std::move(result));
  }
  return true;
}

}  // namespace asup
