#include "asup/suppress/segment.h"

#include <cassert>

namespace asup {

IndistinguishableSegment::IndistinguishableSegment(size_t corpus_size,
                                                   double gamma)
    : n_(corpus_size), gamma_(gamma) {
  assert(corpus_size >= 1);
  assert(gamma > 1.0);
  // Find the largest i with γ^i <= n by repeated multiplication; avoids the
  // boundary instability of floor(log n / log γ) when n is an exact power.
  index_ = 0;
  low_ = 1.0;
  const double n = static_cast<double>(corpus_size);
  while (low_ * gamma_ <= n) {
    low_ *= gamma_;
    ++index_;
  }
  mu_ = n / low_;
  assert(mu_ >= 1.0 && mu_ < gamma_ + 1e-9);
}

}  // namespace asup
