#include "asup/suppress/segment.h"

#include "asup/util/check.h"

namespace asup {

IndistinguishableSegment::IndistinguishableSegment(size_t corpus_size,
                                                   double gamma)
    : n_(corpus_size), gamma_(gamma) {
  ASUP_CHECK(corpus_size >= 1);
  ASUP_CHECK(gamma > 1.0);
  // Find the largest i with γ^i <= n by repeated multiplication; avoids the
  // boundary instability of floor(log n / log γ) when n is an exact power.
  index_ = 0;
  low_ = 1.0;
  const double n = static_cast<double>(corpus_size);
  while (low_ * gamma_ <= n) {
    low_ *= gamma_;
    ++index_;
  }
  mu_ = n / low_;
  // Paper Section 4.2: μ = n/γ^⌊log n/log γ⌋ ∈ (1, γ] — equal to 1 only
  // when n is an exact power of γ. Segment bounds: γ^i ≤ n < γ^{i+1}.
  ASUP_CHECK(mu_ >= 1.0);
  ASUP_CHECK_LE(mu_, gamma_ + 1e-9);
  ASUP_CHECK_LE(low_, n);
  ASUP_CHECK_LT(n, low_ * gamma_);
  // Derived probabilities Algorithm 1 relies on: the hide probability
  // 1 − μ/γ must be a probability strictly below 1 (a keep probability of 0
  // would hide every previously returned document and be trivially
  // detectable), and the LHS trim fraction 1/μ must be in (0, 1].
  const double hide_probability = 1.0 - edge_keep_probability();
  ASUP_CHECK(hide_probability >= 0.0);
  ASUP_CHECK_LT(hide_probability, 1.0);
  ASUP_CHECK(lhs_keep_fraction() > 0.0);
  ASUP_CHECK_LE(lhs_keep_fraction(), 1.0);
}

}  // namespace asup
