#include "asup/suppress/segment.h"

#include <cmath>

#include "asup/util/check.h"

namespace asup {

namespace {

/// γ values that are exact small integers get the overflow-safe uint64
/// power loop; 2^53 caps the range where the cast back to double in the
/// comparison below is still exact for γ itself.
bool IsExactIntegerGamma(double gamma) {
  return gamma == std::floor(gamma) && gamma >= 2.0 &&
         gamma <= 9007199254740992.0;  // 2^53
}

}  // namespace

void IndistinguishableSegment::FindSegment(size_t count, double gamma,
                                           int* index, double* low) {
  ASUP_CHECK(count >= 1);
  ASUP_CHECK(gamma > 1.0);
  // Find the largest i with γ^i <= count by repeated multiplication; avoids
  // the boundary instability of floor(log count / log γ) when count is an
  // exact power.
  *index = 0;
  if (IsExactIntegerGamma(gamma)) {
    // Exact fast path: compute γ^i in uint64 arithmetic so that count = γ^i
    // lands exactly on the segment bottom even when γ^i exceeds 2^53
    // (where the double product loop below drifts and can off-by-one the
    // segment index, or report μ marginally above γ).
    const uint64_t g = static_cast<uint64_t>(gamma);
    uint64_t low_int = 1;
    // low_int * g <= count, written division-side to avoid overflow.
    while (low_int <= count / g) {
      low_int *= g;
      ++*index;
    }
    *low = static_cast<double>(low_int);
  } else {
    const double n = static_cast<double>(count);
    *low = 1.0;
    while (*low * gamma <= n) {
      *low *= gamma;
      ++*index;
    }
    ASUP_CHECK_LE(*low, n);
    ASUP_CHECK_LT(n, *low * gamma);
  }
}

int IndistinguishableSegment::IndexOf(size_t count, double gamma) {
  int index = 0;
  double low = 1.0;
  FindSegment(count, gamma, &index, &low);
  return index;
}

IndistinguishableSegment::IndistinguishableSegment(size_t corpus_size,
                                                   double gamma)
    : n_(corpus_size), gamma_(gamma) {
  FindSegment(corpus_size, gamma_, &index_, &low_);
  mu_ = static_cast<double>(corpus_size) / low_;
  // Mathematically μ = n/γ^i ∈ [1, γ): γ^i ≤ n < γ^{i+1} exactly. The
  // double division can still round onto γ when n and γ^i are huge and
  // adjacent in double space; clamp to the largest representable value
  // below γ rather than let a rounding artifact violate the paper bound
  // (a keep probability μ/γ > 1 downstream).
  if (mu_ >= gamma_) mu_ = std::nexttoward(gamma_, 1.0L);
  ASUP_CHECK(mu_ >= 1.0);
  ASUP_CHECK_LT(mu_, gamma_);
  // Derived probabilities Algorithm 1 relies on: the hide probability
  // 1 − μ/γ must be a probability strictly below 1 (a keep probability of 0
  // would hide every previously returned document and be trivially
  // detectable), and the LHS trim fraction 1/μ must be in (0, 1].
  const double hide_probability = 1.0 - edge_keep_probability();
  ASUP_CHECK(hide_probability >= 0.0);
  ASUP_CHECK_LT(hide_probability, 1.0);
  ASUP_CHECK(lhs_keep_fraction() > 0.0);
  ASUP_CHECK_LE(lhs_keep_fraction(), 1.0);
}

}  // namespace asup
