#include "asup/suppress/segment.h"

#include <cmath>

#include "asup/util/check.h"

namespace asup {

namespace {

/// γ values that are exact small integers get the overflow-safe uint64
/// power loop; 2^53 caps the range where the cast back to double in the
/// comparison below is still exact for γ itself.
bool IsExactIntegerGamma(double gamma) {
  return gamma == std::floor(gamma) && gamma >= 2.0 &&
         gamma <= 9007199254740992.0;  // 2^53
}

}  // namespace

IndistinguishableSegment::IndistinguishableSegment(size_t corpus_size,
                                                   double gamma)
    : n_(corpus_size), gamma_(gamma) {
  ASUP_CHECK(corpus_size >= 1);
  ASUP_CHECK(gamma > 1.0);
  // Find the largest i with γ^i <= n by repeated multiplication; avoids the
  // boundary instability of floor(log n / log γ) when n is an exact power.
  index_ = 0;
  const double n = static_cast<double>(corpus_size);
  if (IsExactIntegerGamma(gamma_)) {
    // Exact fast path: compute γ^i in uint64 arithmetic so that n = γ^i
    // lands exactly on the segment bottom even when γ^i exceeds 2^53
    // (where the double product loop below drifts and can off-by-one the
    // segment index, or report μ marginally above γ).
    const uint64_t g = static_cast<uint64_t>(gamma_);
    uint64_t low = 1;
    // low * g <= corpus_size, written division-side to avoid overflow.
    while (low <= corpus_size / g) {
      low *= g;
      ++index_;
    }
    low_ = static_cast<double>(low);
  } else {
    low_ = 1.0;
    while (low_ * gamma_ <= n) {
      low_ *= gamma_;
      ++index_;
    }
    ASUP_CHECK_LE(low_, n);
    ASUP_CHECK_LT(n, low_ * gamma_);
  }
  mu_ = n / low_;
  // Mathematically μ = n/γ^i ∈ [1, γ): γ^i ≤ n < γ^{i+1} exactly. The
  // double division can still round onto γ when n and γ^i are huge and
  // adjacent in double space; clamp to the largest representable value
  // below γ rather than let a rounding artifact violate the paper bound
  // (a keep probability μ/γ > 1 downstream).
  if (mu_ >= gamma_) mu_ = std::nexttoward(gamma_, 1.0L);
  ASUP_CHECK(mu_ >= 1.0);
  ASUP_CHECK_LT(mu_, gamma_);
  // Derived probabilities Algorithm 1 relies on: the hide probability
  // 1 − μ/γ must be a probability strictly below 1 (a keep probability of 0
  // would hide every previously returned document and be trivially
  // detectable), and the LHS trim fraction 1/μ must be in (0, 1].
  const double hide_probability = 1.0 - edge_keep_probability();
  ASUP_CHECK(hide_probability >= 0.0);
  ASUP_CHECK_LT(hide_probability, 1.0);
  ASUP_CHECK(lhs_keep_fraction() > 0.0);
  ASUP_CHECK_LE(lhs_keep_fraction(), 1.0);
}

}  // namespace asup
