#include "asup/suppress/guarantee.h"

#include <cmath>

#include "asup/suppress/segment.h"
#include "asup/util/check.h"

namespace asup {

SuppressionGuarantee ComputeGuarantee(size_t corpus_size, double gamma,
                                      size_t k, size_t dmax,
                                      double aggregate_value, double delta) {
  ASUP_CHECK(corpus_size >= 1);
  ASUP_CHECK(gamma > 1.0);
  ASUP_CHECK(k >= 1);
  ASUP_CHECK(dmax >= 1);
  ASUP_CHECK(delta >= 0.0 && delta <= 1.0);

  // γ^⌈log n / log γ⌉ — the emulated segment top (reuse the segment math;
  // for exact powers the ceiling equals the exponent itself).
  IndistinguishableSegment segment(corpus_size, gamma);
  const double n = static_cast<double>(corpus_size);
  const double emulated_top = segment.mu() > 1.0
                                  ? segment.segment_high()
                                  : segment.segment_low();

  SuppressionGuarantee guarantee;
  guarantee.epsilon = emulated_top * delta * aggregate_value / n;
  guarantee.delta = delta;
  guarantee.query_budget_c =
      std::sqrt(n / (static_cast<double>(dmax) * static_cast<double>(k)));
  guarantee.win_probability_p = 0.5;
  return guarantee;
}

}  // namespace asup
