#include "asup/suppress/history_store.h"

#include <algorithm>

#include "asup/obs/metrics.h"

namespace asup {

size_t QuerySignatureBit(const KeywordQuery& query) {
  return static_cast<size_t>(query.hash() % kSignatureBits);
}

uint32_t HistoryStore::Record(const KeywordQuery& query,
                              std::vector<DocId> answer_docs) {
  std::sort(answer_docs.begin(), answer_docs.end());
  const uint32_t index = static_cast<uint32_t>(queries_.size());
  const size_t bit = QuerySignatureBit(query);
  for (DocId doc : answer_docs) {
    DocHistory& history = per_doc_[doc];
    history.query_indices.push_back(index);
    history.signature.Set(bit);
  }
  queries_.push_back(HistoricQuery{query, std::move(answer_docs)});
  ASUP_METRIC_COUNT("asup_suppress_history_records_total", 1);
  return index;
}

const std::vector<uint32_t>* HistoryStore::QueriesReturning(DocId doc) const {
  auto it = per_doc_.find(doc);
  if (it == per_doc_.end()) return nullptr;
  return &it->second.query_indices;
}

const BitVector* HistoryStore::SignatureOf(DocId doc) const {
  auto it = per_doc_.find(doc);
  if (it == per_doc_.end()) return nullptr;
  return &it->second.signature;
}

}  // namespace asup
