#ifndef ASUP_SUPPRESS_GUARANTEE_H_
#define ASUP_SUPPRESS_GUARANTEE_H_

#include <cstddef>

namespace asup {

/// An (ε, δ, c, p)-aggregate-suppression guarantee (paper Definition 1):
/// against any SIMPLE-ADV adversary that issues at most `query_budget_c`
/// interface queries, the probability of pinning the sensitive aggregate
/// into an interval of width `epsilon` with confidence > `delta` is at
/// most `win_probability_p`.
struct SuppressionGuarantee {
  double epsilon = 0.0;
  double delta = 0.0;
  double query_budget_c = 0.0;
  double win_probability_p = 0.0;
};

/// Theorem 4.1: AS-SIMPLE with obfuscation factor γ over an n-document
/// corpus behind a top-k interface achieves, for any COUNT/SUM aggregate of
/// value `aggregate_value` and any δ ∈ [0, 1], the guarantee
///
///   ( γ^⌈log n / log γ⌉ · δ · qA / n,  δ,  sqrt(n / (dmax · k)),  50% )
///
/// against every SIMPLE-ADV adversary whose query pool returns each
/// document at most `dmax` times. The ε term is the segment top scaled to
/// the aggregate: the defended estimate reveals the aggregate only up to
/// the factor-γ granularity of the segment partition.
///
/// Requires n >= 1, gamma > 1, k >= 1, dmax >= 1.
SuppressionGuarantee ComputeGuarantee(size_t corpus_size, double gamma,
                                      size_t k, size_t dmax,
                                      double aggregate_value, double delta);

}  // namespace asup

#endif  // ASUP_SUPPRESS_GUARANTEE_H_
