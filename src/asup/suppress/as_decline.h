#ifndef ASUP_SUPPRESS_AS_DECLINE_H_
#define ASUP_SUPPRESS_AS_DECLINE_H_

#include <string>
#include <unordered_map>

#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/cover_finder.h"
#include "asup/suppress/history_store.h"

namespace asup {

/// Configuration of AS-DECLINE; identical knobs to AS-ARBI's trigger.
struct AsDeclineConfig {
  AsSimpleConfig simple;
  size_t cover_size = 5;
  double cover_ratio = 1.0;
  bool cache_answers = true;
};

/// Counters exposed for tests and ablations.
struct AsDeclineStats {
  uint64_t queries_processed = 0;
  uint64_t cache_hits = 0;
  uint64_t declined = 0;
  uint64_t simple_answers = 0;
};

/// The *decline-based* defense of Section 5.2 — the paper's stepping stone
/// toward AS-ARBI. A query whose match set is σ-covered by at most m
/// historic answers is simply refused (status kDeclined, empty answer):
/// since the decline response is the same over every corpus in the
/// indistinguishable segment, the correlated-query adversary learns
/// nothing. The cost is recall: bona fide users issuing similar-but-
/// different queries ("sigmod 2012" / "acm sigmod 2012") get refusals
/// where AS-ARBI would answer virtually. Implemented to make that
/// comparison measurable (see bench_ablation_decline).
class AsDeclineEngine : public SearchService {
 public:
  AsDeclineEngine(MatchingEngine& base, const AsDeclineConfig& config);

  SearchResult Search(const KeywordQuery& query) override;

  size_t k() const override { return base_->k(); }

  const AsDeclineStats& stats() const { return stats_; }
  const HistoryStore& history() const { return history_; }
  const AsSimpleEngine& simple_engine() const { return simple_; }

 private:
  // The pipeline stages this engine's chain is composed of (the decline
  // trigger and the AS-SIMPLE fall-through; suppress/processors.h). This
  // engine is serial, so the stages touch its state directly.
  friend class AsDeclineTriggerProcessor;
  friend class AsDeclineFallthroughProcessor;

  MatchingEngine* base_;
  AsDeclineConfig config_;
  AsSimpleEngine simple_;
  HistoryStore history_;
  CoverFinder finder_;
  std::unordered_map<std::string, SearchResult> answer_cache_;
  AsDeclineStats stats_;
  /// Section 5.2's decline defense as a processor chain: match count →
  /// underflow guard → decline trigger → fall-through. Composed once at
  /// construction, immutable afterwards.
  ProcessorChain chain_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_AS_DECLINE_H_
