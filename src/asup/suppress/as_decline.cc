#include "asup/suppress/as_decline.h"

#include <memory>
#include <utility>

#include "asup/suppress/processors.h"

namespace asup {

namespace {

AsSimpleConfig InnerSimpleConfig(const AsDeclineConfig& config) {
  AsSimpleConfig inner = config.simple;
  inner.cache_answers = false;  // this engine caches final answers itself
  return inner;
}

}  // namespace

AsDeclineEngine::AsDeclineEngine(MatchingEngine& base,
                                 const AsDeclineConfig& config)
    : base_(&base),
      config_(config),
      simple_(base, InnerSimpleConfig(config)),
      finder_(history_, config.cover_size, config.cover_ratio) {
  chain_.Add(std::make_unique<MatchCountProcessor>())
      .Add(std::make_unique<UnderflowGuardProcessor>())
      .Add(std::make_unique<AsDeclineTriggerProcessor>(*this))
      .Add(std::make_unique<AsDeclineFallthroughProcessor>(*this));
}

SearchResult AsDeclineEngine::Search(const KeywordQuery& query) {
  ++stats_.queries_processed;
  if (config_.cache_answers) {
    auto it = answer_cache_.find(query.canonical());
    if (it != answer_cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }

  // No snapshot in the context: this engine is serial and epoch-agnostic,
  // so every match helper resolves against the base's current pin.
  QueryContext context;
  context.query = &query;
  context.base = base_;
  context.k = base_->k();
  context.match_limit = base_->k();
  chain_.Run(context);
  SearchResult result = std::move(context.result);
  if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
  return result;
}

}  // namespace asup
