#include "asup/suppress/as_decline.h"

namespace asup {

namespace {

AsSimpleConfig InnerSimpleConfig(const AsDeclineConfig& config) {
  AsSimpleConfig inner = config.simple;
  inner.cache_answers = false;  // this engine caches final answers itself
  return inner;
}

}  // namespace

AsDeclineEngine::AsDeclineEngine(MatchingEngine& base,
                                 const AsDeclineConfig& config)
    : base_(&base),
      config_(config),
      simple_(base, InnerSimpleConfig(config)),
      finder_(history_, config.cover_size, config.cover_ratio) {}

SearchResult AsDeclineEngine::Search(const KeywordQuery& query) {
  ++stats_.queries_processed;
  if (config_.cache_answers) {
    auto it = answer_cache_.find(query.canonical());
    if (it != answer_cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }

  SearchResult result;
  const size_t match_count = base_->MatchCount(query);
  if (match_count == 0) {
    result.status = QueryStatus::kUnderflow;
    if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
    return result;
  }

  const double max_coverable =
      static_cast<double>(config_.cover_size * base_->k());
  if (config_.cover_ratio * static_cast<double>(match_count) <=
      max_coverable) {
    const std::vector<DocId> match_ids = base_->MatchIds(query);
    if (finder_.Find(match_ids).found) {
      ++stats_.declined;
      result.status = QueryStatus::kDeclined;
      if (config_.cache_answers) {
        answer_cache_.emplace(query.canonical(), result);
      }
      return result;
    }
  }

  ++stats_.simple_answers;
  result = simple_.Search(query);
  if (!result.docs.empty()) {
    history_.Record(query, result.DocIds());
  }
  if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
  return result;
}

}  // namespace asup
