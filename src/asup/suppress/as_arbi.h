#ifndef ASUP_SUPPRESS_AS_ARBI_H_
#define ASUP_SUPPRESS_AS_ARBI_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <shared_mutex>
#include <string>

#include "asup/engine/answer_cache.h"
#include "asup/engine/parallel_service.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/cover_finder.h"
#include "asup/suppress/history_store.h"

namespace asup {

/// Configuration of AS-ARBI (paper Algorithm 2).
struct AsArbiConfig {
  /// Parameters of the inner AS-SIMPLE engine.
  AsSimpleConfig simple;

  /// Cover size m: maximum number of historic answers that may virtually
  /// answer a new query. The paper's default is 5 (and reports little
  /// sensitivity in 1..10).
  size_t cover_size = 5;

  /// Cover ratio σ in (0, 1]: fraction of the new query's matches that must
  /// be covered. The paper's default is 1.0 (the most conservative value).
  double cover_ratio = 1.0;

  /// Cache final answers per canonical query (deterministic re-issue, also
  /// under concurrent duplicate queries).
  bool cache_answers = true;
};

/// Counters exposed for tests and experiments.
struct AsArbiStats {
  uint64_t queries_processed = 0;
  uint64_t cache_hits = 0;
  /// Queries answered by virtual query processing.
  uint64_t virtual_answers = 0;
  /// Queries passed through to AS-SIMPLE.
  uint64_t simple_answers = 0;
  /// Queries for which the (cheap) trigger evaluation ran.
  uint64_t trigger_evaluations = 0;
};

/// AS-ARBI: AS-SIMPLE plus *virtual query processing*, which defeats the
/// correlated-query attack of Section 5.1.
///
/// On each query q: if at most m historic answers cover a σ fraction of
/// Sel(q), the engine answers q purely from those historic answers
/// (q ∩ (Res(q1) ∪ ... ∪ Res(qm)), top-k filtered). Since everything in a
/// virtual answer was already disclosed, the adversary learns nothing new —
/// in particular it cannot observe the LHS-degree decay that AS-SIMPLE's
/// edge removal would otherwise reveal under highly correlated queries.
/// Queries that are not covered fall through to AS-SIMPLE and are recorded
/// in the history.
///
/// Thread safety: Search may be called from concurrent workers. The history
/// store (per-document query arrays and 1000-bit signature vectors) sits
/// behind a reader-writer lock — cover evaluation takes the shared side,
/// recording a new answer the exclusive side — and two lock-free atomic
/// pre-screens (recorded-query and disclosed-document counts) let queries
/// that cannot possibly be covered skip the lock entirely. The engine
/// implements PrefetchableService for BatchExecutor's deterministic
/// parallel mode.
class AsArbiEngine : public PrefetchableService {
 public:
  // State persistence (suppress/state_io.h) reads and restores the inner
  // AS-SIMPLE state, the history, and the answer cache directly.
  friend bool SaveDefenseState(const AsArbiEngine&, std::ostream&);
  friend bool LoadDefenseState(AsArbiEngine&, std::istream&);

  /// Wraps `base` (borrowed; must outlive this engine) — any
  /// MatchingEngine (single-index or sharded); suppression and virtual
  /// query processing run post-merge on the one logical corpus.
  AsArbiEngine(MatchingEngine& base, const AsArbiConfig& config);

  SearchResult Search(const KeywordQuery& query) override;

  /// Read-only match phase: M(q) for the inner AS-SIMPLE plus — when the
  /// trigger is size-plausible — the full match-id list the cover
  /// evaluation needs. Independent of suppression state.
  QueryPrefetch PrefetchMatches(const KeywordQuery& query) const override;

  SearchResult SearchPrefetched(const KeywordQuery& query,
                                const QueryPrefetch& prefetch) override;

  bool HasCachedAnswer(const KeywordQuery& query) const override;

  size_t k() const override { return base_->k(); }

  const AsArbiConfig& config() const { return config_; }
  const HistoryStore& history() const { return history_; }
  const AsSimpleEngine& simple_engine() const { return simple_; }
  const IndistinguishableSegment& segment() const {
    return simple_.segment();
  }

  /// Snapshot of the processing counters (consistent only when quiesced).
  AsArbiStats stats() const;

 private:
  /// Full processing pipeline behind the answer cache. `prefetch` is null
  /// on the live path (match data computed on demand).
  SearchResult Process(const KeywordQuery& query,
                       const QueryPrefetch* prefetch);

  SearchResult SearchImpl(const KeywordQuery& query,
                          const QueryPrefetch* prefetch);

  /// True when m historic answers of at most k documents each could reach
  /// σ·|Sel(q)| documents — a pure size argument, no state involved.
  bool TriggerPlausible(size_t match_count) const;

  SearchResult AnswerVirtually(const KeywordQuery& query,
                               const std::vector<DocId>& match_ids,
                               const CoverResult& cover);

  MatchingEngine* base_;
  AsArbiConfig config_;
  AsSimpleEngine simple_;
  HistoryStore history_;
  CoverFinder finder_;
  AnswerCache answer_cache_;

  /// Guards history_ (and finder_'s traversals of it): shared for cover
  /// evaluation, exclusive for Record.
  mutable std::shared_mutex history_mutex_;
  /// Lock-free mirrors of history_.NumQueries() / NumDocumentsSeen() for
  /// pre-screening; they may lag the store, which only makes the screen
  /// more conservative (a just-recorded cover is found on the next query).
  std::atomic<size_t> history_queries_{0};
  std::atomic<size_t> history_docs_seen_{0};

  struct {
    std::atomic<uint64_t> queries_processed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> virtual_answers{0};
    std::atomic<uint64_t> simple_answers{0};
    std::atomic<uint64_t> trigger_evaluations{0};
  } stats_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_AS_ARBI_H_
