#ifndef ASUP_SUPPRESS_AS_ARBI_H_
#define ASUP_SUPPRESS_AS_ARBI_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "asup/engine/answer_cache.h"
#include "asup/engine/parallel_service.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/cover_finder.h"
#include "asup/suppress/history_store.h"
#include "asup/util/annotated_mutex.h"

namespace asup {

/// Configuration of AS-ARBI (paper Algorithm 2).
struct AsArbiConfig {
  /// Parameters of the inner AS-SIMPLE engine.
  AsSimpleConfig simple;

  /// Cover size m: maximum number of historic answers that may virtually
  /// answer a new query. The paper's default is 5 (and reports little
  /// sensitivity in 1..10).
  size_t cover_size = 5;

  /// Cover ratio σ in (0, 1]: fraction of the new query's matches that must
  /// be covered. The paper's default is 1.0 (the most conservative value).
  double cover_ratio = 1.0;

  /// Cache final answers per canonical query (deterministic re-issue, also
  /// under concurrent duplicate queries).
  bool cache_answers = true;
};

/// Counters exposed for tests and experiments.
struct AsArbiStats {
  uint64_t queries_processed = 0;
  uint64_t cache_hits = 0;
  /// Queries answered by virtual query processing.
  uint64_t virtual_answers = 0;
  /// Queries passed through to AS-SIMPLE.
  uint64_t simple_answers = 0;
  /// Queries for which the (cheap) trigger evaluation ran.
  uint64_t trigger_evaluations = 0;
  /// Epoch migrations performed (history compacted, inner state remapped).
  uint64_t epoch_migrations = 0;
};

/// AS-ARBI: AS-SIMPLE plus *virtual query processing*, which defeats the
/// correlated-query attack of Section 5.1.
///
/// On each query q: if at most m historic answers cover a σ fraction of
/// Sel(q), the engine answers q purely from those historic answers
/// (q ∩ (Res(q1) ∪ ... ∪ Res(qm)), top-k filtered). Since everything in a
/// virtual answer was already disclosed, the adversary learns nothing new —
/// in particular it cannot observe the LHS-degree decay that AS-SIMPLE's
/// edge removal would otherwise reveal under highly correlated queries.
/// Queries that are not covered fall through to AS-SIMPLE and are recorded
/// in the history.
///
/// Thread safety: Search may be called from concurrent workers. The history
/// store (per-document query arrays and 1000-bit signature vectors) sits
/// behind a reader-writer lock — cover evaluation takes the shared side,
/// recording a new answer the exclusive side — and two lock-free atomic
/// pre-screens (recorded-query and disclosed-document counts) let queries
/// that cannot possibly be covered skip the lock entirely. The engine
/// implements PrefetchableService for BatchExecutor's deterministic
/// parallel mode.
///
/// Epoch model: like AS-SIMPLE, all suppression state is pinned to one
/// corpus epoch. A query that finds the base's epoch moved ahead migrates
/// first: the inner AS-SIMPLE engine is migrated in lockstep (so the two
/// engines never disagree about μ or Θ_R's indexing), the history is
/// compacted — deleted documents drop out of every recorded answer, and
/// answers left empty are removed entirely (they can no longer cover
/// anything) — and the answer cache is cleared. Lock order is always
/// outer epoch → inner epoch → history (DESIGN.md §13).
class AsArbiEngine : public PrefetchableService {
 public:
  // State persistence (suppress/state_io.h) reads and restores the inner
  // AS-SIMPLE state, the history, and the answer cache directly.
  friend bool SaveDefenseState(const AsArbiEngine&, std::ostream&);
  friend bool LoadDefenseState(AsArbiEngine&, std::istream&);

  /// Wraps `base` (borrowed; must outlive this engine) — any
  /// MatchingEngine (single-index or sharded); suppression and virtual
  /// query processing run post-merge on the one logical corpus. Pins the
  /// base's current epoch.
  AsArbiEngine(MatchingEngine& base, const AsArbiConfig& config);

  SearchResult Search(const KeywordQuery& query) override;

  /// Read-only match phase: M(q) for the inner AS-SIMPLE plus — when the
  /// trigger is size-plausible — the full match-id list the cover
  /// evaluation needs. Independent of suppression state; pins the base's
  /// current epoch into the prefetch.
  QueryPrefetch PrefetchMatches(const KeywordQuery& query) const override;

  SearchResult SearchPrefetched(const KeywordQuery& query,
                                const QueryPrefetch& prefetch) override;

  bool HasCachedAnswer(const KeywordQuery& query) const override;

  size_t k() const override { return base_->k(); }

  const AsArbiConfig& config() const { return config_; }
  /// Quiesced accessor for tests and experiments: hands out a reference to
  /// the history without its lock, so the analysis is opted out here.
  const HistoryStore& history() const ASUP_NO_THREAD_SAFETY_ANALYSIS {
    return history_;
  }
  const AsSimpleEngine& simple_engine() const { return simple_; }
  const IndistinguishableSegment& segment() const {
    return simple_.segment();
  }

  /// Epoch the suppression state is currently pinned to.
  uint64_t StateEpoch() const ASUP_EXCLUDES(epoch_mutex_);

  /// Eagerly migrates the state (inner engine, history, cache) to the
  /// base's current epoch (queries do this lazily on their own).
  void MigrateToCurrentEpoch() ASUP_EXCLUDES(epoch_mutex_);

  /// Snapshot of the processing counters (consistent only when quiesced).
  AsArbiStats stats() const;

 private:
  // The pipeline stages this engine's chain is composed of (Algorithm 2
  // decomposed; suppress/processors.h). They read the history, its lock,
  // the prescreen mirrors, and the counters through this friendship;
  // lock-guarded epoch inputs (snapshot, segment) reach them only through
  // the QueryContext the engine fills under its epoch lock.
  friend class AsArbiCoverProcessor;
  friend class AsArbiVirtualProcessor;
  friend class AsArbiFallthroughProcessor;
  friend class AsArbiHistoryProcessor;

  /// Cache-wrapped processing; migrates lazily until the state epoch
  /// matches the base's current one.
  SearchResult SearchImpl(const KeywordQuery& query,
                          const QueryPrefetch* prefetch)
      ASUP_EXCLUDES(epoch_mutex_, history_mutex_);

  /// Cache claim + Process + publish against the pinned epoch. A prefetch
  /// from a different epoch is discarded and the match phase recomputed
  /// live.
  SearchResult SearchStateLocked(const KeywordQuery& query,
                                 const QueryPrefetch* prefetch)
      ASUP_REQUIRES_SHARED(epoch_mutex_) ASUP_EXCLUDES(history_mutex_);

  /// Takes the exclusive epoch lock and migrates inner engine, history and
  /// cache to `target`.
  void MigrateTo(const SnapshotHandle& target)
      ASUP_EXCLUDES(epoch_mutex_, history_mutex_);

  /// Drops deleted documents from every recorded answer and removes
  /// answers left empty; refreshes the prescreen mirrors.
  void CompactHistoryLocked(const CorpusSnapshot& to)
      ASUP_REQUIRES(epoch_mutex_, history_mutex_);

  /// True when m historic answers of at most k documents each could reach
  /// σ·|Sel(q)| documents — a pure size argument, no state involved.
  bool TriggerPlausible(size_t match_count) const;

  MatchingEngine* base_;
  AsArbiConfig config_;
  /// Guards the epoch-pinned state (snapshot_, the history's document
  /// universe, the cache's validity): shared for query processing,
  /// exclusive for migration. Ordered before simple_ so the constructor
  /// can hand the pinned snapshot to the inner engine. The declared
  /// acquisition order (epoch before history) is the DAG of DESIGN.md §13;
  /// inversions are a compile error under -Wthread-safety-beta.
  mutable SharedMutex epoch_mutex_ ASUP_ACQUIRED_BEFORE(history_mutex_);
  /// The epoch the suppression state is expressed against; the inner
  /// AS-SIMPLE engine is always pinned to the same epoch.
  SnapshotHandle snapshot_ ASUP_GUARDED_BY(epoch_mutex_);
  AsSimpleEngine simple_;
  HistoryStore history_ ASUP_GUARDED_BY(history_mutex_);
  /// Traverses history_ internally; callers hold history_mutex_ around
  /// finder_.Find (the analysis cannot see through the stored reference).
  CoverFinder finder_;
  AnswerCache answer_cache_;

  /// Guards history_ (and finder_'s traversals of it): shared for cover
  /// evaluation, exclusive for Record and epoch compaction.
  mutable SharedMutex history_mutex_;
  /// Lock-free mirrors of history_.NumQueries() / NumDocumentsSeen() for
  /// pre-screening; they may lag the store, which only makes the screen
  /// more conservative (a just-recorded cover is found on the next query).
  std::atomic<size_t> history_queries_{0};
  std::atomic<size_t> history_docs_seen_{0};

  struct {
    std::atomic<uint64_t> queries_processed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> virtual_answers{0};
    std::atomic<uint64_t> simple_answers{0};
    std::atomic<uint64_t> trigger_evaluations{0};
    std::atomic<uint64_t> epoch_migrations{0};
  } stats_;
  /// Algorithm 2 as a processor chain: match count → sel-size note →
  /// underflow guard → cover → virtual → fall-through → history record →
  /// record. Composed once at construction, immutable afterwards; run per
  /// query under the shared epoch lock.
  ProcessorChain chain_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_AS_ARBI_H_
