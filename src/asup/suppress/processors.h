#ifndef ASUP_SUPPRESS_PROCESSORS_H_
#define ASUP_SUPPRESS_PROCESSORS_H_

/// Suppression defenses as pipeline stages.
///
/// Each of the paper's run-time defenses decomposes into small
/// ResultProcessor stages over the shared QueryContext (see
/// engine/pipeline/result_processor.h): AS-SIMPLE is guard → hide → trim →
/// emulated status, AS-ARBI prepends cover → virtual answer and appends a
/// history record, AS-DECLINE swaps the virtual stage for a refusal. Every
/// chain ends in the shared DefenseRecordProcessor, which emits the
/// defense-observability events — including the segment probe, computed
/// once here via the overflow-safe IndistinguishableSegment::IndexOf
/// instead of ad-hoc log-ratio arithmetic.
///
/// The processors hold a pointer to their engine and are composed by that
/// engine's constructor; the engine's Search path populates the context's
/// lock-guarded inputs (snapshot, segment) while holding its epoch lock, so
/// stages themselves never touch annotated engine state directly — except
/// the AS-ARBI history stages, which take history_mutex_ themselves (the
/// capability analysis checks those acquisitions syntactically).

#include "asup/engine/pipeline/result_processor.h"

namespace asup {

class AsSimpleEngine;
class AsArbiEngine;
class AsDeclineEngine;

/// Algorithm 1 preconditions: |M(q)| ≤ min(|Sel(q)|, γ·k), underflow
/// short-circuit on an empty match set, and arming the segment probe for
/// every query that proceeds.
class AsSimpleGuardProcessor : public ResultProcessor {
 public:
  explicit AsSimpleGuardProcessor(AsSimpleEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "simple_guard"; }
  void Process(QueryContext& context) const override;

 private:
  AsSimpleEngine* engine_;
};

/// Algorithm 1 lines 7-13: per-document edge removal against Θ_R with the
/// keyed deterministic coin; survivors land in context.docs, all of M(q)
/// enters Θ_R.
class AsSimpleHideProcessor : public ResultProcessor {
 public:
  explicit AsSimpleHideProcessor(AsSimpleEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "hide"; }
  void Process(QueryContext& context) const override;

 private:
  AsSimpleEngine* engine_;
};

/// Algorithm 1 line 14: trim the survivors to min(|M(q)|/μ, k).
class AsSimpleTrimProcessor : public ResultProcessor {
 public:
  explicit AsSimpleTrimProcessor(AsSimpleEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "trim"; }
  void Process(QueryContext& context) const override;

 private:
  AsSimpleEngine* engine_;
};

/// Status in the *emulated* corpus: the defended engine behaves as if q
/// matched |Sel(q)|/μ documents, so it overflows iff |Sel(q)| > μ·k.
class EmulatedStatusProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "emulated_status"; }
  void Process(QueryContext& context) const override;
};

/// Shared terminal stage: emits the defense-observability events the
/// watchtower consumes, in the engines' historical order (hidden → segment
/// probe → trimmed → cover → virtual). The segment probe is the γ-segment
/// of |Sel(q)|, computed via IndistinguishableSegment::IndexOf — the same
/// overflow-safe multiply loop as the segment constructor, never
/// trunc(log n / log γ).
class DefenseRecordProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "record"; }
  bool RunsWhenFinished() const override { return true; }
  void Process(QueryContext& context) const override;
};

/// Notes |Sel(q)| on the active trace (AS-ARBI's pre-trigger note).
class SelSizeNoteProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "sel_size_note"; }
  void Process(QueryContext& context) const override;
};

/// Algorithm 2's cover trigger: size-plausibility check, lock-free
/// prescreen, match-id resolution, and the cover search under the history
/// lock. On success the covering answers' document pool is extracted into
/// the context (still under the lock) for the virtual stage.
class AsArbiCoverProcessor : public ResultProcessor {
 public:
  explicit AsArbiCoverProcessor(AsArbiEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "cover"; }
  void Process(QueryContext& context) const override;

 private:
  AsArbiEngine* engine_;
};

/// Virtual query processing: q ∩ (Res(q1) ∪ ... ∪ Res(qu)), ranked by the
/// base engine and capped at k, with the same emulated-overflow status as
/// AS-SIMPLE.
class AsArbiVirtualProcessor : public ResultProcessor {
 public:
  explicit AsArbiVirtualProcessor(AsArbiEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "virtual"; }
  void Process(QueryContext& context) const override;

 private:
  AsArbiEngine* engine_;
};

/// Uncovered queries fall through to the inner AS-SIMPLE engine, pinned to
/// the outer engine's epoch.
class AsArbiFallthroughProcessor : public ResultProcessor {
 public:
  explicit AsArbiFallthroughProcessor(AsArbiEngine& engine)
      : engine_(&engine) {}
  const char* name() const override { return "simple_fallthrough"; }
  void Process(QueryContext& context) const override;

 private:
  AsArbiEngine* engine_;
};

/// Records a non-empty fall-through answer into the history (exclusive
/// lock) and refreshes the lock-free prescreen mirrors.
class AsArbiHistoryProcessor : public ResultProcessor {
 public:
  explicit AsArbiHistoryProcessor(AsArbiEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "history_record"; }
  bool RunsWhenFinished() const override { return true; }
  void Process(QueryContext& context) const override;

 private:
  AsArbiEngine* engine_;
};

/// AS-DECLINE's trigger: same cover evaluation as AS-ARBI (serial, no
/// locks), but a covered query is refused outright (kDeclined).
class AsDeclineTriggerProcessor : public ResultProcessor {
 public:
  explicit AsDeclineTriggerProcessor(AsDeclineEngine& engine)
      : engine_(&engine) {}
  const char* name() const override { return "decline_trigger"; }
  void Process(QueryContext& context) const override;

 private:
  AsDeclineEngine* engine_;
};

/// AS-DECLINE's fall-through: answer via the inner AS-SIMPLE engine and
/// record the disclosure.
class AsDeclineFallthroughProcessor : public ResultProcessor {
 public:
  explicit AsDeclineFallthroughProcessor(AsDeclineEngine& engine)
      : engine_(&engine) {}
  const char* name() const override { return "decline_fallthrough"; }
  void Process(QueryContext& context) const override;

 private:
  AsDeclineEngine* engine_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_PROCESSORS_H_
