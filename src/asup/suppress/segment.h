#ifndef ASUP_SUPPRESS_SEGMENT_H_
#define ASUP_SUPPRESS_SEGMENT_H_

#include <cstddef>
#include <cstdint>

namespace asup {

/// Indistinguishable-segment arithmetic of AS-SIMPLE (paper Section 4.2).
///
/// Given an obfuscation factor γ, corpus sizes are partitioned into segments
/// [γ^i, γ^{i+1}). A corpus of size n = μ·γ^i (μ ∈ [1, γ)) is made to look,
/// to any SIMPLE-ADV estimator, like the segment's top γ^{i+1}:
///  * each *query's* degree is scaled down by 1/μ (to match the segment
///    bottom γ^i), and
///  * each already-returned *document's* edges are kept only with
///    probability μ/γ (to match the RHS degrees of the segment top).
class IndistinguishableSegment {
 public:
  /// Requires corpus_size >= 1 and gamma > 1.
  IndistinguishableSegment(size_t corpus_size, double gamma);

  /// The obfuscation factor γ.
  double gamma() const { return gamma_; }

  /// μ = n / γ^i, in [1, γ).
  double mu() const { return mu_; }

  /// i = the largest integer with γ^i <= n.
  int segment_index() const { return index_; }

  /// γ^i, the segment bottom.
  double segment_low() const { return low_; }

  /// γ^{i+1}, the segment top — the COUNT(*) every corpus in the segment is
  /// made to emulate.
  double segment_high() const { return low_ * gamma_; }

  /// μ/γ: probability of *keeping* an edge to an already-returned document
  /// (Algorithm 1 line 9 removes with probability 1 − μ/γ).
  double edge_keep_probability() const { return mu_ / gamma_; }

  /// 1/μ: fraction of M(q) retained by the final trim (Algorithm 1
  /// line 14).
  double lhs_keep_fraction() const { return 1.0 / mu_; }

  /// The corpus size this segment was computed for.
  size_t corpus_size() const { return n_; }

  /// The largest integer i with γ^i <= count — the segment a corpus (or an
  /// answer's |Sel(q)|) of that size falls into. Same overflow-safe
  /// multiply-loop as the constructor, including the exact-integer-γ uint64
  /// fast path; never floor(log count / log γ), which truncates one segment
  /// low at exact powers of γ. Requires count >= 1 and gamma > 1.
  static int IndexOf(size_t count, double gamma);

 private:
  /// Shared segment search: sets *index to IndexOf(count, gamma) and *low to
  /// γ^index as a double.
  static void FindSegment(size_t count, double gamma, int* index, double* low);

  size_t n_;
  double gamma_;
  int index_;
  double low_;
  double mu_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_SEGMENT_H_
