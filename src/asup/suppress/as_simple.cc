#include "asup/suppress/as_simple.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

AsSimpleEngine::AsSimpleEngine(MatchingEngine& base,
                               const AsSimpleConfig& config)
    : base_(&base),
      config_(config),
      segment_(std::max<size_t>(base.NumDocuments(), 1), config.gamma),
      coin_(config.secret_key),
      m_limit_(static_cast<size_t>(
          std::ceil(config.gamma * static_cast<double>(base.k())))),
      returned_before_(base.NumDocuments()) {
  // γ > 1 (checked again by the segment) implies |M(q)| may exceed k, which
  // is what lets trimmed top-k documents be replaced by lower-ranked ones.
  ASUP_CHECK_LE(base.k(), m_limit_);
}

AsSimpleStats AsSimpleEngine::stats() const {
  AsSimpleStats snapshot;
  snapshot.queries_processed =
      stats_.queries_processed.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  snapshot.docs_hidden = stats_.docs_hidden.load(std::memory_order_relaxed);
  snapshot.docs_trimmed = stats_.docs_trimmed.load(std::memory_order_relaxed);
  return snapshot;
}

bool AsSimpleEngine::IsActivated(DocId doc) const {
  if (!base_->corpus().Contains(doc)) return false;
  return returned_before_.Test(base_->LocalOf(doc));
}

QueryPrefetch AsSimpleEngine::PrefetchMatches(const KeywordQuery& query) const {
  QueryPrefetch prefetch;
  // Line 5: M(q) = the min(|q|, γ·k) highest-ranked matching documents — a
  // pure function of the immutable index, never of Θ_R.
  prefetch.ranked = base_->TopMatches(query, m_limit_);
  return prefetch;
}

bool AsSimpleEngine::HasCachedAnswer(const KeywordQuery& query) const {
  return config_.cache_answers && answer_cache_.Contains(query.canonical());
}

SearchResult AsSimpleEngine::Search(const KeywordQuery& query) {
  return SearchImpl(query, nullptr);
}

SearchResult AsSimpleEngine::SearchPrefetched(const KeywordQuery& query,
                                              const QueryPrefetch& prefetch) {
  return SearchImpl(query, &prefetch);
}

SearchResult AsSimpleEngine::SearchImpl(const KeywordQuery& query,
                                        const QueryPrefetch* prefetch) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  if (config_.cache_answers) {
    SearchResult cached;
    if (answer_cache_.LookupOrClaim(query.canonical(), &cached) ==
        AnswerCache::Claim::kHit) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }

  SearchResult result;
  try {
    if (prefetch) {
      result = Process(query, prefetch->ranked);
    } else {
      RankedMatches ranked;
      {
        ASUP_TRACE_STAGE(obs::Stage::kMatch);
        ranked = base_->TopMatches(query, m_limit_);
      }
      result = Process(query, ranked);
    }
  } catch (...) {
    if (config_.cache_answers) answer_cache_.Abandon(query.canonical());
    throw;
  }
  if (config_.cache_answers) answer_cache_.Publish(query.canonical(), result);
  return result;
}

SearchResult AsSimpleEngine::Process(const KeywordQuery& query,
                                     const RankedMatches& ranked) {
  const size_t m_size = ranked.docs.size();
  // Algorithm 1 line 5: |M(q)| = min(|Sel(q)|, γ·k).
  ASUP_CHECK_LE(m_size, m_limit_);
  ASUP_CHECK_LE(m_size, ranked.total_matches);

  SearchResult result;
  if (ranked.total_matches == 0) {
    result.status = QueryStatus::kUnderflow;
    return result;
  }

  // Lines 7-13: per-document edge removal. A document already in Θ_R keeps
  // its edge to this query only with probability μ/γ; the coin is a keyed
  // deterministic function of the (query, document) edge, so processing is
  // repeatable. Fresh documents are always kept and enter Θ_R — note that
  // *all* of M(q) is activated, including documents the final trim will cut
  // (exactly as in Algorithm 1, where line 14 runs after the loop). The
  // atomic test-and-set makes the fresh-or-returned decision per document
  // linearizable under concurrent queries.
  const double keep_probability = segment_.edge_keep_probability();
  // Line 9's edge-removal coin keeps with probability μ/γ ∈ (0, 1]
  // (equivalently hides with probability 1 − μ/γ ∈ [0, 1)).
  ASUP_CHECK(keep_probability > 0.0);
  ASUP_CHECK_LE(keep_probability, 1.0);
  std::vector<ScoredDoc> survivors;
  survivors.reserve(m_size);
  uint64_t hidden = 0;
  uint64_t reshown = 0;
  {
    ASUP_TRACE_STAGE(obs::Stage::kHide);
    for (const ScoredDoc& scored : ranked.docs) {
      if (returned_before_.TestAndSet(base_->LocalOf(scored.doc))) {
        if (coin_.Accept(query.hash(), scored.doc, keep_probability)) {
          survivors.push_back(scored);
          ++reshown;
        } else {
          ++hidden;
        }
      } else {
        survivors.push_back(scored);
      }
    }
  }
  if (hidden != 0) {
    stats_.docs_hidden.fetch_add(hidden, std::memory_order_relaxed);
  }
  ASUP_METRIC_COUNT("asup_suppress_docs_hidden_total", hidden);
  ASUP_METRIC_COUNT("asup_suppress_docs_reshown_total", reshown);
  ASUP_TRACE_NOTE("match_count", ranked.total_matches);
  ASUP_TRACE_NOTE("docs_hidden", hidden);
  ASUP_TRACE_NOTE("docs_reshown", reshown);
  ASUP_TRACE_NOTE("mu", segment_.mu());
  ASUP_TRACE_NOTE("gamma", config_.gamma);
  // Θ_R monotonicity: TestAndSet only ever sets bits, so after the loop
  // every document of M(q) — kept, hidden, or about to be trimmed — is
  // activated (Algorithm 1 runs line 14 after the loop; §5.1 depends on
  // all of M(q) entering Θ_R).
  ASUP_CONTRACTS_ONLY(for (const ScoredDoc& scored : ranked.docs) {
    ASUP_DCHECK(returned_before_.Test(base_->LocalOf(scored.doc)));
  })
  ASUP_CHECK_EQ(survivors.size() + hidden, m_size);

  // Line 14: trim to min(|M(q)|/μ, k) lowest-rank-last documents. When the
  // query overflows, documents hidden above are implicitly replaced by
  // lower-ranked survivors of M(q).
  {
    ASUP_TRACE_STAGE(obs::Stage::kTrim);
    const size_t lhs_target = static_cast<size_t>(std::llround(
        static_cast<double>(m_size) * segment_.lhs_keep_fraction()));
    // 1/μ ≤ 1, so the trim target never exceeds |M(q)|.
    ASUP_CHECK_LE(lhs_target, m_size);
    const size_t keep = std::min(lhs_target, base_->k());
    if (survivors.size() > keep) {
      const uint64_t trimmed = survivors.size() - keep;
      stats_.docs_trimmed.fetch_add(trimmed, std::memory_order_relaxed);
      ASUP_METRIC_COUNT("asup_suppress_docs_trimmed_total", trimmed);
      ASUP_TRACE_NOTE("docs_trimmed", trimmed);
      survivors.resize(keep);
    }
    // Line 14 postcondition: the answer is capped at min(|M(q)|/μ, k).
    ASUP_CHECK_LE(survivors.size(), keep);
    ASUP_CHECK_LE(survivors.size(), base_->k());
  }

  result.docs = std::move(survivors);
  // Status in the *emulated* corpus: the defended engine behaves as if q
  // matched |q|/μ documents, so it overflows iff |q| > μ·k.
  if (result.docs.empty()) {
    result.status = QueryStatus::kUnderflow;
  } else if (static_cast<double>(ranked.total_matches) >
             segment_.mu() * static_cast<double>(base_->k())) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  return result;
}

}  // namespace asup
