#include "asup/suppress/as_simple.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "asup/obs/event_log.h"
#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

AsSimpleEngine::AsSimpleEngine(MatchingEngine& base,
                               const AsSimpleConfig& config)
    : AsSimpleEngine(base, config, base.PinSnapshot()) {}

AsSimpleEngine::AsSimpleEngine(MatchingEngine& base,
                               const AsSimpleConfig& config,
                               SnapshotHandle snapshot)
    : base_(&base),
      config_(config),
      snapshot_(std::move(snapshot)),
      segment_(std::max<size_t>(snapshot_->NumDocuments(), 1), config.gamma),
      coin_(config.secret_key),
      m_limit_(static_cast<size_t>(
          std::ceil(config.gamma * static_cast<double>(base.k())))),
      returned_before_(snapshot_->NumDocuments()) {
  // γ > 1 (checked again by the segment) implies |M(q)| may exceed k, which
  // is what lets trimmed top-k documents be replaced by lower-ranked ones.
  ASUP_CHECK_LE(base.k(), m_limit_);
}

AsSimpleStats AsSimpleEngine::stats() const {
  AsSimpleStats snapshot;
  snapshot.queries_processed =
      stats_.queries_processed.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  snapshot.docs_hidden = stats_.docs_hidden.load(std::memory_order_relaxed);
  snapshot.docs_trimmed = stats_.docs_trimmed.load(std::memory_order_relaxed);
  snapshot.epoch_migrations =
      stats_.epoch_migrations.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t AsSimpleEngine::StateEpoch() const {
  ReaderLock lock(epoch_mutex_);
  return snapshot_->epoch();
}

void AsSimpleEngine::MigrateToCurrentEpoch() {
  MigrateTo(base_->PinSnapshot());
}

size_t AsSimpleEngine::NumActivatedDocs() const {
  ReaderLock lock(epoch_mutex_);
  return returned_before_.Count();
}

bool AsSimpleEngine::IsActivated(DocId doc) const {
  ReaderLock lock(epoch_mutex_);
  if (!snapshot_->Contains(doc)) return false;
  return returned_before_.Test(snapshot_->LocalOf(doc));
}

QueryPrefetch AsSimpleEngine::PrefetchMatches(const KeywordQuery& query) const {
  QueryPrefetch prefetch;
  // Line 5: M(q) = the min(|q|, γ·k) highest-ranked matching documents — a
  // pure function of one epoch's immutable index, never of Θ_R. The pinned
  // snapshot rides along so the commit phase can tell whether the epoch
  // moved in between.
  prefetch.snapshot = base_->PinSnapshot();
  prefetch.ranked = base_->TopMatchesIn(*prefetch.snapshot, query, m_limit_);
  return prefetch;
}

bool AsSimpleEngine::HasCachedAnswer(const KeywordQuery& query) const {
  return config_.cache_answers && answer_cache_.Contains(query.canonical());
}

SearchResult AsSimpleEngine::Search(const KeywordQuery& query) {
  return SearchImpl(query, nullptr);
}

SearchResult AsSimpleEngine::SearchPrefetched(const KeywordQuery& query,
                                              const QueryPrefetch& prefetch) {
  return SearchImpl(query, &prefetch);
}

SearchResult AsSimpleEngine::SearchImpl(const KeywordQuery& query,
                                        const QueryPrefetch* prefetch) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    {
      ReaderLock lock(epoch_mutex_);
      if (snapshot_->epoch() == base_->CurrentEpoch()) {
        return SearchStateLocked(query, prefetch);
      }
    }
    // The corpus moved ahead of the state: migrate, then re-check. The loop
    // terminates in practice because epochs advance only by explicit
    // CorpusManager::Apply calls, far rarer than queries.
    MigrateTo(base_->PinSnapshot());
  }
}

SearchResult AsSimpleEngine::SearchPinned(const KeywordQuery& query,
                                          const QueryPrefetch* prefetch,
                                          const CorpusSnapshot& target) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  ReaderLock lock(epoch_mutex_);
  // The caller (AS-ARBI) migrates this engine in lockstep with itself
  // before driving it, so the pinned epochs must already agree.
  ASUP_CHECK_EQ(snapshot_->epoch(), target.epoch());
  return SearchStateLocked(query, prefetch);
}

SearchResult AsSimpleEngine::SearchStateLocked(const KeywordQuery& query,
                                               const QueryPrefetch* prefetch) {
  if (config_.cache_answers) {
    SearchResult cached;
    if (answer_cache_.LookupOrClaim(query.canonical(), &cached) ==
        AnswerCache::Claim::kHit) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ASUP_EVENT_EMIT(kCacheHit, query.client_id(), query.hash(),
                      cached.docs.size(), 0);
      return cached;
    }
  }

  // A prefetch computed against a different epoch than the one this commit
  // pinned is stale: its M(q) reflects the wrong index. Discard it and
  // recompute live — correctness first, the parallel win second.
  const bool prefetch_usable =
      prefetch != nullptr &&
      (prefetch->snapshot == nullptr ||
       prefetch->snapshot->epoch() == snapshot_->epoch());

  SearchResult result;
  try {
    if (prefetch_usable) {
      result = Process(query, prefetch->ranked, *snapshot_);
    } else {
      RankedMatches ranked;
      {
        ASUP_TRACE_STAGE(obs::Stage::kMatch);
        ranked = base_->TopMatchesIn(*snapshot_, query, m_limit_);
      }
      result = Process(query, ranked, *snapshot_);
    }
  } catch (...) {
    if (config_.cache_answers) answer_cache_.Abandon(query.canonical());
    throw;
  }
  if (config_.cache_answers) answer_cache_.Publish(query.canonical(), result);
  return result;
}

void AsSimpleEngine::MigrateTo(const SnapshotHandle& target) {
  WriterLock lock(epoch_mutex_);
  // Raced with another migrating query: the state may already be at (or
  // past) the epoch this caller saw.
  if (target->epoch() <= snapshot_->epoch()) return;
  ASUP_TRACE_STAGE(obs::Stage::kEpochMigrate);
  MigrateStateLocked(target);
}

void AsSimpleEngine::MigrateStateLocked(const SnapshotHandle& target) {
  const CorpusSnapshot& from = *snapshot_;
  const CorpusSnapshot& to = *target;

  // Θ_R remap: dense local ids are epoch-specific, so every activated bit
  // is carried over by universe DocId. Documents deleted by the delta drop
  // out of Θ_R — they can never be returned again, and keeping them would
  // skew |Θ_R|-based accounting.
  AtomicBitmap migrated(to.NumDocuments());
  uint64_t dropped = 0;
  const size_t old_docs = from.NumDocuments();
  for (size_t local = 0; local < old_docs; ++local) {
    if (!returned_before_.Test(local)) continue;
    const DocId id = from.LocalToId(static_cast<uint32_t>(local));
    if (to.Contains(id)) {
      migrated.Set(to.LocalOf(id));
    } else {
      ++dropped;
    }
  }
  returned_before_ = std::move(migrated);

  // μ recompute: the corpus size may have crossed a segment boundary γ^i,
  // in which case the new epoch suppresses exactly like a freshly deployed
  // defense over the new corpus (paper §4: μ depends only on n and γ).
  segment_ = IndistinguishableSegment(std::max<size_t>(to.NumDocuments(), 1),
                                      config_.gamma);

  // The per-epoch determinism contract: answers computed under the old μ
  // and Θ_R indexing must not replay in the new epoch.
  answer_cache_.Clear();

  snapshot_ = target;
  stats_.epoch_migrations.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_epoch_migrations_total", 1);
  ASUP_TRACE_NOTE("epoch_thetar_dropped", dropped);
  ASUP_EVENT_EMIT(kEpochMigration, 0, 0, to.epoch(), dropped);
}

SearchResult AsSimpleEngine::Process(const KeywordQuery& query,
                                     const RankedMatches& ranked,
                                     const CorpusSnapshot& snapshot) {
  const size_t m_size = ranked.docs.size();
  // Algorithm 1 line 5: |M(q)| = min(|Sel(q)|, γ·k).
  ASUP_CHECK_LE(m_size, m_limit_);
  ASUP_CHECK_LE(m_size, ranked.total_matches);

  SearchResult result;
  if (ranked.total_matches == 0) {
    result.status = QueryStatus::kUnderflow;
    return result;
  }

  // Lines 7-13: per-document edge removal. A document already in Θ_R keeps
  // its edge to this query only with probability μ/γ; the coin is a keyed
  // deterministic function of the (query, document) edge, so processing is
  // repeatable. Fresh documents are always kept and enter Θ_R — note that
  // *all* of M(q) is activated, including documents the final trim will cut
  // (exactly as in Algorithm 1, where line 14 runs after the loop). The
  // atomic test-and-set makes the fresh-or-returned decision per document
  // linearizable under concurrent queries.
  const double keep_probability = segment_.edge_keep_probability();
  // Line 9's edge-removal coin keeps with probability μ/γ ∈ (0, 1]
  // (equivalently hides with probability 1 − μ/γ ∈ [0, 1)).
  ASUP_CHECK(keep_probability > 0.0);
  ASUP_CHECK_LE(keep_probability, 1.0);
  std::vector<ScoredDoc> survivors;
  survivors.reserve(m_size);
  uint64_t hidden = 0;
  uint64_t reshown = 0;
  {
    ASUP_TRACE_STAGE(obs::Stage::kHide);
    for (const ScoredDoc& scored : ranked.docs) {
      if (returned_before_.TestAndSet(snapshot.LocalOf(scored.doc))) {
        if (coin_.Accept(query.hash(), scored.doc, keep_probability)) {
          survivors.push_back(scored);
          ++reshown;
        } else {
          ++hidden;
        }
      } else {
        survivors.push_back(scored);
      }
    }
  }
  if (hidden != 0) {
    stats_.docs_hidden.fetch_add(hidden, std::memory_order_relaxed);
  }
  ASUP_METRIC_COUNT("asup_suppress_docs_hidden_total", hidden);
  ASUP_METRIC_COUNT("asup_suppress_docs_reshown_total", reshown);
  ASUP_TRACE_NOTE("match_count", ranked.total_matches);
  ASUP_TRACE_NOTE("docs_hidden", hidden);
  ASUP_TRACE_NOTE("docs_reshown", reshown);
  ASUP_TRACE_NOTE("mu", segment_.mu());
  ASUP_TRACE_NOTE("gamma", config_.gamma);
  if (hidden != 0) {
    ASUP_EVENT_EMIT(kAnswerHidden, query.client_id(), query.hash(), hidden,
                    0);
  }
  // The query's selectivity stratum: which γ-segment |Sel(q)| falls into.
  // Estimators that walk the answer-size strata (stratified, dynamic)
  // hop between strata far more often than bona fide traffic, which
  // clusters on the popular head — the watchtower's segment-crossing
  // feature counts those hops.
  ASUP_EVENT_EMIT(kSegmentProbe, query.client_id(), query.hash(),
                  static_cast<int64_t>(
                      std::log(static_cast<double>(ranked.total_matches)) /
                      std::log(config_.gamma)),
                  ranked.total_matches);
  // Θ_R monotonicity: TestAndSet only ever sets bits, so after the loop
  // every document of M(q) — kept, hidden, or about to be trimmed — is
  // activated (Algorithm 1 runs line 14 after the loop; §5.1 depends on
  // all of M(q) entering Θ_R).
  ASUP_CONTRACTS_ONLY(for (const ScoredDoc& scored : ranked.docs) {
    ASUP_DCHECK(returned_before_.Test(snapshot.LocalOf(scored.doc)));
  })
  ASUP_CHECK_EQ(survivors.size() + hidden, m_size);

  // Line 14: trim to min(|M(q)|/μ, k) lowest-rank-last documents. When the
  // query overflows, documents hidden above are implicitly replaced by
  // lower-ranked survivors of M(q).
  {
    ASUP_TRACE_STAGE(obs::Stage::kTrim);
    const size_t lhs_target = static_cast<size_t>(std::llround(
        static_cast<double>(m_size) * segment_.lhs_keep_fraction()));
    // 1/μ ≤ 1, so the trim target never exceeds |M(q)|.
    ASUP_CHECK_LE(lhs_target, m_size);
    const size_t keep = std::min(lhs_target, base_->k());
    if (survivors.size() > keep) {
      const uint64_t trimmed = survivors.size() - keep;
      stats_.docs_trimmed.fetch_add(trimmed, std::memory_order_relaxed);
      ASUP_METRIC_COUNT("asup_suppress_docs_trimmed_total", trimmed);
      ASUP_TRACE_NOTE("docs_trimmed", trimmed);
      ASUP_EVENT_EMIT(kAnswerTrimmed, query.client_id(), query.hash(),
                      trimmed, 0);
      survivors.resize(keep);
    }
    // Line 14 postcondition: the answer is capped at min(|M(q)|/μ, k).
    ASUP_CHECK_LE(survivors.size(), keep);
    ASUP_CHECK_LE(survivors.size(), base_->k());
  }

  result.docs = std::move(survivors);
  // Status in the *emulated* corpus: the defended engine behaves as if q
  // matched |q|/μ documents, so it overflows iff |q| > μ·k.
  if (result.docs.empty()) {
    result.status = QueryStatus::kUnderflow;
  } else if (static_cast<double>(ranked.total_matches) >
             segment_.mu() * static_cast<double>(base_->k())) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  return result;
}

}  // namespace asup
