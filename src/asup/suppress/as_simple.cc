#include "asup/suppress/as_simple.h"

#include <algorithm>
#include <cmath>

namespace asup {

AsSimpleEngine::AsSimpleEngine(PlainSearchEngine& base,
                               const AsSimpleConfig& config)
    : base_(&base),
      config_(config),
      segment_(std::max<size_t>(base.index().NumDocuments(), 1),
               config.gamma),
      coin_(config.secret_key),
      m_limit_(static_cast<size_t>(
          std::ceil(config.gamma * static_cast<double>(base.k())))) {}

SearchResult AsSimpleEngine::Search(const KeywordQuery& query) {
  ++stats_.queries_processed;
  if (config_.cache_answers) {
    auto it = answer_cache_.find(query.canonical());
    if (it != answer_cache_.end()) {
      ++stats_.cache_hits;
      return it->second;
    }
  }

  // Line 5: M(q) = the min(|q|, γ·k) highest-ranked matching documents.
  RankedMatches ranked = base_->TopMatches(query, m_limit_);
  const size_t m_size = ranked.docs.size();

  SearchResult result;
  if (ranked.total_matches == 0) {
    result.status = QueryStatus::kUnderflow;
    if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
    return result;
  }

  // Lines 7-13: per-document edge removal. A document already in Θ_R keeps
  // its edge to this query only with probability μ/γ; the coin is a keyed
  // deterministic function of the (query, document) edge, so processing is
  // repeatable. Fresh documents are always kept and enter Θ_R — note that
  // *all* of M(q) is activated, including documents the final trim will cut
  // (exactly as in Algorithm 1, where line 14 runs after the loop).
  const double keep_probability = segment_.edge_keep_probability();
  std::vector<ScoredDoc> survivors;
  survivors.reserve(m_size);
  for (const ScoredDoc& scored : ranked.docs) {
    if (returned_before_.count(scored.doc) != 0) {
      if (coin_.Accept(query.hash(), scored.doc, keep_probability)) {
        survivors.push_back(scored);
      } else {
        ++stats_.docs_hidden;
      }
    } else {
      returned_before_.insert(scored.doc);
      survivors.push_back(scored);
    }
  }

  // Line 14: trim to min(|M(q)|/μ, k) lowest-rank-last documents. When the
  // query overflows, documents hidden above are implicitly replaced by
  // lower-ranked survivors of M(q).
  const size_t lhs_target = static_cast<size_t>(std::llround(
      static_cast<double>(m_size) * segment_.lhs_keep_fraction()));
  const size_t keep = std::min(lhs_target, base_->k());
  if (survivors.size() > keep) {
    stats_.docs_trimmed += survivors.size() - keep;
    survivors.resize(keep);
  }

  result.docs = std::move(survivors);
  // Status in the *emulated* corpus: the defended engine behaves as if q
  // matched |q|/μ documents, so it overflows iff |q| > μ·k.
  if (result.docs.empty()) {
    result.status = QueryStatus::kUnderflow;
  } else if (static_cast<double>(ranked.total_matches) >
             segment_.mu() * static_cast<double>(base_->k())) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  if (config_.cache_answers) answer_cache_.emplace(query.canonical(), result);
  return result;
}

}  // namespace asup
