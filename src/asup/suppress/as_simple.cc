#include "asup/suppress/as_simple.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "asup/obs/event_log.h"
#include "asup/obs/trace.h"
#include "asup/suppress/processors.h"
#include "asup/util/check.h"

namespace asup {

AsSimpleEngine::AsSimpleEngine(MatchingEngine& base,
                               const AsSimpleConfig& config)
    : AsSimpleEngine(base, config, base.PinSnapshot()) {}

AsSimpleEngine::AsSimpleEngine(MatchingEngine& base,
                               const AsSimpleConfig& config,
                               SnapshotHandle snapshot)
    : base_(&base),
      config_(config),
      snapshot_(std::move(snapshot)),
      segment_(std::max<size_t>(snapshot_->NumDocuments(), 1), config.gamma),
      coin_(config.secret_key),
      m_limit_(static_cast<size_t>(
          std::ceil(config.gamma * static_cast<double>(base.k())))),
      returned_before_(snapshot_->NumDocuments()) {
  // γ > 1 (checked again by the segment) implies |M(q)| may exceed k, which
  // is what lets trimmed top-k documents be replaced by lower-ranked ones.
  ASUP_CHECK_LE(base.k(), m_limit_);
  chain_.Add(std::make_unique<MatchProcessor>())
      .Add(std::make_unique<AsSimpleGuardProcessor>(*this))
      .Add(std::make_unique<AsSimpleHideProcessor>(*this))
      .Add(std::make_unique<AsSimpleTrimProcessor>(*this))
      .Add(std::make_unique<EmulatedStatusProcessor>())
      .Add(std::make_unique<DefenseRecordProcessor>());
}

AsSimpleStats AsSimpleEngine::stats() const {
  AsSimpleStats snapshot;
  snapshot.queries_processed =
      stats_.queries_processed.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_.cache_hits.load(std::memory_order_relaxed);
  snapshot.docs_hidden = stats_.docs_hidden.load(std::memory_order_relaxed);
  snapshot.docs_trimmed = stats_.docs_trimmed.load(std::memory_order_relaxed);
  snapshot.epoch_migrations =
      stats_.epoch_migrations.load(std::memory_order_relaxed);
  return snapshot;
}

uint64_t AsSimpleEngine::StateEpoch() const {
  ReaderLock lock(epoch_mutex_);
  return snapshot_->epoch();
}

void AsSimpleEngine::MigrateToCurrentEpoch() {
  MigrateTo(base_->PinSnapshot());
}

size_t AsSimpleEngine::NumActivatedDocs() const {
  ReaderLock lock(epoch_mutex_);
  return returned_before_.Count();
}

bool AsSimpleEngine::IsActivated(DocId doc) const {
  ReaderLock lock(epoch_mutex_);
  if (!snapshot_->Contains(doc)) return false;
  return returned_before_.Test(snapshot_->LocalOf(doc));
}

QueryPrefetch AsSimpleEngine::PrefetchMatches(const KeywordQuery& query) const {
  QueryPrefetch prefetch;
  // Line 5: M(q) = the min(|q|, γ·k) highest-ranked matching documents — a
  // pure function of one epoch's immutable index, never of Θ_R. The pinned
  // snapshot rides along so the commit phase can tell whether the epoch
  // moved in between.
  prefetch.snapshot = base_->PinSnapshot();
  prefetch.ranked = base_->TopMatchesIn(*prefetch.snapshot, query, m_limit_);
  return prefetch;
}

bool AsSimpleEngine::HasCachedAnswer(const KeywordQuery& query) const {
  return config_.cache_answers && answer_cache_.Contains(query.canonical());
}

SearchResult AsSimpleEngine::Search(const KeywordQuery& query) {
  return SearchImpl(query, nullptr);
}

SearchResult AsSimpleEngine::SearchPrefetched(const KeywordQuery& query,
                                              const QueryPrefetch& prefetch) {
  return SearchImpl(query, &prefetch);
}

SearchResult AsSimpleEngine::SearchImpl(const KeywordQuery& query,
                                        const QueryPrefetch* prefetch) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    {
      ReaderLock lock(epoch_mutex_);
      if (snapshot_->epoch() == base_->CurrentEpoch()) {
        return SearchStateLocked(query, prefetch);
      }
    }
    // The corpus moved ahead of the state: migrate, then re-check. The loop
    // terminates in practice because epochs advance only by explicit
    // CorpusManager::Apply calls, far rarer than queries.
    MigrateTo(base_->PinSnapshot());
  }
}

SearchResult AsSimpleEngine::SearchPinned(const KeywordQuery& query,
                                          const QueryPrefetch* prefetch,
                                          const CorpusSnapshot& target) {
  stats_.queries_processed.fetch_add(1, std::memory_order_relaxed);
  ReaderLock lock(epoch_mutex_);
  // The caller (AS-ARBI) migrates this engine in lockstep with itself
  // before driving it, so the pinned epochs must already agree.
  ASUP_CHECK_EQ(snapshot_->epoch(), target.epoch());
  return SearchStateLocked(query, prefetch);
}

SearchResult AsSimpleEngine::SearchStateLocked(const KeywordQuery& query,
                                               const QueryPrefetch* prefetch) {
  if (config_.cache_answers) {
    SearchResult cached;
    if (answer_cache_.LookupOrClaim(query.canonical(), &cached) ==
        AnswerCache::Claim::kHit) {
      stats_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      ASUP_EVENT_EMIT(kCacheHit, query.client_id(), query.hash(),
                      cached.docs.size(), 0);
      return cached;
    }
  }

  // A prefetch computed against a different epoch than the one this commit
  // pinned is stale: its M(q) reflects the wrong index. Discard it and
  // recompute live — correctness first, the parallel win second.
  const bool prefetch_usable =
      prefetch != nullptr &&
      (prefetch->snapshot == nullptr ||
       prefetch->snapshot->epoch() == snapshot_->epoch());

  QueryContext context;
  context.query = &query;
  context.base = base_;
  context.snapshot = snapshot_.get();
  context.k = base_->k();
  context.match_limit = m_limit_;
  context.prefetch = prefetch_usable ? prefetch : nullptr;
  context.trace_match = true;
  context.segment = &segment_;
  SearchResult result;
  try {
    chain_.Run(context);
    result = std::move(context.result);
  } catch (...) {
    if (config_.cache_answers) answer_cache_.Abandon(query.canonical());
    throw;
  }
  if (config_.cache_answers) answer_cache_.Publish(query.canonical(), result);
  return result;
}

void AsSimpleEngine::MigrateTo(const SnapshotHandle& target) {
  WriterLock lock(epoch_mutex_);
  // Raced with another migrating query: the state may already be at (or
  // past) the epoch this caller saw.
  if (target->epoch() <= snapshot_->epoch()) return;
  ASUP_TRACE_STAGE(obs::Stage::kEpochMigrate);
  MigrateStateLocked(target);
}

void AsSimpleEngine::MigrateStateLocked(const SnapshotHandle& target) {
  const CorpusSnapshot& from = *snapshot_;
  const CorpusSnapshot& to = *target;

  // Θ_R remap: dense local ids are epoch-specific, so every activated bit
  // is carried over by universe DocId. Documents deleted by the delta drop
  // out of Θ_R — they can never be returned again, and keeping them would
  // skew |Θ_R|-based accounting.
  AtomicBitmap migrated(to.NumDocuments());
  uint64_t dropped = 0;
  const size_t old_docs = from.NumDocuments();
  for (size_t local = 0; local < old_docs; ++local) {
    if (!returned_before_.Test(local)) continue;
    const DocId id = from.LocalToId(static_cast<uint32_t>(local));
    if (to.Contains(id)) {
      migrated.Set(to.LocalOf(id));
    } else {
      ++dropped;
    }
  }
  returned_before_ = std::move(migrated);

  // μ recompute: the corpus size may have crossed a segment boundary γ^i,
  // in which case the new epoch suppresses exactly like a freshly deployed
  // defense over the new corpus (paper §4: μ depends only on n and γ).
  segment_ = IndistinguishableSegment(std::max<size_t>(to.NumDocuments(), 1),
                                      config_.gamma);

  // The per-epoch determinism contract: answers computed under the old μ
  // and Θ_R indexing must not replay in the new epoch.
  answer_cache_.Clear();

  snapshot_ = target;
  stats_.epoch_migrations.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_epoch_migrations_total", 1);
  ASUP_TRACE_NOTE("epoch_thetar_dropped", dropped);
  ASUP_EVENT_EMIT(kEpochMigration, 0, 0, to.epoch(), dropped);
}

}  // namespace asup
