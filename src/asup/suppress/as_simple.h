#ifndef ASUP_SUPPRESS_AS_SIMPLE_H_
#define ASUP_SUPPRESS_AS_SIMPLE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "asup/engine/answer_cache.h"
#include "asup/engine/parallel_service.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/suppress/segment.h"
#include "asup/util/atomic_bitmap.h"
#include "asup/util/hash.h"

namespace asup {

/// Configuration of AS-SIMPLE (paper Algorithm 1).
struct AsSimpleConfig {
  /// Obfuscation factor γ > 1. Larger γ = more stringent suppression,
  /// lower utility (paper Theorems 4.1 / 4.2).
  double gamma = 2.0;

  /// Secret key for the deterministic per-edge coins. Must stay
  /// server-side: an adversary knowing the key could replay the coins.
  uint64_t secret_key = 0x517bd152a1c7d9e3ULL;

  /// Cache final answers per canonical query so that re-issuing a query
  /// returns the identical answer (the deterministic-processing requirement
  /// of Section 2.1). Under concurrency the cache also serializes duplicate
  /// in-flight queries, so "same query ⇒ same answer" holds regardless of
  /// interleaving. Disable only for ablation measurements.
  bool cache_answers = true;
};

/// Counters exposed for tests and the overhead experiments.
struct AsSimpleStats {
  uint64_t queries_processed = 0;
  uint64_t cache_hits = 0;
  /// Documents hidden by the per-document edge removal (line 9).
  uint64_t docs_hidden = 0;
  /// Documents trimmed by the final LHS-degree cut (line 14).
  uint64_t docs_trimmed = 0;
};

/// AS-SIMPLE: run-time document hiding that suppresses COUNT/SUM aggregates
/// against the SIMPLE-ADV class (all published sampling estimators) while
/// barely touching the top-k answers bona fide users see.
///
/// For each query q with match set Sel(q):
///   1. M(q) = the min(|q|, γ·k) highest-ranked matching documents.
///   2. Every document of M(q) that was returned by some earlier query is
///      *hidden* with probability 1 − μ/γ (deterministic keyed coin per
///      (query, document) edge); fresh documents are kept and marked
///      returned (Θ_R).
///   3. The surviving list is trimmed to min(|M(q)|/μ, k) documents —
///      hidden/trimmed top-k documents are thereby replaced by lower-ranked
///      survivors of M(q) when the query overflows.
///
/// Thread safety: Search may be called from concurrent workers. Θ_R is an
/// atomic bitmap (per-document test-and-set), counters are atomic, and the
/// answer cache serializes duplicate in-flight queries. The match phase is
/// read-only against the immutable index, so the engine also implements
/// PrefetchableService for BatchExecutor's deterministic parallel mode
/// (see DESIGN.md, "Threading model").
class AsSimpleEngine : public PrefetchableService {
 public:
  // State persistence (suppress/state_io.h) reads and restores Θ_R and the
  // answer cache directly.
  friend bool SaveDefenseState(const AsSimpleEngine&, std::ostream&);
  friend bool LoadDefenseState(AsSimpleEngine&, std::istream&);

  /// Wraps `base` (borrowed; must outlive this engine) — any
  /// MatchingEngine: the single-index PlainSearchEngine or the sharded
  /// scatter-gather ShardedSearchService. Suppression always runs
  /// post-merge on the one logical corpus the base presents.
  AsSimpleEngine(MatchingEngine& base, const AsSimpleConfig& config);

  SearchResult Search(const KeywordQuery& query) override;

  /// Read-only match phase: M(q), independent of suppression state.
  QueryPrefetch PrefetchMatches(const KeywordQuery& query) const override;

  /// Stateful phase of Search, fed a prefetched M(q).
  SearchResult SearchPrefetched(const KeywordQuery& query,
                                const QueryPrefetch& prefetch) override;

  bool HasCachedAnswer(const KeywordQuery& query) const override;

  size_t k() const override { return base_->k(); }

  const IndistinguishableSegment& segment() const { return segment_; }
  const AsSimpleConfig& config() const { return config_; }
  MatchingEngine& base() const { return *base_; }

  /// Snapshot of the processing counters (consistent only when quiesced).
  AsSimpleStats stats() const;

  /// |Θ_R|: number of documents returned (or activated) so far.
  size_t NumActivatedDocs() const { return returned_before_.Count(); }

  /// True if `doc` is in Θ_R.
  bool IsActivated(DocId doc) const;

 private:
  /// The stateful suppression phase (Algorithm 1 lines 7-14) applied to a
  /// prefetched M(q). Safe for concurrent callers; never reads the cache.
  SearchResult Process(const KeywordQuery& query, const RankedMatches& ranked);

  /// Cache-wrapped processing shared by Search and SearchPrefetched.
  SearchResult SearchImpl(const KeywordQuery& query,
                          const QueryPrefetch* prefetch);

  MatchingEngine* base_;
  AsSimpleConfig config_;
  IndistinguishableSegment segment_;
  DeterministicCoin coin_;
  size_t m_limit_;  // γ·k, the size cap of M(q)
  AtomicBitmap returned_before_;  // Θ_R, indexed by dense local doc id
  AnswerCache answer_cache_;
  struct {
    std::atomic<uint64_t> queries_processed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> docs_hidden{0};
    std::atomic<uint64_t> docs_trimmed{0};
  } stats_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_AS_SIMPLE_H_
