#ifndef ASUP_SUPPRESS_AS_SIMPLE_H_
#define ASUP_SUPPRESS_AS_SIMPLE_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "asup/engine/answer_cache.h"
#include "asup/engine/parallel_service.h"
#include "asup/engine/pipeline/result_processor.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/suppress/segment.h"
#include "asup/util/annotated_mutex.h"
#include "asup/util/atomic_bitmap.h"
#include "asup/util/hash.h"

namespace asup {

class AsArbiEngine;
class AsSimpleGuardProcessor;
class AsSimpleHideProcessor;
class AsSimpleTrimProcessor;

/// Configuration of AS-SIMPLE (paper Algorithm 1).
struct AsSimpleConfig {
  /// Obfuscation factor γ > 1. Larger γ = more stringent suppression,
  /// lower utility (paper Theorems 4.1 / 4.2).
  double gamma = 2.0;

  /// Secret key for the deterministic per-edge coins. Must stay
  /// server-side: an adversary knowing the key could replay the coins.
  uint64_t secret_key = 0x517bd152a1c7d9e3ULL;

  /// Cache final answers per canonical query so that re-issuing a query
  /// returns the identical answer (the deterministic-processing requirement
  /// of Section 2.1). Under concurrency the cache also serializes duplicate
  /// in-flight queries, so "same query ⇒ same answer" holds regardless of
  /// interleaving. Disable only for ablation measurements.
  bool cache_answers = true;
};

/// Counters exposed for tests and the overhead experiments.
struct AsSimpleStats {
  uint64_t queries_processed = 0;
  uint64_t cache_hits = 0;
  /// Documents hidden by the per-document edge removal (line 9).
  uint64_t docs_hidden = 0;
  /// Documents trimmed by the final LHS-degree cut (line 14).
  uint64_t docs_trimmed = 0;
  /// Epoch migrations performed (corpus changed under the engine).
  uint64_t epoch_migrations = 0;
};

/// AS-SIMPLE: run-time document hiding that suppresses COUNT/SUM aggregates
/// against the SIMPLE-ADV class (all published sampling estimators) while
/// barely touching the top-k answers bona fide users see.
///
/// For each query q with match set Sel(q):
///   1. M(q) = the min(|q|, γ·k) highest-ranked matching documents.
///   2. Every document of M(q) that was returned by some earlier query is
///      *hidden* with probability 1 − μ/γ (deterministic keyed coin per
///      (query, document) edge); fresh documents are kept and marked
///      returned (Θ_R).
///   3. The surviving list is trimmed to min(|M(q)|/μ, k) documents —
///      hidden/trimmed top-k documents are thereby replaced by lower-ranked
///      survivors of M(q) when the query overflows.
///
/// Thread safety: Search may be called from concurrent workers. Θ_R is an
/// atomic bitmap (per-document test-and-set), counters are atomic, and the
/// answer cache serializes duplicate in-flight queries. The match phase is
/// read-only against the immutable index, so the engine also implements
/// PrefetchableService for BatchExecutor's deterministic parallel mode
/// (see DESIGN.md, "Threading model").
///
/// Epoch model: the suppression state (Θ_R's dense-local indexing, μ, the
/// answer cache) is pinned to one corpus epoch. When the base engine's
/// current epoch moves ahead (a CorpusManager published a delta), the next
/// query migrates the state first — Θ_R is remapped document-by-document
/// into the new local-id space (deleted documents drop out), μ is
/// recomputed from the new corpus size (the query may thereby cross a
/// segment boundary γ^i), and the answer cache is cleared (the determinism
/// guarantee of Section 2.1 is *per epoch*; answers computed under the old
/// μ must not replay). Queries take the shared side of an epoch lock,
/// migration the exclusive side, so processing always sees state and
/// snapshot in agreement (DESIGN.md §13).
class AsSimpleEngine : public PrefetchableService {
 public:
  // State persistence (suppress/state_io.h) reads and restores Θ_R and the
  // answer cache directly.
  friend bool SaveDefenseState(const AsSimpleEngine&, std::ostream&);
  friend bool LoadDefenseState(AsSimpleEngine&, std::istream&);

  /// Wraps `base` (borrowed; must outlive this engine) — any
  /// MatchingEngine: the single-index PlainSearchEngine or the sharded
  /// scatter-gather ShardedSearchService. Suppression always runs
  /// post-merge on the one logical corpus the base presents. Pins the
  /// base's current epoch.
  AsSimpleEngine(MatchingEngine& base, const AsSimpleConfig& config);

  SearchResult Search(const KeywordQuery& query) override;

  /// Read-only match phase: M(q), independent of suppression state.
  /// Pins the base's current epoch into the prefetch.
  QueryPrefetch PrefetchMatches(const KeywordQuery& query) const override;

  /// Stateful phase of Search, fed a prefetched M(q). A prefetch from a
  /// different epoch than the one the commit runs in is discarded and the
  /// match phase recomputed live.
  SearchResult SearchPrefetched(const KeywordQuery& query,
                                const QueryPrefetch& prefetch) override;

  bool HasCachedAnswer(const KeywordQuery& query) const override;

  size_t k() const override { return base_->k(); }

  /// Segment arithmetic of the *state's* epoch. Stable while queries are
  /// in flight on this epoch; changes under migration. Hands out a
  /// reference without epoch_mutex_ (AS-ARBI holds its own epoch lock,
  /// which pins this engine's epoch in lockstep; tests call it quiesced),
  /// so the analysis is opted out here.
  const IndistinguishableSegment& segment() const
      ASUP_NO_THREAD_SAFETY_ANALYSIS {
    return segment_;
  }
  const AsSimpleConfig& config() const { return config_; }
  MatchingEngine& base() const { return *base_; }

  /// Epoch the suppression state is currently pinned to.
  uint64_t StateEpoch() const ASUP_EXCLUDES(epoch_mutex_);

  /// Eagerly migrates the state to the base's current epoch (queries do
  /// this lazily on their own).
  void MigrateToCurrentEpoch() ASUP_EXCLUDES(epoch_mutex_);

  /// Processes `query` strictly within `target`'s epoch. The caller
  /// (AS-ARBI) must guarantee the state is already at that epoch and hold
  /// off migrations for the duration of the call.
  SearchResult SearchPinned(const KeywordQuery& query,
                            const QueryPrefetch* prefetch,
                            const CorpusSnapshot& target)
      ASUP_EXCLUDES(epoch_mutex_);

  /// Snapshot of the processing counters (consistent only when quiesced).
  AsSimpleStats stats() const;

  /// |Θ_R|: number of documents returned (or activated) so far.
  size_t NumActivatedDocs() const ASUP_EXCLUDES(epoch_mutex_);

  /// True if `doc` is in Θ_R.
  bool IsActivated(DocId doc) const ASUP_EXCLUDES(epoch_mutex_);

 private:
  // AS-ARBI drives the inner engine through SearchPinned and MigrateTo so
  // inner and outer state always sit on the same epoch; the AS-ARBI loader
  // stages a scratch inner engine on a specific snapshot.
  friend class AsArbiEngine;
  friend bool SaveDefenseState(const AsArbiEngine&, std::ostream&);
  friend bool LoadDefenseState(AsArbiEngine&, std::istream&);
  // The pipeline stages this engine's chain is composed of (Algorithm 1
  // decomposed; suppress/processors.h). They read Θ_R, the coin, and the
  // counters through this friendship; lock-guarded inputs (snapshot,
  // segment) reach them only through the QueryContext the engine fills
  // under its epoch lock.
  friend class AsSimpleGuardProcessor;
  friend class AsSimpleHideProcessor;
  friend class AsSimpleTrimProcessor;

  /// Pins an explicit snapshot instead of the base's current one (AS-ARBI
  /// keeps its inner engine on the outer engine's epoch).
  AsSimpleEngine(MatchingEngine& base, const AsSimpleConfig& config,
                 SnapshotHandle snapshot);

  /// Cache-wrapped processing shared by Search and SearchPrefetched;
  /// migrates lazily until the state epoch matches the base's current one.
  SearchResult SearchImpl(const KeywordQuery& query,
                          const QueryPrefetch* prefetch)
      ASUP_EXCLUDES(epoch_mutex_);

  /// Cache claim + Process + publish against the state's pinned epoch.
  SearchResult SearchStateLocked(const KeywordQuery& query,
                                 const QueryPrefetch* prefetch)
      ASUP_REQUIRES_SHARED(epoch_mutex_);

  /// Takes the exclusive epoch lock and migrates the state to `target`.
  void MigrateTo(const SnapshotHandle& target) ASUP_EXCLUDES(epoch_mutex_);

  /// Θ_R remap + μ recompute + cache clear.
  void MigrateStateLocked(const SnapshotHandle& target)
      ASUP_REQUIRES(epoch_mutex_);

  MatchingEngine* base_;
  AsSimpleConfig config_;
  /// Guards the epoch-pinned state below (snapshot_, segment_,
  /// returned_before_'s indexing, and the answer cache's validity): shared
  /// for query processing, exclusive for migration.
  mutable SharedMutex epoch_mutex_;
  /// The epoch the suppression state is expressed against.
  SnapshotHandle snapshot_ ASUP_GUARDED_BY(epoch_mutex_);
  IndistinguishableSegment segment_ ASUP_GUARDED_BY(epoch_mutex_);
  DeterministicCoin coin_;
  size_t m_limit_;  // γ·k, the size cap of M(q)
  /// Θ_R, indexed by dense local doc id. Internally synchronized
  /// (per-bit atomic test-and-set), so deliberately NOT ASUP_GUARDED_BY:
  /// the analysis would reject the legal TestAndSet under the shared side
  /// (any non-const call counts as a write). epoch_mutex_ guards only its
  /// *reassignment* during migration, which holds the exclusive side.
  AtomicBitmap returned_before_;
  /// Internally synchronized (sharded mutexes of its own); epoch_mutex_
  /// orders its Clear() against in-flight queries, not its field access.
  AnswerCache answer_cache_;
  struct {
    std::atomic<uint64_t> queries_processed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> docs_hidden{0};
    std::atomic<uint64_t> docs_trimmed{0};
    std::atomic<uint64_t> epoch_migrations{0};
  } stats_;
  /// Algorithm 1 as a processor chain: match → guard → hide → trim →
  /// emulated status → record. Composed once at construction, immutable
  /// afterwards; run per query under the shared epoch lock.
  ProcessorChain chain_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_AS_SIMPLE_H_
