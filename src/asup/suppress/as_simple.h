#ifndef ASUP_SUPPRESS_AS_SIMPLE_H_
#define ASUP_SUPPRESS_AS_SIMPLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/suppress/segment.h"
#include "asup/util/hash.h"

namespace asup {

/// Configuration of AS-SIMPLE (paper Algorithm 1).
struct AsSimpleConfig {
  /// Obfuscation factor γ > 1. Larger γ = more stringent suppression,
  /// lower utility (paper Theorems 4.1 / 4.2).
  double gamma = 2.0;

  /// Secret key for the deterministic per-edge coins. Must stay
  /// server-side: an adversary knowing the key could replay the coins.
  uint64_t secret_key = 0x517bd152a1c7d9e3ULL;

  /// Cache final answers per canonical query so that re-issuing a query
  /// returns the identical answer (the deterministic-processing requirement
  /// of Section 2.1). Disable only for ablation measurements.
  bool cache_answers = true;
};

/// Counters exposed for tests and the overhead experiments.
struct AsSimpleStats {
  uint64_t queries_processed = 0;
  uint64_t cache_hits = 0;
  /// Documents hidden by the per-document edge removal (line 9).
  uint64_t docs_hidden = 0;
  /// Documents trimmed by the final LHS-degree cut (line 14).
  uint64_t docs_trimmed = 0;
};

/// AS-SIMPLE: run-time document hiding that suppresses COUNT/SUM aggregates
/// against the SIMPLE-ADV class (all published sampling estimators) while
/// barely touching the top-k answers bona fide users see.
///
/// For each query q with match set Sel(q):
///   1. M(q) = the min(|q|, γ·k) highest-ranked matching documents.
///   2. Every document of M(q) that was returned by some earlier query is
///      *hidden* with probability 1 − μ/γ (deterministic keyed coin per
///      (query, document) edge); fresh documents are kept and marked
///      returned (Θ_R).
///   3. The surviving list is trimmed to min(|M(q)|/μ, k) documents —
///      hidden/trimmed top-k documents are thereby replaced by lower-ranked
///      survivors of M(q) when the query overflows.
///
/// The engine is deliberately single-threaded: a production deployment
/// would shard Θ_R and the answer cache per index replica.
class AsSimpleEngine : public SearchService {
 public:
  // State persistence (suppress/state_io.h) reads and restores Θ_R and the
  // answer cache directly.
  friend bool SaveDefenseState(const AsSimpleEngine&, std::ostream&);
  friend bool LoadDefenseState(AsSimpleEngine&, std::istream&);

  /// Wraps `base` (borrowed; must outlive this engine).
  AsSimpleEngine(PlainSearchEngine& base, const AsSimpleConfig& config);

  SearchResult Search(const KeywordQuery& query) override;

  size_t k() const override { return base_->k(); }

  const IndistinguishableSegment& segment() const { return segment_; }
  const AsSimpleConfig& config() const { return config_; }
  const AsSimpleStats& stats() const { return stats_; }
  PlainSearchEngine& base() const { return *base_; }

  /// |Θ_R|: number of documents returned (or activated) so far.
  size_t NumActivatedDocs() const { return returned_before_.size(); }

  /// True if `doc` is in Θ_R.
  bool IsActivated(DocId doc) const {
    return returned_before_.count(doc) != 0;
  }

 private:
  PlainSearchEngine* base_;
  AsSimpleConfig config_;
  IndistinguishableSegment segment_;
  DeterministicCoin coin_;
  size_t m_limit_;  // γ·k, the size cap of M(q)
  std::unordered_set<DocId> returned_before_;  // Θ_R
  std::unordered_map<std::string, SearchResult> answer_cache_;
  AsSimpleStats stats_;
};

}  // namespace asup

#endif  // ASUP_SUPPRESS_AS_SIMPLE_H_
