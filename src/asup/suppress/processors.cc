#include "asup/suppress/processors.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <vector>

#include "asup/obs/event_log.h"
#include "asup/obs/trace.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_decline.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/segment.h"
#include "asup/util/check.h"

namespace asup {

void AsSimpleGuardProcessor::Process(QueryContext& context) const {
  const RankedMatches& ranked = *context.ranked;
  const size_t m_size = ranked.docs.size();
  // Algorithm 1 line 5: |M(q)| = min(|Sel(q)|, γ·k).
  ASUP_CHECK_LE(m_size, engine_->m_limit_);
  ASUP_CHECK_LE(m_size, ranked.total_matches);
  if (ranked.total_matches == 0) {
    context.result.status = QueryStatus::kUnderflow;
    context.finished = true;
    return;
  }
  // Every query that reaches the suppression stages gets a segment probe
  // (the watchtower's selectivity-stratum feature).
  context.probe_ready = true;
}

void AsSimpleHideProcessor::Process(QueryContext& context) const {
  const RankedMatches& ranked = *context.ranked;
  const size_t m_size = ranked.docs.size();

  // Lines 7-13: per-document edge removal. A document already in Θ_R keeps
  // its edge to this query only with probability μ/γ; the coin is a keyed
  // deterministic function of the (query, document) edge, so processing is
  // repeatable. Fresh documents are always kept and enter Θ_R — note that
  // *all* of M(q) is activated, including documents the final trim will cut
  // (exactly as in Algorithm 1, where line 14 runs after the loop). The
  // atomic test-and-set makes the fresh-or-returned decision per document
  // linearizable under concurrent queries.
  const double keep_probability = context.segment->edge_keep_probability();
  // Line 9's edge-removal coin keeps with probability μ/γ ∈ (0, 1]
  // (equivalently hides with probability 1 − μ/γ ∈ [0, 1)).
  ASUP_CHECK(keep_probability > 0.0);
  ASUP_CHECK_LE(keep_probability, 1.0);
  context.docs.reserve(m_size);
  uint64_t hidden = 0;
  uint64_t reshown = 0;
  {
    ASUP_TRACE_STAGE(obs::Stage::kHide);
    for (const ScoredDoc& scored : ranked.docs) {
      if (engine_->returned_before_.TestAndSet(
              context.snapshot->LocalOf(scored.doc))) {
        if (engine_->coin_.Accept(context.query->hash(), scored.doc,
                                  keep_probability)) {
          context.docs.push_back(scored);
          ++reshown;
        } else {
          ++hidden;
        }
      } else {
        context.docs.push_back(scored);
      }
    }
  }
  if (hidden != 0) {
    engine_->stats_.docs_hidden.fetch_add(hidden, std::memory_order_relaxed);
  }
  ASUP_METRIC_COUNT("asup_suppress_docs_hidden_total", hidden);
  ASUP_METRIC_COUNT("asup_suppress_docs_reshown_total", reshown);
  ASUP_TRACE_NOTE("match_count", ranked.total_matches);
  ASUP_TRACE_NOTE("docs_hidden", hidden);
  ASUP_TRACE_NOTE("docs_reshown", reshown);
  ASUP_TRACE_NOTE("mu", context.segment->mu());
  ASUP_TRACE_NOTE("gamma", context.segment->gamma());
  context.docs_hidden = hidden;
  context.docs_reshown = reshown;
  // Θ_R monotonicity: TestAndSet only ever sets bits, so after the loop
  // every document of M(q) — kept, hidden, or about to be trimmed — is
  // activated (Algorithm 1 runs line 14 after the loop; §5.1 depends on
  // all of M(q) entering Θ_R).
  ASUP_CONTRACTS_ONLY(for (const ScoredDoc& scored : ranked.docs) {
    ASUP_DCHECK(
        engine_->returned_before_.Test(context.snapshot->LocalOf(scored.doc)));
  })
  ASUP_CHECK_EQ(context.docs.size() + hidden, m_size);
}

void AsSimpleTrimProcessor::Process(QueryContext& context) const {
  // Line 14: trim to min(|M(q)|/μ, k) lowest-rank-last documents. When the
  // query overflows, documents hidden above are implicitly replaced by
  // lower-ranked survivors of M(q).
  ASUP_TRACE_STAGE(obs::Stage::kTrim);
  const size_t m_size = context.ranked->docs.size();
  const size_t lhs_target = static_cast<size_t>(std::llround(
      static_cast<double>(m_size) * context.segment->lhs_keep_fraction()));
  // 1/μ ≤ 1, so the trim target never exceeds |M(q)|.
  ASUP_CHECK_LE(lhs_target, m_size);
  const size_t keep = std::min(lhs_target, context.k);
  if (context.docs.size() > keep) {
    const uint64_t trimmed = context.docs.size() - keep;
    engine_->stats_.docs_trimmed.fetch_add(trimmed, std::memory_order_relaxed);
    ASUP_METRIC_COUNT("asup_suppress_docs_trimmed_total", trimmed);
    ASUP_TRACE_NOTE("docs_trimmed", trimmed);
    context.docs_trimmed = trimmed;
    context.docs.resize(keep);
  }
  // Line 14 postcondition: the answer is capped at min(|M(q)|/μ, k).
  ASUP_CHECK_LE(context.docs.size(), keep);
  ASUP_CHECK_LE(context.docs.size(), context.k);
}

void EmulatedStatusProcessor::Process(QueryContext& context) const {
  context.result.docs = std::move(context.docs);
  // Status in the *emulated* corpus: the defended engine behaves as if q
  // matched |q|/μ documents, so it overflows iff |q| > μ·k.
  if (context.result.docs.empty()) {
    context.result.status = QueryStatus::kUnderflow;
  } else if (static_cast<double>(context.ranked->total_matches) >
             context.segment->mu() * static_cast<double>(context.k)) {
    context.result.status = QueryStatus::kOverflow;
  } else {
    context.result.status = QueryStatus::kValid;
  }
  context.finished = true;
}

void DefenseRecordProcessor::Process(QueryContext& context) const {
  const KeywordQuery& query = *context.query;
  if (context.docs_hidden != 0) {
    ASUP_EVENT_EMIT(kAnswerHidden, query.client_id(), query.hash(),
                    context.docs_hidden, 0);
  }
  if (context.probe_ready) {
    // The query's selectivity stratum: which γ-segment |Sel(q)| falls into.
    // Estimators that walk the answer-size strata (stratified, dynamic)
    // hop between strata far more often than bona fide traffic, which
    // clusters on the popular head — the watchtower's segment-crossing
    // feature counts those hops. Computed with the same exact multiply
    // loop as the segment itself: a log-ratio here truncates one segment
    // low at exact powers of γ and fabricates crossings.
    ASUP_EVENT_EMIT(kSegmentProbe, query.client_id(), query.hash(),
                    IndistinguishableSegment::IndexOf(
                        context.match_count, context.segment->gamma()),
                    context.match_count);
  }
  if (context.docs_trimmed != 0) {
    ASUP_EVENT_EMIT(kAnswerTrimmed, query.client_id(), query.hash(),
                    context.docs_trimmed, 0);
  }
  if (context.cover_found) {
    ASUP_EVENT_EMIT(kCoverFound, query.client_id(), query.hash(),
                    context.cover_answers_used, context.match_ids->size());
  }
  if (context.virtual_answered) {
    ASUP_EVENT_EMIT(kVirtualAnswer, query.client_id(), query.hash(),
                    context.result.docs.size(), context.cover_answers_used);
  }
}

void SelSizeNoteProcessor::Process(QueryContext& context) const {
  // |Sel(q)|; AS-SIMPLE notes its own "match_count" when we fall through.
  ASUP_TRACE_NOTE("sel_size", context.match_count);
}

void AsArbiCoverProcessor::Process(QueryContext& context) const {
  if (!engine_->TriggerPlausible(context.match_count)) return;
  engine_->stats_.trigger_evaluations.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_arbi_trigger_evals_total", 1);
  // Lock-free pre-screen: with no recorded answer, or fewer documents
  // ever disclosed than the coverage target, no cover can exist — skip
  // the history lock entirely.
  const size_t need = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(engine_->config_.cover_ratio *
                       static_cast<double>(context.match_count))));
  if (engine_->history_queries_.load(std::memory_order_acquire) == 0 ||
      engine_->history_docs_seen_.load(std::memory_order_acquire) < need) {
    return;
  }
  if (context.prefetch != nullptr && context.prefetch->has_match_ids) {
    context.match_ids = &context.prefetch->match_ids;
  } else {
    {
      ASUP_TRACE_STAGE(obs::Stage::kMatch);
      context.owned_match_ids = context.MatchIds();
    }
    context.match_ids = &context.owned_match_ids;
  }
  ReaderLock lock(engine_->history_mutex_);
  CoverResult cover;
  {
    ASUP_TRACE_STAGE(obs::Stage::kCover);
    cover = engine_->finder_.Find(*context.match_ids);
  }
  if (!cover.found) return;
  engine_->stats_.virtual_answers.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_arbi_virtual_answers_total", 1);
  ASUP_TRACE_NOTE("cover_answers_used", cover.query_indices.size());
  // Algorithm 2's cover contract: at most m historic answers...
  ASUP_CHECK(!cover.query_indices.empty());
  ASUP_CHECK_LE(cover.query_indices.size(), engine_->config_.cover_size);
  context.cover_found = true;
  context.cover_answers_used = cover.query_indices.size();
  // Union of the covering historic answers, read while still holding the
  // history lock (shared side) the cover search ran under.
  for (uint32_t qi : cover.query_indices) {
    ASUP_CHECK_LT(qi, engine_->history_.NumQueries());
    const auto& answer = engine_->history_.QueryAt(qi).answer;
    context.cover_pool.insert(context.cover_pool.end(), answer.begin(),
                              answer.end());
  }
  std::sort(context.cover_pool.begin(), context.cover_pool.end());
  context.cover_pool.erase(
      std::unique(context.cover_pool.begin(), context.cover_pool.end()),
      context.cover_pool.end());
}

void AsArbiVirtualProcessor::Process(QueryContext& context) const {
  if (!context.cover_found) return;
  ASUP_TRACE_STAGE(obs::Stage::kVirtual);
  const std::vector<DocId>& match_ids = *context.match_ids;
  // q ∩ (Res(q1) ∪ ... ∪ Res(qu)); both inputs are ascending.
  std::vector<DocId> virtual_ids;
  std::set_intersection(match_ids.begin(), match_ids.end(),
                        context.cover_pool.begin(), context.cover_pool.end(),
                        std::back_inserter(virtual_ids));
  ASUP_TRACE_NOTE("cover_pool_docs", context.cover_pool.size());
  ASUP_TRACE_NOTE("virtual_docs", virtual_ids.size());

  // ...covering at least ⌈σ·|Sel(q)|⌉ matching documents, every one of them
  // already disclosed by an earlier answer (so the virtual answer reveals
  // no new query–document edge and no fresh degree evidence).
  ASUP_CONTRACTS_ONLY(
      const auto need = static_cast<size_t>(
          std::ceil(engine_->config_.cover_ratio *
                    static_cast<double>(match_ids.size())));
      ASUP_CHECK(virtual_ids.size() >= need); for (DocId doc : virtual_ids) {
        ASUP_DCHECK(engine_->simple_.IsActivated(doc));
      })

  if (virtual_ids.empty()) {
    context.result.status = QueryStatus::kUnderflow;
    context.finished = true;
    return;
  }
  std::vector<ScoredDoc> ranked =
      context.base->RankDocsIn(*context.snapshot, *context.query, virtual_ids);
  if (ranked.size() > context.k) ranked.resize(context.k);
  // Top-k interface bound, same as every non-virtual answer path.
  ASUP_CHECK_LE(ranked.size(), context.k);
  context.result.docs = std::move(ranked);
  // Same emulated-overflow rule as AS-SIMPLE, so the two answer paths are
  // indistinguishable to the client.
  if (static_cast<double>(match_ids.size()) >
      context.segment->mu() * static_cast<double>(context.k)) {
    context.result.status = QueryStatus::kOverflow;
  } else {
    context.result.status = QueryStatus::kValid;
  }
  context.virtual_answered = true;
  context.finished = true;
}

void AsArbiFallthroughProcessor::Process(QueryContext& context) const {
  // Lines 6-8: fall through to AS-SIMPLE and remember the answer. The
  // inner engine is driven pinned to our snapshot — it was migrated in
  // lockstep, so the epochs agree by construction.
  engine_->stats_.simple_answers.fetch_add(1, std::memory_order_relaxed);
  ASUP_METRIC_COUNT("asup_suppress_arbi_simple_answers_total", 1);
  context.result = engine_->simple_.SearchPinned(*context.query,
                                                 context.prefetch,
                                                 *context.snapshot);
  context.fell_through = true;
  context.finished = true;
}

void AsArbiHistoryProcessor::Process(QueryContext& context) const {
  if (!context.fell_through || context.result.docs.empty()) return;
  ASUP_TRACE_STAGE(obs::Stage::kHistoryRecord);
  WriterLock lock(engine_->history_mutex_);
  ASUP_CONTRACTS_ONLY(
      const size_t queries_before = engine_->history_.NumQueries();
      const size_t docs_before = engine_->history_.NumDocumentsSeen();)
  engine_->history_.Record(*context.query, context.result.DocIds());
  // Within one epoch the history only ever grows — answers, once
  // disclosed, cannot be retracted; the cover trigger's lock-free
  // prescreen relies on the mirrors being monotone lower bounds of the
  // store. (Epoch compaction may shrink both, but only with every
  // prescreen reader quiesced behind the exclusive epoch lock.)
  ASUP_CONTRACTS_ONLY(
      ASUP_CHECK_EQ(engine_->history_.NumQueries(), queries_before + 1);
      ASUP_CHECK(engine_->history_.NumDocumentsSeen() >= docs_before);)
  engine_->history_docs_seen_.store(engine_->history_.NumDocumentsSeen(),
                                    std::memory_order_release);
  engine_->history_queries_.store(engine_->history_.NumQueries(),
                                  std::memory_order_release);
  ASUP_METRIC_GAUGE_SET("asup_suppress_history_queries",
                        engine_->history_.NumQueries());
  ASUP_METRIC_GAUGE_SET("asup_suppress_history_docs_seen",
                        engine_->history_.NumDocumentsSeen());
}

void AsDeclineTriggerProcessor::Process(QueryContext& context) const {
  const double max_coverable = static_cast<double>(
      engine_->config_.cover_size * context.k);
  if (engine_->config_.cover_ratio *
          static_cast<double>(context.match_count) >
      max_coverable) {
    return;
  }
  context.owned_match_ids = context.MatchIds();
  context.match_ids = &context.owned_match_ids;
  if (!engine_->finder_.Find(*context.match_ids).found) return;
  ++engine_->stats_.declined;
  context.result.status = QueryStatus::kDeclined;
  context.finished = true;
}

void AsDeclineFallthroughProcessor::Process(QueryContext& context) const {
  ++engine_->stats_.simple_answers;
  context.result = engine_->simple_.Search(*context.query);
  context.fell_through = true;
  if (!context.result.docs.empty()) {
    engine_->history_.Record(*context.query, context.result.DocIds());
  }
  context.finished = true;
}

}  // namespace asup
