#ifndef ASUP_SUPPRESS_DUMMY_INSERTION_H_
#define ASUP_SUPPRESS_DUMMY_INSERTION_H_

#include <unordered_set>

#include "asup/text/corpus.h"
#include "asup/text/synthetic_corpus.h"

namespace asup {

/// Dummy-document insertion — the alternative defense the paper discusses
/// and rejects (Sections 1 and 8, after [12] for structured databases):
/// pad the corpus with fabricated documents until COUNT(*) reaches the top
/// of the indistinguishable segment, so sampling estimators measure the
/// padded size.
///
/// The paper's objection is qualitative: fabricating *unstructured*
/// documents that an adversary cannot recognize as fake is hard, and every
/// dummy that sneaks into a top-k answer costs real users precision. This
/// implementation makes the comparison quantitative
/// (`bench_ablation_dummy`): the generator can fabricate statistically
/// indistinguishable documents (they come from the same model), yet the
/// precision cost is intrinsic — a fraction 1 − n/γ^{i+1} of all returned
/// results are fake.
struct DummyPaddedCorpus {
  Corpus corpus;
  /// Ids of the inserted dummy documents (for utility accounting; a real
  /// deployment would keep this list server-side).
  std::unordered_set<DocId> dummy_ids;

  /// True if `doc` is fabricated.
  bool IsDummy(DocId doc) const { return dummy_ids.count(doc) != 0; }
};

/// Pads `corpus` with documents drawn from `generator` until its size
/// reaches the top of its [γ^i, γ^{i+1}) segment. The generator must be
/// the corpus's own (or a statistically identical) source so the dummies
/// blend in; its id counter must be ahead of every id in `corpus`.
DummyPaddedCorpus PadCorpusWithDummies(const Corpus& corpus,
                                       SyntheticCorpusGenerator& generator,
                                       double gamma);

}  // namespace asup

#endif  // ASUP_SUPPRESS_DUMMY_INSERTION_H_
