#ifndef ASUP_SUPPRESS_STATE_IO_H_
#define ASUP_SUPPRESS_STATE_IO_H_

#include <iosfwd>

#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/util/annotated_mutex.h"

namespace asup {

/// Defense-state persistence.
///
/// The suppression engines are stateful *by design*: Θ_R, the answer
/// caches, and AS-ARBI's history determine what future queries see. A
/// deployment that restarts with empty state would re-run the activation
/// transient — re-issued queries would get *different* answers, violating
/// the deterministic-processing requirement of Section 2.1 and handing a
/// watching adversary a before/after comparison. These helpers snapshot
/// and restore the state so the engine resumes exactly where it stopped.
///
/// The snapshot embeds γ, the corpus size, and the secret coin key; Load
/// refuses a snapshot taken under a different configuration (the coins
/// would not replay).
///
/// Format v2 additionally embeds a *content* fingerprint of the corpus
/// epoch the state was pinned to — the hash covers document ids, lengths
/// and term frequencies, never the epoch number, so a state saved from an
/// incrementally maintained engine restores into a freshly built engine
/// over the same corpus (and vice versa). Load still accepts v1 snapshots
/// (no content check beyond the corpus size). Save and Load must run
/// quiesced, with the engine's state epoch equal to the corpus the bytes
/// describe.
///
/// Because the quiesced contract replaces locking, these friends read the
/// engines' guarded state without their mutexes and are opted out of the
/// capability analysis (the attribute lives on the definitions in
/// state_io.cc).

/// Serializes the engine's Θ_R and answer cache. Returns false on I/O
/// failure. Caller must be quiesced.
bool SaveDefenseState(const AsSimpleEngine& engine, std::ostream& out);

/// Restores a snapshot written by SaveDefenseState. Returns false on
/// corruption or configuration mismatch; the engine is unchanged on
/// failure. Caller must be quiesced.
bool LoadDefenseState(AsSimpleEngine& engine, std::istream& in);

/// Serializes the AS-ARBI state: the inner AS-SIMPLE state, the query
/// history, and the answer cache. Caller must be quiesced.
bool SaveDefenseState(const AsArbiEngine& engine, std::ostream& out);

/// Restores a snapshot written by the AS-ARBI SaveDefenseState. Caller
/// must be quiesced.
bool LoadDefenseState(AsArbiEngine& engine, std::istream& in);

}  // namespace asup

#endif  // ASUP_SUPPRESS_STATE_IO_H_
