#include "asup/suppress/dummy_insertion.h"

#include <cmath>

#include "asup/suppress/segment.h"

namespace asup {

DummyPaddedCorpus PadCorpusWithDummies(const Corpus& corpus,
                                       SyntheticCorpusGenerator& generator,
                                       double gamma) {
  const IndistinguishableSegment segment(std::max<size_t>(corpus.size(), 1),
                                         gamma);
  const size_t target =
      static_cast<size_t>(std::llround(segment.segment_high()));
  const size_t needed = target > corpus.size() ? target - corpus.size() : 0;

  DummyPaddedCorpus padded;
  const Corpus dummies = generator.Generate(needed);
  std::vector<Document> docs = corpus.documents();
  docs.reserve(docs.size() + needed);
  for (const Document& dummy : dummies.documents()) {
    padded.dummy_ids.insert(dummy.id());
    docs.push_back(dummy);
  }
  padded.corpus = Corpus(corpus.vocabulary_ptr(), std::move(docs));
  return padded;
}

}  // namespace asup
