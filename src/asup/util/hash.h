#ifndef ASUP_UTIL_HASH_H_
#define ASUP_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace asup {

/// Finalizing 64-bit mixer (splitmix64 finalizer). Good avalanche behavior;
/// used to turn structured keys into pseudo-random words.
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit hashes into one.
uint64_t HashCombine(uint64_t a, uint64_t b);

/// FNV-1a hash of a byte string.
uint64_t HashString(std::string_view s);

/// A keyed source of *deterministic* pseudo-random decisions.
///
/// AS-SIMPLE must remove each query/document edge with a fixed probability,
/// but a search engine is required to be deterministic: re-issuing a query
/// must return the same answer (Section 2.1 of the paper). Deriving every
/// coin from a secret key and the edge identity gives random-looking yet
/// perfectly repeatable decisions without storing per-edge state.
class DeterministicCoin {
 public:
  explicit DeterministicCoin(uint64_t key) : key_(key) {}

  /// Returns a uniform double in [0, 1) fully determined by (key, a, b).
  double UniformDouble(uint64_t a, uint64_t b) const;

  /// Returns true with probability `p`, deterministically for (key, a, b).
  bool Accept(uint64_t a, uint64_t b, double p) const {
    return UniformDouble(a, b) < p;
  }

  uint64_t key() const { return key_; }

 private:
  uint64_t key_;
};

}  // namespace asup

#endif  // ASUP_UTIL_HASH_H_
