#include "asup/util/csv.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace asup {

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvTable::AddRow(const std::vector<double>& row) {
  assert(row.size() == columns_.size());
  rows_.push_back(row);
}

double CsvTable::At(size_t row, size_t col) const {
  assert(row < rows_.size() && col < columns_.size());
  return rows_[row][col];
}

std::vector<double> CsvTable::Column(const std::string& name) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c] == name) {
      std::vector<double> out;
      out.reserve(rows_.size());
      for (const auto& row : rows_) out.push_back(row[c]);
      return out;
    }
  }
  std::fprintf(stderr, "CsvTable: unknown column '%s'\n", name.c_str());
  std::abort();
}

void CsvTable::Print(std::ostream& out) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) out << ',';
    out << columns_[c];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << FormatCell(row[c]);
    }
    out << '\n';
  }
}

std::string FormatCell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace asup
