#ifndef ASUP_UTIL_CHECK_H_
#define ASUP_UTIL_CHECK_H_

/// Paper-invariant contract layer.
///
/// The suppression guarantees rest on invariants the type system cannot
/// express: answers trimmed to min(|M(q)|/μ, k), Θ_R growing monotonically,
/// virtual answers being valid covers drawn only from already-disclosed
/// documents. One silent violation re-opens the degree side channel the
/// whole defense exists to close, so the decision points assert them with
/// the macros below instead of hoping.
///
/// Gating:
///   * Debug builds (NDEBUG undefined): contracts are always compiled in.
///   * Release-family builds: opt in with -DASUP_ENABLE_CONTRACTS=ON at
///     CMake configure time (CI runs a dedicated `contracts` job).
///   * Otherwise every macro compiles to nothing; the condition is type
///     checked but never evaluated, so hot paths pay zero cost.
///
/// `ASUP_CHECK*` guards the cheap O(1) invariants; `ASUP_DCHECK*` marks
/// checks that scan an answer or match set (O(k)–O(γk)). Both currently
/// follow the same gate — the two names exist so the gates can diverge
/// without touching call sites. A failed contract prints the expression,
/// the operand values (for the comparison forms) and the source location to
/// stderr, then aborts.

#if !defined(NDEBUG) || defined(ASUP_ENABLE_CONTRACTS)
#define ASUP_CONTRACTS_ENABLED 1
#else
#define ASUP_CONTRACTS_ENABLED 0
#endif

#if ASUP_CONTRACTS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace asup {
namespace contract_internal {

[[noreturn]] inline void Fail(const char* file, int line, const char* expr,
                              const std::string& values) {
  std::fprintf(stderr, "ASUP_CHECK failed: %s%s at %s:%d\n", expr,
               values.c_str(), file, line);
  std::fflush(stderr);
  std::abort();
}

template <typename A, typename B>
[[noreturn]] void FailOp(const char* file, int line, const char* expr,
                         const A& a, const B& b) {
  std::ostringstream values;
  values << " (" << a << " vs. " << b << ")";
  Fail(file, line, expr, values.str());
}

}  // namespace contract_internal
}  // namespace asup

#define ASUP_CHECK(cond)                                              \
  ((cond) ? (void)0                                                   \
          : ::asup::contract_internal::Fail(__FILE__, __LINE__, #cond, \
                                            std::string()))

#define ASUP_CHECK_OP_(op, a, b)                                       \
  do {                                                                 \
    const auto& asup_check_a_ = (a);                                   \
    const auto& asup_check_b_ = (b);                                   \
    if (!(asup_check_a_ op asup_check_b_)) {                           \
      ::asup::contract_internal::FailOp(__FILE__, __LINE__,            \
                                        #a " " #op " " #b,             \
                                        asup_check_a_, asup_check_b_); \
    }                                                                  \
  } while (0)

#define ASUP_CHECK_EQ(a, b) ASUP_CHECK_OP_(==, a, b)
#define ASUP_CHECK_LE(a, b) ASUP_CHECK_OP_(<=, a, b)
#define ASUP_CHECK_LT(a, b) ASUP_CHECK_OP_(<, a, b)

#define ASUP_DCHECK(cond) ASUP_CHECK(cond)
#define ASUP_DCHECK_EQ(a, b) ASUP_CHECK_EQ(a, b)
#define ASUP_DCHECK_LE(a, b) ASUP_CHECK_LE(a, b)
#define ASUP_DCHECK_LT(a, b) ASUP_CHECK_LT(a, b)

/// Compiles its argument only when contracts are enabled — for bookkeeping
/// (snapshots of pre-state, validation loops) that exists solely to feed a
/// check.
#define ASUP_CONTRACTS_ONLY(...) __VA_ARGS__

#else  // !ASUP_CONTRACTS_ENABLED

// Disabled: conditions stay type checked (the dead branch is folded away)
// but are never evaluated, and operands used only in checks do not trigger
// -Wunused warnings.
#define ASUP_CHECK(cond) (true ? (void)0 : ((void)(cond)))
#define ASUP_CHECK_EQ(a, b) (true ? (void)0 : ((void)((a) == (b))))
#define ASUP_CHECK_LE(a, b) (true ? (void)0 : ((void)((a) <= (b))))
#define ASUP_CHECK_LT(a, b) (true ? (void)0 : ((void)((a) < (b))))

#define ASUP_DCHECK(cond) ASUP_CHECK(cond)
#define ASUP_DCHECK_EQ(a, b) ASUP_CHECK_EQ(a, b)
#define ASUP_DCHECK_LE(a, b) ASUP_CHECK_LE(a, b)
#define ASUP_DCHECK_LT(a, b) ASUP_CHECK_LT(a, b)

#define ASUP_CONTRACTS_ONLY(...)

#endif  // ASUP_CONTRACTS_ENABLED

#endif  // ASUP_UTIL_CHECK_H_
