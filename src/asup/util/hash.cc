#include "asup/util/hash.h"

namespace asup {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

uint64_t HashString(std::string_view s) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

double DeterministicCoin::UniformDouble(uint64_t a, uint64_t b) const {
  const uint64_t word = Mix64(HashCombine(HashCombine(key_, a), b));
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

}  // namespace asup
