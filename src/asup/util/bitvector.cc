#include "asup/util/bitvector.h"

#include <bit>
#include <cassert>

namespace asup {

BitVector::BitVector(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

void BitVector::Set(size_t i) {
  assert(i < num_bits_);
  words_[i >> 6] |= uint64_t{1} << (i & 63);
}

void BitVector::Clear(size_t i) {
  assert(i < num_bits_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool BitVector::Test(size_t i) const {
  assert(i < num_bits_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void BitVector::Reset() {
  for (auto& word : words_) word = 0;
}

size_t BitVector::Count() const {
  size_t total = 0;
  for (uint64_t word : words_) total += std::popcount(word);
  return total;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

size_t BitVector::CountAnd(const BitVector& other) const {
  assert(num_bits_ == other.num_bits_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

void BitVector::AccumulateInto(std::vector<uint32_t>& accumulator) const {
  assert(accumulator.size() >= num_bits_);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      accumulator[w * 64 + static_cast<size_t>(bit)] += 1;
      word &= word - 1;
    }
  }
}

}  // namespace asup
