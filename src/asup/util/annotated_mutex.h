#ifndef ASUP_UTIL_ANNOTATED_MUTEX_H_
#define ASUP_UTIL_ANNOTATED_MUTEX_H_

/// Capability-annotated locking primitives (DESIGN.md §14).
///
/// Every mutex in the codebase is one of the wrapper types below, and every
/// piece of state a mutex protects carries an `ASUP_GUARDED_BY` annotation.
/// Under Clang, `-Wthread-safety -Wthread-safety-beta` (enabled with
/// `-Werror` in the `thread-safety` CI job) then *proves* at compile time
/// what the previous regex lint and TSan runs could only spot-check:
///
///   - a guarded field is read only while its mutex is held (shared or
///     exclusive) and written only under the exclusive side;
///   - a `*Locked` helper declares the lock it assumes via `ASUP_REQUIRES`
///     and every caller demonstrably holds it;
///   - locks with a declared `ASUP_ACQUIRED_BEFORE` order are never taken
///     in inverted order (the corpus-epoch → history DAG of DESIGN.md §13);
///   - a mutex is never acquired twice by one thread (all our mutexes are
///     non-recursive).
///
/// On GCC/MSVC the attribute macros expand to nothing and the wrappers are
/// zero-cost shims over the std primitives, so non-Clang builds compile
/// unchanged. This is the standard capability-analysis idiom (Clang Thread
/// Safety Analysis; cf. abseil's mutex annotations).
///
/// Raw `std::mutex` / `std::lock_guard` / `std::unique_lock` /
/// `std::shared_lock` are banned outside `src/asup/util/` by
/// `asup_lint.py` (rule `asup-raw-mutex`): library code must use `Mutex`,
/// `SharedMutex` and the RAII types below so the analysis sees every
/// acquire and release.
///
/// Limits worth knowing when annotating new state (DESIGN.md §14 has the
/// full guide):
///   - The analysis is intraprocedural: a capability held across a
///     `std::function` or lambda boundary is invisible inside the callee.
///     Write explicit `while (...) lock.Wait(cv);` loops instead of the
///     predicate overload of `condition_variable::wait`.
///   - Fields with *internal* synchronization (std::atomic, AtomicBitmap)
///     must NOT be `ASUP_GUARDED_BY` a mutex that only guards their
///     *identity*: Clang treats any non-const member call as a write, so a
///     legal atomic update under a shared lock would be rejected. Document
///     such fields with a comment naming the lock that guards reassignment.
///   - Dynamically-selected capabilities (a mutex picked from an array by
///     hash, as in ShardedMutex) cannot be named by `ASUP_GUARDED_BY`.
///     Embed the mutex next to the data it guards (one `Mutex` per shard
///     struct) so the annotation can refer to a sibling member.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros: Clang's thread-safety attributes, no-ops elsewhere.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define ASUP_TSA_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define ASUP_TSA_HAS_ATTRIBUTE(x) 0
#endif

#if ASUP_TSA_HAS_ATTRIBUTE(capability)
#define ASUP_TSA(x) __attribute__((x))
#else
#define ASUP_TSA(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex").
#define ASUP_CAPABILITY(x) ASUP_TSA(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define ASUP_SCOPED_CAPABILITY ASUP_TSA(scoped_lockable)

/// Field may be read/written only while holding `x` (shared side suffices
/// for reads, exclusive required for writes).
#define ASUP_GUARDED_BY(x) ASUP_TSA(guarded_by(x))

/// The data a pointer/smart-pointer field points to is guarded by `x`
/// (the pointer itself may additionally be ASUP_GUARDED_BY).
#define ASUP_PT_GUARDED_BY(x) ASUP_TSA(pt_guarded_by(x))

/// Declares lock-ordering: this mutex is always acquired before `...`.
/// Inversions are rejected under -Wthread-safety-beta.
#define ASUP_ACQUIRED_BEFORE(...) ASUP_TSA(acquired_before(__VA_ARGS__))
#define ASUP_ACQUIRED_AFTER(...) ASUP_TSA(acquired_after(__VA_ARGS__))

/// Function requires the caller to hold `...` exclusively / shared. This is
/// the machine-checked form of the `*Locked` naming convention.
#define ASUP_REQUIRES(...) \
  ASUP_TSA(requires_capability(__VA_ARGS__))
#define ASUP_REQUIRES_SHARED(...) \
  ASUP_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability itself.
#define ASUP_ACQUIRE(...) ASUP_TSA(acquire_capability(__VA_ARGS__))
#define ASUP_ACQUIRE_SHARED(...) \
  ASUP_TSA(acquire_shared_capability(__VA_ARGS__))
#define ASUP_RELEASE(...) ASUP_TSA(release_capability(__VA_ARGS__))
#define ASUP_RELEASE_SHARED(...) \
  ASUP_TSA(release_shared_capability(__VA_ARGS__))
#define ASUP_TRY_ACQUIRE(...) ASUP_TSA(try_acquire_capability(__VA_ARGS__))

/// Function must be called with `...` NOT held (non-recursive mutexes:
/// public entry points that acquire internally).
#define ASUP_EXCLUDES(...) ASUP_TSA(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define ASUP_ASSERT_CAPABILITY(x) ASUP_TSA(assert_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define ASUP_RETURN_CAPABILITY(x) ASUP_TSA(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Requires a
/// comment explaining why (mirrors the NOLINT-with-reason lint rule).
#define ASUP_NO_THREAD_SAFETY_ANALYSIS \
  ASUP_TSA(no_thread_safety_analysis)

namespace asup {

// ---------------------------------------------------------------------------
// Annotated primitives. Thin wrappers: same codegen as the std types.
// ---------------------------------------------------------------------------

/// Exclusive mutex with capability annotations. Non-recursive.
class ASUP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ASUP_ACQUIRE() {
    mu_.lock();  // NOLINT(asup-manual-lock): the primitive itself
  }
  void Unlock() ASUP_RELEASE() {
    mu_.unlock();  // NOLINT(asup-manual-lock): the primitive itself
  }
  bool TryLock() ASUP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The underlying std::mutex, for condition-variable integration inside
  /// this header only; library code goes through MutexLock::Wait.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Reader-writer mutex with capability annotations.
class ASUP_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ASUP_ACQUIRE() {
    mu_.lock();  // NOLINT(asup-manual-lock): the primitive itself
  }
  void Unlock() ASUP_RELEASE() {
    mu_.unlock();  // NOLINT(asup-manual-lock): the primitive itself
  }
  void LockShared() ASUP_ACQUIRE_SHARED() {
    mu_.lock_shared();  // NOLINT(asup-manual-lock): the primitive itself
  }
  void UnlockShared() ASUP_RELEASE_SHARED() {
    // NOLINTNEXTLINE(asup-manual-lock): the primitive itself
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a Mutex (replaces std::lock_guard /
/// std::unique_lock in library code). Supports condition-variable waits
/// while the analysis still considers the mutex held.
class ASUP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ASUP_ACQUIRE(mu) : lock_(mu.native()) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() ASUP_RELEASE() = default;  // unlocked by lock_'s destructor

  /// Atomically releases the mutex, waits for a notification, re-acquires.
  /// The capability is held again on return, so no annotation changes
  /// hands. Use in an explicit predicate loop:
  ///   while (!ready_condition) lock.Wait(cv);
  /// (The predicate overload of wait would hide guarded reads inside a
  /// lambda the analysis cannot see into.)
  void Wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class ASUP_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ASUP_ACQUIRE(mu) : mu_(&mu) {
    mu_->Lock();
  }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  ~WriterLock() ASUP_RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class ASUP_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ASUP_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->LockShared();
  }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  ~ReaderLock() ASUP_RELEASE() { mu_->UnlockShared(); }

 private:
  SharedMutex* mu_;
};

}  // namespace asup

#endif  // ASUP_UTIL_ANNOTATED_MUTEX_H_
