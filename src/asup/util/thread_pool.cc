#include "asup/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace asup {

namespace {

/// Shared state of one ParallelFor call. Heap-allocated and shared with the
/// submitted helper tasks, which may start (and harmlessly find the range
/// exhausted) after the call has already returned.
struct ForLoop {
  const std::function<void(size_t, size_t)>* body = nullptr;
  size_t n = 0;
  size_t grain = 1;
  std::atomic<size_t> next{0};
  /// Indices whose body call has finished. Completion is defined by this
  /// counter reaching n — NOT by helper tasks finishing — so the loop ends
  /// as soon as the participating threads have covered [0, n), even if a
  /// queued helper never gets a worker (e.g. every worker is itself blocked
  /// in an enclosing ParallelFor). This is what makes nesting deadlock-free.
  std::atomic<size_t> completed{0};
  /// Guards no data — `completed` is atomic. The mutex exists only to order
  /// the final notify after the caller's predicate check so the wakeup
  /// cannot be lost.
  Mutex mutex;
  std::condition_variable done;

  void RunChunks() {
    for (;;) {
      const size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(begin + grain, n);
      (*body)(begin, end);
      if (completed.fetch_add(end - begin, std::memory_order_acq_rel) +
              (end - begin) ==
          n) {
        // Last chunk: wake the caller. Taking the mutex orders this notify
        // after the caller's predicate check, so the wakeup cannot be lost.
        MutexLock lock(mutex);
        done.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  auto loop = std::make_shared<ForLoop>();
  loop->body = &body;
  loop->n = n;
  // Several chunks per participant so dynamic claiming can rebalance.
  loop->grain = std::max<size_t>(1, n / (4 * (num_threads() + 1)));

  const size_t helpers = std::min(num_threads(), (n - 1) / loop->grain + 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit([loop] { loop->RunChunks(); });
  }

  // The caller participates, so the loop completes even when all workers
  // are busy with other (possibly enclosing) ParallelFor calls.
  loop->RunChunks();

  // Explicit predicate loop rather than the wait(lock, pred) overload: the
  // capability analysis cannot see into the predicate lambda (DESIGN.md
  // §14), and `completed` is atomic so the loop shape costs nothing.
  MutexLock lock(loop->mutex);
  while (loop->completed.load(std::memory_order_acquire) != loop->n) {
    lock.Wait(loop->done);
  }
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) lock.Wait(ready_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace asup
