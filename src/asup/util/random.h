#ifndef ASUP_UTIL_RANDOM_H_
#define ASUP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace asup {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** seeded via splitmix64. All randomized components
/// of the library (corpus generation, attacks, defenses) draw from an
/// explicitly passed `Rng` so that every experiment is reproducible from a
/// single seed. The generator is cheap to copy; independent streams should
/// be derived with `Fork()`.
class Rng {
 public:
  /// Creates a generator whose entire stream is determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t NextU64();

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform integer in the closed range [lo, hi]. Requires
  /// lo <= hi.
  uint64_t UniformU64(uint64_t lo, uint64_t hi);

  /// Returns a uniform integer in [0, n). Requires n > 0. Uses rejection to
  /// avoid modulo bias.
  uint64_t UniformBelow(uint64_t n);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a sample from Normal(mean, stddev) via Box-Muller.
  double Normal(double mean, double stddev);

  /// Returns a sample from LogNormal(mu, sigma) (parameters of the
  /// underlying normal).
  double LogNormal(double mu, double sigma);

  /// Returns a geometrically distributed trial count >= 1 with success
  /// probability `p` in (0, 1].
  uint64_t Geometric(double p);

  /// Returns a new generator seeded from this one; the two streams are
  /// statistically independent.
  Rng Fork();

  /// Samples `count` distinct values from [0, n) without replacement,
  /// in uniformly random order. Requires count <= n. Uses Floyd's algorithm
  /// when count << n and a partial Fisher-Yates shuffle otherwise.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t count);

  /// Shuffles `values` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformBelow(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Picks one element of `values` uniformly at random. Requires non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& values) {
    return values[UniformBelow(values.size())];
  }

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {0, 1, ..., n-1}: P(rank = r) proportional to
/// 1 / (r + 1)^s. Uses the rejection-inversion method of Hörmann and
/// Derflinger, which needs O(1) setup memory and O(1) expected time per
/// sample, so it scales to vocabulary-sized supports.
class ZipfDistribution {
 public:
  /// Requires n >= 1 and s > 0, s != 1 handled as well as s == 1.
  ZipfDistribution(uint64_t n, double s);

  /// Returns a rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace asup

#endif  // ASUP_UTIL_RANDOM_H_
