#ifndef ASUP_UTIL_THREAD_POOL_H_
#define ASUP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "asup/util/annotated_mutex.h"

namespace asup {

/// A fixed-size worker pool with a shared FIFO task queue.
///
/// Backs the parallel batch query execution subsystem: workers fan queries
/// out against the shared (immutable) inverted index while the suppression
/// state is synchronized separately (see DESIGN.md, "Threading model").
///
/// Tasks must not throw — an exception escaping a task terminates the
/// process. `ParallelFor` is the preferred entry point: the calling thread
/// participates in the loop, so progress is guaranteed even when every
/// worker is busy (which also makes nested ParallelFor calls from inside a
/// worker safe).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultThreadCount().
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains nothing: pending tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for an arbitrary worker.
  void Submit(std::function<void()> task) ASUP_EXCLUDES(mutex_);

  /// Runs `body(begin, end)` over disjoint chunks covering [0, n), using
  /// the workers *and* the calling thread, and blocks until every index has
  /// been processed. Chunks are claimed dynamically, so uneven per-index
  /// cost balances itself.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& body)
      ASUP_EXCLUDES(mutex_);

  /// Hardware concurrency, at least 1.
  static size_t DefaultThreadCount();

  /// Tasks currently queued (not yet picked up by a worker). A point-in-time
  /// reading for monitoring gauges; stale by the time the caller sees it.
  size_t QueueDepth() const ASUP_EXCLUDES(mutex_);

  /// Tasks a worker has finished executing since construction.
  uint64_t TasksExecuted() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop() ASUP_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  std::deque<std::function<void()>> queue_ ASUP_GUARDED_BY(mutex_);
  std::condition_variable ready_;
  std::atomic<uint64_t> tasks_executed_{0};
  bool stopping_ ASUP_GUARDED_BY(mutex_) = false;
};

}  // namespace asup

#endif  // ASUP_UTIL_THREAD_POOL_H_
