#ifndef ASUP_UTIL_STATS_H_
#define ASUP_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>

namespace asup {

/// Numerically stable streaming moments (Welford's algorithm).
///
/// The sampling-based estimators (UNBIASED-EST, STRATIFIED-EST) maintain
/// running means and variances of per-query estimates; the privacy-game
/// harness uses the derived standard errors for adversarial confidence
/// intervals.
class StreamingStats {
 public:
  StreamingStats() = default;

  /// Incorporates one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford update).
  void Merge(const StreamingStats& other);

  /// Number of observations so far.
  uint64_t count() const { return count_; }

  /// Mean of observations; 0 if empty.
  double Mean() const { return mean_; }

  /// Unbiased sample variance; 0 if fewer than two observations.
  double Variance() const;

  /// Square root of Variance().
  double StdDev() const;

  /// Standard error of the mean; 0 if fewer than two observations.
  double StdError() const;

  /// Half-width of a normal-approximation confidence interval around the
  /// mean at the given z value (e.g., 1.96 for 95%).
  double ConfidenceHalfWidth(double z = 1.96) const;

  double Min() const { return min_; }
  double Max() const { return max_; }
  double Sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Standard normal CDF.
double NormalCdf(double z);

}  // namespace asup

#endif  // ASUP_UTIL_STATS_H_
