#ifndef ASUP_UTIL_STOPWATCH_H_
#define ASUP_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace asup {

/// Monotonic wall-clock stopwatch used by the overhead experiments
/// (paper Figure 15 reports the defended/undefended response-time ratio).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset(), in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  // Timing paths must never observe wall-clock adjustments (NTP slews would
  // corrupt latency histograms and Figure 15 ratios); asup_lint additionally
  // bans system_clock in timing code.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Stopwatch requires a monotonic (steady) clock");
  Clock::time_point start_;
};

}  // namespace asup

#endif  // ASUP_UTIL_STOPWATCH_H_
