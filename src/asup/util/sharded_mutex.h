#ifndef ASUP_UTIL_SHARDED_MUTEX_H_
#define ASUP_UTIL_SHARDED_MUTEX_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "asup/util/hash.h"

namespace asup {

/// A power-of-two array of mutexes addressed by key hash.
///
/// Spreads lock contention on hash-partitioned state (e.g. the concurrent
/// answer cache) across independent shards: operations on keys in different
/// shards never contend. The hash is re-mixed before masking so weak input
/// hashes still spread evenly.
class ShardedMutex {
 public:
  /// Creates at least `min_shards` mutexes (rounded up to a power of two).
  explicit ShardedMutex(size_t min_shards = 16) {
    size_t shards = 1;
    while (shards < min_shards) shards <<= 1;
    mutexes_ = std::vector<std::mutex>(shards);
    mask_ = shards - 1;
  }

  size_t num_shards() const { return mutexes_.size(); }

  /// Shard index for a key hash.
  size_t ShardOf(uint64_t hash) const {
    return static_cast<size_t>(Mix64(hash) & mask_);
  }

  std::mutex& MutexAt(size_t shard) { return mutexes_[shard]; }

  std::mutex& MutexFor(uint64_t hash) { return mutexes_[ShardOf(hash)]; }

  /// Locks every shard (in index order, so concurrent LockAll calls cannot
  /// deadlock). Used for whole-structure operations such as snapshots.
  std::vector<std::unique_lock<std::mutex>> LockAll() {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(mutexes_.size());
    for (std::mutex& mutex : mutexes_) locks.emplace_back(mutex);
    return locks;
  }

 private:
  std::vector<std::mutex> mutexes_;
  uint64_t mask_ = 0;
};

}  // namespace asup

#endif  // ASUP_UTIL_SHARDED_MUTEX_H_
