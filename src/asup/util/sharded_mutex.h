#ifndef ASUP_UTIL_SHARDED_MUTEX_H_
#define ASUP_UTIL_SHARDED_MUTEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "asup/util/annotated_mutex.h"
#include "asup/util/hash.h"

namespace asup {

/// A power-of-two array of annotated mutexes addressed by key hash.
///
/// Spreads lock contention on hash-partitioned state across independent
/// shards: operations on keys in different shards never contend. The hash
/// is re-mixed before masking so weak input hashes still spread evenly.
///
/// Capability caveat (DESIGN.md §14): the mutex protecting a given key is
/// *dynamically selected*, so `ASUP_GUARDED_BY` cannot name it — Clang's
/// analysis needs a capability it can resolve statically. A ShardedMutex
/// therefore gives you annotated acquire/release discipline (no double
/// acquires, RAII pairing) but NOT guarded-field checking. When the
/// sharded data lives next to the lock — as in AnswerCache — prefer
/// embedding one `Mutex` per shard struct instead, so the data can be
/// `ASUP_GUARDED_BY(mutex)` of its sibling member and the analysis proves
/// the full discipline. This class remains for lock tables guarding state
/// that is *not* colocated with the lock (e.g. striping an external
/// resource by key).
class ShardedMutex {
 public:
  /// Creates at least `min_shards` mutexes (rounded up to a power of two).
  explicit ShardedMutex(size_t min_shards = 16) {
    size_t shards = 1;
    while (shards < min_shards) shards <<= 1;
    mutexes_ = std::make_unique<Mutex[]>(shards);
    num_shards_ = shards;
    mask_ = shards - 1;
  }

  size_t num_shards() const { return num_shards_; }

  /// Shard index for a key hash.
  size_t ShardOf(uint64_t hash) const {
    return static_cast<size_t>(Mix64(hash) & mask_);
  }

  Mutex& MutexAt(size_t shard) { return mutexes_[shard]; }

  Mutex& MutexFor(uint64_t hash) { return mutexes_[ShardOf(hash)]; }

  /// Locks every shard (in index order, so concurrent LockAll calls cannot
  /// deadlock). Used for whole-structure operations such as snapshots.
  /// The analysis cannot track a dynamic number of capabilities, so the
  /// acquisition is opted out of checking; the RAII return value still
  /// guarantees release.
  std::vector<std::unique_lock<std::mutex>> LockAll()
      ASUP_NO_THREAD_SAFETY_ANALYSIS {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      locks.emplace_back(mutexes_[s].native());
    }
    return locks;
  }

 private:
  std::unique_ptr<Mutex[]> mutexes_;
  size_t num_shards_ = 0;
  uint64_t mask_ = 0;
};

}  // namespace asup

#endif  // ASUP_UTIL_SHARDED_MUTEX_H_
