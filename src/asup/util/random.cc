#include "asup/util/random.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace asup {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformU64(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  uint64_t span = hi - lo;
  if (span == UINT64_MAX) return NextU64();
  return lo + UniformBelow(span + 1);
}

uint64_t Rng::UniformBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t value = NextU64();
  while (value >= limit) value = NextU64();
  return value % n;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; one fresh pair per call keeps the generator stateless
  // beyond its core state.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

uint64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return 1 + static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork() { return Rng(NextU64()); }

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n,
                                                    uint64_t count) {
  assert(count <= n);
  std::vector<uint64_t> result;
  result.reserve(count);
  if (count == 0) return result;
  if (count * 3 < n) {
    // Floyd's algorithm: O(count) memory, no O(n) initialization.
    std::unordered_set<uint64_t> chosen;
    chosen.reserve(count * 2);
    for (uint64_t j = n - count; j < n; ++j) {
      uint64_t t = UniformU64(0, j);
      if (chosen.insert(t).second) {
        result.push_back(t);
      } else {
        chosen.insert(j);
        result.push_back(j);
      }
    }
  } else {
    // Partial Fisher-Yates over the full population.
    std::vector<uint64_t> population(n);
    for (uint64_t i = 0; i < n; ++i) population[i] = i;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t j = UniformU64(i, n - 1);
      std::swap(population[i], population[j]);
      result.push_back(population[i]);
    }
  }
  Shuffle(result);
  return result;
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfDistribution::H(double x) const {
  // H(x) = integral of 1/t^s: (x^{1-s} - 1)/(1-s), with the s == 1 limit
  // being log(x).
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  // Rejection-inversion (Hörmann & Derflinger 1996): invert the hazard
  // integral, then accept/reject against the true mass.
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // callers use 0-based ranks
    }
  }
}

}  // namespace asup
