#include "asup/util/stats.h"

#include <algorithm>
#include <cmath>

namespace asup {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::StdDev() const { return std::sqrt(Variance()); }

double StreamingStats::StdError() const {
  if (count_ < 2) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

double StreamingStats::ConfidenceHalfWidth(double z) const {
  return z * StdError();
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace asup
