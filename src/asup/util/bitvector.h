#ifndef ASUP_UTIL_BITVECTOR_H_
#define ASUP_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asup {

/// A fixed-size bit vector.
///
/// Used by AS-ARBI's trigger pre-screen: each document keeps a 1000-bit
/// signature with one bit set per historic query that returned it
/// (Section 5.3 of the paper). The class also backs generic set membership
/// needs elsewhere in the library.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `num_bits` zero bits.
  explicit BitVector(size_t num_bits);

  /// Number of addressable bits.
  size_t size() const { return num_bits_; }

  /// Sets bit `i` to one. Requires i < size().
  void Set(size_t i);

  /// Clears bit `i`. Requires i < size().
  void Clear(size_t i);

  /// Returns bit `i`. Requires i < size().
  bool Test(size_t i) const;

  /// Sets all bits to zero.
  void Reset();

  /// Number of one bits.
  size_t Count() const;

  /// Returns true if no bit is set.
  bool None() const { return Count() == 0; }

  /// Bitwise OR-assign; requires equal sizes.
  BitVector& operator|=(const BitVector& other);

  /// Bitwise AND-assign; requires equal sizes.
  BitVector& operator&=(const BitVector& other);

  /// Number of positions set in both vectors; requires equal sizes.
  size_t CountAnd(const BitVector& other) const;

  /// Adds each bit of `this` (0/1) into `accumulator`, which must have at
  /// least size() entries. This is the "SUM of binary vectors" step of the
  /// AS-ARBI trigger evaluation.
  void AccumulateInto(std::vector<uint32_t>& accumulator) const;

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace asup

#endif  // ASUP_UTIL_BITVECTOR_H_
