#ifndef ASUP_UTIL_CSV_H_
#define ASUP_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace asup {

/// Columnar table of doubles with named columns, printed as CSV.
///
/// Every benchmark harness in `bench/` reproduces one paper figure by
/// emitting a `CsvTable` whose columns match the figure's series (e.g.,
/// "queries, est_S, est_1.33S, est_1.67S, est_2S" for Figure 4), so the
/// output can be plotted directly against the paper.
class CsvTable {
 public:
  /// Creates a table with the given column names.
  explicit CsvTable(std::vector<std::string> columns);

  /// Appends one row; must have exactly one value per column.
  void AddRow(const std::vector<double>& row);

  /// Number of data rows.
  size_t NumRows() const { return rows_.size(); }

  /// Number of columns.
  size_t NumColumns() const { return columns_.size(); }

  /// Column names in order.
  const std::vector<std::string>& columns() const { return columns_; }

  /// Returns the value at (row, column index).
  double At(size_t row, size_t col) const;

  /// Returns an entire column by name; aborts if the name is unknown.
  std::vector<double> Column(const std::string& name) const;

  /// Writes "col1,col2,...\n" followed by one line per row.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Formats a double with up to six significant digits, trimming trailing
/// zeros (compact CSV cells).
std::string FormatCell(double value);

}  // namespace asup

#endif  // ASUP_UTIL_CSV_H_
