#ifndef ASUP_UTIL_ATOMIC_BITMAP_H_
#define ASUP_UTIL_ATOMIC_BITMAP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace asup {

/// A fixed-size bitmap with atomic per-bit test-and-set.
///
/// Holds AS-SIMPLE's returned-document state Θ_R under concurrent query
/// execution: TestAndSet linearizes the "was this document returned
/// before?" decision per document, which is the only cross-query coupling
/// in Algorithm 1. Relaxed memory order suffices — each bit is independent
/// and guards no other data.
class AtomicBitmap {
 public:
  AtomicBitmap() = default;

  /// Creates `num_bits` zero bits.
  explicit AtomicBitmap(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64) {}

  size_t size() const { return num_bits_; }

  /// Returns bit `i`. Requires i < size().
  bool Test(size_t i) const {
    return (words_[i / 64].load(std::memory_order_relaxed) >>
            (i % 64)) & 1;
  }

  /// Atomically sets bit `i` and returns its previous value.
  /// Requires i < size().
  bool TestAndSet(size_t i) {
    const uint64_t bit = uint64_t{1} << (i % 64);
    return (words_[i / 64].fetch_or(bit, std::memory_order_relaxed) & bit) !=
           0;
  }

  /// Sets bit `i`. Requires i < size().
  void Set(size_t i) { (void)TestAndSet(i); }

  /// Number of one bits. Only a point-in-time value while writers run.
  size_t Count() const {
    size_t count = 0;
    for (const auto& word : words_) {
      count += static_cast<size_t>(
          __builtin_popcountll(word.load(std::memory_order_relaxed)));
    }
    return count;
  }

  /// Zeroes every bit. Not safe against concurrent writers.
  void ClearAll() {
    for (auto& word : words_) word.store(0, std::memory_order_relaxed);
  }

  /// Indices of all one bits, ascending. Not safe against concurrent
  /// writers (used by state persistence, which runs quiesced).
  std::vector<size_t> SetBits() const {
    std::vector<size_t> bits;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w].load(std::memory_order_relaxed);
      while (word != 0) {
        const int lowest = __builtin_ctzll(word);
        bits.push_back(w * 64 + static_cast<size_t>(lowest));
        word &= word - 1;
      }
    }
    return bits;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace asup

#endif  // ASUP_UTIL_ATOMIC_BITMAP_H_
