#ifndef ASUP_OBS_CLIENT_WINDOW_H_
#define ASUP_OBS_CLIENT_WINDOW_H_

/// Per-client sliding-window feature aggregation.
///
/// The watchtower's substrate: a table keyed by client id that folds the
/// structured event stream (obs/event_log.h) into one record per
/// *completed query* and keeps the most recent `window` records per
/// client. From that window it derives the features the paper's attack
/// streams are distinguishable by — RS-ESTIMATOR-style probing re-issues a
/// maintained query pool every epoch (repeat-query fraction), draws from a
/// fixed term population (repeat-term fraction, distinct-term growth
/// ~ 0), walks µ-segment boundaries (segment-crossing rate), and probes
/// the suppressed region far more often than bona fide traffic
/// (hidden-answer encounter rate, answer-at-k saturation).
///
/// State is bounded two ways, prefiguring the multi-tenant server's
/// per-tenant budget: an LRU client cap (`max_clients`) and an approximate
/// byte budget (`state_bytes_budget`) — the least-recently-active client
/// is evicted first when either is exceeded.
///
/// The table itself is not synchronized; `Watchtower` (obs/suspicion.h)
/// owns one behind its mutex. Compiled out with the obs layer under
/// `-DASUP_METRICS=OFF`.

#include "asup/obs/event_log.h"

#if ASUP_METRICS_ENABLED

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace asup {
namespace obs {

struct ClientWindowConfig {
  /// Completed queries retained per client.
  size_t window = 256;

  /// LRU client budget: tracking a client beyond this evicts the least
  /// recently active one.
  size_t max_clients = 64;

  /// Approximate total state budget in bytes (0 = unlimited). Evicts LRU
  /// clients until the estimate fits.
  size_t state_bytes_budget = 0;

  /// Cap on the per-client lifetime distinct-term set backing the
  /// distinct-term-growth feature.
  size_t max_terms_tracked = 8192;
};

/// Features of one client's current window. Rates are fractions in [0, 1]
/// unless noted; all are 0 while the window is empty.
struct ClientFeatures {
  uint64_t client = 0;

  /// Completed queries currently in the window / over the client lifetime.
  uint64_t window_queries = 0;
  uint64_t lifetime_queries = 0;

  /// Fraction of *global* query traffic this client issued over its
  /// window's span (1.0 = the only active client).
  double query_share = 0.0;

  /// 1 - distinct query hashes / window queries: how often the client
  /// re-issues a query it already issued inside the window.
  double repeat_query_fraction = 0.0;

  /// 1 - distinct terms / term occurrences inside the window.
  double repeat_term_fraction = 0.0;

  /// Never-seen-before terms (client lifetime) per window term occurrence.
  /// Bona fide users keep discovering vocabulary; pool-replaying attackers
  /// converge to 0.
  double distinct_term_growth = 0.0;

  /// Fraction of window queries whose answer the defense perturbed
  /// (documents hidden or trimmed, or a virtual answer served).
  double hidden_rate = 0.0;

  /// Fraction of consecutive window query pairs that landed in different
  /// µ-segments (boundary walking).
  double segment_crossing_rate = 0.0;

  /// Fraction of window queries whose answer overflowed (size saturated
  /// at the interface limit k).
  double saturation_rate = 0.0;

  /// Fraction of window queries answered from the answer cache.
  double cache_hit_rate = 0.0;
};

/// Folds events into per-client windows. Events between a client's
/// kQueryIssued and kAnswerServed are attributed to that query; a query
/// record is committed to the window when its kAnswerServed arrives. Only
/// kQueryIssued creates client state — events for clients that never
/// issued a query are dropped, so a stream of stray served/hidden events
/// cannot grow the table or evict bona fide clients.
class ClientWindowTable {
 public:
  explicit ClientWindowTable(const ClientWindowConfig& config);

  /// Routes one event. Returns true when the event completed a query
  /// (i.e. `event.kind == kAnswerServed`) — the moment to score.
  bool Observe(const Event& event);

  /// Features of `client`'s current window (nullopt if untracked).
  std::optional<ClientFeatures> FeaturesOf(uint64_t client) const;

  /// Features of every tracked client, ascending client id.
  std::vector<ClientFeatures> AllFeatures() const;

  size_t tracked_clients() const { return clients_.size(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t global_queries() const { return global_queries_; }

  /// Estimated bytes held across all tracked clients.
  size_t ApproxBytes() const { return approx_bytes_; }

  const ClientWindowConfig& config() const { return config_; }

 private:
  /// One completed query in a client's window.
  struct QueryRecord {
    uint64_t hash = 0;
    std::vector<uint32_t> terms;
    uint32_t new_terms = 0;  // first-ever terms at admission time
    int32_t segment = -1;    // -1: no segment probe observed
    bool suppressed = false;
    bool overflow = false;
    bool cache_hit = false;
    uint64_t global_index = 0;  // global query counter at issue time
  };

  struct ClientState {
    std::deque<QueryRecord> window;
    QueryRecord pending;
    bool pending_open = false;
    // Lifetime distinct terms (capped at max_terms_tracked). std::set for
    // deterministic memory estimates; feature math never iterates it.
    std::set<uint32_t> seen_terms;
    uint64_t lifetime_queries = 0;
    size_t approx_bytes = 0;
    std::list<uint64_t>::iterator lru_pos;
  };

  /// Creates (or refreshes) `client`'s state — kQueryIssued only; every
  /// other event kind must not conjure state for clients that never issued
  /// a query (a served/hidden event for an unknown client is a stray).
  ClientState& TouchClient(uint64_t client);
  /// Looks up `client` and refreshes its LRU position; null if untracked.
  ClientState* FindClient(uint64_t client);
  void CommitPending(ClientState& state);
  void EvictOverBudget();
  static size_t EstimateBytes(const ClientState& state);
  ClientFeatures ComputeFeatures(uint64_t client,
                                 const ClientState& state) const;

  ClientWindowConfig config_;
  // std::map: AllFeatures() iterates in client-id order (deterministic
  // snapshots / CSV output).
  std::map<uint64_t, ClientState> clients_;
  std::list<uint64_t> lru_;  // most recently active at front
  uint64_t global_queries_ = 0;
  uint64_t evictions_ = 0;
  size_t approx_bytes_ = 0;
};

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED

#endif  // ASUP_OBS_CLIENT_WINDOW_H_
