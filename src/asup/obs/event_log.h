#ifndef ASUP_OBS_EVENT_LOG_H_
#define ASUP_OBS_EVENT_LOG_H_

/// Structured defense-observability events.
///
/// Metrics aggregate globally and traces describe one opted-in query; the
/// event log sits between the two: a bounded, sharded ring of fixed-size
/// records describing *what the defense did to whom* — query issued, answer
/// hidden/trimmed, virtual answer served, cover found, cache hit, epoch
/// migration — each stamped with the issuing client's id and the query
/// hash. The watchtower (obs/suspicion.h) consumes the same stream online
/// to score clients; the log retains the recent past for export (JSONL or
/// a compact binary form) and post-hoc analysis.
///
/// Write path: `EmitEvent` stamps a global sequence number and fans out to
/// the installed `EventLog` (retention) and `Watchtower` (scoring). The
/// log appends into a small per-thread *staging* buffer guarded by a
/// thread-private mutex, and drains a full buffer into one of `kShards`
/// ring shards — so the shard mutex is touched once per
/// `kStagingCapacity` events, not per event. When a shard ring is full the
/// oldest event is overwritten and the explicit `dropped()` counter (and
/// `asup_obs_events_dropped_total`) records the loss; retention is bounded
/// by construction, never by allocation.
///
/// Engines emit through the `ASUP_EVENT_*` macros only (lint rule
/// `asup-obs-macro`); the macros cost one relaxed atomic load when no
/// sink is installed and compile out entirely under `-DASUP_METRICS=OFF`
/// together with the rest of the obs layer.

#include "asup/obs/metrics.h"

#if ASUP_METRICS_ENABLED

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "asup/util/annotated_mutex.h"

namespace asup {
namespace obs {

/// Event taxonomy. Keep EventKindName in sync.
enum class EventKind : uint8_t {
  kQueryIssued = 0,  // a = distinct term count
  kQueryTerm,        // a = term id (one event per query term)
  kAnswerServed,     // a = answer size, b = 1 iff the answer overflowed
  kAnswerHidden,     // a = documents hidden from this answer (AS-SIMPLE)
  kAnswerTrimmed,    // a = documents trimmed by the LHS-degree cut
  kSegmentProbe,     // a = index of the µ-segment the query landed in
  kVirtualAnswer,    // a = virtual answer size (AS-ARBI cover path)
  kCoverFound,       // a = cover size (answers used), b = exact(1)/greedy(0)
  kCacheHit,         // answer served from the answer cache
  kEpochMigration,   // a = new epoch id, b = state entries dropped
  kSuspicionFlag,    // a = smoothed score in millis, b = window queries
};
inline constexpr size_t kNumEventKinds =
    static_cast<size_t>(EventKind::kSuspicionFlag) + 1;

const char* EventKindName(EventKind kind);

/// One fixed-size structured event. `client` is the issuing client's id (0
/// when the event is not attributable — e.g. epoch migrations), and
/// `query_hash` the canonical-form hash of the query being processed (0
/// when none). `a` / `b` are per-kind payloads, documented on EventKind.
struct Event {
  EventKind kind = EventKind::kQueryIssued;
  uint64_t client = 0;
  uint64_t query_hash = 0;
  uint64_t sequence = 0;  // global emit order, stamped by EmitEvent
  int64_t a = 0;
  int64_t b = 0;
};

/// Sharded, bounded ring of the most recent events.
class EventLog {
 public:
  static constexpr size_t kShards = 8;
  static constexpr size_t kStagingCapacity = 64;

  /// `capacity` is the total retention budget, split evenly across shards
  /// (rounded up to at least one event per shard).
  explicit EventLog(size_t capacity);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends `event` verbatim (EmitEvent stamps sequences; direct callers
  /// — tests, replay tools — manage their own).
  void Append(const Event& event);

  /// Drains every thread's staging buffer into the shard rings so
  /// Snapshot() observes all appends that happened-before this call.
  void Flush();

  /// Events ever appended / overwritten-to-make-room. Dropped events also
  /// bump `asup_obs_events_dropped_total`.
  uint64_t total_appended() const;
  uint64_t dropped() const;

  /// Retained events in ascending sequence order (flushes staging first).
  std::vector<Event> Snapshot() const;

  /// One JSON object per retained event, oldest first:
  /// {"seq":12,"kind":"answer_hidden","client":3,"qhash":123,"a":4,"b":0}
  void WriteJsonl(std::ostream& out) const;

  /// Compact binary export: a fixed header, then one fixed-width record
  /// per event. ReadBinary round-trips WriteBinary's output.
  void WriteBinary(std::ostream& out) const;
  static bool ReadBinary(std::istream& in, std::vector<Event>* events);

  size_t capacity() const { return capacity_; }

 private:
  struct Shard;
  struct Staging;

  Staging& StagingForThisThread() const;
  /// Appends a drained staging buffer into the calling thread's shard,
  /// overwriting (and counting) the oldest events when the ring is full.
  void DrainInto(std::vector<Event>&& spill) const;

  const size_t capacity_;        // total, across shards
  const size_t shard_capacity_;  // per shard
  const uint64_t log_id_;        // keys the thread-local staging lookup
  std::unique_ptr<Shard[]> shards_;
  mutable Mutex staging_mutex_;  // guards the staging-buffer registry
  mutable std::vector<std::unique_ptr<Staging>> stagings_
      ASUP_GUARDED_BY(staging_mutex_);
};

/// Installs the process-wide event log / watchtower `EmitEvent` fans out
/// to (nullptr to disable). Both are borrowed and must outlive their
/// installation; install before issuing queries, uninstall after
/// quiescing (not synchronized against in-flight emitters).
void InstallEventLog(EventLog* log);
EventLog* InstalledEventLog();

// Forward declaration; see obs/suspicion.h.
class Watchtower;
void InstallWatchtower(Watchtower* watchtower);
Watchtower* InstalledWatchtower();

namespace detail {
// Bit 0: event log installed; bit 1: watchtower installed. One relaxed
// load answers "is anything listening" on the macro fast path.
extern std::atomic<uint32_t> g_event_sink_mask;
}  // namespace detail

/// True when an event log or a watchtower is installed.
inline bool EventSinksInstalled() {
  return detail::g_event_sink_mask.load(std::memory_order_relaxed) != 0;
}

/// Stamps a global sequence number on `event` and fans it out to the
/// installed sinks. No-op when none is installed.
void EmitEvent(Event event);

namespace detail {
/// Emits kQueryIssued plus one kQueryTerm per element of `terms` (any
/// range of integral term ids; templated so obs stays below the text
/// layer that defines TermId).
template <typename Terms>
void EmitQueryIssued(uint64_t client, uint64_t query_hash,
                     const Terms& terms) {
  Event issued;
  issued.kind = EventKind::kQueryIssued;
  issued.client = client;
  issued.query_hash = query_hash;
  issued.a = static_cast<int64_t>(terms.size());
  EmitEvent(issued);
  for (const auto term : terms) {
    Event te;
    te.kind = EventKind::kQueryTerm;
    te.client = client;
    te.query_hash = query_hash;
    te.a = static_cast<int64_t>(term);
    EmitEvent(te);
  }
}
}  // namespace detail

}  // namespace obs
}  // namespace asup

// Event-emission macros. `kind_` is a bare EventKind enumerator name
// (kCacheHit, kAnswerHidden, ...); the value operands are evaluated only
// when a sink is installed.
#define ASUP_EVENT_EMIT(kind_, client_, qhash_, a_, b_)         \
  do {                                                          \
    if (::asup::obs::EventSinksInstalled()) {                   \
      ::asup::obs::Event asup_event_;                           \
      asup_event_.kind = ::asup::obs::EventKind::kind_;         \
      asup_event_.client = (client_);                           \
      asup_event_.query_hash = (qhash_);                        \
      asup_event_.a = static_cast<int64_t>(a_);                 \
      asup_event_.b = static_cast<int64_t>(b_);                 \
      ::asup::obs::EmitEvent(asup_event_);                      \
    }                                                           \
  } while (0)

/// Emits kQueryIssued + per-term kQueryTerm events for a query with term
/// range `terms_` (e.g. `query.terms()`).
#define ASUP_EVENT_QUERY_ISSUED(client_, qhash_, terms_)           \
  do {                                                             \
    if (::asup::obs::EventSinksInstalled()) {                      \
      ::asup::obs::detail::EmitQueryIssued((client_), (qhash_),    \
                                           (terms_));              \
    }                                                              \
  } while (0)

#else  // !ASUP_METRICS_ENABLED

// Compiled out: `kind` is dropped (the enumerator does not exist in the
// OFF build); the value operands stay type checked but are never
// evaluated — the same contract as the disabled metric macros.
#define ASUP_EVENT_EMIT(kind_, client_, qhash_, a_, b_) \
  (true ? (void)0                                       \
        : ((void)(client_), (void)(qhash_), (void)(a_), (void)(b_)))
#define ASUP_EVENT_QUERY_ISSUED(client_, qhash_, terms_) \
  (true ? (void)0 : ((void)(client_), (void)(qhash_), (void)(terms_)))

#endif  // ASUP_METRICS_ENABLED

#endif  // ASUP_OBS_EVENT_LOG_H_
