#ifndef ASUP_OBS_METRICS_H_
#define ASUP_OBS_METRICS_H_

/// Lock-cheap metrics layer (counters, gauges, fixed-bucket histograms).
///
/// The paper's claims are quantitative trade-offs — suppression vs. recall
/// and per-query overhead — so the pipeline must be observable *while it
/// runs*, not reconstructed from coarse bench timers afterwards. This layer
/// is the measurement surface: engines bump metrics through the macros
/// below, and harnesses scrape `MetricsRegistry` snapshots (Prometheus text
/// or JSON) or the derived `RunReport`.
///
/// Naming scheme: `asup_<layer>_<name>{label="value"}` with layers `engine`,
/// `suppress`, `attack`, `pipeline`. Counters end in `_total`, latency
/// histograms in `_ns`. Labels are embedded verbatim in the metric name
/// string; the registry treats the full string as the identity.
///
/// Gating (mirrors util/check.h): metrics are compiled in by default and
/// compiled *out* with `-DASUP_METRICS=OFF` at CMake configure time, which
/// defines `ASUP_METRICS_OFF`. In the OFF build the macros expand to
/// nothing (operands are type checked but never evaluated), no obs type
/// exists, and no object of the `asup_obs` library is linked — CI verifies
/// the core archives carry no `asup::obs` symbols.
///
/// Hot-path cost in the ON build: one relaxed atomic add for a counter, a
/// branchless bucket search plus two relaxed adds on a per-thread shard for
/// a histogram. The overhead budget is <2% on `bench_micro_engine`
/// (DESIGN.md §11).

#if !defined(ASUP_METRICS_OFF)
#define ASUP_METRICS_ENABLED 1
#else
#define ASUP_METRICS_ENABLED 0
#endif

#if ASUP_METRICS_ENABLED

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "asup/util/annotated_mutex.h"

namespace asup {
namespace obs {

/// Monotone event count. `Add` is a single relaxed atomic add; reads are
/// racy-but-coherent (fine for monitoring; quiesce for exact totals).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, history sizes,
/// estimator moments).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    // fetch_add on atomic<double> is C++20; relaxed CAS keeps the compiler
    // baseline at "any C++20 libstdc++" without relying on FP atomics.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram of integer-valued observations (nanoseconds,
/// sizes). Writers accumulate into one of `kShards` cacheline-padded shard
/// rows selected per thread, so concurrent observers on different shards
/// never touch the same cache line; snapshots sum the shards.
class Histogram {
 public:
  static constexpr size_t kShards = 8;

  /// One merged view of the histogram. `counts[i]` is the number of
  /// observations ≤ `bounds[i]`; `counts.back()` (one longer than bounds)
  /// is the overflow bucket.
  struct Snapshot {
    std::vector<int64_t> bounds;
    std::vector<uint64_t> counts;
    uint64_t total_count = 0;
    int64_t sum = 0;

    /// Quantile estimate (q in [0, 1]) with linear interpolation inside the
    /// owning bucket, as in Prometheus' histogram_quantile. Observations in
    /// the overflow bucket report the largest finite bound. 0 when empty.
    double Quantile(double q) const;
  };

  /// `bounds` are ascending inclusive upper limits; an implicit +Inf bucket
  /// is appended.
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  Snapshot Snap() const;

  void Reset();

  const std::vector<int64_t>& bounds() const { return bounds_; }

 private:
  std::vector<int64_t> bounds_;
  size_t stride_;  // buckets rounded up to a cacheline of atomics
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  struct alignas(64) PaddedSum {
    std::atomic<int64_t> v{0};
  };
  std::unique_ptr<PaddedSum[]> sums_;
};

/// Default bucket ladder for latency histograms: 250ns .. 10s, roughly
/// 1-2.5-5 per decade. Covers sub-µs posting scans through multi-second
/// paper-scale batches.
const std::vector<int64_t>& LatencyBucketsNanos();

/// Default bucket ladder for size/count histograms: 1 .. 10^9, 1-2-5 steps.
const std::vector<int64_t>& SizeBuckets();

/// Named metrics, one instance per process section (tests may construct
/// private registries). Registration is mutex-guarded and happens once per
/// call site (the macros cache the returned reference in a function-local
/// static); updates after that are lock-free. Metrics are never erased, so
/// returned references stay valid for the registry's lifetime — Reset()
/// zeroes values in place.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `help`, when non-empty, is recorded once per metric *family* (the name
  /// with any `{label}` suffix stripped) and emitted as a `# HELP` line in
  /// PrometheusText(). Later registrations never overwrite an existing help
  /// string, so the first caller to document a family wins.
  Counter& CounterOf(std::string_view name, std::string_view help = {})
      ASUP_EXCLUDES(mutex_);
  Gauge& GaugeOf(std::string_view name, std::string_view help = {})
      ASUP_EXCLUDES(mutex_);
  /// `bounds` is consulted only on first registration of `name`.
  Histogram& HistogramOf(std::string_view name,
                         const std::vector<int64_t>& bounds,
                         std::string_view help = {}) ASUP_EXCLUDES(mutex_);

  /// The help string registered for `family` ("" if none).
  std::string HelpOf(std::string_view family) const ASUP_EXCLUDES(mutex_);

  /// Point-in-time values of every counter / gauge, sorted by name
  /// (RunReport scrapes these).
  std::map<std::string, uint64_t> CounterValues() const
      ASUP_EXCLUDES(mutex_);
  std::map<std::string, double> GaugeValues() const ASUP_EXCLUDES(mutex_);

  /// The histogram registered under `name`, or nullptr.
  Histogram* FindHistogram(std::string_view name) const ASUP_EXCLUDES(mutex_);

  /// Prometheus text exposition (deterministic: metrics sorted by name).
  std::string PrometheusText() const ASUP_EXCLUDES(mutex_);

  /// JSON snapshot: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string JsonText() const ASUP_EXCLUDES(mutex_);

  /// Zeroes every metric in place; references handed out stay valid.
  void Reset() ASUP_EXCLUDES(mutex_);

  /// The process-wide registry the instrumentation macros write to.
  static MetricsRegistry& Default();

 private:
  mutable Mutex mutex_;
  // std::map: snapshot iteration must be deterministic (golden files, CI
  // greps); registration is cold so the tree walk never matters. The maps
  // are guarded; the pointed-to metrics are internally synchronized
  // (atomics) and hand out stable references past the lock by design.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ASUP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ASUP_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ASUP_GUARDED_BY(mutex_);
  // family name -> HELP text (exposition only; absent families emit no
  // `# HELP` line, keeping snapshots byte-stable for undocumented metrics).
  std::map<std::string, std::string, std::less<>> help_
      ASUP_GUARDED_BY(mutex_);

  void RecordHelpLocked(std::string_view name, std::string_view help)
      ASUP_REQUIRES(mutex_);
  /// "# HELP <family> <text>\n" for documented families, "" otherwise.
  std::string HelpLineLocked(const std::string& name) const
      ASUP_REQUIRES(mutex_);
};

}  // namespace obs
}  // namespace asup

// Instrumentation macros. `name` must be a string literal (or have static
// storage duration): the resolved metric reference is cached in a
// function-local static, so the registry lock is taken once per call site.
// An optional trailing string-literal argument documents the metric family
// (emitted as a `# HELP` line by PrometheusText).
#define ASUP_METRICS_ONLY(...) __VA_ARGS__

#define ASUP_METRIC_COUNT(name, n, ...)                        \
  do {                                                         \
    static ::asup::obs::Counter& asup_metric_counter_ =        \
        ::asup::obs::MetricsRegistry::Default().CounterOf(     \
            name __VA_OPT__(, ) __VA_ARGS__);                  \
    asup_metric_counter_.Add(n);                               \
  } while (0)

#define ASUP_METRIC_GAUGE_SET(name, v, ...)                 \
  do {                                                      \
    static ::asup::obs::Gauge& asup_metric_gauge_ =         \
        ::asup::obs::MetricsRegistry::Default().GaugeOf(    \
            name __VA_OPT__(, ) __VA_ARGS__);               \
    asup_metric_gauge_.Set(static_cast<double>(v));         \
  } while (0)

#define ASUP_METRIC_GAUGE_ADD(name, v, ...)                 \
  do {                                                      \
    static ::asup::obs::Gauge& asup_metric_gauge_ =         \
        ::asup::obs::MetricsRegistry::Default().GaugeOf(    \
            name __VA_OPT__(, ) __VA_ARGS__);               \
    asup_metric_gauge_.Add(static_cast<double>(v));         \
  } while (0)

#define ASUP_METRIC_OBSERVE_NANOS(name, v, ...)                          \
  do {                                                                   \
    static ::asup::obs::Histogram& asup_metric_histogram_ =              \
        ::asup::obs::MetricsRegistry::Default().HistogramOf(             \
            name, ::asup::obs::LatencyBucketsNanos() __VA_OPT__(, )      \
                      __VA_ARGS__);                                      \
    asup_metric_histogram_.Observe(static_cast<int64_t>(v));             \
  } while (0)

#define ASUP_METRIC_OBSERVE_SIZE(name, v, ...)                           \
  do {                                                                   \
    static ::asup::obs::Histogram& asup_metric_histogram_ =              \
        ::asup::obs::MetricsRegistry::Default().HistogramOf(             \
            name, ::asup::obs::SizeBuckets() __VA_OPT__(, ) __VA_ARGS__); \
    asup_metric_histogram_.Observe(static_cast<int64_t>(v));             \
  } while (0)

#else  // !ASUP_METRICS_ENABLED

// Compiled out: operands stay type checked (the dead branch folds away)
// but are never evaluated — the same contract as the disabled ASUP_CHECK.
// The optional help-string argument is discarded.
#define ASUP_METRICS_ONLY(...)
#define ASUP_METRIC_COUNT(name, n, ...) (true ? (void)0 : ((void)(n)))
#define ASUP_METRIC_GAUGE_SET(name, v, ...) (true ? (void)0 : ((void)(v)))
#define ASUP_METRIC_GAUGE_ADD(name, v, ...) (true ? (void)0 : ((void)(v)))
#define ASUP_METRIC_OBSERVE_NANOS(name, v, ...) \
  (true ? (void)0 : ((void)(v)))
#define ASUP_METRIC_OBSERVE_SIZE(name, v, ...) \
  (true ? (void)0 : ((void)(v)))

#endif  // ASUP_METRICS_ENABLED

#endif  // ASUP_OBS_METRICS_H_
