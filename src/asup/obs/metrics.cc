#include "asup/obs/metrics.h"

#if ASUP_METRICS_ENABLED

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "asup/util/check.h"

namespace asup {
namespace obs {

namespace {

/// Round-robin shard assignment: each new thread takes the next shard, so
/// up to kShards concurrent writers never share a cache line (a hash of the
/// thread id clusters badly under some libstdc++ implementations).
size_t CurrentShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) %
      Histogram::kShards;
  return shard;
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Splices a `le="<bound>"` label into a (possibly already labelled) metric
/// name: `m` -> `m_bucket{le="10"}`, `m{x="y"}` -> `m_bucket{x="y",le="10"}`.
std::string BucketSeries(const std::string& name, const std::string& le) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    return name + "_bucket{le=\"" + le + "\"}";
  }
  std::string out = name.substr(0, brace) + "_bucket" + name.substr(brace);
  out.insert(out.size() - 1, ",le=\"" + le + "\"");
  return out;
}

std::string SuffixedSeries(const std::string& name, const char* suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

double Histogram::Snapshot::Quantile(double q) const {
  if (total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper edge; report the largest bound.
      return bounds.empty() ? 0.0
                            : static_cast<double>(bounds.back());
    }
    const double upper = static_cast<double>(bounds[i]);
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const uint64_t below = cumulative - counts[i];
    if (counts[i] == 0) return upper;
    const double fraction = (target - static_cast<double>(below)) /
                            static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)) {
  ASUP_CHECK(!bounds_.empty());
  ASUP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  const size_t buckets = bounds_.size() + 1;  // +1 overflow
  // Pad the per-shard row to a whole cacheline of 8-byte atomics so rows
  // never share a line.
  stride_ = (buckets + 7) / 8 * 8;
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(stride_ * kShards);
  for (size_t i = 0; i < stride_ * kShards; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sums_ = std::make_unique<PaddedSum[]>(kShards);
}

void Histogram::Observe(int64_t value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const size_t shard = CurrentShard();
  counts_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  sums_[shard].v.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (size_t shard = 0; shard < kShards; ++shard) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] +=
          counts_[shard * stride_ + b].load(std::memory_order_relaxed);
    }
    snap.sum += sums_[shard].v.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.total_count += c;
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i < stride_ * kShards; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (size_t shard = 0; shard < kShards; ++shard) {
    sums_[shard].v.store(0, std::memory_order_relaxed);
  }
}

const std::vector<int64_t>& LatencyBucketsNanos() {
  static const std::vector<int64_t>* const buckets = [] {
    auto* b = new std::vector<int64_t>;
    for (int64_t decade = 250; decade <= 2'500'000'000LL; decade *= 10) {
      b->push_back(decade);          // 250ns, 2.5µs, ...
      b->push_back(decade * 2);      // 500ns, 5µs, ...
      b->push_back(decade * 4);      // 1µs, 10µs, ...
    }
    b->push_back(10'000'000'000LL);  // 10s
    return b;
  }();
  return *buckets;
}

const std::vector<int64_t>& SizeBuckets() {
  static const std::vector<int64_t>* const buckets = [] {
    auto* b = new std::vector<int64_t>;
    for (int64_t decade = 1; decade <= 1'000'000'000LL; decade *= 10) {
      b->push_back(decade);
      if (decade < 1'000'000'000LL) {
        b->push_back(decade * 2);
        b->push_back(decade * 5);
      }
    }
    return b;
  }();
  return *buckets;
}

void MetricsRegistry::RecordHelpLocked(std::string_view name,
                                       std::string_view help) {
  if (help.empty()) return;
  const std::string family(name.substr(0, name.find('{')));
  // First writer wins: a family's documentation should not flap between
  // call sites.
  help_.emplace(family, std::string(help));
}

Counter& MetricsRegistry::CounterOf(std::string_view name,
                                    std::string_view help) {
  MutexLock lock(mutex_);
  RecordHelpLocked(name, help);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GaugeOf(std::string_view name, std::string_view help) {
  MutexLock lock(mutex_);
  RecordHelpLocked(name, help);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::HistogramOf(std::string_view name,
                                        const std::vector<int64_t>& bounds,
                                        std::string_view help) {
  MutexLock lock(mutex_);
  RecordHelpLocked(name, help);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::HelpOf(std::string_view family) const {
  MutexLock lock(mutex_);
  auto it = help_.find(family);
  return it == help_.end() ? std::string() : it->second;
}

std::string MetricsRegistry::HelpLineLocked(const std::string& name) const {
  const std::string family = name.substr(0, name.find('{'));
  auto it = help_.find(family);
  if (it == help_.end()) return {};
  return "# HELP " + family + " " + it->second + "\n";
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(mutex_);
  std::map<std::string, uint64_t> values;
  for (const auto& [name, counter] : counters_) {
    values.emplace(name, counter->Value());
  }
  return values;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  MutexLock lock(mutex_);
  std::map<std::string, double> values;
  for (const auto& [name, gauge] : gauges_) {
    values.emplace(name, gauge->Value());
  }
  return values;
}

Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += HelpLineLocked(name);
    out += "# TYPE " + name.substr(0, name.find('{')) + " counter\n";
    out += name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += HelpLineLocked(name);
    out += "# TYPE " + name.substr(0, name.find('{')) + " gauge\n";
    out += name + " " + FormatDouble(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->Snap();
    out += HelpLineLocked(name);
    out += "# TYPE " + name.substr(0, name.find('{')) + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      cumulative += snap.counts[i];
      out += BucketSeries(name, std::to_string(snap.bounds[i])) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += BucketSeries(name, "+Inf") + " " +
           std::to_string(snap.total_count) + "\n";
    out += SuffixedSeries(name, "_sum") + " " + std::to_string(snap.sum) +
           "\n";
    out += SuffixedSeries(name, "_count") + " " +
           std::to_string(snap.total_count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::JsonText() const {
  MutexLock lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":" + FormatDouble(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->Snap();
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":{\"count\":" + std::to_string(snap.total_count) +
           ",\"sum\":" + std::to_string(snap.sum) +
           ",\"p50\":" + FormatDouble(snap.Quantile(0.50)) +
           ",\"p95\":" + FormatDouble(snap.Quantile(0.95)) +
           ",\"p99\":" + FormatDouble(snap.Quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED
