#include "asup/obs/trace.h"

#if ASUP_METRICS_ENABLED

#include <atomic>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "asup/util/check.h"

namespace asup {
namespace obs {

namespace {

/// The calling thread's active trace and the stopwatch anchoring its
/// timeline. Plain thread-locals: every access is thread-confined.
struct ActiveTraceState {
  QueryTrace* trace = nullptr;
  const Stopwatch* watch = nullptr;
};

thread_local ActiveTraceState g_active;

std::atomic<TraceRingSink*> g_sink{nullptr};

std::atomic<uint64_t> g_sequence{0};

Histogram& StageHistogram(Stage stage) {
  // One histogram per stage, resolved once; the array outlives every
  // caller (registry metrics are never erased).
  static Histogram* const histograms[kNumStages] = {
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"match\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"hide\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"trim\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"cover\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"virtual\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"cache_lookup\"}",
          LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"history_record\"}",
          LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"prefetch\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"commit\"}", LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"shard_match\"}",
          LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"shard_merge\"}",
          LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"epoch_build\"}",
          LatencyBucketsNanos()),
      &MetricsRegistry::Default().HistogramOf(
          "asup_pipeline_stage_ns{stage=\"epoch_migrate\"}",
          LatencyBucketsNanos()),
  };
  return *histograms[static_cast<size_t>(stage)];
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatNoteValue(double v) {
  // Notes are almost always small integers; print them without the
  // scientific-notation noise a raw operator<< would add.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kMatch:
      return "match";
    case Stage::kHide:
      return "hide";
    case Stage::kTrim:
      return "trim";
    case Stage::kCover:
      return "cover";
    case Stage::kVirtual:
      return "virtual";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kHistoryRecord:
      return "history_record";
    case Stage::kPrefetch:
      return "prefetch";
    case Stage::kCommit:
      return "commit";
    case Stage::kShardMatch:
      return "shard_match";
    case Stage::kShardMerge:
      return "shard_merge";
    case Stage::kEpochBuild:
      return "epoch_build";
    case Stage::kEpochMigrate:
      return "epoch_migrate";
  }
  return "?";
}

size_t QueryTrace::OpenSpan(Stage stage, int64_t start_ns) {
  TraceSpan span;
  span.stage = stage;
  span.start_ns = start_ns;
  span.duration_ns = -1;  // open
  span.depth = open_spans_;
  ++open_spans_;
  spans_.push_back(span);
  return spans_.size() - 1;
}

void QueryTrace::CloseSpan(size_t index, int64_t end_ns) {
  ASUP_CHECK_LT(index, spans_.size());
  TraceSpan& span = spans_[index];
  ASUP_CHECK(span.duration_ns < 0);
  span.duration_ns = end_ns - span.start_ns;
  ASUP_CHECK(open_spans_ > 0);
  --open_spans_;
}

void QueryTrace::AppendJson(std::string& out) const {
  out += "{\"q\":\"";
  AppendEscaped(out, query_);
  out += "\",\"seq\":" + std::to_string(sequence_) + ",\"spans\":[";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const TraceSpan& span = spans_[i];
    if (i != 0) out += ",";
    out += "{\"stage\":\"";
    out += StageName(span.stage);
    out += "\",\"start_ns\":" + std::to_string(span.start_ns) +
           ",\"dur_ns\":" + std::to_string(span.duration_ns) +
           ",\"depth\":" + std::to_string(span.depth) + "}";
  }
  out += "],\"notes\":{";
  for (size_t i = 0; i < notes_.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"";
    AppendEscaped(out, notes_[i].key);
    out += "\":" + FormatNoteValue(notes_[i].value);
  }
  out += "}}";
}

TraceRingSink::TraceRingSink(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRingSink::Publish(QueryTrace trace) {
  MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
    ASUP_METRIC_COUNT("asup_obs_traces_dropped_total", 1,
                      "Query traces a TraceRingSink overwrote to make room");
  }
  ++published_;
}

uint64_t TraceRingSink::total_published() const {
  MutexLock lock(mutex_);
  return published_;
}

uint64_t TraceRingSink::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

std::vector<QueryTrace> TraceRingSink::Snapshot() const {
  MutexLock lock(mutex_);
  std::vector<QueryTrace> out;
  out.reserve(ring_.size());
  // `next_` is the oldest retained slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRingSink::WriteJsonl(std::ostream& out) const {
  for (const QueryTrace& trace : Snapshot()) {
    std::string line;
    trace.AppendJson(line);
    out << line << "\n";
  }
}

void InstallTraceSink(TraceRingSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceRingSink* InstalledTraceSink() {
  return g_sink.load(std::memory_order_acquire);
}

QueryTrace* ActiveTrace() { return g_active.trace; }

int64_t ActiveTraceElapsedNanos() {
  return g_active.watch == nullptr ? 0 : g_active.watch->ElapsedNanos();
}

void NoteActiveTrace(const char* key, double value) {
  if (g_active.trace != nullptr) g_active.trace->AddNote(key, value);
}

ScopedQueryTrace::ScopedQueryTrace(const std::string& query) {
  if (InstalledTraceSink() == nullptr) return;
  active_ = true;
  trace_ = QueryTrace(query);
  previous_ = g_active.trace;
  previous_watch_ = g_active.watch;
  g_active.trace = &trace_;
  g_active.watch = &watch_;
}

ScopedQueryTrace::~ScopedQueryTrace() {
  if (!active_) return;
  g_active.trace = previous_;
  g_active.watch = previous_watch_;
  TraceRingSink* sink = InstalledTraceSink();
  if (sink != nullptr) {
    trace_.set_sequence(g_sequence.fetch_add(1, std::memory_order_relaxed));
    sink->Publish(std::move(trace_));
  }
}

ScopedStageTimer::ScopedStageTimer(Stage stage)
    : stage_(stage), trace_(g_active.trace) {
  if (trace_ != nullptr) {
    trace_start_ns_ = ActiveTraceElapsedNanos();
    span_index_ = trace_->OpenSpan(stage_, trace_start_ns_);
  }
}

ScopedStageTimer::~ScopedStageTimer() {
  const int64_t elapsed = watch_.ElapsedNanos();
  StageHistogram(stage_).Observe(elapsed);
  if (trace_ != nullptr) {
    trace_->CloseSpan(span_index_, trace_start_ns_ + elapsed);
  }
}

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED
