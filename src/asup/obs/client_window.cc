#include "asup/obs/client_window.h"

#if ASUP_METRICS_ENABLED

#include <algorithm>
#include <unordered_set>

#include "asup/util/check.h"

namespace asup {
namespace obs {

namespace {

// Rough per-entry overheads for the byte estimate; precision does not
// matter, monotonicity with actual footprint does.
constexpr size_t kClientBaseBytes = 256;
constexpr size_t kSeenTermBytes = 48;  // std::set node
constexpr size_t kRecordBaseBytes = 96;

}  // namespace

ClientWindowTable::ClientWindowTable(const ClientWindowConfig& config)
    : config_(config) {
  ASUP_CHECK(config_.window > 0);
  ASUP_CHECK(config_.max_clients > 0);
}

size_t ClientWindowTable::EstimateBytes(const ClientState& state) {
  size_t bytes = kClientBaseBytes;
  bytes += state.seen_terms.size() * kSeenTermBytes;
  for (const QueryRecord& record : state.window) {
    bytes += kRecordBaseBytes + record.terms.size() * sizeof(uint32_t);
  }
  bytes += kRecordBaseBytes + state.pending.terms.size() * sizeof(uint32_t);
  return bytes;
}

ClientWindowTable::ClientState& ClientWindowTable::TouchClient(
    uint64_t client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    it = clients_.emplace(client, ClientState()).first;
    lru_.push_front(client);
    it->second.lru_pos = lru_.begin();
    it->second.approx_bytes = EstimateBytes(it->second);
    approx_bytes_ += it->second.approx_bytes;
  } else if (it->second.lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  return it->second;
}

ClientWindowTable::ClientState* ClientWindowTable::FindClient(
    uint64_t client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return nullptr;
  if (it->second.lru_pos != lru_.begin()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  }
  return &it->second;
}

void ClientWindowTable::EvictOverBudget() {
  while (clients_.size() > config_.max_clients ||
         (config_.state_bytes_budget > 0 &&
          approx_bytes_ > config_.state_bytes_budget &&
          clients_.size() > 1)) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = clients_.find(victim);
    ASUP_CHECK(it != clients_.end());
    approx_bytes_ -= it->second.approx_bytes;
    clients_.erase(it);
    ++evictions_;
  }
}

void ClientWindowTable::CommitPending(ClientState& state) {
  if (!state.pending_open) return;
  state.window.push_back(std::move(state.pending));
  state.pending = QueryRecord();
  state.pending_open = false;
  ++state.lifetime_queries;
  while (state.window.size() > config_.window) state.window.pop_front();
  approx_bytes_ -= state.approx_bytes;
  state.approx_bytes = EstimateBytes(state);
  approx_bytes_ += state.approx_bytes;
}

bool ClientWindowTable::Observe(const Event& event) {
  switch (event.kind) {
    case EventKind::kQueryIssued: {
      ++global_queries_;
      ClientState& state = TouchClient(event.client);
      // A query issued while one is pending means the served event was
      // lost (or same-client queries interleaved); commit what we have so
      // the window keeps moving.
      CommitPending(state);
      state.pending_open = true;
      state.pending.hash = event.query_hash;
      state.pending.global_index = global_queries_;
      EvictOverBudget();
      return false;
    }
    case EventKind::kQueryTerm: {
      ClientState* state = FindClient(event.client);
      if (state == nullptr || !state->pending_open) return false;
      const auto term = static_cast<uint32_t>(event.a);
      state->pending.terms.push_back(term);
      // Pending-term growth counts against the byte budget immediately —
      // an attacker streaming terms into one never-served query must not
      // hold unbounded state just because CommitPending never runs. The
      // increments mirror EstimateBytes, so the commit-time recompute
      // lands on the same total.
      state->approx_bytes += sizeof(uint32_t);
      approx_bytes_ += sizeof(uint32_t);
      if (state->seen_terms.size() < config_.max_terms_tracked &&
          state->seen_terms.insert(term).second) {
        ++state->pending.new_terms;
        state->approx_bytes += kSeenTermBytes;
        approx_bytes_ += kSeenTermBytes;
      }
      EvictOverBudget();
      return false;
    }
    case EventKind::kSegmentProbe: {
      ClientState* state = FindClient(event.client);
      if (state != nullptr && state->pending_open) {
        state->pending.segment = static_cast<int32_t>(event.a);
      }
      return false;
    }
    case EventKind::kAnswerHidden:
    case EventKind::kAnswerTrimmed: {
      ClientState* state = FindClient(event.client);
      if (state != nullptr && state->pending_open && event.a > 0) {
        state->pending.suppressed = true;
      }
      return false;
    }
    case EventKind::kVirtualAnswer: {
      ClientState* state = FindClient(event.client);
      if (state != nullptr && state->pending_open) {
        state->pending.suppressed = true;
      }
      return false;
    }
    case EventKind::kCacheHit: {
      ClientState* state = FindClient(event.client);
      if (state != nullptr && state->pending_open) {
        state->pending.cache_hit = true;
      }
      return false;
    }
    case EventKind::kAnswerServed: {
      ClientState* state = FindClient(event.client);
      if (state == nullptr || !state->pending_open) return false;
      state->pending.overflow = event.b != 0;
      CommitPending(*state);
      EvictOverBudget();
      return true;
    }
    case EventKind::kCoverFound:
    case EventKind::kEpochMigration:
    case EventKind::kSuspicionFlag:
      return false;
  }
  return false;
}

ClientFeatures ClientWindowTable::ComputeFeatures(
    uint64_t client, const ClientState& state) const {
  ClientFeatures features;
  features.client = client;
  features.window_queries = state.window.size();
  features.lifetime_queries = state.lifetime_queries;
  if (state.window.empty()) return features;

  const double n = static_cast<double>(state.window.size());
  std::unordered_set<uint64_t> hashes;
  std::unordered_set<uint32_t> terms;
  size_t term_occurrences = 0;
  size_t new_terms = 0;
  size_t suppressed = 0;
  size_t overflow = 0;
  size_t cache_hits = 0;
  size_t crossings = 0;
  size_t segment_pairs = 0;
  int32_t previous_segment = -1;
  for (const QueryRecord& record : state.window) {
    hashes.insert(record.hash);
    for (uint32_t term : record.terms) terms.insert(term);
    term_occurrences += record.terms.size();
    new_terms += record.new_terms;
    if (record.suppressed) ++suppressed;
    if (record.overflow) ++overflow;
    if (record.cache_hit) ++cache_hits;
    if (record.segment >= 0) {
      if (previous_segment >= 0) {
        ++segment_pairs;
        if (record.segment != previous_segment) ++crossings;
      }
      previous_segment = record.segment;
    }
  }

  const uint64_t span_begin = state.window.front().global_index;
  const uint64_t span = global_queries_ >= span_begin
                            ? global_queries_ - span_begin + 1
                            : 1;
  features.query_share = n / static_cast<double>(span);
  features.repeat_query_fraction =
      1.0 - static_cast<double>(hashes.size()) / n;
  if (term_occurrences > 0) {
    features.repeat_term_fraction =
        1.0 - static_cast<double>(terms.size()) /
                  static_cast<double>(term_occurrences);
    features.distinct_term_growth =
        static_cast<double>(new_terms) /
        static_cast<double>(term_occurrences);
  }
  features.hidden_rate = static_cast<double>(suppressed) / n;
  if (segment_pairs > 0) {
    features.segment_crossing_rate =
        static_cast<double>(crossings) / static_cast<double>(segment_pairs);
  }
  features.saturation_rate = static_cast<double>(overflow) / n;
  features.cache_hit_rate = static_cast<double>(cache_hits) / n;
  return features;
}

std::optional<ClientFeatures> ClientWindowTable::FeaturesOf(
    uint64_t client) const {
  auto it = clients_.find(client);
  if (it == clients_.end()) return std::nullopt;
  return ComputeFeatures(client, it->second);
}

std::vector<ClientFeatures> ClientWindowTable::AllFeatures() const {
  std::vector<ClientFeatures> out;
  out.reserve(clients_.size());
  for (const auto& [client, state] : clients_) {
    out.push_back(ComputeFeatures(client, state));
  }
  return out;
}

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED
