#include "asup/obs/run_report.h"

#if ASUP_METRICS_ENABLED

#include <sstream>

namespace asup {
namespace obs {

namespace {

std::string StageHistogramName(Stage stage) {
  return std::string("asup_pipeline_stage_ns{stage=\"") + StageName(stage) +
         "\"}";
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Metric names may embed label quotes (`x{stage="hide"}`); escape them
/// when used as JSON keys.
std::string JsonKey(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

RunReport RunReport::Collect(MetricsRegistry& registry) {
  RunReport report;
  for (size_t s = 0; s < kNumStages; ++s) {
    const Stage stage = static_cast<Stage>(s);
    StageLatencySummary summary;
    summary.stage = stage;
    if (Histogram* histogram =
            registry.FindHistogram(StageHistogramName(stage))) {
      const Histogram::Snapshot snap = histogram->Snap();
      summary.count = snap.total_count;
      summary.total_ns = snap.sum;
      summary.p50_ns = snap.Quantile(0.50);
      summary.p95_ns = snap.Quantile(0.95);
      summary.p99_ns = snap.Quantile(0.99);
    }
    report.stages_.push_back(summary);
  }
  report.counters_ = registry.CounterValues();
  report.gauges_ = registry.GaugeValues();
  return report;
}

CsvTable RunReport::StagePercentileTable() const {
  std::vector<std::string> columns{"percentile"};
  std::vector<const StageLatencySummary*> ran;
  for (const StageLatencySummary& summary : stages_) {
    if (summary.count == 0) continue;
    columns.push_back(std::string(StageName(summary.stage)) + "_ns");
    ran.push_back(&summary);
  }
  CsvTable table(std::move(columns));
  const double StageLatencySummary::* percentiles[] = {
      &StageLatencySummary::p50_ns, &StageLatencySummary::p95_ns,
      &StageLatencySummary::p99_ns};
  const double labels[] = {50.0, 95.0, 99.0};
  for (size_t p = 0; p < 3; ++p) {
    std::vector<double> row{labels[p]};
    for (const StageLatencySummary* summary : ran) {
      row.push_back(summary->*percentiles[p]);
    }
    table.AddRow(row);
  }
  return table;
}

std::string RunReport::Json() const {
  std::string out = "{\"stages\":{";
  bool first = true;
  for (const StageLatencySummary& summary : stages_) {
    if (summary.count == 0) continue;
    if (!first) out += ",";
    first = false;
    out += std::string("\"") + StageName(summary.stage) + "\":{" +
           "\"count\":" + std::to_string(summary.count) +
           ",\"total_ns\":" + std::to_string(summary.total_ns) +
           ",\"p50_ns\":" + FormatDouble(summary.p50_ns) +
           ",\"p95_ns\":" + FormatDouble(summary.p95_ns) +
           ",\"p99_ns\":" + FormatDouble(summary.p99_ns) + "}";
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    // Built with append rather than operator+(const char*, string&&): GCC
    // 12's -O3 -Werror=restrict misfires on the rvalue-string overload.
    out += "\"";
    out += JsonKey(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonKey(name);
    out += "\":";
    out += FormatDouble(value);
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED
