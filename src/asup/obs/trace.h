#ifndef ASUP_OBS_TRACE_H_
#define ASUP_OBS_TRACE_H_

/// Per-query suppression tracing.
///
/// A `QueryTrace` records what the pipeline *decided* for one query — which
/// stages ran, how long each took, how many documents were hidden/trimmed,
/// whether the cover trigger fired, whether the answer came from the cache
/// or the virtual path — as a list of nested spans plus numeric notes.
/// Engines are instrumented with the `ASUP_TRACE_*` macros, which write to
/// a thread-local *active* trace; a harness opts a query in by constructing
/// a `ScopedQueryTrace` around the Search call (no sink installed ⇒ the
/// scope is inert and the macros cost one thread-local load).
///
/// Completed traces go to the installed `TraceRingSink`, a fixed-capacity
/// ring that keeps the most recent traces and can dump them as JSONL (one
/// trace per line; see DESIGN.md §11 for the schema). Benches expose this
/// as `--trace-out=FILE`.
///
/// Stage spans double as metrics: closing a span observes the stage's
/// latency histogram `asup_pipeline_stage_ns{stage="..."}` in the default
/// registry, which is what RunReport's per-stage percentiles are built
/// from. `ASUP_TRACE_STAGE` therefore instruments both surfaces at once,
/// with or without an active trace.
///
/// Compiled out together with the metrics layer (`-DASUP_METRICS=OFF`):
/// the macros expand to nothing and no obs symbol is referenced.

#include "asup/obs/metrics.h"

#if ASUP_METRICS_ENABLED

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "asup/util/annotated_mutex.h"
#include "asup/util/stopwatch.h"

namespace asup {
namespace obs {

/// Pipeline stages, one histogram and span label each. Keep StageName in
/// sync.
enum class Stage : uint8_t {
  kMatch = 0,       // M(q) / |Sel(q)| against the immutable index
  kHide,            // AS-SIMPLE per-document edge removal (Alg. 1 l. 7-13)
  kTrim,            // AS-SIMPLE LHS-degree cut (Alg. 1 l. 14)
  kCover,           // AS-ARBI trigger: prescreen + exact/greedy set cover
  kVirtual,         // AS-ARBI virtual answer assembly
  kCacheLookup,     // answer-cache claim (may block on an in-flight twin)
  kHistoryRecord,   // AS-ARBI history append (exclusive lock)
  kPrefetch,        // BatchExecutor deterministic-mode parallel prefetch
  kCommit,          // BatchExecutor deterministic-mode serial commit
  kShardMatch,      // scatter: match + local top-k on one index shard
  kShardMerge,      // gather: exact global merge of per-shard candidates
  kEpochBuild,      // CorpusManager: incremental merge of the next epoch
  kEpochMigrate,    // suppression-state migration to a newer corpus epoch
};
inline constexpr size_t kNumStages =
    static_cast<size_t>(Stage::kEpochMigrate) + 1;

const char* StageName(Stage stage);

/// One closed span: [start_ns, start_ns + duration_ns) relative to the
/// trace's start, at nesting depth `depth` (0 = outermost).
struct TraceSpan {
  Stage stage = Stage::kMatch;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  uint32_t depth = 0;
};

/// A numeric annotation ("docs_hidden" = 3). Keys must be string literals
/// (they are stored unowned).
struct TraceNote {
  const char* key = "";
  double value = 0.0;
};

/// The trace of one query through the pipeline. Built either by the RAII
/// scopes below or directly (tests construct golden traces by hand).
class QueryTrace {
 public:
  QueryTrace() = default;
  explicit QueryTrace(std::string query) : query_(std::move(query)) {}

  const std::string& query() const { return query_; }
  uint64_t sequence() const { return sequence_; }
  void set_sequence(uint64_t s) { sequence_ = s; }

  /// Opens a span at `start_ns`; returns its index for CloseSpan. Depth is
  /// the number of currently open spans.
  size_t OpenSpan(Stage stage, int64_t start_ns);
  void CloseSpan(size_t index, int64_t end_ns);

  void AddSpan(const TraceSpan& span) { spans_.push_back(span); }
  void AddNote(const char* key, double value) {
    notes_.push_back(TraceNote{key, value});
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceNote>& notes() const { return notes_; }

  /// Appends this trace as one JSONL line (no trailing newline):
  /// {"q":"...","seq":N,"spans":[{"stage":"hide","start_ns":..,
  ///  "dur_ns":..,"depth":..},...],"notes":{"docs_hidden":3,...}}
  void AppendJson(std::string& out) const;

 private:
  std::string query_;
  uint64_t sequence_ = 0;
  uint32_t open_spans_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<TraceNote> notes_;
};

/// Fixed-capacity ring of the most recent completed traces.
class TraceRingSink {
 public:
  explicit TraceRingSink(size_t capacity);

  void Publish(QueryTrace trace) ASUP_EXCLUDES(mutex_);

  /// Total traces ever published (≥ the number retained).
  uint64_t total_published() const ASUP_EXCLUDES(mutex_);

  /// Traces the ring overwrote to make room (total_published() -
  /// retained). Each overwrite also bumps `asup_obs_traces_dropped_total`
  /// in the default registry, so silent wrap-around is visible fleet-wide.
  uint64_t dropped() const ASUP_EXCLUDES(mutex_);

  /// Retained traces, oldest first.
  std::vector<QueryTrace> Snapshot() const ASUP_EXCLUDES(mutex_);

  /// Writes every retained trace as JSONL, oldest first.
  void WriteJsonl(std::ostream& out) const ASUP_EXCLUDES(mutex_);

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  std::vector<QueryTrace> ring_ ASUP_GUARDED_BY(mutex_);
  // ring slot the next publish overwrites
  size_t next_ ASUP_GUARDED_BY(mutex_) = 0;
  uint64_t published_ ASUP_GUARDED_BY(mutex_) = 0;
  uint64_t dropped_ ASUP_GUARDED_BY(mutex_) = 0;
};

/// Installs the process-wide sink the scopes publish to (nullptr to
/// disable tracing). The sink is borrowed and must outlive its
/// installation. Not synchronized against in-flight queries: install
/// before issuing traced queries, uninstall after quiescing.
void InstallTraceSink(TraceRingSink* sink);
TraceRingSink* InstalledTraceSink();

/// The calling thread's active trace (nullptr outside a ScopedQueryTrace
/// or when no sink is installed).
QueryTrace* ActiveTrace();

/// Makes `query`'s pipeline observable on the calling thread for this
/// scope; publishes the trace to the installed sink on destruction.
/// Nestable (the outer trace pauses); inert when no sink is installed.
class ScopedQueryTrace {
 public:
  explicit ScopedQueryTrace(const std::string& query);
  ~ScopedQueryTrace();

  ScopedQueryTrace(const ScopedQueryTrace&) = delete;
  ScopedQueryTrace& operator=(const ScopedQueryTrace&) = delete;

 private:
  QueryTrace trace_;
  QueryTrace* previous_ = nullptr;
  const Stopwatch* previous_watch_ = nullptr;
  Stopwatch watch_;
  bool active_ = false;
};

/// RAII stage scope: times the stage, observes
/// `asup_pipeline_stage_ns{stage="..."}` on close, and records a span on
/// the active trace (if any).
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Stage stage);
  ~ScopedStageTimer();

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Stage stage_;
  Stopwatch watch_;
  QueryTrace* trace_;        // captured at open; spans close on this trace
  size_t span_index_ = 0;
  int64_t trace_start_ns_ = 0;
};

/// The elapsed-nanos offset of the calling thread's active trace (0 when
/// none) — used by ScopedStageTimer to place spans on the trace timeline.
int64_t ActiveTraceElapsedNanos();

/// Adds a note to the active trace; no-op without one.
void NoteActiveTrace(const char* key, double value);

}  // namespace obs
}  // namespace asup

#define ASUP_OBS_CONCAT_INNER_(a, b) a##b
#define ASUP_OBS_CONCAT_(a, b) ASUP_OBS_CONCAT_INNER_(a, b)

/// Times the rest of the enclosing scope as `stage` (metrics histogram +
/// span on the active trace).
#define ASUP_TRACE_STAGE(stage)                 \
  ::asup::obs::ScopedStageTimer ASUP_OBS_CONCAT_(asup_stage_timer_, \
                                                 __LINE__)(stage)

/// Numeric per-query annotation; `key` must be a string literal.
#define ASUP_TRACE_NOTE(key, value) \
  ::asup::obs::NoteActiveTrace(key, static_cast<double>(value))

#else  // !ASUP_METRICS_ENABLED

#define ASUP_TRACE_STAGE(stage) (void)0
#define ASUP_TRACE_NOTE(key, value) (true ? (void)0 : ((void)(value)))

#endif  // ASUP_METRICS_ENABLED

#endif  // ASUP_OBS_TRACE_H_
