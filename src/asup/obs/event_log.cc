#include "asup/obs/event_log.h"

#if ASUP_METRICS_ENABLED

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "asup/util/check.h"

namespace asup {
namespace obs {

namespace {

/// Round-robin shard assignment (same policy as the histogram shards): up
/// to kShards concurrent writers never contend on one ring mutex.
size_t CurrentShard() {
  static std::atomic<size_t> next_shard{0};
  thread_local const size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % EventLog::kShards;
  return shard;
}

std::atomic<uint64_t> g_next_log_id{1};
std::atomic<uint64_t> g_next_sequence{1};

std::atomic<EventLog*> g_event_log{nullptr};
std::atomic<Watchtower*> g_watchtower{nullptr};

constexpr uint32_t kBinaryMagic = 0x41534556;  // "ASEV"
constexpr uint32_t kBinaryVersion = 1;

void PutU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
  out.write(buf, sizeof(buf));
}

void PutU64(std::ostream& out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)));
  out.write(buf, sizeof(buf));
}

bool GetU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, sizeof(buf))) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

bool GetU64(std::istream& in, uint64_t* v) {
  char buf[8];
  if (!in.read(buf, sizeof(buf))) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

}  // namespace

namespace detail {
std::atomic<uint32_t> g_event_sink_mask{0};
}  // namespace detail

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryIssued:
      return "query_issued";
    case EventKind::kQueryTerm:
      return "query_term";
    case EventKind::kAnswerServed:
      return "answer_served";
    case EventKind::kAnswerHidden:
      return "answer_hidden";
    case EventKind::kAnswerTrimmed:
      return "answer_trimmed";
    case EventKind::kSegmentProbe:
      return "segment_probe";
    case EventKind::kVirtualAnswer:
      return "virtual_answer";
    case EventKind::kCoverFound:
      return "cover_found";
    case EventKind::kCacheHit:
      return "cache_hit";
    case EventKind::kEpochMigration:
      return "epoch_migration";
    case EventKind::kSuspicionFlag:
      return "suspicion_flag";
  }
  return "?";
}

/// One ring shard. `ring` grows to `shard_capacity_` and then overwrites
/// the slot at `next` (the oldest retained event).
struct EventLog::Shard {
  Mutex mu;
  std::vector<Event> ring ASUP_GUARDED_BY(mu);
  size_t next ASUP_GUARDED_BY(mu) = 0;
  uint64_t appended ASUP_GUARDED_BY(mu) = 0;
  uint64_t dropped ASUP_GUARDED_BY(mu) = 0;
};

/// One thread's staging buffer. The owning thread appends under `mu`
/// (uncontended in steady state); Flush/Snapshot drain under the same
/// mutex from any thread.
struct EventLog::Staging {
  Mutex mu;
  std::vector<Event> buf ASUP_GUARDED_BY(mu);
};

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? kShards : capacity),
      shard_capacity_((capacity_ + kShards - 1) / kShards),
      log_id_(g_next_log_id.fetch_add(1, std::memory_order_relaxed)),
      shards_(std::make_unique<Shard[]>(kShards)) {}

EventLog::~EventLog() {
  ASUP_CHECK(InstalledEventLog() != this);  // uninstall before destruction
}

EventLog::Staging& EventLog::StagingForThisThread() const {
  // Cache keyed by the log's process-unique id: ids are never reused, so a
  // stale entry for a destroyed log can never be looked up again.
  thread_local std::vector<std::pair<uint64_t, Staging*>> cache;
  for (const auto& [id, staging] : cache) {
    if (id == log_id_) return *staging;
  }
  auto owned = std::make_unique<Staging>();
  Staging* staging = owned.get();
  {
    MutexLock lock(staging_mutex_);
    stagings_.push_back(std::move(owned));
  }
  cache.emplace_back(log_id_, staging);
  return *staging;
}

void EventLog::DrainInto(std::vector<Event>&& spill) const {
  if (spill.empty()) return;
  Shard& shard = shards_[CurrentShard()];
  uint64_t dropped_now = 0;
  {
    MutexLock lock(shard.mu);
    for (Event& event : spill) {
      if (shard.ring.size() < shard_capacity_) {
        shard.ring.push_back(event);
      } else {
        shard.ring[shard.next] = event;
        shard.next = (shard.next + 1) % shard_capacity_;
        ++shard.dropped;
        ++dropped_now;
      }
      ++shard.appended;
    }
  }
  if (dropped_now > 0) {
    ASUP_METRIC_COUNT("asup_obs_events_dropped_total", dropped_now,
                      "Structured events the bounded event log overwrote");
  }
}

void EventLog::Append(const Event& event) {
  Staging& staging = StagingForThisThread();
  std::vector<Event> spill;
  {
    MutexLock lock(staging.mu);
    staging.buf.push_back(event);
    if (staging.buf.size() >= kStagingCapacity) {
      spill = std::move(staging.buf);
      staging.buf.clear();
    }
  }
  DrainInto(std::move(spill));
}

void EventLog::Flush() {
  std::vector<Staging*> stagings;
  {
    MutexLock lock(staging_mutex_);
    stagings.reserve(stagings_.size());
    for (const auto& staging : stagings_) stagings.push_back(staging.get());
  }
  for (Staging* staging : stagings) {
    std::vector<Event> spill;
    {
      MutexLock lock(staging->mu);
      spill = std::move(staging->buf);
      staging->buf.clear();
    }
    DrainInto(std::move(spill));
  }
}

uint64_t EventLog::total_appended() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    total += shard.appended;
  }
  // Staged-but-undrained events count as appended too.
  std::vector<Staging*> stagings;
  {
    MutexLock lock(staging_mutex_);
    for (const auto& staging : stagings_) stagings.push_back(staging.get());
  }
  for (Staging* staging : stagings) {
    MutexLock lock(staging->mu);
    total += staging->buf.size();
  }
  return total;
}

uint64_t EventLog::dropped() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    total += shard.dropped;
  }
  return total;
}

std::vector<Event> EventLog::Snapshot() const {
  const_cast<EventLog*>(this)->Flush();
  std::vector<Event> out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    // Oldest first within the shard: `next` is the oldest slot once the
    // ring has wrapped.
    for (size_t j = 0; j < shard.ring.size(); ++j) {
      out.push_back(shard.ring[(shard.next + j) % shard.ring.size()]);
    }
  }
  // Global order is the emit order; stable sort keeps per-shard append
  // order for hand-built events that share a sequence number.
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.sequence < y.sequence;
                   });
  return out;
}

void EventLog::WriteJsonl(std::ostream& out) const {
  for (const Event& event : Snapshot()) {
    out << "{\"seq\":" << event.sequence << ",\"kind\":\""
        << EventKindName(event.kind) << "\",\"client\":" << event.client
        << ",\"qhash\":" << event.query_hash << ",\"a\":" << event.a
        << ",\"b\":" << event.b << "}\n";
  }
}

void EventLog::WriteBinary(std::ostream& out) const {
  const std::vector<Event> events = Snapshot();
  PutU32(out, kBinaryMagic);
  PutU32(out, kBinaryVersion);
  PutU64(out, events.size());
  for (const Event& event : events) {
    PutU32(out, static_cast<uint32_t>(event.kind));
    PutU64(out, event.client);
    PutU64(out, event.query_hash);
    PutU64(out, event.sequence);
    PutU64(out, static_cast<uint64_t>(event.a));
    PutU64(out, static_cast<uint64_t>(event.b));
  }
}

bool EventLog::ReadBinary(std::istream& in, std::vector<Event>* events) {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t count = 0;
  if (!GetU32(in, &magic) || magic != kBinaryMagic) return false;
  if (!GetU32(in, &version) || version != kBinaryVersion) return false;
  if (!GetU64(in, &count)) return false;
  events->clear();
  events->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t kind = 0;
    Event event;
    uint64_t a = 0;
    uint64_t b = 0;
    if (!GetU32(in, &kind) || kind >= kNumEventKinds) return false;
    if (!GetU64(in, &event.client) || !GetU64(in, &event.query_hash) ||
        !GetU64(in, &event.sequence) || !GetU64(in, &a) || !GetU64(in, &b)) {
      return false;
    }
    event.kind = static_cast<EventKind>(kind);
    event.a = static_cast<int64_t>(a);
    event.b = static_cast<int64_t>(b);
    events->push_back(event);
  }
  return true;
}

void InstallEventLog(EventLog* log) {
  g_event_log.store(log, std::memory_order_release);
  uint32_t mask =
      detail::g_event_sink_mask.load(std::memory_order_relaxed);
  if (log != nullptr) {
    mask |= 1u;
  } else {
    mask &= ~1u;
  }
  detail::g_event_sink_mask.store(mask, std::memory_order_release);
}

EventLog* InstalledEventLog() {
  return g_event_log.load(std::memory_order_acquire);
}

void InstallWatchtower(Watchtower* watchtower) {
  g_watchtower.store(watchtower, std::memory_order_release);
  uint32_t mask =
      detail::g_event_sink_mask.load(std::memory_order_relaxed);
  if (watchtower != nullptr) {
    mask |= 2u;
  } else {
    mask &= ~2u;
  }
  detail::g_event_sink_mask.store(mask, std::memory_order_release);
}

Watchtower* InstalledWatchtower() {
  return g_watchtower.load(std::memory_order_acquire);
}

// Defined here (not suspicion.cc) so the fan-out has one home; the
// watchtower hook is declared in suspicion.h.
void WatchtowerIngest(Watchtower& watchtower, const Event& event);

void EmitEvent(Event event) {
  if (!EventSinksInstalled()) return;
  event.sequence = g_next_sequence.fetch_add(1, std::memory_order_relaxed);
  if (EventLog* log = InstalledEventLog(); log != nullptr) {
    log->Append(event);
  }
  if (Watchtower* watchtower = InstalledWatchtower();
      watchtower != nullptr) {
    WatchtowerIngest(*watchtower, event);
  }
}

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED
