#ifndef ASUP_OBS_RUN_REPORT_H_
#define ASUP_OBS_RUN_REPORT_H_

/// Structured per-run summary scraped from a MetricsRegistry.
///
/// Benches and `eval/experiment` call `RunReport::Collect()` after a run to
/// turn the raw registry state into the figures-facing view: per-stage
/// latency percentiles (p50/p95/p99 of `asup_pipeline_stage_ns{...}`),
/// the suppression counters (docs hidden/trimmed, virtual answers, cache
/// hits), and a JSON blob suitable for a BENCH_*.json sidecar. Reset the
/// default registry before the measured region or the report includes
/// warmup work.
///
/// Compiled out with the rest of the obs layer (`-DASUP_METRICS=OFF`).

#include "asup/obs/metrics.h"

#if ASUP_METRICS_ENABLED

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asup/obs/trace.h"
#include "asup/util/csv.h"

namespace asup {
namespace obs {

/// Latency summary of one pipeline stage.
struct StageLatencySummary {
  Stage stage = Stage::kMatch;
  uint64_t count = 0;
  int64_t total_ns = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

class RunReport {
 public:
  /// Scrapes `registry` (default: the process-wide one).
  static RunReport Collect(
      MetricsRegistry& registry = MetricsRegistry::Default());

  /// Every pipeline stage, in Stage order; stages that never ran have
  /// count 0.
  const std::vector<StageLatencySummary>& stages() const { return stages_; }

  /// All registry counters by full name.
  const std::map<std::string, uint64_t>& counters() const {
    return counters_;
  }

  /// All registry gauges by full name.
  const std::map<std::string, double>& gauges() const { return gauges_; }

  /// Stage percentiles as a figure table: one column per stage that ran
  /// (`<stage>_ns`), one row per percentile, first column "percentile"
  /// (50/95/99).
  CsvTable StagePercentileTable() const;

  /// {"stages":{...},"counters":{...},"gauges":{...}} — the structured
  /// per-run summary BENCH_*.json sidecars embed.
  std::string Json() const;

 private:
  std::vector<StageLatencySummary> stages_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED

#endif  // ASUP_OBS_RUN_REPORT_H_
