#ifndef ASUP_OBS_SUSPICION_H_
#define ASUP_OBS_SUSPICION_H_

/// Online attack-suspicion scoring (the "watchtower").
///
/// Consumes the structured event stream synchronously (EmitEvent fans out
/// to the installed Watchtower) and maintains per-client window features
/// (obs/client_window.h). Each completed query re-scores its client: every
/// threshold rule that fires contributes its weight to the raw score, the
/// raw score is EWMA-smoothed per client, and a client whose smoothed
/// score reaches `flag_threshold` (with at least `min_queries` in the
/// window) is flagged — once, stickily — emitting a kSuspicionFlag event
/// and bumping `asup_watchtower_flagged_clients_total`.
///
/// The rules encode the attack signatures of our own `attack/` suite:
/// RS-ESTIMATOR-style pool replay (term discovery collapses to zero, the
/// answer cache absorbs the re-issued pool), sheer traffic share, and the
/// suppressed-region probing signals (hidden-answer encounters, segment
/// walking, answer-at-k saturation). The smoothed score starts at 0, so a
/// flag requires a *sustained* high raw score — a benign client's bursty
/// first window cannot trip it. `eval/detection_experiment.h` closes the
/// loop by replaying those attackers and benign epoch-stream mixes
/// through this scorer; the default thresholds are calibrated there
/// (fig. 21: benign mixes score ≤ 2, pool-replaying estimators ≥ 3.5).
///
/// Thread-safe (one mutex; ingest is cheap — O(window) on completed
/// queries only). Compiled out with the obs layer under
/// `-DASUP_METRICS=OFF`.

#include "asup/obs/client_window.h"
#include "asup/obs/event_log.h"

#if ASUP_METRICS_ENABLED

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "asup/util/annotated_mutex.h"

namespace asup {
namespace obs {

/// Threshold rules. A rule fires when its feature crosses the threshold in
/// the suspicious direction; its weight then joins the raw score. Weights
/// of 0 disable a rule.
struct SuspicionRules {
  /// Client issues an outsized share of global traffic.
  double min_query_share = 0.5;
  double query_share_weight = 1.0;

  /// Pool replay: the client re-issues queries from inside its window.
  double min_repeat_query = 0.30;
  double repeat_query_weight = 1.0;

  /// Fixed probe vocabulary.
  double min_repeat_term = 0.85;
  double repeat_term_weight = 0.5;

  /// Term discovery dried up (suspicious *below* the threshold): bona fide
  /// users keep finding new vocabulary (fig. 21 benign mixes sit near
  /// 0.45); a maintained pool converges to ~0.
  double max_term_growth = 0.05;
  double term_growth_weight = 1.5;

  /// The defense keeps perturbing this client's answers. Weighted low: on
  /// small corpora bona fide valid queries are perturbed too.
  double min_hidden_rate = 0.25;
  double hidden_rate_weight = 0.5;

  /// µ-segment boundary walking (selectivity-stratum flips between
  /// consecutive queries). Diverse bona fide traffic flips often, so only
  /// near-systematic walking fires.
  double min_crossing_rate = 0.95;
  double crossing_weight = 0.5;

  /// Answers pinned at the interface limit k.
  double min_saturation = 0.90;
  double saturation_weight = 0.5;

  /// Pool replay's second face: re-issued queries land in the answer
  /// cache epoch after epoch.
  double min_cache_hit = 0.60;
  double cache_hit_weight = 1.0;
};

struct WatchtowerConfig {
  ClientWindowConfig window;
  SuspicionRules rules;

  /// EWMA smoothing factor for the per-client score (1 = no smoothing).
  double ewma_alpha = 0.25;

  /// Smoothed score at which a client is flagged.
  double flag_threshold = 3.0;

  /// Minimum window queries before a client can be scored or flagged.
  uint64_t min_queries = 24;
};

class Watchtower {
 public:
  explicit Watchtower(const WatchtowerConfig& config = WatchtowerConfig());

  /// Folds one event into the client windows; re-scores the client when
  /// the event completes a query. Ignores kSuspicionFlag (its own output).
  void Ingest(const Event& event) ASUP_EXCLUDES(mutex_);

  struct Verdict {
    uint64_t client = 0;
    ClientFeatures features;
    double score = 0.0;           // latest raw rule score
    double smoothed_score = 0.0;  // EWMA of raw scores
    bool flagged = false;         // sticky once set
  };

  /// Current verdict for `client` (nullopt if untracked).
  std::optional<Verdict> VerdictOf(uint64_t client) const
      ASUP_EXCLUDES(mutex_);

  /// Verdicts for every tracked client, ascending client id.
  std::vector<Verdict> Verdicts() const ASUP_EXCLUDES(mutex_);

  uint64_t events_ingested() const ASUP_EXCLUDES(mutex_);
  uint64_t queries_scored() const ASUP_EXCLUDES(mutex_);
  uint64_t clients_flagged() const ASUP_EXCLUDES(mutex_);

  const WatchtowerConfig& config() const { return config_; }

  /// The raw rule score for `features` under `rules` (stateless; the
  /// smoothing and stickiness live in Ingest).
  static double RuleScore(const ClientFeatures& features,
                          const SuspicionRules& rules, uint64_t min_queries);

 private:
  struct ScoreState {
    double score = 0.0;
    double smoothed = 0.0;  // EWMA from an implicit 0 prior
    bool flagged = false;
  };

  void ScoreClientLocked(uint64_t client) ASUP_REQUIRES(mutex_);
  Verdict VerdictLocked(uint64_t client, const ClientFeatures& features)
      const ASUP_REQUIRES(mutex_);

  const WatchtowerConfig config_;
  mutable Mutex mutex_;
  ClientWindowTable table_ ASUP_GUARDED_BY(mutex_);
  std::map<uint64_t, ScoreState> scores_ ASUP_GUARDED_BY(mutex_);
  uint64_t events_ ASUP_GUARDED_BY(mutex_) = 0;
  uint64_t scored_ ASUP_GUARDED_BY(mutex_) = 0;
  uint64_t flagged_ ASUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED

#endif  // ASUP_OBS_SUSPICION_H_
