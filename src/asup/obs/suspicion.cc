#include "asup/obs/suspicion.h"

#if ASUP_METRICS_ENABLED

#include <utility>

namespace asup {
namespace obs {

/// Bridge called by EmitEvent's fan-out (declared in event_log.cc), kept
/// out of the public header.
void WatchtowerIngest(Watchtower& watchtower, const Event& event) {
  watchtower.Ingest(event);
}

Watchtower::Watchtower(const WatchtowerConfig& config)
    : config_(config), table_(config.window) {}

double Watchtower::RuleScore(const ClientFeatures& features,
                             const SuspicionRules& rules,
                             uint64_t min_queries) {
  if (features.window_queries < min_queries) return 0.0;
  double score = 0.0;
  if (features.query_share >= rules.min_query_share) {
    score += rules.query_share_weight;
  }
  if (features.repeat_query_fraction >= rules.min_repeat_query) {
    score += rules.repeat_query_weight;
  }
  if (features.repeat_term_fraction >= rules.min_repeat_term) {
    score += rules.repeat_term_weight;
  }
  if (features.distinct_term_growth <= rules.max_term_growth) {
    score += rules.term_growth_weight;
  }
  if (features.hidden_rate >= rules.min_hidden_rate) {
    score += rules.hidden_rate_weight;
  }
  if (features.segment_crossing_rate >= rules.min_crossing_rate) {
    score += rules.crossing_weight;
  }
  if (features.saturation_rate >= rules.min_saturation) {
    score += rules.saturation_weight;
  }
  if (features.cache_hit_rate >= rules.min_cache_hit) {
    score += rules.cache_hit_weight;
  }
  return score;
}

void Watchtower::ScoreClientLocked(uint64_t client) {
  const std::optional<ClientFeatures> features = table_.FeaturesOf(client);
  if (!features.has_value()) return;
  ScoreState& state = scores_[client];
  state.score = RuleScore(*features, config_.rules, config_.min_queries);
  // EWMA from an implicit 0 prior: a flag needs the raw score to *stay*
  // above the threshold, not to spike there once.
  state.smoothed = config_.ewma_alpha * state.score +
                   (1.0 - config_.ewma_alpha) * state.smoothed;
  ++scored_;
  ASUP_METRIC_COUNT("asup_watchtower_queries_scored_total", 1,
                    "Completed queries scored by the watchtower");
  if (!state.flagged && state.smoothed >= config_.flag_threshold &&
      features->window_queries >= config_.min_queries) {
    state.flagged = true;
    ++flagged_;
    ASUP_METRIC_COUNT("asup_watchtower_flagged_clients_total", 1,
                      "Clients whose smoothed suspicion score crossed the "
                      "flag threshold");
    Event flag;
    flag.kind = EventKind::kSuspicionFlag;
    flag.client = client;
    flag.a = static_cast<int64_t>(state.smoothed * 1000.0);
    flag.b = static_cast<int64_t>(features->window_queries);
    // Ingest ignores kSuspicionFlag, so the fan-out cannot re-enter this
    // mutex.
    EmitEvent(flag);
  }
  // Keep the score map aligned with the (LRU-bounded) window table.
  if (scores_.size() > 2 * config_.window.max_clients) {
    for (auto it = scores_.begin(); it != scores_.end();) {
      if (!table_.FeaturesOf(it->first).has_value()) {
        it = scores_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Watchtower::Ingest(const Event& event) {
  if (event.kind == EventKind::kSuspicionFlag) return;
  MutexLock lock(mutex_);
  ++events_;
  const bool completed = table_.Observe(event);
  if (completed) {
    ScoreClientLocked(event.client);
    ASUP_METRIC_GAUGE_SET("asup_watchtower_clients_tracked",
                          table_.tracked_clients(),
                          "Clients currently tracked by the watchtower");
  }
}

Watchtower::Verdict Watchtower::VerdictLocked(
    uint64_t client, const ClientFeatures& features) const {
  Verdict verdict;
  verdict.client = client;
  verdict.features = features;
  auto it = scores_.find(client);
  if (it != scores_.end()) {
    verdict.score = it->second.score;
    verdict.smoothed_score = it->second.smoothed;
    verdict.flagged = it->second.flagged;
  }
  return verdict;
}

std::optional<Watchtower::Verdict> Watchtower::VerdictOf(
    uint64_t client) const {
  MutexLock lock(mutex_);
  const std::optional<ClientFeatures> features = table_.FeaturesOf(client);
  if (!features.has_value()) return std::nullopt;
  return VerdictLocked(client, *features);
}

std::vector<Watchtower::Verdict> Watchtower::Verdicts() const {
  MutexLock lock(mutex_);
  std::vector<Verdict> out;
  for (const ClientFeatures& features : table_.AllFeatures()) {
    out.push_back(VerdictLocked(features.client, features));
  }
  return out;
}

uint64_t Watchtower::events_ingested() const {
  MutexLock lock(mutex_);
  return events_;
}

uint64_t Watchtower::queries_scored() const {
  MutexLock lock(mutex_);
  return scored_;
}

uint64_t Watchtower::clients_flagged() const {
  MutexLock lock(mutex_);
  return flagged_;
}

}  // namespace obs
}  // namespace asup

#endif  // ASUP_METRICS_ENABLED
