#include "asup/index/corpus_manager.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "asup/obs/trace.h"
#include "asup/util/check.h"
#include "asup/util/hash.h"

namespace asup {

namespace {

/// Sentinel for "document removed in this epoch transition".
constexpr uint32_t kRemovedLocal = UINT32_MAX;

}  // namespace

std::shared_ptr<const CorpusSnapshot> CorpusSnapshot::Borrow(
    const InvertedIndex& index) {
  auto snap = std::shared_ptr<CorpusSnapshot>(new CorpusSnapshot());
  snap->index_ = &index;
  return snap;
}

std::shared_ptr<const CorpusSnapshot> CorpusSnapshot::Borrow(
    const ShardedInvertedIndex& sharded) {
  auto snap = std::shared_ptr<CorpusSnapshot>(new CorpusSnapshot());
  snap->sharded_ = &sharded;
  return snap;
}

const InvertedIndex& CorpusSnapshot::index() const {
  ASUP_CHECK(index_ != nullptr);
  return *index_;
}

const ShardedInvertedIndex& CorpusSnapshot::sharded() const {
  ASUP_CHECK(sharded_ != nullptr);
  return *sharded_;
}

uint64_t CorpusSnapshot::Fingerprint() const {
  uint64_t cached = fingerprint_.load(std::memory_order_acquire);
  if (cached != 0) return cached;
  const size_t n = NumDocuments();
  uint64_t h = Mix64(0x61737570u ^ static_cast<uint64_t>(n));  // "asup"
  for (uint32_t local = 0; local < n; ++local) {
    const Document& doc = corpus().Get(LocalToId(local));
    h = HashCombine(h, Mix64(doc.id()));
    h = HashCombine(h, Mix64(doc.length()));
    for (const TermFreq& entry : doc.terms()) {
      h = HashCombine(
          h, Mix64((static_cast<uint64_t>(entry.term) << 32) | entry.freq));
    }
  }
  if (h == 0) h = 1;  // keep 0 free as the "not yet computed" sentinel
  fingerprint_.store(h, std::memory_order_release);
  return h;
}

CorpusManager::CorpusManager(Corpus initial)
    : CorpusManager(std::move(initial), Options()) {}

CorpusManager::CorpusManager(Corpus initial, Options options)
    : options_(options) {
  auto snap = std::shared_ptr<CorpusSnapshot>(new CorpusSnapshot());
  snap->epoch_ = 1;
  auto corpus = std::make_unique<const Corpus>(std::move(initial));
  snap->owned_index_ = std::make_unique<const InvertedIndex>(*corpus);
  if (options_.num_shards >= 1) {
    snap->owned_sharded_ = std::make_unique<const ShardedInvertedIndex>(
        *corpus, options_.num_shards);
  }
  snap->owned_corpus_ = std::move(corpus);
  snap->index_ = snap->owned_index_.get();
  snap->sharded_ = snap->owned_sharded_.get();
  Publish(std::move(snap));
  ASUP_METRIC_GAUGE_SET("asup_index_epoch_current", 1);
}

SnapshotHandle CorpusManager::Apply(const CorpusDelta& delta) {
  MutexLock guard(apply_mutex_);
  SnapshotHandle base = Current();
  if (delta.empty()) return base;
  SnapshotHandle next;
  {
    ASUP_TRACE_STAGE(obs::Stage::kEpochBuild);
    next = BuildNextLocked(*base, delta);
  }
  Publish(next);
  ASUP_METRIC_GAUGE_SET("asup_index_epoch_current", next->epoch());
  ASUP_METRIC_COUNT("asup_index_epoch_publishes_total", 1);
  ASUP_METRIC_COUNT("asup_index_epoch_docs_added_total", delta.add.size());
  ASUP_METRIC_COUNT("asup_index_epoch_docs_removed_total",
                    delta.remove.size());
  return next;
}

void CorpusManager::ApplyAsync(CorpusDelta delta,
                               std::function<void(SnapshotHandle)> done) {
  ASUP_CHECK(options_.pool != nullptr);
  options_.pool->Submit(
      [this, delta = std::move(delta), done = std::move(done)]() {
        SnapshotHandle published = Apply(delta);
        if (done) done(std::move(published));
      });
}

SnapshotHandle CorpusManager::BuildNextLocked(const CorpusSnapshot& base,
                                              const CorpusDelta& delta) const {
  const InvertedIndex& old = base.index();
  auto corpus = std::make_unique<const Corpus>(ApplyDelta(base.corpus(), delta));

  std::vector<DocId> removed_ids(delta.remove);
  std::sort(removed_ids.begin(), removed_ids.end());
  std::vector<DocId> added_ids;
  added_ids.reserve(delta.add.size());
  for (const Document& doc : delta.add) added_ids.push_back(doc.id());
  std::sort(added_ids.begin(), added_ids.end());

  // New local-id assignment: pointers into the new corpus, ascending by id
  // (the same rule as InvertedIndex's fresh build).
  std::vector<const Document*> docs_by_local;
  docs_by_local.reserve(corpus->size());
  for (const auto& doc : corpus->documents()) docs_by_local.push_back(&doc);
  std::sort(docs_by_local.begin(), docs_by_local.end(),
            [](const Document* a, const Document* b) {
              return a->id() < b->id();
            });

  // Old local -> new local. Both id sequences are ascending and disjoint,
  // so the remap is monotone over survivors: remapped posting streams stay
  // in ascending order and can be merged with delta postings directly.
  std::vector<uint32_t> remap(old.NumDocuments());
  {
    size_t removed_pos = 0;
    size_t added_pos = 0;
    uint32_t next_local = 0;
    for (uint32_t local = 0; local < old.NumDocuments(); ++local) {
      const DocId id = old.LocalToId(local);
      while (added_pos < added_ids.size() && added_ids[added_pos] < id) {
        ++added_pos;  // an added document slots in before this survivor
        ++next_local;
      }
      if (removed_pos < removed_ids.size() && removed_ids[removed_pos] == id) {
        ++removed_pos;
        remap[local] = kRemovedLocal;
      } else {
        remap[local] = next_local++;
      }
    }
    ASUP_CHECK_EQ(removed_pos, removed_ids.size());
  }

  // Postings contributed by the added documents, per term, in ascending
  // new-local order (docs_by_local is ascending; two-pointer against the
  // sorted added ids finds each added document's new local id).
  std::vector<std::vector<Posting>> delta_postings(
      corpus->vocabulary().size());
  {
    size_t added_pos = 0;
    for (uint32_t local = 0;
         local < docs_by_local.size() && added_pos < added_ids.size();
         ++local) {
      if (docs_by_local[local]->id() != added_ids[added_pos]) continue;
      ++added_pos;
      for (const TermFreq& entry : docs_by_local[local]->terms()) {
        ASUP_DCHECK_LT(entry.term, delta_postings.size());
        delta_postings[entry.term].push_back({local, entry.freq});
      }
    }
    ASUP_CHECK_EQ(added_pos, added_ids.size());
  }

  // Pure append (no removals, every added id beyond the old id range): the
  // remap is the identity, so every untouched term's compressed posting
  // list is byte-for-byte reusable and is copied instead of re-encoded.
  const bool pure_append =
      removed_ids.empty() &&
      (old.NumDocuments() == 0 || added_ids.empty() ||
       added_ids.front() > old.LocalToId(
                               static_cast<uint32_t>(old.NumDocuments() - 1)));

  std::vector<PostingList> postings(corpus->vocabulary().size());
  for (size_t term = 0; term < postings.size(); ++term) {
    const PostingList& old_list =
        old.Postings(static_cast<TermId>(term));
    const std::vector<Posting>& additions = delta_postings[term];
    if (pure_append && additions.empty()) {
      if (!old_list.empty()) postings[term] = old_list;
      continue;
    }
    if (old_list.empty() && additions.empty()) continue;
    PostingList::Builder builder;
    size_t add_pos = 0;
    for (PostingList::Iterator it(&old_list); it.Valid(); it.Next()) {
      const Posting& posting = it.Get();
      const uint32_t new_local = remap[posting.local_doc];
      if (new_local == kRemovedLocal) continue;
      while (add_pos < additions.size() &&
             additions[add_pos].local_doc < new_local) {
        builder.Add(additions[add_pos].local_doc, additions[add_pos].freq);
        ++add_pos;
      }
      builder.Add(new_local, posting.freq);
    }
    while (add_pos < additions.size()) {
      builder.Add(additions[add_pos].local_doc, additions[add_pos].freq);
      ++add_pos;
    }
    if (builder.size() > 0) postings[term] = std::move(builder).Build();
  }

  // Stats with the exact arithmetic of the fresh InvertedIndex build, so a
  // maintained and a freshly built epoch are indistinguishable (down to
  // the double division producing average_doc_length).
  IndexStats stats;
  stats.num_documents = docs_by_local.size();
  uint64_t total_length = 0;
  for (const Document* doc : docs_by_local) total_length += doc->length();
  stats.average_doc_length =
      docs_by_local.empty()
          ? 0.0
          : static_cast<double>(total_length) /
                static_cast<double>(docs_by_local.size());
  ASUP_CHECK(std::isfinite(stats.average_doc_length));
  ASUP_CHECK(stats.average_doc_length >= 0.0);
  for (size_t term = 0; term < postings.size(); ++term) {
    const size_t df = postings[term].size();
    if (df == 0) continue;
    ++stats.num_terms;
    stats.num_postings += df;
    stats.posting_bytes += postings[term].ByteSize();
  }

  auto index = std::unique_ptr<InvertedIndex>(new InvertedIndex());
  index->corpus_ = corpus.get();
  index->docs_by_local_ = std::move(docs_by_local);
  index->postings_ = std::move(postings);
  index->stats_ = stats;

  auto snap = std::shared_ptr<CorpusSnapshot>(new CorpusSnapshot());
  snap->epoch_ = base.epoch() + 1;
  snap->owned_index_ = std::move(index);
  if (options_.num_shards >= 1) {
    snap->owned_sharded_ = std::make_unique<const ShardedInvertedIndex>(
        *corpus, options_.num_shards);
  }
  snap->owned_corpus_ = std::move(corpus);
  snap->index_ = snap->owned_index_.get();
  snap->sharded_ = snap->owned_sharded_.get();
  return snap;
}

}  // namespace asup
