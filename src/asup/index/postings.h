#ifndef ASUP_INDEX_POSTINGS_H_
#define ASUP_INDEX_POSTINGS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asup {

/// One posting: a document (as a dense per-index local id, which preserves
/// document-id order) and the term's in-document frequency.
struct Posting {
  uint32_t local_doc;
  uint32_t freq;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.local_doc == b.local_doc && a.freq == b.freq;
  }
};

/// Immutable compressed posting list: ascending local doc ids, delta +
/// variable-byte encoded in blocks of kPostingBlock postings, frequencies
/// variable-byte encoded inline. Each block boundary stores the absolute
/// doc id and a skip entry, so `Iterator::SkipTo` jumps whole blocks —
/// the standard skip-pointer layout of enterprise search indexes, and what
/// keeps conjunctive intersections of a rare and a common term cheap.
class PostingList {
 public:
  /// Postings per skip block.
  static constexpr uint32_t kPostingBlock = 128;

  /// Incremental builder; postings must be added in strictly increasing
  /// local doc id order.
  class Builder {
   public:
    /// Appends one posting. Requires local_doc > previous local_doc and
    /// freq >= 1.
    void Add(uint32_t local_doc, uint32_t freq);

    /// Finalizes the list. The builder must not be reused.
    PostingList Build() &&;

    size_t size() const { return count_; }

   private:
    friend class PostingList;
    struct SkipEntry {
      uint32_t doc;     // first doc id of the block
      uint32_t offset;  // byte offset of the block start
      uint32_t index;   // posting index of the block start
    };

    std::vector<uint8_t> bytes_;
    std::vector<SkipEntry> skips_;
    uint32_t last_doc_ = 0;
    size_t count_ = 0;
  };

  /// Forward iterator over the compressed list.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);

    /// True if the iterator points at a posting.
    bool Valid() const { return index_ < list_->count_; }

    /// Current posting. Requires Valid().
    const Posting& Get() const { return current_; }

    /// Advances to the next posting.
    void Next();

    /// Advances until Get().local_doc >= target (or exhaustion), jumping
    /// over whole blocks via the skip entries where possible.
    void SkipTo(uint32_t target);

    /// Index of the current posting within the list.
    size_t index() const { return index_; }

   private:
    void ReadCurrent();

    const PostingList* list_;
    size_t offset_ = 0;
    size_t index_ = 0;
    Posting current_{0, 0};
  };

  PostingList() = default;

  /// Number of postings (the term's document frequency).
  size_t size() const { return count_; }

  bool empty() const { return count_ == 0; }

  /// Compressed size in bytes (payload + skip entries).
  size_t ByteSize() const {
    return bytes_.size() + skips_.size() * sizeof(Builder::SkipEntry);
  }

  /// Number of skip entries (one per block after the first).
  size_t NumSkipEntries() const { return skips_.size(); }

  /// Decodes the full list.
  std::vector<Posting> Decode() const;

  Iterator begin() const { return Iterator(this); }

 private:
  friend class Builder;
  friend class Iterator;

  std::vector<uint8_t> bytes_;
  std::vector<Builder::SkipEntry> skips_;
  size_t count_ = 0;
};

/// Appends `value` to `out` in LEB128-style variable-byte encoding.
void AppendVarByte(uint32_t value, std::vector<uint8_t>& out);

/// Decodes one variable-byte integer starting at `offset`. Returns false —
/// without ever reading past `bytes.size()` — when the input is truncated
/// (a continuation byte at the end of `bytes`) or overlong (a fifth payload
/// byte carrying bits beyond 32, or any sixth byte), which AppendVarByte
/// never produces. On success stores the value, advances `offset` past the
/// encoding, and returns true; on failure `offset` is left at the
/// offending byte.
bool TryReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset,
                    uint32_t& value);

/// Decodes one variable-byte integer starting at `offset`, advancing it.
/// Aborts (in every build type, including plain Release) on truncated or
/// overlong input: posting bytes are produced in-process by
/// PostingList::Builder, so a malformed byte stream is memory corruption,
/// not a recoverable condition. Use TryReadVarByte for untrusted bytes.
uint32_t ReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset);

}  // namespace asup

#endif  // ASUP_INDEX_POSTINGS_H_
