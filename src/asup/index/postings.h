#ifndef ASUP_INDEX_POSTINGS_H_
#define ASUP_INDEX_POSTINGS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "asup/index/block_codec.h"
#include "asup/util/check.h"

namespace asup {

/// Immutable block-compressed posting list: ascending local doc ids,
/// partitioned into fixed-size blocks of kPostingBlock postings, each block
/// group-varint encoded (see block_codec.h) and fronted by a skip entry
/// carrying its first/last doc id and byte offset. `Iterator::SkipTo`
/// binary-searches the skip table and decodes at most one block — the
/// standard skip-pointer layout of enterprise search indexes, and what
/// keeps conjunctive intersections of a rare and a common term cheap.
class PostingList {
 public:
  /// Postings per block (and per skip entry).
  static constexpr uint32_t kPostingBlock =
      static_cast<uint32_t>(blockcodec::kMaxBlockPostings);

  /// Per-block skip metadata: one entry per block, including the first.
  struct SkipEntry {
    uint32_t first_doc;  // local doc id of the block's first posting
    uint32_t last_doc;   // local doc id of the block's last posting
    uint32_t offset;     // byte offset of the block's encoding in bytes_
  };

  /// Exact encoded footprint of one skip entry: three fixed-width 32-bit
  /// fields. Deliberately *not* sizeof(SkipEntry) — ByteSize() reports the
  /// format's cost, which must not drift with struct padding or layout.
  static constexpr size_t kSkipEntryEncodedBytes = 3 * sizeof(uint32_t);

  /// Incremental builder; postings must be added in strictly increasing
  /// local doc id order.
  class Builder {
   public:
    /// Appends one posting. Requires local_doc > previous local_doc and
    /// freq >= 1.
    void Add(uint32_t local_doc, uint32_t freq);

    /// Finalizes the list. The builder must not be reused.
    PostingList Build() &&;

    size_t size() const { return count_; }

   private:
    /// Encodes the buffered postings as one block.
    void Flush();

    std::vector<uint8_t> bytes_;
    std::vector<SkipEntry> skips_;
    std::vector<Posting> pending_;
    uint32_t last_doc_ = 0;
    size_t count_ = 0;
  };

  /// Forward iterator over the compressed list. Decodes block-at-a-time
  /// into an internal buffer; Next() within a block is an array read.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);

    /// True if the iterator points at a posting.
    bool Valid() const { return index_ < count_; }

    /// Current posting. Requires Valid().
    Posting Get() const { return {buffer_.docs[pos_], buffer_.freqs[pos_]}; }

    /// Advances to the next posting. Requires Valid(). Inline: within a
    /// block this is two increments and two compares; only the per-block
    /// reload is out of line.
    void Next() {
      ASUP_DCHECK(Valid());
      ++index_;
      ++pos_;
      if (index_ < count_ && pos_ == buffer_.count) LoadBlock(block_ + 1);
    }

    /// Advances until Get().local_doc >= target (or exhaustion), jumping
    /// whole blocks via the skip table where possible.
    ///
    /// Contract: SkipTo only ever moves *forward*. A target at or behind
    /// the current posting's doc id — which multi-way intersections
    /// legitimately produce when the driving list lags another list — is a
    /// documented no-op, not an error. Postconditions (ASUP_DCHECKed):
    /// index() never decreases, and whenever the iterator moved and is
    /// still Valid(), Get().local_doc >= target.
    void SkipTo(uint32_t target);

    /// Index of the current posting within the list.
    size_t index() const { return index_; }

   private:
    /// Decodes block `block` into buffer_ and points pos_ at its start.
    void LoadBlock(size_t block);

    const PostingList* list_;
    size_t count_ = 0;  // cached list_->count_: Valid() is one compare
    size_t block_ = 0;
    size_t pos_ = 0;    // position within buffer_
    size_t index_ = 0;  // global posting index
    blockcodec::DecodedBlock buffer_;
  };

  PostingList() = default;

  /// Number of postings (the term's document frequency).
  size_t size() const { return count_; }

  bool empty() const { return count_ == 0; }

  /// Compressed size in bytes: encoded payload plus the exact encoded
  /// footprint of the skip table (kSkipEntryEncodedBytes per block).
  size_t ByteSize() const {
    return bytes_.size() + skips_.size() * kSkipEntryEncodedBytes;
  }

  /// Encoded payload bytes only (no skip table).
  size_t PayloadBytes() const { return bytes_.size(); }

  /// Number of skip entries — one per block, including the first.
  size_t NumSkipEntries() const { return skips_.size(); }

  /// Decodes the full list, block at a time.
  std::vector<Posting> Decode() const;

  Iterator begin() const { return Iterator(this); }

 private:
  friend class Builder;
  friend class Iterator;

  /// Number of postings in `block` (kPostingBlock except possibly the
  /// last).
  size_t BlockSize(size_t block) const {
    return block + 1 < skips_.size()
               ? kPostingBlock
               : count_ - block * kPostingBlock;
  }

  std::vector<uint8_t> bytes_;
  std::vector<SkipEntry> skips_;
  size_t count_ = 0;
};

}  // namespace asup

#endif  // ASUP_INDEX_POSTINGS_H_
