#ifndef ASUP_INDEX_CORPUS_MANAGER_H_
#define ASUP_INDEX_CORPUS_MANAGER_H_

/// Dynamic corpus epochs.
///
/// The paper models the corpus Θ as static, but an enterprise engine's
/// collection churns: documents are added and deleted between queries. This
/// layer versions the corpus into immutable *epoch snapshots*: a
/// `CorpusManager` owns the current `CorpusSnapshot`, applies batched
/// add/remove deltas by building the next snapshot off to the side
/// (incrementally merging the previous epoch's posting lists instead of
/// re-tokenizing unchanged documents), and publishes it with a single
/// guarded shared_ptr swap. In-flight queries keep reading whatever epoch
/// they pinned — publication never blocks or mutates a reader.
///
/// Determinism contract (what the equivalence tests pin down): the merged
/// index of an epoch is *bitwise identical* — posting bytes, skip entries,
/// stats arithmetic — to an InvertedIndex built fresh from the epoch's
/// corpus. Suppression state migrated across epochs is therefore
/// indistinguishable from state built against a fresh engine, and state_io
/// snapshots stay byte-stable.
///
/// Epoch numbering: snapshots borrowed from a static index (the legacy
/// construction path, `CorpusSnapshot::Borrow`) are epoch 0 and never
/// change; a manager's initial snapshot is epoch 1 and every published
/// delta increments it.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "asup/index/inverted_index.h"
#include "asup/index/sharded_index.h"
#include "asup/text/corpus_delta.h"
#include "asup/util/annotated_mutex.h"
#include "asup/util/thread_pool.h"

namespace asup {

/// One immutable epoch: a corpus plus its index(es), either owned (built by
/// a CorpusManager) or borrowed from a caller-owned static index. All
/// accessors are const and safe to call from any thread for the lifetime of
/// the handle.
class CorpusSnapshot {
 public:
  /// Wraps a caller-owned static index as an epoch-0 snapshot (the legacy
  /// construction path of PlainSearchEngine). Borrowed; `index` must
  /// outlive every handle.
  static std::shared_ptr<const CorpusSnapshot> Borrow(
      const InvertedIndex& index);

  /// Same, for a sharded deployment.
  static std::shared_ptr<const CorpusSnapshot> Borrow(
      const ShardedInvertedIndex& sharded);

  CorpusSnapshot(const CorpusSnapshot&) = delete;
  CorpusSnapshot& operator=(const CorpusSnapshot&) = delete;

  /// 0 for borrowed static snapshots; >= 1 for manager-built epochs.
  uint64_t epoch() const { return epoch_; }

  /// The epoch's corpus.
  const Corpus& corpus() const {
    return index_ != nullptr ? index_->corpus() : sharded_->corpus();
  }

  /// Number of documents in this epoch.
  size_t NumDocuments() const {
    return index_ != nullptr ? index_->NumDocuments()
                             : sharded_->NumDocuments();
  }

  /// Dense local id of a document in this epoch; aborts if absent.
  uint32_t LocalOf(DocId id) const {
    return index_ != nullptr ? index_->LocalOf(id) : sharded_->LocalOf(id);
  }

  /// Universe DocId for this epoch's dense local id.
  DocId LocalToId(uint32_t local) const {
    return index_ != nullptr ? index_->LocalToId(local)
                             : sharded_->LocalToId(local);
  }

  /// True if the document exists in this epoch.
  bool Contains(DocId id) const { return corpus().Contains(id); }

  /// Single-index view. Manager-built snapshots always have one; borrowed
  /// sharded snapshots do not.
  bool has_index() const { return index_ != nullptr; }
  const InvertedIndex& index() const;

  /// Sharded view (present when the manager was configured with shards, or
  /// the snapshot borrows a sharded index).
  bool has_sharded() const { return sharded_ != nullptr; }
  const ShardedInvertedIndex& sharded() const;

  /// Order-independent content fingerprint of the corpus: hashes every
  /// (id, length, terms) in ascending-DocId order. Two snapshots with equal
  /// document sets fingerprint equally regardless of how they were reached
  /// (incrementally maintained vs. built fresh) — which is exactly what
  /// state_io snapshot headers need. Computed lazily on first use and
  /// cached (the benign double-compute race writes the same value).
  uint64_t Fingerprint() const;

 private:
  friend class CorpusManager;
  CorpusSnapshot() = default;

  uint64_t epoch_ = 0;
  /// Owned storage, populated only for manager-built snapshots. Order
  /// matters for destruction: indexes borrow the corpus, so the corpus
  /// member is declared first (destroyed last).
  std::unique_ptr<const Corpus> owned_corpus_;
  std::unique_ptr<const InvertedIndex> owned_index_;
  std::unique_ptr<const ShardedInvertedIndex> owned_sharded_;
  /// Views (into owned storage or a borrowed static index).
  const InvertedIndex* index_ = nullptr;
  const ShardedInvertedIndex* sharded_ = nullptr;
  /// 0 = not yet computed (Fingerprint never returns 0).
  mutable std::atomic<uint64_t> fingerprint_{0};
};

/// Shared, immutable handle to one epoch. Cheap to copy; holding one pins
/// the epoch's corpus and indexes alive regardless of later publishes.
using SnapshotHandle = std::shared_ptr<const CorpusSnapshot>;

/// Owns the chain of corpus epochs and builds successors from deltas.
///
/// `Apply` is serialized (one builder at a time); `Current` is a brief
/// mutex-guarded pointer copy (publishes are rare and hold the lock only
/// for the final pointer store, never during the index build). A query
/// pins the epoch it starts on via `Current()` and is never invalidated —
/// old epochs die when the last handle drops.
class CorpusManager {
 public:
  struct Options {
    /// >= 1: additionally maintain a ShardedInvertedIndex with this many
    /// shards on every snapshot (for ShardedSearchService deployments).
    /// The sharded view is rebuilt per epoch — range repartitioning moves
    /// documents across shards, so there is no incremental win to merge —
    /// while the single index is merged incrementally.
    size_t num_shards = 0;
    /// Runs ApplyAsync batches; borrowed, must outlive the manager.
    ThreadPool* pool = nullptr;
  };

  /// Builds epoch 1 from `initial` (which the manager takes over).
  /// (Two overloads rather than a defaulted Options argument: a nested
  /// class with member initializers cannot appear in its own enclosing
  /// class's default arguments.)
  explicit CorpusManager(Corpus initial);
  CorpusManager(Corpus initial, Options options);

  CorpusManager(const CorpusManager&) = delete;
  CorpusManager& operator=(const CorpusManager&) = delete;

  /// The latest published epoch. Safe from any thread.
  SnapshotHandle Current() const ASUP_EXCLUDES(current_mutex_) {
    MutexLock guard(current_mutex_);
    return current_;
  }

  /// Epoch number of Current().
  uint64_t CurrentEpoch() const { return Current()->epoch(); }

  /// Builds and publishes the next epoch from `delta` (validity rules in
  /// text/corpus_delta.h). Returns the published snapshot. An empty delta
  /// publishes nothing and returns the current snapshot. Serialized with
  /// other Apply calls; concurrent readers are never blocked.
  SnapshotHandle Apply(const CorpusDelta& delta)
      ASUP_EXCLUDES(apply_mutex_, current_mutex_);

  /// Queues `delta` onto the options pool (required) and invokes `done`
  /// (may be empty) with the published snapshot from the worker thread.
  void ApplyAsync(CorpusDelta delta,
                  std::function<void(SnapshotHandle)> done = {});

  size_t num_shards() const { return options_.num_shards; }

 private:
  /// Builds the successor snapshot of `base`.
  SnapshotHandle BuildNextLocked(const CorpusSnapshot& base,
                                 const CorpusDelta& delta) const
      ASUP_REQUIRES(apply_mutex_);

  /// Publishes `next` as the current snapshot. (The constructor publishes
  /// epoch 1 without apply_mutex_ — no other thread can hold a reference
  /// yet — which the analysis permits because constructors are outside its
  /// scope.)
  void Publish(SnapshotHandle next) ASUP_EXCLUDES(current_mutex_) {
    MutexLock guard(current_mutex_);
    current_ = std::move(next);
  }

  Options options_;
  /// Serializes epoch builds (one successor constructed at a time). Guards
  /// no fields — the build works on locals — but its declared order before
  /// current_mutex_ pins the publish protocol: a builder takes
  /// apply_mutex_, builds off to the side, then briefly takes
  /// current_mutex_ to publish.
  mutable Mutex apply_mutex_ ASUP_ACQUIRED_BEFORE(current_mutex_);
  /// Guards only the `current_` pointer itself, never the snapshot build.
  /// (A std::atomic<shared_ptr> would be wait-free, but libstdc++'s
  /// implementation synchronizes through an internal spin bit that
  /// ThreadSanitizer cannot see, producing false races on every
  /// publish/pin pair; a plain mutex is contention-free at realistic
  /// publish rates and fully TSan-visible.)
  mutable Mutex current_mutex_;
  /// Both the pointer and (conservatively) the pointee are tied to
  /// current_mutex_: readers copy the handle under the lock (Current()) and
  /// from then on use their own pin — a SnapshotHandle copy — whose
  /// pointee is immutable, so the PT annotation never constrains them.
  SnapshotHandle current_ ASUP_GUARDED_BY(current_mutex_)
      ASUP_PT_GUARDED_BY(current_mutex_);
};

}  // namespace asup

#endif  // ASUP_INDEX_CORPUS_MANAGER_H_
