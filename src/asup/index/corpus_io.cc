#include "asup/index/corpus_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <unordered_set>
#include <vector>

namespace asup {

namespace {

constexpr char kMagic[4] = {'A', 'S', 'U', 'P'};
constexpr uint32_t kVersion = 1;

void PutVar(uint32_t value, std::ostream& out) {
  while (value >= 0x80) {
    out.put(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

// Returns false on EOF/corruption.
bool GetVar(std::istream& in, uint32_t& value) {
  value = 0;
  int shift = 0;
  while (true) {
    const int byte = in.get();
    if (byte == EOF || shift > 28) return false;
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
}

void PutU32(uint32_t value, std::ostream& out) {
  for (int i = 0; i < 4; ++i) out.put(static_cast<char>(value >> (8 * i)));
}

bool GetU32(std::istream& in, uint32_t& value) {
  value = 0;
  for (int i = 0; i < 4; ++i) {
    const int byte = in.get();
    if (byte == EOF) return false;
    value |= static_cast<uint32_t>(byte) << (8 * i);
  }
  return true;
}

}  // namespace

bool SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  return SaveCorpus(corpus, out);
}

bool SaveCorpus(const Corpus& corpus, std::ostream& out) {
  out.write(kMagic, 4);
  PutU32(kVersion, out);

  const Vocabulary& vocab = corpus.vocabulary();
  PutVar(static_cast<uint32_t>(vocab.size()), out);
  for (TermId id = 0; id < vocab.size(); ++id) {
    const std::string& word = vocab.WordOf(id);
    PutVar(static_cast<uint32_t>(word.size()), out);
    out.write(word.data(), static_cast<std::streamsize>(word.size()));
  }

  PutVar(static_cast<uint32_t>(corpus.size()), out);
  for (const Document& doc : corpus.documents()) {
    PutVar(doc.id(), out);
    PutVar(doc.length(), out);
    PutVar(static_cast<uint32_t>(doc.terms().size()), out);
    TermId previous = 0;
    for (const TermFreq& entry : doc.terms()) {
      PutVar(entry.term - previous, out);  // terms are sorted ascending
      PutVar(entry.freq, out);
      previous = entry.term;
    }
  }
  out.flush();
  return static_cast<bool>(out);
}

std::optional<Corpus> LoadCorpus(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return LoadCorpus(in);
}

std::optional<Corpus> LoadCorpus(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) return std::nullopt;
  uint32_t version = 0;
  if (!GetU32(in, version) || version != kVersion) return std::nullopt;

  uint32_t vocab_size = 0;
  if (!GetVar(in, vocab_size)) return std::nullopt;
  auto vocab = std::make_shared<Vocabulary>();
  std::string word;
  for (uint32_t i = 0; i < vocab_size; ++i) {
    uint32_t length = 0;
    if (!GetVar(in, length) || length > (1u << 20)) return std::nullopt;
    word.resize(length);
    in.read(word.data(), length);
    if (!in) return std::nullopt;
    if (vocab->AddWord(word) != i) return std::nullopt;  // duplicate word
  }

  uint32_t doc_count = 0;
  if (!GetVar(in, doc_count)) return std::nullopt;
  std::vector<Document> docs;
  // Counts are untrusted until the payload behind them parses: cap the
  // up-front reservation so a crafted header cannot force a huge allocation.
  docs.reserve(std::min(doc_count, 4096u));
  std::unordered_set<DocId> seen_ids;
  for (uint32_t d = 0; d < doc_count; ++d) {
    uint32_t id = 0;
    uint32_t length = 0;
    uint32_t num_terms = 0;
    if (!GetVar(in, id) || !GetVar(in, length) || !GetVar(in, num_terms)) {
      return std::nullopt;
    }
    if (!seen_ids.insert(id).second) return std::nullopt;  // duplicate doc id
    std::vector<TermFreq> terms;
    terms.reserve(std::min(num_terms, 4096u));
    TermId previous = 0;
    for (uint32_t t = 0; t < num_terms; ++t) {
      uint32_t delta = 0;
      uint32_t freq = 0;
      if (!GetVar(in, delta) || !GetVar(in, freq) || freq == 0) {
        return std::nullopt;
      }
      const TermId term = previous + delta;
      if (term >= vocab_size) return std::nullopt;
      // Document requires strictly ascending term ids; a zero delta after
      // the first term (or a wrapped sum) would corrupt its binary search.
      if (t > 0 && term <= previous) return std::nullopt;
      terms.push_back({term, freq});
      previous = term;
    }
    docs.emplace_back(id, std::move(terms), length);
  }
  return Corpus(std::move(vocab), std::move(docs));
}

}  // namespace asup
