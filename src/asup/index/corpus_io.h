#ifndef ASUP_INDEX_CORPUS_IO_H_
#define ASUP_INDEX_CORPUS_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "asup/text/corpus.h"

namespace asup {

/// Binary persistence for a corpus (vocabulary + bag-of-words documents).
///
/// An enterprise deployment indexes its documents once and reopens them
/// across restarts; these helpers give experiments the same property, so a
/// large synthetic universe can be generated once and shared between
/// benchmark runs.
///
/// Format (little-endian, variable-byte integers):
///   magic "ASUP", u32 version,
///   vocab count, then per word: byte length + bytes,
///   doc count, then per document: id, token length, distinct-term count,
///   delta-encoded term ids interleaved with frequencies.

/// Writes `corpus` to `path`. Returns false on I/O failure.
bool SaveCorpus(const Corpus& corpus, const std::string& path);

/// Writes `corpus` to an already-open binary stream.
bool SaveCorpus(const Corpus& corpus, std::ostream& out);

/// Reads a corpus from `path`. Returns nullopt if the file is missing,
/// truncated, or not an ASUP corpus file. The loaded corpus owns a fresh
/// vocabulary (term ids are preserved).
std::optional<Corpus> LoadCorpus(const std::string& path);

/// Reads a corpus from an already-open binary stream (the fuzz harnesses
/// feed arbitrary bytes through this entry point).
std::optional<Corpus> LoadCorpus(std::istream& in);

}  // namespace asup

#endif  // ASUP_INDEX_CORPUS_IO_H_
