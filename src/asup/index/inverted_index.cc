#include "asup/index/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "asup/util/check.h"

namespace asup {

namespace {

std::vector<const Document*> AllDocuments(const Corpus& corpus) {
  std::vector<const Document*> docs;
  docs.reserve(corpus.size());
  for (const auto& doc : corpus.documents()) docs.push_back(&doc);
  return docs;
}

}  // namespace

InvertedIndex::InvertedIndex(const Corpus& corpus)
    : InvertedIndex(corpus, AllDocuments(corpus)) {}

InvertedIndex::InvertedIndex(const Corpus& corpus,
                             std::vector<const Document*> docs)
    : corpus_(&corpus), docs_by_local_(std::move(docs)) {
  std::sort(docs_by_local_.begin(), docs_by_local_.end(),
            [](const Document* a, const Document* b) {
              return a->id() < b->id();
            });

  postings_.resize(corpus.vocabulary().size());
  std::vector<PostingList::Builder> builders(postings_.size());
  uint64_t total_length = 0;
  for (uint32_t local = 0; local < docs_by_local_.size(); ++local) {
    const Document& doc = *docs_by_local_[local];
    total_length += doc.length();
    for (const TermFreq& entry : doc.terms()) {
      ASUP_DCHECK(entry.term < builders.size());
      builders[entry.term].Add(local, entry.freq);
    }
  }

  stats_.num_documents = docs_by_local_.size();
  // An empty (sub)corpus has average length 0 by definition — the 0/0 NaN
  // would otherwise leak through BM25 into CSV reports.
  stats_.average_doc_length =
      docs_by_local_.empty()
          ? 0.0
          : static_cast<double>(total_length) /
                static_cast<double>(docs_by_local_.size());
  ASUP_CHECK(std::isfinite(stats_.average_doc_length));
  ASUP_CHECK(stats_.average_doc_length >= 0.0);
  for (size_t term = 0; term < builders.size(); ++term) {
    const size_t df = builders[term].size();
    if (df == 0) continue;
    postings_[term] = std::move(builders[term]).Build();
    ++stats_.num_terms;
    stats_.num_postings += df;
    stats_.posting_bytes += postings_[term].ByteSize();
  }
}

uint32_t InvertedIndex::LocalOf(DocId id) const {
  auto it = std::lower_bound(docs_by_local_.begin(), docs_by_local_.end(), id,
                             [](const Document* doc, DocId value) {
                               return doc->id() < value;
                             });
  ASUP_CHECK(it != docs_by_local_.end() && (*it)->id() == id);
  return static_cast<uint32_t>(it - docs_by_local_.begin());
}

const PostingList& InvertedIndex::Postings(TermId term) const {
  if (term >= postings_.size()) return empty_list_;
  return postings_[term];
}

namespace {

// Deduplicates query terms but remembers, for each original position, which
// deduplicated list it reads from.
struct QueryPlan {
  std::vector<TermId> distinct;          // distinct terms, rarest first
  std::vector<size_t> position_to_slot;  // original position -> distinct slot
};

QueryPlan PlanQuery(std::span<const TermId> terms, const InvertedIndex& index) {
  QueryPlan plan;
  plan.position_to_slot.resize(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    size_t slot = plan.distinct.size();
    for (size_t j = 0; j < plan.distinct.size(); ++j) {
      if (plan.distinct[j] == terms[i]) {
        slot = j;
        break;
      }
    }
    if (slot == plan.distinct.size()) plan.distinct.push_back(terms[i]);
    plan.position_to_slot[i] = slot;
  }
  // Intersect rarest-first; remap slots accordingly.
  std::vector<size_t> order(plan.distinct.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return index.DocumentFrequency(plan.distinct[a]) <
           index.DocumentFrequency(plan.distinct[b]);
  });
  std::vector<TermId> reordered(plan.distinct.size());
  std::vector<size_t> inverse(order.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    reordered[rank] = plan.distinct[order[rank]];
    inverse[order[rank]] = rank;
  }
  plan.distinct = std::move(reordered);
  for (auto& slot : plan.position_to_slot) slot = inverse[slot];
  return plan;
}

}  // namespace

std::vector<MatchedDoc> InvertedIndex::ConjunctiveMatch(
    std::span<const TermId> terms) const {
  std::vector<MatchedDoc> result;
  if (terms.empty()) return result;
  const QueryPlan plan = PlanQuery(terms, *this);

  std::vector<PostingList::Iterator> iters;
  iters.reserve(plan.distinct.size());
  for (TermId term : plan.distinct) {
    const PostingList& list = Postings(term);
    if (list.empty()) return result;  // some term matches nothing
    iters.emplace_back(&list);
  }

  // Multi-way leapfrog intersection driven by the rarest list.
  std::vector<uint32_t> slot_freqs(plan.distinct.size());
  while (iters[0].Valid()) {
    const uint32_t candidate = iters[0].Get().local_doc;
    slot_freqs[0] = iters[0].Get().freq;
    bool all = true;
    for (size_t s = 1; s < iters.size(); ++s) {
      iters[s].SkipTo(candidate);
      if (!iters[s].Valid()) return result;  // exhausted: no more matches
      if (iters[s].Get().local_doc != candidate) {
        all = false;
        break;
      }
      slot_freqs[s] = iters[s].Get().freq;
    }
    if (all) {
      MatchedDoc match;
      match.local_doc = candidate;
      match.freqs.reserve(terms.size());
      for (size_t pos = 0; pos < terms.size(); ++pos) {
        match.freqs.push_back(slot_freqs[plan.position_to_slot[pos]]);
      }
      result.push_back(std::move(match));
    }
    iters[0].Next();
  }
  return result;
}

size_t InvertedIndex::MatchCount(std::span<const TermId> terms) const {
  if (terms.empty()) return 0;
  const QueryPlan plan = PlanQuery(terms, *this);
  if (plan.distinct.size() == 1) return Postings(plan.distinct[0]).size();

  std::vector<PostingList::Iterator> iters;
  iters.reserve(plan.distinct.size());
  for (TermId term : plan.distinct) {
    const PostingList& list = Postings(term);
    if (list.empty()) return 0;
    iters.emplace_back(&list);
  }
  size_t count = 0;
  while (iters[0].Valid()) {
    const uint32_t candidate = iters[0].Get().local_doc;
    bool all = true;
    for (size_t s = 1; s < iters.size(); ++s) {
      iters[s].SkipTo(candidate);
      if (!iters[s].Valid()) return count;
      if (iters[s].Get().local_doc != candidate) {
        all = false;
        break;
      }
    }
    if (all) ++count;
    iters[0].Next();
  }
  return count;
}

}  // namespace asup
