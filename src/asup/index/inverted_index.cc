#include "asup/index/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "asup/util/check.h"

namespace asup {

namespace {

std::vector<const Document*> AllDocuments(const Corpus& corpus) {
  std::vector<const Document*> docs;
  docs.reserve(corpus.size());
  for (const auto& doc : corpus.documents()) docs.push_back(&doc);
  return docs;
}

}  // namespace

InvertedIndex::InvertedIndex(const Corpus& corpus)
    : InvertedIndex(corpus, AllDocuments(corpus)) {}

InvertedIndex::InvertedIndex(const Corpus& corpus,
                             std::vector<const Document*> docs)
    : corpus_(&corpus), docs_by_local_(std::move(docs)) {
  std::sort(docs_by_local_.begin(), docs_by_local_.end(),
            [](const Document* a, const Document* b) {
              return a->id() < b->id();
            });

  postings_.resize(corpus.vocabulary().size());
  std::vector<PostingList::Builder> builders(postings_.size());
  uint64_t total_length = 0;
  for (uint32_t local = 0; local < docs_by_local_.size(); ++local) {
    const Document& doc = *docs_by_local_[local];
    total_length += doc.length();
    for (const TermFreq& entry : doc.terms()) {
      ASUP_DCHECK(entry.term < builders.size());
      builders[entry.term].Add(local, entry.freq);
    }
  }

  stats_.num_documents = docs_by_local_.size();
  // An empty (sub)corpus has average length 0 by definition — the 0/0 NaN
  // would otherwise leak through BM25 into CSV reports.
  stats_.average_doc_length =
      docs_by_local_.empty()
          ? 0.0
          : static_cast<double>(total_length) /
                static_cast<double>(docs_by_local_.size());
  ASUP_CHECK(std::isfinite(stats_.average_doc_length));
  ASUP_CHECK(stats_.average_doc_length >= 0.0);
  for (size_t term = 0; term < builders.size(); ++term) {
    const size_t df = builders[term].size();
    if (df == 0) continue;
    postings_[term] = std::move(builders[term]).Build();
    ++stats_.num_terms;
    stats_.num_postings += df;
    stats_.posting_bytes += postings_[term].ByteSize();
  }
}

uint32_t InvertedIndex::LocalOf(DocId id) const {
  auto it = std::lower_bound(docs_by_local_.begin(), docs_by_local_.end(), id,
                             [](const Document* doc, DocId value) {
                               return doc->id() < value;
                             });
  ASUP_CHECK(it != docs_by_local_.end() && (*it)->id() == id);
  return static_cast<uint32_t>(it - docs_by_local_.begin());
}

const PostingList& InvertedIndex::Postings(TermId term) const {
  if (term >= postings_.size()) return empty_list_;
  return postings_[term];
}

}  // namespace asup
