#include "asup/index/postings.h"

#include <algorithm>

#include "asup/util/check.h"

namespace asup {

void PostingList::Builder::Add(uint32_t local_doc, uint32_t freq) {
  ASUP_DCHECK(freq >= 1);
  ASUP_DCHECK(count_ == 0 || local_doc > last_doc_);
  pending_.push_back({local_doc, freq});
  last_doc_ = local_doc;
  ++count_;
  if (pending_.size() == kPostingBlock) Flush();
}

void PostingList::Builder::Flush() {
  if (pending_.empty()) return;
  // Skip-table offsets are 32-bit; a single term's payload approaching
  // 4 GiB would mean a corpus far beyond this codebase's design envelope.
  ASUP_CHECK_LE(bytes_.size(), size_t{UINT32_MAX});
  skips_.push_back({pending_.front().local_doc, pending_.back().local_doc,
                    static_cast<uint32_t>(bytes_.size())});
  blockcodec::EncodeBlock(pending_, bytes_);
  pending_.clear();
}

PostingList PostingList::Builder::Build() && {
  Flush();
  PostingList list;
  list.bytes_ = std::move(bytes_);
  list.bytes_.shrink_to_fit();
  list.skips_ = std::move(skips_);
  list.skips_.shrink_to_fit();
  list.count_ = count_;
  return list;
}

PostingList::Iterator::Iterator(const PostingList* list)
    : list_(list), count_(list->count_) {
  if (Valid()) LoadBlock(0);
}

void PostingList::Iterator::LoadBlock(size_t block) {
  block_ = block;
  pos_ = 0;
  // DecodeBlock is bounds-checked in every build type, so a corrupt skip
  // offset or payload aborts instead of reading out of bounds.
  size_t offset = list_->skips_[block].offset;
  blockcodec::DecodeBlock(list_->bytes_, offset, list_->BlockSize(block),
                          buffer_);
}

void PostingList::Iterator::SkipTo(uint32_t target) {
  // Forward-only contract (see header): a target at or behind the current
  // posting leaves the iterator exactly where it is.
  if (!Valid() || buffer_.docs[pos_] >= target) return;
  ASUP_CONTRACTS_ONLY(const size_t index_before = index_;)
  const auto& skips = list_->skips_;
  if (skips[block_].last_doc < target) {
    // First later block that can contain a doc >= target.
    const auto it = std::lower_bound(
        skips.begin() + static_cast<ptrdiff_t>(block_) + 1, skips.end(),
        target, [](const SkipEntry& entry, uint32_t value) {
          return entry.last_doc < value;
        });
    if (it == skips.end()) {
      index_ = list_->count_;  // exhausted: every doc id is < target
      return;
    }
    LoadBlock(static_cast<size_t>(it - skips.begin()));
    index_ = block_ * kPostingBlock;
  }
  // The block's last doc is >= target, so the in-buffer search must land.
  const uint32_t* begin = buffer_.docs + pos_;
  const uint32_t* end = buffer_.docs + buffer_.count;
  const uint32_t* found = std::lower_bound(begin, end, target);
  ASUP_DCHECK(found != end);
  const size_t stepped = static_cast<size_t>(found - begin);
  pos_ += stepped;
  index_ += stepped;
  ASUP_CONTRACTS_ONLY(
      ASUP_DCHECK(index_ >= index_before);
      ASUP_DCHECK(!Valid() || buffer_.docs[pos_] >= target);)
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  blockcodec::DecodedBlock buffer;
  for (size_t block = 0; block < skips_.size(); ++block) {
    size_t offset = skips_[block].offset;
    blockcodec::DecodeBlock(bytes_, offset, BlockSize(block), buffer);
    for (size_t i = 0; i < buffer.count; ++i) {
      out.push_back({buffer.docs[i], buffer.freqs[i]});
    }
  }
  return out;
}

}  // namespace asup
