#include "asup/index/postings.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "asup/util/check.h"

namespace asup {

namespace {

/// Largest shift a 5-byte varbyte payload may reach: bits [28, 32) come
/// from the fifth byte, which therefore may carry at most 4 payload bits.
constexpr int kMaxVarByteShift = 28;

[[noreturn]] void VarByteFailure(const char* reason, size_t offset) {
  std::fprintf(stderr,
               "asup: posting varbyte decode failed at offset %zu: %s\n",
               offset, reason);
  std::abort();
}

}  // namespace

void AppendVarByte(uint32_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

bool TryReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset,
                    uint32_t& value) {
  uint32_t decoded = 0;
  int shift = 0;
  size_t at = offset;
  while (true) {
    if (at >= bytes.size()) return false;  // truncated mid-varint
    const uint8_t byte = bytes[at];
    if (shift == kMaxVarByteShift &&
        (byte & 0x80 || (byte & 0x7f) > 0x0f)) {
      // Overlong: a sixth byte, or fifth-byte bits that do not fit in 32.
      // Rejecting (instead of shifting by >= 32, which is UB) also keeps
      // the encoding canonical — AppendVarByte never emits these.
      return false;
    }
    decoded |= static_cast<uint32_t>(byte & 0x7f) << shift;
    ++at;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  value = decoded;
  offset = at;
  return true;
}

uint32_t ReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset) {
  uint32_t value = 0;
  if (!TryReadVarByte(bytes, offset, value)) {
    VarByteFailure(offset >= bytes.size() ? "truncated input"
                                          : "overlong encoding",
                   offset);
  }
  return value;
}

void PostingList::Builder::Add(uint32_t local_doc, uint32_t freq) {
  ASUP_DCHECK(freq >= 1);
  ASUP_DCHECK(count_ == 0 || local_doc > last_doc_);
  if (count_ % kPostingBlock == 0) {
    // Block boundary: record a skip entry (except for the very first
    // block, which the iterator starts in anyway) and encode the absolute
    // doc id so decoding can begin here.
    if (count_ > 0) {
      skips_.push_back({local_doc, static_cast<uint32_t>(bytes_.size()),
                        static_cast<uint32_t>(count_)});
    }
    AppendVarByte(local_doc, bytes_);
  } else {
    AppendVarByte(local_doc - last_doc_, bytes_);
  }
  AppendVarByte(freq, bytes_);
  last_doc_ = local_doc;
  ++count_;
}

PostingList PostingList::Builder::Build() && {
  PostingList list;
  list.bytes_ = std::move(bytes_);
  list.bytes_.shrink_to_fit();
  list.skips_ = std::move(skips_);
  list.skips_.shrink_to_fit();
  list.count_ = count_;
  return list;
}

PostingList::Iterator::Iterator(const PostingList* list) : list_(list) {
  if (Valid()) ReadCurrent();
}

void PostingList::Iterator::ReadCurrent() {
  // ReadVarByte is bounds-checked in every build type, so a count_ that
  // overstates the payload (or a corrupt skip offset) aborts instead of
  // reading out of bounds.
  const uint32_t value = ReadVarByte(list_->bytes_, offset_);
  current_.local_doc =
      index_ % kPostingBlock == 0 ? value : current_.local_doc + value;
  current_.freq = ReadVarByte(list_->bytes_, offset_);
}

void PostingList::Iterator::Next() {
  ASUP_DCHECK(Valid());
  ++index_;
  if (!Valid()) return;
  ReadCurrent();
}

void PostingList::Iterator::SkipTo(uint32_t target) {
  if (!Valid() || current_.local_doc >= target) return;
  // Jump to the last block whose first doc is <= target, if it is ahead.
  const auto& skips = list_->skips_;
  auto it = std::upper_bound(
      skips.begin(), skips.end(), target,
      [](uint32_t value, const Builder::SkipEntry& entry) {
        return value < entry.doc;
      });
  if (it != skips.begin()) {
    const auto& entry = *(it - 1);
    if (entry.index > index_) {
      // Skip entries are builder-produced; their offsets point at block
      // starts inside bytes_, and ReadCurrent re-validates every byte.
      index_ = entry.index;
      offset_ = entry.offset;
      ReadCurrent();
    }
  }
  while (Valid() && current_.local_doc < target) Next();
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(count_);
  for (Iterator it(this); it.Valid(); it.Next()) out.push_back(it.Get());
  return out;
}

}  // namespace asup
