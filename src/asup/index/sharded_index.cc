#include "asup/index/sharded_index.h"

#include <algorithm>
#include <cmath>

#include "asup/util/check.h"

namespace asup {

ShardedInvertedIndex::ShardedInvertedIndex(const Corpus& corpus,
                                           size_t num_shards)
    : corpus_(&corpus) {
  // Clamp to [1, corpus size]: every shard non-empty (an empty corpus
  // degenerates to one empty shard).
  const size_t n = corpus.size();
  const size_t shards = std::max<size_t>(
      1, std::min(num_shards, std::max<size_t>(n, 1)));

  // Ascending-DocId order is the single-index local-id order; contiguous
  // ranges of it keep the global local-id space identical.
  std::vector<const Document*> docs;
  docs.reserve(n);
  for (const auto& doc : corpus.documents()) docs.push_back(&doc);
  std::sort(docs.begin(), docs.end(),
            [](const Document* a, const Document* b) {
              return a->id() < b->id();
            });

  shards_.reserve(shards);
  bases_.reserve(shards + 1);
  shard_first_id_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * n / shards;
    const size_t end = (s + 1) * n / shards;
    bases_.push_back(static_cast<uint32_t>(begin));
    shard_first_id_.push_back(begin < end ? docs[begin]->id() : kInvalidDoc);
    shards_.push_back(std::make_unique<InvertedIndex>(
        corpus, std::vector<const Document*>(docs.begin() + begin,
                                             docs.begin() + end)));
  }
  bases_.push_back(static_cast<uint32_t>(n));

  // Shard-count / partition invariants: contiguous, disjoint, covering,
  // in ascending id order.
  ASUP_CHECK(shards_.size() >= 1);
  ASUP_CHECK_EQ(bases_.size(), shards_.size() + 1);
  ASUP_CONTRACTS_ONLY(for (size_t s = 0; s < shards_.size(); ++s) {
    ASUP_CHECK_EQ(bases_[s] + shards_[s]->NumDocuments(), bases_[s + 1]);
    ASUP_CHECK(s == 0 || shard_first_id_[s - 1] < shard_first_id_[s] ||
               shards_[s]->NumDocuments() == 0);
  })

  // Global statistics, computed with the same arithmetic as a single
  // InvertedIndex over the whole corpus (scoring consumes num_documents
  // and average_doc_length; both must be bitwise identical).
  uint64_t total_length = 0;
  for (const Document* doc : docs) total_length += doc->length();
  stats_.num_documents = n;
  stats_.average_doc_length =
      n == 0 ? 0.0
             : static_cast<double>(total_length) / static_cast<double>(n);
  ASUP_CHECK(std::isfinite(stats_.average_doc_length));
  uint64_t num_terms = 0;
  for (TermId term = 0; term < corpus.vocabulary().size(); ++term) {
    const size_t df = DocumentFrequency(term);
    if (df > 0) ++num_terms;
    stats_.num_postings += df;
  }
  stats_.num_terms = num_terms;
  for (const auto& shard : shards_) {
    stats_.posting_bytes += shard->stats().posting_bytes;
  }
}

size_t ShardedInvertedIndex::DocumentFrequency(TermId term) const {
  // Shards partition the corpus, so per-shard frequencies sum to exactly
  // the single-index document frequency.
  size_t df = 0;
  for (const auto& shard : shards_) df += shard->DocumentFrequency(term);
  return df;
}

size_t ShardedInvertedIndex::ShardOfLocal(uint32_t local) const {
  ASUP_DCHECK(local < NumDocuments());
  const auto it =
      std::upper_bound(bases_.begin(), bases_.end() - 1, local);
  return static_cast<size_t>(it - bases_.begin()) - 1;
}

DocId ShardedInvertedIndex::LocalToId(uint32_t local) const {
  const size_t s = ShardOfLocal(local);
  return shards_[s]->LocalToId(local - bases_[s]);
}

uint32_t ShardedInvertedIndex::LocalOf(DocId id) const {
  size_t s = 0;
  const auto it = std::upper_bound(shard_first_id_.begin(),
                                   shard_first_id_.end(), id);
  if (it != shard_first_id_.begin()) {
    s = static_cast<size_t>(it - shard_first_id_.begin()) - 1;
  }
  // An id below the first shard's range routes to shard 0, whose LocalOf
  // rejects it like a single index would.
  return bases_[s] + shards_[s]->LocalOf(id);
}

}  // namespace asup
