#ifndef ASUP_INDEX_BLOCK_CODEC_H_
#define ASUP_INDEX_BLOCK_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// The posting-block codec: the only translation unit that touches raw
/// posting payload bytes (asup_lint enforces this — rule
/// `asup-posting-varbyte`). Everything above it moves whole blocks.
///
/// Block layout (one block = up to kMaxBlockPostings postings):
///
///   doc stream   value[0] = absolute first local doc id,
///                value[i>0] = delta to the previous doc id (>= 1)
///   freq stream  one frequency per posting (>= 1)
///
/// Each stream encodes its values in *groups of four* with a group-varint
/// scheme (one tag byte, two bits per value giving its little-endian byte
/// length 1..4, then the payload bytes), falling back to scalar LEB128
/// variable-byte for the up-to-three tail values. Group-varint trades a
/// few bits of density for branch-free-ish 4-at-a-time decode — the qint
/// idea from block-based inverted indexes.
///
/// Both encoders are canonical (minimal byte lengths only), and both
/// Try-decoders reject non-canonical input, so decode-then-re-encode of a
/// valid block is the byte-identical fixed point the fuzz harness checks.

namespace asup {

/// One posting: a document (as a dense per-index local id, which preserves
/// document-id order) and the term's in-document frequency.
struct Posting {
  uint32_t local_doc;
  uint32_t freq;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.local_doc == b.local_doc && a.freq == b.freq;
  }
};

/// Appends `value` to `out` in LEB128-style variable-byte encoding.
void AppendVarByte(uint32_t value, std::vector<uint8_t>& out);

/// Decodes one variable-byte integer starting at `offset`. Returns false —
/// without ever reading past `bytes.size()` — when the input is truncated
/// (a continuation byte at the end of `bytes`) or overlong (a fifth payload
/// byte carrying bits beyond 32, or any sixth byte), which AppendVarByte
/// never produces. On success stores the value, advances `offset` past the
/// encoding, and returns true; on failure `offset` is left at the
/// offending byte.
bool TryReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset,
                    uint32_t& value);

/// Decodes one variable-byte integer starting at `offset`, advancing it.
/// Aborts (in every build type, including plain Release) on truncated or
/// overlong input: posting bytes are produced in-process by
/// PostingList::Builder, so a malformed byte stream is memory corruption,
/// not a recoverable condition. Use TryReadVarByte for untrusted bytes.
uint32_t ReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset);

namespace blockcodec {

/// Maximum postings per encoded block (PostingList::kPostingBlock aliases
/// this).
constexpr size_t kMaxBlockPostings = 128;

/// One decoded block: absolute local doc ids (strictly ascending) and the
/// paired frequencies. Plain arrays so iterators can hold a buffer with no
/// allocation and copy it trivially.
struct DecodedBlock {
  uint32_t docs[kMaxBlockPostings];
  uint32_t freqs[kMaxBlockPostings];
  size_t count = 0;
};

/// Encodes `postings` (1..kMaxBlockPostings entries, strictly ascending
/// local doc ids, every freq >= 1) as one block appended to `out`.
void EncodeBlock(std::span<const Posting> postings, std::vector<uint8_t>& out);

/// Bounds-checked decode of one `count`-posting block starting at
/// `offset`. Returns false — never reading past `bytes.size()` — on any
/// malformed input: count outside [1, kMaxBlockPostings], truncated
/// streams, non-canonical (overlong) value encodings, a zero doc delta, a
/// doc id overflowing uint32, or a zero frequency. On success fills
/// `block`, advances `offset` past the block, and returns true; on failure
/// `offset` is left where decoding stopped and `block` is unspecified.
bool TryDecodeBlock(const std::vector<uint8_t>& bytes, size_t& offset,
                    size_t count, DecodedBlock& block);

/// Trusted decode of one `count`-posting block, advancing `offset`. Aborts
/// (in every build type) on malformed input — builder-produced blocks are
/// the only trusted source, so corruption is not recoverable. Use
/// TryDecodeBlock for untrusted bytes.
void DecodeBlock(const std::vector<uint8_t>& bytes, size_t& offset,
                 size_t count, DecodedBlock& block);

}  // namespace blockcodec
}  // namespace asup

#endif  // ASUP_INDEX_BLOCK_CODEC_H_
