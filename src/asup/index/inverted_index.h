#ifndef ASUP_INDEX_INVERTED_INDEX_H_
#define ASUP_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "asup/index/postings.h"
#include "asup/text/corpus.h"

namespace asup {

/// A document matched by a conjunctive query, with per-query-term
/// frequencies (inputs to the scoring function).
struct MatchedDoc {
  /// Dense per-index id; ascending local id == ascending universe DocId.
  uint32_t local_doc;
  /// Frequency of each query term in this document, in query-term order.
  std::vector<uint32_t> freqs;
};

/// Summary statistics of an index.
struct IndexStats {
  size_t num_documents = 0;
  size_t num_terms = 0;          // terms with non-empty posting lists
  uint64_t num_postings = 0;     // total (term, doc) pairs
  uint64_t posting_bytes = 0;    // compressed size of all posting lists
  double average_doc_length = 0.0;
};

/// Immutable inverted index over a corpus: the storage layer of the
/// enterprise search engine substrate.
///
/// Documents get dense *local ids* assigned in ascending universe-DocId
/// order, so iteration and intersection results are deterministic and
/// id-ordered regardless of corpus insertion order. The index borrows the
/// corpus, which must outlive it.
class InvertedIndex {
 public:
  /// Builds the index over the whole corpus; O(total tokens).
  explicit InvertedIndex(const Corpus& corpus);

  /// Builds the index over a subset of `corpus` (each document borrowed
  /// from it) — the per-shard constructor used by ShardedInvertedIndex.
  /// Local ids follow ascending document id within the subset, and stats()
  /// describes the subset only.
  InvertedIndex(const Corpus& corpus, std::vector<const Document*> docs);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Number of indexed documents.
  size_t NumDocuments() const { return docs_by_local_.size(); }

  /// The indexed corpus.
  const Corpus& corpus() const { return *corpus_; }

  /// Document for a local id. Requires local < NumDocuments().
  const Document& DocAt(uint32_t local) const {
    return *docs_by_local_[local];
  }

  /// Universe DocId for a local id.
  DocId LocalToId(uint32_t local) const { return docs_by_local_[local]->id(); }

  /// Local id for a universe DocId; aborts if the document is not indexed.
  uint32_t LocalOf(DocId id) const;

  /// Posting list of `term`; empty list if the term does not occur.
  const PostingList& Postings(TermId term) const;

  /// Document frequency of `term` in this corpus.
  size_t DocumentFrequency(TermId term) const {
    return Postings(term).size();
  }

  // Matching is not the index's job: queries compile to iterator trees
  // over Postings() and execute in the engine layer (engine/doc_iterator.h
  // — ExecuteMatch / ExecuteCount / ExecuteLocals).

  /// Corpus-wide statistics.
  const IndexStats& stats() const { return stats_; }

 private:
  /// Uninitialized shell for CorpusManager's incremental epoch merge, which
  /// fills the members directly from the previous epoch's posting lists
  /// (see index/corpus_manager.cc) instead of re-scanning document tokens.
  InvertedIndex() = default;
  friend class CorpusManager;

  const Corpus* corpus_ = nullptr;
  std::vector<const Document*> docs_by_local_;
  std::vector<PostingList> postings_;  // indexed by TermId
  PostingList empty_list_;
  IndexStats stats_;
};

}  // namespace asup

#endif  // ASUP_INDEX_INVERTED_INDEX_H_
