#ifndef ASUP_INDEX_SHARDED_INDEX_H_
#define ASUP_INDEX_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "asup/index/inverted_index.h"
#include "asup/text/corpus.h"

namespace asup {

/// A corpus partitioned into N per-shard InvertedIndex instances by
/// ascending-DocId range — the storage layer of the scatter-gather query
/// engine (see DESIGN.md §12, "Sharded execution").
///
/// Partitioning rule: documents are sorted by ascending universe DocId and
/// split into contiguous ranges of near-equal size (shard s holds
/// [s·n/N, (s+1)·n/N)). Because ranges are contiguous and in id order, the
/// concatenation of shard-local id spaces *is* the single-index local id
/// space: global local id = ShardBase(s) + shard-local id. Θ_R bitmaps,
/// state snapshots, and every other dense-id consumer are therefore
/// byte-identical between a sharded and a single-index deployment.
///
/// Corpus-wide statistics (document count, average length, per-term
/// document frequency) are computed over the *whole* corpus with the same
/// arithmetic as a single InvertedIndex, so scoring against them is
/// bitwise identical too. Per-shard stats() remain available on each
/// shard for capacity planning; stats().posting_bytes of this index is the
/// sum of the shards' compressed sizes (sharding changes deltas and block
/// boundaries, so it differs slightly from a single index's).
class ShardedInvertedIndex {
 public:
  /// Builds `num_shards` (>= 1, clamped to the document count when the
  /// corpus is larger than empty) per-shard indexes over `corpus`
  /// (borrowed; must outlive the index).
  ShardedInvertedIndex(const Corpus& corpus, size_t num_shards);

  ShardedInvertedIndex(const ShardedInvertedIndex&) = delete;
  ShardedInvertedIndex& operator=(const ShardedInvertedIndex&) = delete;

  size_t NumShards() const { return shards_.size(); }

  /// Shard `s`'s index. Requires s < NumShards().
  const InvertedIndex& Shard(size_t s) const { return *shards_[s]; }

  /// Global local id of shard `s`'s first document (prefix document
  /// count). ShardBase(NumShards()) is the total document count.
  uint32_t ShardBase(size_t s) const { return bases_[s]; }

  /// Number of indexed documents across all shards.
  size_t NumDocuments() const { return bases_.back(); }

  /// The indexed corpus.
  const Corpus& corpus() const { return *corpus_; }

  /// Corpus-wide statistics, identical to a single InvertedIndex over the
  /// same corpus (except posting_bytes; see class comment).
  const IndexStats& stats() const { return stats_; }

  /// Document frequency of `term` across the whole corpus (the sum of the
  /// per-shard frequencies, which partition the postings).
  size_t DocumentFrequency(TermId term) const;

  /// Shard holding global local id `local`. Requires local < NumDocuments().
  size_t ShardOfLocal(uint32_t local) const;

  /// Universe DocId for a global local id.
  DocId LocalToId(uint32_t local) const;

  /// Global local id for a universe DocId; aborts if not indexed.
  uint32_t LocalOf(DocId id) const;

 private:
  const Corpus* corpus_;
  std::vector<std::unique_ptr<InvertedIndex>> shards_;
  /// bases_[s] = number of documents in shards < s, plus one sentinel
  /// entry at the end holding the total.
  std::vector<uint32_t> bases_;
  /// First universe DocId of each shard, ascending (the shard count is
  /// clamped to the document count, so shards are only empty when the
  /// corpus is); routes LocalOf by binary search.
  std::vector<DocId> shard_first_id_;
  IndexStats stats_;
};

}  // namespace asup

#endif  // ASUP_INDEX_SHARDED_INDEX_H_
