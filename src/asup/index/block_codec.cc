#include "asup/index/block_codec.h"

#include <array>
#include <cstdio>
#include <cstdlib>

#include "asup/util/check.h"

namespace asup {

namespace {

/// Largest shift a 5-byte varbyte payload may reach: bits [28, 32) come
/// from the fifth byte, which therefore may carry at most 4 payload bits.
constexpr int kMaxVarByteShift = 28;

[[noreturn]] void CodecFailure(const char* what, const char* reason,
                               size_t offset) {
  std::fprintf(stderr, "asup: posting %s decode failed at offset %zu: %s\n",
               what, offset, reason);
  std::abort();
}

}  // namespace

void AppendVarByte(uint32_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

bool TryReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset,
                    uint32_t& value) {
  uint32_t decoded = 0;
  int shift = 0;
  size_t at = offset;
  while (true) {
    if (at >= bytes.size()) return false;  // truncated mid-varint
    const uint8_t byte = bytes[at];
    if (shift == kMaxVarByteShift &&
        (byte & 0x80 || (byte & 0x7f) > 0x0f)) {
      // Overlong: a sixth byte, or fifth-byte bits that do not fit in 32.
      // Rejecting (instead of shifting by >= 32, which is UB) also keeps
      // the encoding canonical — AppendVarByte never emits these.
      return false;
    }
    decoded |= static_cast<uint32_t>(byte & 0x7f) << shift;
    ++at;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  value = decoded;
  offset = at;
  return true;
}

uint32_t ReadVarByte(const std::vector<uint8_t>& bytes, size_t& offset) {
  uint32_t value = 0;
  if (!TryReadVarByte(bytes, offset, value)) {
    CodecFailure("varbyte",
                 offset >= bytes.size() ? "truncated input"
                                        : "overlong encoding",
                 offset);
  }
  return value;
}

namespace blockcodec {

namespace {

/// Minimal little-endian byte length of `value` (1..4).
size_t GroupByteLen(uint32_t value) {
  if (value < (1u << 8)) return 1;
  if (value < (1u << 16)) return 2;
  if (value < (1u << 24)) return 3;
  return 4;
}

/// One tag byte (two bits per value: byte length - 1), then the four
/// values little-endian in their minimal lengths.
void EncodeGroup(const uint32_t values[4], std::vector<uint8_t>& out) {
  uint8_t tag = 0;
  for (int i = 0; i < 4; ++i) {
    tag |= static_cast<uint8_t>(GroupByteLen(values[i]) - 1) << (2 * i);
  }
  out.push_back(tag);
  for (int i = 0; i < 4; ++i) {
    uint32_t v = values[i];
    const size_t len = GroupByteLen(values[i]);
    for (size_t b = 0; b < len; ++b) {
      out.push_back(static_cast<uint8_t>(v));
      v >>= 8;
    }
  }
}

/// Low 1..4 bytes of a 4-byte little-endian gather, and the least value
/// that needs that many bytes (the canonical-minimality floor; index 0 is
/// 0 so one-byte values always pass with the same single compare).
constexpr uint32_t kGroupMask[4] = {0xffu, 0xffffu, 0xffffffu, 0xffffffffu};
constexpr uint32_t kGroupMin[4] = {0u, 1u << 8, 1u << 16, 1u << 24};

/// Per-tag payload geometry, precomputed for all 256 tags so the four
/// value offsets come from one table row instead of a serial p += len
/// chain — the four payload loads become independent.
struct GroupLayout {
  uint8_t off[4];  // payload byte offset of each value
  uint8_t total;   // total payload bytes (4..16)
};

constexpr std::array<GroupLayout, 256> MakeGroupLayouts() {
  std::array<GroupLayout, 256> table{};
  for (int tag = 0; tag < 256; ++tag) {
    uint8_t off = 0;
    for (int i = 0; i < 4; ++i) {
      table[static_cast<size_t>(tag)].off[i] = off;
      off = static_cast<uint8_t>(off + ((tag >> (2 * i)) & 0x3) + 1);
    }
    table[static_cast<size_t>(tag)].total = off;
  }
  return table;
}

constexpr std::array<GroupLayout, 256> kGroupLayouts = MakeGroupLayouts();

/// Inverse of EncodeGroup; rejects truncation and non-minimal lengths.
/// Raw-pointer interface: the stream loop hoists the vector's data/size
/// once so the per-group work stays in registers.
bool TryDecodeGroup(const uint8_t* data, size_t size, size_t& offset,
                    uint32_t values[4]) {
  if (offset >= size) return false;  // missing tag byte
  const uint8_t tag = data[offset];
  const size_t at = offset + 1;
  const uint8_t* p = data + at;
  if (tag == 0) {
    // All four values one byte — by far the hottest tag on delta streams
    // (any run of nearby doc ids, almost every freq), and trivially
    // canonical, so it skips the layout and floor tables entirely.
    if (size - at < 4) return false;  // truncated payload
    values[0] = p[0];
    values[1] = p[1];
    values[2] = p[2];
    values[3] = p[3];
    offset = at + 4;
    return true;
  }
  const GroupLayout& layout = kGroupLayouts[tag];
  const size_t total = layout.total;
  if (size - offset - 1 < total) return false;  // truncated payload
  if (size - at >= total + 3) {
    // Hot path: three bytes of slack past the payload let every value be
    // one unaligned 4-byte little-endian load (the compiler folds the
    // byte gather) masked down to its declared length.
    for (int i = 0; i < 4; ++i) {
      const size_t len = ((tag >> (2 * i)) & 0x3) + 1;
      const uint8_t* q = p + layout.off[i];
      const uint32_t wide = static_cast<uint32_t>(q[0]) |
                            static_cast<uint32_t>(q[1]) << 8 |
                            static_cast<uint32_t>(q[2]) << 16 |
                            static_cast<uint32_t>(q[3]) << 24;
      const uint32_t v = wide & kGroupMask[len - 1];
      if (v < kGroupMin[len - 1]) return false;  // non-minimal length
      values[i] = v;
    }
  } else {
    // Within four bytes of the end of the stream: per-byte assembly.
    for (int i = 0; i < 4; ++i) {
      const size_t len = ((tag >> (2 * i)) & 0x3) + 1;
      const uint8_t* q = p + layout.off[i];
      uint32_t v = 0;
      for (size_t b = 0; b < len; ++b) {
        v |= static_cast<uint32_t>(q[b]) << (8 * b);
      }
      if (v < kGroupMin[len - 1]) return false;  // non-minimal length
      values[i] = v;
    }
  }
  offset = at + total;
  return true;
}

/// Encodes `count` values: groups of four, then a scalar-varbyte tail.
void EncodeStream(const uint32_t* values, size_t count,
                  std::vector<uint8_t>& out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) EncodeGroup(values + i, out);
  for (; i < count; ++i) AppendVarByte(values[i], out);
}

/// Minimal varbyte length of `value` (1..5), as AppendVarByte writes it.
size_t VarByteLen(uint32_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

bool TryDecodeStream(const std::vector<uint8_t>& bytes, size_t& offset,
                     size_t count, uint32_t* values) {
  const uint8_t* data = bytes.data();
  const size_t size = bytes.size();
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    if (!TryDecodeGroup(data, size, offset, values + i)) return false;
  }
  for (; i < count; ++i) {
    const size_t at = offset;
    if (!TryReadVarByte(bytes, offset, values[i])) return false;
    // Canonical tail: the value must occupy its minimal varbyte length
    // (groups enforce the same via the tag check), so every accepted block
    // re-encodes byte-identically — the fuzz harness's fixed-point oracle.
    if (offset - at != VarByteLen(values[i])) return false;
  }
  return true;
}

}  // namespace

void EncodeBlock(std::span<const Posting> postings,
                 std::vector<uint8_t>& out) {
  ASUP_CHECK(!postings.empty());
  ASUP_CHECK_LE(postings.size(), kMaxBlockPostings);
  uint32_t values[kMaxBlockPostings];
  values[0] = postings[0].local_doc;
  for (size_t i = 1; i < postings.size(); ++i) {
    ASUP_DCHECK_LT(postings[i - 1].local_doc, postings[i].local_doc);
    values[i] = postings[i].local_doc - postings[i - 1].local_doc;
  }
  EncodeStream(values, postings.size(), out);
  for (size_t i = 0; i < postings.size(); ++i) {
    ASUP_DCHECK(postings[i].freq >= 1);
    values[i] = postings[i].freq;
  }
  EncodeStream(values, postings.size(), out);
}

bool TryDecodeBlock(const std::vector<uint8_t>& bytes, size_t& offset,
                    size_t count, DecodedBlock& block) {
  if (count == 0 || count > kMaxBlockPostings) return false;
  if (!TryDecodeStream(bytes, offset, count, block.docs)) return false;
  // Deltas (after the absolute first id) must be >= 1 — ids strictly
  // ascend — and the running sum must fit uint32.
  uint64_t doc = block.docs[0];
  for (size_t i = 1; i < count; ++i) {
    if (block.docs[i] == 0) return false;
    doc += block.docs[i];
    if (doc > UINT32_MAX) return false;
    block.docs[i] = static_cast<uint32_t>(doc);
  }
  if (!TryDecodeStream(bytes, offset, count, block.freqs)) return false;
  for (size_t i = 0; i < count; ++i) {
    if (block.freqs[i] == 0) return false;
  }
  block.count = count;
  return true;
}

void DecodeBlock(const std::vector<uint8_t>& bytes, size_t& offset,
                 size_t count, DecodedBlock& block) {
  if (!TryDecodeBlock(bytes, offset, count, block)) {
    CodecFailure("block", "truncated or malformed block", offset);
  }
}

}  // namespace blockcodec
}  // namespace asup
