#ifndef ASUP_TEXT_CORPUS_H_
#define ASUP_TEXT_CORPUS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asup/text/document.h"
#include "asup/text/vocabulary.h"
#include "asup/util/random.h"

namespace asup {

/// A search engine's document collection (the paper's Θ).
///
/// A corpus owns its documents and shares a vocabulary with sibling corpora.
/// Nested corpora — the paper's S ⊂ 1.33S ⊂ 1.67S ⊂ 2S construction, where
/// the smaller corpus is a simple random sample (without replacement) of the
/// larger — are produced with `SampleSubcorpus`, and documents keep their
/// universe-wide ids across samples.
class Corpus {
 public:
  Corpus() = default;

  /// Builds a corpus from pre-constructed documents.
  Corpus(std::shared_ptr<Vocabulary> vocabulary,
         std::vector<Document> documents);

  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  /// Number of documents (the paper's sensitive COUNT(*)).
  size_t size() const { return documents_.size(); }

  bool empty() const { return documents_.empty(); }

  /// All documents, in insertion order.
  const std::vector<Document>& documents() const { return documents_; }

  /// The shared vocabulary.
  const Vocabulary& vocabulary() const { return *vocabulary_; }
  std::shared_ptr<Vocabulary> vocabulary_ptr() const { return vocabulary_; }

  /// Returns the document with the given universe id; aborts if absent.
  const Document& Get(DocId id) const;

  /// True if a document with this id is in the corpus.
  bool Contains(DocId id) const { return by_id_.count(id) != 0; }

  /// Sum of document lengths (sensitive SUM(doc_length)).
  uint64_t TotalLength() const;

  /// Number of documents satisfying `predicate` (COUNT with a selection
  /// condition).
  uint64_t CountWhere(
      const std::function<bool(const Document&)>& predicate) const;

  /// Sum of document lengths over documents satisfying `predicate` (the
  /// paper's Figure 14 aggregate: SUM(length) WHERE contains "sports").
  uint64_t SumLengthWhere(
      const std::function<bool(const Document&)>& predicate) const;

  /// Returns a uniform random sample (without replacement) of `count`
  /// documents as a new corpus sharing this vocabulary. Requires
  /// count <= size(). Document ids are preserved.
  Corpus SampleSubcorpus(size_t count, Rng& rng) const;

 private:
  std::shared_ptr<Vocabulary> vocabulary_;
  std::vector<Document> documents_;
  std::unordered_map<DocId, uint32_t> by_id_;
};

}  // namespace asup

#endif  // ASUP_TEXT_CORPUS_H_
