#include "asup/text/corpus_delta.h"

#include <algorithm>

#include "asup/util/check.h"

namespace asup {

Corpus ApplyDelta(const Corpus& base, const CorpusDelta& delta) {
  // Removed ids: sorted for the membership test below; must be unique and
  // present in the base.
  std::vector<DocId> removed = delta.remove;
  std::sort(removed.begin(), removed.end());
  ASUP_CHECK(std::adjacent_find(removed.begin(), removed.end()) ==
             removed.end());
  for (DocId id : removed) ASUP_CHECK(base.Contains(id));

  const auto is_removed = [&removed](DocId id) {
    return std::binary_search(removed.begin(), removed.end(), id);
  };

  // Added documents: unique ids, absent from the base, not simultaneously
  // removed.
  ASUP_CONTRACTS_ONLY({
    std::vector<DocId> added_ids;
    added_ids.reserve(delta.add.size());
    for (const Document& doc : delta.add) added_ids.push_back(doc.id());
    std::sort(added_ids.begin(), added_ids.end());
    ASUP_CHECK(std::adjacent_find(added_ids.begin(), added_ids.end()) ==
               added_ids.end());
  })
  for (const Document& doc : delta.add) {
    ASUP_CHECK(!base.Contains(doc.id()));
    ASUP_CHECK(!is_removed(doc.id()));
  }

  std::vector<Document> documents;
  documents.reserve(base.size() - removed.size() + delta.add.size());
  for (const Document& doc : base.documents()) {
    if (!is_removed(doc.id())) documents.push_back(doc);
  }
  for (const Document& doc : delta.add) documents.push_back(doc);
  return Corpus(base.vocabulary_ptr(), std::move(documents));
}

}  // namespace asup
