#include "asup/text/corpus.h"

#include "asup/util/check.h"

namespace asup {

Corpus::Corpus(std::shared_ptr<Vocabulary> vocabulary,
               std::vector<Document> documents)
    : vocabulary_(std::move(vocabulary)), documents_(std::move(documents)) {
  by_id_.reserve(documents_.size() * 2);
  for (uint32_t pos = 0; pos < documents_.size(); ++pos) {
    const bool duplicate_document_id =
        !by_id_.emplace(documents_[pos].id(), pos).second;
    ASUP_CHECK(!duplicate_document_id);
  }
}

const Document& Corpus::Get(DocId id) const {
  auto it = by_id_.find(id);
  const bool unknown_document_id = it == by_id_.end();
  ASUP_CHECK(!unknown_document_id);
  return documents_[it->second];
}

uint64_t Corpus::TotalLength() const {
  uint64_t total = 0;
  for (const auto& doc : documents_) total += doc.length();
  return total;
}

uint64_t Corpus::CountWhere(
    const std::function<bool(const Document&)>& predicate) const {
  uint64_t count = 0;
  for (const auto& doc : documents_) {
    if (predicate(doc)) ++count;
  }
  return count;
}

uint64_t Corpus::SumLengthWhere(
    const std::function<bool(const Document&)>& predicate) const {
  uint64_t total = 0;
  for (const auto& doc : documents_) {
    if (predicate(doc)) total += doc.length();
  }
  return total;
}

Corpus Corpus::SampleSubcorpus(size_t count, Rng& rng) const {
  ASUP_CHECK_LE(count, documents_.size());
  std::vector<uint64_t> picks =
      rng.SampleWithoutReplacement(documents_.size(), count);
  std::vector<Document> sampled;
  sampled.reserve(count);
  for (uint64_t position : picks) {
    sampled.push_back(documents_[position]);
  }
  return Corpus(vocabulary_, std::move(sampled));
}

}  // namespace asup
