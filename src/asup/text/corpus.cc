#include "asup/text/corpus.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace asup {

Corpus::Corpus(std::shared_ptr<Vocabulary> vocabulary,
               std::vector<Document> documents)
    : vocabulary_(std::move(vocabulary)), documents_(std::move(documents)) {
  by_id_.reserve(documents_.size() * 2);
  for (uint32_t pos = 0; pos < documents_.size(); ++pos) {
    const bool inserted =
        by_id_.emplace(documents_[pos].id(), pos).second;
    if (!inserted) {
      std::fprintf(stderr, "Corpus: duplicate document id %u\n",
                   documents_[pos].id());
      std::abort();
    }
  }
}

const Document& Corpus::Get(DocId id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    std::fprintf(stderr, "Corpus: unknown document id %u\n", id);
    std::abort();
  }
  return documents_[it->second];
}

uint64_t Corpus::TotalLength() const {
  uint64_t total = 0;
  for (const auto& doc : documents_) total += doc.length();
  return total;
}

uint64_t Corpus::CountWhere(
    const std::function<bool(const Document&)>& predicate) const {
  uint64_t count = 0;
  for (const auto& doc : documents_) {
    if (predicate(doc)) ++count;
  }
  return count;
}

uint64_t Corpus::SumLengthWhere(
    const std::function<bool(const Document&)>& predicate) const {
  uint64_t total = 0;
  for (const auto& doc : documents_) {
    if (predicate(doc)) total += doc.length();
  }
  return total;
}

Corpus Corpus::SampleSubcorpus(size_t count, Rng& rng) const {
  assert(count <= documents_.size());
  std::vector<uint64_t> picks =
      rng.SampleWithoutReplacement(documents_.size(), count);
  std::vector<Document> sampled;
  sampled.reserve(count);
  for (uint64_t position : picks) {
    sampled.push_back(documents_[position]);
  }
  return Corpus(vocabulary_, std::move(sampled));
}

}  // namespace asup
