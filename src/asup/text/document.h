#ifndef ASUP_TEXT_DOCUMENT_H_
#define ASUP_TEXT_DOCUMENT_H_

#include <cstdint>
#include <vector>

#include "asup/text/vocabulary.h"

namespace asup {

/// Integer identifier of a document. Ids are assigned once, in the document
/// *universe* from which nested corpora are sampled, so the same document
/// keeps the same id in S and in 2S (the paper's corpora are nested samples
/// of each other).
using DocId = uint32_t;

inline constexpr DocId kInvalidDoc = UINT32_MAX;

/// One (term, frequency) pair of a document's bag-of-words representation.
struct TermFreq {
  TermId term;
  uint32_t freq;

  friend bool operator==(const TermFreq& a, const TermFreq& b) {
    return a.term == b.term && a.freq == b.freq;
  }
};

/// A searchable document in bag-of-words form.
///
/// `terms` is sorted by term id and contains each distinct term once with
/// its in-document frequency; `length` is the token count (used for BM25
/// normalization and for the paper's SUM(doc_length) aggregate).
class Document {
 public:
  Document() = default;

  /// Builds a document from a raw token sequence.
  Document(DocId id, const std::vector<TermId>& tokens);

  /// Builds a document directly from a sorted distinct-term list.
  Document(DocId id, std::vector<TermFreq> terms, uint32_t length);

  DocId id() const { return id_; }

  /// Token count (document length).
  uint32_t length() const { return length_; }

  /// Distinct terms with frequencies, sorted by term id.
  const std::vector<TermFreq>& terms() const { return terms_; }

  /// Number of distinct terms.
  size_t NumDistinctTerms() const { return terms_.size(); }

  /// Returns the in-document frequency of `term` (0 if absent).
  /// Binary search over the sorted term list.
  uint32_t FrequencyOf(TermId term) const;

  /// Returns true if the document contains `term`.
  bool Contains(TermId term) const { return FrequencyOf(term) > 0; }

 private:
  DocId id_ = kInvalidDoc;
  uint32_t length_ = 0;
  std::vector<TermFreq> terms_;
};

}  // namespace asup

#endif  // ASUP_TEXT_DOCUMENT_H_
