#ifndef ASUP_TEXT_CORPUS_DELTA_H_
#define ASUP_TEXT_CORPUS_DELTA_H_

#include <vector>

#include "asup/text/corpus.h"
#include "asup/text/document.h"

namespace asup {

/// A batched corpus mutation: documents to ingest and documents to delete,
/// applied atomically as one epoch transition (see index/corpus_manager.h).
///
/// Validity rules, checked by ApplyDelta:
///  * added ids are unique within the batch and absent from the base corpus,
///  * removed ids are unique within the batch and present in the base,
///  * no id is both added and removed in the same batch (split such churn
///    across two deltas; each epoch then has a well-defined document set).
struct CorpusDelta {
  std::vector<Document> add;
  std::vector<DocId> remove;

  bool empty() const { return add.empty() && remove.empty(); }
};

/// Returns `base` with `delta` applied, sharing the base's vocabulary.
/// Surviving documents keep their ids (and therefore their relative dense
/// local-id order); added documents slot into the id order wherever their
/// ids fall. Aborts (ASUP_CHECK) on an invalid delta.
Corpus ApplyDelta(const Corpus& base, const CorpusDelta& delta);

}  // namespace asup

#endif  // ASUP_TEXT_CORPUS_DELTA_H_
