#ifndef ASUP_TEXT_TOKENIZER_H_
#define ASUP_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "asup/text/document.h"
#include "asup/text/vocabulary.h"

namespace asup {

/// Splits text into lowercase alphanumeric word tokens. Keyword-search
/// semantics follow the paper's model: a document "matches" a query iff it
/// contains every query word.
std::vector<std::string> Tokenize(std::string_view text);

/// Tokenizes `text` and maps each token through `vocabulary`, adding unknown
/// words. Used by the example programs, which build small corpora from real
/// sentences.
std::vector<TermId> TokenizeToTerms(std::string_view text,
                                    Vocabulary& vocabulary);

/// Convenience: builds a Document from raw text.
Document MakeDocumentFromText(DocId id, std::string_view text,
                              Vocabulary& vocabulary);

}  // namespace asup

#endif  // ASUP_TEXT_TOKENIZER_H_
