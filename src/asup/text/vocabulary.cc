#include "asup/text/vocabulary.h"

#include "asup/util/check.h"

namespace asup {

TermId Vocabulary::AddWord(std::string_view word) {
  auto it = ids_.find(word);  // heterogeneous: no temporary string
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(words_.size());
  words_.emplace_back(word);
  ids_.emplace(words_.back(), id);
  return id;
}

std::optional<TermId> Vocabulary::Lookup(std::string_view word) const {
  auto it = ids_.find(word);  // heterogeneous: no temporary string
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Vocabulary::WordOf(TermId id) const {
  ASUP_CHECK_LT(id, words_.size());
  return words_[id];
}

std::shared_ptr<Vocabulary> Vocabulary::GenerateSynthetic(
    size_t size, Rng& rng, const std::vector<std::string>& reserved_words) {
  auto vocab = std::make_shared<Vocabulary>();
  for (const auto& word : reserved_words) vocab->AddWord(word);
  // Reserved words must fit in the requested size (duplicates collapse, so
  // the check is on the vocabulary after insertion, not the input list).
  ASUP_CHECK_LE(vocab->size(), size);
  WordSynthesizer synthesizer(rng);
  size_t attempts = 0;
  while (vocab->size() < size) {
    std::string word = synthesizer.NextWord();
    // Suffix a counter if the syllable space is getting exhausted; keeps
    // generation O(size) even for very large vocabularies.
    if (++attempts > 4 * size) word += std::to_string(attempts);
    vocab->AddWord(word);
  }
  return vocab;
}

std::string WordSynthesizer::NextWord() {
  static constexpr const char* kOnsets[] = {
      "b", "d", "f", "g", "h", "j", "k", "l", "m", "n",
      "p", "r", "s", "t", "v", "z", "br", "dr", "st", "tr"};
  static constexpr const char* kVowels[] = {"a", "e", "i", "o", "u",
                                            "ai", "ei", "ou"};
  static constexpr const char* kCodas[] = {"", "", "", "n", "r", "s", "k",
                                           "l", "m", "t"};
  const int syllables = static_cast<int>(rng_.UniformU64(2, 4));
  std::string word;
  word.reserve(12);
  for (int i = 0; i < syllables; ++i) {
    word += kOnsets[rng_.UniformBelow(std::size(kOnsets))];
    word += kVowels[rng_.UniformBelow(std::size(kVowels))];
    if (i + 1 == syllables) {
      word += kCodas[rng_.UniformBelow(std::size(kCodas))];
    }
  }
  return word;
}

}  // namespace asup
