#include "asup/text/structured.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "asup/text/tokenizer.h"

namespace asup {

namespace {

std::string ScopedWord(const std::string& attribute, const std::string& token) {
  return attribute + "=" + token;
}

}  // namespace

StructuredTable::StructuredTable(std::shared_ptr<Vocabulary> vocabulary,
                                 std::vector<std::string> attribute_names)
    : vocabulary_(std::move(vocabulary)),
      attribute_names_(std::move(attribute_names)) {}

DocId StructuredTable::AddTuple(const std::vector<std::string>& values) {
  if (values.size() != attribute_names_.size()) {
    std::fprintf(stderr,
                 "StructuredTable::AddTuple: %zu values for %zu attributes\n",
                 values.size(), attribute_names_.size());
    std::abort();
  }
  std::vector<TermId> tokens;
  for (size_t a = 0; a < values.size(); ++a) {
    for (const std::string& word : Tokenize(values[a])) {
      // The plain word (keyword search over the flattened tuple) ...
      tokens.push_back(vocabulary_->AddWord(word));
      // ... and the attribute-scoped term (selection conditions). The '='
      // cannot appear in tokenized words, so scoped terms never collide
      // with plain ones.
      tokens.push_back(
          vocabulary_->AddWord(ScopedWord(attribute_names_[a], word)));
    }
  }
  const DocId id = next_id_++;
  documents_.emplace_back(id, tokens);
  return id;
}

Corpus StructuredTable::ToCorpus() const {
  return Corpus(vocabulary_, documents_);
}

std::optional<TermId> StructuredTable::AttributeTerm(
    const std::string& attribute, const std::string& token) const {
  std::string lowered = token;
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return vocabulary_->Lookup(ScopedWord(attribute, lowered));
}

}  // namespace asup
