#include "asup/text/document.h"

#include <algorithm>

#include "asup/util/check.h"

namespace asup {

Document::Document(DocId id, const std::vector<TermId>& tokens) : id_(id) {
  length_ = static_cast<uint32_t>(tokens.size());
  std::vector<TermId> sorted = tokens;
  std::sort(sorted.begin(), sorted.end());
  terms_.reserve(sorted.size() / 2 + 1);
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    terms_.push_back({sorted[i], static_cast<uint32_t>(j - i)});
    i = j;
  }
}

Document::Document(DocId id, std::vector<TermFreq> terms, uint32_t length)
    : id_(id), length_(length), terms_(std::move(terms)) {
  // O(|terms|) scan, so explicitly debug-only.
  ASUP_DCHECK(std::is_sorted(terms_.begin(), terms_.end(),
                             [](const TermFreq& a, const TermFreq& b) {
                               return a.term < b.term;
                             }));
}

uint32_t Document::FrequencyOf(TermId term) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), term,
                             [](const TermFreq& entry, TermId value) {
                               return entry.term < value;
                             });
  if (it == terms_.end() || it->term != term) return 0;
  return it->freq;
}

}  // namespace asup
