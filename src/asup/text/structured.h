#ifndef ASUP_TEXT_STRUCTURED_H_
#define ASUP_TEXT_STRUCTURED_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asup/text/corpus.h"
#include "asup/text/vocabulary.h"

namespace asup {

/// Structured tuples behind a keyword-search interface.
///
/// The paper's footnote 1: "most real-world search engines simply consider
/// each tuple as a document consisting of all attribute values of the
/// tuple, and process the keyword-search query in (almost) the same way as
/// search over unstructured documents" — and Section 8 names structured
/// hidden databases as an extension target for the defenses. This class
/// implements that flattening: every tuple becomes a document whose tokens
/// are its attribute values' words, plus one scoped `<attr>=<token>` term
/// per word so aggregates can carry attribute-level selection conditions
/// (e.g., COUNT(*) WHERE brand = 'acme') and still flow through the same
/// engines, attacks, and defenses as free text.
class StructuredTable {
 public:
  /// `attribute_names` define the schema; tuples supply one value string
  /// per attribute.
  StructuredTable(std::shared_ptr<Vocabulary> vocabulary,
                  std::vector<std::string> attribute_names);

  /// Adds one tuple; `values` must have one entry per attribute. Returns
  /// the tuple's document id.
  DocId AddTuple(const std::vector<std::string>& values);

  /// Number of tuples.
  size_t size() const { return documents_.size(); }

  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }

  /// Flattens the table into a searchable corpus (shares the vocabulary).
  Corpus ToCorpus() const;

  /// The scoped term for `attribute` containing word `token` (lowercased),
  /// or nullopt if that combination never occurs. Use with
  /// AggregateQuery::CountContaining / SumLengthContaining for
  /// attribute-level selection conditions.
  std::optional<TermId> AttributeTerm(const std::string& attribute,
                                      const std::string& token) const;

 private:
  std::shared_ptr<Vocabulary> vocabulary_;
  std::vector<std::string> attribute_names_;
  std::vector<Document> documents_;
  DocId next_id_ = 0;
};

}  // namespace asup

#endif  // ASUP_TEXT_STRUCTURED_H_
