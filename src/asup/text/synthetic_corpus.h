#ifndef ASUP_TEXT_SYNTHETIC_CORPUS_H_
#define ASUP_TEXT_SYNTHETIC_CORPUS_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asup/text/corpus.h"
#include "asup/util/random.h"

namespace asup {

/// Parameters of the synthetic document generator.
///
/// The paper's experiments use a 150k-page ODP web crawl; we substitute a
/// Zipf + topic-mixture model (see DESIGN.md). What the attacks and defenses
/// actually consume is the query-document bipartite graph, so the generator
/// is tuned to reproduce the graph's relevant statistics:
///  * heavy-tailed document frequencies (overflowing head queries and
///    underflowing tail queries, as in web text),
///  * log-normal document lengths (for SUM aggregates and BM25),
///  * topical co-occurrence (required by the Section 5.1 correlated-query
///    attack, which needs words that return overlapping document sets).
struct SyntheticCorpusConfig {
  /// Distinct words in the shared vocabulary. Web-crawl text has a very
  /// large type vocabulary dominated by rare words; a large value keeps the
  /// adversary's pool dominated by low-df queries (as in the paper), which
  /// in turn keeps AS-SIMPLE's document-activation rate realistic.
  size_t vocabulary_size = 100000;

  /// Number of latent topics.
  size_t num_topics = 64;

  /// Words associated with each topic.
  size_t words_per_topic = 600;

  /// Zipf exponent of the background word distribution.
  double background_zipf_s = 1.05;

  /// Zipf exponent of each topic's word distribution.
  double topic_zipf_s = 0.9;

  /// Zipf exponent of topic popularity. Kept mild so that no single topic
  /// dominates the corpus (topical words must be rare corpus-wide but
  /// strongly co-occurring within their topic).
  double topic_popularity_s = 0.5;

  /// Probability that a token is drawn from a document topic rather than
  /// the background distribution.
  double topic_token_fraction = 0.45;

  /// Probability that a document mixes a second topic.
  double second_topic_fraction = 0.4;

  /// Log-normal document length parameters (of the underlying normal).
  double doc_length_log_mean = std::log(140.0);
  double doc_length_log_sigma = 0.7;

  /// Length clamp. The paper drops pages under 10 words.
  uint32_t min_doc_length = 10;
  uint32_t max_doc_length = 2000;

  /// Seed for the generator's private random stream.
  uint64_t seed = 42;
};

/// Generates documents from a fixed topic-mixture model.
///
/// All documents produced by one generator instance live in a common
/// "universe": ids are unique across calls, so a later `Generate` call
/// yields held-out documents (used to build the adversary's query pool the
/// same way the paper builds it from ODP pages not chosen into the corpus).
class SyntheticCorpusGenerator {
 public:
  explicit SyntheticCorpusGenerator(const SyntheticCorpusConfig& config);

  /// Generates the next `count` documents of the universe.
  Corpus Generate(size_t count);

  /// The vocabulary shared by everything this generator produces.
  std::shared_ptr<Vocabulary> vocabulary() const { return vocabulary_; }

  const SyntheticCorpusConfig& config() const { return config_; }

  /// Words seeded into the first topics ("sports", "poor quality" reviews,
  /// patents). Useful for building selection conditions and correlated
  /// query pools that mirror the paper's experiments.
  static const std::vector<std::vector<std::string>>& SeedTopicWords();

 private:
  Document GenerateDocument(DocId id);

  SyntheticCorpusConfig config_;
  Rng rng_;
  std::shared_ptr<Vocabulary> vocabulary_;
  /// Maps background Zipf rank -> term id, so that frequency rank is
  /// decoupled from vocabulary id (in particular, the reserved topic words
  /// at ids 0, 1, ... are not automatically the most frequent background
  /// words).
  std::vector<TermId> background_rank_to_term_;
  std::vector<std::vector<TermId>> topics_;
  ZipfDistribution background_dist_;
  ZipfDistribution topic_word_dist_;
  ZipfDistribution topic_pick_dist_;
  DocId next_id_ = 0;
};

}  // namespace asup

#endif  // ASUP_TEXT_SYNTHETIC_CORPUS_H_
