#include "asup/text/synthetic_corpus.h"

#include <algorithm>
#include <unordered_set>

#include "asup/util/check.h"

namespace asup {

namespace {

std::vector<std::string> FlattenSeedWords(
    const std::vector<std::vector<std::string>>& seed_topics) {
  std::vector<std::string> flat;
  std::unordered_set<std::string> seen;
  for (const auto& topic : seed_topics) {
    for (const auto& word : topic) {
      if (seen.insert(word).second) flat.push_back(word);
    }
  }
  return flat;
}

}  // namespace

const std::vector<std::vector<std::string>>&
SyntheticCorpusGenerator::SeedTopicWords() {
  // Topic 0 backs the paper's "sports" SUM aggregate (Figure 14) and the
  // correlated-query attack (Figures 18-19); topics 1 and 2 back the two
  // motivating examples of Section 1.
  static const auto* const kSeeds = new std::vector<std::vector<std::string>>{
      {"sports", "game", "team", "score", "league", "coach", "season",
       "player", "match", "win"},
      {"poor", "quality", "product", "review", "broken", "refund", "cheap",
       "defective", "return", "warranty"},
      {"patent", "examiner", "claim", "invention", "approval", "filing",
       "office", "trademark", "application", "grant"},
  };
  return *kSeeds;
}

SyntheticCorpusGenerator::SyntheticCorpusGenerator(
    const SyntheticCorpusConfig& config)
    : config_(config),
      rng_(config.seed),
      background_dist_(config.vocabulary_size, config.background_zipf_s),
      topic_word_dist_(config.words_per_topic, config.topic_zipf_s),
      topic_pick_dist_(std::max<size_t>(config.num_topics, 1),
                       config.topic_popularity_s) {
  ASUP_CHECK(config_.vocabulary_size > 0);
  ASUP_CHECK(config_.num_topics > 0);
  ASUP_CHECK(config_.words_per_topic > 0);
  ASUP_CHECK_LE(config_.words_per_topic, config_.vocabulary_size);

  vocabulary_ = Vocabulary::GenerateSynthetic(
      config_.vocabulary_size, rng_, FlattenSeedWords(SeedTopicWords()));

  background_rank_to_term_.resize(config_.vocabulary_size);
  for (size_t i = 0; i < config_.vocabulary_size; ++i) {
    background_rank_to_term_[i] = static_cast<TermId>(i);
  }
  rng_.Shuffle(background_rank_to_term_);

  // Assemble topic word lists. The first topics start with the seeded real
  // words (placed at the head of the list, i.e., the most frequent ranks of
  // the topic's Zipf distribution); all topics are then filled with random
  // distinct vocabulary words. Overlap between topics is allowed, as in
  // natural language.
  topics_.resize(config_.num_topics);
  const auto& seeds = SeedTopicWords();
  for (size_t t = 0; t < config_.num_topics; ++t) {
    auto& words = topics_[t];
    std::unordered_set<TermId> used;
    if (t < seeds.size()) {
      for (const auto& word : seeds[t]) {
        const TermId id = *vocabulary_->Lookup(word);
        if (used.insert(id).second) words.push_back(id);
      }
    }
    while (words.size() < config_.words_per_topic) {
      const TermId id =
          static_cast<TermId>(rng_.UniformBelow(config_.vocabulary_size));
      if (used.insert(id).second) words.push_back(id);
    }
  }
}

Corpus SyntheticCorpusGenerator::Generate(size_t count) {
  std::vector<Document> docs;
  docs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    docs.push_back(GenerateDocument(next_id_++));
  }
  return Corpus(vocabulary_, std::move(docs));
}

Document SyntheticCorpusGenerator::GenerateDocument(DocId id) {
  const double raw_length =
      rng_.LogNormal(config_.doc_length_log_mean, config_.doc_length_log_sigma);
  const uint32_t length = std::clamp(
      static_cast<uint32_t>(raw_length), config_.min_doc_length,
      config_.max_doc_length);

  // Pick the document's topics.
  size_t doc_topics[2];
  size_t num_doc_topics = 1;
  doc_topics[0] = topic_pick_dist_.Sample(rng_);
  if (rng_.Bernoulli(config_.second_topic_fraction)) {
    doc_topics[1] = topic_pick_dist_.Sample(rng_);
    if (doc_topics[1] != doc_topics[0]) num_doc_topics = 2;
  }

  std::vector<TermId> tokens;
  tokens.reserve(length);
  for (uint32_t i = 0; i < length; ++i) {
    if (rng_.Bernoulli(config_.topic_token_fraction)) {
      const auto& topic =
          topics_[doc_topics[rng_.UniformBelow(num_doc_topics)]];
      tokens.push_back(topic[topic_word_dist_.Sample(rng_)]);
    } else {
      tokens.push_back(background_rank_to_term_[background_dist_.Sample(rng_)]);
    }
  }
  return Document(id, tokens);
}

}  // namespace asup
