#include "asup/text/tokenizer.h"

#include <cctype>

namespace asup {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<TermId> TokenizeToTerms(std::string_view text,
                                    Vocabulary& vocabulary) {
  std::vector<TermId> terms;
  for (const auto& token : Tokenize(text)) {
    terms.push_back(vocabulary.AddWord(token));
  }
  return terms;
}

Document MakeDocumentFromText(DocId id, std::string_view text,
                              Vocabulary& vocabulary) {
  return Document(id, TokenizeToTerms(text, vocabulary));
}

}  // namespace asup
