#ifndef ASUP_TEXT_VOCABULARY_H_
#define ASUP_TEXT_VOCABULARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asup/util/random.h"

namespace asup {

/// Integer identifier of a word. Term ids are dense: 0 .. size()-1.
using TermId = uint32_t;

/// Sentinel for "no such term".
inline constexpr TermId kInvalidTerm = UINT32_MAX;

/// Hashes std::string map keys and std::string_view probes identically
/// ([basic.string.hash] guarantees the two specializations agree on equal
/// character sequences), enabling heterogeneous (C++20 `is_transparent`)
/// lookup: probing with a string_view allocates nothing.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Bidirectional word <-> TermId mapping shared by a corpus, its index, the
/// search engine, and the adversary's query pool.
///
/// The paper's corpora are English web pages; our synthetic substitute
/// generates pronounceable pseudo-words (plus injected real topic words such
/// as "sports" that the paper's SUM experiment and correlated-query attack
/// refer to), so examples and debug output stay readable.
///
/// The mapping is append-only: AddWord never reassigns or removes an id, so
/// corpora of different epochs (see index/corpus_manager.h) can share one
/// vocabulary — a term id means the same word in every epoch.
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Adds `word` if absent; returns its id either way.
  TermId AddWord(std::string_view word);

  /// Returns the id of `word`, or nullopt if unknown.
  std::optional<TermId> Lookup(std::string_view word) const;

  /// Returns the word for `id`. Requires id < size().
  const std::string& WordOf(TermId id) const;

  /// Number of distinct words.
  size_t size() const { return words_.size(); }

  /// Generates a vocabulary of exactly `size` distinct pronounceable
  /// pseudo-words. `reserved_words` are inserted first (ids 0, 1, ...) so
  /// callers can pin real words (e.g., "sports") to known ids.
  static std::shared_ptr<Vocabulary> GenerateSynthetic(
      size_t size, Rng& rng,
      const std::vector<std::string>& reserved_words = {});

 private:
  std::vector<std::string> words_;
  /// Transparent hash/equality: the hot tokenize path probes with the
  /// caller's string_view directly, no temporary std::string per call.
  std::unordered_map<std::string, TermId, TransparentStringHash,
                     std::equal_to<>>
      ids_;
};

/// Produces distinct pronounceable pseudo-words ("zorimak", "beltanu", ...).
class WordSynthesizer {
 public:
  explicit WordSynthesizer(Rng& rng) : rng_(rng) {}

  /// Returns a random word of 2-4 syllables. Distinctness is the caller's
  /// concern (Vocabulary::GenerateSynthetic retries on collision).
  std::string NextWord();

 private:
  Rng& rng_;
};

}  // namespace asup

#endif  // ASUP_TEXT_VOCABULARY_H_
