#ifndef ASUP_TEXT_VOCABULARY_H_
#define ASUP_TEXT_VOCABULARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asup/util/random.h"

namespace asup {

/// Integer identifier of a word. Term ids are dense: 0 .. size()-1.
using TermId = uint32_t;

/// Sentinel for "no such term".
inline constexpr TermId kInvalidTerm = UINT32_MAX;

/// Bidirectional word <-> TermId mapping shared by a corpus, its index, the
/// search engine, and the adversary's query pool.
///
/// The paper's corpora are English web pages; our synthetic substitute
/// generates pronounceable pseudo-words (plus injected real topic words such
/// as "sports" that the paper's SUM experiment and correlated-query attack
/// refer to), so examples and debug output stay readable.
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Adds `word` if absent; returns its id either way.
  TermId AddWord(std::string_view word);

  /// Returns the id of `word`, or nullopt if unknown.
  std::optional<TermId> Lookup(std::string_view word) const;

  /// Returns the word for `id`. Requires id < size().
  const std::string& WordOf(TermId id) const;

  /// Number of distinct words.
  size_t size() const { return words_.size(); }

  /// Generates a vocabulary of exactly `size` distinct pronounceable
  /// pseudo-words. `reserved_words` are inserted first (ids 0, 1, ...) so
  /// callers can pin real words (e.g., "sports") to known ids.
  static std::shared_ptr<Vocabulary> GenerateSynthetic(
      size_t size, Rng& rng,
      const std::vector<std::string>& reserved_words = {});

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, TermId> ids_;
};

/// Produces distinct pronounceable pseudo-words ("zorimak", "beltanu", ...).
class WordSynthesizer {
 public:
  explicit WordSynthesizer(Rng& rng) : rng_(rng) {}

  /// Returns a random word of 2-4 syllables. Distinctness is the caller's
  /// concern (Vocabulary::GenerateSynthetic retries on collision).
  std::string NextWord();

 private:
  Rng& rng_;
};

}  // namespace asup

#endif  // ASUP_TEXT_VOCABULARY_H_
