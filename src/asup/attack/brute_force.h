#ifndef ASUP_ATTACK_BRUTE_FORCE_H_
#define ASUP_ATTACK_BRUTE_FORCE_H_

#include <unordered_set>

#include "asup/attack/estimator.h"

namespace asup {

/// The brute-force crawl of Section 2.2: issue pool queries (in random
/// order) and tally the aggregate over every *distinct* document retrieved.
///
/// Included as the paper's strawman baseline: under the interface's top-k
/// and query-number limits it can only lower-bound the aggregate, because
/// the crawlable document count is capped at k per query and at
/// k·query_budget overall — orders of magnitude below a real corpus.
class BruteForceCrawler : public AggregateEstimator {
 public:
  struct Options {
    uint64_t seed = 17;
  };

  BruteForceCrawler(const QueryPool& pool, const AggregateQuery& aggregate,
                    DocFetcher fetcher, const Options& options);

  BruteForceCrawler(const QueryPool& pool, const AggregateQuery& aggregate,
                    DocFetcher fetcher)
      : BruteForceCrawler(pool, aggregate, std::move(fetcher), Options()) {}

  std::vector<EstimationPoint> Run(SearchService& service,
                                   uint64_t query_budget,
                                   uint64_t report_every) override;

  const char* name() const override { return "BRUTE-FORCE"; }

  /// Distinct documents retrieved in the last Run.
  size_t NumCrawledDocs() const { return crawled_.size(); }

 private:
  const QueryPool* pool_;
  AggregateQuery aggregate_;
  DocFetcher fetcher_;
  Options options_;
  std::unordered_set<DocId> crawled_;
};

}  // namespace asup

#endif  // ASUP_ATTACK_BRUTE_FORCE_H_
