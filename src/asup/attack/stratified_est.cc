#include "asup/attack/stratified_est.h"

#include <algorithm>
#include <cmath>

#include "asup/obs/metrics.h"

namespace asup {

StratifiedEstimator::StratifiedEstimator(const QueryPool& pool,
                                         const AggregateQuery& aggregate,
                                         DocFetcher fetcher,
                                         const Options& options)
    : pool_(&pool),
      aggregate_(aggregate),
      fetcher_(std::move(fetcher)),
      options_(options) {
  // Geometric df buckets: stratum j holds queries with sample-df in
  // [2^j, 2^{j+1}), the last bucket open-ended. Empty buckets are dropped.
  std::vector<std::vector<uint32_t>> buckets(options_.num_strata);
  for (uint32_t i = 0; i < pool.size(); ++i) {
    const double df = std::max<double>(pool.SampleDf(i), 1.0);
    size_t bucket = static_cast<size_t>(std::log2(df));
    bucket = std::min(bucket, options_.num_strata - 1);
    buckets[bucket].push_back(i);
  }
  for (auto& bucket : buckets) {
    if (!bucket.empty()) strata_.push_back(std::move(bucket));
  }
}

double StratifiedEstimator::CurrentEstimate(
    const std::vector<StreamingStats>& per_stratum) const {
  double estimate = 0.0;
  for (size_t s = 0; s < strata_.size(); ++s) {
    if (per_stratum[s].count() == 0) continue;
    estimate +=
        static_cast<double>(strata_[s].size()) * per_stratum[s].Mean();
  }
  return estimate;
}

std::vector<EstimationPoint> StratifiedEstimator::Run(SearchService& service,
                                                      uint64_t query_budget,
                                                      uint64_t report_every) {
  Rng rng(options_.seed);
  std::vector<StreamingStats> per_stratum(strata_.size());
  std::vector<EstimationPoint> points;
  if (strata_.empty()) {
    points.push_back({0, 0.0});
    return points;
  }
  uint64_t issued = 0;
  uint64_t next_report = report_every;

  auto sample_stratum = [&](size_t s) {
    const uint32_t pick = strata_[s][rng.UniformBelow(strata_[s].size())];
    const double contribution = attack_internal::EstimateQueryContribution(
        service, *pool_, aggregate_, fetcher_, rng, pick, query_budget,
        options_.max_trial_factor, issued);
    per_stratum[s].Add(contribution);
    while (issued >= next_report) {
      points.push_back({next_report, CurrentEstimate(per_stratum)});
      next_report += report_every;
    }
  };

  // Pilot phase: a few queries from every stratum to seed the variance
  // estimates.
  for (size_t round = 0;
       round < options_.pilot_queries_per_stratum && issued < query_budget;
       ++round) {
    for (size_t s = 0; s < strata_.size() && issued < query_budget; ++s) {
      sample_stratum(s);
    }
  }

  // Main phase: Neyman allocation. Greedily sample the stratum whose
  // (|Ω_s|·σ_s)/samples_s deficit is largest — equivalent to allocating the
  // remaining budget proportionally to |Ω_s|·σ_s while staying adaptive as
  // the variance estimates sharpen.
  while (issued < query_budget) {
    size_t best = 0;
    double best_score = -1.0;
    for (size_t s = 0; s < strata_.size(); ++s) {
      const double sigma = std::max(per_stratum[s].StdDev(), 1e-9);
      const double weight = static_cast<double>(strata_[s].size()) * sigma;
      const double score =
          weight / (static_cast<double>(per_stratum[s].count()) + 1.0);
      if (score > best_score) {
        best_score = score;
        best = s;
      }
    }
    sample_stratum(best);
  }

  points.push_back({issued, CurrentEstimate(per_stratum)});
  // Variance inputs of the Neyman allocation: the widest per-stratum spread
  // dominates the allocation error.
  double max_sigma = 0.0;
  for (const StreamingStats& stats : per_stratum) {
    max_sigma = std::max(max_sigma, stats.StdDev());
  }
  ASUP_METRIC_GAUGE_SET("asup_attack_stratified_strata", strata_.size());
  ASUP_METRIC_GAUGE_SET("asup_attack_stratified_max_stddev", max_sigma);
  ASUP_METRIC_GAUGE_SET("asup_attack_stratified_estimate",
                        CurrentEstimate(per_stratum));
  return points;
}

}  // namespace asup
