#ifndef ASUP_ATTACK_CORRELATION_ADV_H_
#define ASUP_ATTACK_CORRELATION_ADV_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>

#include "asup/engine/query.h"
#include "asup/engine/search_service.h"

namespace asup {

/// Options of the correlation adversary's decision rule.
struct CorrelationAdversaryOptions {
  /// Classify an answer as virtual only when at most this fraction of its
  /// documents is novel (never disclosed to this adversary before). The
  /// default 0.0 encodes AS-ARBI's defining property: a virtual answer is
  /// assembled entirely from the history cover, so every document in it
  /// was disclosed earlier.
  double max_novel_fraction = 0.0;

  /// Additionally require at least one query term to have appeared in an
  /// earlier query: virtual processing only triggers on history overlap,
  /// so a first-contact term cannot be served virtually.
  bool require_repeat_term = true;
};

/// Per-answer signals the adversary extracts before updating its history.
struct CorrelationFeatures {
  size_t answer_size = 0;
  /// Returned documents never disclosed in any earlier answer.
  size_t novel_docs = 0;
  /// novel_docs / answer_size; 0 for empty answers.
  double novel_fraction = 0.0;
  /// Query terms that occurred in at least one earlier observed query.
  size_t repeat_terms = 0;
  /// Times this exact query (by canonical hash) was observed before.
  uint64_t query_repeats = 0;
};

/// Confusion-matrix accumulator for a binary distinguishing game. The
/// headline number is the advantage over random guessing,
/// (TPR + TNR)/2 − 1/2 — the balanced-accuracy form that stays 0 for any
/// constant classifier regardless of class skew.
struct AdvantageReport {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t true_negatives = 0;
  uint64_t false_negatives = 0;

  void Record(bool predicted, bool actual) {
    if (actual) {
      ++(predicted ? true_positives : false_negatives);
    } else {
      ++(predicted ? false_positives : true_negatives);
    }
  }

  uint64_t total() const {
    return true_positives + false_positives + true_negatives + false_negatives;
  }

  /// TPR over actual positives; 0 when there are none.
  double TruePositiveRate() const;
  /// TNR over actual negatives; 0 when there are none.
  double TrueNegativeRate() const;
  /// (TPR + TNR)/2 − 1/2, or 0.0 when only one class was observed (the
  /// game is then vacuous and "no advantage" is the honest report).
  double Advantage() const;
};

/// Adversary in the spirit of Oya & Kerschbaum's search-pattern-leakage
/// attacks: it watches its own query stream and the answers it gets back,
/// and classifies each answer as virtually served (composed by AS-ARBI
/// from previously disclosed documents) or fresh. It uses only
/// adversary-visible information — returned DocIds, its own past queries —
/// never engine internals; ground truth for scoring comes from the harness
/// (AsArbiStats::virtual_answers deltas).
///
/// State is kept in ordered containers so replays are deterministic.
class CorrelationAdversary {
 public:
  explicit CorrelationAdversary(
      const CorrelationAdversaryOptions& options = {});

  /// Extracts features for (query, result) against the current history,
  /// classifies, then folds the observation into the history. Returns true
  /// when the answer is classified as virtual.
  bool ObserveAndClassify(const KeywordQuery& query,
                          const SearchResult& result);

  /// Features of the most recent observation.
  const CorrelationFeatures& last_features() const { return last_features_; }

  /// Distinct documents disclosed to this adversary so far.
  size_t disclosed_docs() const { return disclosed_.size(); }

  /// Observations folded into the history so far.
  uint64_t observations() const { return observations_; }

  void Reset();

 private:
  CorrelationAdversaryOptions options_;
  std::set<DocId> disclosed_;
  std::set<TermId> seen_terms_;
  std::map<uint64_t, uint64_t> query_counts_;  // canonical hash → occurrences
  CorrelationFeatures last_features_;
  uint64_t observations_ = 0;
};

}  // namespace asup

#endif  // ASUP_ATTACK_CORRELATION_ADV_H_
