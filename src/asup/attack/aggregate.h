#ifndef ASUP_ATTACK_AGGREGATE_H_
#define ASUP_ATTACK_AGGREGATE_H_

#include <string>
#include <vector>

#include "asup/text/corpus.h"
#include "asup/text/document.h"

namespace asup {

/// Aggregate function of a sensitive query
/// "SELECT AGGR(*) FROM corpus WHERE selection_condition" (Section 3.1).
enum class AggregateFunction {
  /// COUNT(*) — number of (selected) documents.
  kCount,
  /// SUM(doc_length) — total length of (selected) documents.
  kSumLength,
};

/// A sensitive aggregate to be estimated (by attacks) or suppressed (by the
/// defenses). The optional selection condition restricts the aggregate to
/// documents containing one or more required terms (conjunctive) — enough
/// to express the paper's experiments (COUNT(*), SUM(length WHERE contains
/// "sports")) and attribute-scoped conditions over flattened structured
/// tables ("city=springfield AND status=laid").
class AggregateQuery {
 public:
  /// COUNT(*) over the whole corpus.
  static AggregateQuery Count();

  /// COUNT(*) restricted to documents containing `term`.
  static AggregateQuery CountContaining(TermId term);

  /// COUNT(*) restricted to documents containing *all* of `terms`.
  static AggregateQuery CountContainingAll(std::vector<TermId> terms);

  /// SUM(doc_length) over the whole corpus.
  static AggregateQuery SumLength();

  /// SUM(doc_length) restricted to documents containing `term`
  /// (the paper's Figure 14 aggregate).
  static AggregateQuery SumLengthContaining(TermId term);

  /// SUM(doc_length) restricted to documents containing *all* of `terms`.
  static AggregateQuery SumLengthContainingAll(std::vector<TermId> terms);

  /// The document's contribution to the aggregate: 0 if it fails the
  /// selection condition, else 1 (COUNT) or its length (SUM).
  double MeasureOf(const Document& doc) const;

  /// Ground truth over a corpus (what the adversary tries to estimate).
  double TrueValue(const Corpus& corpus) const;

  AggregateFunction function() const { return function_; }

  /// The selection-condition terms (all must be contained); empty when
  /// unconditioned.
  const std::vector<TermId>& required_terms() const {
    return required_terms_;
  }

  /// Human-readable name for experiment output.
  std::string Name(const Vocabulary& vocabulary) const;

 private:
  AggregateFunction function_ = AggregateFunction::kCount;
  std::vector<TermId> required_terms_;
};

}  // namespace asup

#endif  // ASUP_ATTACK_AGGREGATE_H_
