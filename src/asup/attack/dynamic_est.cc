#include "asup/attack/dynamic_est.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "asup/obs/metrics.h"
#include "asup/util/check.h"

namespace asup {

DynamicEstimator::DynamicEstimator(const QueryPool& pool,
                                   const AggregateQuery& aggregate,
                                   DocFetcher fetcher,
                                   const DynamicEstimatorOptions& options)
    : pool_(&pool),
      aggregate_(aggregate),
      fetcher_(std::move(fetcher)),
      options_(options),
      rng_(options.seed) {
  ASUP_CHECK(options_.refresh_fraction >= 0.0 &&
             options_.refresh_fraction <= 1.0);
  Initialize();
}

void DynamicEstimator::Initialize() {
  rng_ = Rng(options_.seed);
  maintained_.clear();
  const size_t pool_size = pool_->size();
  const size_t keep = std::min(options_.maintained_pool_size, pool_size);
  if (keep == pool_size) {
    maintained_.reserve(pool_size);
    for (size_t i = 0; i < pool_size; ++i) maintained_.push_back(i);
  } else {
    const std::vector<uint64_t> picks =
        rng_.SampleWithoutReplacement(pool_size, keep);
    maintained_.reserve(keep);
    for (uint64_t p : picks) maintained_.push_back(static_cast<size_t>(p));
    // Canonicalize before shuffling so the visit order depends only on the
    // chosen set and the seed, not on sampler internals.
    std::sort(maintained_.begin(), maintained_.end());
  }
  // Seeded random visit order: pools are built in descending-df order, so a
  // budget that covers only a window of the rotation would otherwise see a
  // df-biased sample and inflate the normalized estimate. A permuted order
  // makes every contiguous window a uniform draw from the maintained set.
  rng_.Shuffle(maintained_);
  cache_.assign(maintained_.size(), CachedAnswer());
  refresh_cursor_ = 0;
  trajectory_.clear();
}

void DynamicEstimator::Reset() { Initialize(); }

DynamicEpochPoint DynamicEstimator::ObserveEpoch(SearchService& service,
                                                 uint64_t query_budget) {
  DynamicEpochPoint point;
  point.epoch = trajectory_.size() + 1;
  const size_t maintained = maintained_.size();
  if (maintained == 0) {
    trajectory_.push_back(point);
    return point;
  }

  // Rotating visit order: each epoch starts where the last refresh window
  // ended, so a budget too small to reissue the whole maintained pool still
  // sweeps every slot across successive epochs (the RS-ESTIMATOR resample
  // rotation). The first refresh_count visited slots are re-probed even if
  // their answer looks unchanged — the drift correction for return-degree
  // changes that are invisible in a slot's own answer.
  // ⌈fraction·maintained⌉: any nonzero fraction refreshes at least one
  // slot. (An additive 0.999999 fudge is not a ceiling — it overshoots at
  // exact integers once the product's representation error is upward, and
  // undershoots for products in (0, 1e-6).)
  const size_t refresh_count = static_cast<size_t>(std::ceil(
      options_.refresh_fraction * static_cast<double>(maintained)));

  uint64_t issued = 0;
  double contribution_sum = 0.0;
  size_t observed = 0;
  for (size_t j = 0; j < maintained; ++j) {
    const size_t slot = (refresh_cursor_ + j) % maintained;
    CachedAnswer& cached = cache_[slot];
    if (issued >= query_budget) {
      // Budget exhausted: a previously observed slot still contributes its
      // (stale) cache; a never-observed slot is left out of the mean
      // entirely — it carries no information yet.
      if (cached.valid) {
        contribution_sum += cached.contribution;
        ++observed;
      }
      continue;
    }
    const SearchResult result =
        service.Search(pool_->QueryAt(maintained_[slot]));
    ++issued;
    std::vector<DocId> ids = result.DocIds();
    std::sort(ids.begin(), ids.end());
    const bool changed = !cached.valid || ids != cached.doc_ids;
    if (changed) ++point.answers_changed;
    if (changed || j < refresh_count) {
      cached.contribution = attack_internal::EstimateResultContribution(
          service, *pool_, aggregate_, fetcher_, rng_, result, query_budget,
          options_.max_trial_factor, issued);
      cached.doc_ids = std::move(ids);
      cached.valid = true;
    }
    contribution_sum += cached.contribution;
    ++observed;
  }
  refresh_cursor_ = (refresh_cursor_ + refresh_count) % maintained;

  point.estimate = observed == 0 ? 0.0
                                 : static_cast<double>(pool_->size()) *
                                       contribution_sum /
                                       static_cast<double>(observed);
  point.delta_estimate =
      trajectory_.empty() ? 0.0 : point.estimate - trajectory_.back().estimate;
  point.queries_spent = issued;
  trajectory_.push_back(point);

  ASUP_METRIC_GAUGE_SET("asup_attack_dynamic_epoch", point.epoch);
  ASUP_METRIC_GAUGE_SET("asup_attack_dynamic_estimate", point.estimate);
  ASUP_METRIC_GAUGE_SET("asup_attack_dynamic_answers_changed",
                        point.answers_changed);
  ASUP_METRIC_COUNT("asup_attack_dynamic_queries_total", point.queries_spent);
  return point;
}

}  // namespace asup
