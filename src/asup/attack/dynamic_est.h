#ifndef ASUP_ATTACK_DYNAMIC_EST_H_
#define ASUP_ATTACK_DYNAMIC_EST_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "asup/attack/aggregate.h"
#include "asup/attack/estimator.h"
#include "asup/attack/query_pool.h"
#include "asup/engine/search_service.h"
#include "asup/util/random.h"

namespace asup {

/// Options of the dynamic aggregate estimator.
struct DynamicEstimatorOptions {
  uint64_t seed = 13;

  /// Number of pool queries maintained (reissued every epoch). Clamped to
  /// the pool size; the default maintains the entire pool — a census whose
  /// only per-epoch error is second-round sampling noise.
  size_t maintained_pool_size = std::numeric_limits<size_t>::max();

  /// Fraction of the maintained set re-probed each epoch even when the
  /// answer looks unchanged. An unchanged answer does not imply an
  /// unchanged weight: deg_ret(X) moves when *other* queries' answers
  /// shift, so cached weights drift. The rotation bounds the staleness of
  /// any cached weight to ceil(1/refresh_fraction) epochs.
  double refresh_fraction = 0.1;

  /// Second-round trial cap factor (see attack_internal).
  double max_trial_factor = 8.0;
};

/// One epoch of the dynamic estimate trajectory.
struct DynamicEpochPoint {
  /// 1-based index of the observation (not the CorpusManager epoch number;
  /// the harness records that mapping).
  uint64_t epoch = 0;
  /// Estimate of the aggregate over the snapshot observed this epoch.
  double estimate = 0.0;
  /// estimate − previous epoch's estimate; 0 for the first observation.
  double delta_estimate = 0.0;
  /// Interface queries spent on this epoch (first + second round).
  uint64_t queries_spent = 0;
  /// Maintained queries whose answer document set changed since the last
  /// observation (first observation: every maintained query counts).
  uint64_t answers_changed = 0;
};

/// Dynamic-corpus aggregate estimator in the style of RS-ESTIMATOR from
/// *Aggregate Estimation Over Dynamic Hidden Web Databases* (Liu,
/// Thirumuruganathan, Zhang & Das, VLDB 2014), adapted to the paper's
/// restrictive top-k keyword interface and pool-based edge weights.
///
/// The estimator maintains a fixed subsample of the query pool across
/// epochs. Each epoch it reissues every maintained query (one interface
/// query each); queries whose answer set is unchanged reuse their cached
/// second-round weight, while changed answers — plus a rotating
/// drift-correction slice — are re-probed with the Bar-Yossef & Gurevich
/// second round. The per-epoch estimate is |pool| × mean(per-query
/// contribution) over the maintained set, and consecutive estimates yield
/// the per-epoch aggregate deltas the leakage measurements consume.
///
/// Determinism: all randomness flows through one Rng seeded from options;
/// maintained queries are visited in a deterministic rotation (advancing
/// by the refresh window each epoch), so the trajectory is a pure function
/// of (pool, aggregate, options, observed answers).
class DynamicEstimator {
 public:
  /// `pool` is borrowed and must outlive the estimator. `fetcher` reads
  /// returned documents (see DocFetcher) and must resolve every DocId any
  /// observed snapshot can return.
  DynamicEstimator(const QueryPool& pool, const AggregateQuery& aggregate,
                   DocFetcher fetcher,
                   const DynamicEstimatorOptions& options = {});

  /// Observes the snapshot currently behind `service`: reissues the
  /// maintained queries (starting at the rotation cursor), re-probes
  /// changed answers, and appends one point to the trajectory.
  /// `query_budget` caps the interface queries spent in this epoch; once
  /// exhausted, previously observed slots fall back to their cached
  /// contribution and never-observed slots are excluded from the mean, so
  /// a budget smaller than the maintained set still yields an unbiased
  /// (higher-variance) estimate over the slots it could afford.
  DynamicEpochPoint ObserveEpoch(SearchService& service, uint64_t query_budget);

  /// All points observed since construction (or the last Reset), oldest
  /// first.
  const std::vector<DynamicEpochPoint>& trajectory() const {
    return trajectory_;
  }

  /// Number of pool queries maintained across epochs.
  size_t maintained_size() const { return maintained_.size(); }

  /// Restores the freshly constructed state: same maintained set, empty
  /// caches, empty trajectory, reseeded Rng.
  void Reset();

  const char* name() const { return "DYNAMIC-EST"; }

 private:
  struct CachedAnswer {
    bool valid = false;
    std::vector<DocId> doc_ids;  // sorted answer set of the last probe
    double contribution = 0.0;
  };

  /// (Re)derives the maintained subsample and clears all per-epoch state.
  void Initialize();

  const QueryPool* pool_;
  AggregateQuery aggregate_;
  DocFetcher fetcher_;
  DynamicEstimatorOptions options_;

  Rng rng_;
  std::vector<size_t> maintained_;  // pool indices, seeded-shuffled order
  std::vector<CachedAnswer> cache_;  // parallel to maintained_
  size_t refresh_cursor_ = 0;
  std::vector<DynamicEpochPoint> trajectory_;
};

}  // namespace asup

#endif  // ASUP_ATTACK_DYNAMIC_EST_H_
