#ifndef ASUP_ATTACK_QUERY_POOL_H_
#define ASUP_ATTACK_QUERY_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asup/engine/query.h"
#include "asup/text/corpus.h"
#include "asup/util/random.h"

namespace asup {

/// The adversary's query pool Ω (Section 2.1 of the paper).
///
/// Built exactly as the published attacks build theirs: from an *external*
/// sample of documents (the paper uses ODP pages not chosen into the corpus;
/// we use held-out documents from the same synthetic universe). Two pool
/// constructions are supported:
///
///  * **single-word** (the paper's Section 6.1 configuration, after [26]):
///    every distinct word of the external sample;
///  * **word-pair** (the phrase-style pools of [8, 9], which the paper's
///    SIMPLE-ADV model references as the standard way to keep d_max small):
///    conjunctive two-word queries sampled from co-occurring word pairs.
///
/// The pool also remembers each query's document frequency within the
/// external sample — the adversary's only prior knowledge of query
/// selectivity, used by STRATIFIED-EST's strata design.
class QueryPool {
 public:
  struct Options {
    /// Words (or pairs) appearing in more than this fraction of the
    /// external sample's documents are excluded from the pool. Published
    /// attack pools do the equivalent (stop-word removal / fixed-length
    /// phrase queries): the SIMPLE-ADV model requires every document to be
    /// *returned* by at most a small constant d_max pool queries, which
    /// ultra-common words violate — and their answers are top-k-truncated
    /// anyway, so they only add noise.
    double max_df_fraction = 1.0;
  };

  /// Builds a single-word pool from the distinct words of `external_sample`.
  QueryPool(const Corpus& external_sample, const Options& options);

  explicit QueryPool(const Corpus& external_sample)
      : QueryPool(external_sample, Options()) {}

  /// Builds a word-pair pool: up to `pairs_per_doc` random co-occurring
  /// word pairs are drawn from each external document (deduplicated across
  /// documents), then filtered by `options.max_df_fraction` on the pair's
  /// sample df.
  static QueryPool WordPairPool(const Corpus& external_sample,
                                size_t pairs_per_doc, uint64_t seed,
                                const Options& options);

  static QueryPool WordPairPool(const Corpus& external_sample,
                                size_t pairs_per_doc, uint64_t seed) {
    return WordPairPool(external_sample, pairs_per_doc, seed, Options());
  }

  /// Number of queries |Ω|.
  size_t size() const { return queries_.size(); }

  /// True for a word-pair pool.
  bool is_pair_pool() const { return pair_pool_; }

  /// The i-th pool query.
  const KeywordQuery& QueryAt(size_t i) const { return queries_[i]; }

  /// The term backing the i-th pool query (single-word pools only; aborts
  /// on pair pools).
  TermId TermAt(size_t i) const;

  /// Uniform random pool index.
  size_t SampleIndex(Rng& rng) const { return rng.UniformBelow(size()); }

  /// Document frequency of the i-th query in the adversary's external
  /// sample (selectivity prior; *not* the secret corpus df).
  uint32_t SampleDf(size_t i) const { return sample_df_[i]; }

  /// M(X): indices of the pool queries matching document X — computable by
  /// the adversary from the retrieved document's content alone.
  std::vector<uint32_t> MatchingQueries(const Document& doc) const;

  /// Pool index of `term` (single-word pools), or UINT32_MAX if absent.
  uint32_t IndexOfTerm(TermId term) const;

 private:
  QueryPool() = default;

  bool pair_pool_ = false;
  std::vector<KeywordQuery> queries_;
  std::vector<TermId> terms_;  // single-word pools only
  std::vector<uint32_t> sample_df_;
  std::unordered_map<TermId, uint32_t> index_of_term_;
  /// Pair pools: for each lower term, the (pool index, higher term) pairs.
  std::unordered_map<TermId, std::vector<std::pair<uint32_t, TermId>>>
      pairs_by_low_term_;
};

}  // namespace asup

#endif  // ASUP_ATTACK_QUERY_POOL_H_
