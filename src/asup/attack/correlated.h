#ifndef ASUP_ATTACK_CORRELATED_H_
#define ASUP_ATTACK_CORRELATED_H_

#include <string>
#include <vector>

#include "asup/engine/query.h"
#include "asup/engine/search_service.h"
#include "asup/text/corpus.h"

namespace asup {

/// The correlated-query attack against AS-SIMPLE (paper Section 5.1).
///
/// The adversary analyzes an *external* linguistic corpus to find words
/// that strongly co-occur with a seed word, then issues the two-word
/// queries (seed, w1), (seed, w2), ... in sequence. All these queries match
/// subsets of the seed word's documents, so their answers overlap heavily;
/// on a corpus near the *bottom* of its indistinguishable segment (μ ≈ 1),
/// AS-SIMPLE's per-document edge removal makes the observed answer sizes
/// decay across the sequence — revealing the corpus's position in the
/// segment. AS-ARBI's virtual query processing removes the decay.
class CorrelatedQueryAttack {
 public:
  struct Options {
    /// Number of correlated queries to build (paper: 94).
    size_t num_queries = 94;
    /// Words must co-occur with the seed in at least this many external
    /// documents to qualify.
    size_t min_cooccurrence = 2;
    /// Words co-occurring more often than this are skipped. A smart
    /// adversary avoids the broadest pairs: queries that overflow the
    /// top-k interface have their hidden documents replaced by lower-ranked
    /// matches, which masks the degree decay the attack watches for.
    size_t max_cooccurrence = SIZE_MAX;
    /// Whether the bare seed word is issued as the first query. Off by
    /// default for the same reason as max_cooccurrence: the seed alone
    /// usually overflows.
    bool include_seed_query = false;
  };

  /// Mines `external` (the adversary's linguistic corpus) for words
  /// co-occurring with `seed_word`; the attack queries are the seed alone
  /// followed by (seed, w) pairs in decreasing co-occurrence order.
  CorrelatedQueryAttack(const Corpus& external, const std::string& seed_word,
                        const Options& options);

  CorrelatedQueryAttack(const Corpus& external, const std::string& seed_word)
      : CorrelatedQueryAttack(external, seed_word, Options()) {}

  /// The attack's query sequence.
  const std::vector<KeywordQuery>& queries() const { return queries_; }

  /// Issues the queries in order; element i is the number of documents
  /// returned for queries()[i]. The adversary watches this sequence for
  /// decay.
  std::vector<size_t> Run(SearchService& service) const;

 private:
  std::vector<KeywordQuery> queries_;
};

}  // namespace asup

#endif  // ASUP_ATTACK_CORRELATED_H_
