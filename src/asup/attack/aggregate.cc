#include "asup/attack/aggregate.h"

namespace asup {

AggregateQuery AggregateQuery::Count() { return AggregateQuery(); }

AggregateQuery AggregateQuery::CountContaining(TermId term) {
  return CountContainingAll({term});
}

AggregateQuery AggregateQuery::CountContainingAll(std::vector<TermId> terms) {
  AggregateQuery query;
  query.required_terms_ = std::move(terms);
  return query;
}

AggregateQuery AggregateQuery::SumLength() {
  AggregateQuery query;
  query.function_ = AggregateFunction::kSumLength;
  return query;
}

AggregateQuery AggregateQuery::SumLengthContaining(TermId term) {
  return SumLengthContainingAll({term});
}

AggregateQuery AggregateQuery::SumLengthContainingAll(
    std::vector<TermId> terms) {
  AggregateQuery query;
  query.function_ = AggregateFunction::kSumLength;
  query.required_terms_ = std::move(terms);
  return query;
}

double AggregateQuery::MeasureOf(const Document& doc) const {
  for (TermId term : required_terms_) {
    if (!doc.Contains(term)) return 0.0;
  }
  switch (function_) {
    case AggregateFunction::kCount:
      return 1.0;
    case AggregateFunction::kSumLength:
      return static_cast<double>(doc.length());
  }
  return 0.0;
}

double AggregateQuery::TrueValue(const Corpus& corpus) const {
  double total = 0.0;
  for (const auto& doc : corpus.documents()) total += MeasureOf(doc);
  return total;
}

std::string AggregateQuery::Name(const Vocabulary& vocabulary) const {
  std::string name = function_ == AggregateFunction::kCount
                         ? "COUNT(*)"
                         : "SUM(doc_length)";
  for (size_t i = 0; i < required_terms_.size(); ++i) {
    name += i == 0 ? " WHERE contains '" : "' AND '";
    name += vocabulary.WordOf(required_terms_[i]);
  }
  if (!required_terms_.empty()) name += "'";
  return name;
}

}  // namespace asup
