#include "asup/attack/brute_force.h"

#include <numeric>

namespace asup {

BruteForceCrawler::BruteForceCrawler(const QueryPool& pool,
                                     const AggregateQuery& aggregate,
                                     DocFetcher fetcher,
                                     const Options& options)
    : pool_(&pool),
      aggregate_(aggregate),
      fetcher_(std::move(fetcher)),
      options_(options) {}

std::vector<EstimationPoint> BruteForceCrawler::Run(SearchService& service,
                                                    uint64_t query_budget,
                                                    uint64_t report_every) {
  Rng rng(options_.seed);
  crawled_.clear();
  std::vector<uint64_t> order(pool_->size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::vector<EstimationPoint> points;
  double total = 0.0;
  uint64_t issued = 0;
  uint64_t next_report = report_every;
  for (uint64_t pick : order) {
    if (issued >= query_budget) break;
    const SearchResult result =
        service.Search(pool_->QueryAt(static_cast<size_t>(pick)));
    ++issued;
    for (const ScoredDoc& scored : result.docs) {
      if (crawled_.insert(scored.doc).second) {
        total += aggregate_.MeasureOf(fetcher_(scored.doc));
      }
    }
    if (issued >= next_report) {
      points.push_back({issued, total});
      next_report += report_every;
    }
  }
  points.push_back({issued, total});
  return points;
}

}  // namespace asup
