#include "asup/attack/correlation_adv.h"

#include "asup/obs/metrics.h"

namespace asup {

double AdvantageReport::TruePositiveRate() const {
  const uint64_t positives = true_positives + false_negatives;
  if (positives == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(positives);
}

double AdvantageReport::TrueNegativeRate() const {
  const uint64_t negatives = true_negatives + false_positives;
  if (negatives == 0) return 0.0;
  return static_cast<double>(true_negatives) / static_cast<double>(negatives);
}

double AdvantageReport::Advantage() const {
  const uint64_t positives = true_positives + false_negatives;
  const uint64_t negatives = true_negatives + false_positives;
  if (positives == 0 || negatives == 0) return 0.0;
  return (TruePositiveRate() + TrueNegativeRate()) / 2.0 - 0.5;
}

CorrelationAdversary::CorrelationAdversary(
    const CorrelationAdversaryOptions& options)
    : options_(options) {}

void CorrelationAdversary::Reset() {
  disclosed_.clear();
  seen_terms_.clear();
  query_counts_.clear();
  last_features_ = CorrelationFeatures();
  observations_ = 0;
}

bool CorrelationAdversary::ObserveAndClassify(const KeywordQuery& query,
                                              const SearchResult& result) {
  CorrelationFeatures features;
  features.answer_size = result.docs.size();
  for (const ScoredDoc& scored : result.docs) {
    if (disclosed_.find(scored.doc) == disclosed_.end()) {
      ++features.novel_docs;
    }
  }
  features.novel_fraction =
      features.answer_size == 0
          ? 0.0
          : static_cast<double>(features.novel_docs) /
                static_cast<double>(features.answer_size);
  for (TermId term : query.terms()) {
    if (seen_terms_.find(term) != seen_terms_.end()) ++features.repeat_terms;
  }
  const auto repeat_it = query_counts_.find(query.hash());
  features.query_repeats =
      repeat_it == query_counts_.end() ? 0 : repeat_it->second;

  // Decision rule: a virtual answer is non-empty, drawn wholly (up to the
  // configured slack) from previously disclosed documents, and — when
  // required — correlated with an earlier query through a repeated term.
  bool verdict = features.answer_size > 0 &&
                 features.novel_fraction <= options_.max_novel_fraction;
  if (options_.require_repeat_term && features.repeat_terms == 0) {
    verdict = false;
  }

  // Fold the observation into the history after classifying: the adversary
  // never conditions on information it has not yet received.
  for (const ScoredDoc& scored : result.docs) disclosed_.insert(scored.doc);
  for (TermId term : query.terms()) seen_terms_.insert(term);
  ++query_counts_[query.hash()];
  ++observations_;
  last_features_ = features;

  ASUP_METRIC_GAUGE_SET("asup_attack_corr_disclosed_docs", disclosed_.size());
  ASUP_METRIC_COUNT("asup_attack_corr_observations", 1);
  if (verdict) ASUP_METRIC_COUNT("asup_attack_corr_virtual_verdicts", 1);
  return verdict;
}

}  // namespace asup
