#include "asup/attack/correlated.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace asup {

CorrelatedQueryAttack::CorrelatedQueryAttack(const Corpus& external,
                                             const std::string& seed_word,
                                             const Options& options) {
  const Vocabulary& vocabulary = external.vocabulary();
  auto seed = vocabulary.Lookup(seed_word);
  if (!seed.has_value()) {
    std::fprintf(stderr, "CorrelatedQueryAttack: seed word '%s' unknown\n",
                 seed_word.c_str());
    std::abort();
  }

  // Count words co-occurring with the seed in the external corpus.
  std::unordered_map<TermId, uint32_t> cooccurrence;
  for (const Document& doc : external.documents()) {
    if (!doc.Contains(*seed)) continue;
    for (const TermFreq& entry : doc.terms()) {
      if (entry.term != *seed) cooccurrence[entry.term] += 1;
    }
  }
  std::vector<std::pair<TermId, uint32_t>> ranked(cooccurrence.begin(),
                                                  cooccurrence.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic ties
  });

  if (options.include_seed_query) {
    queries_.push_back(KeywordQuery::FromTerms(vocabulary, {*seed}));
  }
  for (const auto& [term, count] : ranked) {
    if (queries_.size() >= options.num_queries) break;
    if (count < options.min_cooccurrence) break;
    if (count > options.max_cooccurrence) continue;
    queries_.push_back(KeywordQuery::FromTerms(vocabulary, {*seed, term}));
  }
}

std::vector<size_t> CorrelatedQueryAttack::Run(SearchService& service) const {
  std::vector<size_t> counts;
  counts.reserve(queries_.size());
  for (const KeywordQuery& query : queries_) {
    counts.push_back(service.Search(query).docs.size());
  }
  return counts;
}

}  // namespace asup
