#ifndef ASUP_ATTACK_UNBIASED_EST_H_
#define ASUP_ATTACK_UNBIASED_EST_H_

#include "asup/attack/estimator.h"

namespace asup {

/// UNBIASED-EST [Bar-Yossef & Gurevich, WWW'07], as reviewed in
/// Section 2.2 of the paper.
///
/// Repeatedly: draw a query q uniformly from the pool Ω, retrieve its
/// answer, and for every returned document X estimate the edge weight
/// w = 1/deg_ret(X) by second-round sampling over M(X). The per-query
/// estimate |Ω|·Σ ŵ(X)·measure(X) is an unbiased estimator of the
/// aggregate over pool-recallable documents; the running mean over sampled
/// queries is reported as the trajectory.
class UnbiasedEstimator : public AggregateEstimator {
 public:
  struct Options {
    uint64_t seed = 7;
    /// Cap on second-round trials per edge (multiple of |M(X)|).
    double max_trial_factor = 8.0;
  };

  /// `pool` and the corpus behind `fetcher` are borrowed.
  UnbiasedEstimator(const QueryPool& pool, const AggregateQuery& aggregate,
                    DocFetcher fetcher, const Options& options);

  UnbiasedEstimator(const QueryPool& pool, const AggregateQuery& aggregate,
                    DocFetcher fetcher)
      : UnbiasedEstimator(pool, aggregate, std::move(fetcher), Options()) {}

  std::vector<EstimationPoint> Run(SearchService& service,
                                   uint64_t query_budget,
                                   uint64_t report_every) override;

  const char* name() const override { return "UNBIASED-EST"; }

  /// Moments of the per-query estimates from the last Run (adversarial
  /// confidence intervals in the privacy game are built from these).
  const StreamingStats& last_run_stats() const { return per_query_; }

 private:
  const QueryPool* pool_;
  AggregateQuery aggregate_;
  DocFetcher fetcher_;
  Options options_;
  StreamingStats per_query_;
};

}  // namespace asup

#endif  // ASUP_ATTACK_UNBIASED_EST_H_
