#ifndef ASUP_ATTACK_STRATIFIED_EST_H_
#define ASUP_ATTACK_STRATIFIED_EST_H_

#include "asup/attack/estimator.h"

namespace asup {

/// STRATIFIED-EST [Zhang, Zhang & Das, SIGMOD'11], as configured in
/// Section 6.1 of the paper (10 strata, 5 pilot queries per stratum).
///
/// The pool is partitioned into strata by each query's document frequency
/// in the adversary's *external* sample (the only selectivity prior the
/// adversary has): geometric df buckets [1,2), [2,4), [4,8), ... A pilot
/// phase draws a few queries per stratum to estimate per-stratum variances,
/// then the remaining budget is spread by Neyman allocation
/// (∝ |Ω_s|·σ_s). The estimate is Σ_s |Ω_s|·mean_s of the per-query
/// contributions, which has strictly lower variance than UNBIASED-EST for
/// the same budget.
class StratifiedEstimator : public AggregateEstimator {
 public:
  struct Options {
    size_t num_strata = 10;
    size_t pilot_queries_per_stratum = 5;
    uint64_t seed = 11;
    double max_trial_factor = 8.0;
  };

  StratifiedEstimator(const QueryPool& pool, const AggregateQuery& aggregate,
                      DocFetcher fetcher, const Options& options);

  StratifiedEstimator(const QueryPool& pool, const AggregateQuery& aggregate,
                      DocFetcher fetcher)
      : StratifiedEstimator(pool, aggregate, std::move(fetcher), Options()) {}

  std::vector<EstimationPoint> Run(SearchService& service,
                                   uint64_t query_budget,
                                   uint64_t report_every) override;

  const char* name() const override { return "STRATIFIED-EST"; }

  /// Number of non-empty strata.
  size_t NumStrata() const { return strata_.size(); }

  /// Pool indices of one stratum (for tests).
  const std::vector<uint32_t>& Stratum(size_t s) const { return strata_[s]; }

 private:
  double CurrentEstimate(const std::vector<StreamingStats>& per_stratum) const;

  const QueryPool* pool_;
  AggregateQuery aggregate_;
  DocFetcher fetcher_;
  Options options_;
  std::vector<std::vector<uint32_t>> strata_;  // pool indices per stratum
};

}  // namespace asup

#endif  // ASUP_ATTACK_STRATIFIED_EST_H_
