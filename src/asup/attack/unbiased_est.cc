#include "asup/attack/unbiased_est.h"

#include "asup/obs/metrics.h"

namespace asup {

UnbiasedEstimator::UnbiasedEstimator(const QueryPool& pool,
                                     const AggregateQuery& aggregate,
                                     DocFetcher fetcher,
                                     const Options& options)
    : pool_(&pool),
      aggregate_(aggregate),
      fetcher_(std::move(fetcher)),
      options_(options) {}

std::vector<EstimationPoint> UnbiasedEstimator::Run(SearchService& service,
                                                    uint64_t query_budget,
                                                    uint64_t report_every) {
  Rng rng(options_.seed);
  per_query_ = StreamingStats();
  std::vector<EstimationPoint> points;
  if (pool_->size() == 0) {
    points.push_back({0, 0.0});
    return points;
  }
  uint64_t issued = 0;
  uint64_t next_report = report_every;
  const double pool_size = static_cast<double>(pool_->size());

  while (issued < query_budget) {
    const size_t pick = pool_->SampleIndex(rng);
    const double contribution = attack_internal::EstimateQueryContribution(
        service, *pool_, aggregate_, fetcher_, rng, pick, query_budget,
        options_.max_trial_factor, issued);
    per_query_.Add(contribution * pool_size);
    while (issued >= next_report) {
      points.push_back({next_report, per_query_.Mean()});
      next_report += report_every;
    }
  }
  points.push_back({issued, per_query_.Mean()});
  // Variance inputs of the final estimate (paper §4.1's error analysis).
  ASUP_METRIC_GAUGE_SET("asup_attack_unbiased_samples", per_query_.count());
  ASUP_METRIC_GAUGE_SET("asup_attack_unbiased_mean", per_query_.Mean());
  ASUP_METRIC_GAUGE_SET("asup_attack_unbiased_stddev", per_query_.StdDev());
  return points;
}

}  // namespace asup
