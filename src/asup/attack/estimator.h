#ifndef ASUP_ATTACK_ESTIMATOR_H_
#define ASUP_ATTACK_ESTIMATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "asup/attack/aggregate.h"
#include "asup/attack/query_pool.h"
#include "asup/engine/search_service.h"
#include "asup/util/random.h"
#include "asup/util/stats.h"

namespace asup {

/// One point of an estimate trajectory: the adversary's running estimate
/// after spending `queries_issued` interface queries. The figures of the
/// paper's Section 6 plot exactly these trajectories.
struct EstimationPoint {
  uint64_t queries_issued = 0;
  double estimate = 0.0;
};

/// How the adversary reads a retrieved document's content. Returned
/// documents are public (the search engine serves them), so the adversary
/// can compute their aggregate measure and their matching query set M(X).
using DocFetcher = std::function<const Document&(DocId)>;

/// Standard fetcher over the engine's corpus.
DocFetcher FetchFrom(const Corpus& corpus);

/// Common interface of the aggregate-estimation attacks.
class AggregateEstimator {
 public:
  virtual ~AggregateEstimator() = default;

  /// Attacks `service`, issuing at most `query_budget` interface queries
  /// (first- and second-round queries both count, as in the paper's
  /// query-limit model), reporting the running estimate roughly every
  /// `report_every` issued queries. The final point is always reported.
  virtual std::vector<EstimationPoint> Run(SearchService& service,
                                           uint64_t query_budget,
                                           uint64_t report_every) = 0;

  /// Attack name for experiment output.
  virtual const char* name() const = 0;
};

namespace attack_internal {

/// Shared inner routine of UNBIASED-EST and STRATIFIED-EST: issues pool
/// query `pool_index` and estimates its per-query contribution
/// Σ_{X returned} ŵ(X)·measure(X), where ŵ(X) is obtained by the
/// second-round sampling of [Bar-Yossef & Gurevich]: repeatedly pick a
/// uniform query from M(X) and issue it until one returns X again; with t
/// trials, ŵ = t/|M(X)| is an unbiased estimate of 1/deg_ret(X).
///
/// `issued` is advanced by every interface query spent. Trials per edge are
/// capped at max(16, max_trial_factor·|M(X)|) to bound worst-case budget
/// burn; the cap only truncates the far tail of the geometric distribution.
double EstimateQueryContribution(SearchService& service, const QueryPool& pool,
                                 const AggregateQuery& aggregate,
                                 const DocFetcher& fetcher, Rng& rng,
                                 size_t pool_index, uint64_t query_budget,
                                 double max_trial_factor, uint64_t& issued);

/// The second-round half of EstimateQueryContribution, operating on an
/// answer the caller has already retrieved (and paid for). The dynamic
/// estimator reuses this to re-probe only queries whose answer changed
/// between epochs, keeping cached contributions for the rest.
double EstimateResultContribution(SearchService& service, const QueryPool& pool,
                                  const AggregateQuery& aggregate,
                                  const DocFetcher& fetcher, Rng& rng,
                                  const SearchResult& result,
                                  uint64_t query_budget,
                                  double max_trial_factor, uint64_t& issued);

}  // namespace attack_internal

}  // namespace asup

#endif  // ASUP_ATTACK_ESTIMATOR_H_
