#include "asup/attack/query_pool.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "asup/util/hash.h"

namespace asup {

QueryPool::QueryPool(const Corpus& external_sample, const Options& options) {
  // Count document frequencies of every word in the external sample.
  std::unordered_map<TermId, uint32_t> df;
  for (const Document& doc : external_sample.documents()) {
    for (const TermFreq& entry : doc.terms()) df[entry.term] += 1;
  }
  const double max_df =
      options.max_df_fraction * static_cast<double>(external_sample.size());
  std::vector<TermId> terms;
  terms.reserve(df.size());
  for (const auto& [term, count] : df) {
    if (static_cast<double>(count) <= max_df) terms.push_back(term);
  }
  std::sort(terms.begin(), terms.end());  // deterministic pool order

  const Vocabulary& vocabulary = external_sample.vocabulary();
  queries_.reserve(terms.size());
  terms_.reserve(terms.size());
  sample_df_.reserve(terms.size());
  for (TermId term : terms) {
    index_of_term_.emplace(term, static_cast<uint32_t>(queries_.size()));
    queries_.push_back(KeywordQuery::FromTerms(vocabulary, {term}));
    terms_.push_back(term);
    sample_df_.push_back(df[term]);
  }
}

QueryPool QueryPool::WordPairPool(const Corpus& external_sample,
                                  size_t pairs_per_doc, uint64_t seed,
                                  const Options& options) {
  QueryPool pool;
  pool.pair_pool_ = true;
  Rng rng(seed);

  // Pass 1: sample candidate pairs (low term, high term) from each doc.
  auto pair_key = [](TermId low, TermId high) {
    return (static_cast<uint64_t>(low) << 32) | high;
  };
  std::unordered_map<uint64_t, uint32_t> pair_df;
  for (const Document& doc : external_sample.documents()) {
    const auto& terms = doc.terms();
    if (terms.size() < 2) continue;
    for (size_t draw = 0; draw < pairs_per_doc; ++draw) {
      const size_t a = rng.UniformBelow(terms.size());
      const size_t b = rng.UniformBelow(terms.size());
      if (a == b) continue;
      const TermId low = std::min(terms[a].term, terms[b].term);
      const TermId high = std::max(terms[a].term, terms[b].term);
      pair_df.emplace(pair_key(low, high), 0);
    }
  }

  // Pass 2: exact sample df of every candidate pair, via an incidence walk
  // over each document's terms.
  std::unordered_map<TermId, std::vector<TermId>> highs_by_low;
  for (const auto& [key, unused] : pair_df) {
    highs_by_low[static_cast<TermId>(key >> 32)].push_back(
        static_cast<TermId>(key & 0xffffffffu));
  }
  for (const Document& doc : external_sample.documents()) {
    for (const TermFreq& entry : doc.terms()) {
      auto it = highs_by_low.find(entry.term);
      if (it == highs_by_low.end()) continue;
      for (TermId high : it->second) {
        if (doc.Contains(high)) {
          pair_df[pair_key(entry.term, high)] += 1;
        }
      }
    }
  }

  // Deterministic order + df filter.
  std::vector<uint64_t> keys;
  keys.reserve(pair_df.size());
  const double max_df =
      options.max_df_fraction * static_cast<double>(external_sample.size());
  for (const auto& [key, count] : pair_df) {
    if (count >= 1 && static_cast<double>(count) <= max_df) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());

  const Vocabulary& vocabulary = external_sample.vocabulary();
  pool.queries_.reserve(keys.size());
  pool.sample_df_.reserve(keys.size());
  for (uint64_t key : keys) {
    const TermId low = static_cast<TermId>(key >> 32);
    const TermId high = static_cast<TermId>(key & 0xffffffffu);
    const uint32_t index = static_cast<uint32_t>(pool.queries_.size());
    pool.queries_.push_back(KeywordQuery::FromTerms(vocabulary, {low, high}));
    pool.sample_df_.push_back(pair_df[key]);
    pool.pairs_by_low_term_[low].push_back({index, high});
  }
  return pool;
}

TermId QueryPool::TermAt(size_t i) const {
  if (pair_pool_) {
    std::fprintf(stderr, "QueryPool::TermAt called on a pair pool\n");
    std::abort();
  }
  return terms_[i];
}

std::vector<uint32_t> QueryPool::MatchingQueries(const Document& doc) const {
  std::vector<uint32_t> result;
  if (!pair_pool_) {
    result.reserve(doc.terms().size());
    for (const TermFreq& entry : doc.terms()) {
      auto it = index_of_term_.find(entry.term);
      if (it != index_of_term_.end()) result.push_back(it->second);
    }
    return result;
  }
  for (const TermFreq& entry : doc.terms()) {
    auto it = pairs_by_low_term_.find(entry.term);
    if (it == pairs_by_low_term_.end()) continue;
    for (const auto& [index, high] : it->second) {
      if (doc.Contains(high)) result.push_back(index);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

uint32_t QueryPool::IndexOfTerm(TermId term) const {
  auto it = index_of_term_.find(term);
  return it == index_of_term_.end() ? UINT32_MAX : it->second;
}

}  // namespace asup
