#include "asup/attack/estimator.h"

#include <algorithm>

#include "asup/obs/metrics.h"

namespace asup {

DocFetcher FetchFrom(const Corpus& corpus) {
  return [&corpus](DocId id) -> const Document& { return corpus.Get(id); };
}

namespace attack_internal {

double EstimateQueryContribution(SearchService& service, const QueryPool& pool,
                                 const AggregateQuery& aggregate,
                                 const DocFetcher& fetcher, Rng& rng,
                                 size_t pool_index, uint64_t query_budget,
                                 double max_trial_factor, uint64_t& issued) {
  const SearchResult result = service.Search(pool.QueryAt(pool_index));
  ++issued;
  ASUP_METRIC_COUNT("asup_attack_queries_issued_total", 1);
  return EstimateResultContribution(service, pool, aggregate, fetcher, rng,
                                    result, query_budget, max_trial_factor,
                                    issued);
}

double EstimateResultContribution(SearchService& service, const QueryPool& pool,
                                  const AggregateQuery& aggregate,
                                  const DocFetcher& fetcher, Rng& rng,
                                  const SearchResult& result,
                                  uint64_t query_budget,
                                  double max_trial_factor, uint64_t& issued) {
  const uint64_t issued_before = issued;
  double contribution = 0.0;
  for (const ScoredDoc& scored : result.docs) {
    const Document& doc = fetcher(scored.doc);
    const double measure = aggregate.MeasureOf(doc);
    if (measure == 0.0) continue;  // outside the selection condition
    const std::vector<uint32_t> matching = pool.MatchingQueries(doc);
    if (matching.empty()) continue;
    // Pool coverage: how many pool queries could have returned this
    // document (the deg(X) denominator of the edge weight).
    ASUP_METRIC_OBSERVE_SIZE("asup_attack_doc_pool_degree", matching.size());

    // Second-round sampling for the edge weight 1/deg_ret(X).
    const uint64_t cap =
        std::max<uint64_t>(16, static_cast<uint64_t>(
                                   max_trial_factor *
                                   static_cast<double>(matching.size())));
    uint64_t trials = 0;
    while (trials < cap && issued < query_budget) {
      ++trials;
      const uint32_t probe = matching[rng.UniformBelow(matching.size())];
      const SearchResult probe_result = service.Search(pool.QueryAt(probe));
      ++issued;
      if (probe_result.Returned(scored.doc)) break;
    }
    ASUP_METRIC_OBSERVE_SIZE("asup_attack_probe_trials", trials);
    contribution +=
        (static_cast<double>(trials) / static_cast<double>(matching.size())) *
        measure;
  }
  ASUP_METRIC_COUNT("asup_attack_queries_issued_total", issued - issued_before);
  return contribution;
}

}  // namespace attack_internal

}  // namespace asup
