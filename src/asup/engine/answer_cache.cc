#include "asup/engine/answer_cache.h"

#include <algorithm>
#include <optional>

#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

AnswerCache::AnswerCache(size_t min_shards) {
  size_t shards = 1;
  while (shards < std::max<size_t>(min_shards, 1)) shards <<= 1;
  shard_mask_ = shards - 1;
  // Shards are constructed in place and never moved: Mutex and
  // condition_variable are address-stable for the cache's lifetime.
  shards_ = std::vector<Shard>(shards);
}

AnswerCache::Claim AnswerCache::LookupOrClaim(const std::string& key,
                                              SearchResult* out) {
#if ASUP_METRICS_ENABLED
  // A cache hit is the sub-µs fast path; the stage span's two clock reads
  // would be its dominant cost, so span it only for actively traced
  // queries. The counters below stay on (one relaxed add each).
  std::optional<obs::ScopedStageTimer> span;
  if (obs::ActiveTrace() != nullptr) {
    span.emplace(obs::Stage::kCacheLookup);
  }
#endif
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  for (;;) {
    auto [it, inserted] = shard.map.try_emplace(key);
    if (inserted) {
      ASUP_METRIC_COUNT("asup_engine_cache_claims_total", 1,
                        "Answer-cache slots claimed for computation");
      return Claim::kOwned;
    }
    if (it->second.ready) {
      ASUP_METRIC_COUNT("asup_engine_cache_hits_total", 1,
                        "Queries answered from the answer cache");
      ASUP_METRICS_ONLY(if (span) { ASUP_TRACE_NOTE("cache_hit", 1); })
      *out = it->second.result;
      return Claim::kHit;
    }
    // Another thread is computing this key. Iterators may be invalidated by
    // concurrent insertions while we wait, so re-probe from scratch.
    lock.Wait(shard.ready_cv);
  }
}

void AnswerCache::Publish(const std::string& key, const SearchResult& result) {
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mutex);
    // Claim protocol: only the thread that claimed the key may publish,
    // exactly once. Re-publishing a ready entry could swap an answer a
    // client already saw — the nondeterministic-re-issue side channel the
    // cache exists to close.
    ASUP_CONTRACTS_ONLY(const auto claimed = shard.map.find(key);
                        ASUP_CHECK(claimed != shard.map.end());
                        ASUP_CHECK(!claimed->second.ready);)
    Entry& entry = shard.map[key];
    entry.result = result;
    entry.ready = true;
  }
  ASUP_METRIC_COUNT("asup_engine_cache_publishes_total", 1,
                    "Computed answers published to the cache");
  shard.ready_cv.notify_all();
}

void AnswerCache::Abandon(const std::string& key) {
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(shard.mutex);
    auto it = shard.map.find(key);
    // Abandoning a published answer would let a later compute replace it;
    // only unclaimed or in-flight keys may be abandoned.
    ASUP_CHECK(it == shard.map.end() || !it->second.ready);
    if (it != shard.map.end() && !it->second.ready) shard.map.erase(it);
  }
  ASUP_METRIC_COUNT("asup_engine_cache_abandons_total", 1,
                    "Claimed cache slots abandoned after a failure");
  shard.ready_cv.notify_all();
}

bool AnswerCache::Contains(const std::string& key) const {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  auto it = shard.map.find(key);
  return it != shard.map.end() && it->second.ready;
}

size_t AnswerCache::size() const {
  size_t count = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    // NOLINTNEXTLINE(asup-unordered-iteration): counting is order-invariant
    for (const auto& [key, entry] : shard.map) {
      if (entry.ready) ++count;
    }
  }
  return count;
}

void AnswerCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.map.clear();
  }
}

void AnswerCache::Insert(const std::string& key, SearchResult result) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  Entry& entry = shard.map[key];
  entry.result = std::move(result);
  entry.ready = true;
}

std::vector<std::pair<std::string, SearchResult>> AnswerCache::Snapshot()
    const {
  std::vector<std::pair<std::string, SearchResult>> entries;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    // NOLINTNEXTLINE(asup-unordered-iteration): order canonicalized below
    for (const auto& [key, entry] : shard.map) {
      if (entry.ready) entries.emplace_back(key, entry.result);
    }
  }
  // Canonical order: hash-map iteration order must not leak into snapshot
  // bytes, or two saves of identical state would differ.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

}  // namespace asup
