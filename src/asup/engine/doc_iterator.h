#ifndef ASUP_ENGINE_DOC_ITERATOR_H_
#define ASUP_ENGINE_DOC_ITERATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "asup/engine/query_node.h"
#include "asup/index/inverted_index.h"

namespace asup {

/// The iterator algebra the match path executes: a QueryNode tree compiles
/// into a tree of DocIterators (Term / And / Or / Not / Empty), and every
/// engine entry point — PlainSearchEngine, ShardedSearchService's
/// per-shard match, the pipeline match stage — drives the root. Iterators
/// stream ascending local doc ids; SkipTo obeys the same forward-only
/// contract as PostingList::Iterator::SkipTo (a target at or behind the
/// current doc is a no-op), which is what lets And leapfrog its children
/// against each other.
class DocIterator {
 public:
  virtual ~DocIterator() = default;

  /// True if the iterator points at a document.
  virtual bool Valid() const = 0;

  /// Current local doc id. Requires Valid().
  virtual uint32_t Doc() const = 0;

  /// Advances to the next matching document. Requires Valid().
  virtual void Next() = 0;

  /// Advances until Doc() >= target or exhaustion; forward-only (a target
  /// at or behind the current doc is a no-op).
  virtual void SkipTo(uint32_t target) = 0;

  /// Upper bound on the number of documents this iterator can produce —
  /// exact for Term, min/sum/range for And/Or/Not. Drives the rarest-first
  /// ordering of And children.
  virtual size_t CostEstimate() const = 0;
};

/// Leaf: streams one term's posting list, exposing the in-document
/// frequency the scoring function needs.
class TermIterator : public DocIterator {
 public:
  TermIterator(const PostingList& list, TermId term)
      : it_(&list), size_(list.size()), term_(term) {}

  bool Valid() const override { return it_.Valid(); }
  uint32_t Doc() const override { return it_.Get().local_doc; }
  void Next() override { it_.Next(); }
  void SkipTo(uint32_t target) override { it_.SkipTo(target); }
  size_t CostEstimate() const override { return size_; }

  /// Frequency of the term in the current document. Requires Valid().
  uint32_t Freq() const { return it_.Get().freq; }
  TermId term() const { return term_; }

 private:
  PostingList::Iterator it_;
  size_t size_;
  TermId term_;
};

/// Intersection: multi-way leapfrog over children ordered rarest-first
/// (the caller — CompileQuery — sorts them by CostEstimate).
class AndIterator : public DocIterator {
 public:
  explicit AndIterator(std::vector<std::unique_ptr<DocIterator>> children);

  bool Valid() const override { return valid_; }
  uint32_t Doc() const override { return doc_; }
  void Next() override;
  void SkipTo(uint32_t target) override;
  size_t CostEstimate() const override;

 private:
  /// From the driver's current position, leapfrogs to the next doc every
  /// child agrees on (or exhaustion).
  void Leapfrog();

  std::vector<std::unique_ptr<DocIterator>> children_;  // rarest first
  uint32_t doc_ = 0;
  bool valid_ = false;
};

/// Union, flat variant: every Next/SkipTo scans all children for the
/// minimum. O(k) per step with no per-step allocation or heap churn —
/// wins for small child counts (see kOrHeapCrossoverChildren).
class FlatOrIterator : public DocIterator {
 public:
  explicit FlatOrIterator(std::vector<std::unique_ptr<DocIterator>> children);

  bool Valid() const override { return valid_; }
  uint32_t Doc() const override { return doc_; }
  void Next() override;
  void SkipTo(uint32_t target) override;
  size_t CostEstimate() const override;

 private:
  void FindMin();

  std::vector<std::unique_ptr<DocIterator>> children_;
  uint32_t doc_ = 0;
  bool valid_ = false;
};

/// Union, k-way-heap variant: children keyed by current doc in a binary
/// min-heap; each step pops/reinserts only the children at the minimum.
/// O(log k) per step — wins for large child counts.
class HeapOrIterator : public DocIterator {
 public:
  explicit HeapOrIterator(std::vector<std::unique_ptr<DocIterator>> children);

  bool Valid() const override { return !heap_.empty(); }
  uint32_t Doc() const override { return heap_.front().doc; }
  void Next() override;
  void SkipTo(uint32_t target) override;
  size_t CostEstimate() const override;

 private:
  struct Entry {
    uint32_t doc;
    size_t child;
  };

  /// Pops the heap's minimum entry, advances that child with `advance`,
  /// and reinserts it if still valid.
  template <typename Advance>
  void ReplaceTop(Advance&& advance);

  std::vector<std::unique_ptr<DocIterator>> children_;
  std::vector<Entry> heap_;
};

/// Complement: anti-join of the child against the local id range
/// [0, num_docs) — every indexed document not produced by the child.
class NotIterator : public DocIterator {
 public:
  NotIterator(std::unique_ptr<DocIterator> child, uint32_t num_docs);

  bool Valid() const override { return doc_ < num_docs_; }
  uint32_t Doc() const override { return doc_; }
  void Next() override;
  void SkipTo(uint32_t target) override;
  size_t CostEstimate() const override { return num_docs_; }

 private:
  /// Advances doc_ past documents the child produces.
  void Align();

  std::unique_ptr<DocIterator> child_;
  uint32_t num_docs_;
  uint32_t doc_ = 0;
};

/// The empty set (unindexed term, And with an empty child, ...).
class EmptyIterator : public DocIterator {
 public:
  bool Valid() const override { return false; }
  uint32_t Doc() const override { return 0; }
  void Next() override {}
  void SkipTo(uint32_t) override {}
  size_t CostEstimate() const override { return 0; }
};

/// Union execution strategy. kAdaptive picks flat below
/// kOrHeapCrossoverChildren children and the heap at or above it; the
/// forced variants exist for the crossover benchmarks and the property
/// tests (all three must agree on every tree).
enum class OrStrategy { kAdaptive, kFlat, kHeap };

/// Measured flat-vs-heap crossover (bench_micro_engine BM_OrCount*,
/// recorded in EXPERIMENTS.md). The two regimes disagree: over sparse,
/// mostly-disjoint lists the heap wins from 3 children on (1.7x at 3, 9x
/// at 32 — one pop/push beats a k-wide min-scan when only one child sits
/// at the minimum), while over dense overlapping lists the flat scan wins
/// at every measured fanout up to 64 (worst heap deficit 1.3x — most
/// children share each minimum, so the heap churns log k per child where
/// the flat scan pays one predictable pass). Child count is the only
/// signal available at compile time, so the constant is the minimax-regret
/// compromise: 3 is where the sparse heap's win (1.7x and growing) starts
/// dwarfing the dense flat scan's edge (a dead tie at 3, <=1.3x above).
inline constexpr size_t kOrHeapCrossoverChildren = 3;

/// A compiled query: the iterator tree plus, for the conjunctive fast
/// shape (a bare Term or an And of Terms — every KeywordQuery), the
/// aligned TermIterators whose Freq() is readable at each match without
/// any document lookup.
struct CompiledQuery {
  /// Never null; EmptyIterator when the tree cannot match.
  std::unique_ptr<DocIterator> root;

  /// Non-empty iff the tree is a pure conjunction of terms *and* every
  /// term is indexed: the distinct TermIterators, rarest-first, owned by
  /// `root` and aligned at root->Doc() whenever root is Valid().
  std::vector<const TermIterator*> aligned_terms;
};

/// Compiles `node` against `index`. Duplicate term children of an And are
/// deduplicated; children of an And run rarest-first; unindexed terms
/// compile to EmptyIterator (and erase a surrounding And).
CompiledQuery CompileQuery(const InvertedIndex& index, const QueryNode& node,
                           OrStrategy strategy = OrStrategy::kAdaptive);

/// Executes `node` and returns every matching document ascending, with
/// per-position frequencies for `freq_terms` (the scoring inputs, in
/// query-term order). Conjunctions read frequencies from the aligned
/// iterators; other shapes fall back to the document's term map.
std::vector<MatchedDoc> ExecuteMatch(
    const InvertedIndex& index, const QueryNode& node,
    std::span<const TermId> freq_terms,
    OrStrategy strategy = OrStrategy::kAdaptive);

/// Number of matching documents, without materializing anything.
size_t ExecuteCount(const InvertedIndex& index, const QueryNode& node,
                    OrStrategy strategy = OrStrategy::kAdaptive);

/// Local ids of every matching document, ascending.
std::vector<uint32_t> ExecuteLocals(
    const InvertedIndex& index, const QueryNode& node,
    OrStrategy strategy = OrStrategy::kAdaptive);

}  // namespace asup

#endif  // ASUP_ENGINE_DOC_ITERATOR_H_
