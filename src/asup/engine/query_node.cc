#include "asup/engine/query_node.h"

#include <algorithm>
#include <utility>

#include "asup/util/check.h"

namespace asup {

QueryNode QueryNode::Term(TermId term) {
  QueryNode node;
  node.kind_ = Kind::kTerm;
  node.term_ = term;
  return node;
}

QueryNode QueryNode::And(std::vector<QueryNode> children) {
  ASUP_CHECK(!children.empty());
  QueryNode node;
  node.kind_ = Kind::kAnd;
  node.children_ = std::move(children);
  return node;
}

QueryNode QueryNode::Or(std::vector<QueryNode> children) {
  ASUP_CHECK(!children.empty());
  QueryNode node;
  node.kind_ = Kind::kOr;
  node.children_ = std::move(children);
  return node;
}

QueryNode QueryNode::Not(QueryNode child) {
  QueryNode node;
  node.kind_ = Kind::kNot;
  node.children_.push_back(std::move(child));
  return node;
}

QueryNode QueryNode::MakeEmpty() { return QueryNode(); }

QueryNode QueryNode::FromKeywords(const KeywordQuery& query) {
  const std::vector<TermId>& terms = query.terms();
  if (terms.empty()) return MakeEmpty();  // unknown word or empty query
  if (terms.size() == 1) return Term(terms.front());
  std::vector<QueryNode> children;
  children.reserve(terms.size());
  for (TermId term : terms) children.push_back(Term(term));
  return And(std::move(children));
}

namespace {

void CollectInto(const QueryNode& node, std::vector<TermId>& out) {
  if (node.kind() == QueryNode::Kind::kTerm) {
    out.push_back(node.term());
    return;
  }
  for (const QueryNode& child : node.children()) CollectInto(child, out);
}

}  // namespace

std::vector<TermId> QueryNode::CollectTerms() const {
  std::vector<TermId> terms;
  CollectInto(*this, terms);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

}  // namespace asup
