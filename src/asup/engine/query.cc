#include "asup/engine/query.h"

#include <algorithm>

#include "asup/text/tokenizer.h"
#include "asup/util/hash.h"

namespace asup {

namespace {

std::string Lowercase(std::string_view word) {
  std::string out(word);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

KeywordQuery KeywordQuery::FromWords(const Vocabulary& vocabulary,
                                     const std::vector<std::string>& words) {
  KeywordQuery query;
  std::vector<std::string> canonical_words;
  canonical_words.reserve(words.size());
  for (const auto& raw : words) {
    canonical_words.push_back(Lowercase(raw));
  }
  std::sort(canonical_words.begin(), canonical_words.end());
  canonical_words.erase(
      std::unique(canonical_words.begin(), canonical_words.end()),
      canonical_words.end());

  for (const auto& word : canonical_words) {
    auto id = vocabulary.Lookup(word);
    if (id.has_value()) {
      query.terms_.push_back(*id);
    } else {
      query.has_unknown_word_ = true;
    }
    if (!query.canonical_.empty()) query.canonical_.push_back(' ');
    query.canonical_ += word;
  }
  if (query.has_unknown_word_) {
    // Conjunctive semantics: an unknown word means nothing matches; drop
    // the term list so the engine can short-circuit to underflow.
    query.terms_.clear();
  }
  std::sort(query.terms_.begin(), query.terms_.end());
  query.hash_ = HashString(query.canonical_);
  return query;
}

KeywordQuery KeywordQuery::FromTerms(const Vocabulary& vocabulary,
                                     const std::vector<TermId>& terms) {
  std::vector<std::string> words;
  words.reserve(terms.size());
  for (TermId term : terms) words.push_back(vocabulary.WordOf(term));
  return FromWords(vocabulary, words);
}

KeywordQuery KeywordQuery::Parse(const Vocabulary& vocabulary,
                                 std::string_view text) {
  return FromWords(vocabulary, Tokenize(text));
}

}  // namespace asup
