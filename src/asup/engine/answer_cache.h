#ifndef ASUP_ENGINE_ANSWER_CACHE_H_
#define ASUP_ENGINE_ANSWER_CACHE_H_

#include <condition_variable>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asup/engine/search_service.h"
#include "asup/util/sharded_mutex.h"

namespace asup {

/// A sharded, thread-safe memo table from canonical query strings to final
/// answers.
///
/// This cache *is* the determinism guarantee of Section 2.1 under
/// concurrency: the first caller to claim a key computes the answer while
/// every concurrent caller of the same query blocks until the answer is
/// published — so a query observably has exactly one answer, regardless of
/// how racing threads interleave. Keys are hash-partitioned across shards
/// (see ShardedMutex), so distinct queries rarely contend.
class AnswerCache {
 public:
  explicit AnswerCache(size_t min_shards = 16)
      : mutexes_(min_shards), shards_(mutexes_.num_shards()) {}

  enum class Claim {
    /// The answer was already computed (or became ready while waiting);
    /// it has been copied to the out parameter.
    kHit,
    /// The caller owns the key and must call Publish (or Abandon).
    kOwned,
  };

  /// Looks the key up; claims it if absent. Blocks while another thread
  /// holds the claim.
  Claim LookupOrClaim(const std::string& key, SearchResult* out);

  /// Completes a claim: stores the answer and wakes waiters.
  void Publish(const std::string& key, const SearchResult& result);

  /// Releases a claim without an answer (compute failed); wakes waiters,
  /// which then race to re-claim.
  void Abandon(const std::string& key);

  /// True if a *ready* answer is cached. Never blocks, never claims.
  bool Contains(const std::string& key) const;

  /// Number of ready answers.
  size_t size() const;

  /// Drops everything, including in-flight claims. Callers must be
  /// quiesced (used by state persistence).
  void Clear();

  /// Inserts a ready answer directly (state restore; callers quiesced).
  void Insert(const std::string& key, SearchResult result);

  /// Copies all ready entries (state save; callers quiesced).
  std::vector<std::pair<std::string, SearchResult>> Snapshot() const;

 private:
  struct Entry {
    SearchResult result;
    bool ready = false;
  };

  struct Shard {
    std::unordered_map<std::string, Entry> map;
    std::condition_variable ready_cv;
  };

  size_t ShardIndexOf(const std::string& key) const {
    return mutexes_.ShardOf(HashString(key));
  }

  mutable ShardedMutex mutexes_;
  mutable std::vector<Shard> shards_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_ANSWER_CACHE_H_
