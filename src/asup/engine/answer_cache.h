#ifndef ASUP_ENGINE_ANSWER_CACHE_H_
#define ASUP_ENGINE_ANSWER_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asup/engine/search_service.h"
#include "asup/util/annotated_mutex.h"
#include "asup/util/hash.h"

namespace asup {

/// A sharded, thread-safe memo table from canonical query strings to final
/// answers.
///
/// This cache *is* the determinism guarantee of Section 2.1 under
/// concurrency: the first caller to claim a key computes the answer while
/// every concurrent caller of the same query blocks until the answer is
/// published — so a query observably has exactly one answer, regardless of
/// how racing threads interleave. Keys are hash-partitioned across a
/// power-of-two shard array, so distinct queries rarely contend.
///
/// Lock discipline (compiler-checked, DESIGN.md §14): each shard embeds its
/// own `Mutex` and its map is `ASUP_GUARDED_BY` it — the annotation needs a
/// statically nameable capability, which is why the mutex lives inside the
/// shard struct rather than in a parallel ShardedMutex table.
class AnswerCache {
 public:
  explicit AnswerCache(size_t min_shards = 16);

  enum class Claim {
    /// The answer was already computed (or became ready while waiting);
    /// it has been copied to the out parameter.
    kHit,
    /// The caller owns the key and must call Publish (or Abandon).
    kOwned,
  };

  /// Looks the key up; claims it if absent. Blocks while another thread
  /// holds the claim.
  Claim LookupOrClaim(const std::string& key, SearchResult* out);

  /// Completes a claim: stores the answer and wakes waiters.
  void Publish(const std::string& key, const SearchResult& result);

  /// Releases a claim without an answer (compute failed); wakes waiters,
  /// which then race to re-claim.
  void Abandon(const std::string& key);

  /// True if a *ready* answer is cached. Never blocks, never claims.
  bool Contains(const std::string& key) const;

  /// Number of ready answers.
  size_t size() const;

  /// Drops everything, including in-flight claims. Callers must be
  /// quiesced (used by state persistence).
  void Clear();

  /// Inserts a ready answer directly (state restore; callers quiesced).
  void Insert(const std::string& key, SearchResult result);

  /// Copies all ready entries (state save; callers quiesced).
  std::vector<std::pair<std::string, SearchResult>> Snapshot() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    SearchResult result;
    bool ready = false;
  };

  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<std::string, Entry> map ASUP_GUARDED_BY(mutex);
    std::condition_variable ready_cv;
  };

  Shard& ShardFor(const std::string& key) const {
    return shards_[Mix64(HashString(key)) & shard_mask_];
  }

  uint64_t shard_mask_ = 0;
  mutable std::vector<Shard> shards_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_ANSWER_CACHE_H_
