#include "asup/engine/access_policy.h"

namespace asup {

SearchResult RateLimitedService::Search(const KeywordQuery& query) {
  if (blocked() || queries_this_period_ >= policy_.queries_per_period) {
    if (!blocked()) {
      // Exceeding the quota triggers the block; block_periods == 0 means
      // the client is never served again.
      blocked_periods_remaining_ =
          policy_.block_periods == 0 ? UINT64_MAX : policy_.block_periods;
    }
    ++refused_;
    SearchResult refusal;
    refusal.status = QueryStatus::kDeclined;
    return refusal;
  }
  ++queries_this_period_;
  return base_->Search(query);
}

void RateLimitedService::AdvancePeriod() {
  queries_this_period_ = 0;
  if (blocked_periods_remaining_ > 0) --blocked_periods_remaining_;
}

}  // namespace asup
