#ifndef ASUP_ENGINE_SEARCH_SERVICE_H_
#define ASUP_ENGINE_SEARCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "asup/engine/query.h"
#include "asup/obs/metrics.h"
#include "asup/text/document.h"
#include "asup/util/stopwatch.h"

namespace asup {

/// Outcome of a keyword query at the restrictive top-k interface
/// (Section 2.1 of the paper).
enum class QueryStatus {
  /// No document matched.
  kUnderflow,
  /// All matching documents were returned.
  kValid,
  /// More documents matched than were returned; the interface notifies the
  /// user of the overflow but does not reveal the match count.
  kOverflow,
  /// The interface refused to answer: either the client exhausted its
  /// query quota (Section 2.1's interface limits) or a decline-based
  /// defense rejected the query (Section 5.2's strawman).
  kDeclined,
};

/// One returned document with its (engine-internal) relevance score.
struct ScoredDoc {
  DocId doc = kInvalidDoc;
  double score = 0.0;

  friend bool operator==(const ScoredDoc& a, const ScoredDoc& b) {
    return a.doc == b.doc;
  }
};

/// Answer to a keyword query: at most k documents, ranked by descending
/// score (ties broken by ascending document id), plus the overflow /
/// underflow notification. This is *all* an external user — bona fide or
/// adversarial — observes.
struct SearchResult {
  QueryStatus status = QueryStatus::kUnderflow;
  std::vector<ScoredDoc> docs;

  /// Returns the ranked document ids.
  std::vector<DocId> DocIds() const;

  /// True if `doc` appears in the answer.
  bool Returned(DocId doc) const;
};

/// The public keyword-search interface.
///
/// `PlainSearchEngine`, `AsSimpleEngine` and `AsArbiEngine` all implement
/// this interface, so adversaries and workloads run unchanged against
/// defended and undefended engines.
class SearchService {
 public:
  virtual ~SearchService() = default;

  /// Answers a keyword query. Deterministic: re-issuing the same query
  /// returns the same answer (paper Section 2.1).
  virtual SearchResult Search(const KeywordQuery& query) = 0;

  /// The interface's result limit k.
  virtual size_t k() const = 0;
};

/// Decorator that counts queries sent through it.
///
/// Models the per-user query-number limit of real interfaces and provides
/// the x-axis ("No. of Queries") of every suppression experiment. The
/// counter is atomic, so the decorator may wrap a thread-safe service and
/// be called from concurrent workers. (Internally-synchronized fields like
/// this carry no ASUP_GUARDED_BY — there is no mutex to name; see
/// DESIGN.md §14.)
class QueryCountingService : public SearchService {
 public:
  explicit QueryCountingService(SearchService& base) : base_(&base) {}

  SearchResult Search(const KeywordQuery& query) override {
    queries_issued_.fetch_add(1, std::memory_order_relaxed);
    ASUP_METRIC_COUNT("asup_engine_queries_total", 1);
    return base_->Search(query);
  }

  size_t k() const override { return base_->k(); }

  /// Queries issued since construction or the last Reset().
  uint64_t queries_issued() const {
    return queries_issued_.load(std::memory_order_relaxed);
  }

  void Reset() { queries_issued_.store(0, std::memory_order_relaxed); }

 private:
  SearchService* base_;
  std::atomic<uint64_t> queries_issued_{0};
};

/// Decorator that stamps a fixed client id onto every query it forwards
/// and emits the defense-observability events framing the query: a
/// kQueryIssued (+ per-term kQueryTerm) before the base engine runs and a
/// kAnswerServed after it returns. The inner engines (AS-SIMPLE/AS-ARBI,
/// caches) see the tagged query and attribute their own events to the
/// same client, so one decorator per client is the entire per-client
/// observability plumbing — the shape the multi-tenant front-end will
/// reuse (ROADMAP item 1). Stateless apart from the id; thread-safe iff
/// the wrapped service is.
class ClientTaggingService : public SearchService {
 public:
  ClientTaggingService(SearchService& base, uint64_t client_id)
      : base_(&base), client_id_(client_id) {}

  SearchResult Search(const KeywordQuery& query) override;

  size_t k() const override { return base_->k(); }

  uint64_t client_id() const { return client_id_; }

 private:
  SearchService* base_;
  uint64_t client_id_;
};

/// Decorator that accumulates wall-clock time spent answering queries
/// (Figure 15 reports defended/undefended response-time ratios).
///
/// Counters are atomic so concurrent callers never corrupt them; under
/// concurrency, total_nanos() sums the per-call latencies of all threads
/// (i.e. aggregate work, not elapsed wall time).
class TimingService : public SearchService {
 public:
  explicit TimingService(SearchService& base) : base_(&base) {}

  SearchResult Search(const KeywordQuery& query) override {
    Stopwatch watch;
    SearchResult result = base_->Search(query);
    const int64_t elapsed = watch.ElapsedNanos();
    total_nanos_.fetch_add(elapsed, std::memory_order_relaxed);
    queries_.fetch_add(1, std::memory_order_relaxed);
    ASUP_METRIC_OBSERVE_NANOS("asup_engine_query_latency_ns", elapsed);
    return result;
  }

  size_t k() const override { return base_->k(); }

  int64_t total_nanos() const {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }

  /// Mean per-query latency in nanoseconds (0 if no queries).
  double MeanNanos() const {
    const uint64_t queries = this->queries();
    return queries == 0 ? 0.0
                        : static_cast<double>(total_nanos()) /
                              static_cast<double>(queries);
  }

  void Reset() {
    total_nanos_.store(0, std::memory_order_relaxed);
    queries_.store(0, std::memory_order_relaxed);
  }

 private:
  SearchService* base_;
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<uint64_t> queries_{0};
};

}  // namespace asup

#endif  // ASUP_ENGINE_SEARCH_SERVICE_H_
