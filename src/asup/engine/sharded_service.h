#ifndef ASUP_ENGINE_SHARDED_SERVICE_H_
#define ASUP_ENGINE_SHARDED_SERVICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "asup/engine/scoring.h"
#include "asup/engine/search_engine.h"
#include "asup/index/sharded_index.h"
#include "asup/util/thread_pool.h"

namespace asup {

/// Scatter-gather query engine over a ShardedInvertedIndex: fans the match
/// + local top-k scoring phase out across shards (on a ThreadPool when one
/// is attached, serially otherwise), then merges the per-shard candidates
/// into the exact global ranking before anything downstream sees them.
///
/// Exactness, not approximation: every shard scores its matches with the
/// *global* ScoringContext (corpus-wide document count, average length and
/// per-term document frequencies), and the ranking order RankBefore is a
/// strict total order, so a shard's local top-`limit` superset of the
/// global top-`limit` merges into bitwise the same answer a single-index
/// PlainSearchEngine produces. The per-shard work writes to preallocated
/// per-shard slots and reads only immutable state, so results are
/// independent of worker scheduling — with or without a pool, with any
/// shard count.
///
/// Suppression (AS-SIMPLE / AS-ARBI) wraps this engine through the
/// MatchingEngine interface and runs strictly post-merge: μ/γ segment
/// arithmetic, Θ_R and the history store all see one logical corpus of
/// NumDocuments() documents, exactly as the paper assumes (DESIGN.md §12).
class ShardedSearchService : public MatchingEngine {
 public:
  /// Builds the service over `index` (borrowed). `pool` (borrowed,
  /// optional) parallelizes the scatter phase; null means a serial
  /// fan-out with identical results. `scorer` defaults to BM25.
  ShardedSearchService(const ShardedInvertedIndex& index, size_t k,
                       ThreadPool* pool = nullptr,
                       std::unique_ptr<ScoringFunction> scorer = nullptr);

  size_t k() const override { return k_; }

  RankedMatches TopMatches(const KeywordQuery& query,
                           size_t limit) const override;

  size_t MatchCount(const KeywordQuery& query) const override;

  std::vector<DocId> MatchIds(const KeywordQuery& query) const override;

  std::vector<ScoredDoc> RankDocs(const KeywordQuery& query,
                                  std::span<const DocId> docs) const override;

  size_t NumDocuments() const override { return index_->NumDocuments(); }
  uint32_t LocalOf(DocId id) const override { return index_->LocalOf(id); }
  DocId LocalToId(uint32_t local) const override {
    return index_->LocalToId(local);
  }
  const Corpus& corpus() const override { return index_->corpus(); }

  const ShardedInvertedIndex& index() const { return *index_; }
  const ScoringFunction& scorer() const { return *scorer_; }

 private:
  /// Runs `body(s)` for every shard s — on the pool when attached (the
  /// calling thread participates), serially otherwise. `body` must only
  /// write to shard-`s`-owned slots.
  void ForEachShard(const std::function<void(size_t)>& body) const;

  /// The global scoring inputs of one query (see ScoringContext).
  ScoringContext MakeContext(std::span<const TermId> terms) const;

  const ShardedInvertedIndex* index_;
  size_t k_;
  ThreadPool* pool_;
  std::unique_ptr<ScoringFunction> scorer_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SHARDED_SERVICE_H_
