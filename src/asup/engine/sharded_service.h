#ifndef ASUP_ENGINE_SHARDED_SERVICE_H_
#define ASUP_ENGINE_SHARDED_SERVICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "asup/engine/scoring.h"
#include "asup/engine/search_engine.h"
#include "asup/index/corpus_manager.h"
#include "asup/index/sharded_index.h"
#include "asup/util/thread_pool.h"

namespace asup {

/// Scatter-gather query engine over a ShardedInvertedIndex: fans the match
/// + local top-k scoring phase out across shards (on a ThreadPool when one
/// is attached, serially otherwise), then merges the per-shard candidates
/// into the exact global ranking before anything downstream sees them.
///
/// Exactness, not approximation: every shard scores its matches with the
/// *global* ScoringContext (corpus-wide document count, average length and
/// per-term document frequencies), and the ranking order RankBefore is a
/// strict total order, so a shard's local top-`limit` superset of the
/// global top-`limit` merges into bitwise the same answer a single-index
/// PlainSearchEngine produces. The per-shard work writes to preallocated
/// per-shard slots and reads only immutable state, so results are
/// independent of worker scheduling — with or without a pool, with any
/// shard count.
///
/// Suppression (AS-SIMPLE / AS-ARBI) wraps this engine through the
/// MatchingEngine interface and runs strictly post-merge: μ/γ segment
/// arithmetic, Θ_R and the history store all see one logical corpus of
/// NumDocuments() documents, exactly as the paper assumes (DESIGN.md §12).
///
/// Epoch model: like PlainSearchEngine, the service either borrows one
/// static sharded index (epoch 0) or follows a CorpusManager configured
/// with shards; every query pins one epoch's sharded view.
class ShardedSearchService : public MatchingEngine {
 public:
  /// Builds the service over a static `index` (borrowed). `pool`
  /// (borrowed, optional) parallelizes the scatter phase; null means a
  /// serial fan-out with identical results. `scorer` defaults to BM25.
  ShardedSearchService(const ShardedInvertedIndex& index, size_t k,
                       ThreadPool* pool = nullptr,
                       std::unique_ptr<ScoringFunction> scorer = nullptr);

  /// Builds the service over `manager`'s epoch chain (borrowed; must be
  /// configured with num_shards >= 1 so every snapshot carries a sharded
  /// view).
  ShardedSearchService(const CorpusManager& manager, size_t k,
                       ThreadPool* pool = nullptr,
                       std::unique_ptr<ScoringFunction> scorer = nullptr);

  size_t k() const override { return k_; }

  SnapshotHandle PinSnapshot() const override {
    return manager_ != nullptr ? manager_->Current() : static_snapshot_;
  }

  RankedMatches TopMatchesNodeIn(const CorpusSnapshot& snapshot,
                                 const QueryNode& node,
                                 std::span<const TermId> score_terms,
                                 size_t limit) const override;

  size_t MatchCountNodeIn(const CorpusSnapshot& snapshot,
                          const QueryNode& node) const override;

  std::vector<DocId> MatchIdsNodeIn(const CorpusSnapshot& snapshot,
                                    const QueryNode& node) const override;

  std::vector<ScoredDoc> RankDocsIn(const CorpusSnapshot& snapshot,
                                    const KeywordQuery& query,
                                    std::span<const DocId> docs)
      const override;

  /// The current epoch's sharded index (lifetime caveat as corpus()).
  const ShardedInvertedIndex& index() const {
    return PinSnapshot()->sharded();
  }
  const ScoringFunction& scorer() const { return *scorer_; }

 private:
  /// Runs `body(s)` for every shard s — on the pool when attached (the
  /// calling thread participates), serially otherwise. `body` must only
  /// write to shard-`s`-owned slots.
  void ForEachShard(size_t shards,
                    const std::function<void(size_t)>& body) const;

  /// The global scoring inputs of one query (see ScoringContext).
  ScoringContext MakeContext(const ShardedInvertedIndex& index,
                             std::span<const TermId> terms) const;

  const CorpusManager* manager_ = nullptr;
  SnapshotHandle static_snapshot_;
  size_t k_;
  ThreadPool* pool_;
  std::unique_ptr<ScoringFunction> scorer_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SHARDED_SERVICE_H_
