#ifndef ASUP_ENGINE_SEARCH_ENGINE_H_
#define ASUP_ENGINE_SEARCH_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "asup/engine/query_node.h"
#include "asup/engine/scoring.h"
#include "asup/engine/search_service.h"
#include "asup/index/corpus_manager.h"
#include "asup/index/inverted_index.h"

namespace asup {

/// Privileged (server-side) view of a query's matches: the full ranking the
/// suppression layer needs — paper notation M(q) and |q| — which the public
/// interface never exposes.
struct RankedMatches {
  /// Top `limit` matching documents, ranked by descending score with ties
  /// broken by ascending document id.
  std::vector<ScoredDoc> docs;

  /// Total number of matching documents, |Sel(q)|.
  size_t total_matches = 0;
};

/// The engine's deterministic ranking order: descending score, ties broken
/// by ascending doc id. A strict total order over any answer set (document
/// ids are unique), which is what makes top-k selection — and the sharded
/// engine's scatter-gather merge — exact rather than merely equivalent.
bool RankBefore(const ScoredDoc& a, const ScoredDoc& b);

/// Privileged (server-side) engine interface the suppression layer builds
/// on: deterministic conjunctive matching and ranking over *one logical
/// corpus*, plus the dense document-id mapping Θ_R and state persistence
/// require. Implemented by PlainSearchEngine (a single InvertedIndex) and
/// ShardedSearchService (scatter-gather over a ShardedInvertedIndex); the
/// AS-SIMPLE / AS-ARBI engines run unchanged on either, because both
/// present identical answers, match counts, and local-id assignments.
///
/// Epoch model: the engine resolves a `CorpusSnapshot` per query. The
/// `*In(snapshot, ...)` virtuals answer against an explicit pinned epoch —
/// what the suppression engines use, so one query reads one consistent
/// corpus even while a CorpusManager publishes successors concurrently.
/// The snapshot-free names are non-virtual conveniences that pin the
/// current epoch per call; they keep every pre-epoch caller (attacks,
/// workloads, evaluation) source compatible.
class MatchingEngine : public SearchService {
 public:
  /// Public interface: TopMatches(k) mapped to the restrictive
  /// underflow/valid/overflow answer model of Section 2.1. Pins one epoch
  /// for the whole query.
  SearchResult Search(const KeywordQuery& query) override;

  /// Pins the engine's current epoch. Wait-free; holding the handle keeps
  /// the epoch's corpus and indexes alive across concurrent publishes.
  virtual SnapshotHandle PinSnapshot() const = 0;

  /// Epoch number of the current snapshot (0 for static deployments).
  uint64_t CurrentEpoch() const { return PinSnapshot()->epoch(); }

  // Boolean-tree entry points — the layer every match actually executes
  // through (engine/doc_iterator.h). Implementations compile `node` into
  // an iterator tree per index (per shard, for the sharded service).
  // `score_terms` are the scoring inputs (per-term frequencies and
  // document frequencies), in query-term order; node.CollectTerms() is the
  // natural choice for free-form trees.

  /// Server-side, against a pinned epoch: the top `limit` matches of a
  /// boolean query tree and the total match count. `snapshot` must come
  /// from this engine's PinSnapshot (now or earlier).
  virtual RankedMatches TopMatchesNodeIn(const CorpusSnapshot& snapshot,
                                         const QueryNode& node,
                                         std::span<const TermId> score_terms,
                                         size_t limit) const = 0;

  /// Server-side, against a pinned epoch: the tree's match count.
  virtual size_t MatchCountNodeIn(const CorpusSnapshot& snapshot,
                                  const QueryNode& node) const = 0;

  /// Server-side, against a pinned epoch: ids of all matching documents,
  /// ascending.
  virtual std::vector<DocId> MatchIdsNodeIn(const CorpusSnapshot& snapshot,
                                            const QueryNode& node) const = 0;

  // Conjunctive KeywordQuery entry points — what the suppression layer,
  // attacks and workloads call. Non-virtual: each lowers the query to its
  // And-of-terms tree (QueryNode::FromKeywords) and executes it through
  // the node virtuals above, so the conjunctive path and the boolean path
  // are one code path and stay bitwise identical.

  /// Server-side, against a pinned epoch: the top `limit` matches and the
  /// total match count — paper notation M(q) and |Sel(q)|.
  RankedMatches TopMatchesIn(const CorpusSnapshot& snapshot,
                             const KeywordQuery& query, size_t limit) const;

  /// Server-side, against a pinned epoch: |Sel(q)|.
  size_t MatchCountIn(const CorpusSnapshot& snapshot,
                      const KeywordQuery& query) const;

  /// Server-side, against a pinned epoch: ids of all matching documents,
  /// ascending.
  std::vector<DocId> MatchIdsIn(const CorpusSnapshot& snapshot,
                                const KeywordQuery& query) const;

  /// Server-side, against a pinned epoch: scores the given documents (each
  /// must match the query and be in the snapshot's corpus) and returns
  /// them ranked exactly as Search would. Used by AS-ARBI's virtual query
  /// processing to rank an answer composed from historic results.
  virtual std::vector<ScoredDoc> RankDocsIn(const CorpusSnapshot& snapshot,
                                            const KeywordQuery& query,
                                            std::span<const DocId> docs)
      const = 0;

  // Snapshot-free conveniences: each call pins the current epoch. Across
  // two calls the epoch may change; epoch-sensitive callers (the
  // suppression engines) pin once and use the *In forms.

  RankedMatches TopMatches(const KeywordQuery& query, size_t limit) const {
    return TopMatchesIn(*PinSnapshot(), query, limit);
  }
  size_t MatchCount(const KeywordQuery& query) const {
    return MatchCountIn(*PinSnapshot(), query);
  }
  std::vector<DocId> MatchIds(const KeywordQuery& query) const {
    return MatchIdsIn(*PinSnapshot(), query);
  }
  RankedMatches TopMatchesNode(const QueryNode& node,
                               std::span<const TermId> score_terms,
                               size_t limit) const {
    return TopMatchesNodeIn(*PinSnapshot(), node, score_terms, limit);
  }
  size_t MatchCountNode(const QueryNode& node) const {
    return MatchCountNodeIn(*PinSnapshot(), node);
  }
  std::vector<DocId> MatchIdsNode(const QueryNode& node) const {
    return MatchIdsNodeIn(*PinSnapshot(), node);
  }
  std::vector<ScoredDoc> RankDocs(const KeywordQuery& query,
                                  std::span<const DocId> docs) const {
    return RankDocsIn(*PinSnapshot(), query, docs);
  }
  size_t NumDocuments() const { return PinSnapshot()->NumDocuments(); }
  uint32_t LocalOf(DocId id) const { return PinSnapshot()->LocalOf(id); }
  DocId LocalToId(uint32_t local) const {
    return PinSnapshot()->LocalToId(local);
  }

  /// The current epoch's corpus. The reference stays valid while that
  /// epoch is reachable — indefinitely for static deployments; until the
  /// epoch is superseded *and* every pinned handle dropped for managed
  /// ones. Epoch-sensitive callers should hold a PinSnapshot() handle.
  const Corpus& corpus() const { return PinSnapshot()->corpus(); }
};

/// The undefended enterprise search engine substrate: deterministic
/// conjunctive keyword search with top-k truncation over an inverted index.
///
/// Plays the role of Windows Search 4.0 in the paper's experiments. The
/// public `Search` obeys the restrictive interface model of Section 2.1;
/// the suppression engines are constructed *around* a MatchingEngine and
/// use its privileged `TopMatches` / `MatchIds` accessors.
class PlainSearchEngine : public MatchingEngine {
 public:
  /// Builds an engine over a static `index` (borrowed; must outlive the
  /// engine) as a never-changing epoch-0 snapshot. `scorer` defaults to
  /// BM25. `k` is the interface's result limit.
  PlainSearchEngine(const InvertedIndex& index, size_t k,
                    std::unique_ptr<ScoringFunction> scorer = nullptr);

  /// Builds an engine over `manager`'s epoch chain (borrowed; must outlive
  /// the engine): every query pins the epoch current when it starts.
  PlainSearchEngine(const CorpusManager& manager, size_t k,
                    std::unique_ptr<ScoringFunction> scorer = nullptr);

  size_t k() const override { return k_; }

  SnapshotHandle PinSnapshot() const override {
    return manager_ != nullptr ? manager_->Current() : static_snapshot_;
  }

  RankedMatches TopMatchesNodeIn(const CorpusSnapshot& snapshot,
                                 const QueryNode& node,
                                 std::span<const TermId> score_terms,
                                 size_t limit) const override;

  size_t MatchCountNodeIn(const CorpusSnapshot& snapshot,
                          const QueryNode& node) const override;

  std::vector<DocId> MatchIdsNodeIn(const CorpusSnapshot& snapshot,
                                    const QueryNode& node) const override;

  std::vector<ScoredDoc> RankDocsIn(const CorpusSnapshot& snapshot,
                                    const KeywordQuery& query,
                                    std::span<const DocId> docs)
      const override;

  /// The current epoch's single index (lifetime caveat as corpus()).
  const InvertedIndex& index() const { return PinSnapshot()->index(); }
  const ScoringFunction& scorer() const { return *scorer_; }

 private:
  /// Exactly one of these is set: a managed epoch chain or a pinned
  /// epoch-0 snapshot borrowing the caller's static index.
  const CorpusManager* manager_ = nullptr;
  SnapshotHandle static_snapshot_;
  size_t k_;
  std::unique_ptr<ScoringFunction> scorer_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SEARCH_ENGINE_H_
