#ifndef ASUP_ENGINE_SEARCH_ENGINE_H_
#define ASUP_ENGINE_SEARCH_ENGINE_H_

#include <memory>
#include <vector>

#include "asup/engine/scoring.h"
#include "asup/engine/search_service.h"
#include "asup/index/inverted_index.h"

namespace asup {

/// Privileged (server-side) view of a query's matches: the full ranking the
/// suppression layer needs — paper notation M(q) and |q| — which the public
/// interface never exposes.
struct RankedMatches {
  /// Top `limit` matching documents, ranked by descending score with ties
  /// broken by ascending document id.
  std::vector<ScoredDoc> docs;

  /// Total number of matching documents, |Sel(q)|.
  size_t total_matches = 0;
};

/// The engine's deterministic ranking order: descending score, ties broken
/// by ascending doc id. A strict total order over any answer set (document
/// ids are unique), which is what makes top-k selection — and the sharded
/// engine's scatter-gather merge — exact rather than merely equivalent.
bool RankBefore(const ScoredDoc& a, const ScoredDoc& b);

/// Privileged (server-side) engine interface the suppression layer builds
/// on: deterministic conjunctive matching and ranking over *one logical
/// corpus*, plus the dense document-id mapping Θ_R and state persistence
/// require. Implemented by PlainSearchEngine (a single InvertedIndex) and
/// ShardedSearchService (scatter-gather over a ShardedInvertedIndex); the
/// AS-SIMPLE / AS-ARBI engines run unchanged on either, because both
/// present identical answers, match counts, and local-id assignments.
class MatchingEngine : public SearchService {
 public:
  /// Public interface: TopMatches(k) mapped to the restrictive
  /// underflow/valid/overflow answer model of Section 2.1.
  SearchResult Search(const KeywordQuery& query) override;

  /// Server-side: the top `limit` matches and the total match count.
  virtual RankedMatches TopMatches(const KeywordQuery& query,
                                   size_t limit) const = 0;

  /// Server-side: |Sel(q)|.
  virtual size_t MatchCount(const KeywordQuery& query) const = 0;

  /// Server-side: ids of all matching documents, ascending.
  virtual std::vector<DocId> MatchIds(const KeywordQuery& query) const = 0;

  /// Server-side: scores the given documents (each must match the query and
  /// be in the corpus) and returns them ranked exactly as Search would.
  /// Used by AS-ARBI's virtual query processing to rank an answer composed
  /// from historic results.
  virtual std::vector<ScoredDoc> RankDocs(const KeywordQuery& query,
                                          std::span<const DocId> docs)
      const = 0;

  /// Number of documents in the logical corpus.
  virtual size_t NumDocuments() const = 0;

  /// Dense local id of a document; aborts if the document is not indexed.
  /// Ascending local id == ascending universe DocId, independent of how
  /// the corpus is partitioned into shards.
  virtual uint32_t LocalOf(DocId id) const = 0;

  /// Universe DocId for a dense local id.
  virtual DocId LocalToId(uint32_t local) const = 0;

  /// The indexed corpus.
  virtual const Corpus& corpus() const = 0;
};

/// The undefended enterprise search engine substrate: deterministic
/// conjunctive keyword search with top-k truncation over an inverted index.
///
/// Plays the role of Windows Search 4.0 in the paper's experiments. The
/// public `Search` obeys the restrictive interface model of Section 2.1;
/// the suppression engines are constructed *around* a MatchingEngine and
/// use its privileged `TopMatches` / `MatchIds` accessors.
class PlainSearchEngine : public MatchingEngine {
 public:
  /// Builds an engine over `index` (borrowed; must outlive the engine).
  /// `scorer` defaults to BM25. `k` is the interface's result limit.
  PlainSearchEngine(const InvertedIndex& index, size_t k,
                    std::unique_ptr<ScoringFunction> scorer = nullptr);

  size_t k() const override { return k_; }

  RankedMatches TopMatches(const KeywordQuery& query,
                           size_t limit) const override;

  size_t MatchCount(const KeywordQuery& query) const override;

  std::vector<DocId> MatchIds(const KeywordQuery& query) const override;

  std::vector<ScoredDoc> RankDocs(const KeywordQuery& query,
                                  std::span<const DocId> docs) const override;

  size_t NumDocuments() const override { return index_->NumDocuments(); }
  uint32_t LocalOf(DocId id) const override { return index_->LocalOf(id); }
  DocId LocalToId(uint32_t local) const override {
    return index_->LocalToId(local);
  }
  const Corpus& corpus() const override { return index_->corpus(); }

  const InvertedIndex& index() const { return *index_; }
  const ScoringFunction& scorer() const { return *scorer_; }

 private:
  const InvertedIndex* index_;
  size_t k_;
  std::unique_ptr<ScoringFunction> scorer_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SEARCH_ENGINE_H_
