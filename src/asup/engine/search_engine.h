#ifndef ASUP_ENGINE_SEARCH_ENGINE_H_
#define ASUP_ENGINE_SEARCH_ENGINE_H_

#include <memory>
#include <vector>

#include "asup/engine/scoring.h"
#include "asup/engine/search_service.h"
#include "asup/index/inverted_index.h"

namespace asup {

/// Privileged (server-side) view of a query's matches: the full ranking the
/// suppression layer needs — paper notation M(q) and |q| — which the public
/// interface never exposes.
struct RankedMatches {
  /// Top `limit` matching documents, ranked by descending score with ties
  /// broken by ascending document id.
  std::vector<ScoredDoc> docs;

  /// Total number of matching documents, |Sel(q)|.
  size_t total_matches = 0;
};

/// The undefended enterprise search engine substrate: deterministic
/// conjunctive keyword search with top-k truncation over an inverted index.
///
/// Plays the role of Windows Search 4.0 in the paper's experiments. The
/// public `Search` obeys the restrictive interface model of Section 2.1;
/// the suppression engines are constructed *around* a PlainSearchEngine and
/// use its privileged `TopMatches` / `MatchIds` accessors.
class PlainSearchEngine : public SearchService {
 public:
  /// Builds an engine over `index` (borrowed; must outlive the engine).
  /// `scorer` defaults to BM25. `k` is the interface's result limit.
  PlainSearchEngine(const InvertedIndex& index, size_t k,
                    std::unique_ptr<ScoringFunction> scorer = nullptr);

  SearchResult Search(const KeywordQuery& query) override;

  size_t k() const override { return k_; }

  /// Server-side: the top `limit` matches and the total match count.
  RankedMatches TopMatches(const KeywordQuery& query, size_t limit) const;

  /// Server-side: |Sel(q)|.
  size_t MatchCount(const KeywordQuery& query) const;

  /// Server-side: ids of all matching documents, ascending.
  std::vector<DocId> MatchIds(const KeywordQuery& query) const;

  /// Server-side: scores the given documents (each must match the query and
  /// be in the corpus) and returns them ranked exactly as Search would.
  /// Used by AS-ARBI's virtual query processing to rank an answer composed
  /// from historic results.
  std::vector<ScoredDoc> RankDocs(const KeywordQuery& query,
                                  std::span<const DocId> docs) const;

  const InvertedIndex& index() const { return *index_; }
  const ScoringFunction& scorer() const { return *scorer_; }

 private:
  const InvertedIndex* index_;
  size_t k_;
  std::unique_ptr<ScoringFunction> scorer_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SEARCH_ENGINE_H_
