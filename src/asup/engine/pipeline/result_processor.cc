#include "asup/engine/pipeline/result_processor.h"

#include <algorithm>
#include <map>

#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

RankedMatches QueryContext::TopMatches(size_t limit) const {
  if (node != nullptr) {
    const std::vector<TermId>& terms =
        score_terms != nullptr ? *score_terms : query->terms();
    return snapshot != nullptr
               ? base->TopMatchesNodeIn(*snapshot, *node, terms, limit)
               : base->TopMatchesNode(*node, terms, limit);
  }
  return snapshot != nullptr ? base->TopMatchesIn(*snapshot, *query, limit)
                             : base->TopMatches(*query, limit);
}

size_t QueryContext::MatchCount() const {
  if (node != nullptr) {
    return snapshot != nullptr ? base->MatchCountNodeIn(*snapshot, *node)
                               : base->MatchCountNode(*node);
  }
  return snapshot != nullptr ? base->MatchCountIn(*snapshot, *query)
                             : base->MatchCount(*query);
}

std::vector<DocId> QueryContext::MatchIds() const {
  if (node != nullptr) {
    return snapshot != nullptr ? base->MatchIdsNodeIn(*snapshot, *node)
                               : base->MatchIdsNode(*node);
  }
  return snapshot != nullptr ? base->MatchIdsIn(*snapshot, *query)
                             : base->MatchIds(*query);
}

ProcessorChain& ProcessorChain::Add(
    std::unique_ptr<ResultProcessor> processor) {
  ASUP_CHECK(processor != nullptr);
  stages_.push_back(std::move(processor));
  return *this;
}

void ProcessorChain::Run(QueryContext& context) const {
  ASUP_CHECK(context.query != nullptr);
  ASUP_CHECK(context.base != nullptr);
  for (const auto& stage : stages_) {
    if (context.finished && !stage->RunsWhenFinished()) continue;
    stage->Process(context);
  }
}

void MatchProcessor::Process(QueryContext& context) const {
  if (context.ranked != nullptr) return;
  if (context.prefetch != nullptr) {
    context.ranked = &context.prefetch->ranked;
  } else {
    if (context.trace_match) {
      ASUP_TRACE_STAGE(obs::Stage::kMatch);
      context.owned_ranked = context.TopMatches(context.match_limit);
    } else {
      context.owned_ranked = context.TopMatches(context.match_limit);
    }
    context.ranked = &context.owned_ranked;
  }
  context.match_count = context.ranked->total_matches;
  context.have_match_count = true;
}

void MatchCountProcessor::Process(QueryContext& context) const {
  if (context.have_match_count) return;
  if (context.ranked != nullptr) {
    context.match_count = context.ranked->total_matches;
  } else if (context.prefetch != nullptr) {
    context.match_count = context.prefetch->ranked.total_matches;
  } else if (context.trace_match) {
    ASUP_TRACE_STAGE(obs::Stage::kMatch);
    context.match_count = context.MatchCount();
  } else {
    context.match_count = context.MatchCount();
  }
  context.have_match_count = true;
}

void InterfaceStatusProcessor::Process(QueryContext& context) const {
  ASUP_CHECK(context.ranked != nullptr);
  const RankedMatches& ranked = *context.ranked;
  if (ranked.total_matches == 0) {
    context.result.status = QueryStatus::kUnderflow;
  } else if (ranked.total_matches > context.k) {
    context.result.status = QueryStatus::kOverflow;
  } else {
    context.result.status = QueryStatus::kValid;
  }
  if (context.ranked == &context.owned_ranked) {
    context.result.docs = std::move(context.owned_ranked.docs);
  } else {
    context.result.docs = ranked.docs;
  }
  context.finished = true;
}

void UnderflowGuardProcessor::Process(QueryContext& context) const {
  ASUP_CHECK(context.have_match_count);
  if (context.match_count != 0) return;
  context.result.status = QueryStatus::kUnderflow;
  context.finished = true;
}

void RescoreProcessor::Process(QueryContext& context) const {
  if (context.result.docs.empty()) return;
  // The scoring context needs a single-index view of the corpus; every
  // manager-built snapshot has one (borrowed sharded deployments rescore
  // via their own service instead).
  SnapshotHandle pinned;
  const CorpusSnapshot* snapshot = context.snapshot;
  if (snapshot == nullptr) {
    pinned = context.base->PinSnapshot();
    snapshot = pinned.get();
  }
  if (!snapshot->has_index()) return;
  const InvertedIndex& index = snapshot->index();
  const auto& terms = context.query->terms();
  const ScoringContext scoring = MakeScoringContext(index, terms);
  for (ScoredDoc& entry : context.result.docs) {
    const uint32_t local = index.LocalOf(entry.doc);
    const Document& doc = index.DocAt(local);
    MatchedDoc match;
    match.local_doc = local;
    match.freqs.reserve(terms.size());
    for (TermId term : terms) match.freqs.push_back(doc.FrequencyOf(term));
    entry.score = scorer_->ScoreMatch(
        scoring, static_cast<double>(doc.length()), match);
  }
  std::sort(context.result.docs.begin(), context.result.docs.end(),
            RankBefore);
}

void FacetCountProcessor::Process(QueryContext& context) const {
  if (context.result.docs.empty()) return;
  SnapshotHandle pinned;
  const CorpusSnapshot* snapshot = context.snapshot;
  if (snapshot == nullptr) {
    pinned = context.base->PinSnapshot();
    snapshot = pinned.get();
  }
  const Corpus& corpus = snapshot->corpus();
  std::map<uint64_t, size_t> buckets;
  for (const ScoredDoc& entry : context.result.docs) {
    const uint64_t length = corpus.Get(entry.doc).length();
    ++buckets[(length / bucket_width_) * bucket_width_];
  }
  context.facet_buckets.assign(buckets.begin(), buckets.end());
}

const ProcessorChain& InterfaceProcessorChain() {
  static const ProcessorChain* chain = [] {
    auto* built = new ProcessorChain();
    built->Add(std::make_unique<MatchProcessor>())
        .Add(std::make_unique<InterfaceStatusProcessor>());
    return built;
  }();
  return *chain;
}

}  // namespace asup
