#ifndef ASUP_ENGINE_PIPELINE_RESULT_PROCESSOR_H_
#define ASUP_ENGINE_PIPELINE_RESULT_PROCESSOR_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "asup/engine/parallel_service.h"
#include "asup/engine/scoring.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"

namespace asup {

// Suppress-layer type (suppress/segment.h); the pipeline only carries a
// pointer so the engine layer never depends on the suppression layer.
class IndistinguishableSegment;

/// Per-query state threaded through a ProcessorChain — the RediSearch
/// result_processor.c shape: one mutable context, a fixed sequence of small
/// stages, each reading what upstream stages produced and writing what
/// downstream ones consume. Engines fill the input block (under their own
/// locks, where state is lock-guarded), run their chain, and read `result`
/// back out; no processor touches engine state the engine did not expose
/// here or via an explicit processor constructor argument.
struct QueryContext {
  // --- inputs, set by the engine before Run ---
  const KeywordQuery* query = nullptr;
  /// Boolean query tree overriding `query`'s match semantics: when set,
  /// the match stages compile and execute this tree (through the node
  /// entry points of MatchingEngine) instead of lowering `query`'s
  /// conjunction. Null for every conjunctive caller — `query` then lowers
  /// to its And-of-terms tree inside the engine, same algebra either way.
  const QueryNode* node = nullptr;
  /// Scoring terms for `node` (per-term frequency/df inputs); null means
  /// query->terms(). Ignored when `node` is null.
  const std::vector<TermId>* score_terms = nullptr;
  MatchingEngine* base = nullptr;
  /// The epoch every match/rank call resolves against. Null only for
  /// engines with no epoch pinning (AS-DECLINE), whose match stages then
  /// pin the current epoch per call — exactly the pre-pipeline behavior.
  const CorpusSnapshot* snapshot = nullptr;
  /// The interface's result limit k.
  size_t k = 0;
  /// Cap for the match stage: k for the plain interface, γ·k for the
  /// suppression engines (|M(q)| = min(|Sel(q)|, γ·k)).
  size_t match_limit = 0;
  /// Epoch-checked prefetch from BatchExecutor's deterministic mode, or
  /// null for a live query. The engine clears stale prefetches before Run.
  const QueryPrefetch* prefetch = nullptr;
  /// Whether a live match stage opens an obs span (the defended engines
  /// trace it; the undefended interface path never did).
  bool trace_match = false;
  /// Segment arithmetic of the engine's pinned epoch, when the engine has
  /// one (AS-SIMPLE and everything built on it). Read-only.
  const IndistinguishableSegment* segment = nullptr;

  // --- match-phase state ---
  /// M(q) once a match stage ran: either `prefetch`'s ranked matches or
  /// `owned_ranked` computed live.
  const RankedMatches* ranked = nullptr;
  RankedMatches owned_ranked;
  /// |Sel(q)|.
  size_t match_count = 0;
  bool have_match_count = false;
  /// All matching document ids, ascending (AS-ARBI's cover evaluation).
  const std::vector<DocId>* match_ids = nullptr;
  std::vector<DocId> owned_match_ids;

  // --- answer state ---
  /// Working answer list between the suppression stages.
  std::vector<ScoredDoc> docs;
  SearchResult result;
  /// Set once `result` is final (underflow, decline, virtual answer, or a
  /// status stage ran): later answer-producing stages skip themselves;
  /// stages with RunsWhenFinished() still run.
  bool finished = false;

  // --- observables consumed by the shared recording stage ---
  uint64_t docs_hidden = 0;
  uint64_t docs_reshown = 0;
  uint64_t docs_trimmed = 0;
  /// Emit a kSegmentProbe for this query (|Sel(q)| went through the
  /// suppression path).
  bool probe_ready = false;
  bool cover_found = false;
  size_t cover_answers_used = 0;
  /// Union of the covering historic answers, extracted under the history
  /// lock by the cover stage so the virtual-answer stage needs no lock.
  std::vector<DocId> cover_pool;
  bool virtual_answered = false;
  /// The query fell through to the inner AS-SIMPLE engine (AS-ARBI /
  /// AS-DECLINE chains; gates the history-record stage).
  bool fell_through = false;

  // --- aggregation output (FacetCountProcessor) ---
  /// (bucket lower bound, count) pairs, ascending by bucket.
  std::vector<std::pair<uint64_t, size_t>> facet_buckets;

  // Match helpers dispatching to the pinned epoch when one is set, the
  // current epoch otherwise.
  RankedMatches TopMatches(size_t limit) const;
  size_t MatchCount() const;
  std::vector<DocId> MatchIds() const;
};

/// One pipeline stage. Stateless with respect to the query: all per-query
/// state lives in the QueryContext, so one processor instance may serve
/// concurrent queries (the suppression processors reach engine state that
/// is itself internally synchronized or lock-guarded by the caller).
class ResultProcessor {
 public:
  virtual ~ResultProcessor() = default;

  /// Stable stage label for diagnostics and benches.
  virtual const char* name() const = 0;

  /// Advances the query by one stage.
  virtual void Process(QueryContext& context) const = 0;

  /// Whether the stage still runs after `context.finished` is set
  /// (recording and aggregation stages do; answer-producing ones do not).
  virtual bool RunsWhenFinished() const { return false; }
};

/// An ordered, immutable-after-composition sequence of processors. Engines
/// compose their chain once at construction and Run it per query.
class ProcessorChain {
 public:
  ProcessorChain() = default;
  ProcessorChain(ProcessorChain&&) = default;
  ProcessorChain& operator=(ProcessorChain&&) = default;

  ProcessorChain& Add(std::unique_ptr<ResultProcessor> processor);

  /// Runs every stage in order; stages that do not RunsWhenFinished() are
  /// skipped once `context.finished` is set.
  void Run(QueryContext& context) const;

  size_t size() const { return stages_.size(); }
  const ResultProcessor& stage(size_t i) const { return *stages_[i]; }

 private:
  std::vector<std::unique_ptr<ResultProcessor>> stages_;
};

/// Match stage: ensures M(q) is available — the prefetched ranked matches
/// when usable, a live TopMatches(match_limit) against the pinned epoch
/// otherwise.
class MatchProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "match"; }
  void Process(QueryContext& context) const override;
};

/// Count stage: ensures |Sel(q)| is available without necessarily ranking
/// anything (AS-ARBI and AS-DECLINE gate on the count alone).
class MatchCountProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "match_count"; }
  void Process(QueryContext& context) const override;
};

/// The undefended interface mapping of Section 2.1: underflow when nothing
/// matched, overflow when |Sel(q)| > k, the ranked top-k either way.
class InterfaceStatusProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "interface_status"; }
  void Process(QueryContext& context) const override;
};

/// Finalizes an empty answer when nothing matched; requires a prior count
/// or match stage. Every defended chain starts its stateful half with this.
class UnderflowGuardProcessor : public ResultProcessor {
 public:
  const char* name() const override { return "underflow_guard"; }
  void Process(QueryContext& context) const override;
};

/// Pluggable-ranker stage: re-scores the final answer with an alternate
/// ScoringFunction and re-sorts it in the engine's deterministic order
/// (descending score, ties by ascending doc id). Composing this after a
/// status stage demonstrates that rankers beyond the engine's built-in
/// BM25 drop into the pipeline without touching any engine.
class RescoreProcessor : public ResultProcessor {
 public:
  explicit RescoreProcessor(std::unique_ptr<ScoringFunction> scorer)
      : scorer_(std::move(scorer)) {}

  const char* name() const override { return "rescore"; }
  bool RunsWhenFinished() const override { return true; }
  void Process(QueryContext& context) const override;

 private:
  std::unique_ptr<ScoringFunction> scorer_;
};

/// Aggregation stage: histograms the answer's documents by token length
/// into fixed-width buckets (facet_buckets, ascending). The faceted /
/// aggregation scenario the chain makes cheap: it composes after any
/// status stage, defended or not, and reads only the context.
class FacetCountProcessor : public ResultProcessor {
 public:
  explicit FacetCountProcessor(uint64_t bucket_width)
      : bucket_width_(bucket_width == 0 ? 1 : bucket_width) {}

  const char* name() const override { return "facet_count"; }
  bool RunsWhenFinished() const override { return true; }
  void Process(QueryContext& context) const override;

 private:
  uint64_t bucket_width_;
};

/// The undefended interface chain (match → interface status) shared by
/// every MatchingEngine::Search call.
const ProcessorChain& InterfaceProcessorChain();

}  // namespace asup

#endif  // ASUP_ENGINE_PIPELINE_RESULT_PROCESSOR_H_
