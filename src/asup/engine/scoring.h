#ifndef ASUP_ENGINE_SCORING_H_
#define ASUP_ENGINE_SCORING_H_

#include <memory>
#include <span>

#include "asup/index/inverted_index.h"
#include "asup/text/vocabulary.h"

namespace asup {

/// The engine's ranking function.
///
/// The paper treats the enterprise scoring function as deterministic and
/// proprietary (unknown to external users); any fixed implementation of
/// this interface plays that role. Ties are broken by the engine on
/// ascending document id, so ranking is a strict total order.
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  /// Relevance of a matched document to the query terms. Higher is better.
  virtual double Score(const InvertedIndex& index,
                       std::span<const TermId> terms,
                       const MatchedDoc& match) const = 0;
};

/// Okapi BM25 — the default ranking function of the substrate engine.
class Bm25Scorer : public ScoringFunction {
 public:
  explicit Bm25Scorer(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  double Score(const InvertedIndex& index, std::span<const TermId> terms,
               const MatchedDoc& match) const override;

 private:
  double k1_;
  double b_;
};

/// Classic TF-IDF with log-scaled term frequency; provided as an alternate
/// "proprietary" ranker to demonstrate that the defenses are agnostic to the
/// scoring function.
class TfIdfScorer : public ScoringFunction {
 public:
  double Score(const InvertedIndex& index, std::span<const TermId> terms,
               const MatchedDoc& match) const override;
};

/// Returns the library's default scorer (BM25 with standard parameters).
std::unique_ptr<ScoringFunction> MakeDefaultScorer();

}  // namespace asup

#endif  // ASUP_ENGINE_SCORING_H_
