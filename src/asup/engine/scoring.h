#ifndef ASUP_ENGINE_SCORING_H_
#define ASUP_ENGINE_SCORING_H_

#include <memory>
#include <span>
#include <vector>

#include "asup/index/inverted_index.h"
#include "asup/text/vocabulary.h"

namespace asup {

/// Corpus-wide inputs to scoring for one query, decoupled from any single
/// InvertedIndex so a sharded engine can score shard-local matches against
/// *global* statistics. Scores are bitwise identical to a single-index
/// engine exactly when `stats` and `dfs` describe the whole logical corpus
/// (the scoring arithmetic consumes nothing else that spans shards).
struct ScoringContext {
  /// Statistics of the logical corpus (num_documents, average_doc_length).
  const IndexStats* stats = nullptr;

  /// Document frequency of each query term across the logical corpus, in
  /// query-term order (parallel to MatchedDoc::freqs).
  std::vector<size_t> dfs;
};

/// Builds the scoring context of `terms` against one index (the
/// single-index engine's whole corpus). A sharded engine assembles the
/// same struct from its global stats and summed per-shard frequencies.
ScoringContext MakeScoringContext(const InvertedIndex& index,
                                  std::span<const TermId> terms);

/// The engine's ranking function.
///
/// The paper treats the enterprise scoring function as deterministic and
/// proprietary (unknown to external users); any fixed implementation of
/// this interface plays that role. Ties are broken by the engine on
/// ascending document id, so ranking is a strict total order.
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  /// Relevance of a matched document to the query. Higher is better.
  /// `doc_length` is the matched document's token count; `match.freqs`
  /// holds its per-query-term frequencies.
  virtual double ScoreMatch(const ScoringContext& context, double doc_length,
                            const MatchedDoc& match) const = 0;

  /// Single-index convenience: builds the context from `index` and scores
  /// one match. Callers scoring many matches of one query should build the
  /// context once with MakeScoringContext and call ScoreMatch directly.
  double Score(const InvertedIndex& index, std::span<const TermId> terms,
               const MatchedDoc& match) const;
};

/// Okapi BM25 — the default ranking function of the substrate engine.
class Bm25Scorer : public ScoringFunction {
 public:
  explicit Bm25Scorer(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {}

  double ScoreMatch(const ScoringContext& context, double doc_length,
                    const MatchedDoc& match) const override;

 private:
  double k1_;
  double b_;
};

/// Classic TF-IDF with log-scaled term frequency; provided as an alternate
/// "proprietary" ranker to demonstrate that the defenses are agnostic to the
/// scoring function.
class TfIdfScorer : public ScoringFunction {
 public:
  double ScoreMatch(const ScoringContext& context, double doc_length,
                    const MatchedDoc& match) const override;
};

/// Returns the library's default scorer (BM25 with standard parameters).
std::unique_ptr<ScoringFunction> MakeDefaultScorer();

}  // namespace asup

#endif  // ASUP_ENGINE_SCORING_H_
