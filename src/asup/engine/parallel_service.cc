#include "asup/engine/parallel_service.h"

#include <atomic>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

std::vector<SearchResult> BatchExecutor::ExecuteConcurrent(
    SearchService& service, std::span<const KeywordQuery> queries) const {
  std::vector<SearchResult> results(queries.size());
  pool_->ParallelFor(queries.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = service.Search(queries[i]);
    }
  });
  return results;
}

std::vector<SearchResult> BatchExecutor::ExecuteDeterministic(
    PrefetchableService& service,
    std::span<const KeywordQuery> queries) const {
  // Deduplicate: a query repeated within the batch is prefetched once; its
  // later occurrences hit the engine's answer cache during the commit.
  std::unordered_map<std::string_view, size_t> slot_of;
  std::vector<size_t> slots(queries.size());
  std::vector<const KeywordQuery*> unique_queries;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] =
        slot_of.try_emplace(queries[i].canonical(), unique_queries.size());
    if (inserted) unique_queries.push_back(&queries[i]);
    slots[i] = it->second;
  }

  // Phase 1 (parallel, read-only): match every distinct uncached query
  // against the immutable index. A query skipped because its answer is
  // already cached is a prefetch hit — the batch pays nothing for it.
  std::vector<std::optional<QueryPrefetch>> prefetches(unique_queries.size());
  std::atomic<size_t> prefetch_hits{0};
  {
    ASUP_TRACE_STAGE(obs::Stage::kPrefetch);
    pool_->ParallelFor(unique_queries.size(), [&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        if (!service.HasCachedAnswer(*unique_queries[j])) {
          prefetches[j] = service.PrefetchMatches(*unique_queries[j]);
        } else {
          prefetch_hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  ASUP_METRIC_GAUGE_SET("asup_engine_batch_unique_queries",
                        unique_queries.size(),
                        "Distinct queries in the last deterministic batch");
  ASUP_METRIC_GAUGE_SET("asup_engine_batch_prefetch_hits",
                        prefetch_hits.load(std::memory_order_relaxed),
                        "Batch queries skipped via the answer cache");
  ASUP_METRIC_GAUGE_SET("asup_engine_pool_queue_depth", pool_->QueueDepth(),
                        "Thread-pool tasks awaiting execution");
  ASUP_METRIC_GAUGE_SET("asup_engine_pool_tasks_executed",
                        pool_->TasksExecuted(),
                        "Thread-pool tasks executed since startup");

  // Phase 2 (serial, in input order): run the stateful suppression phase.
  // State evolves exactly as in a serial loop, so answers are bitwise
  // identical to serial execution.
  std::vector<SearchResult> results(queries.size());
  {
    ASUP_TRACE_STAGE(obs::Stage::kCommit);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASUP_CHECK_LT(slots[i], prefetches.size());
      const std::optional<QueryPrefetch>& prefetch = prefetches[slots[i]];
      // A query skipped by the prefetch phase was answer-cached then. The
      // only way the cache can lose that entry before its commit is an
      // epoch migration (a publish landed and the engine moved to the new
      // snapshot), which is query-independent and deterministic — a serial
      // loop would migrate at the same point and recompute the query live,
      // which is exactly what Search does on the cache miss.
      results[i] = prefetch ? service.SearchPrefetched(queries[i], *prefetch)
                            : service.Search(queries[i]);
    }
  }
  return results;
}

}  // namespace asup
