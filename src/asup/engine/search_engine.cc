#include "asup/engine/search_engine.h"

#include <algorithm>

#include "asup/engine/doc_iterator.h"
#include "asup/engine/pipeline/result_processor.h"
#include "asup/util/check.h"

namespace asup {

bool RankBefore(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

SearchResult MatchingEngine::Search(const KeywordQuery& query) {
  // One pin for the whole query: the answer is computed against a single
  // epoch even if a publish lands mid-query.
  const SnapshotHandle snapshot = PinSnapshot();
  QueryContext context;
  context.query = &query;
  context.base = this;
  context.snapshot = snapshot.get();
  context.k = k();
  context.match_limit = k();
  InterfaceProcessorChain().Run(context);
  return std::move(context.result);
}

RankedMatches MatchingEngine::TopMatchesIn(const CorpusSnapshot& snapshot,
                                           const KeywordQuery& query,
                                           size_t limit) const {
  if (query.terms().empty()) return {};  // unknown word or empty query
  return TopMatchesNodeIn(snapshot, QueryNode::FromKeywords(query),
                          query.terms(), limit);
}

size_t MatchingEngine::MatchCountIn(const CorpusSnapshot& snapshot,
                                    const KeywordQuery& query) const {
  if (query.terms().empty()) return 0;
  return MatchCountNodeIn(snapshot, QueryNode::FromKeywords(query));
}

std::vector<DocId> MatchingEngine::MatchIdsIn(const CorpusSnapshot& snapshot,
                                              const KeywordQuery& query)
    const {
  if (query.terms().empty()) return {};
  return MatchIdsNodeIn(snapshot, QueryNode::FromKeywords(query));
}

PlainSearchEngine::PlainSearchEngine(const InvertedIndex& index, size_t k,
                                     std::unique_ptr<ScoringFunction> scorer)
    : static_snapshot_(CorpusSnapshot::Borrow(index)),
      k_(k),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

PlainSearchEngine::PlainSearchEngine(const CorpusManager& manager, size_t k,
                                     std::unique_ptr<ScoringFunction> scorer)
    : manager_(&manager),
      k_(k),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

RankedMatches PlainSearchEngine::TopMatchesNodeIn(
    const CorpusSnapshot& snapshot, const QueryNode& node,
    std::span<const TermId> score_terms, size_t limit) const {
  const InvertedIndex& index = snapshot.index();
  RankedMatches out;
  const std::vector<MatchedDoc> matches =
      ExecuteMatch(index, node, score_terms);
  out.total_matches = matches.size();
  if (matches.empty()) return out;

  const ScoringContext context = MakeScoringContext(index, score_terms);
  std::vector<ScoredDoc> scored;
  scored.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    scored.push_back(
        {index.LocalToId(match.local_doc),
         scorer_->ScoreMatch(
             context,
             static_cast<double>(index.DocAt(match.local_doc).length()),
             match)});
  }
  if (limit < scored.size()) {
    std::nth_element(scored.begin(), scored.begin() + limit, scored.end(),
                     RankBefore);
    scored.resize(limit);
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  out.docs = std::move(scored);
  return out;
}

size_t PlainSearchEngine::MatchCountNodeIn(const CorpusSnapshot& snapshot,
                                           const QueryNode& node) const {
  return ExecuteCount(snapshot.index(), node);
}

std::vector<DocId> PlainSearchEngine::MatchIdsNodeIn(
    const CorpusSnapshot& snapshot, const QueryNode& node) const {
  const InvertedIndex& index = snapshot.index();
  const std::vector<uint32_t> locals = ExecuteLocals(index, node);
  std::vector<DocId> ids;
  ids.reserve(locals.size());
  for (uint32_t local : locals) ids.push_back(index.LocalToId(local));
  return ids;
}

std::vector<ScoredDoc> PlainSearchEngine::RankDocsIn(
    const CorpusSnapshot& snapshot, const KeywordQuery& query,
    std::span<const DocId> docs) const {
  const InvertedIndex& index = snapshot.index();
  const ScoringContext context = MakeScoringContext(index, query.terms());
  std::vector<ScoredDoc> scored;
  scored.reserve(docs.size());
  for (DocId id : docs) {
    const uint32_t local = index.LocalOf(id);
    MatchedDoc match;
    match.local_doc = local;
    const Document& doc = index.DocAt(local);
    match.freqs.reserve(query.terms().size());
    for (TermId term : query.terms()) {
      match.freqs.push_back(doc.FrequencyOf(term));
    }
    scored.push_back(
        {id, scorer_->ScoreMatch(context,
                                 static_cast<double>(doc.length()), match)});
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  return scored;
}

}  // namespace asup
