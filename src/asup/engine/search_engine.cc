#include "asup/engine/search_engine.h"

#include <algorithm>

namespace asup {

bool RankBefore(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

SearchResult MatchingEngine::Search(const KeywordQuery& query) {
  RankedMatches ranked = TopMatches(query, k());
  SearchResult result;
  if (ranked.total_matches == 0) {
    result.status = QueryStatus::kUnderflow;
  } else if (ranked.total_matches > k()) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  result.docs = std::move(ranked.docs);
  return result;
}

PlainSearchEngine::PlainSearchEngine(const InvertedIndex& index, size_t k,
                                     std::unique_ptr<ScoringFunction> scorer)
    : index_(&index),
      k_(k),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

RankedMatches PlainSearchEngine::TopMatches(const KeywordQuery& query,
                                            size_t limit) const {
  RankedMatches out;
  if (query.terms().empty()) return out;  // unknown word or empty query
  const std::vector<MatchedDoc> matches =
      index_->ConjunctiveMatch(query.terms());
  out.total_matches = matches.size();
  if (matches.empty()) return out;

  const ScoringContext context =
      MakeScoringContext(*index_, query.terms());
  std::vector<ScoredDoc> scored;
  scored.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    scored.push_back(
        {index_->LocalToId(match.local_doc),
         scorer_->ScoreMatch(
             context,
             static_cast<double>(index_->DocAt(match.local_doc).length()),
             match)});
  }
  if (limit < scored.size()) {
    std::nth_element(scored.begin(), scored.begin() + limit, scored.end(),
                     RankBefore);
    scored.resize(limit);
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  out.docs = std::move(scored);
  return out;
}

size_t PlainSearchEngine::MatchCount(const KeywordQuery& query) const {
  if (query.terms().empty()) return 0;
  return index_->MatchCount(query.terms());
}

std::vector<DocId> PlainSearchEngine::MatchIds(const KeywordQuery& query) const {
  std::vector<DocId> ids;
  if (query.terms().empty()) return ids;
  const std::vector<MatchedDoc> matches =
      index_->ConjunctiveMatch(query.terms());
  ids.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    ids.push_back(index_->LocalToId(match.local_doc));
  }
  return ids;
}

std::vector<ScoredDoc> PlainSearchEngine::RankDocs(
    const KeywordQuery& query, std::span<const DocId> docs) const {
  const ScoringContext context =
      MakeScoringContext(*index_, query.terms());
  std::vector<ScoredDoc> scored;
  scored.reserve(docs.size());
  for (DocId id : docs) {
    const uint32_t local = index_->LocalOf(id);
    MatchedDoc match;
    match.local_doc = local;
    const Document& doc = index_->DocAt(local);
    match.freqs.reserve(query.terms().size());
    for (TermId term : query.terms()) {
      match.freqs.push_back(doc.FrequencyOf(term));
    }
    scored.push_back(
        {id, scorer_->ScoreMatch(context,
                                 static_cast<double>(doc.length()), match)});
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  return scored;
}

}  // namespace asup
