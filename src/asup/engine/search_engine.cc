#include "asup/engine/search_engine.h"

#include <algorithm>

namespace asup {

namespace {

/// Ranking order: descending score, ties broken by ascending doc id so the
/// engine is fully deterministic.
bool RankBefore(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

}  // namespace

PlainSearchEngine::PlainSearchEngine(const InvertedIndex& index, size_t k,
                                     std::unique_ptr<ScoringFunction> scorer)
    : index_(&index),
      k_(k),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

RankedMatches PlainSearchEngine::TopMatches(const KeywordQuery& query,
                                            size_t limit) const {
  RankedMatches out;
  if (query.terms().empty()) return out;  // unknown word or empty query
  const std::vector<MatchedDoc> matches =
      index_->ConjunctiveMatch(query.terms());
  out.total_matches = matches.size();
  if (matches.empty()) return out;

  std::vector<ScoredDoc> scored;
  scored.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    scored.push_back({index_->LocalToId(match.local_doc),
                      scorer_->Score(*index_, query.terms(), match)});
  }
  if (limit < scored.size()) {
    std::nth_element(scored.begin(), scored.begin() + limit, scored.end(),
                     RankBefore);
    scored.resize(limit);
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  out.docs = std::move(scored);
  return out;
}

SearchResult PlainSearchEngine::Search(const KeywordQuery& query) {
  RankedMatches ranked = TopMatches(query, k_);
  SearchResult result;
  if (ranked.total_matches == 0) {
    result.status = QueryStatus::kUnderflow;
  } else if (ranked.total_matches > k_) {
    result.status = QueryStatus::kOverflow;
  } else {
    result.status = QueryStatus::kValid;
  }
  result.docs = std::move(ranked.docs);
  return result;
}

size_t PlainSearchEngine::MatchCount(const KeywordQuery& query) const {
  if (query.terms().empty()) return 0;
  return index_->MatchCount(query.terms());
}

std::vector<DocId> PlainSearchEngine::MatchIds(const KeywordQuery& query) const {
  std::vector<DocId> ids;
  if (query.terms().empty()) return ids;
  const std::vector<MatchedDoc> matches =
      index_->ConjunctiveMatch(query.terms());
  ids.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    ids.push_back(index_->LocalToId(match.local_doc));
  }
  return ids;
}

std::vector<ScoredDoc> PlainSearchEngine::RankDocs(
    const KeywordQuery& query, std::span<const DocId> docs) const {
  std::vector<ScoredDoc> scored;
  scored.reserve(docs.size());
  for (DocId id : docs) {
    const uint32_t local = index_->LocalOf(id);
    MatchedDoc match;
    match.local_doc = local;
    const Document& doc = index_->DocAt(local);
    match.freqs.reserve(query.terms().size());
    for (TermId term : query.terms()) {
      match.freqs.push_back(doc.FrequencyOf(term));
    }
    scored.push_back({id, scorer_->Score(*index_, query.terms(), match)});
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  return scored;
}

}  // namespace asup
