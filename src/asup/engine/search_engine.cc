#include "asup/engine/search_engine.h"

#include <algorithm>

#include "asup/engine/pipeline/result_processor.h"
#include "asup/util/check.h"

namespace asup {

bool RankBefore(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

SearchResult MatchingEngine::Search(const KeywordQuery& query) {
  // One pin for the whole query: the answer is computed against a single
  // epoch even if a publish lands mid-query.
  const SnapshotHandle snapshot = PinSnapshot();
  QueryContext context;
  context.query = &query;
  context.base = this;
  context.snapshot = snapshot.get();
  context.k = k();
  context.match_limit = k();
  InterfaceProcessorChain().Run(context);
  return std::move(context.result);
}

PlainSearchEngine::PlainSearchEngine(const InvertedIndex& index, size_t k,
                                     std::unique_ptr<ScoringFunction> scorer)
    : static_snapshot_(CorpusSnapshot::Borrow(index)),
      k_(k),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

PlainSearchEngine::PlainSearchEngine(const CorpusManager& manager, size_t k,
                                     std::unique_ptr<ScoringFunction> scorer)
    : manager_(&manager),
      k_(k),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

RankedMatches PlainSearchEngine::TopMatchesIn(const CorpusSnapshot& snapshot,
                                              const KeywordQuery& query,
                                              size_t limit) const {
  const InvertedIndex& index = snapshot.index();
  RankedMatches out;
  if (query.terms().empty()) return out;  // unknown word or empty query
  const std::vector<MatchedDoc> matches =
      index.ConjunctiveMatch(query.terms());
  out.total_matches = matches.size();
  if (matches.empty()) return out;

  const ScoringContext context = MakeScoringContext(index, query.terms());
  std::vector<ScoredDoc> scored;
  scored.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    scored.push_back(
        {index.LocalToId(match.local_doc),
         scorer_->ScoreMatch(
             context,
             static_cast<double>(index.DocAt(match.local_doc).length()),
             match)});
  }
  if (limit < scored.size()) {
    std::nth_element(scored.begin(), scored.begin() + limit, scored.end(),
                     RankBefore);
    scored.resize(limit);
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  out.docs = std::move(scored);
  return out;
}

size_t PlainSearchEngine::MatchCountIn(const CorpusSnapshot& snapshot,
                                       const KeywordQuery& query) const {
  if (query.terms().empty()) return 0;
  return snapshot.index().MatchCount(query.terms());
}

std::vector<DocId> PlainSearchEngine::MatchIdsIn(
    const CorpusSnapshot& snapshot, const KeywordQuery& query) const {
  const InvertedIndex& index = snapshot.index();
  std::vector<DocId> ids;
  if (query.terms().empty()) return ids;
  const std::vector<MatchedDoc> matches =
      index.ConjunctiveMatch(query.terms());
  ids.reserve(matches.size());
  for (const MatchedDoc& match : matches) {
    ids.push_back(index.LocalToId(match.local_doc));
  }
  return ids;
}

std::vector<ScoredDoc> PlainSearchEngine::RankDocsIn(
    const CorpusSnapshot& snapshot, const KeywordQuery& query,
    std::span<const DocId> docs) const {
  const InvertedIndex& index = snapshot.index();
  const ScoringContext context = MakeScoringContext(index, query.terms());
  std::vector<ScoredDoc> scored;
  scored.reserve(docs.size());
  for (DocId id : docs) {
    const uint32_t local = index.LocalOf(id);
    MatchedDoc match;
    match.local_doc = local;
    const Document& doc = index.DocAt(local);
    match.freqs.reserve(query.terms().size());
    for (TermId term : query.terms()) {
      match.freqs.push_back(doc.FrequencyOf(term));
    }
    scored.push_back(
        {id, scorer_->ScoreMatch(context,
                                 static_cast<double>(doc.length()), match)});
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  return scored;
}

}  // namespace asup
