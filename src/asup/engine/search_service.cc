#include "asup/engine/search_service.h"

#include <algorithm>

namespace asup {

std::vector<DocId> SearchResult::DocIds() const {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (const auto& scored : docs) ids.push_back(scored.doc);
  return ids;
}

bool SearchResult::Returned(DocId doc) const {
  return std::any_of(docs.begin(), docs.end(),
                     [doc](const ScoredDoc& s) { return s.doc == doc; });
}

}  // namespace asup
