#include "asup/engine/search_service.h"

#include <algorithm>

#include "asup/obs/event_log.h"

namespace asup {

std::vector<DocId> SearchResult::DocIds() const {
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (const auto& scored : docs) ids.push_back(scored.doc);
  return ids;
}

bool SearchResult::Returned(DocId doc) const {
  return std::any_of(docs.begin(), docs.end(),
                     [doc](const ScoredDoc& s) { return s.doc == doc; });
}

SearchResult ClientTaggingService::Search(const KeywordQuery& query) {
  KeywordQuery tagged = query;
  tagged.set_client_id(client_id_);
  ASUP_EVENT_QUERY_ISSUED(client_id_, tagged.hash(), tagged.terms());
  SearchResult result = base_->Search(tagged);
  ASUP_EVENT_EMIT(kAnswerServed, client_id_, tagged.hash(),
                  result.docs.size(),
                  result.status == QueryStatus::kOverflow ? 1 : 0);
  return result;
}

}  // namespace asup
