#ifndef ASUP_ENGINE_QUERY_NODE_H_
#define ASUP_ENGINE_QUERY_NODE_H_

#include <vector>

#include "asup/engine/query.h"
#include "asup/text/vocabulary.h"

namespace asup {

/// Boolean query AST over vocabulary terms — the language the iterator
/// algebra (engine/doc_iterator.h) compiles and executes. A plain value
/// type: nodes own their children, copy freely, and carry no corpus or
/// index references, so one tree can be compiled against many indexes
/// (each shard of a sharded deployment compiles the same tree).
///
/// Semantics over an index's local doc ids:
///   Term(t)     documents containing t (empty set for an unindexed term)
///   And(c...)   intersection of the children (requires >= 1 child)
///   Or(c...)    union of the children (requires >= 1 child)
///   Not(c)      complement of the child within [0, NumDocuments)
///   Empty()     the empty set
///
/// The conjunctive KeywordQuery of the paper's interface lowers via
/// FromKeywords: one Term node per distinct term, wrapped in And when
/// there are several — so every existing caller's queries execute through
/// the same algebra, bitwise unchanged.
class QueryNode {
 public:
  enum class Kind { kTerm, kAnd, kOr, kNot, kEmpty };

  /// The empty set (also what an unanswerable query lowers to).
  QueryNode() = default;

  static QueryNode Term(TermId term);
  static QueryNode And(std::vector<QueryNode> children);
  static QueryNode Or(std::vector<QueryNode> children);
  static QueryNode Not(QueryNode child);
  static QueryNode MakeEmpty();

  /// Lowers a canonicalized conjunctive query: And of its distinct terms,
  /// a single Term node for one-word queries, Empty when the query is
  /// empty or contains an unknown word (conjunctive semantics: it matches
  /// nothing).
  static QueryNode FromKeywords(const KeywordQuery& query);

  Kind kind() const { return kind_; }

  /// The term id; requires kind() == kTerm.
  TermId term() const { return term_; }

  /// Child nodes; requires a composite kind (kAnd / kOr / kNot).
  const std::vector<QueryNode>& children() const { return children_; }

  /// All term ids appearing anywhere in the tree, sorted and deduplicated
  /// — the default scoring-term set for a boolean query.
  std::vector<TermId> CollectTerms() const;

 private:
  Kind kind_ = Kind::kEmpty;
  TermId term_ = 0;
  std::vector<QueryNode> children_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_QUERY_NODE_H_
