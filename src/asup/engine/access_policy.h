#ifndef ASUP_ENGINE_ACCESS_POLICY_H_
#define ASUP_ENGINE_ACCESS_POLICY_H_

#include <cstdint>

#include "asup/engine/search_service.h"

namespace asup {

/// The interface access limits of Section 2.1: real search APIs cap the
/// number of queries per client per period (e.g., Google's SOAP/JSON APIs
/// allowed 1,000 / 100 queries per user per day) and block clients that
/// exceed them. These limits are what makes the brute-force crawl of
/// Section 2.2 infeasible.
struct AccessPolicy {
  /// Queries a client may issue per period.
  uint64_t queries_per_period = 1000;

  /// Periods after which a blocked client's count resets (1 = quota simply
  /// refills each period; 0 = a client that exceeds the quota once is
  /// blocked forever).
  uint64_t block_periods = 1;
};

/// Per-client decorator enforcing an AccessPolicy. One instance models one
/// client identity (an IP address); queries beyond the quota are refused
/// with status kDeclined until AdvancePeriod() is called often enough.
class RateLimitedService : public SearchService {
 public:
  RateLimitedService(SearchService& base, const AccessPolicy& policy)
      : base_(&base), policy_(policy) {}

  SearchResult Search(const KeywordQuery& query) override;

  size_t k() const override { return base_->k(); }

  /// Advances logical time by one period ("the next day").
  void AdvancePeriod();

  /// Queries issued in the current period.
  uint64_t queries_this_period() const { return queries_this_period_; }

  /// True if the client is currently refused service.
  bool blocked() const { return blocked_periods_remaining_ > 0; }

  /// Total queries refused so far.
  uint64_t refused() const { return refused_; }

 private:
  SearchService* base_;
  AccessPolicy policy_;
  uint64_t queries_this_period_ = 0;
  uint64_t blocked_periods_remaining_ = 0;
  uint64_t refused_ = 0;
};

}  // namespace asup

#endif  // ASUP_ENGINE_ACCESS_POLICY_H_
