#ifndef ASUP_ENGINE_PARALLEL_SERVICE_H_
#define ASUP_ENGINE_PARALLEL_SERVICE_H_

#include <span>
#include <vector>

#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/util/thread_pool.h"

namespace asup {

/// The read-only, state-independent part of answering one query: everything
/// that only touches the immutable inverted index. Computed in parallel by
/// BatchExecutor's deterministic mode, then consumed by the serial commit.
struct QueryPrefetch {
  /// Top matches up to the engine-specific limit (k for the plain engine,
  /// γ·k for AS-SIMPLE) plus the total match count |Sel(q)|.
  RankedMatches ranked;

  /// All matching document ids, ascending. Only filled when the engine's
  /// commit phase can need them (AS-ARBI's cover trigger).
  std::vector<DocId> match_ids;
  bool has_match_ids = false;

  /// The epoch this prefetch was computed against. Null from legacy/static
  /// producers (treated as matching whatever epoch the commit runs in); a
  /// commit in a *different* epoch discards the prefetch and recomputes the
  /// match phase live against its own snapshot.
  SnapshotHandle snapshot;
};

/// A SearchService whose per-query work splits into a thread-safe read-only
/// match phase and a stateful commit phase.
///
/// The contract that makes BatchExecutor::ExecuteDeterministic bitwise
/// equivalent to a serial loop: PrefetchMatches must be a pure function of
/// the query and the immutable index (never of suppression state), and
/// SearchPrefetched(q, PrefetchMatches(q)) must equal Search(q) in every
/// engine state.
class PrefetchableService : public SearchService {
 public:
  /// Read-only match phase; safe to call concurrently.
  virtual QueryPrefetch PrefetchMatches(const KeywordQuery& query) const = 0;

  /// Stateful phase, fed a prefetch of the same query.
  virtual SearchResult SearchPrefetched(const KeywordQuery& query,
                                        const QueryPrefetch& prefetch) = 0;

  /// True if Search(query) would be answered from the deterministic answer
  /// cache, i.e. prefetching it would be wasted work. Never blocks.
  virtual bool HasCachedAnswer(const KeywordQuery& query) const = 0;
};

/// Fans a batch of queries across a thread pool. Results always come back
/// in input order.
class BatchExecutor {
 public:
  explicit BatchExecutor(ThreadPool& pool) : pool_(&pool) {}

  /// Free-running mode: every query is a pool task calling
  /// service.Search. The service must be internally thread-safe. Answers
  /// for a given query are deterministic (cache-backed), but the order in
  /// which *distinct fresh* queries update suppression state follows the
  /// scheduler, so state evolution can differ from a serial run.
  std::vector<SearchResult> ExecuteConcurrent(
      SearchService& service, std::span<const KeywordQuery> queries) const;

  /// Deterministic mode: the index-bound match phase of every distinct
  /// uncached query runs in parallel, then the stateful suppression phase
  /// commits serially in input order. Answers and final suppression state
  /// are bitwise identical to a serial loop over `queries`.
  std::vector<SearchResult> ExecuteDeterministic(
      PrefetchableService& service,
      std::span<const KeywordQuery> queries) const;

 private:
  ThreadPool* pool_;
};

/// Decorator exposing a thread-safe base service as a batch-parallel one.
class ParallelSearchService : public SearchService {
 public:
  /// `base` must be internally thread-safe (the plain engine, the defended
  /// engines, or a SynchronizedService). Both are borrowed.
  ParallelSearchService(SearchService& base, ThreadPool& pool)
      : base_(&base), pool_(&pool) {}

  SearchResult Search(const KeywordQuery& query) override {
    return base_->Search(query);
  }

  size_t k() const override { return base_->k(); }

  /// Answers the whole batch concurrently, results in input order.
  std::vector<SearchResult> SearchBatch(
      std::span<const KeywordQuery> queries) {
    return BatchExecutor(*pool_).ExecuteConcurrent(*base_, queries);
  }

 private:
  SearchService* base_;
  ThreadPool* pool_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_PARALLEL_SERVICE_H_
