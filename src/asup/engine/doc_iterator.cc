#include "asup/engine/doc_iterator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "asup/util/check.h"

namespace asup {

// ---------------------------------------------------------------------------
// AndIterator

AndIterator::AndIterator(std::vector<std::unique_ptr<DocIterator>> children)
    : children_(std::move(children)) {
  ASUP_CHECK(children_.size() >= 2);
  Leapfrog();
}

void AndIterator::Leapfrog() {
  DocIterator& driver = *children_[0];
  while (driver.Valid()) {
    const uint32_t candidate = driver.Doc();
    bool all = true;
    for (size_t i = 1; i < children_.size(); ++i) {
      children_[i]->SkipTo(candidate);
      if (!children_[i]->Valid()) {
        valid_ = false;  // some child exhausted: no more matches anywhere
        return;
      }
      if (children_[i]->Doc() != candidate) {
        // Blocked: the driver leaps to the blocker's doc, not just past
        // the candidate — the whole point of rarest-first leapfrogging.
        all = false;
        driver.SkipTo(children_[i]->Doc());
        break;
      }
    }
    if (all) {
      doc_ = candidate;
      valid_ = true;
      return;
    }
  }
  valid_ = false;
}

void AndIterator::Next() {
  ASUP_DCHECK(valid_);
  children_[0]->Next();
  Leapfrog();
}

void AndIterator::SkipTo(uint32_t target) {
  if (!valid_ || doc_ >= target) return;
  children_[0]->SkipTo(target);
  Leapfrog();
}

size_t AndIterator::CostEstimate() const {
  // The rarest child bounds the intersection.
  return children_[0]->CostEstimate();
}

// ---------------------------------------------------------------------------
// FlatOrIterator

FlatOrIterator::FlatOrIterator(
    std::vector<std::unique_ptr<DocIterator>> children)
    : children_(std::move(children)) {
  ASUP_CHECK(children_.size() >= 2);
  FindMin();
}

void FlatOrIterator::FindMin() {
  valid_ = false;
  uint32_t best = 0;
  for (const auto& child : children_) {
    if (!child->Valid()) continue;
    if (!valid_ || child->Doc() < best) {
      best = child->Doc();
      valid_ = true;
    }
  }
  doc_ = best;
}

void FlatOrIterator::Next() {
  ASUP_DCHECK(valid_);
  for (auto& child : children_) {
    if (child->Valid() && child->Doc() == doc_) child->Next();
  }
  FindMin();
}

void FlatOrIterator::SkipTo(uint32_t target) {
  if (!valid_ || doc_ >= target) return;
  for (auto& child : children_) child->SkipTo(target);
  FindMin();
}

size_t FlatOrIterator::CostEstimate() const {
  size_t total = 0;
  for (const auto& child : children_) {
    const size_t cost = child->CostEstimate();
    if (total > std::numeric_limits<size_t>::max() - cost) {
      return std::numeric_limits<size_t>::max();
    }
    total += cost;
  }
  return total;
}

// ---------------------------------------------------------------------------
// HeapOrIterator

HeapOrIterator::HeapOrIterator(
    std::vector<std::unique_ptr<DocIterator>> children)
    : children_(std::move(children)) {
  ASUP_CHECK(children_.size() >= 2);
  heap_.reserve(children_.size());
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i]->Valid()) heap_.push_back({children_[i]->Doc(), i});
  }
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const Entry& a, const Entry& b) { return a.doc > b.doc; });
}

template <typename Advance>
void HeapOrIterator::ReplaceTop(Advance&& advance) {
  const auto greater = [](const Entry& a, const Entry& b) {
    return a.doc > b.doc;
  };
  std::pop_heap(heap_.begin(), heap_.end(), greater);
  const size_t child = heap_.back().child;
  heap_.pop_back();
  advance(*children_[child]);
  if (children_[child]->Valid()) {
    heap_.push_back({children_[child]->Doc(), child});
    std::push_heap(heap_.begin(), heap_.end(), greater);
  }
}

void HeapOrIterator::Next() {
  ASUP_DCHECK(Valid());
  const uint32_t current = heap_.front().doc;
  while (!heap_.empty() && heap_.front().doc == current) {
    ReplaceTop([](DocIterator& child) { child.Next(); });
  }
}

void HeapOrIterator::SkipTo(uint32_t target) {
  if (heap_.empty() || heap_.front().doc >= target) return;
  while (!heap_.empty() && heap_.front().doc < target) {
    ReplaceTop([target](DocIterator& child) { child.SkipTo(target); });
  }
}

size_t HeapOrIterator::CostEstimate() const {
  size_t total = 0;
  for (const auto& child : children_) {
    const size_t cost = child->CostEstimate();
    if (total > std::numeric_limits<size_t>::max() - cost) {
      return std::numeric_limits<size_t>::max();
    }
    total += cost;
  }
  return total;
}

// ---------------------------------------------------------------------------
// NotIterator

NotIterator::NotIterator(std::unique_ptr<DocIterator> child,
                         uint32_t num_docs)
    : child_(std::move(child)), num_docs_(num_docs) {
  Align();
}

void NotIterator::Align() {
  while (doc_ < num_docs_) {
    child_->SkipTo(doc_);
    if (!child_->Valid() || child_->Doc() != doc_) return;
    ++doc_;
  }
}

void NotIterator::Next() {
  ASUP_DCHECK(Valid());
  ++doc_;
  Align();
}

void NotIterator::SkipTo(uint32_t target) {
  if (!Valid() || doc_ >= target) return;
  doc_ = target;
  Align();
}

// ---------------------------------------------------------------------------
// Compilation

namespace {

std::unique_ptr<DocIterator> MakeEmpty() {
  return std::make_unique<EmptyIterator>();
}

std::unique_ptr<DocIterator> MakeOr(
    std::vector<std::unique_ptr<DocIterator>> children,
    OrStrategy strategy) {
  const bool heap = strategy == OrStrategy::kHeap ||
                    (strategy == OrStrategy::kAdaptive &&
                     children.size() >= kOrHeapCrossoverChildren);
  if (heap) return std::make_unique<HeapOrIterator>(std::move(children));
  return std::make_unique<FlatOrIterator>(std::move(children));
}

/// Rarest-first, stably (equal costs keep child order, for determinism).
void SortByCost(std::vector<std::unique_ptr<DocIterator>>& children) {
  std::stable_sort(children.begin(), children.end(),
                   [](const std::unique_ptr<DocIterator>& a,
                      const std::unique_ptr<DocIterator>& b) {
                     return a->CostEstimate() < b->CostEstimate();
                   });
}

std::unique_ptr<DocIterator> CompileNode(const InvertedIndex& index,
                                         const QueryNode& node,
                                         OrStrategy strategy) {
  switch (node.kind()) {
    case QueryNode::Kind::kTerm: {
      const PostingList& list = index.Postings(node.term());
      if (list.empty()) return MakeEmpty();
      return std::make_unique<TermIterator>(list, node.term());
    }
    case QueryNode::Kind::kAnd: {
      std::vector<std::unique_ptr<DocIterator>> children;
      std::vector<TermId> seen_terms;
      for (const QueryNode& child : node.children()) {
        if (child.kind() == QueryNode::Kind::kTerm) {
          // Duplicate terms intersect to themselves: compile once.
          if (std::find(seen_terms.begin(), seen_terms.end(), child.term()) !=
              seen_terms.end()) {
            continue;
          }
          seen_terms.push_back(child.term());
        }
        std::unique_ptr<DocIterator> compiled =
            CompileNode(index, child, strategy);
        // Iterators only move forward, so an initially-invalid child can
        // never produce a document: the whole intersection is empty.
        if (!compiled->Valid()) return MakeEmpty();
        children.push_back(std::move(compiled));
      }
      if (children.size() == 1) return std::move(children.front());
      SortByCost(children);
      return std::make_unique<AndIterator>(std::move(children));
    }
    case QueryNode::Kind::kOr: {
      std::vector<std::unique_ptr<DocIterator>> children;
      for (const QueryNode& child : node.children()) {
        std::unique_ptr<DocIterator> compiled =
            CompileNode(index, child, strategy);
        // An initially-invalid child contributes nothing to a union.
        if (!compiled->Valid()) continue;
        children.push_back(std::move(compiled));
      }
      if (children.empty()) return MakeEmpty();
      if (children.size() == 1) return std::move(children.front());
      return MakeOr(std::move(children), strategy);
    }
    case QueryNode::Kind::kNot: {
      ASUP_CHECK_EQ(node.children().size(), size_t{1});
      const uint32_t num_docs =
          static_cast<uint32_t>(index.NumDocuments());
      if (num_docs == 0) return MakeEmpty();
      return std::make_unique<NotIterator>(
          CompileNode(index, node.children().front(), strategy), num_docs);
    }
    case QueryNode::Kind::kEmpty:
      return MakeEmpty();
  }
  return MakeEmpty();  // unreachable; silences -Wreturn-type
}

/// True for the shapes KeywordQuery lowers to: a bare term or a
/// conjunction whose children are all terms.
bool IsConjunctionOfTerms(const QueryNode& node) {
  if (node.kind() == QueryNode::Kind::kTerm) return true;
  if (node.kind() != QueryNode::Kind::kAnd) return false;
  for (const QueryNode& child : node.children()) {
    if (child.kind() != QueryNode::Kind::kTerm) return false;
  }
  return true;
}

}  // namespace

CompiledQuery CompileQuery(const InvertedIndex& index, const QueryNode& node,
                           OrStrategy strategy) {
  CompiledQuery out;
  if (!IsConjunctionOfTerms(node)) {
    out.root = CompileNode(index, node, strategy);
    return out;
  }
  // Conjunctive fast shape: build the term children by hand so their
  // aligned Freq() accessors stay reachable through the compiled root.
  std::vector<std::unique_ptr<TermIterator>> terms;
  std::vector<TermId> seen_terms;
  const auto add_term = [&](TermId term) -> bool {
    if (std::find(seen_terms.begin(), seen_terms.end(), term) !=
        seen_terms.end()) {
      return true;
    }
    seen_terms.push_back(term);
    const PostingList& list = index.Postings(term);
    if (list.empty()) return false;  // conjunction with an unindexed term
    terms.push_back(std::make_unique<TermIterator>(list, term));
    return true;
  };
  bool matchable = true;
  if (node.kind() == QueryNode::Kind::kTerm) {
    matchable = add_term(node.term());
  } else {
    for (const QueryNode& child : node.children()) {
      if (!(matchable = add_term(child.term()))) break;
    }
  }
  if (!matchable) {
    out.root = MakeEmpty();
    return out;
  }
  std::stable_sort(terms.begin(), terms.end(),
                   [](const std::unique_ptr<TermIterator>& a,
                      const std::unique_ptr<TermIterator>& b) {
                     return a->CostEstimate() < b->CostEstimate();
                   });
  out.aligned_terms.reserve(terms.size());
  for (const auto& term : terms) out.aligned_terms.push_back(term.get());
  if (terms.size() == 1) {
    out.root = std::move(terms.front());
    return out;
  }
  std::vector<std::unique_ptr<DocIterator>> children;
  children.reserve(terms.size());
  for (auto& term : terms) children.push_back(std::move(term));
  out.root = std::make_unique<AndIterator>(std::move(children));
  return out;
}

// ---------------------------------------------------------------------------
// Execution

std::vector<MatchedDoc> ExecuteMatch(const InvertedIndex& index,
                                     const QueryNode& node,
                                     std::span<const TermId> freq_terms,
                                     OrStrategy strategy) {
  CompiledQuery query = CompileQuery(index, node, strategy);
  std::vector<MatchedDoc> result;

  // Per-position aligned slot, or npos for the document-lookup fallback.
  constexpr size_t kNoSlot = std::numeric_limits<size_t>::max();
  std::vector<size_t> position_to_slot(freq_terms.size(), kNoSlot);
  for (size_t pos = 0; pos < freq_terms.size(); ++pos) {
    for (size_t slot = 0; slot < query.aligned_terms.size(); ++slot) {
      if (query.aligned_terms[slot]->term() == freq_terms[pos]) {
        position_to_slot[pos] = slot;
        break;
      }
    }
  }

  for (DocIterator& root = *query.root; root.Valid(); root.Next()) {
    MatchedDoc match;
    match.local_doc = root.Doc();
    match.freqs.reserve(freq_terms.size());
    const Document* doc = nullptr;  // resolved lazily, once per match
    for (size_t pos = 0; pos < freq_terms.size(); ++pos) {
      if (position_to_slot[pos] != kNoSlot) {
        // Aligned conjunction: the iterator sits on this very document.
        match.freqs.push_back(
            query.aligned_terms[position_to_slot[pos]]->Freq());
      } else {
        if (doc == nullptr) doc = &index.DocAt(match.local_doc);
        match.freqs.push_back(doc->FrequencyOf(freq_terms[pos]));
      }
    }
    result.push_back(std::move(match));
  }
  return result;
}

size_t ExecuteCount(const InvertedIndex& index, const QueryNode& node,
                    OrStrategy strategy) {
  CompiledQuery query = CompileQuery(index, node, strategy);
  if (query.aligned_terms.size() == 1) {
    // A single-term query's count is the term's document frequency — the
    // posting list's size, no iteration needed.
    return query.aligned_terms.front()->CostEstimate();
  }
  size_t count = 0;
  for (DocIterator& root = *query.root; root.Valid(); root.Next()) ++count;
  return count;
}

std::vector<uint32_t> ExecuteLocals(const InvertedIndex& index,
                                    const QueryNode& node,
                                    OrStrategy strategy) {
  CompiledQuery query = CompileQuery(index, node, strategy);
  std::vector<uint32_t> locals;
  for (DocIterator& root = *query.root; root.Valid(); root.Next()) {
    locals.push_back(root.Doc());
  }
  return locals;
}

}  // namespace asup
