#include "asup/engine/scoring.h"

#include <cmath>

namespace asup {

ScoringContext MakeScoringContext(const InvertedIndex& index,
                                  std::span<const TermId> terms) {
  ScoringContext context;
  context.stats = &index.stats();
  context.dfs.reserve(terms.size());
  for (TermId term : terms) context.dfs.push_back(index.DocumentFrequency(term));
  return context;
}

double ScoringFunction::Score(const InvertedIndex& index,
                              std::span<const TermId> terms,
                              const MatchedDoc& match) const {
  const ScoringContext context = MakeScoringContext(index, terms);
  return ScoreMatch(
      context, static_cast<double>(index.DocAt(match.local_doc).length()),
      match);
}

double Bm25Scorer::ScoreMatch(const ScoringContext& context, double doc_length,
                              const MatchedDoc& match) const {
  const IndexStats& stats = *context.stats;
  const double n = static_cast<double>(stats.num_documents);
  const double avg_len =
      stats.average_doc_length > 0.0 ? stats.average_doc_length : 1.0;
  double score = 0.0;
  for (size_t i = 0; i < context.dfs.size(); ++i) {
    const double df = static_cast<double>(context.dfs[i]);
    const double idf = std::log((n - df + 0.5) / (df + 0.5) + 1.0);
    const double tf = static_cast<double>(match.freqs[i]);
    const double norm = k1_ * (1.0 - b_ + b_ * doc_length / avg_len);
    score += idf * tf * (k1_ + 1.0) / (tf + norm);
  }
  return score;
}

double TfIdfScorer::ScoreMatch(const ScoringContext& context,
                               double doc_length,
                               const MatchedDoc& match) const {
  const double n = static_cast<double>(context.stats->num_documents);
  double score = 0.0;
  for (size_t i = 0; i < context.dfs.size(); ++i) {
    const double df = static_cast<double>(context.dfs[i]);
    if (df == 0.0) continue;
    const double tf = 1.0 + std::log(static_cast<double>(match.freqs[i]));
    score += tf * std::log(n / df);
  }
  return doc_length > 0.0 ? score / std::sqrt(doc_length) : score;
}

std::unique_ptr<ScoringFunction> MakeDefaultScorer() {
  return std::make_unique<Bm25Scorer>();
}

}  // namespace asup
