#include "asup/engine/scoring.h"

#include <cmath>

namespace asup {

double Bm25Scorer::Score(const InvertedIndex& index,
                         std::span<const TermId> terms,
                         const MatchedDoc& match) const {
  const IndexStats& stats = index.stats();
  const double n = static_cast<double>(stats.num_documents);
  const double doc_len = index.DocAt(match.local_doc).length();
  const double avg_len =
      stats.average_doc_length > 0.0 ? stats.average_doc_length : 1.0;
  double score = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    const double df = static_cast<double>(index.DocumentFrequency(terms[i]));
    const double idf = std::log((n - df + 0.5) / (df + 0.5) + 1.0);
    const double tf = static_cast<double>(match.freqs[i]);
    const double norm = k1_ * (1.0 - b_ + b_ * doc_len / avg_len);
    score += idf * tf * (k1_ + 1.0) / (tf + norm);
  }
  return score;
}

double TfIdfScorer::Score(const InvertedIndex& index,
                          std::span<const TermId> terms,
                          const MatchedDoc& match) const {
  const double n = static_cast<double>(index.stats().num_documents);
  const double doc_len = index.DocAt(match.local_doc).length();
  double score = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    const double df = static_cast<double>(index.DocumentFrequency(terms[i]));
    if (df == 0.0) continue;
    const double tf = 1.0 + std::log(static_cast<double>(match.freqs[i]));
    score += tf * std::log(n / df);
  }
  return doc_len > 0.0 ? score / std::sqrt(doc_len) : score;
}

std::unique_ptr<ScoringFunction> MakeDefaultScorer() {
  return std::make_unique<Bm25Scorer>();
}

}  // namespace asup
