#include "asup/engine/sharded_service.h"

#include <algorithm>

#include "asup/engine/doc_iterator.h"
#include "asup/obs/trace.h"
#include "asup/util/check.h"

namespace asup {

ShardedSearchService::ShardedSearchService(
    const ShardedInvertedIndex& index, size_t k, ThreadPool* pool,
    std::unique_ptr<ScoringFunction> scorer)
    : static_snapshot_(CorpusSnapshot::Borrow(index)),
      k_(k),
      pool_(pool),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {}

ShardedSearchService::ShardedSearchService(
    const CorpusManager& manager, size_t k, ThreadPool* pool,
    std::unique_ptr<ScoringFunction> scorer)
    : manager_(&manager),
      k_(k),
      pool_(pool),
      scorer_(scorer ? std::move(scorer) : MakeDefaultScorer()) {
  // Every snapshot of the chain must carry the sharded view this service
  // scatters over.
  ASUP_CHECK(manager.num_shards() >= 1);
  ASUP_CHECK(manager.Current()->has_sharded());
}

void ShardedSearchService::ForEachShard(
    size_t shards, const std::function<void(size_t)>& body) const {
  ASUP_METRIC_COUNT("asup_shard_fanout_total", shards,
                    "Per-shard match tasks fanned out");
  if (pool_ == nullptr || shards == 1) {
    for (size_t s = 0; s < shards; ++s) body(s);
    return;
  }
  pool_->ParallelFor(shards, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) body(s);
  });
}

ScoringContext ShardedSearchService::MakeContext(
    const ShardedInvertedIndex& index, std::span<const TermId> terms) const {
  ScoringContext context;
  context.stats = &index.stats();
  context.dfs.reserve(terms.size());
  for (TermId term : terms) {
    context.dfs.push_back(index.DocumentFrequency(term));
  }
  return context;
}

RankedMatches ShardedSearchService::TopMatchesNodeIn(
    const CorpusSnapshot& snapshot, const QueryNode& node,
    std::span<const TermId> score_terms, size_t limit) const {
  const ShardedInvertedIndex& index = snapshot.sharded();
  RankedMatches out;
  const ScoringContext context = MakeContext(index, score_terms);

  // Scatter: each shard compiles the same query tree against its own
  // document range (Not anti-joins each shard's local range; shards
  // partition the corpus, so the per-shard complements union to the
  // global complement), matches, and scores against the global context,
  // keeping only its local top-`limit` — a superset of the shard's
  // contribution to the global top-`limit`. Slots are preallocated, so
  // the phase is deterministic under any scheduling.
  struct ShardCandidates {
    std::vector<ScoredDoc> docs;
    size_t total_matches = 0;
  };
  std::vector<ShardCandidates> slots(index.NumShards());
  ForEachShard(index.NumShards(), [&](size_t s) {
    // Attributes the span to the caller's trace when this chunk runs on
    // the issuing thread; always feeds the shard_match latency histogram.
    ASUP_TRACE_STAGE(obs::Stage::kShardMatch);
    const InvertedIndex& shard = index.Shard(s);
    const std::vector<MatchedDoc> matches =
        ExecuteMatch(shard, node, score_terms);
    ShardCandidates& slot = slots[s];
    slot.total_matches = matches.size();
    slot.docs.reserve(std::min(matches.size(), limit));
    std::vector<ScoredDoc> scored;
    scored.reserve(matches.size());
    for (const MatchedDoc& match : matches) {
      scored.push_back(
          {shard.LocalToId(match.local_doc),
           scorer_->ScoreMatch(
               context,
               static_cast<double>(shard.DocAt(match.local_doc).length()),
               match)});
    }
    if (limit < scored.size()) {
      std::nth_element(scored.begin(), scored.begin() + limit, scored.end(),
                       RankBefore);
      scored.resize(limit);
    }
    slot.docs = std::move(scored);
  });

  // Gather: exact global merge. RankBefore is a strict total order over
  // distinct document ids, so the top-`limit` of the concatenated
  // candidates is unique — bitwise the single-index answer.
  {
    ASUP_TRACE_STAGE(obs::Stage::kShardMerge);
    size_t candidates = 0;
    for (const ShardCandidates& slot : slots) {
      out.total_matches += slot.total_matches;
      candidates += slot.docs.size();
    }
    std::vector<ScoredDoc> merged;
    merged.reserve(candidates);
    for (ShardCandidates& slot : slots) {
      merged.insert(merged.end(), slot.docs.begin(), slot.docs.end());
    }
    ASUP_METRIC_OBSERVE_SIZE("asup_shard_merge_candidates", candidates);
    if (limit < merged.size()) {
      std::nth_element(merged.begin(), merged.begin() + limit, merged.end(),
                       RankBefore);
      merged.resize(limit);
    }
    std::sort(merged.begin(), merged.end(), RankBefore);
    // Merge-ordering contract: a strict total order admits exactly one
    // sorted answer of at most `limit` documents, none repeated.
    ASUP_CHECK_LE(merged.size(), std::min(limit, candidates));
    ASUP_CONTRACTS_ONLY(for (size_t i = 1; i < merged.size(); ++i) {
      ASUP_CHECK(RankBefore(merged[i - 1], merged[i]));
    })
    ASUP_CHECK_LE(merged.size(), out.total_matches);
    out.docs = std::move(merged);
  }
  ASUP_TRACE_NOTE("shard_fanout", index.NumShards());
  return out;
}

size_t ShardedSearchService::MatchCountNodeIn(const CorpusSnapshot& snapshot,
                                              const QueryNode& node) const {
  const ShardedInvertedIndex& index = snapshot.sharded();
  std::vector<size_t> counts(index.NumShards(), 0);
  ForEachShard(index.NumShards(), [&](size_t s) {
    ASUP_TRACE_STAGE(obs::Stage::kShardMatch);
    counts[s] = ExecuteCount(index.Shard(s), node);
  });
  size_t total = 0;
  for (size_t count : counts) total += count;
  return total;
}

std::vector<DocId> ShardedSearchService::MatchIdsNodeIn(
    const CorpusSnapshot& snapshot, const QueryNode& node) const {
  const ShardedInvertedIndex& index = snapshot.sharded();
  std::vector<DocId> ids;
  std::vector<std::vector<DocId>> slots(index.NumShards());
  ForEachShard(index.NumShards(), [&](size_t s) {
    ASUP_TRACE_STAGE(obs::Stage::kShardMatch);
    const InvertedIndex& shard = index.Shard(s);
    const std::vector<uint32_t> locals = ExecuteLocals(shard, node);
    slots[s].reserve(locals.size());
    for (uint32_t local : locals) {
      slots[s].push_back(shard.LocalToId(local));
    }
  });
  // Shards hold ascending, disjoint DocId ranges; concatenating in shard
  // order is the single-index ascending id list.
  ASUP_TRACE_STAGE(obs::Stage::kShardMerge);
  size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  ids.reserve(total);
  for (const auto& slot : slots) {
    ids.insert(ids.end(), slot.begin(), slot.end());
  }
  ASUP_CONTRACTS_ONLY(
      ASUP_CHECK(std::is_sorted(ids.begin(), ids.end()));)
  return ids;
}

std::vector<ScoredDoc> ShardedSearchService::RankDocsIn(
    const CorpusSnapshot& snapshot, const KeywordQuery& query,
    std::span<const DocId> docs) const {
  const ShardedInvertedIndex& index = snapshot.sharded();
  const ScoringContext context = MakeContext(index, query.terms());
  std::vector<ScoredDoc> scored;
  scored.reserve(docs.size());
  for (DocId id : docs) {
    const size_t s = index.ShardOfLocal(index.LocalOf(id));
    const InvertedIndex& shard = index.Shard(s);
    MatchedDoc match;
    match.local_doc = shard.LocalOf(id);
    const Document& doc = shard.DocAt(match.local_doc);
    match.freqs.reserve(query.terms().size());
    for (TermId term : query.terms()) {
      match.freqs.push_back(doc.FrequencyOf(term));
    }
    scored.push_back(
        {id, scorer_->ScoreMatch(context,
                                 static_cast<double>(doc.length()), match)});
  }
  std::sort(scored.begin(), scored.end(), RankBefore);
  return scored;
}

}  // namespace asup
