#ifndef ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_
#define ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_

#include <mutex>

#include "asup/engine/search_service.h"

namespace asup {

/// Coarse thread-safety decorator.
///
/// The suppression engines synchronize internally (atomic Θ_R bitmap,
/// reader-writer-locked history, answer cache — see DESIGN.md, "Threading
/// model") and do not need this wrapper. It remains the one-line fallback
/// for wrapping a service with *no* internal synchronization — custom
/// SearchService implementations, instrumented fakes — at the cost of
/// serializing every call through one mutex.
class SynchronizedService : public SearchService {
 public:
  explicit SynchronizedService(SearchService& base) : base_(&base) {}

  SearchResult Search(const KeywordQuery& query) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return base_->Search(query);
  }

  size_t k() const override { return base_->k(); }

 private:
  std::mutex mutex_;
  SearchService* base_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_
