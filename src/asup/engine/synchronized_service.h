#ifndef ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_
#define ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_

#include <mutex>

#include "asup/engine/search_service.h"

namespace asup {

/// Thread-safety decorator.
///
/// The suppression engines are deliberately single-threaded: their mutable
/// state (Θ_R, the answer history, the caches) *is* the defense, and it
/// must evolve in one consistent order for the determinism guarantee of
/// Section 2.1 to hold. A production deployment serving concurrent
/// customers either shards defense state per index replica or serializes
/// queries through this wrapper.
class SynchronizedService : public SearchService {
 public:
  explicit SynchronizedService(SearchService& base) : base_(&base) {}

  SearchResult Search(const KeywordQuery& query) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return base_->Search(query);
  }

  size_t k() const override { return base_->k(); }

 private:
  std::mutex mutex_;
  SearchService* base_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_
