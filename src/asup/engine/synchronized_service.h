#ifndef ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_
#define ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_

#include "asup/engine/search_service.h"
#include "asup/util/annotated_mutex.h"

namespace asup {

/// Coarse thread-safety decorator.
///
/// The suppression engines synchronize internally (atomic Θ_R bitmap,
/// reader-writer-locked history, answer cache — see DESIGN.md, "Threading
/// model") and do not need this wrapper. It remains the one-line fallback
/// for wrapping a service with *no* internal synchronization — custom
/// SearchService implementations, instrumented fakes — at the cost of
/// serializing every call through one mutex.
class SynchronizedService : public SearchService {
 public:
  explicit SynchronizedService(SearchService& base) : base_(&base) {}

  SearchResult Search(const KeywordQuery& query) override
      ASUP_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return base_->Search(query);
  }

  size_t k() const override { return base_->k(); }

 private:
  /// Serializes every Search call. `base_` is not ASUP_GUARDED_BY it: the
  /// pointer is set once in the constructor and never reassigned; the mutex
  /// guards the *callee's* un-synchronized internals, which the analysis
  /// cannot see across the virtual call.
  Mutex mutex_;
  SearchService* base_;
};

}  // namespace asup

#endif  // ASUP_ENGINE_SYNCHRONIZED_SERVICE_H_
