#ifndef ASUP_ENGINE_QUERY_H_
#define ASUP_ENGINE_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asup/text/vocabulary.h"

namespace asup {

/// A conjunctive keyword query ("one or a few words"; a document matches iff
/// it contains every word).
///
/// Queries are canonicalized — lowercased words, duplicates dropped, terms
/// sorted — so that "2012 sigmod" and "SIGMOD 2012" are the same query. The
/// canonical string and its 64-bit hash identify the query in AS-SIMPLE's
/// answer cache and in AS-ARBI's per-document history signatures.
class KeywordQuery {
 public:
  KeywordQuery() = default;

  /// Builds a query from raw words; words unknown to `vocabulary` make the
  /// query unanswerable (it matches no document) and are recorded verbatim
  /// in the canonical form.
  static KeywordQuery FromWords(const Vocabulary& vocabulary,
                                const std::vector<std::string>& words);

  /// Builds a query from term ids (all must be valid vocabulary ids).
  static KeywordQuery FromTerms(const Vocabulary& vocabulary,
                                const std::vector<TermId>& terms);

  /// Parses whitespace/punctuation-separated text into a query.
  static KeywordQuery Parse(const Vocabulary& vocabulary,
                            std::string_view text);

  /// Sorted distinct term ids (empty if any word was unknown — conjunctive
  /// semantics make the whole query match nothing).
  const std::vector<TermId>& terms() const { return terms_; }

  /// True if some query word is not in the vocabulary.
  bool has_unknown_word() const { return has_unknown_word_; }

  /// True for the empty query.
  bool empty() const { return canonical_.empty(); }

  /// Canonical "word1 word2 ..." form.
  const std::string& canonical() const { return canonical_; }

  /// Hash of the canonical form.
  uint64_t hash() const { return hash_; }

  /// Transport-layer tag identifying the issuing client (0 = untagged).
  /// Deliberately *not* part of the query's identity — hash, canonical
  /// form and equality ignore it, so answer caches and history signatures
  /// stay shared across clients — but it rides along into the engines,
  /// where the defense-observability events attribute per-client behavior
  /// (obs/client_window.h). `ClientTaggingService` stamps it.
  uint64_t client_id() const { return client_id_; }
  void set_client_id(uint64_t id) { client_id_ = id; }

  friend bool operator==(const KeywordQuery& a, const KeywordQuery& b) {
    return a.canonical_ == b.canonical_;
  }

 private:
  std::vector<TermId> terms_;
  std::string canonical_;
  uint64_t hash_ = 0;
  uint64_t client_id_ = 0;
  bool has_unknown_word_ = false;
};

}  // namespace asup

#endif  // ASUP_ENGINE_QUERY_H_
