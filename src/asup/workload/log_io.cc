#include "asup/workload/log_io.h"

#include <fstream>

namespace asup {

bool SaveQueryLog(std::span<const KeywordQuery> log, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  for (const KeywordQuery& query : log) {
    out << query.canonical() << '\n';
  }
  out.flush();
  return static_cast<bool>(out);
}

std::optional<std::vector<KeywordQuery>> LoadQueryLog(
    const std::string& path, const Vocabulary& vocabulary) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<KeywordQuery> log;
  std::string line;
  while (std::getline(in, line)) {
    KeywordQuery query = KeywordQuery::Parse(vocabulary, line);
    if (query.empty()) continue;  // skip blank lines
    log.push_back(std::move(query));
  }
  return log;
}

}  // namespace asup
