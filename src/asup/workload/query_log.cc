#include "asup/workload/query_log.h"

#include <algorithm>
#include <unordered_map>

namespace asup {

double WorkloadProfile::RecallLowerBound(double gamma) const {
  // Equation (4): recall >= min[ (ρ_γ(γ-1)+1)/γ ,
  //                              (d̄·|Ω_B| + (γ-1)·n_1) / (γ·d̄·|Ω_B|) ].
  const double d_total =
      avg_docs_returned * static_cast<double>(num_queries);
  if (d_total == 0.0) return 1.0;  // nothing returned, nothing lost
  const double first =
      (gamma_overflow_fraction * (gamma - 1.0) + 1.0) / gamma;
  const double second =
      (d_total + (gamma - 1.0) * static_cast<double>(docs_returned_once)) /
      (gamma * d_total);
  return std::min(first, second);
}

double WorkloadProfile::PrecisionLowerBound(double gamma) const {
  // Equation (5): precision >= 1 - (1 - 1/γ)·ρ_O.
  return 1.0 - (1.0 - 1.0 / gamma) * overflow_fraction;
}

WorkloadProfile ProfileWorkload(PlainSearchEngine& engine,
                                std::span<const KeywordQuery> queries,
                                double gamma) {
  WorkloadProfile profile;
  profile.num_queries = queries.size();
  const double gamma_k = gamma * static_cast<double>(engine.k());
  size_t overflow = 0;
  size_t gamma_overflow = 0;
  uint64_t total_returned = 0;
  std::unordered_map<DocId, uint32_t> return_counts;
  for (const KeywordQuery& query : queries) {
    const RankedMatches ranked = engine.TopMatches(query, engine.k());
    if (ranked.total_matches == 0) ++profile.underflow_queries;
    if (ranked.total_matches > engine.k()) ++overflow;
    if (static_cast<double>(ranked.total_matches) > gamma_k) ++gamma_overflow;
    total_returned += ranked.docs.size();
    for (const ScoredDoc& scored : ranked.docs) {
      return_counts[scored.doc] += 1;
    }
  }
  if (!queries.empty()) {
    profile.overflow_fraction =
        static_cast<double>(overflow) / static_cast<double>(queries.size());
    profile.gamma_overflow_fraction =
        static_cast<double>(gamma_overflow) /
        static_cast<double>(queries.size());
    profile.avg_docs_returned = static_cast<double>(total_returned) /
                                static_cast<double>(queries.size());
  }
  for (const auto& [doc, count] : return_counts) {
    if (count == 1) ++profile.docs_returned_once;
  }
  return profile;
}

}  // namespace asup
