#include "asup/workload/epoch_stream.h"

#include <algorithm>

#include "asup/util/check.h"

namespace asup {

const char* EpochStreamKindName(EpochStreamKind kind) {
  switch (kind) {
    case EpochStreamKind::kGrow:
      return "grow";
    case EpochStreamKind::kShrink:
      return "shrink";
    case EpochStreamKind::kChurn:
      return "churn";
    case EpochStreamKind::kAlternate:
      return "alternate";
  }
  return "?";
}

EpochStream::EpochStream(SyntheticCorpusGenerator& generator,
                         const EpochStreamConfig& config)
    : generator_(&generator), config_(config), rng_(config.seed) {
  ASUP_CHECK(config_.docs_per_epoch > 0);
}

bool EpochStream::EpochAdds() const {
  switch (config_.kind) {
    case EpochStreamKind::kGrow:
    case EpochStreamKind::kChurn:
      return true;
    case EpochStreamKind::kShrink:
      return false;
    case EpochStreamKind::kAlternate:
      return produced_ % 2 == 0;  // even epochs grow, odd epochs shrink
  }
  return false;
}

bool EpochStream::EpochRemoves() const {
  switch (config_.kind) {
    case EpochStreamKind::kGrow:
      return false;
    case EpochStreamKind::kShrink:
    case EpochStreamKind::kChurn:
      return true;
    case EpochStreamKind::kAlternate:
      return produced_ % 2 == 1;
  }
  return false;
}

CorpusDelta EpochStream::NextDelta(const Corpus& current) {
  ASUP_CHECK(!exhausted());
  CorpusDelta delta;
  if (EpochAdds()) {
    const Corpus fresh = generator_->Generate(config_.docs_per_epoch);
    delta.add.assign(fresh.documents().begin(), fresh.documents().end());
  }
  if (EpochRemoves() && current.size() > 1) {
    // Keep at least one survivor so every epoch has a well-defined segment.
    const size_t count =
        std::min(config_.docs_per_epoch, current.size() - 1);
    const std::vector<uint64_t> picks =
        rng_.SampleWithoutReplacement(current.size(), count);
    delta.remove.reserve(count);
    for (uint64_t pos : picks) {
      delta.remove.push_back(
          current.documents()[static_cast<size_t>(pos)].id());
    }
    // Canonical ascending order: the delta (and thus the whole stream) is a
    // pure function of (generator state, seed), independent of sampler
    // internals.
    std::sort(delta.remove.begin(), delta.remove.end());
  }
  ++produced_;
  return delta;
}

}  // namespace asup
