#ifndef ASUP_WORKLOAD_QUERY_LOG_H_
#define ASUP_WORKLOAD_QUERY_LOG_H_

#include <cstddef>
#include <span>

#include "asup/engine/query.h"
#include "asup/engine/search_engine.h"

namespace asup {

/// Workload statistics in the vocabulary of Theorem 4.2, which lower-bounds
/// AS-SIMPLE's recall and precision in terms of:
///   ρ_O — fraction of workload queries that overflow (|q| > k),
///   ρ_γ — fraction matching more than γ·k documents,
///   d̄  — average number of documents returned per query,
///   n_1 — number of documents returned exactly once by the workload.
struct WorkloadProfile {
  size_t num_queries = 0;
  size_t underflow_queries = 0;
  double overflow_fraction = 0.0;        // ρ_O
  double gamma_overflow_fraction = 0.0;  // ρ_γ
  double avg_docs_returned = 0.0;        // d̄
  size_t docs_returned_once = 0;         // n_1

  /// Theorem 4.2's recall lower bound for obfuscation factor γ.
  double RecallLowerBound(double gamma) const;

  /// Theorem 4.2's precision lower bound for obfuscation factor γ.
  double PrecisionLowerBound(double gamma) const;
};

/// Profiles a workload against the *undefended* engine.
WorkloadProfile ProfileWorkload(PlainSearchEngine& engine,
                                std::span<const KeywordQuery> queries,
                                double gamma);

}  // namespace asup

#endif  // ASUP_WORKLOAD_QUERY_LOG_H_
