#ifndef ASUP_WORKLOAD_BENIGN_MIX_H_
#define ASUP_WORKLOAD_BENIGN_MIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "asup/engine/query.h"
#include "asup/text/corpus.h"
#include "asup/workload/aol_like.h"

namespace asup {

/// Parameters of a multi-client benign traffic mix.
struct BenignMixConfig {
  /// Number of bona fide clients sharing the interface.
  size_t num_clients = 8;

  /// Queries each client issues per corpus epoch.
  size_t queries_per_client_per_epoch = 60;

  /// The shared query population behind every client (the AOL-like log of
  /// Section 6.1). Its own seed fixes the population; `seed` below fixes
  /// which entries each client draws.
  AolLikeConfig log;

  /// Seed of the per-(client, epoch) draw sequences.
  uint64_t seed = 77;
};

/// Deterministic benign traffic: `num_clients` bona fide users drawing
/// popularity-weighted queries from one shared AOL-like log.
///
/// Each (client, epoch) pair gets its own derived Rng, so the stream a
/// client issues in an epoch depends only on the config — interleaving
/// clients differently, adding an attacker, or replaying a single client
/// in isolation never changes what any client asks. That independence is
/// what makes the watchtower's false-positive measurements (fig. 21)
/// paired: the benign-only run and the attacked run face byte-identical
/// benign traffic.
///
/// Draws are indices into the log (duplicates included), so the per-client
/// streams inherit the log's Zipf head-repetition instead of flattening
/// it — repeat-query rates of real users survive the split.
class BenignMix {
 public:
  BenignMix(const Corpus& corpus, const BenignMixConfig& config);

  size_t num_clients() const { return config_.num_clients; }

  /// The queries client `client` (0-based) issues in `epoch` (1-based),
  /// in issue order. Deterministic in (config, client, epoch).
  std::vector<KeywordQuery> EpochQueries(size_t client, uint64_t epoch) const;

  const AolLikeWorkload& workload() const { return workload_; }
  const BenignMixConfig& config() const { return config_; }

 private:
  BenignMixConfig config_;
  AolLikeWorkload workload_;
};

}  // namespace asup

#endif  // ASUP_WORKLOAD_BENIGN_MIX_H_
