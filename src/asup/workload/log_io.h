#ifndef ASUP_WORKLOAD_LOG_IO_H_
#define ASUP_WORKLOAD_LOG_IO_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "asup/engine/query.h"

namespace asup {

/// Text persistence for query logs: one query per line, words separated by
/// whitespace — the format of the AOL log release (and of most search-log
/// dumps), so a real log file can be replayed against the engines with
/// `LoadQueryLog` directly.

/// Writes `log` to `path`, one canonical query per line. Returns false on
/// I/O failure.
bool SaveQueryLog(std::span<const KeywordQuery> log, const std::string& path);

/// Reads a query log from `path`, parsing each non-empty line against
/// `vocabulary`. Words unknown to the vocabulary are preserved in the
/// query's canonical form and make it unanswerable — exactly how a live
/// engine treats out-of-corpus queries. Returns nullopt if the file cannot
/// be opened.
std::optional<std::vector<KeywordQuery>> LoadQueryLog(
    const std::string& path, const Vocabulary& vocabulary);

}  // namespace asup

#endif  // ASUP_WORKLOAD_LOG_IO_H_
