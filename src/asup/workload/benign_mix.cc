#include "asup/workload/benign_mix.h"

#include "asup/util/check.h"
#include "asup/util/random.h"

namespace asup {

namespace {

// splitmix64-style mixing of (seed, client, epoch) into one derived seed;
// the constants are the usual golden-ratio / Murmur3 finalizer primes.
uint64_t DeriveSeed(uint64_t seed, size_t client, uint64_t epoch) {
  uint64_t x = seed;
  x += 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(client) + 1);
  x += 0xc2b2ae3d27d4eb4fULL * (epoch + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

BenignMix::BenignMix(const Corpus& corpus, const BenignMixConfig& config)
    : config_(config), workload_(corpus, config.log) {
  ASUP_CHECK(config_.num_clients > 0);
  ASUP_CHECK(!workload_.log().empty());
}

std::vector<KeywordQuery> BenignMix::EpochQueries(size_t client,
                                                  uint64_t epoch) const {
  ASUP_CHECK_LT(client, config_.num_clients);
  Rng rng(DeriveSeed(config_.seed, client, epoch));
  const std::vector<KeywordQuery>& log = workload_.log();
  std::vector<KeywordQuery> queries;
  queries.reserve(config_.queries_per_client_per_epoch);
  for (size_t i = 0; i < config_.queries_per_client_per_epoch; ++i) {
    queries.push_back(log[rng.UniformBelow(log.size())]);
  }
  return queries;
}

}  // namespace asup
