#ifndef ASUP_WORKLOAD_AOL_LIKE_H_
#define ASUP_WORKLOAD_AOL_LIKE_H_

#include <cstdint>
#include <vector>

#include "asup/engine/query.h"
#include "asup/text/corpus.h"

namespace asup {

/// Parameters of the synthetic bona fide query log.
///
/// Substitutes for the AOL query log used in the paper's utility
/// experiments (Section 6.1: the first 35,000 AOL queries, issued
/// consecutively). The generator reproduces the log properties the utility
/// results depend on: a Zipf-popularity query population (real logs repeat
/// head queries heavily), short 1-4 word queries biased toward corpus head
/// terms (so most queries overflow the top-k interface — the reason
/// AS-SIMPLE's answer perturbation is barely visible to real users), and a
/// tail of specific multi-word queries that are valid or underflow.
struct AolLikeConfig {
  /// Length of the replayed log (with duplicates).
  size_t log_size = 35000;

  /// Size of the unique-query population behind the log.
  size_t unique_queries = 12000;

  /// Zipf exponent of query popularity.
  double popularity_zipf_s = 0.85;

  /// P(query has 1, 2, 3, 4 words). Mean ≈ 2 words, as in AOL.
  double word_count_probs[4] = {0.35, 0.40, 0.20, 0.05};

  /// Fraction of unique queries whose words are drawn from a random corpus
  /// document (guaranteeing at least one match); the rest combine frequent
  /// corpus words at random and may underflow.
  double from_document_fraction = 0.8;

  /// Fraction of unique queries that are *reformulations* of an earlier
  /// query — one word added or dropped ("sigmod 2012" -> "acm sigmod
  /// 2012"). Real logs are full of such families (the paper calls out
  /// "similar yet different queries" in Section 5.2); they retrieve
  /// heavily overlapping results, which is exactly where AS-ARBI's virtual
  /// query processing recovers the recall AS-SIMPLE loses.
  double reformulation_fraction = 0.35;

  uint64_t seed = 2006;
};

/// Generates and holds a bona fide query workload for a corpus.
class AolLikeWorkload {
 public:
  AolLikeWorkload(const Corpus& corpus, const AolLikeConfig& config);

  /// The full log, in replay order, duplicates included.
  const std::vector<KeywordQuery>& log() const { return log_; }

  /// The unique query population.
  const std::vector<KeywordQuery>& unique_queries() const { return unique_; }

  const AolLikeConfig& config() const { return config_; }

 private:
  AolLikeConfig config_;
  std::vector<KeywordQuery> unique_;
  std::vector<KeywordQuery> log_;
};

}  // namespace asup

#endif  // ASUP_WORKLOAD_AOL_LIKE_H_
