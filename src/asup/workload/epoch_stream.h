#ifndef ASUP_WORKLOAD_EPOCH_STREAM_H_
#define ASUP_WORKLOAD_EPOCH_STREAM_H_

#include <cstdint>
#include <cstddef>

#include "asup/text/corpus.h"
#include "asup/text/corpus_delta.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/random.h"

namespace asup {

/// Shape of a dynamic-corpus workload, mirroring the update patterns of
/// *Aggregate Estimation Over Dynamic Hidden Web Databases* (Liu,
/// Thirumuruganathan, Zhang & Das): a hidden database that only inserts,
/// one that only deletes, one that replaces.
enum class EpochStreamKind : uint8_t {
  /// Every epoch adds `docs_per_epoch` fresh universe documents.
  kGrow,
  /// Every epoch removes `docs_per_epoch` random current documents.
  kShrink,
  /// Every epoch adds and removes `docs_per_epoch` documents (size-neutral
  /// replacement churn: COUNT stays put, the document *set* does not).
  kChurn,
  /// Alternates one grow epoch and one shrink epoch: the corpus size
  /// oscillates, which is the signal the per-epoch n-delta leakage
  /// measurements need (churn's true deltas are all zero).
  kAlternate,
};

const char* EpochStreamKindName(EpochStreamKind kind);

struct EpochStreamConfig {
  EpochStreamKind kind = EpochStreamKind::kChurn;
  /// Number of deltas the stream produces.
  size_t num_epochs = 10;
  /// Documents added and/or removed per epoch (see EpochStreamKind).
  size_t docs_per_epoch = 40;
  /// Seed for removal sampling (additions are drawn from the generator's
  /// own deterministic universe sequence).
  uint64_t seed = 31;
};

/// Deterministic generator of the CorpusDelta sequence of one dynamic
/// workload. Borrows the corpus generator (it owns the universe's id
/// sequence and vocabulary); each NextDelta is valid against the corpus it
/// was built from, per the rules of text/corpus_delta.h.
class EpochStream {
 public:
  /// `generator` is borrowed and must outlive the stream.
  EpochStream(SyntheticCorpusGenerator& generator,
              const EpochStreamConfig& config);

  /// Deltas still to be produced.
  size_t remaining() const { return config_.num_epochs - produced_; }

  /// True once all `num_epochs` deltas were produced.
  bool exhausted() const { return produced_ >= config_.num_epochs; }

  /// Builds the next delta against `current` (the epoch it will be applied
  /// to). Removal targets are sampled uniformly without replacement from
  /// `current`; shrink epochs never empty the corpus (at least one document
  /// survives). Requires !exhausted().
  CorpusDelta NextDelta(const Corpus& current);

  const EpochStreamConfig& config() const { return config_; }

 private:
  /// True if the epoch about to be produced adds documents / removes them.
  bool EpochAdds() const;
  bool EpochRemoves() const;

  SyntheticCorpusGenerator* generator_;
  EpochStreamConfig config_;
  Rng rng_;
  size_t produced_ = 0;
};

}  // namespace asup

#endif  // ASUP_WORKLOAD_EPOCH_STREAM_H_
