#include "asup/workload/aol_like.h"

#include <algorithm>
#include <cassert>

#include "asup/util/random.h"

namespace asup {

namespace {

size_t SampleWordCount(Rng& rng, const double probs[4]) {
  const double u = rng.NextDouble();
  double cumulative = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    cumulative += probs[i];
    if (u < cumulative) return i + 1;
  }
  return 4;
}

// Draws `count` distinct terms from `doc`, weighted by in-document
// frequency (frequent words of a page are what a user searching for that
// page would type).
std::vector<TermId> DrawFromDocument(Rng& rng, const Document& doc,
                                     size_t count) {
  std::vector<TermId> picked;
  const auto& terms = doc.terms();
  if (terms.empty()) return picked;
  for (size_t attempt = 0; attempt < count * 8 && picked.size() < count;
       ++attempt) {
    uint32_t target = static_cast<uint32_t>(
        rng.UniformU64(1, std::max<uint32_t>(doc.length(), 1)));
    uint32_t running = 0;
    TermId chosen = terms.back().term;
    for (const TermFreq& entry : terms) {
      running += entry.freq;
      if (running >= target) {
        chosen = entry.term;
        break;
      }
    }
    if (std::find(picked.begin(), picked.end(), chosen) == picked.end()) {
      picked.push_back(chosen);
    }
  }
  return picked;
}

}  // namespace

AolLikeWorkload::AolLikeWorkload(const Corpus& corpus,
                                 const AolLikeConfig& config)
    : config_(config) {
  assert(!corpus.empty());
  Rng rng(config.seed);
  const Vocabulary& vocabulary = corpus.vocabulary();

  // Head-term distribution for the non-document-derived queries.
  ZipfDistribution head_terms(vocabulary.size(), 1.1);

  unique_.reserve(config.unique_queries);
  while (unique_.size() < config.unique_queries) {
    std::vector<TermId> terms;
    if (!unique_.empty() && rng.Bernoulli(config.reformulation_fraction)) {
      // Reformulate an earlier query: add a word from one of its matching
      // documents, or drop a word.
      const KeywordQuery& base = unique_[rng.UniformBelow(unique_.size())];
      terms = base.terms();
      if (terms.size() >= 2 && (terms.size() >= 4 || rng.Bernoulli(0.4))) {
        terms.erase(terms.begin() + rng.UniformBelow(terms.size()));
      } else if (!terms.empty()) {
        // Find a document containing the base query's first term and add
        // one of its words, so the refined query still matches something.
        const TermId anchor = terms[rng.UniformBelow(terms.size())];
        for (int attempt = 0; attempt < 16; ++attempt) {
          const Document& doc =
              corpus.documents()[rng.UniformBelow(corpus.size())];
          if (!doc.Contains(anchor)) continue;
          const auto extra = DrawFromDocument(rng, doc, 1);
          if (!extra.empty() &&
              std::find(terms.begin(), terms.end(), extra[0]) ==
                  terms.end()) {
            terms.push_back(extra[0]);
          }
          break;
        }
      }
    } else {
      const size_t words = SampleWordCount(rng, config.word_count_probs);
      if (rng.Bernoulli(config.from_document_fraction)) {
        const Document& doc =
            corpus.documents()[rng.UniformBelow(corpus.size())];
        terms = DrawFromDocument(rng, doc, words);
      } else {
        while (terms.size() < words) {
          const TermId term = static_cast<TermId>(head_terms.Sample(rng));
          if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
            terms.push_back(term);
          }
        }
      }
    }
    if (terms.empty()) continue;
    unique_.push_back(KeywordQuery::FromTerms(vocabulary, std::move(terms)));
  }

  // Replay log: Zipf popularity over the unique population.
  ZipfDistribution popularity(unique_.size(), config.popularity_zipf_s);
  log_.reserve(config.log_size);
  for (size_t i = 0; i < config.log_size; ++i) {
    log_.push_back(unique_[popularity.Sample(rng)]);
  }
}

}  // namespace asup
