#include "asup/eval/utility.h"

#include <algorithm>
#include <unordered_set>

#include "asup/eval/rank_distance.h"
#include "asup/util/stats.h"

namespace asup {

namespace {

size_t IntersectionSize(const SearchResult& a, const SearchResult& b) {
  std::unordered_set<DocId> ids;
  ids.reserve(a.docs.size() * 2);
  for (const ScoredDoc& scored : a.docs) ids.insert(scored.doc);
  size_t common = 0;
  for (const ScoredDoc& scored : b.docs) common += ids.count(scored.doc);
  return common;
}

}  // namespace

void UtilityMeter::Observe(const SearchResult& plain,
                           const SearchResult& suppressed) {
  ++count_;
  const size_t common = IntersectionSize(plain, suppressed);
  recall_sum_ += plain.docs.empty()
                     ? 1.0
                     : static_cast<double>(common) /
                           static_cast<double>(plain.docs.size());
  precision_sum_ += suppressed.docs.empty()
                        ? 1.0
                        : static_cast<double>(common) /
                              static_cast<double>(suppressed.docs.size());
}

double UtilityMeter::recall() const {
  return count_ == 0 ? 1.0 : recall_sum_ / static_cast<double>(count_);
}

double UtilityMeter::precision() const {
  return count_ == 0 ? 1.0 : precision_sum_ / static_cast<double>(count_);
}

std::vector<UtilityPoint> MeasureUtility(SearchService& plain,
                                         SearchService& suppressed,
                                         std::span<const KeywordQuery> log,
                                         uint64_t report_every) {
  UtilityMeter meter;
  StreamingStats distances;
  std::vector<UtilityPoint> points;
  uint64_t issued = 0;
  for (const KeywordQuery& query : log) {
    const SearchResult before = plain.Search(query);
    const SearchResult after = suppressed.Search(query);
    meter.Observe(before, after);
    distances.Add(TopKKendallDistance(before.DocIds(), after.DocIds()));
    ++issued;
    if (issued % report_every == 0) {
      points.push_back(
          {issued, meter.recall(), meter.precision(), distances.Mean()});
    }
  }
  if (points.empty() || points.back().queries != issued) {
    points.push_back(
        {issued, meter.recall(), meter.precision(), distances.Mean()});
  }
  return points;
}

}  // namespace asup
