#include "asup/eval/detection_experiment.h"

#include <map>
#include <memory>
#include <utility>

#include "asup/attack/aggregate.h"
#include "asup/attack/dynamic_est.h"
#include "asup/attack/query_pool.h"
#include "asup/attack/stratified_est.h"
#include "asup/attack/unbiased_est.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/index/corpus_manager.h"
#include "asup/obs/metrics.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/util/check.h"

#if ASUP_METRICS_ENABLED
#include "asup/obs/event_log.h"
#include "asup/obs/suspicion.h"
#endif

namespace asup {

const char* AttackerKindName(AttackerKind kind) {
  switch (kind) {
    case AttackerKind::kNone:
      return "none";
    case AttackerKind::kUnbiased:
      return "unbiased";
    case AttackerKind::kStratified:
      return "stratified";
    case AttackerKind::kDynamic:
      return "dynamic";
  }
  return "?";
}

#if ASUP_METRICS_ENABLED

namespace {

/// Uninstalls the event sinks on scope exit so a run never leaks its log /
/// watchtower into the process-global slots past their lifetimes.
struct ScopedEventSinks {
  ScopedEventSinks(obs::EventLog* log, obs::Watchtower* watchtower) {
    obs::InstallEventLog(log);
    obs::InstallWatchtower(watchtower);
  }
  ~ScopedEventSinks() {
    obs::InstallWatchtower(nullptr);
    obs::InstallEventLog(nullptr);
  }
};

DetectionClientRow RowFromVerdict(const obs::Watchtower::Verdict& verdict,
                                  bool is_attacker) {
  DetectionClientRow row;
  row.client = verdict.client;
  row.is_attacker = is_attacker;
  row.flagged = verdict.flagged;
  row.score = verdict.score;
  row.smoothed_score = verdict.smoothed_score;
  const obs::ClientFeatures& f = verdict.features;
  row.window_queries = f.window_queries;
  row.lifetime_queries = f.lifetime_queries;
  row.query_share = f.query_share;
  row.repeat_query_fraction = f.repeat_query_fraction;
  row.repeat_term_fraction = f.repeat_term_fraction;
  row.distinct_term_growth = f.distinct_term_growth;
  row.hidden_rate = f.hidden_rate;
  row.segment_crossing_rate = f.segment_crossing_rate;
  row.saturation_rate = f.saturation_rate;
  row.cache_hit_rate = f.cache_hit_rate;
  return row;
}

}  // namespace

DetectionReport RunDetectionExperiment(const DetectionConfig& config,
                                       DefenseKind defense,
                                       AttackerKind attacker) {
  ASUP_CHECK(config.initial_corpus_size > 0);
  DetectionReport report;
  report.enabled = true;
  report.defense = defense;
  report.attacker = attacker;

  SyntheticCorpusConfig generator_config = config.corpus_config;
  generator_config.seed = config.seed;
  SyntheticCorpusGenerator generator(generator_config);

  // Universe store for the attacker's fetcher, as in the dynamic-attack
  // rig: every id ever disclosed must stay resolvable across deletions.
  std::map<DocId, Document> universe;
  const auto absorb = [&universe](const std::vector<Document>& docs) {
    for (const Document& doc : docs) universe.emplace(doc.id(), doc);
  };

  Corpus initial = generator.Generate(config.initial_corpus_size);
  absorb(initial.documents());
  const Corpus held_out = generator.Generate(config.held_out_size);

  // Benign population is built against the initial corpus (bona fide
  // users query the site they see), the attacker's pool against the
  // external sample — the same split the attack experiments use.
  const BenignMix mix(initial, config.benign);

  QueryPool::Options pool_options;
  pool_options.max_df_fraction = config.pool_max_df_fraction;
  const QueryPool pool(held_out, pool_options);

  CorpusManager manager(std::move(initial));
  PlainSearchEngine engine(manager, config.k);

  std::unique_ptr<AsSimpleEngine> simple;
  std::unique_ptr<AsArbiEngine> arbi;
  SearchService* attacked = &engine;
  if (defense == DefenseKind::kSimple) {
    AsSimpleConfig simple_config;
    simple_config.gamma = config.gamma;
    simple = std::make_unique<AsSimpleEngine>(engine, simple_config);
    attacked = simple.get();
  } else if (defense == DefenseKind::kArbi) {
    AsArbiConfig arbi_config;
    arbi_config.simple.gamma = config.gamma;
    arbi = std::make_unique<AsArbiEngine>(engine, arbi_config);
    attacked = arbi.get();
  }

  // The watchtower under test, fed synchronously by every query below.
  obs::EventLog event_log(config.event_log_capacity);
  obs::WatchtowerConfig watch_config;
  watch_config.window.window = config.watch_window;
  watch_config.ewma_alpha = config.ewma_alpha;
  watch_config.flag_threshold = config.flag_threshold;
  watch_config.min_queries = config.min_queries;
  obs::Watchtower watchtower(watch_config);
  ScopedEventSinks sinks(&event_log, &watchtower);

  // One tagging decorator per client — the entire per-client plumbing.
  std::vector<std::unique_ptr<ClientTaggingService>> benign_services;
  for (size_t c = 0; c < mix.num_clients(); ++c) {
    benign_services.push_back(std::make_unique<ClientTaggingService>(
        *attacked, static_cast<uint64_t>(c) + 1));
  }
  ClientTaggingService attacker_service(*attacked, kDetectionAttackerClient);

  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = [&universe](DocId id) -> const Document& {
    const auto it = universe.find(id);
    ASUP_CHECK(it != universe.end());
    return it->second;
  };

  std::unique_ptr<UnbiasedEstimator> unbiased;
  std::unique_ptr<StratifiedEstimator> stratified;
  std::unique_ptr<DynamicEstimator> dynamic;
  if (attacker == AttackerKind::kUnbiased) {
    unbiased = std::make_unique<UnbiasedEstimator>(pool, aggregate, fetcher);
  } else if (attacker == AttackerKind::kStratified) {
    stratified =
        std::make_unique<StratifiedEstimator>(pool, aggregate, fetcher);
  } else if (attacker == AttackerKind::kDynamic) {
    dynamic = std::make_unique<DynamicEstimator>(pool, aggregate, fetcher,
                                                 DynamicEstimatorOptions());
  }

  EpochStream stream(generator, config.stream);

  const auto run_epoch_traffic = [&]() {
    const uint64_t epoch = manager.Current()->epoch();
    // Benign clients interleave round-robin, approximating the concurrent
    // mix a real front-end sees (a serial per-client replay would make
    // every client look like the sole user of its own window span). The
    // attacker then runs as one burst — a per-epoch scraping session.
    std::vector<std::vector<KeywordQuery>> epoch_queries;
    for (size_t c = 0; c < mix.num_clients(); ++c) {
      epoch_queries.push_back(mix.EpochQueries(c, epoch));
    }
    for (size_t i = 0; i < config.benign.queries_per_client_per_epoch; ++i) {
      for (size_t c = 0; c < mix.num_clients(); ++c) {
        if (i >= epoch_queries[c].size()) continue;
        benign_services[c]->Search(epoch_queries[c][i]);
        ++report.benign_queries;
      }
    }
    const uint64_t budget = config.attacker_budget_per_epoch;
    switch (attacker) {
      case AttackerKind::kNone:
        break;
      case AttackerKind::kUnbiased: {
        const auto points = unbiased->Run(attacker_service, budget, budget);
        report.attacker_queries +=
            points.empty() ? budget : points.back().queries_issued;
        break;
      }
      case AttackerKind::kStratified: {
        const auto points = stratified->Run(attacker_service, budget, budget);
        report.attacker_queries +=
            points.empty() ? budget : points.back().queries_issued;
        break;
      }
      case AttackerKind::kDynamic: {
        const DynamicEpochPoint point =
            dynamic->ObserveEpoch(attacker_service, budget);
        report.attacker_queries += point.queries_spent;
        break;
      }
    }
  };

  run_epoch_traffic();  // epoch 1
  while (!stream.exhausted()) {
    CorpusDelta delta = stream.NextDelta(manager.Current()->corpus());
    absorb(delta.add);
    manager.Apply(delta);
    run_epoch_traffic();
  }

  // Read out the verdicts: benign clients first, attacker last.
  size_t benign_flagged = 0;
  for (size_t c = 0; c < mix.num_clients(); ++c) {
    const auto verdict = watchtower.VerdictOf(static_cast<uint64_t>(c) + 1);
    if (!verdict.has_value()) continue;  // evicted or never completed
    report.clients.push_back(RowFromVerdict(*verdict, /*is_attacker=*/false));
    if (verdict->flagged) ++benign_flagged;
  }
  bool attacker_flagged = false;
  if (attacker != AttackerKind::kNone) {
    const auto verdict = watchtower.VerdictOf(kDetectionAttackerClient);
    if (verdict.has_value()) {
      report.clients.push_back(RowFromVerdict(*verdict, /*is_attacker=*/true));
      attacker_flagged = verdict->flagged;
    }
  }

  report.benign_clients = mix.num_clients();
  report.benign_flagged = benign_flagged;
  report.tpr = attacker != AttackerKind::kNone && attacker_flagged ? 1.0 : 0.0;
  report.fpr = static_cast<double>(benign_flagged) /
               static_cast<double>(mix.num_clients());
  report.advantage = report.tpr - report.fpr;
  report.events_ingested = watchtower.events_ingested();
  report.queries_scored = watchtower.queries_scored();
  report.events_retained = event_log.Snapshot().size();
  report.events_dropped = event_log.dropped();

  ASUP_METRIC_GAUGE_SET("asup_eval_detection_tpr", report.tpr,
                        "True-positive rate of the last detection run");
  ASUP_METRIC_GAUGE_SET("asup_eval_detection_fpr", report.fpr,
                        "False-positive rate of the last detection run");
  ASUP_METRIC_GAUGE_SET("asup_eval_detection_advantage", report.advantage,
                        "TPR - FPR of the last detection run");
  return report;
}

#else  // !ASUP_METRICS_ENABLED

DetectionReport RunDetectionExperiment(const DetectionConfig& config,
                                       DefenseKind defense,
                                       AttackerKind attacker) {
  // The watchtower is compiled out: nothing observes, nothing is scored.
  (void)config;
  DetectionReport report;
  report.enabled = false;
  report.defense = defense;
  report.attacker = attacker;
  return report;
}

#endif  // ASUP_METRICS_ENABLED

CsvTable DetectionClientsCsv(const DetectionReport& report) {
  CsvTable table({"client", "attacker", "flagged", "score", "smoothed",
                  "window_q", "lifetime_q", "share", "repeat_q", "repeat_t",
                  "term_growth", "hidden", "crossing", "saturation",
                  "cache_hit"});
  for (const DetectionClientRow& row : report.clients) {
    table.AddRow({static_cast<double>(row.client), row.is_attacker ? 1.0 : 0.0,
                  row.flagged ? 1.0 : 0.0, row.score, row.smoothed_score,
                  static_cast<double>(row.window_queries),
                  static_cast<double>(row.lifetime_queries), row.query_share,
                  row.repeat_query_fraction, row.repeat_term_fraction,
                  row.distinct_term_growth, row.hidden_rate,
                  row.segment_crossing_rate, row.saturation_rate,
                  row.cache_hit_rate});
  }
  return table;
}

CsvTable DetectionSummaryCsv(const std::vector<DetectionReport>& runs) {
  CsvTable table({"defense", "attacker", "tpr", "fpr", "advantage",
                  "benign_q", "attacker_q", "events", "scored", "dropped"});
  for (const DetectionReport& run : runs) {
    table.AddRow({static_cast<double>(run.defense),
                  static_cast<double>(run.attacker), run.tpr, run.fpr,
                  run.advantage, static_cast<double>(run.benign_queries),
                  static_cast<double>(run.attacker_queries),
                  static_cast<double>(run.events_ingested),
                  static_cast<double>(run.queries_scored),
                  static_cast<double>(run.events_dropped)});
  }
  return table;
}

}  // namespace asup
