#ifndef ASUP_EVAL_PRIVACY_GAME_H_
#define ASUP_EVAL_PRIVACY_GAME_H_

#include <functional>
#include <memory>

#include "asup/attack/estimator.h"
#include "asup/attack/query_pool.h"
#include "asup/engine/search_service.h"
#include "asup/util/stats.h"

namespace asup {

/// Parameters of the (ε, δ, c)-privacy game of Section 3.1.
struct PrivacyGameConfig {
  /// Width ε of the interval the adversary must pin the aggregate into.
  double epsilon = 0.0;

  /// Query budget c per game.
  uint64_t query_budget = 2000;

  /// Independent Monte-Carlo plays (fresh defense state + fresh attack
  /// randomness each time).
  size_t trials = 15;

  uint64_t seed = 99;
};

/// Outcome of the Monte-Carlo game.
struct PrivacyGameResult {
  double true_value = 0.0;
  /// Fraction of plays where the adversary's best interval
  /// [estimate − ε/2, estimate + ε/2] contained the truth. An
  /// (ε, δ, c, p)-guarantee (Definition 1) demands this stay ≤ p.
  double win_rate = 0.0;
  /// Moments of the adversary's final estimates across plays.
  StreamingStats estimates;
};

/// Builds a fresh defended (or undefended) engine for one play. Defense
/// state (Θ_R, history, caches) accumulates within a play and must not leak
/// across plays.
using ServiceFactory = std::function<std::unique_ptr<SearchService>()>;

/// Plays the (ε, δ, c)-game `config.trials` times with UNBIASED-EST as the
/// adversary strategy and returns the empirical win rate. Comparing the win
/// rate of a defended factory against an undefended one validates
/// Theorem 4.1's suppression guarantee empirically.
PrivacyGameResult PlayPrivacyGame(const ServiceFactory& factory,
                                  const QueryPool& pool,
                                  const AggregateQuery& aggregate,
                                  const DocFetcher& fetcher, double true_value,
                                  const PrivacyGameConfig& config);

}  // namespace asup

#endif  // ASUP_EVAL_PRIVACY_GAME_H_
