#ifndef ASUP_EVAL_EXPERIMENT_H_
#define ASUP_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "asup/attack/estimator.h"
#include "asup/attack/query_pool.h"
#include "asup/engine/search_engine.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/csv.h"

namespace asup {

/// True when the ASUP_SCALE environment variable is "paper": benches then
/// use paper-scale corpus sizes and query budgets instead of the fast
/// defaults.
bool PaperScale();

/// Picks the small- or paper-scale value of a parameter.
size_t ScaledSize(size_t small, size_t paper);

/// A corpus bound to its index, engine, and (optionally) a suppression
/// layer. Keeps the borrowing chain (corpus -> index -> engine -> defense)
/// alive in one owner; the corpus itself is borrowed and must outlive the
/// stack.
class EngineStack {
 public:
  /// Undefended engine. `scorer` swaps the base ranker (nullptr = BM25);
  /// the suppression chains compose over whatever ranker the base engine
  /// scores with, so a defended stack re-ranks the same way.
  static EngineStack Plain(const Corpus& corpus, size_t k,
                           std::unique_ptr<ScoringFunction> scorer = nullptr);

  /// Engine defended by AS-SIMPLE.
  static EngineStack WithSimple(const Corpus& corpus, size_t k,
                                const AsSimpleConfig& config,
                                std::unique_ptr<ScoringFunction> scorer =
                                    nullptr);

  /// Engine defended by AS-ARBI.
  static EngineStack WithArbi(const Corpus& corpus, size_t k,
                              const AsArbiConfig& config,
                              std::unique_ptr<ScoringFunction> scorer =
                                  nullptr);

  EngineStack(EngineStack&&) = default;
  EngineStack& operator=(EngineStack&&) = default;

  /// The outermost service (defended if a defense was attached).
  SearchService& service();

  PlainSearchEngine& plain() { return *plain_; }
  const InvertedIndex& index() const { return *index_; }
  AsSimpleEngine* simple() { return simple_.get(); }
  AsArbiEngine* arbi() { return arbi_.get(); }

 private:
  EngineStack(const Corpus& corpus, size_t k,
              std::unique_ptr<ScoringFunction> scorer);

  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<PlainSearchEngine> plain_;
  std::unique_ptr<AsSimpleEngine> simple_;
  std::unique_ptr<AsArbiEngine> arbi_;
};

/// Shared experiment environment: a document universe, nested corpora
/// sampled from it, a held-out external sample, and the adversarial query
/// pool built from that sample — the construction of Section 6.1.
class ExperimentEnv {
 public:
  struct Options {
    /// Size of the document universe corpora are sampled from.
    size_t universe_size = 20000;
    /// Held-out documents behind the adversary's query pool.
    size_t held_out_size = 5000;
    uint64_t seed = 42;
    /// Base generator parameters (its seed is overridden by `seed`).
    SyntheticCorpusConfig corpus_config;
    /// Pool stop-word threshold (see QueryPool::Options::max_df_fraction).
    double pool_max_df_fraction = 1.0;
  };

  explicit ExperimentEnv(const Options& options);

  const Corpus& universe() const { return universe_; }
  const Corpus& held_out() const { return held_out_; }
  const QueryPool& pool() const { return *pool_; }
  const Vocabulary& vocabulary() const { return universe_.vocabulary(); }

  /// Samples a corpus of `size` documents (without replacement) from the
  /// universe; `salt` decorrelates sibling corpora.
  Corpus SampleCorpus(size_t size, uint64_t salt) const;

 private:
  Options options_;
  Corpus universe_;
  Corpus held_out_;
  std::unique_ptr<QueryPool> pool_;
};

/// Zips same-length estimate trajectories into a CSV table
/// ("queries", series...). Trajectories are truncated to the shortest.
CsvTable TrajectoriesToCsv(const std::vector<std::string>& series_names,
                           const std::vector<std::vector<EstimationPoint>>&
                               trajectories);

/// Prints "# <title>" followed by the table, to stdout.
void PrintFigure(const std::string& title, const CsvTable& table);

/// Prints the observability RunReport of the process-wide metrics registry
/// as a figure: per-stage latency percentiles (one `<stage>_ns` column per
/// pipeline stage that ran) under `title`. No-op in ASUP_METRICS=OFF
/// builds. Benches call this after their measured region; pair with
/// ResetRunMetrics() before it.
void PrintRunReport(const std::string& title);

/// Zeroes the process-wide metrics registry so a following PrintRunReport
/// covers only the measured region. No-op in ASUP_METRICS=OFF builds.
void ResetRunMetrics();

/// Distinguishability of a set of estimate trajectories: the relative
/// spread (max − min)/mean of their *final* estimates. An adversary
/// comparing corpora needs a spread larger than its estimator noise;
/// suppression is working when the defended spread collapses relative to
/// the undefended one. Returns 0 for fewer than two trajectories.
double FinalEstimateSpread(
    const std::vector<std::vector<EstimationPoint>>& trajectories);

}  // namespace asup

#endif  // ASUP_EVAL_EXPERIMENT_H_
