#ifndef ASUP_EVAL_UTILITY_H_
#define ASUP_EVAL_UTILITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "asup/engine/query.h"
#include "asup/engine/search_service.h"

namespace asup {

/// Streaming recall / precision per Definition 2 of the paper:
///
///   recall    = (1/h) Σ_i |Res(q_i) ∩ ResAS(q_i)| / |Res(q_i)|
///   precision = (1/h) Σ_i |Res(q_i) ∩ ResAS(q_i)| / |ResAS(q_i)|
///
/// where Res / ResAS are the answers before and after aggregate
/// suppression. Queries with an empty denominator contribute 1 (nothing
/// was lost / nothing spurious was added).
class UtilityMeter {
 public:
  /// Incorporates one query's pair of answers.
  void Observe(const SearchResult& plain, const SearchResult& suppressed);

  double recall() const;
  double precision() const;
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
  double recall_sum_ = 0.0;
  double precision_sum_ = 0.0;
};

/// One point of a utility trajectory (the running averages after the first
/// `queries` log entries — the x-axis of Figures 6/7/10/13/17).
struct UtilityPoint {
  uint64_t queries = 0;
  double recall = 0.0;
  double precision = 0.0;
  double rank_distance = 0.0;
};

/// Replays `log` against the undefended and defended services side by side
/// and records running recall / precision / average rank distance every
/// `report_every` queries (plus a final point).
std::vector<UtilityPoint> MeasureUtility(SearchService& plain,
                                         SearchService& suppressed,
                                         std::span<const KeywordQuery> log,
                                         uint64_t report_every);

}  // namespace asup

#endif  // ASUP_EVAL_UTILITY_H_
