#include "asup/eval/rank_distance.h"

#include <algorithm>
#include <unordered_map>

namespace asup {

double TopKKendallDistance(const std::vector<DocId>& a,
                           const std::vector<DocId>& b, double penalty) {
  if (a.empty() && b.empty()) return 0.0;

  // Rank maps; SIZE_MAX marks "not in the list".
  std::unordered_map<DocId, size_t> rank_a;
  std::unordered_map<DocId, size_t> rank_b;
  for (size_t i = 0; i < a.size(); ++i) rank_a.emplace(a[i], i);
  for (size_t i = 0; i < b.size(); ++i) rank_b.emplace(b[i], i);

  std::vector<DocId> all = a;
  for (DocId doc : b) {
    if (rank_a.find(doc) == rank_a.end()) all.push_back(doc);
  }

  auto rank_of = [](const std::unordered_map<DocId, size_t>& ranks,
                    DocId doc) -> size_t {
    auto it = ranks.find(doc);
    return it == ranks.end() ? SIZE_MAX : it->second;
  };

  double distance = 0.0;
  double pairs = 0.0;
  for (size_t x = 0; x < all.size(); ++x) {
    for (size_t y = x + 1; y < all.size(); ++y) {
      const size_t ax = rank_of(rank_a, all[x]);
      const size_t ay = rank_of(rank_a, all[y]);
      const size_t bx = rank_of(rank_b, all[x]);
      const size_t by = rank_of(rank_b, all[y]);
      pairs += 1.0;
      const bool x_in_a = ax != SIZE_MAX;
      const bool y_in_a = ay != SIZE_MAX;
      const bool x_in_b = bx != SIZE_MAX;
      const bool y_in_b = by != SIZE_MAX;
      if (x_in_a && y_in_a && x_in_b && y_in_b) {
        // Case 1: ordered oppositely?
        if ((ax < ay) != (bx < by)) distance += 1.0;
      } else if (x_in_a && y_in_a && (x_in_b != y_in_b)) {
        // Case 2 (one of the pair missing from b): the one present in b is
        // implicitly ranked above the missing one; disagreement iff a says
        // otherwise.
        const bool x_is_present_in_b = x_in_b;
        if (x_is_present_in_b ? (ay < ax) : (ax < ay)) distance += 1.0;
      } else if (x_in_b && y_in_b && (x_in_a != y_in_a)) {
        const bool x_is_present_in_a = x_in_a;
        if (x_is_present_in_a ? (by < bx) : (bx < by)) distance += 1.0;
      } else if ((x_in_a && !x_in_b && !y_in_a && y_in_b) ||
                 (!x_in_a && x_in_b && y_in_a && !y_in_b)) {
        // Case 3: each appears in exactly one list, different lists.
        distance += 1.0;
      } else {
        // Case 4: both missing from the same list.
        distance += penalty;
      }
    }
  }
  return pairs == 0.0 ? 0.0 : distance / pairs;
}

}  // namespace asup
