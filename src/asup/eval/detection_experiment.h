#ifndef ASUP_EVAL_DETECTION_EXPERIMENT_H_
#define ASUP_EVAL_DETECTION_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "asup/eval/dynamic_attack_experiment.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/csv.h"
#include "asup/workload/benign_mix.h"
#include "asup/workload/epoch_stream.h"

namespace asup {

/// Estimator replayed as the attacking client (kNone = benign-only
/// stream, the watchtower's false-positive baseline).
enum class AttackerKind : uint8_t {
  kNone = 0,
  kUnbiased,
  kStratified,
  kDynamic
};

const char* AttackerKindName(AttackerKind kind);

/// One watchtower detection run: a benign multi-client mix and (optionally)
/// one attacking client share a defended interface across corpus epochs;
/// every query flows through the structured event stream into the online
/// suspicion scorer, and the run reports who got flagged.
///
/// The config deliberately holds the watchtower tuning as plain numbers:
/// this header (and the report) keep the same shape under
/// `-DASUP_METRICS=OFF`, where the run returns `enabled == false` and no
/// client rows — the eval library stays linkable in the watchtower-free
/// build without leaking obs symbols.
struct DetectionConfig {
  /// Corpus / interface rig, mirroring DynamicAttackConfig's defaults (see
  /// eval/dynamic_attack_experiment.h for why 300 documents).
  size_t initial_corpus_size = 300;
  size_t held_out_size = 300;
  size_t k = 50;
  double gamma = 2.0;
  SyntheticCorpusConfig corpus_config;
  double pool_max_df_fraction = 0.1;

  /// Corpus evolution between traffic rounds. `stream.num_epochs` deltas
  /// are applied, so traffic runs in `stream.num_epochs + 1` epochs.
  EpochStreamConfig stream;

  /// Benign traffic (clients 1..num_clients).
  BenignMixConfig benign;

  /// Interface queries the attacker spends per epoch. Kept modest: the
  /// watchtower must recognize the attack by *shape*, not only by volume.
  uint64_t attacker_budget_per_epoch = 3000;

  /// Watchtower tuning (plain mirrors of obs::WatchtowerConfig).
  size_t watch_window = 256;
  double ewma_alpha = 0.25;
  double flag_threshold = 3.0;
  uint64_t min_queries = 24;
  size_t event_log_capacity = 1 << 15;

  /// Seed of the synthetic-document generator (the corpus universe).
  uint64_t seed = 2026;

  DetectionConfig() {
    corpus_config.vocabulary_size = 2000;
    corpus_config.num_topics = 12;
    corpus_config.words_per_topic = 150;
    stream.num_epochs = 3;
    stream.docs_per_epoch = 40;
  }
};

/// Client id of the attacking client (benign clients are 1..num_clients).
inline constexpr uint64_t kDetectionAttackerClient = 1000;

/// The watchtower's final view of one client.
struct DetectionClientRow {
  uint64_t client = 0;
  bool is_attacker = false;
  bool flagged = false;
  double score = 0.0;
  double smoothed_score = 0.0;

  // Window features at end of run (see obs::ClientFeatures).
  uint64_t window_queries = 0;
  uint64_t lifetime_queries = 0;
  double query_share = 0.0;
  double repeat_query_fraction = 0.0;
  double repeat_term_fraction = 0.0;
  double distinct_term_growth = 0.0;
  double hidden_rate = 0.0;
  double segment_crossing_rate = 0.0;
  double saturation_rate = 0.0;
  double cache_hit_rate = 0.0;
};

/// Outcome of one run (one defense, one attacker kind).
struct DetectionReport {
  /// False when the obs layer is compiled out (`-DASUP_METRICS=OFF`): no
  /// events flow, nothing below is meaningful.
  bool enabled = false;

  DefenseKind defense = DefenseKind::kNone;
  AttackerKind attacker = AttackerKind::kNone;

  /// One row per tracked client, benign clients first, attacker last.
  std::vector<DetectionClientRow> clients;

  /// Detection outcome: TPR is 1/0 (one attacker; 0 when kNone), FPR the
  /// flagged fraction of benign clients, advantage = TPR - FPR.
  double tpr = 0.0;
  double fpr = 0.0;
  double advantage = 0.0;

  size_t benign_clients = 0;
  size_t benign_flagged = 0;

  /// Traffic and watchtower volume over the run.
  uint64_t benign_queries = 0;
  uint64_t attacker_queries = 0;
  uint64_t events_ingested = 0;
  uint64_t queries_scored = 0;
  uint64_t events_retained = 0;
  uint64_t events_dropped = 0;
};

/// Runs one detection experiment. Deterministic in (config, defense,
/// attacker): the benign mix draws per-(client, epoch) streams, so every
/// run with the same config faces byte-identical benign traffic regardless
/// of the attacker riding along.
DetectionReport RunDetectionExperiment(const DetectionConfig& config,
                                       DefenseKind defense,
                                       AttackerKind attacker);

/// Per-client feature/verdict table of one run (fig. 21a).
CsvTable DetectionClientsCsv(const DetectionReport& report);

/// One summary row per run: defense and attacker (as indices), TPR / FPR /
/// advantage, volumes (fig. 21b).
CsvTable DetectionSummaryCsv(const std::vector<DetectionReport>& runs);

}  // namespace asup

#endif  // ASUP_EVAL_DETECTION_EXPERIMENT_H_
