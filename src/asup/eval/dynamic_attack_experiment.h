#ifndef ASUP_EVAL_DYNAMIC_ATTACK_EXPERIMENT_H_
#define ASUP_EVAL_DYNAMIC_ATTACK_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "asup/attack/correlation_adv.h"
#include "asup/attack/dynamic_est.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/csv.h"
#include "asup/workload/epoch_stream.h"

namespace asup {

/// Defense in front of the attacked interface.
enum class DefenseKind : uint8_t { kNone, kSimple, kArbi };

const char* DefenseKindName(DefenseKind kind);

/// One dynamic-corpus attack run: an epoch stream replayed through a
/// CorpusManager behind a (possibly defended) engine, with the dynamic
/// estimator and the correlation adversary riding the same query stream.
struct DynamicAttackConfig {
  /// Workload replayed against the engine.
  EpochStreamConfig stream;

  /// Documents in the initial corpus (epoch 1). The default 300 sits just
  /// above the γ=2 segment boundary at 256, where μ ≈ 1.17 — the regime
  /// where suppression visibly reshapes answers (estimates get pushed
  /// toward the segment top 512).
  size_t initial_corpus_size = 300;

  /// Held-out documents the adversary's query pool is built from.
  size_t held_out_size = 300;

  /// Interface result limit.
  size_t k = 50;

  /// Obfuscation factor of the defended runs.
  double gamma = 2.0;

  /// Interface queries the estimator may spend per epoch.
  uint64_t per_epoch_budget = 60000;

  DynamicEstimatorOptions estimator;
  CorrelationAdversaryOptions adversary;

  /// Generator parameters; its seed is overridden by `seed`. Defaults are
  /// shrunk to test scale (2000-word vocabulary) like tests/test_util.h.
  SyntheticCorpusConfig corpus_config;

  /// Pool stop-word threshold (QueryPool::Options::max_df_fraction). The
  /// default drops the df head of the external sample: head-word answers
  /// overflow at the interface (pure second-round noise for the estimator,
  /// exactly why published pools stop-word filter), and the d_max of the
  /// SIMPLE-ADV model stays small.
  double pool_max_df_fraction = 0.1;

  /// Seed of the synthetic-document generator (the corpus universe). The
  /// estimator's and the stream's sampling seeds live in their own
  /// sub-configs; together the config fixes the entire replay.
  uint64_t seed = 2026;

  DynamicAttackConfig() {
    corpus_config.vocabulary_size = 2000;
    corpus_config.num_topics = 12;
    corpus_config.words_per_topic = 150;
  }
};

/// Per-epoch measurements of one run.
struct DynamicEpochRow {
  /// CorpusManager epoch number (1 = initial corpus).
  uint64_t epoch = 0;
  /// Corpus size n of this epoch.
  uint64_t corpus_size = 0;
  /// Ground truth of the estimated quantity: the aggregate over the
  /// documents recallable through the pool on an *undefended* engine (the
  /// quantity the pool-based estimators are unbiased for; see
  /// attack/estimator.h).
  double true_value = 0.0;
  double estimate = 0.0;
  /// |estimate − true_value| / true_value (0 when true_value is 0).
  double rel_error = 0.0;
  /// true_value − previous epoch's true_value; 0 for the first epoch.
  double true_delta = 0.0;
  /// Estimator's delta for this epoch (DynamicEpochPoint::delta_estimate).
  double est_delta = 0.0;
  /// μ = n/γ^i of this epoch (reported for defended and undefended runs).
  double mu = 0.0;
  /// Indistinguishable-segment index i of this epoch.
  int segment_index = 0;
  /// True when the segment index differs from the previous epoch's — the
  /// boundary crossings where migration re-randomizes suppression.
  bool segment_crossed = false;
  uint64_t queries_spent = 0;
  uint64_t answers_changed = 0;
};

/// Outcome of one run (one defense, one workload).
struct DynamicAttackReport {
  DefenseKind defense = DefenseKind::kNone;
  EpochStreamKind workload = EpochStreamKind::kChurn;
  std::vector<DynamicEpochRow> rows;

  /// Mean / final per-epoch relative error of the dynamic estimator.
  double mean_rel_error = 0.0;
  double final_rel_error = 0.0;

  /// n-delta leakage: over epochs with a nonzero true delta, how often the
  /// estimator's delta has the correct sign. 0.5 = coin flip; counts how
  /// many epochs entered the evaluation.
  double delta_sign_accuracy = 0.0;
  size_t delta_sign_evaluated = 0;

  /// Correlation adversary's confusion matrix over the full query stream
  /// (ground truth: AsArbiStats::virtual_answers deltas per query) and its
  /// headline advantage over random guessing.
  AdvantageReport adversary_report;
  double adversary_advantage = 0.0;

  /// Segment-boundary crossings observed across the run.
  size_t segment_crossings = 0;

  /// Interface queries the attacker spent across all epochs.
  uint64_t total_queries = 0;
};

/// Replays `config.stream` against a fresh engine defended by `defense`,
/// running the dynamic estimator and the correlation adversary over the
/// stream. Fully deterministic in `config` (same config + defense ⇒
/// identical report), so defended and undefended runs with the same config
/// face the byte-identical workload — the paired comparison the
/// acceptance assertions need.
DynamicAttackReport RunDynamicAttack(const DynamicAttackConfig& config,
                                     DefenseKind defense);

/// Zips per-epoch rows of several reports (same workload, different
/// defenses) into a figure table: "epoch,n,true" plus
/// "<defense>_est,<defense>_relerr" per report. Rows are truncated to the
/// shortest report.
CsvTable DynamicAttackEpochsCsv(const std::vector<DynamicAttackReport>& runs);

/// One summary row per report: defense (as index: 0 none, 1 simple,
/// 2 arbi), error/leakage/advantage aggregates, query spend.
CsvTable DynamicAttackSummaryCsv(const std::vector<DynamicAttackReport>& runs);

}  // namespace asup

#endif  // ASUP_EVAL_DYNAMIC_ATTACK_EXPERIMENT_H_
