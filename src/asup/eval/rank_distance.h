#ifndef ASUP_EVAL_RANK_DISTANCE_H_
#define ASUP_EVAL_RANK_DISTANCE_H_

#include <vector>

#include "asup/text/document.h"

namespace asup {

/// Generalized Kendall-tau distance between two top-k lists
/// [Kumar & Vassilvitskii WWW'10; Fagin, Kumar & Sivakumar], the rank
/// quality measure the paper reports in Figure 7.
///
/// Every unordered pair {i, j} of documents from the union of the lists
/// contributes:
///  * both in both lists, ranked in opposite orders           -> 1
///  * i in both, j in one list only, j ranked above i there   -> 1
///  * i only in the first list, j only in the second          -> 1
///  * both missing from the same list                         -> `penalty`
///    (the "optimistic" choice is 0, the neutral one 0.5)
///  * otherwise                                               -> 0
///
/// The result is normalized by the total number of contributing pairs, so
/// it lies in [0, 1]; identical lists score 0, disjoint lists score 1.
double TopKKendallDistance(const std::vector<DocId>& a,
                           const std::vector<DocId>& b, double penalty = 0.5);

}  // namespace asup

#endif  // ASUP_EVAL_RANK_DISTANCE_H_
