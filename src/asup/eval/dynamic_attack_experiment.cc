#include "asup/eval/dynamic_attack_experiment.h"

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "asup/attack/aggregate.h"
#include "asup/attack/query_pool.h"
#include "asup/engine/search_engine.h"
#include "asup/index/corpus_manager.h"
#include "asup/obs/metrics.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/segment.h"
#include "asup/util/check.h"

namespace asup {

const char* DefenseKindName(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kNone:
      return "none";
    case DefenseKind::kSimple:
      return "simple";
    case DefenseKind::kArbi:
      return "arbi";
  }
  return "?";
}

namespace {

/// Decorator that feeds every (query, answer) pair the estimator generates
/// to the correlation adversary and scores its verdict against the engine's
/// own virtual-answer counter (the harness-side ground truth the adversary
/// itself never sees).
class AdversaryTapService : public SearchService {
 public:
  AdversaryTapService(SearchService& base, const AsArbiEngine* arbi,
                      CorrelationAdversary& adversary, AdvantageReport& report)
      : base_(&base), arbi_(arbi), adversary_(&adversary), report_(&report) {}

  SearchResult Search(const KeywordQuery& query) override {
    uint64_t virtual_before = 0;
    uint64_t hits_before = 0;
    if (arbi_ != nullptr) {
      const AsArbiStats before = arbi_->stats();
      virtual_before = before.virtual_answers;
      hits_before = before.cache_hits;
    }
    SearchResult result = base_->Search(query);
    bool served_virtually = false;
    if (arbi_ != nullptr) {
      const AsArbiStats after = arbi_->stats();
      if (after.cache_hits > hits_before) {
        // Replayed from the per-epoch answer cache: the answer is the one
        // fixed when this query was first processed this epoch, so its label
        // is too. (The cache is cleared on migration, so the map entry is
        // rewritten each epoch before any hit can consult it.)
        const auto it = labels_.find(query.hash());
        served_virtually = it != labels_.end() && it->second;
      } else {
        served_virtually = after.virtual_answers > virtual_before;
        labels_[query.hash()] = served_virtually;
      }
    }
    const bool predicted = adversary_->ObserveAndClassify(query, result);
    report_->Record(predicted, served_virtually);
    return result;
  }

  size_t k() const override { return base_->k(); }

 private:
  SearchService* base_;
  const AsArbiEngine* arbi_;
  CorrelationAdversary* adversary_;
  AdvantageReport* report_;
  std::map<uint64_t, bool> labels_;
};

int SignOf(double v) { return v > 0.0 ? 1 : (v < 0.0 ? -1 : 0); }

}  // namespace

DynamicAttackReport RunDynamicAttack(const DynamicAttackConfig& config,
                                     DefenseKind defense) {
  ASUP_CHECK(config.initial_corpus_size > 0);
  DynamicAttackReport report;
  report.defense = defense;
  report.workload = config.stream.kind;

  SyntheticCorpusConfig generator_config = config.corpus_config;
  generator_config.seed = config.seed;
  SyntheticCorpusGenerator generator(generator_config);

  // Universe document store: the estimator's fetcher (and the ground-truth
  // measure) must resolve every id ever disclosed — including documents
  // deleted in later epochs, which AS-ARBI may have answered with before
  // its history was compacted.
  std::map<DocId, Document> universe;
  const auto absorb = [&universe](const std::vector<Document>& docs) {
    for (const Document& doc : docs) universe.emplace(doc.id(), doc);
  };

  Corpus initial = generator.Generate(config.initial_corpus_size);
  absorb(initial.documents());
  const Corpus held_out = generator.Generate(config.held_out_size);

  QueryPool::Options pool_options;
  pool_options.max_df_fraction = config.pool_max_df_fraction;
  const QueryPool pool(held_out, pool_options);

  CorpusManager manager(std::move(initial));
  PlainSearchEngine engine(manager, config.k);

  // Answer caches stay ON (the production configuration, and what keeps
  // AS-ARBI affordable when the estimator re-issues its pool every epoch).
  // The tap service labels cache hits from the verdict recorded when the
  // answer was first processed in the epoch.
  std::unique_ptr<AsSimpleEngine> simple;
  std::unique_ptr<AsArbiEngine> arbi;
  SearchService* attacked = &engine;
  if (defense == DefenseKind::kSimple) {
    AsSimpleConfig simple_config;
    simple_config.gamma = config.gamma;
    simple = std::make_unique<AsSimpleEngine>(engine, simple_config);
    attacked = simple.get();
  } else if (defense == DefenseKind::kArbi) {
    AsArbiConfig arbi_config;
    arbi_config.simple.gamma = config.gamma;
    arbi = std::make_unique<AsArbiEngine>(engine, arbi_config);
    attacked = arbi.get();
  }

  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = [&universe](DocId id) -> const Document& {
    const auto it = universe.find(id);
    ASUP_CHECK(it != universe.end());
    return it->second;
  };

  DynamicEstimator estimator(pool, aggregate, fetcher, config.estimator);
  CorrelationAdversary adversary(config.adversary);
  AdversaryTapService tap(*attacked, arbi.get(), adversary,
                          report.adversary_report);

  EpochStream stream(generator, config.stream);

  double previous_truth = 0.0;
  int previous_segment = 0;
  const auto observe_current_epoch = [&]() {
    const SnapshotHandle snapshot = manager.Current();

    // Ground truth: the aggregate over the documents recallable through
    // the pool on the undefended substrate (privileged harness-side
    // computation; none of these queries touch defended state).
    std::set<DocId> recalled;
    double truth = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      for (const ScoredDoc& scored : engine.Search(pool.QueryAt(i)).docs) {
        if (recalled.insert(scored.doc).second) {
          truth += aggregate.MeasureOf(fetcher(scored.doc));
        }
      }
    }

    const DynamicEpochPoint point =
        estimator.ObserveEpoch(tap, config.per_epoch_budget);

    DynamicEpochRow row;
    row.epoch = snapshot->epoch();
    row.corpus_size = snapshot->NumDocuments();
    row.true_value = truth;
    row.estimate = point.estimate;
    row.rel_error = truth == 0.0
                        ? (point.estimate == 0.0 ? 0.0 : 1.0)
                        : std::abs(point.estimate - truth) / truth;
    row.true_delta = report.rows.empty() ? 0.0 : truth - previous_truth;
    row.est_delta = point.delta_estimate;
    const IndistinguishableSegment segment(row.corpus_size, config.gamma);
    row.mu = segment.mu();
    row.segment_index = segment.segment_index();
    row.segment_crossed =
        !report.rows.empty() && segment.segment_index() != previous_segment;
    row.queries_spent = point.queries_spent;
    row.answers_changed = point.answers_changed;
    previous_truth = truth;
    previous_segment = row.segment_index;
    report.rows.push_back(row);

    ASUP_METRIC_GAUGE_SET("asup_eval_dynamic_true_value", truth);
    ASUP_METRIC_GAUGE_SET("asup_eval_dynamic_rel_error", row.rel_error);
  };

  observe_current_epoch();  // epoch 1, before any delta
  while (!stream.exhausted()) {
    CorpusDelta delta = stream.NextDelta(manager.Current()->corpus());
    absorb(delta.add);
    manager.Apply(delta);
    observe_current_epoch();
  }

  // Aggregates over the run.
  double error_sum = 0.0;
  size_t sign_hits = 0;
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const DynamicEpochRow& row = report.rows[i];
    error_sum += row.rel_error;
    report.total_queries += row.queries_spent;
    if (row.segment_crossed) ++report.segment_crossings;
    if (i > 0 && row.true_delta != 0.0) {
      ++report.delta_sign_evaluated;
      if (SignOf(row.est_delta) == SignOf(row.true_delta)) ++sign_hits;
    }
  }
  report.mean_rel_error =
      report.rows.empty() ? 0.0
                          : error_sum / static_cast<double>(report.rows.size());
  report.final_rel_error =
      report.rows.empty() ? 0.0 : report.rows.back().rel_error;
  report.delta_sign_accuracy =
      report.delta_sign_evaluated == 0
          ? 0.0
          : static_cast<double>(sign_hits) /
                static_cast<double>(report.delta_sign_evaluated);
  report.adversary_advantage = report.adversary_report.Advantage();

  ASUP_METRIC_GAUGE_SET("asup_eval_dynamic_mean_rel_error",
                        report.mean_rel_error);
  ASUP_METRIC_GAUGE_SET("asup_eval_dynamic_adversary_advantage",
                        report.adversary_advantage);
  return report;
}

CsvTable DynamicAttackEpochsCsv(const std::vector<DynamicAttackReport>& runs) {
  std::vector<std::string> columns = {"epoch", "n", "true"};
  size_t num_rows = runs.empty() ? 0 : runs[0].rows.size();
  for (const DynamicAttackReport& run : runs) {
    const std::string name = DefenseKindName(run.defense);
    columns.push_back(name + "_est");
    columns.push_back(name + "_relerr");
    num_rows = std::min(num_rows, run.rows.size());
  }
  CsvTable table(columns);
  for (size_t i = 0; i < num_rows; ++i) {
    std::vector<double> row = {
        static_cast<double>(runs[0].rows[i].epoch),
        static_cast<double>(runs[0].rows[i].corpus_size),
        runs[0].rows[i].true_value};
    for (const DynamicAttackReport& run : runs) {
      row.push_back(run.rows[i].estimate);
      row.push_back(run.rows[i].rel_error);
    }
    table.AddRow(row);
  }
  return table;
}

CsvTable DynamicAttackSummaryCsv(const std::vector<DynamicAttackReport>& runs) {
  CsvTable table({"defense", "mean_relerr", "final_relerr", "sign_acc",
                  "advantage", "crossings", "queries"});
  for (const DynamicAttackReport& run : runs) {
    table.AddRow({static_cast<double>(run.defense), run.mean_rel_error,
                  run.final_rel_error, run.delta_sign_accuracy,
                  run.adversary_advantage,
                  static_cast<double>(run.segment_crossings),
                  static_cast<double>(run.total_queries)});
  }
  return table;
}

}  // namespace asup
