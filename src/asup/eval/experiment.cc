#include "asup/eval/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "asup/obs/run_report.h"
#include "asup/util/hash.h"

namespace asup {

bool PaperScale() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup, never set
  const char* scale = std::getenv("ASUP_SCALE");
  return scale != nullptr && std::strcmp(scale, "paper") == 0;
}

size_t ScaledSize(size_t small, size_t paper) {
  return PaperScale() ? paper : small;
}

EngineStack::EngineStack(const Corpus& corpus, size_t k,
                         std::unique_ptr<ScoringFunction> scorer)
    : index_(std::make_unique<InvertedIndex>(corpus)),
      plain_(std::make_unique<PlainSearchEngine>(*index_, k,
                                                 std::move(scorer))) {}

EngineStack EngineStack::Plain(const Corpus& corpus, size_t k,
                               std::unique_ptr<ScoringFunction> scorer) {
  return EngineStack(corpus, k, std::move(scorer));
}

EngineStack EngineStack::WithSimple(const Corpus& corpus, size_t k,
                                    const AsSimpleConfig& config,
                                    std::unique_ptr<ScoringFunction> scorer) {
  EngineStack stack(corpus, k, std::move(scorer));
  stack.simple_ = std::make_unique<AsSimpleEngine>(*stack.plain_, config);
  return stack;
}

EngineStack EngineStack::WithArbi(const Corpus& corpus, size_t k,
                                  const AsArbiConfig& config,
                                  std::unique_ptr<ScoringFunction> scorer) {
  EngineStack stack(corpus, k, std::move(scorer));
  stack.arbi_ = std::make_unique<AsArbiEngine>(*stack.plain_, config);
  return stack;
}

SearchService& EngineStack::service() {
  if (arbi_ != nullptr) return *arbi_;
  if (simple_ != nullptr) return *simple_;
  return *plain_;
}

ExperimentEnv::ExperimentEnv(const Options& options) : options_(options) {
  SyntheticCorpusConfig config = options.corpus_config;
  config.seed = options.seed;
  SyntheticCorpusGenerator generator(config);
  universe_ = generator.Generate(options.universe_size);
  held_out_ = generator.Generate(options.held_out_size);
  QueryPool::Options pool_options;
  pool_options.max_df_fraction = options.pool_max_df_fraction;
  pool_ = std::make_unique<QueryPool>(held_out_, pool_options);
}

Corpus ExperimentEnv::SampleCorpus(size_t size, uint64_t salt) const {
  Rng rng(HashCombine(options_.seed, salt));
  return universe_.SampleSubcorpus(size, rng);
}

CsvTable TrajectoriesToCsv(
    const std::vector<std::string>& series_names,
    const std::vector<std::vector<EstimationPoint>>& trajectories) {
  std::vector<std::string> columns{"queries"};
  for (const auto& name : series_names) columns.push_back(name);
  CsvTable table(std::move(columns));
  size_t rows = SIZE_MAX;
  for (const auto& trajectory : trajectories) {
    rows = std::min(rows, trajectory.size());
  }
  if (rows == SIZE_MAX) rows = 0;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<double> row;
    row.push_back(static_cast<double>(trajectories[0][r].queries_issued));
    for (const auto& trajectory : trajectories) {
      row.push_back(trajectory[r].estimate);
    }
    table.AddRow(row);
  }
  return table;
}

void PrintFigure(const std::string& title, const CsvTable& table) {
  std::cout << "# " << title << "\n";
  table.Print(std::cout);
  std::cout.flush();
}

void PrintRunReport(const std::string& title) {
#if ASUP_METRICS_ENABLED
  PrintFigure(title, obs::RunReport::Collect().StagePercentileTable());
#else
  (void)title;
#endif
}

void ResetRunMetrics() {
#if ASUP_METRICS_ENABLED
  obs::MetricsRegistry::Default().Reset();
#endif
}

double FinalEstimateSpread(
    const std::vector<std::vector<EstimationPoint>>& trajectories) {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  size_t count = 0;
  for (const auto& trajectory : trajectories) {
    if (trajectory.empty()) continue;
    const double final = trajectory.back().estimate;
    if (count == 0) {
      min = final;
      max = final;
    } else {
      min = std::min(min, final);
      max = std::max(max, final);
    }
    sum += final;
    ++count;
  }
  if (count < 2 || sum == 0.0) return 0.0;
  return (max - min) / (sum / static_cast<double>(count));
}

}  // namespace asup
