#include "asup/eval/privacy_game.h"

#include <cmath>

#include "asup/attack/unbiased_est.h"
#include "asup/util/hash.h"

namespace asup {

PrivacyGameResult PlayPrivacyGame(const ServiceFactory& factory,
                                  const QueryPool& pool,
                                  const AggregateQuery& aggregate,
                                  const DocFetcher& fetcher, double true_value,
                                  const PrivacyGameConfig& config) {
  PrivacyGameResult result;
  result.true_value = true_value;
  size_t wins = 0;
  for (size_t trial = 0; trial < config.trials; ++trial) {
    std::unique_ptr<SearchService> service = factory();
    UnbiasedEstimator::Options options;
    options.seed = HashCombine(config.seed, trial);
    UnbiasedEstimator estimator(pool, aggregate, fetcher, options);
    const std::vector<EstimationPoint> points =
        estimator.Run(*service, config.query_budget, config.query_budget);
    const double estimate = points.back().estimate;
    result.estimates.Add(estimate);
    if (std::abs(estimate - true_value) <= config.epsilon / 2.0) ++wins;
  }
  result.win_rate = config.trials == 0 ? 0.0
                                       : static_cast<double>(wins) /
                                             static_cast<double>(config.trials);
  return result;
}

}  // namespace asup
