// Section 5.1's correlated-query attack, live: a pool of strongly
// overlapping queries makes AS-SIMPLE's answer sizes decay (revealing
// where in its indistinguishable segment the corpus sits), while AS-ARBI's
// virtual query processing keeps the answers steady.
//
//   ./correlated_attack_demo

#include <cstdio>

#include "asup/attack/correlated.h"
#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/text/synthetic_corpus.h"

using namespace asup;

int main() {
  // A corpus whose "sports" population is comparable to k, near the bottom
  // of its indistinguishable segment (1050 docs, segment [1024, 2048)).
  SyntheticCorpusConfig config;
  config.vocabulary_size = 10000;
  config.num_topics = 96;
  config.words_per_topic = 300;
  config.seed = 99;
  SyntheticCorpusGenerator generator(config);
  Corpus corpus = generator.Generate(1050);
  Corpus external = generator.Generate(2500);

  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, /*k=*/50);

  // The adversary mines its external corpus for words co-occurring with
  // "sports" and issues the pair queries in sequence.
  CorrelatedQueryAttack::Options options;
  options.num_queries = 30;
  options.min_cooccurrence = 3;
  CorrelatedQueryAttack attack(external, "sports", options);
  std::printf("correlated pool: %zu queries, e.g. '%s', '%s', ...\n",
              attack.queries().size(),
              attack.queries()[0].canonical().c_str(),
              attack.queries()[1].canonical().c_str());

  AsSimpleConfig simple_config;
  simple_config.gamma = 2.0;
  AsSimpleEngine as_simple(engine, simple_config);
  AsArbiConfig arbi_config;
  arbi_config.simple = simple_config;
  AsArbiEngine as_arbi(engine, arbi_config);

  const auto counts_simple = attack.Run(as_simple);
  const auto counts_arbi = attack.Run(as_arbi);

  std::printf("\n%-28s %8s %10s %9s\n", "query", "fresh", "AS-SIMPLE",
              "AS-ARBI");
  for (size_t i = 0; i < attack.queries().size(); ++i) {
    AsSimpleEngine fresh(engine, simple_config);
    const size_t fresh_count =
        fresh.Search(attack.queries()[i]).docs.size();
    std::printf("%-28s %8zu %10zu %9zu\n",
                attack.queries()[i].canonical().c_str(), fresh_count,
                counts_simple[i], counts_arbi[i]);
  }
  std::printf(
      "\nAS-SIMPLE's counts sink below the fresh counts as the overlapping\n"
      "queries keep re-hitting already-returned documents; AS-ARBI answered\n"
      "%llu of %zu queries virtually and stays level.\n",
      (unsigned long long)as_arbi.stats().virtual_answers,
      attack.queries().size());
  return 0;
}
