// The paper's Section 8 extension target: a *structured* hidden database
// behind a keyword-search interface. Tuples are flattened into documents
// (footnote 1 of the paper), attribute-scoped terms carry the selection
// condition, and AS-ARBI suppresses the aggregate with no changes.
//
//   ./hidden_database

#include <cstdio>
#include <memory>
#include <string>

#include "asup/attack/unbiased_est.h"
#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/text/structured.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/random.h"

using namespace asup;

int main() {
  // An employment database: the agency supports individual record search
  // but considers per-city layoff counts sensitive.
  auto vocab = std::make_shared<Vocabulary>();
  StructuredTable table(vocab, {"city", "employer", "status", "notes"});

  const char* cities[] = {"springfield", "riverton", "lakewood", "fairview"};
  const char* employers[] = {"acme", "globex", "initech", "umbrella",
                             "stark", "wayne"};
  const char* notes[] = {
      "seasonal contract ended early",      "position relocated out of state",
      "plant modernization program",        "role absorbed by automation",
      "standard quarterly review outcome",  "voluntary departure package",
      "department restructuring follow up", "new compliance requirements"};

  // Free-text notes carry realistic rare words (names, case details), the
  // substrate sampling attacks rely on.
  Rng rng(17);
  auto detail_words = Vocabulary::GenerateSynthetic(12000, rng);
  ZipfDistribution detail_dist(12000, 1.05);
  auto make_notes = [&](Rng& r) {
    std::string text = notes[r.UniformBelow(8)];
    for (int w = 0; w < 10; ++w) {
      text += " " + detail_words->WordOf(
                        static_cast<TermId>(detail_dist.Sample(r)));
    }
    return text;
  };

  for (int i = 0; i < 9000; ++i) {
    const bool layoff = rng.Bernoulli(0.18);
    table.AddTuple({cities[rng.UniformBelow(4)],
                    employers[rng.UniformBelow(6)],
                    layoff ? "laid off" : "employed", make_notes(rng)});
  }
  Corpus corpus = table.ToCorpus();

  // A second, disjoint table from the same value distributions plays the
  // adversary's external sample.
  StructuredTable external_table(vocab,
                                 {"city", "employer", "status", "notes"});
  for (int i = 0; i < 3000; ++i) {
    const bool layoff = rng.Bernoulli(0.18);
    external_table.AddTuple({cities[rng.UniformBelow(4)],
                             employers[rng.UniformBelow(6)],
                             layoff ? "laid off" : "employed",
                             make_notes(rng)});
  }
  // Shift ids so the corpora do not collide.
  const Corpus external_raw = external_table.ToCorpus();
  std::vector<Document> shifted;
  for (const Document& doc : external_raw.documents()) {
    shifted.emplace_back(doc.id() + 1000000, doc.terms(), doc.length());
  }
  Corpus external(vocab, std::move(shifted));

  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, /*k=*/5);
  AsArbiConfig defense;
  AsArbiEngine defended(engine, defense);

  // Individual record search keeps working.
  const auto record_query =
      KeywordQuery::Parse(*vocab, "springfield acme laid off");
  std::printf("record search '%s': %zu results (defended: %zu)\n",
              record_query.canonical().c_str(),
              engine.Search(record_query).docs.size(),
              defended.Search(record_query).docs.size());

  // Sensitive aggregate: layoffs in Springfield, via scoped terms.
  const TermId city = *table.AttributeTerm("city", "springfield");
  const TermId status = *table.AttributeTerm("status", "laid");
  const double truth = corpus.CountWhere([&](const Document& doc) {
    return doc.Contains(city) && doc.Contains(status);
  });

  // Conjunctive attribute-scoped selection: laid-off AND in Springfield
  // (the per-city count the agency considers sensitive).
  const AggregateQuery aggregate =
      AggregateQuery::CountContainingAll({city, status});
  const double layoffs_total =
      AggregateQuery::CountContaining(status).TrueValue(corpus);
  std::printf("aggregate under attack: %s\n",
              aggregate.Name(*vocab).c_str());

  QueryPool pool(external);
  UnbiasedEstimator attacker(pool, aggregate, FetchFrom(corpus));
  const double est_plain =
      attacker.Run(engine, /*query_budget=*/1500, 1500).back().estimate;
  UnbiasedEstimator attacker2(pool, aggregate, FetchFrom(corpus));
  const double est_defended =
      attacker2.Run(defended, /*query_budget=*/1500, 1500).back().estimate;

  std::printf("\nlayoff records (sensitive): %0.f total, %0.f in "
              "Springfield\n",
              layoffs_total, truth);
  std::printf("adversary estimate, undefended : %.0f\n", est_plain);
  std::printf("adversary estimate, AS-ARBI    : %.0f (segment top: %.0f "
              "tuples)\n",
              est_defended, defended.segment().segment_high());
  return 0;
}
