// Interactive search shell over a synthetic (or saved) corpus, with the
// suppression layers switchable at runtime. Useful for poking at the
// defenses by hand.
//
//   ./search_repl [corpus.asup]
//
// Commands:
//   <words...>           run a keyword query against the active engine
//   :engine plain|simple|arbi|decline    switch the active engine
//   :stats               print corpus/index/defense statistics
//   :save <path>         persist the corpus for faster restarts
//   :quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "asup/engine/search_engine.h"
#include "asup/index/corpus_io.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_decline.h"
#include "asup/suppress/as_simple.h"
#include "asup/text/synthetic_corpus.h"

using namespace asup;

namespace {

const char* StatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kUnderflow:
      return "underflow";
    case QueryStatus::kValid:
      return "valid";
    case QueryStatus::kOverflow:
      return "overflow";
    case QueryStatus::kDeclined:
      return "declined";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::unique_ptr<Corpus> corpus;
  if (argc > 1) {
    auto loaded = LoadCorpus(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "cannot load corpus from %s\n", argv[1]);
      return 1;
    }
    corpus = std::make_unique<Corpus>(std::move(*loaded));
    std::printf("loaded %zu documents from %s\n", corpus->size(), argv[1]);
  } else {
    std::printf("generating a 20000-document corpus...\n");
    SyntheticCorpusConfig config;
    config.seed = 42;
    SyntheticCorpusGenerator generator(config);
    corpus = std::make_unique<Corpus>(generator.Generate(20000));
  }

  InvertedIndex index(*corpus);
  PlainSearchEngine plain(index, /*k=*/5);
  AsSimpleConfig simple_config;
  AsSimpleEngine simple(plain, simple_config);
  AsArbiConfig arbi_config;
  AsArbiEngine arbi(plain, arbi_config);
  AsDeclineConfig decline_config;
  AsDeclineEngine decline(plain, decline_config);

  SearchService* active = &arbi;
  std::string active_name = "arbi";
  std::printf(
      "engine: AS-ARBI (gamma=2). Type words to search, :engine to switch, "
      ":quit to exit.\n");

  std::string line;
  while (std::printf("asup[%s]> ", active_name.c_str()),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line[0] == ':') {
      std::istringstream command(line.substr(1));
      std::string verb;
      command >> verb;
      if (verb == "quit" || verb == "q") break;
      if (verb == "engine") {
        std::string which;
        command >> which;
        if (which == "plain") {
          active = &plain;
        } else if (which == "simple") {
          active = &simple;
        } else if (which == "arbi") {
          active = &arbi;
        } else if (which == "decline") {
          active = &decline;
        } else {
          std::printf("unknown engine '%s' (plain|simple|arbi|decline)\n",
                      which.c_str());
          continue;
        }
        active_name = which;
      } else if (verb == "stats") {
        const IndexStats& stats = index.stats();
        std::printf("corpus: %zu docs, %llu tokens, vocab %zu\n",
                    corpus->size(),
                    (unsigned long long)corpus->TotalLength(),
                    corpus->vocabulary().size());
        std::printf("index: %zu terms, %llu postings, %llu bytes\n",
                    stats.num_terms,
                    (unsigned long long)stats.num_postings,
                    (unsigned long long)stats.posting_bytes);
        std::printf("segment: [%0.f, %0.f), mu=%.3f\n",
                    simple.segment().segment_low(),
                    simple.segment().segment_high(), simple.segment().mu());
        std::printf("AS-SIMPLE: %llu queries, %zu activated docs\n",
                    (unsigned long long)simple.stats().queries_processed,
                    simple.NumActivatedDocs());
        std::printf("AS-ARBI: %llu queries, %llu virtual, %llu history\n",
                    (unsigned long long)arbi.stats().queries_processed,
                    (unsigned long long)arbi.stats().virtual_answers,
                    (unsigned long long)arbi.history().NumQueries());
        std::printf("AS-DECLINE: %llu declined\n",
                    (unsigned long long)decline.stats().declined);
      } else if (verb == "save") {
        std::string path;
        command >> path;
        std::printf(SaveCorpus(*corpus, path) ? "saved to %s\n"
                                              : "save to %s FAILED\n",
                    path.c_str());
      } else {
        std::printf("commands: :engine <e>, :stats, :save <path>, :quit\n");
      }
      continue;
    }

    const auto query = KeywordQuery::Parse(corpus->vocabulary(), line);
    const SearchResult result = active->Search(query);
    std::printf("'%s' -> %s, %zu docs\n", query.canonical().c_str(),
                StatusName(result.status), result.docs.size());
    for (const auto& scored : result.docs) {
      const Document& doc = corpus->Get(scored.doc);
      std::printf("  doc %-8u score %7.3f  length %u\n", scored.doc,
                  scored.score, doc.length());
    }
  }
  return 0;
}
