// The paper's "government concern" scenario (Section 1): a patent office
// supports keyword search over patents, each carrying its examiner's name.
// A third party could estimate the number of patents approved by one
// examiner in a year — and from the office's known workloads, the
// examiner's approval rate. AS-ARBI suppresses the per-examiner COUNT.
//
//   ./patent_office

#include <cstdio>
#include <string>
#include <vector>

#include "asup/attack/unbiased_est.h"
#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/text/tokenizer.h"
#include "asup/util/random.h"

using namespace asup;

namespace {

constexpr const char* kExaminers[] = {"stone", "rivera", "okafor", "lindt"};

// Patents are synthetic documents with an examiner's name appended —
// mirroring how the USPTO displays the examiner on each returned case.
struct PatentOffice {
  explicit PatentOffice(uint64_t seed) {
    SyntheticCorpusConfig config;
    config.seed = seed;
    SyntheticCorpusGenerator generator(config);
    // 17000 patents: near the bottom of the [16384, 32768) segment,
    // so per-examiner counts inflate by nearly gamma.
    Corpus base = generator.Generate(17000);
    external = std::make_unique<Corpus>(generator.Generate(4000));
    vocabulary = base.vocabulary_ptr();

    // Stamp each patent with an examiner (skewed workloads).
    Rng rng(seed + 1);
    std::vector<Document> stamped;
    for (const Document& doc : base.documents()) {
      const size_t examiner =
          rng.NextDouble() < 0.4 ? 0 : rng.UniformBelow(4);
      std::vector<TermFreq> terms = doc.terms();
      const TermId name_term =
          vocabulary->AddWord(std::string("examiner") + kExaminers[examiner]);
      // Insert the examiner token keeping the term list sorted.
      auto it = std::lower_bound(terms.begin(), terms.end(), name_term,
                                 [](const TermFreq& a, TermId b) {
                                   return a.term < b;
                                 });
      terms.insert(it, TermFreq{name_term, 1});
      stamped.emplace_back(doc.id(), std::move(terms), doc.length() + 1);
    }
    patents = std::make_unique<Corpus>(vocabulary, std::move(stamped));
  }

  std::shared_ptr<Vocabulary> vocabulary;
  std::unique_ptr<Corpus> patents;
  std::unique_ptr<Corpus> external;
};

}  // namespace

int main() {
  PatentOffice office(/*seed=*/11);
  const Vocabulary& vocab = *office.vocabulary;

  InvertedIndex index(*office.patents);
  PlainSearchEngine engine(index, /*k=*/5);
  AsArbiConfig defense;
  defense.simple.gamma = 2.0;
  AsArbiEngine defended(engine, defense);

  // Legal-compliance search keeps working under the defense.
  const auto query = KeywordQuery::Parse(vocab, "patent filing");
  std::printf("case search '%s': %zu results (defended: %zu)\n",
              query.canonical().c_str(), engine.Search(query).docs.size(),
              defended.Search(query).docs.size());

  // The investigator targets examiner Stone's caseload.
  const TermId stone = *vocab.Lookup("examinerstone");
  const AggregateQuery aggregate = AggregateQuery::CountContaining(stone);
  const double truth = aggregate.TrueValue(*office.patents);

  QueryPool pool(*office.external);
  UnbiasedEstimator investigator(pool, aggregate, FetchFrom(*office.patents));
  const double est_plain =
      investigator.Run(engine, /*query_budget=*/2500, 2500).back().estimate;
  UnbiasedEstimator investigator2(pool, aggregate,
                                  FetchFrom(*office.patents));
  const double est_defended =
      investigator2.Run(defended, /*query_budget=*/2500, 2500)
          .back()
          .estimate;

  std::printf("\npatents examined by Stone (sensitive):\n");
  std::printf("  truth        : %.0f of %zu patents\n", truth,
              office.patents->size());
  std::printf("  undefended   : %.0f\n", est_plain);
  std::printf("  with AS-ARBI : %.0f (pushed toward the segment top; the\n"
              "                 approval-rate inference no longer works)\n",
              est_defended);
  return 0;
}
