// The paper's "commercial competition" scenario (Section 1): an online
// retailer lets customers search product reviews. A competitor uses the
// search box plus UNBIASED-EST to estimate how many reviews say
// "poor quality" — ammunition for an ad campaign. AS-ARBI suppresses the
// estimate while customers' searches keep working.
//
//   ./retailer_reviews

#include <cstdio>
#include <string>
#include <vector>

#include "asup/attack/unbiased_est.h"
#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/text/synthetic_corpus.h"

using namespace asup;

namespace {

// Builds a review-like corpus: the synthetic generator's topic 1 is seeded
// with review vocabulary ("poor", "quality", "product", "refund", ...), so
// a slice of the documents read like complaints and the rest like ordinary
// product chatter.
struct ReviewSite {
  explicit ReviewSite(uint64_t seed) {
    SyntheticCorpusConfig config;
    config.seed = seed;
    generator = std::make_unique<SyntheticCorpusGenerator>(config);
    // 17000 reviews sit near the bottom of the [16384, 32768)
    // indistinguishable segment, where suppression pushes estimates
    // almost a full factor gamma upward.
    reviews = std::make_unique<Corpus>(generator->Generate(17000));
    crawled_elsewhere = std::make_unique<Corpus>(generator->Generate(4000));
  }
  std::unique_ptr<SyntheticCorpusGenerator> generator;
  std::unique_ptr<Corpus> reviews;          // the retailer's review corpus
  std::unique_ptr<Corpus> crawled_elsewhere;  // competitor's external sample
};

}  // namespace

int main() {
  ReviewSite site(/*seed=*/7);
  const Vocabulary& vocab = site.reviews->vocabulary();
  const TermId poor = *vocab.Lookup("poor");

  // The sensitive aggregate: # reviews mentioning "poor".
  const AggregateQuery aggregate = AggregateQuery::CountContaining(poor);
  const double truth = aggregate.TrueValue(*site.reviews);
  std::printf("reviews: %zu; containing 'poor': %.0f (sensitive!)\n",
              site.reviews->size(), truth);

  InvertedIndex index(*site.reviews);
  PlainSearchEngine engine(index, /*k=*/5);

  // A customer searches for reviews of flaky products — this must keep
  // working under the defense.
  const auto customer_query = KeywordQuery::Parse(vocab, "poor quality");
  const auto before = engine.Search(customer_query);

  AsArbiConfig defense;
  defense.simple.gamma = 2.0;
  AsArbiEngine defended(engine, defense);
  const auto after = defended.Search(customer_query);
  size_t common = 0;
  for (const auto& scored : after.docs) common += before.Returned(scored.doc);
  std::printf(
      "\ncustomer query '%s': %zu docs before, %zu after defense "
      "(%zu in common)\n",
      customer_query.canonical().c_str(), before.docs.size(),
      after.docs.size(), common);

  // The competitor attacks both engines with a pool built from reviews it
  // crawled from other sites.
  QueryPool pool(*site.crawled_elsewhere);
  UnbiasedEstimator competitor(pool, aggregate, FetchFrom(*site.reviews));
  const double est_undefended =
      competitor.Run(engine, /*query_budget=*/1500, 1500).back().estimate;
  UnbiasedEstimator competitor2(pool, aggregate, FetchFrom(*site.reviews));
  const double est_defended =
      competitor2.Run(defended, /*query_budget=*/1500, 1500).back().estimate;

  std::printf("\ncompetitor's estimate of #'poor' reviews:\n");
  std::printf("  truth        : %.0f\n", truth);
  std::printf("  undefended   : %.0f  (%.0f%% of truth)\n", est_undefended,
              100.0 * est_undefended / truth);
  std::printf("  with AS-ARBI : %.0f  (%.0f%% of truth — inflated toward "
              "the segment top)\n",
              est_defended, 100.0 * est_defended / truth);
  return 0;
}
