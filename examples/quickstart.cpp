// Quickstart: build a corpus, index it, search it, then wrap the engine
// with AS-ARBI and watch a sampling attack's aggregate estimate get pushed
// to the indistinguishable-segment top while ordinary answers barely move.
//
//   ./quickstart

#include <cstdio>

#include "asup/attack/unbiased_est.h"
#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/text/synthetic_corpus.h"

using namespace asup;

int main() {
  // 1. A corpus. (Real deployments index their own documents; the library
  //    ships a web-text-like generator for experimentation.)
  SyntheticCorpusConfig config;
  config.seed = 42;
  SyntheticCorpusGenerator generator(config);
  Corpus corpus = generator.Generate(20000);
  Corpus held_out = generator.Generate(4000);  // the adversary's sample
  std::printf("corpus: %zu documents, %llu tokens\n", corpus.size(),
              (unsigned long long)corpus.TotalLength());

  // 2. The enterprise search engine: inverted index + BM25 + top-k.
  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, /*k=*/5);

  // 3. Ordinary keyword search.
  const auto query = KeywordQuery::Parse(corpus.vocabulary(), "sports team");
  const SearchResult plain_answer = engine.Search(query);
  std::printf("\n'%s' -> %zu docs (%s)\n", query.canonical().c_str(),
              plain_answer.docs.size(),
              plain_answer.status == QueryStatus::kOverflow ? "overflow"
                                                            : "valid");
  for (const auto& scored : plain_answer.docs) {
    std::printf("  doc %u  score %.3f\n", scored.doc, scored.score);
  }

  // 4. The same engine behind AS-ARBI (obfuscation factor gamma = 2).
  AsArbiConfig defense;
  defense.simple.gamma = 2.0;
  AsArbiEngine defended(engine, defense);
  const SearchResult defended_answer = defended.Search(query);
  std::printf("\ndefended '%s' -> %zu docs\n", query.canonical().c_str(),
              defended_answer.docs.size());
  for (const auto& scored : defended_answer.docs) {
    std::printf("  doc %u  score %.3f\n", scored.doc, scored.score);
  }

  // 5. The adversary: UNBIASED-EST with a single-word pool built from the
  //    held-out sample, estimating COUNT(*).
  QueryPool pool(held_out);
  std::printf("\nadversary pool: %zu single-word queries\n", pool.size());
  const AggregateQuery aggregate = AggregateQuery::Count();

  UnbiasedEstimator attacker(pool, aggregate, FetchFrom(corpus));
  const double undefended_estimate =
      attacker.Run(engine, /*query_budget=*/3000, 3000).back().estimate;

  UnbiasedEstimator attacker2(pool, aggregate, FetchFrom(corpus));
  const double defended_estimate =
      attacker2.Run(defended, /*query_budget=*/3000, 3000).back().estimate;

  std::printf("\ntrue COUNT(*)          : %zu\n", corpus.size());
  std::printf("estimate, undefended   : %.0f\n", undefended_estimate);
  std::printf("estimate, AS-ARBI      : %.0f  (segment top: %.0f)\n",
              defended_estimate, defended.segment().segment_high());
  return 0;
}
