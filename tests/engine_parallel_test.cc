#include "asup/engine/parallel_service.h"

#include <vector>

#include <gtest/gtest.h>

#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

std::vector<KeywordQuery> MakeWorkload(const Rig& rig, size_t repeats) {
  const char* words[] = {"sports",        "game",        "team",
                         "sports game",   "score",       "league coach",
                         "season",        "player game", "coach",
                         "sports league"};
  std::vector<KeywordQuery> log;
  for (size_t r = 0; r < repeats; ++r) {
    for (const char* w : words) log.push_back(rig.Q(w));
  }
  return log;
}

void ExpectBitwiseEqual(const SearchResult& a, const SearchResult& b,
                        size_t at) {
  ASSERT_EQ(a.status, b.status) << "query " << at;
  ASSERT_EQ(a.docs.size(), b.docs.size()) << "query " << at;
  for (size_t d = 0; d < a.docs.size(); ++d) {
    ASSERT_EQ(a.docs[d].doc, b.docs[d].doc) << "query " << at;
    ASSERT_EQ(a.docs[d].score, b.docs[d].score) << "query " << at;
  }
}

TEST(BatchExecutorTest, ConcurrentPlainBatchMatchesSerialBitwise) {
  Rig rig = MakeRig(500, 5);
  const auto log = MakeWorkload(rig, 3);

  std::vector<SearchResult> serial;
  for (const auto& query : log) serial.push_back(rig.engine->Search(query));

  ThreadPool pool(4);
  BatchExecutor executor(pool);
  const auto parallel = executor.ExecuteConcurrent(*rig.engine, log);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectBitwiseEqual(parallel[i], serial[i], i);
  }
}

TEST(BatchExecutorTest, DeterministicAsSimpleMatchesSerialBitwise) {
  // Two independent engines over identical corpora: one answers the
  // workload serially, the other through the deterministic parallel batch.
  Rig serial_rig = MakeRig(500, 5, /*seed=*/21);
  Rig batch_rig = MakeRig(500, 5, /*seed=*/21);
  AsSimpleConfig config;
  AsSimpleEngine serial_engine(*serial_rig.engine, config);
  AsSimpleEngine batch_engine(*batch_rig.engine, config);
  const auto log = MakeWorkload(serial_rig, 4);

  std::vector<SearchResult> serial;
  for (const auto& query : log) serial.push_back(serial_engine.Search(query));

  ThreadPool pool(4);
  const auto batched =
      BatchExecutor(pool).ExecuteDeterministic(batch_engine, log);

  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectBitwiseEqual(batched[i], serial[i], i);
  }
  // The suppression state evolved identically too.
  EXPECT_EQ(batch_engine.NumActivatedDocs(), serial_engine.NumActivatedDocs());
  EXPECT_EQ(batch_engine.stats().docs_hidden,
            serial_engine.stats().docs_hidden);
  EXPECT_EQ(batch_engine.stats().docs_trimmed,
            serial_engine.stats().docs_trimmed);
  EXPECT_EQ(batch_engine.stats().cache_hits, serial_engine.stats().cache_hits);
}

TEST(BatchExecutorTest, DeterministicAsArbiMatchesSerialBitwise) {
  Rig serial_rig = MakeTopicalRig(1500, 5, /*seed=*/33);
  Rig batch_rig = MakeTopicalRig(1500, 5, /*seed=*/33);
  AsArbiConfig config;
  AsArbiEngine serial_engine(*serial_rig.engine, config);
  AsArbiEngine batch_engine(*batch_rig.engine, config);

  // Narrow topical queries so virtual query processing actually triggers.
  std::vector<KeywordQuery> log;
  const auto& vocabulary = serial_rig.corpus->vocabulary();
  for (int round = 0; round < 3; ++round) {
    for (size_t t = 0;
         t < vocabulary.size() && log.size() < 120u * (round + 1); t += 17) {
      log.push_back(
          KeywordQuery::FromTerms(vocabulary, {static_cast<TermId>(t)}));
    }
  }

  std::vector<SearchResult> serial;
  for (const auto& query : log) serial.push_back(serial_engine.Search(query));

  ThreadPool pool(4);
  const auto batched =
      BatchExecutor(pool).ExecuteDeterministic(batch_engine, log);

  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectBitwiseEqual(batched[i], serial[i], i);
  }
  EXPECT_EQ(batch_engine.stats().virtual_answers,
            serial_engine.stats().virtual_answers);
  EXPECT_EQ(batch_engine.stats().simple_answers,
            serial_engine.stats().simple_answers);
  EXPECT_EQ(batch_engine.history().NumQueries(),
            serial_engine.history().NumQueries());
}

TEST(BatchExecutorTest, DeterministicModeReusesWarmCache) {
  Rig rig = MakeRig(400, 5);
  AsSimpleEngine engine(*rig.engine, AsSimpleConfig{});
  const auto log = MakeWorkload(rig, 1);

  std::vector<SearchResult> first;
  for (const auto& query : log) first.push_back(engine.Search(query));
  for (const auto& query : log) EXPECT_TRUE(engine.HasCachedAnswer(query));

  ThreadPool pool(2);
  const auto again = BatchExecutor(pool).ExecuteDeterministic(engine, log);
  ASSERT_EQ(again.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectBitwiseEqual(again[i], first[i], i);
  }
}

TEST(ParallelSearchServiceTest, BatchPreservesInputOrder) {
  Rig rig = MakeRig(400, 5);
  ThreadPool pool(4);
  ParallelSearchService service(*rig.engine, pool);
  EXPECT_EQ(service.k(), rig.engine->k());

  const auto log = MakeWorkload(rig, 2);
  const auto results = service.SearchBatch(log);
  ASSERT_EQ(results.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    ExpectBitwiseEqual(results[i], rig.engine->Search(log[i]), i);
  }
  // Single-query path delegates.
  ExpectBitwiseEqual(service.Search(log[0]), rig.engine->Search(log[0]), 0);
}

TEST(ParallelSearchServiceTest, PrefetchIsStateIndependent) {
  // The deterministic-mode contract: PrefetchMatches must not observe
  // suppression state. Warm the engine heavily, then compare against a
  // fresh engine's prefetch of the same query.
  Rig rig = MakeRig(500, 5, /*seed=*/5);
  Rig fresh_rig = MakeRig(500, 5, /*seed=*/5);
  AsSimpleConfig config;
  AsSimpleEngine warmed(*rig.engine, config);
  AsSimpleEngine fresh(*fresh_rig.engine, config);
  for (const auto& query : MakeWorkload(rig, 3)) warmed.Search(query);

  const auto query = rig.Q("sports game");
  const QueryPrefetch a = warmed.PrefetchMatches(query);
  const QueryPrefetch b = fresh.PrefetchMatches(fresh_rig.Q("sports game"));
  ASSERT_EQ(a.ranked.docs.size(), b.ranked.docs.size());
  EXPECT_EQ(a.ranked.total_matches, b.ranked.total_matches);
  for (size_t i = 0; i < a.ranked.docs.size(); ++i) {
    EXPECT_EQ(a.ranked.docs[i].doc, b.ranked.docs[i].doc);
  }
}

}  // namespace
}  // namespace asup
