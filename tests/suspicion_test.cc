// Tests for the online attack-suspicion scorer (src/asup/obs/suspicion.h):
// rule scoring, EWMA smoothing from a zero prior, sticky flagging of a
// pool-replaying client, the benign profile staying unflagged, and the
// kSuspicionFlag event reaching the installed event log.

#include "asup/obs/suspicion.h"

#include <gtest/gtest.h>

#include <vector>

#include "asup/obs/event_log.h"

namespace asup {
namespace {

#if ASUP_METRICS_ENABLED

obs::Event Ev(obs::EventKind kind, uint64_t client, uint64_t hash = 0,
              int64_t a = 0, int64_t b = 0) {
  obs::Event event;
  event.kind = kind;
  event.client = client;
  event.query_hash = hash;
  event.a = a;
  event.b = b;
  return event;
}

/// Feeds one full query frame to the watchtower.
void IngestQuery(obs::Watchtower& watchtower, uint64_t client, uint64_t hash,
                 const std::vector<uint32_t>& terms, bool cache_hit = false) {
  watchtower.Ingest(Ev(obs::EventKind::kQueryIssued, client, hash,
                       static_cast<int64_t>(terms.size())));
  for (uint32_t term : terms) {
    watchtower.Ingest(Ev(obs::EventKind::kQueryTerm, client, hash, term));
  }
  if (cache_hit) {
    watchtower.Ingest(Ev(obs::EventKind::kCacheHit, client, hash));
  }
  watchtower.Ingest(Ev(obs::EventKind::kAnswerServed, client, hash, 10, 0));
}

/// Pool replay: the same few single-term queries over and over, answered
/// from the cache — the signature of our `attack/` estimators.
void ReplayPool(obs::Watchtower& watchtower, uint64_t client, int rounds) {
  for (int round = 0; round < rounds; ++round) {
    for (uint32_t q = 0; q < 10; ++q) {
      IngestQuery(watchtower, client, 1000 + q, {q}, /*cache_hit=*/true);
    }
  }
}

TEST(RuleScore, SumsWeightsOfFiringRules) {
  obs::SuspicionRules rules;
  obs::ClientFeatures features;
  features.window_queries = 100;
  features.query_share = 1.0;             // fires (weight 1.0)
  features.distinct_term_growth = 0.0;    // fires (weight 1.5)
  features.cache_hit_rate = 1.0;          // fires (weight 1.0)
  features.repeat_query_fraction = 0.05;  // below threshold
  EXPECT_DOUBLE_EQ(obs::Watchtower::RuleScore(features, rules, 24), 3.5);

  // Below the min-queries gate nothing fires.
  features.window_queries = 10;
  EXPECT_DOUBLE_EQ(obs::Watchtower::RuleScore(features, rules, 24), 0.0);
}

TEST(Watchtower, FlagsSustainedPoolReplayStickily) {
  obs::Watchtower watchtower;
  ReplayPool(watchtower, /*client=*/7, /*rounds=*/30);
  const auto verdict = watchtower.VerdictOf(7);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_TRUE(verdict->flagged);
  EXPECT_GE(verdict->smoothed_score, watchtower.config().flag_threshold);
  EXPECT_EQ(watchtower.clients_flagged(), 1u);
  // Sticky: the flag survives even if the client later looks clean.
  for (uint32_t q = 0; q < 50; ++q) {
    IngestQuery(watchtower, 7, 5000 + q, {100 + q});
  }
  EXPECT_TRUE(watchtower.VerdictOf(7)->flagged);
  EXPECT_EQ(watchtower.clients_flagged(), 1u);  // flagged once, not twice
}

TEST(Watchtower, DoesNotFlagDiverseBenignTraffic) {
  obs::Watchtower watchtower;
  // Fresh hash and fresh terms every query: only the sole-client traffic
  // share rule can fire, far below the flag threshold.
  for (uint32_t q = 0; q < 200; ++q) {
    IngestQuery(watchtower, 3, 100 + q, {2 * q, 2 * q + 1});
  }
  const auto verdict = watchtower.VerdictOf(3);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_FALSE(verdict->flagged);
  EXPECT_LT(verdict->smoothed_score, watchtower.config().flag_threshold);
  EXPECT_EQ(watchtower.clients_flagged(), 0u);
}

TEST(Watchtower, SmoothedScoreRampsFromZeroPrior) {
  obs::WatchtowerConfig config;
  config.min_queries = 1;
  obs::Watchtower watchtower(config);
  IngestQuery(watchtower, 1, 10, {1}, /*cache_hit=*/true);
  const auto verdict = watchtower.VerdictOf(1);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_GT(verdict->score, 0.0);
  // One observation moves the EWMA only by alpha * score.
  EXPECT_DOUBLE_EQ(verdict->smoothed_score,
                   config.ewma_alpha * verdict->score);
}

TEST(Watchtower, EmitsSuspicionFlagEventIntoInstalledLog) {
  obs::MetricsRegistry::Default().Reset();
  // Sized so one shard (this thread's) retains the whole single-threaded
  // run: the flag fires early and must not be overwritten by later events.
  obs::EventLog log(obs::EventLog::kShards * 2048);
  obs::Watchtower watchtower;
  obs::InstallEventLog(&log);
  obs::InstallWatchtower(&watchtower);
  // Drive the attack through EmitEvent (the production path): the fan-out
  // feeds the watchtower, whose flag event must land in the log without
  // deadlocking on re-entry.
  for (int round = 0; round < 30; ++round) {
    for (uint32_t q = 0; q < 10; ++q) {
      obs::Event issued = Ev(obs::EventKind::kQueryIssued, 9, 1000 + q, 1);
      obs::EmitEvent(issued);
      obs::EmitEvent(Ev(obs::EventKind::kQueryTerm, 9, 1000 + q, q));
      obs::EmitEvent(Ev(obs::EventKind::kCacheHit, 9, 1000 + q));
      obs::EmitEvent(Ev(obs::EventKind::kAnswerServed, 9, 1000 + q, 10, 0));
    }
  }
  obs::InstallWatchtower(nullptr);
  obs::InstallEventLog(nullptr);
  ASSERT_TRUE(watchtower.VerdictOf(9)->flagged);
  bool saw_flag = false;
  for (const obs::Event& event : log.Snapshot()) {
    if (event.kind == obs::EventKind::kSuspicionFlag) {
      saw_flag = true;
      EXPECT_EQ(event.client, 9u);
      EXPECT_GE(event.a,
                static_cast<int64_t>(
                    watchtower.config().flag_threshold * 1000.0));
      EXPECT_GE(event.b,
                static_cast<int64_t>(watchtower.config().min_queries));
    }
  }
  EXPECT_TRUE(saw_flag);
  EXPECT_EQ(obs::MetricsRegistry::Default().CounterValues().at(
                "asup_watchtower_flagged_clients_total"),
            1u);
  EXPECT_GT(obs::MetricsRegistry::Default().CounterValues().at(
                "asup_watchtower_queries_scored_total"),
            0u);
}

TEST(Watchtower, VerdictsListsTrackedClientsAscending) {
  obs::Watchtower watchtower;
  IngestQuery(watchtower, 5, 1, {1});
  IngestQuery(watchtower, 2, 2, {2});
  const std::vector<obs::Watchtower::Verdict> verdicts =
      watchtower.Verdicts();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_EQ(verdicts[0].client, 2u);
  EXPECT_EQ(verdicts[1].client, 5u);
  EXPECT_EQ(watchtower.queries_scored(), 2u);
  EXPECT_GT(watchtower.events_ingested(), 0u);
}

#else  // !ASUP_METRICS_ENABLED

TEST(SuspicionCompiledOut, NothingToTest) {
  GTEST_SKIP() << "the watchtower compiles out with ASUP_METRICS=OFF";
}

#endif  // ASUP_METRICS_ENABLED

}  // namespace
}  // namespace asup
