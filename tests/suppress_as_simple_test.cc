#include "asup/suppress/as_simple.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

TEST(AsSimpleTest, SegmentComputedFromCorpusSize) {
  Rig rig = MakeRig(600, 5);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  // 512 <= 600 < 1024.
  EXPECT_EQ(defended.segment().segment_index(), 9);
  EXPECT_NEAR(defended.segment().mu(), 600.0 / 512.0, 1e-12);
}

TEST(AsSimpleTest, UnderflowPassesThrough) {
  Rig rig = MakeRig(300, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  const auto result = defended.Search(rig.Q("notaword"));
  EXPECT_EQ(result.status, QueryStatus::kUnderflow);
  EXPECT_TRUE(result.docs.empty());
}

TEST(AsSimpleTest, DeterministicRepeatedQueries) {
  Rig rig = MakeRig(500, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  // Issue several queries, then re-issue the first: the answer must be
  // byte-identical even though Θ_R grew in between.
  const auto first = defended.Search(rig.Q("sports"));
  defended.Search(rig.Q("game"));
  defended.Search(rig.Q("team"));
  defended.Search(rig.Q("score"));
  const auto again = defended.Search(rig.Q("sports"));
  ASSERT_EQ(first.docs.size(), again.docs.size());
  for (size_t i = 0; i < first.docs.size(); ++i) {
    EXPECT_EQ(first.docs[i].doc, again.docs[i].doc);
  }
  EXPECT_EQ(first.status, again.status);
  EXPECT_GE(defended.stats().cache_hits, 1u);
}

TEST(AsSimpleTest, AnswersAreSubsetOfMatches) {
  Rig rig = MakeRig(500, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  for (const char* word : {"sports", "game", "team", "league", "win"}) {
    const auto q = rig.Q(word);
    const auto match_ids = rig.engine->MatchIds(q);
    const std::set<DocId> matches(match_ids.begin(), match_ids.end());
    const auto result = defended.Search(q);
    for (const auto& scored : result.docs) {
      EXPECT_TRUE(matches.count(scored.doc)) << word;
    }
  }
}

TEST(AsSimpleTest, NeverReturnsMoreThanK) {
  Rig rig = MakeRig(800, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  for (const char* word : {"sports", "game", "team", "coach", "season"}) {
    EXPECT_LE(defended.Search(rig.Q(word)).docs.size(), 5u);
  }
}

TEST(AsSimpleTest, FreshQueryTrimsToLhsTarget) {
  // The very first query has no stale documents, so its answer size is
  // exactly min(round(|M|/μ), k, |M|).
  Rig rig = MakeRig(700, 5);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  const auto q = rig.Q("sports");
  const auto ranked = rig.engine->TopMatches(q, static_cast<size_t>(
                                                    std::ceil(2.0 * 5)));
  const double mu = defended.segment().mu();
  const size_t expected =
      std::min<size_t>(static_cast<size_t>(std::llround(
                           static_cast<double>(ranked.docs.size()) / mu)),
                       5);
  const auto result = defended.Search(q);
  EXPECT_EQ(result.docs.size(), expected);
}

TEST(AsSimpleTest, ActivatedSetGrowsAndBounds) {
  Rig rig = MakeRig(600, 5);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  EXPECT_EQ(defended.NumActivatedDocs(), 0u);
  defended.Search(rig.Q("sports"));
  const size_t after_one = defended.NumActivatedDocs();
  EXPECT_GT(after_one, 0u);
  EXPECT_LE(after_one, static_cast<size_t>(std::ceil(2.0 * 5)));
  defended.Search(rig.Q("game"));
  EXPECT_GE(defended.NumActivatedDocs(), after_one);
}

TEST(AsSimpleTest, StaleDocsHiddenAtExpectedRate) {
  // Build a corpus at the bottom of a segment (μ ≈ 1) so the per-edge keep
  // probability is ≈ 1/2, then measure how often a previously returned
  // document survives in later overlapping queries.
  Rig rig = MakeRig(520, 50);  // 512 <= 520 < 1024, μ ≈ 1.016
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  EXPECT_NEAR(defended.segment().edge_keep_probability(), 0.5, 0.01);

  // First query activates the sports documents.
  const auto first = defended.Search(rig.Q("sports"));
  const std::set<DocId> activated = [&] {
    std::set<DocId> s;
    for (const auto& d : first.docs) s.insert(d.doc);
    return s;
  }();
  ASSERT_GT(activated.size(), 10u);

  // Issue overlapping queries; count how many activated docs survive where
  // they match.
  int stale_kept = 0;
  int stale_total = 0;
  for (const char* word : {"game", "team", "score", "league", "coach",
                           "season", "player", "match", "win"}) {
    const auto q = rig.Q(std::string("sports ") + word);
    const auto match_ids = rig.engine->MatchIds(q);
    const auto result = defended.Search(q);
    for (DocId id : match_ids) {
      if (activated.count(id)) {
        ++stale_total;
        stale_kept += result.Returned(id);
      }
    }
  }
  ASSERT_GT(stale_total, 30);
  const double keep_rate =
      static_cast<double>(stale_kept) / static_cast<double>(stale_total);
  // μ/γ ≈ 0.51, with slack for top-k interactions and activation during
  // the same query.
  EXPECT_GT(keep_rate, 0.25);
  EXPECT_LT(keep_rate, 0.8);
}

TEST(AsSimpleTest, TopOfSegmentHalvesAnswers) {
  // A corpus near the segment top (μ ≈ γ) gets pure LHS trimming: answers
  // are |M|/γ with (almost) no per-document hiding.
  Rig rig = MakeRig(1000, 50);  // 512 <= 1000 < 1024, μ ≈ 1.95
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  EXPECT_GT(defended.segment().mu(), 1.9);

  const auto q = rig.Q("sports");
  const auto ranked = rig.engine->TopMatches(q, 100);
  const auto result = defended.Search(q);
  const size_t expected = std::min<size_t>(
      static_cast<size_t>(std::llround(static_cast<double>(ranked.docs.size()) /
                                       defended.segment().mu())),
      50);
  EXPECT_EQ(result.docs.size(), expected);
}

TEST(AsSimpleTest, StatsAccumulate) {
  Rig rig = MakeRig(600, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  for (const char* w : {"sports", "game", "sports", "team"}) {
    defended.Search(rig.Q(w));
  }
  EXPECT_EQ(defended.stats().queries_processed, 4u);
  EXPECT_EQ(defended.stats().cache_hits, 1u);
}

TEST(AsSimpleTest, CacheDisabledStillSubsetAndBounded) {
  Rig rig = MakeRig(600, 5);
  AsSimpleConfig config;
  config.cache_answers = false;
  AsSimpleEngine defended(*rig.engine, config);
  const auto q = rig.Q("sports");
  for (int i = 0; i < 3; ++i) {
    const auto result = defended.Search(q);
    EXPECT_LE(result.docs.size(), 5u);
  }
  EXPECT_EQ(defended.stats().cache_hits, 0u);
}

class AsSimpleGammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AsSimpleGammaSweep, AnswerSizeMatchesLhsTargetOnFreshQueries) {
  const double gamma = GetParam();
  Rig rig = MakeRig(900, 5, /*seed=*/21);
  AsSimpleConfig config;
  config.gamma = gamma;
  AsSimpleEngine defended(*rig.engine, config);
  const double mu = defended.segment().mu();
  const size_t limit =
      static_cast<size_t>(std::ceil(gamma * 5));
  // First query is entirely fresh.
  const auto q = rig.Q("sports");
  const auto ranked = rig.engine->TopMatches(q, limit);
  const size_t expected = std::min<size_t>(
      static_cast<size_t>(
          std::llround(static_cast<double>(ranked.docs.size()) / mu)),
      5);
  EXPECT_EQ(defended.Search(q).docs.size(), expected) << "gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(Gammas, AsSimpleGammaSweep,
                         ::testing::Values(1.5, 2.0, 3.0, 5.0, 10.0));

}  // namespace
}  // namespace asup
