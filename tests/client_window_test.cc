// Tests for the per-client sliding-window feature table
// (src/asup/obs/client_window.h): the query-record commit model, each
// derived feature, LRU and byte-budget eviction. Compiled to a skip note
// in the ASUP_METRICS=OFF build (the type does not exist there).

#include "asup/obs/client_window.h"

#include <gtest/gtest.h>

#include <vector>

namespace asup {
namespace {

#if ASUP_METRICS_ENABLED

obs::Event Ev(obs::EventKind kind, uint64_t client, uint64_t hash = 0,
              int64_t a = 0, int64_t b = 0) {
  obs::Event event;
  event.kind = kind;
  event.client = client;
  event.query_hash = hash;
  event.a = a;
  event.b = b;
  return event;
}

/// Issues one full query frame: issued + terms + optional decorations +
/// served. Returns Observe's result for the serving event.
bool IssueQuery(obs::ClientWindowTable& table, uint64_t client, uint64_t hash,
                const std::vector<uint32_t>& terms, bool suppressed = false,
                bool overflow = false, bool cache_hit = false,
                int64_t segment = -1) {
  table.Observe(Ev(obs::EventKind::kQueryIssued, client, hash,
                   static_cast<int64_t>(terms.size())));
  for (uint32_t term : terms) {
    table.Observe(Ev(obs::EventKind::kQueryTerm, client, hash, term));
  }
  if (segment >= 0) {
    table.Observe(Ev(obs::EventKind::kSegmentProbe, client, hash, segment));
  }
  if (suppressed) {
    table.Observe(Ev(obs::EventKind::kAnswerHidden, client, hash, 2));
  }
  if (cache_hit) {
    table.Observe(Ev(obs::EventKind::kCacheHit, client, hash));
  }
  return table.Observe(Ev(obs::EventKind::kAnswerServed, client, hash, 10,
                          overflow ? 1 : 0));
}

TEST(ClientWindowTable, CommitsOnAnswerServedOnly) {
  obs::ClientWindowTable table(obs::ClientWindowConfig{});
  EXPECT_FALSE(
      table.Observe(Ev(obs::EventKind::kQueryIssued, 1, 100, 1)));
  EXPECT_FALSE(table.Observe(Ev(obs::EventKind::kQueryTerm, 1, 100, 7)));
  const auto before = table.FeaturesOf(1);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->window_queries, 0u);  // still pending
  EXPECT_TRUE(
      table.Observe(Ev(obs::EventKind::kAnswerServed, 1, 100, 5, 0)));
  const auto after = table.FeaturesOf(1);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->window_queries, 1u);
  EXPECT_EQ(after->lifetime_queries, 1u);
}

TEST(ClientWindowTable, RepeatAndGrowthFeatures) {
  obs::ClientWindowTable table(obs::ClientWindowConfig{});
  // Three queries: hashes {100, 100, 200}, terms {1,2},{1,2},{1,3}.
  IssueQuery(table, 1, 100, {1, 2});
  IssueQuery(table, 1, 100, {1, 2});
  IssueQuery(table, 1, 200, {1, 3});
  const auto features = table.FeaturesOf(1);
  ASSERT_TRUE(features.has_value());
  EXPECT_EQ(features->window_queries, 3u);
  // 2 distinct hashes over 3 queries; 3 distinct terms over 6 occurrences.
  EXPECT_DOUBLE_EQ(features->repeat_query_fraction, 1.0 - 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(features->repeat_term_fraction, 1.0 - 3.0 / 6.0);
  // New terms: {1,2} then {} then {3} = 3 of 6 occurrences.
  EXPECT_DOUBLE_EQ(features->distinct_term_growth, 3.0 / 6.0);
  // Sole client: its window spans the whole global stream.
  EXPECT_DOUBLE_EQ(features->query_share, 1.0);
}

TEST(ClientWindowTable, RateFeaturesAndSegmentCrossings) {
  obs::ClientWindowTable table(obs::ClientWindowConfig{});
  IssueQuery(table, 1, 100, {1}, /*suppressed=*/true, /*overflow=*/false,
             /*cache_hit=*/false, /*segment=*/2);
  IssueQuery(table, 1, 101, {2}, /*suppressed=*/false, /*overflow=*/true,
             /*cache_hit=*/true, /*segment=*/3);
  IssueQuery(table, 1, 102, {3}, /*suppressed=*/false, /*overflow=*/false,
             /*cache_hit=*/false, /*segment=*/3);
  IssueQuery(table, 1, 103, {4}, /*suppressed=*/true, /*overflow=*/true,
             /*cache_hit=*/false, /*segment=*/1);
  const auto features = table.FeaturesOf(1);
  ASSERT_TRUE(features.has_value());
  EXPECT_DOUBLE_EQ(features->hidden_rate, 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(features->saturation_rate, 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(features->cache_hit_rate, 1.0 / 4.0);
  // Segments 2 -> 3 -> 3 -> 1: two crossings over three pairs.
  EXPECT_DOUBLE_EQ(features->segment_crossing_rate, 2.0 / 3.0);
}

TEST(ClientWindowTable, QueryShareSplitsAcrossInterleavedClients) {
  obs::ClientWindowTable table(obs::ClientWindowConfig{});
  for (int i = 0; i < 10; ++i) {
    IssueQuery(table, 1, 100 + i, {static_cast<uint32_t>(i)});
    IssueQuery(table, 2, 200 + i, {static_cast<uint32_t>(i)});
  }
  const auto features = table.FeaturesOf(1);
  ASSERT_TRUE(features.has_value());
  EXPECT_NEAR(features->query_share, 0.5, 0.06);
}

TEST(ClientWindowTable, WindowSlidesAtConfiguredSize) {
  obs::ClientWindowConfig config;
  config.window = 4;
  obs::ClientWindowTable table(config);
  for (int i = 0; i < 10; ++i) {
    IssueQuery(table, 1, 100 + i, {static_cast<uint32_t>(i)});
  }
  const auto features = table.FeaturesOf(1);
  ASSERT_TRUE(features.has_value());
  EXPECT_EQ(features->window_queries, 4u);
  EXPECT_EQ(features->lifetime_queries, 10u);
}

TEST(ClientWindowTable, LruEvictionKeepsMostRecentClients) {
  obs::ClientWindowConfig config;
  config.max_clients = 3;
  obs::ClientWindowTable table(config);
  for (uint64_t client = 1; client <= 5; ++client) {
    IssueQuery(table, client, client, {1});
  }
  EXPECT_EQ(table.tracked_clients(), 3u);
  EXPECT_EQ(table.evictions(), 2u);
  EXPECT_FALSE(table.FeaturesOf(1).has_value());
  EXPECT_FALSE(table.FeaturesOf(2).has_value());
  EXPECT_TRUE(table.FeaturesOf(5).has_value());
  // Activity refreshes recency: client 3 survives the next eviction.
  IssueQuery(table, 3, 33, {2});
  IssueQuery(table, 6, 66, {3});
  EXPECT_TRUE(table.FeaturesOf(3).has_value());
  EXPECT_FALSE(table.FeaturesOf(4).has_value());
}

TEST(ClientWindowTable, ByteBudgetEvictsDownToOneClient) {
  obs::ClientWindowConfig config;
  config.state_bytes_budget = 2000;  // a handful of clients at most
  obs::ClientWindowTable table(config);
  for (uint64_t client = 1; client <= 20; ++client) {
    IssueQuery(table, client, client, {1, 2, 3});
  }
  EXPECT_GT(table.evictions(), 0u);
  EXPECT_LE(table.ApproxBytes(), config.state_bytes_budget);
  EXPECT_GE(table.tracked_clients(), 1u);
  EXPECT_LT(table.tracked_clients(), 20u);
}

TEST(ClientWindowTable, StrayEventsCreateNoClientState) {
  obs::ClientWindowTable table(obs::ClientWindowConfig{});
  // Only kQueryIssued may create a client: a served/term/decoration event
  // for a client that never issued a query is a stray and must be dropped
  // outright, not conjure an empty window.
  EXPECT_FALSE(table.Observe(Ev(obs::EventKind::kAnswerServed, 1, 9, 5, 0)));
  EXPECT_FALSE(table.Observe(Ev(obs::EventKind::kCacheHit, 1, 9)));
  EXPECT_FALSE(table.Observe(Ev(obs::EventKind::kQueryTerm, 1, 9, 7)));
  EXPECT_FALSE(table.Observe(Ev(obs::EventKind::kSegmentProbe, 1, 9, 2)));
  EXPECT_FALSE(table.Observe(Ev(obs::EventKind::kAnswerHidden, 1, 9, 3)));
  EXPECT_EQ(table.tracked_clients(), 0u);
  EXPECT_FALSE(table.FeaturesOf(1).has_value());
}

TEST(ClientWindowTable, StrayEventStormCannotEvictTrackedClients) {
  obs::ClientWindowConfig config;
  config.max_clients = 3;
  obs::ClientWindowTable table(config);
  for (uint64_t client = 1; client <= 3; ++client) {
    IssueQuery(table, client, client, {1});
  }
  ASSERT_EQ(table.tracked_clients(), 3u);
  // A storm of decoration events from fabricated client ids: with strays
  // creating state, each distinct id would enter the LRU and flush the
  // three bona fide clients out (a spoofed-id eviction storm). They must
  // neither grow the table past max_clients nor evict anyone.
  for (uint64_t fake = 1000; fake < 2000; ++fake) {
    table.Observe(Ev(obs::EventKind::kAnswerServed, fake, fake, 5, 0));
    table.Observe(Ev(obs::EventKind::kAnswerHidden, fake, fake, 2));
    EXPECT_LE(table.tracked_clients(), config.max_clients);
  }
  EXPECT_EQ(table.tracked_clients(), 3u);
  EXPECT_EQ(table.evictions(), 0u);
  EXPECT_TRUE(table.FeaturesOf(1).has_value());
  EXPECT_TRUE(table.FeaturesOf(2).has_value());
  EXPECT_TRUE(table.FeaturesOf(3).has_value());
}

TEST(ClientWindowTable, PendingTermsCountAgainstByteBudgetBeforeCommit) {
  obs::ClientWindowTable table(obs::ClientWindowConfig{});
  table.Observe(Ev(obs::EventKind::kQueryIssued, 1, 100, 1));
  const size_t before = table.ApproxBytes();
  // Terms streamed into a still-pending query grow the estimate
  // immediately — an attacker must not park unbounded state in a query
  // that is never served.
  for (uint32_t term = 0; term < 64; ++term) {
    table.Observe(Ev(obs::EventKind::kQueryTerm, 1, 100, term));
  }
  EXPECT_GT(table.ApproxBytes(), before);
  EXPECT_GE(table.ApproxBytes() - before, 64 * sizeof(uint32_t));
}

TEST(ClientWindowTable, PendingTermBytesEnforceBudgetWithoutServe) {
  obs::ClientWindowConfig config;
  config.state_bytes_budget = 4000;
  obs::ClientWindowTable table(config);
  // Two clients park terms in never-served queries; a third keeps querying.
  table.Observe(Ev(obs::EventKind::kQueryIssued, 1, 100, 1));
  table.Observe(Ev(obs::EventKind::kQueryIssued, 2, 200, 1));
  for (uint32_t term = 0; term < 200; ++term) {
    table.Observe(Ev(obs::EventKind::kQueryTerm, 1, 100, term));
    table.Observe(Ev(obs::EventKind::kQueryTerm, 2, 200, 1000 + term));
  }
  // The budget is enforced as the pending bytes grow, not only at commit:
  // one of the two parked clients is evicted mid-stream (the survivor may
  // exceed the budget alone — eviction always keeps one client).
  EXPECT_GT(table.evictions(), 0u);
  EXPECT_EQ(table.tracked_clients(), 1u);
}

#else  // !ASUP_METRICS_ENABLED

TEST(ClientWindowCompiledOut, NothingToTest) {
  GTEST_SKIP() << "client windows compile out with ASUP_METRICS=OFF";
}

#endif  // ASUP_METRICS_ENABLED

}  // namespace
}  // namespace asup
