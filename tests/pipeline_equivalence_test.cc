// The processor-chain contract (engine/pipeline/result_processor.h,
// suppress/processors.h): decomposing the query path into composable
// stages changed NOTHING observable. Three angles pin that down:
//
//  1. Oracle equivalence — test-local *monolithic* reimplementations of
//     Algorithm 1 (AS-SIMPLE) and Algorithm 2 (AS-ARBI), written straight
//     from the paper against public components only, must agree with the
//     chain engines document-for-document and score-bit-for-score-bit.
//  2. Cross-execution equivalence — one chain engine run serially, over
//     sharded bases (1/2/4 shards) and through BatchExecutor's
//     deterministic parallel mode must produce bitwise-identical answers,
//     stats, and serialized defense state.
//  3. The segment probe the recording stage emits must equal the
//     segment_index() of an equally-sized corpus — exactly at powers of γ,
//     where the replaced log-ratio arithmetic truncated one segment low.
//
// Plus the new capabilities the chain makes cheap: a pluggable ranker
// (RescoreProcessor) and an aggregation stage (FacetCountProcessor).

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/parallel_service.h"
#include "asup/engine/pipeline/result_processor.h"
#include "asup/engine/scoring.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/sharded_service.h"
#include "asup/index/inverted_index.h"
#include "asup/index/sharded_index.h"
#include "asup/obs/event_log.h"
#include "asup/obs/metrics.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/cover_finder.h"
#include "asup/suppress/history_store.h"
#include "asup/suppress/segment.h"
#include "asup/suppress/state_io.h"
#include "asup/text/corpus.h"
#include "asup/text/document.h"
#include "asup/text/vocabulary.h"
#include "asup/util/hash.h"
#include "asup/util/thread_pool.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

std::vector<KeywordQuery> Workload(const Rig& rig) {
  std::vector<KeywordQuery> queries;
  for (const char* text :
       {"sports", "game", "team", "league", "win", "coach", "season",
        "score", "sports game", "team league win", "game score",
        "sports team coach", "notaword", ""}) {
    queries.push_back(rig.Q(text));
  }
  const Vocabulary& vocab = rig.corpus->vocabulary();
  for (TermId t = 0; t < 60 && t < vocab.size(); t += 5) {
    queries.push_back(rig.Q(vocab.WordOf(t)));
    if (t + 1 < vocab.size()) {
      queries.push_back(rig.Q(vocab.WordOf(t) + " " + vocab.WordOf(t + 1)));
    }
  }
  return queries;
}

void ExpectBitwiseEqual(const SearchResult& a, const SearchResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  ASSERT_EQ(a.docs.size(), b.docs.size()) << label;
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].doc, b.docs[i].doc) << label << " rank " << i;
    EXPECT_EQ(a.docs[i].score, b.docs[i].score) << label << " rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Monolithic oracles: Algorithms 1 and 2 written as one straight-line
// function each, from the paper, over public components only. No pipeline,
// no engine internals — if the chain decomposition drifted by as much as
// one coin flip or one rounding step, these disagree.

class SimpleOracle {
 public:
  SimpleOracle(MatchingEngine& base, const AsSimpleConfig& config)
      : base_(&base),
        config_(config),
        segment_(std::max<size_t>(base.PinSnapshot()->NumDocuments(), 1),
                 config.gamma),
        coin_(config.secret_key),
        m_limit_(static_cast<size_t>(
            std::ceil(config.gamma * static_cast<double>(base.k())))) {}

  SearchResult Search(const KeywordQuery& query) {
    auto cached = cache_.find(query.canonical());
    if (cached != cache_.end()) return cached->second;
    SearchResult result;
    const RankedMatches ranked = base_->TopMatches(query, m_limit_);
    if (ranked.total_matches == 0) {
      result.status = QueryStatus::kUnderflow;
      cache_.emplace(query.canonical(), result);
      return result;
    }
    // Lines 7-13: keyed per-edge coin against Θ_R.
    const double keep = segment_.edge_keep_probability();
    std::vector<ScoredDoc> survivors;
    for (const ScoredDoc& scored : ranked.docs) {
      if (!returned_.insert(scored.doc).second) {
        if (coin_.Accept(query.hash(), scored.doc, keep)) {
          survivors.push_back(scored);
        } else {
          ++docs_hidden_;
        }
      } else {
        survivors.push_back(scored);
      }
    }
    // Line 14: trim to min(|M(q)|/μ, k).
    const size_t lhs_target = static_cast<size_t>(
        std::llround(static_cast<double>(ranked.docs.size()) *
                     segment_.lhs_keep_fraction()));
    const size_t cap = std::min(lhs_target, base_->k());
    if (survivors.size() > cap) {
      docs_trimmed_ += survivors.size() - cap;
      survivors.resize(cap);
    }
    result.docs = std::move(survivors);
    if (result.docs.empty()) {
      result.status = QueryStatus::kUnderflow;
    } else if (static_cast<double>(ranked.total_matches) >
               segment_.mu() * static_cast<double>(base_->k())) {
      result.status = QueryStatus::kOverflow;
    } else {
      result.status = QueryStatus::kValid;
    }
    cache_.emplace(query.canonical(), result);
    return result;
  }

  const std::set<DocId>& activated() const { return returned_; }
  uint64_t docs_hidden() const { return docs_hidden_; }
  uint64_t docs_trimmed() const { return docs_trimmed_; }

 private:
  MatchingEngine* base_;
  AsSimpleConfig config_;
  IndistinguishableSegment segment_;
  DeterministicCoin coin_;
  size_t m_limit_;
  std::set<DocId> returned_;  // Θ_R by universe id
  std::map<std::string, SearchResult> cache_;
  uint64_t docs_hidden_ = 0;
  uint64_t docs_trimmed_ = 0;
};

class ArbiOracle {
 public:
  ArbiOracle(MatchingEngine& base, const AsArbiConfig& config)
      : base_(&base),
        config_(config),
        inner_(base, [&config] {
          AsSimpleConfig inner = config.simple;
          inner.cache_answers = false;
          return inner;
        }()),
        segment_(std::max<size_t>(base.PinSnapshot()->NumDocuments(), 1),
                 config.simple.gamma),
        finder_(history_, config.cover_size, config.cover_ratio) {}

  SearchResult Search(const KeywordQuery& query) {
    auto cached = cache_.find(query.canonical());
    if (cached != cache_.end()) return cached->second;
    SearchResult result;
    const size_t match_count = base_->MatchCount(query);
    if (match_count == 0) {
      result.status = QueryStatus::kUnderflow;
      cache_.emplace(query.canonical(), result);
      return result;
    }
    const double max_coverable =
        static_cast<double>(config_.cover_size * base_->k());
    if (config_.cover_ratio * static_cast<double>(match_count) <=
        max_coverable) {
      const std::vector<DocId> match_ids = base_->MatchIds(query);
      const CoverResult cover = finder_.Find(match_ids);
      if (cover.found) {
        ++virtual_answers_;
        // Virtual query processing: q ∩ (Res(q1) ∪ ... ∪ Res(qu)).
        std::vector<DocId> pool;
        for (uint32_t qi : cover.query_indices) {
          const auto& answer = history_.QueryAt(qi).answer;
          pool.insert(pool.end(), answer.begin(), answer.end());
        }
        std::sort(pool.begin(), pool.end());
        pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
        std::vector<DocId> virtual_ids;
        std::set_intersection(match_ids.begin(), match_ids.end(),
                              pool.begin(), pool.end(),
                              std::back_inserter(virtual_ids));
        if (virtual_ids.empty()) {
          result.status = QueryStatus::kUnderflow;
        } else {
          std::vector<ScoredDoc> ranked = base_->RankDocs(query, virtual_ids);
          if (ranked.size() > base_->k()) ranked.resize(base_->k());
          result.docs = std::move(ranked);
          result.status = static_cast<double>(match_ids.size()) >
                                  segment_.mu() *
                                      static_cast<double>(base_->k())
                              ? QueryStatus::kOverflow
                              : QueryStatus::kValid;
        }
        cache_.emplace(query.canonical(), result);
        return result;
      }
    }
    ++simple_answers_;
    result = inner_.Search(query);
    if (!result.docs.empty()) history_.Record(query, result.DocIds());
    cache_.emplace(query.canonical(), result);
    return result;
  }

  uint64_t virtual_answers() const { return virtual_answers_; }
  uint64_t simple_answers() const { return simple_answers_; }
  const HistoryStore& history() const { return history_; }

 private:
  MatchingEngine* base_;
  AsArbiConfig config_;
  SimpleOracle inner_;
  IndistinguishableSegment segment_;
  HistoryStore history_;
  CoverFinder finder_;
  std::map<std::string, SearchResult> cache_;
  uint64_t virtual_answers_ = 0;
  uint64_t simple_answers_ = 0;
};

TEST(PipelineOracleTest, AsSimpleChainMatchesMonolithicAlgorithm1) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine chain(*rig.engine, config);
  SimpleOracle oracle(*rig.engine, config);

  const auto queries = Workload(rig);
  for (const KeywordQuery& q : queries) {
    ExpectBitwiseEqual(chain.Search(q), oracle.Search(q),
                       "q=\"" + q.canonical() + "\"");
  }
  // Re-issues replay from both caches identically.
  for (const KeywordQuery& q : queries) {
    ExpectBitwiseEqual(chain.Search(q), oracle.Search(q),
                       "reissue q=\"" + q.canonical() + "\"");
  }
  // Θ_R and the hide/trim tallies evolved identically.
  EXPECT_EQ(chain.NumActivatedDocs(), oracle.activated().size());
  for (DocId doc : oracle.activated()) {
    EXPECT_TRUE(chain.IsActivated(doc)) << "doc " << doc;
  }
  EXPECT_EQ(chain.stats().docs_hidden, oracle.docs_hidden());
  EXPECT_EQ(chain.stats().docs_trimmed, oracle.docs_trimmed());
}

TEST(PipelineOracleTest, AsSimpleChainMatchesOracleAtGammaFive) {
  Rig rig = MakeRig(450, 5);
  AsSimpleConfig config;
  config.gamma = 5.0;
  AsSimpleEngine chain(*rig.engine, config);
  SimpleOracle oracle(*rig.engine, config);
  for (const KeywordQuery& q : Workload(rig)) {
    ExpectBitwiseEqual(chain.Search(q), oracle.Search(q),
                       "q=\"" + q.canonical() + "\"");
  }
  EXPECT_EQ(chain.stats().docs_hidden, oracle.docs_hidden());
  EXPECT_EQ(chain.stats().docs_trimmed, oracle.docs_trimmed());
}

TEST(PipelineOracleTest, AsArbiChainMatchesMonolithicAlgorithm2) {
  Rig rig = MakeTopicalRig(600, 5);
  AsArbiConfig config;
  config.simple.gamma = 2.0;
  AsArbiEngine chain(*rig.engine, config);
  ArbiOracle oracle(*rig.engine, config);

  const auto queries = Workload(rig);
  for (const KeywordQuery& q : queries) {
    ExpectBitwiseEqual(chain.Search(q), oracle.Search(q),
                       "q=\"" + q.canonical() + "\"");
  }
  // The chain took the same virtual/fall-through decisions and recorded
  // the same history as the straight-line algorithm.
  EXPECT_GT(oracle.virtual_answers() + oracle.simple_answers(), 0u);
  EXPECT_EQ(chain.stats().virtual_answers, oracle.virtual_answers());
  EXPECT_EQ(chain.stats().simple_answers, oracle.simple_answers());
  ASSERT_EQ(chain.history().NumQueries(), oracle.history().NumQueries());
  for (size_t i = 0; i < oracle.history().NumQueries(); ++i) {
    EXPECT_EQ(chain.history().QueryAt(i).answer,
              oracle.history().QueryAt(i).answer)
        << "history entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Cross-execution: serial vs sharded (1/2/4) vs deterministic-parallel.

TEST(PipelineCrossExecutionTest, AsSimpleIsBitwiseIdenticalAcrossExecutions) {
  Rig rig = MakeRig(520, 5);
  const auto queries = Workload(rig);
  AsSimpleConfig config;
  config.gamma = 2.0;

  // Reference: serial over the single index.
  AsSimpleEngine serial(*rig.engine, config);
  std::vector<SearchResult> expected;
  for (const KeywordQuery& q : queries) expected.push_back(serial.Search(q));
  std::ostringstream expected_state;
  ASSERT_TRUE(SaveDefenseState(serial, expected_state));

  // Deterministic parallel over the same base.
  {
    ThreadPool pool(4);
    AsSimpleEngine parallel(*rig.engine, config);
    const std::vector<SearchResult> results =
        BatchExecutor(pool).ExecuteDeterministic(parallel, queries);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ExpectBitwiseEqual(results[i], expected[i],
                         "deterministic-parallel #" + std::to_string(i));
    }
    EXPECT_EQ(parallel.stats().docs_hidden, serial.stats().docs_hidden);
    EXPECT_EQ(parallel.stats().docs_trimmed, serial.stats().docs_trimmed);
    std::ostringstream state;
    ASSERT_TRUE(SaveDefenseState(parallel, state));
    EXPECT_EQ(state.str(), expected_state.str());
  }

  // Sharded bases, every shard count.
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedInvertedIndex index(*rig.corpus, shards);
    ShardedSearchService base(index, rig.engine->k(), nullptr);
    AsSimpleEngine over_sharded(base, config);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectBitwiseEqual(over_sharded.Search(queries[i]), expected[i],
                         "shards=" + std::to_string(shards) + " #" +
                             std::to_string(i));
    }
    EXPECT_EQ(over_sharded.stats().docs_hidden, serial.stats().docs_hidden);
    EXPECT_EQ(over_sharded.stats().docs_trimmed, serial.stats().docs_trimmed);
    std::ostringstream state;
    ASSERT_TRUE(SaveDefenseState(over_sharded, state));
    EXPECT_EQ(state.str(), expected_state.str()) << "shards=" << shards;
  }
}

TEST(PipelineCrossExecutionTest, AsArbiIsBitwiseIdenticalAcrossExecutions) {
  Rig rig = MakeTopicalRig(600, 5);
  const auto queries = Workload(rig);
  AsArbiConfig config;
  config.simple.gamma = 2.0;

  AsArbiEngine serial(*rig.engine, config);
  std::vector<SearchResult> expected;
  for (const KeywordQuery& q : queries) expected.push_back(serial.Search(q));
  std::ostringstream expected_state;
  ASSERT_TRUE(SaveDefenseState(serial, expected_state));

  {
    ThreadPool pool(4);
    AsArbiEngine parallel(*rig.engine, config);
    const std::vector<SearchResult> results =
        BatchExecutor(pool).ExecuteDeterministic(parallel, queries);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ExpectBitwiseEqual(results[i], expected[i],
                         "deterministic-parallel #" + std::to_string(i));
    }
    EXPECT_EQ(parallel.stats().virtual_answers,
              serial.stats().virtual_answers);
    EXPECT_EQ(parallel.stats().simple_answers, serial.stats().simple_answers);
    std::ostringstream state;
    ASSERT_TRUE(SaveDefenseState(parallel, state));
    EXPECT_EQ(state.str(), expected_state.str());
  }

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedInvertedIndex index(*rig.corpus, shards);
    ShardedSearchService base(index, rig.engine->k(), nullptr);
    AsArbiEngine over_sharded(base, config);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectBitwiseEqual(over_sharded.Search(queries[i]), expected[i],
                         "shards=" + std::to_string(shards) + " #" +
                             std::to_string(i));
    }
    EXPECT_EQ(over_sharded.stats().virtual_answers,
              serial.stats().virtual_answers);
    EXPECT_EQ(over_sharded.stats().simple_answers,
              serial.stats().simple_answers);
    std::ostringstream state;
    ASSERT_TRUE(SaveDefenseState(over_sharded, state));
    EXPECT_EQ(state.str(), expected_state.str()) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// The segment probe at γ-power boundaries.

#if ASUP_METRICS_ENABLED

/// A corpus of `total` documents in which the word "probe" appears in
/// every document and "nearly" in all but one — exact match counts for
/// boundary tests.
struct ExactCorpusRig {
  std::shared_ptr<Vocabulary> vocab;
  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<InvertedIndex> index;
  std::unique_ptr<PlainSearchEngine> engine;
};

ExactCorpusRig MakeExactRig(size_t total, size_t k) {
  ExactCorpusRig rig;
  rig.vocab = std::make_shared<Vocabulary>();
  const TermId probe = rig.vocab->AddWord("probe");
  const TermId nearly = rig.vocab->AddWord("nearly");
  std::vector<Document> docs;
  docs.reserve(total);
  for (DocId id = 0; id < total; ++id) {
    std::vector<TermId> tokens{probe};
    if (id != 0) tokens.push_back(nearly);
    tokens.push_back(rig.vocab->AddWord("filler" + std::to_string(id)));
    docs.emplace_back(id, tokens);
  }
  rig.corpus = std::make_unique<Corpus>(rig.vocab, std::move(docs));
  rig.index = std::make_unique<InvertedIndex>(*rig.corpus);
  rig.engine = std::make_unique<PlainSearchEngine>(*rig.index, k);
  return rig;
}

std::vector<int64_t> ProbesIn(const obs::EventLog& log) {
  std::vector<int64_t> probes;
  for (const obs::Event& event : log.Snapshot()) {
    if (event.kind == obs::EventKind::kSegmentProbe) {
      probes.push_back(event.a);
    }
  }
  return probes;
}

TEST(SegmentProbeEventTest, ProbeEqualsSegmentIndexAtExactGammaPowers) {
  // γ = 10, |Sel(q)| = 1000 = 10^3: the probe must report segment 3 —
  // trunc(log(1000)/log(10)) reported 2 and made every boundary-straddling
  // query pair look like a segment crossing (the fig21 feature this fed).
  struct Case {
    double gamma;
    size_t count;  // exact power of gamma
    int64_t expected;
  };
  for (const Case c : {Case{2.0, 1024, 10}, Case{5.0, 625, 4},
                       Case{10.0, 1000, 3}}) {
    ExactCorpusRig rig = MakeExactRig(c.count, 5);
    AsSimpleConfig config;
    config.gamma = c.gamma;
    AsSimpleEngine defended(*rig.engine, config);

    obs::EventLog log(4096);
    obs::InstallEventLog(&log);
    defended.Search(KeywordQuery::Parse(*rig.vocab, "probe"));   // γ^i docs
    defended.Search(KeywordQuery::Parse(*rig.vocab, "nearly"));  // γ^i − 1
    obs::InstallEventLog(nullptr);

    const std::vector<int64_t> probes = ProbesIn(log);
    ASSERT_EQ(probes.size(), 2u) << "gamma=" << c.gamma;
    EXPECT_EQ(probes[0], c.expected) << "gamma=" << c.gamma;
    EXPECT_EQ(probes[1], c.expected - 1) << "gamma=" << c.gamma;
    // The probe is literally the segment arithmetic of an equally-sized
    // corpus — one source of truth for "which segment".
    EXPECT_EQ(probes[0],
              IndistinguishableSegment(c.count, c.gamma).segment_index());
    EXPECT_EQ(probes[1],
              IndistinguishableSegment(c.count - 1, c.gamma).segment_index());
  }
}

#endif  // ASUP_METRICS_ENABLED

// ---------------------------------------------------------------------------
// New chain capabilities: pluggable ranker + aggregation stage.

TEST(PipelineStagesTest, RescoreProcessorRanksWithAlternateScorer) {
  Rig rig = MakeRig(400, 10);
  ProcessorChain chain;
  chain.Add(std::make_unique<MatchProcessor>())
      .Add(std::make_unique<InterfaceStatusProcessor>())
      .Add(std::make_unique<RescoreProcessor>(std::make_unique<TfIdfScorer>()));

  const KeywordQuery q = rig.Q("sports game");
  const SnapshotHandle snapshot = rig.engine->PinSnapshot();

  QueryContext context;
  context.query = &q;
  context.base = rig.engine.get();
  context.snapshot = snapshot.get();
  context.k = rig.engine->k();
  context.match_limit = rig.engine->k();
  chain.Run(context);
  ASSERT_FALSE(context.result.docs.empty());

  // Same documents as the default BM25 interface answer...
  const SearchResult bm25 = rig.engine->Search(q);
  std::set<DocId> chain_docs, bm25_docs;
  for (const ScoredDoc& d : context.result.docs) chain_docs.insert(d.doc);
  for (const ScoredDoc& d : bm25.docs) bm25_docs.insert(d.doc);
  EXPECT_EQ(chain_docs, bm25_docs);

  // ...re-ranked into the engine's strict total order under TF-IDF.
  for (size_t i = 1; i < context.result.docs.size(); ++i) {
    EXPECT_TRUE(
        RankBefore(context.result.docs[i - 1], context.result.docs[i]))
        << "rank " << i;
  }

  // Deterministic: a second run reproduces every score bit.
  QueryContext again;
  again.query = &q;
  again.base = rig.engine.get();
  again.snapshot = snapshot.get();
  again.k = rig.engine->k();
  again.match_limit = rig.engine->k();
  chain.Run(again);
  ASSERT_EQ(again.result.docs.size(), context.result.docs.size());
  for (size_t i = 0; i < again.result.docs.size(); ++i) {
    EXPECT_EQ(again.result.docs[i].doc, context.result.docs[i].doc);
    EXPECT_EQ(again.result.docs[i].score, context.result.docs[i].score);
  }
}

TEST(PipelineStagesTest, FacetCountProcessorHistogramsTheAnswer) {
  Rig rig = MakeRig(400, 10);
  constexpr uint64_t kBucket = 16;
  ProcessorChain chain;
  chain.Add(std::make_unique<MatchProcessor>())
      .Add(std::make_unique<InterfaceStatusProcessor>())
      .Add(std::make_unique<FacetCountProcessor>(kBucket));

  const KeywordQuery q = rig.Q("sports");
  const SnapshotHandle snapshot = rig.engine->PinSnapshot();
  QueryContext context;
  context.query = &q;
  context.base = rig.engine.get();
  context.snapshot = snapshot.get();
  context.k = rig.engine->k();
  context.match_limit = rig.engine->k();
  chain.Run(context);
  ASSERT_FALSE(context.result.docs.empty());
  ASSERT_FALSE(context.facet_buckets.empty());

  // Buckets ascend, counts tally the answer exactly, and each bucket
  // matches a manual recount over the corpus.
  size_t total = 0;
  std::map<uint64_t, size_t> manual;
  for (const ScoredDoc& entry : context.result.docs) {
    const uint64_t length = rig.corpus->Get(entry.doc).length();
    ++manual[(length / kBucket) * kBucket];
  }
  for (size_t i = 0; i < context.facet_buckets.size(); ++i) {
    const auto& [bucket, count] = context.facet_buckets[i];
    EXPECT_EQ(bucket % kBucket, 0u);
    if (i > 0) {
      EXPECT_GT(bucket, context.facet_buckets[i - 1].first);
    }
    EXPECT_EQ(count, manual[bucket]) << "bucket " << bucket;
    total += count;
  }
  EXPECT_EQ(total, context.result.docs.size());
  EXPECT_EQ(manual.size(), context.facet_buckets.size());
}

TEST(PipelineStagesTest, FacetProcessorComposesAfterDefendedChain) {
  // The aggregation stage reads only the context, so it composes after a
  // *defended* answer exactly as after a plain one — histogram the
  // AS-SIMPLE answer without touching the engine.
  Rig rig = MakeRig(400, 5);
  AsSimpleConfig config;
  AsSimpleEngine defended(*rig.engine, config);
  const KeywordQuery q = rig.Q("sports");
  const SearchResult answer = defended.Search(q);
  ASSERT_FALSE(answer.docs.empty());

  const SnapshotHandle snapshot = rig.engine->PinSnapshot();
  QueryContext context;
  context.query = &q;
  context.base = rig.engine.get();
  context.snapshot = snapshot.get();
  context.k = rig.engine->k();
  context.result = answer;
  context.finished = true;  // only RunsWhenFinished stages may act
  ProcessorChain chain;
  chain.Add(std::make_unique<FacetCountProcessor>(8));
  chain.Run(context);
  size_t total = 0;
  for (const auto& [bucket, count] : context.facet_buckets) total += count;
  EXPECT_EQ(total, answer.docs.size());
}

}  // namespace
}  // namespace asup
