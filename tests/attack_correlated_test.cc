#include "asup/attack/correlated.h"

#include <gtest/gtest.h>

#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "attack_test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeSportsAttack;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

TEST(CorrelatedAttackTest, BuildsPairQueries) {
  Rig rig = MakeRig(100, 5, /*seed=*/31, /*held_out_size=*/400);
  CorrelatedQueryAttack::Options options;
  options.num_queries = 20;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  const auto& queries = attack.queries();
  ASSERT_GE(queries.size(), 5u);
  ASSERT_LE(queries.size(), 20u);
  const TermId sports = *rig.held_out->vocabulary().Lookup("sports");
  for (const auto& q : queries) {
    EXPECT_EQ(q.terms().size(), 2u);
    EXPECT_TRUE(q.terms()[0] == sports || q.terms()[1] == sports);
  }
}

TEST(CorrelatedAttackTest, SeedQueryOptional) {
  Rig rig = MakeRig(100, 5, /*seed=*/31, /*held_out_size=*/400);
  CorrelatedQueryAttack::Options options;
  options.num_queries = 10;
  options.include_seed_query = true;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  EXPECT_EQ(attack.queries()[0].canonical(), "sports");
  EXPECT_EQ(attack.queries()[1].terms().size(), 2u);
}

TEST(CorrelatedAttackTest, QueriesOrderedByCooccurrence) {
  Rig rig = MakeRig(100, 5, /*seed=*/32, /*held_out_size=*/400);
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig);
  const auto& queries = attack.queries();
  const TermId sports = *rig.held_out->vocabulary().Lookup("sports");
  auto cooccurrence = [&](const KeywordQuery& q) {
    TermId other = q.terms()[0] == sports ? q.terms()[1] : q.terms()[0];
    return rig.held_out->CountWhere([&](const Document& d) {
      return d.Contains(sports) && d.Contains(other);
    });
  };
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(cooccurrence(queries[i - 1]), cooccurrence(queries[i]));
  }
}

TEST(CorrelatedAttackTest, CooccurrenceBandRespected) {
  Rig rig = MakeRig(100, 5, /*seed=*/32, /*held_out_size=*/400);
  CorrelatedQueryAttack::Options options;
  options.min_cooccurrence = 5;
  options.max_cooccurrence = 30;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  const TermId sports = *rig.held_out->vocabulary().Lookup("sports");
  for (const auto& q : attack.queries()) {
    TermId other = q.terms()[0] == sports ? q.terms()[1] : q.terms()[0];
    const uint64_t count = rig.held_out->CountWhere([&](const Document& d) {
      return d.Contains(sports) && d.Contains(other);
    });
    EXPECT_GE(count, 5u);
    EXPECT_LE(count, 30u);
  }
}

TEST(CorrelatedAttackTest, QueriesHeavilyOverlapOnTarget) {
  // On the target corpus, the pair queries must return documents from the
  // seed word's match set — the overlap that powers the attack.
  Rig rig = MakeTopicalRig(600, 50, /*seed=*/33, /*held_out_size=*/900);
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig);
  const TermId sports = *rig.corpus->vocabulary().Lookup("sports");
  for (const auto& q : attack.queries()) {
    for (DocId id : rig.engine->MatchIds(q)) {
      EXPECT_TRUE(rig.corpus->Get(id).Contains(sports));
    }
  }
}

TEST(CorrelatedAttackTest, RunReturnsPerQueryCounts) {
  Rig rig = MakeTopicalRig(600, 50, /*seed=*/34, /*held_out_size=*/900);
  CorrelatedQueryAttack::Options options;
  options.num_queries = 15;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  const auto counts = attack.Run(*rig.engine);
  EXPECT_EQ(counts.size(), attack.queries().size());
  for (size_t c : counts) EXPECT_LE(c, 50u);
  EXPECT_GT(counts[0], 0u);  // the top-co-occurrence pair certainly matches
}

TEST(CorrelatedAttackTest, RevealsDecayUnderAsSimpleAtSegmentBottom) {
  // Corpus near segment bottom (μ ≈ 1): AS-SIMPLE's edge removal makes
  // later correlated answers visibly smaller than fresh ones.
  Rig rig = MakeTopicalRig(1050, 50, /*seed=*/99, /*held_out_size=*/2000);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  ASSERT_LT(defended.segment().mu(), 1.1);

  CorrelatedQueryAttack::Options options;
  options.num_queries = 60;
  options.min_cooccurrence = 3;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  ASSERT_GE(attack.queries().size(), 20u);
  const auto counts = attack.Run(defended);

  // Fresh counts: what each query would return with empty defense state.
  double ratio_sum_tail = 0.0;
  size_t tail = 0;
  for (size_t i = counts.size() / 2; i < counts.size(); ++i) {
    AsSimpleEngine fresh(*rig.engine, config);
    const size_t fresh_count = fresh.Search(attack.queries()[i]).docs.size();
    if (fresh_count == 0) continue;
    ratio_sum_tail +=
        static_cast<double>(counts[i]) / static_cast<double>(fresh_count);
    ++tail;
  }
  ASSERT_GT(tail, 5u);
  // Late queries return roughly μ/γ ≈ half of a fresh answer.
  EXPECT_LT(ratio_sum_tail / static_cast<double>(tail), 0.75);
}

TEST(CorrelatedAttackTest, AsArbiSuppressesDecay) {
  Rig rig = MakeTopicalRig(1050, 50, /*seed=*/99, /*held_out_size=*/2000);
  AsArbiConfig config;
  config.simple.gamma = 2.0;
  AsArbiEngine defended(*rig.engine, config);

  CorrelatedQueryAttack::Options options;
  options.num_queries = 60;
  options.min_cooccurrence = 3;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  const auto counts = attack.Run(defended);

  AsSimpleConfig fresh_config;
  fresh_config.gamma = 2.0;
  double ratio_sum_tail = 0.0;
  size_t tail = 0;
  for (size_t i = counts.size() / 2; i < counts.size(); ++i) {
    AsSimpleEngine fresh(*rig.engine, fresh_config);
    const size_t fresh_count = fresh.Search(attack.queries()[i]).docs.size();
    if (fresh_count == 0) continue;
    ratio_sum_tail +=
        static_cast<double>(counts[i]) / static_cast<double>(fresh_count);
    ++tail;
  }
  ASSERT_GT(tail, 5u);
  // Virtual query processing keeps answers at (or above) the fresh level.
  EXPECT_GT(ratio_sum_tail / static_cast<double>(tail), 0.85);
  EXPECT_GT(defended.stats().virtual_answers, counts.size() / 3);
}

TEST(CorrelatedAttackTest, OverflowMasksDecayOnLargerCorpus) {
  // The 2P side of Figures 18/19: on a corpus where the correlated queries
  // overflow by ~2x, hidden documents are replaced from the surplus, so
  // the top co-occurrence queries' answer sizes barely move.
  Rig rig = MakeTopicalRig(2100, 50, /*seed=*/99, /*held_out_size=*/2000);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);

  CorrelatedQueryAttack::Options options;
  options.num_queries = 20;  // broadest pairs only
  options.min_cooccurrence = 3;
  const CorrelatedQueryAttack attack = MakeSportsAttack(rig, options);
  const auto counts = attack.Run(defended);

  double ratio_sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const auto& q = attack.queries()[i];
    if (rig.engine->MatchCount(q) <
        2 * static_cast<size_t>(rig.engine->k())) {
      continue;  // only the overflowing queries demonstrate the masking
    }
    AsSimpleEngine fresh(*rig.engine, config);
    const size_t fresh_count = fresh.Search(q).docs.size();
    if (fresh_count == 0) continue;
    ratio_sum +=
        static_cast<double>(counts[i]) / static_cast<double>(fresh_count);
    ++used;
  }
  ASSERT_GT(used, 3u);
  EXPECT_GT(ratio_sum / static_cast<double>(used), 0.9);
}

TEST(CorrelatedAttackTest, SeedMustExist) {
  Rig rig = MakeRig(50, 5, /*seed=*/36, /*held_out_size=*/50);
  EXPECT_DEATH(CorrelatedQueryAttack(*rig.held_out, "notaword"), "unknown");
}

}  // namespace
}  // namespace asup
