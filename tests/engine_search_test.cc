#include "asup/engine/search_engine.h"

#include <memory>

#include <gtest/gtest.h>

#include "asup/text/synthetic_corpus.h"

namespace asup {
namespace {

class SearchEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticCorpusConfig config;
    config.vocabulary_size = 1000;
    config.num_topics = 8;
    config.words_per_topic = 100;
    config.seed = 7;
    generator_ = std::make_unique<SyntheticCorpusGenerator>(config);
    corpus_ = std::make_unique<Corpus>(generator_->Generate(600));
    index_ = std::make_unique<InvertedIndex>(*corpus_);
    engine_ = std::make_unique<PlainSearchEngine>(*index_, 5);
  }

  KeywordQuery Q(const std::string& text) {
    return KeywordQuery::Parse(corpus_->vocabulary(), text);
  }

  std::unique_ptr<SyntheticCorpusGenerator> generator_;
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<PlainSearchEngine> engine_;
};

TEST_F(SearchEngineTest, UnderflowOnUnknownWord) {
  const auto result = engine_->Search(Q("notawordatall"));
  EXPECT_EQ(result.status, QueryStatus::kUnderflow);
  EXPECT_TRUE(result.docs.empty());
}

TEST_F(SearchEngineTest, OverflowTruncatesToK) {
  // "sports" is a topic head word; with 600 docs it matches far more than
  // k = 5 documents.
  const auto result = engine_->Search(Q("sports"));
  EXPECT_EQ(result.status, QueryStatus::kOverflow);
  EXPECT_EQ(result.docs.size(), 5u);
}

TEST_F(SearchEngineTest, ValidWhenFewMatches) {
  // Find a term with 1..5 matches and verify all are returned.
  for (TermId term = 0; term < corpus_->vocabulary().size(); ++term) {
    const size_t df = index_->DocumentFrequency(term);
    if (df >= 1 && df <= 5) {
      const auto q = KeywordQuery::FromTerms(corpus_->vocabulary(), {term});
      const auto result = engine_->Search(q);
      EXPECT_EQ(result.status, QueryStatus::kValid);
      EXPECT_EQ(result.docs.size(), df);
      return;
    }
  }
  FAIL() << "no low-df term found";
}

TEST_F(SearchEngineTest, DeterministicAnswers) {
  const auto a = engine_->Search(Q("sports game"));
  const auto b = engine_->Search(Q("sports game"));
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].doc, b.docs[i].doc);
    EXPECT_EQ(a.docs[i].score, b.docs[i].score);
  }
}

TEST_F(SearchEngineTest, RankedByScoreThenId) {
  const auto result = engine_->Search(Q("sports"));
  for (size_t i = 1; i < result.docs.size(); ++i) {
    const auto& prev = result.docs[i - 1];
    const auto& cur = result.docs[i];
    EXPECT_TRUE(prev.score > cur.score ||
                (prev.score == cur.score && prev.doc < cur.doc));
  }
}

TEST_F(SearchEngineTest, TopMatchesExtendsSearch) {
  const auto q = Q("sports");
  const auto top5 = engine_->TopMatches(q, 5);
  const auto top20 = engine_->TopMatches(q, 20);
  EXPECT_EQ(top5.total_matches, top20.total_matches);
  ASSERT_GE(top20.docs.size(), top5.docs.size());
  for (size_t i = 0; i < top5.docs.size(); ++i) {
    EXPECT_EQ(top20.docs[i].doc, top5.docs[i].doc);  // consistent prefix
  }
}

TEST_F(SearchEngineTest, MatchIdsAscendingAndComplete) {
  const auto q = Q("sports");
  const auto ids = engine_->MatchIds(q);
  EXPECT_EQ(ids.size(), engine_->MatchCount(q));
  for (size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
  const TermId sports = *corpus_->vocabulary().Lookup("sports");
  for (DocId id : ids) {
    EXPECT_TRUE(corpus_->Get(id).Contains(sports));
  }
}

TEST_F(SearchEngineTest, RankDocsAgreesWithTopMatches) {
  const auto q = Q("sports");
  const auto full = engine_->TopMatches(q, engine_->MatchCount(q));
  std::vector<DocId> ids;
  for (const auto& scored : full.docs) ids.push_back(scored.doc);
  const auto reranked = engine_->RankDocs(q, ids);
  ASSERT_EQ(reranked.size(), full.docs.size());
  for (size_t i = 0; i < reranked.size(); ++i) {
    EXPECT_EQ(reranked[i].doc, full.docs[i].doc);
    EXPECT_NEAR(reranked[i].score, full.docs[i].score, 1e-12);
  }
}

TEST_F(SearchEngineTest, ConjunctiveSemantics) {
  const auto q = Q("sports game team");
  const auto ids = engine_->MatchIds(q);
  const auto& vocab = corpus_->vocabulary();
  for (DocId id : ids) {
    const Document& doc = corpus_->Get(id);
    EXPECT_TRUE(doc.Contains(*vocab.Lookup("sports")));
    EXPECT_TRUE(doc.Contains(*vocab.Lookup("game")));
    EXPECT_TRUE(doc.Contains(*vocab.Lookup("team")));
  }
}

TEST_F(SearchEngineTest, QueryCountingDecorator) {
  QueryCountingService counting(*engine_);
  EXPECT_EQ(counting.queries_issued(), 0u);
  counting.Search(Q("sports"));
  counting.Search(Q("game"));
  EXPECT_EQ(counting.queries_issued(), 2u);
  EXPECT_EQ(counting.k(), engine_->k());
  counting.Reset();
  EXPECT_EQ(counting.queries_issued(), 0u);
}

TEST_F(SearchEngineTest, TimingDecoratorAccumulates) {
  TimingService timing(*engine_);
  timing.Search(Q("sports"));
  timing.Search(Q("sports game"));
  EXPECT_EQ(timing.queries(), 2u);
  EXPECT_GT(timing.total_nanos(), 0);
  EXPECT_GT(timing.MeanNanos(), 0.0);
}

TEST_F(SearchEngineTest, SearchResultHelpers) {
  const auto result = engine_->Search(Q("sports"));
  ASSERT_FALSE(result.docs.empty());
  const DocId first = result.docs[0].doc;
  EXPECT_TRUE(result.Returned(first));
  EXPECT_FALSE(result.Returned(kInvalidDoc));
  EXPECT_EQ(result.DocIds().size(), result.docs.size());
  EXPECT_EQ(result.DocIds()[0], first);
}

TEST_F(SearchEngineTest, TfIdfScorerAlsoWorks) {
  PlainSearchEngine tfidf(*index_, 5, std::make_unique<TfIdfScorer>());
  const auto result = tfidf.Search(Q("sports"));
  EXPECT_EQ(result.docs.size(), 5u);
  for (size_t i = 1; i < result.docs.size(); ++i) {
    EXPECT_GE(result.docs[i - 1].score, result.docs[i].score);
  }
}

}  // namespace
}  // namespace asup
