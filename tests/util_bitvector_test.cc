#include "asup/util/bitvector.h"

#include <vector>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitVectorTest, SetTestClear) {
  BitVector bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitVectorTest, SetIsIdempotent) {
  BitVector bits(10);
  bits.Set(5);
  bits.Set(5);
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(BitVectorTest, Reset) {
  BitVector bits(200);
  for (size_t i = 0; i < 200; i += 3) bits.Set(i);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitVectorTest, OrAssign) {
  BitVector a(70);
  BitVector b(70);
  a.Set(1);
  a.Set(65);
  b.Set(2);
  b.Set(65);
  a |= b;
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_TRUE(a.Test(65));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitVectorTest, AndAssign) {
  BitVector a(70);
  BitVector b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  a &= b;
  EXPECT_FALSE(a.Test(1));
  EXPECT_TRUE(a.Test(65));
  EXPECT_EQ(a.Count(), 1u);
}

TEST(BitVectorTest, CountAnd) {
  BitVector a(128);
  BitVector b(128);
  for (size_t i = 0; i < 128; i += 2) a.Set(i);
  for (size_t i = 0; i < 128; i += 3) b.Set(i);
  // Multiples of 6 below 128: 0, 6, ..., 126 -> 22 values.
  EXPECT_EQ(a.CountAnd(b), 22u);
}

TEST(BitVectorTest, Equality) {
  BitVector a(40);
  BitVector b(40);
  EXPECT_TRUE(a == b);
  a.Set(7);
  EXPECT_FALSE(a == b);
  b.Set(7);
  EXPECT_TRUE(a == b);
}

TEST(BitVectorTest, AccumulateInto) {
  BitVector a(1000);
  BitVector b(1000);
  a.Set(0);
  a.Set(999);
  b.Set(999);
  std::vector<uint32_t> counts(1000, 0);
  a.AccumulateInto(counts);
  b.AccumulateInto(counts);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[999], 2u);
  EXPECT_EQ(counts[500], 0u);
}

TEST(BitVectorTest, AccumulateIntoSumsEqualCount) {
  BitVector bits(256);
  for (size_t i = 1; i < 256; i *= 2) bits.Set(i);
  std::vector<uint32_t> counts(256, 0);
  bits.AccumulateInto(counts);
  uint32_t total = 0;
  for (uint32_t c : counts) total += c;
  EXPECT_EQ(total, bits.Count());
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bits;
  EXPECT_EQ(bits.size(), 0u);
  EXPECT_EQ(bits.Count(), 0u);
}

}  // namespace
}  // namespace asup
