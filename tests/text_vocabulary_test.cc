#include "asup/text/vocabulary.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary vocab;
  const TermId linux = vocab.AddWord("linux");
  const TermId windows = vocab.AddWord("windows");
  EXPECT_NE(linux, windows);
  EXPECT_EQ(vocab.Lookup("linux"), linux);
  EXPECT_EQ(vocab.Lookup("windows"), windows);
  EXPECT_FALSE(vocab.Lookup("macos").has_value());
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, AddIsIdempotent) {
  Vocabulary vocab;
  const TermId a = vocab.AddWord("kernel");
  const TermId b = vocab.AddWord("kernel");
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(VocabularyTest, WordOfRoundTrips) {
  Vocabulary vocab;
  const TermId id = vocab.AddWord("handbook");
  EXPECT_EQ(vocab.WordOf(id), "handbook");
}

TEST(VocabularyTest, IdsAreDense) {
  Vocabulary vocab;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(vocab.AddWord("w" + std::to_string(i)),
              static_cast<TermId>(i));
  }
}

TEST(VocabularyTest, GenerateSyntheticExactSize) {
  Rng rng(1);
  auto vocab = Vocabulary::GenerateSynthetic(5000, rng);
  EXPECT_EQ(vocab->size(), 5000u);
}

TEST(VocabularyTest, GenerateSyntheticAllDistinct) {
  Rng rng(2);
  auto vocab = Vocabulary::GenerateSynthetic(2000, rng);
  std::set<std::string> words;
  for (TermId id = 0; id < vocab->size(); ++id) {
    words.insert(vocab->WordOf(id));
  }
  EXPECT_EQ(words.size(), 2000u);
}

TEST(VocabularyTest, ReservedWordsGetLowIds) {
  Rng rng(3);
  auto vocab =
      Vocabulary::GenerateSynthetic(100, rng, {"sports", "patent"});
  EXPECT_EQ(vocab->Lookup("sports"), TermId{0});
  EXPECT_EQ(vocab->Lookup("patent"), TermId{1});
  EXPECT_EQ(vocab->size(), 100u);
}

TEST(VocabularyTest, GenerateSyntheticDeterministicForSeed) {
  Rng rng1(7);
  Rng rng2(7);
  auto a = Vocabulary::GenerateSynthetic(500, rng1);
  auto b = Vocabulary::GenerateSynthetic(500, rng2);
  for (TermId id = 0; id < 500; ++id) {
    EXPECT_EQ(a->WordOf(id), b->WordOf(id));
  }
}

TEST(WordSynthesizerTest, ProducesLowercaseAlpha) {
  Rng rng(11);
  WordSynthesizer synthesizer(rng);
  for (int i = 0; i < 500; ++i) {
    const std::string word = synthesizer.NextWord();
    EXPECT_GE(word.size(), 2u);
    for (char c : word) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << word;
    }
  }
}

}  // namespace
}  // namespace asup
