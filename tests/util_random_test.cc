#include "asup/util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformBelowCoversRangeUniformly) {
  Rng rng(3);
  std::vector<int> histogram(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) histogram[rng.UniformBelow(10)]++;
  for (int count : histogram) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, UniformU64RespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.UniformU64(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(RngTest, UniformU64DegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.UniformU64(42, 42), 42u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, GeometricMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Geometric(0.25));
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, GeometricSureSuccess) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 1u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (uint64_t count : {0ULL, 1ULL, 10ULL, 100ULL, 999ULL, 1000ULL}) {
    auto sample = rng.SampleWithoutReplacement(1000, count);
    ASSERT_EQ(sample.size(), count);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (uint64_t v : sample) EXPECT_LT(v, 1000u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  // Each element of [0, 20) should be picked with probability 5/20.
  Rng rng(41);
  std::vector<int> counts(20, 0);
  const int rounds = 40000;
  for (int r = 0; r < rounds; ++r) {
    for (uint64_t v : rng.SampleWithoutReplacement(20, 5)) counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, rounds / 4, rounds / 4 * 0.1);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(43);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = values;
  rng.Shuffle(values);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, original);
}

TEST(ZipfTest, SingleElement) {
  Rng rng(47);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SamplesWithinSupport) {
  Rng rng(53);
  ZipfDistribution zipf(100, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  Rng rng(59);
  ZipfDistribution zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, MatchesExactDistributionSmallSupport) {
  // Compare empirical frequencies against the exact Zipf mass for n = 5.
  Rng rng(61);
  const double s = 1.3;
  ZipfDistribution zipf(5, s);
  std::vector<double> expected(5);
  double z = 0.0;
  for (int r = 0; r < 5; ++r) z += std::pow(r + 1.0, -s);
  for (int r = 0; r < 5; ++r) expected[r] = std::pow(r + 1.0, -s) / z;
  std::vector<int> counts(5, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (int r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, expected[r], 0.01)
        << "rank " << r;
  }
}

class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, HeadProbabilityMatchesTheory) {
  const double s = GetParam();
  const uint64_t n = 2000;
  Rng rng(67);
  ZipfDistribution zipf(n, s);
  double z = 0.0;
  for (uint64_t r = 1; r <= n; ++r) z += std::pow(r, -s);
  const double expected_head = 1.0 / z;
  int head = 0;
  const int rounds = 200000;
  for (int i = 0; i < rounds; ++i) head += zipf.Sample(rng) == 0;
  EXPECT_NEAR(static_cast<double>(head) / rounds, expected_head,
              0.1 * expected_head + 0.002);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweepTest,
                         ::testing::Values(0.6, 0.8, 1.0, 1.05, 1.3, 2.0));

}  // namespace
}  // namespace asup
