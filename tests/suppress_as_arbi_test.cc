#include "asup/suppress/as_arbi.h"

#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

TEST(AsArbiTest, UnderflowPassesThrough) {
  Rig rig = MakeRig(400, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  const auto result = defended.Search(rig.Q("notaword"));
  EXPECT_EQ(result.status, QueryStatus::kUnderflow);
  EXPECT_TRUE(result.docs.empty());
  EXPECT_EQ(defended.history().NumQueries(), 0u);
}

TEST(AsArbiTest, FirstQueryGoesThroughSimplePath) {
  Rig rig = MakeRig(400, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  const auto result = defended.Search(rig.Q("sports"));
  EXPECT_FALSE(result.docs.empty());
  EXPECT_EQ(defended.stats().simple_answers, 1u);
  EXPECT_EQ(defended.stats().virtual_answers, 0u);
  EXPECT_EQ(defended.history().NumQueries(), 1u);
}

TEST(AsArbiTest, DeterministicRepeats) {
  Rig rig = MakeRig(500, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  const auto first = defended.Search(rig.Q("sports game"));
  defended.Search(rig.Q("team"));
  defended.Search(rig.Q("score"));
  const auto again = defended.Search(rig.Q("sports game"));
  ASSERT_EQ(first.docs.size(), again.docs.size());
  for (size_t i = 0; i < first.docs.size(); ++i) {
    EXPECT_EQ(first.docs[i].doc, again.docs[i].doc);
  }
  EXPECT_GE(defended.stats().cache_hits, 1u);
}

// Correlated topical queries: "sports" plus each of its strongest topic
// companions. In the topical rig the sports population is ~k documents, so
// these queries heavily overlap — the regime where virtual query
// processing engages.
std::vector<KeywordQuery> CorrelatedFamily(const Rig& rig, size_t count) {
  std::vector<KeywordQuery> queries;
  const char* words[] = {"game", "team",   "score", "league", "coach",
                         "season", "player", "match", "win"};
  for (const char* w : words) {
    if (queries.size() >= count) break;
    queries.push_back(rig.Q(std::string("sports ") + w));
  }
  return queries;
}

TEST(AsArbiTest, VirtualAnswerForCoveredQuery) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  uint64_t virtuals_before = defended.stats().virtual_answers;
  for (const auto& q : CorrelatedFamily(rig, 9)) defended.Search(q);
  // With heavy overlap among these queries, later ones are answered
  // virtually once history accumulates.
  EXPECT_GT(defended.stats().virtual_answers, virtuals_before);
}

TEST(AsArbiTest, VirtualAnswersComeFromHistory) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  bool any_virtual = false;
  for (const auto& q : CorrelatedFamily(rig, 9)) {
    const uint64_t virtuals = defended.stats().virtual_answers;
    const auto result = defended.Search(q);
    if (defended.stats().virtual_answers == virtuals) continue;
    any_virtual = true;
    // Every returned doc must have been disclosed by an earlier answer...
    for (const auto& scored : result.docs) {
      EXPECT_NE(defended.history().QueriesReturning(scored.doc), nullptr);
    }
    // ...and must match the query.
    const auto match_ids = rig.engine->MatchIds(q);
    const std::set<DocId> matches(match_ids.begin(), match_ids.end());
    for (const auto& scored : result.docs) {
      EXPECT_TRUE(matches.count(scored.doc));
    }
  }
  EXPECT_TRUE(any_virtual);
}

TEST(AsArbiTest, VirtualAnswersNotRecordedInHistory) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  const auto family = CorrelatedFamily(rig, 9);
  for (const auto& q : family) defended.Search(q);
  // History grew only by the non-virtual answers.
  EXPECT_EQ(defended.history().NumQueries() +
                defended.stats().virtual_answers,
            family.size());
  EXPECT_GT(defended.stats().virtual_answers, 0u);
}

TEST(AsArbiTest, BroadQueriesSkipTriggerEvaluation) {
  Rig rig = MakeRig(800, 5);
  AsArbiConfig config;
  config.cover_size = 2;  // trigger only possible for |q| <= 10
  AsArbiEngine defended(*rig.engine, config);
  defended.Search(rig.Q("sports"));  // df >> 10 in an 800-doc corpus
  EXPECT_EQ(defended.stats().trigger_evaluations, 0u);
}

TEST(AsArbiTest, NeverReturnsMoreThanK) {
  Rig rig = MakeRig(600, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  for (const char* w : {"sports", "game", "sports game", "team", "score"}) {
    EXPECT_LE(defended.Search(rig.Q(w)).docs.size(), 5u);
  }
}

TEST(AsArbiTest, AnswersAreSubsetsOfMatches) {
  Rig rig = MakeRig(600, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  for (const char* w : {"sports", "game", "sports game", "sports team"}) {
    const auto q = rig.Q(w);
    const auto match_ids = rig.engine->MatchIds(q);
    const std::set<DocId> matches(match_ids.begin(), match_ids.end());
    for (const auto& scored : defended.Search(q).docs) {
      EXPECT_TRUE(matches.count(scored.doc)) << w;
    }
  }
}

class AsArbiCoverSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AsArbiCoverSizeSweep, WorksAcrossCoverSizes) {
  // The paper reports little sensitivity to m in 1..10; at minimum the
  // engine must stay correct (subset-of-matches, size <= k).
  Rig rig = MakeRig(500, 10, /*seed=*/31);
  AsArbiConfig config;
  config.cover_size = GetParam();
  AsArbiEngine defended(*rig.engine, config);
  for (const char* w :
       {"sports", "sports game", "sports team", "game team", "sports score"}) {
    const auto q = rig.Q(w);
    const auto match_ids = rig.engine->MatchIds(q);
    const std::set<DocId> matches(match_ids.begin(), match_ids.end());
    const auto result = defended.Search(q);
    EXPECT_LE(result.docs.size(), 10u);
    for (const auto& scored : result.docs) {
      EXPECT_TRUE(matches.count(scored.doc));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoverSizes, AsArbiCoverSizeSweep,
                         ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace asup
