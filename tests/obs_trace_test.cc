// Tests for the query-trace layer (src/asup/obs/trace.h): span nesting,
// ring-buffer wraparound, the JSONL schema (golden line), and the
// install/active-trace semantics of the RAII scopes.

#include "asup/obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#if ASUP_METRICS_ENABLED

namespace asup {
namespace {

class TraceSinkScope {
 public:
  explicit TraceSinkScope(obs::TraceRingSink& sink) {
    obs::InstallTraceSink(&sink);
  }
  ~TraceSinkScope() { obs::InstallTraceSink(nullptr); }
};

TEST(QueryTrace, SpansNestWithIncreasingDepth) {
  obs::QueryTrace trace("q");
  const size_t outer = trace.OpenSpan(obs::Stage::kMatch, 0);
  const size_t inner = trace.OpenSpan(obs::Stage::kCacheLookup, 10);
  trace.CloseSpan(inner, 40);
  trace.CloseSpan(outer, 100);
  const size_t after = trace.OpenSpan(obs::Stage::kTrim, 120);
  trace.CloseSpan(after, 150);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].depth, 0u);
  EXPECT_EQ(trace.spans()[0].duration_ns, 100);
  EXPECT_EQ(trace.spans()[1].depth, 1u);
  EXPECT_EQ(trace.spans()[1].duration_ns, 30);
  // Sibling after both closed: back to depth 0.
  EXPECT_EQ(trace.spans()[2].depth, 0u);
}

TEST(QueryTrace, GoldenJsonlLine) {
  obs::QueryTrace trace("alpha \"beta\"");
  trace.set_sequence(7);
  trace.AddSpan(obs::TraceSpan{obs::Stage::kHide, 100, 250, 0});
  trace.AddSpan(obs::TraceSpan{obs::Stage::kTrim, 400, 50, 1});
  trace.AddNote("docs_hidden", 3);
  trace.AddNote("mu", 1.5);

  std::string line;
  trace.AppendJson(line);
  EXPECT_EQ(line,
            "{\"q\":\"alpha \\\"beta\\\"\",\"seq\":7,\"spans\":["
            "{\"stage\":\"hide\",\"start_ns\":100,\"dur_ns\":250,"
            "\"depth\":0},"
            "{\"stage\":\"trim\",\"start_ns\":400,\"dur_ns\":50,"
            "\"depth\":1}],"
            "\"notes\":{\"docs_hidden\":3,\"mu\":1.5}}");
}

TEST(TraceRingSink, KeepsMostRecentTracesOldestFirst) {
  obs::TraceRingSink sink(4);
  for (int i = 0; i < 10; ++i) {
    obs::QueryTrace trace("q" + std::to_string(i));
    trace.set_sequence(static_cast<uint64_t>(i));
    sink.Publish(std::move(trace));
  }
  EXPECT_EQ(sink.total_published(), 10u);
  const std::vector<obs::QueryTrace> kept = sink.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].query(), "q" + std::to_string(6 + i));
    EXPECT_EQ(kept[i].sequence(), 6 + i);
  }
}

TEST(TraceRingSink, CountsOverwrittenTracesAndExportsThemAsMetric) {
  obs::MetricsRegistry::Default().Reset();
  obs::TraceRingSink sink(4);
  EXPECT_EQ(sink.dropped(), 0u);
  for (int i = 0; i < 10; ++i) {
    sink.Publish(obs::QueryTrace("q" + std::to_string(i)));
  }
  // 10 published into 4 slots: 6 evicted, visible locally and fleet-wide.
  EXPECT_EQ(sink.total_published(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  EXPECT_EQ(obs::MetricsRegistry::Default().CounterValues().at(
                "asup_obs_traces_dropped_total"),
            6u);
}

TEST(TraceRingSink, WriteJsonlEmitsOneLinePerTrace) {
  obs::TraceRingSink sink(8);
  for (int i = 0; i < 3; ++i) {
    sink.Publish(obs::QueryTrace("q" + std::to_string(i)));
  }
  std::ostringstream out;
  sink.WriteJsonl(out);
  const std::string text = out.str();
  EXPECT_EQ(static_cast<int>(std::count(text.begin(), text.end(), '\n')), 3);
  EXPECT_EQ(text.find("{\"q\":\"q0\""), 0u);
}

TEST(ScopedQueryTrace, InertWithoutSink) {
  ASSERT_EQ(obs::InstalledTraceSink(), nullptr);
  obs::ScopedQueryTrace scope("quiet");
  EXPECT_EQ(obs::ActiveTrace(), nullptr);
  ASUP_TRACE_NOTE("ignored", 1);  // must not crash
}

TEST(ScopedQueryTrace, PublishesSpansAndNotesToSink) {
  obs::TraceRingSink sink(4);
  {
    TraceSinkScope installed(sink);
    obs::ScopedQueryTrace scope("traced");
    ASSERT_NE(obs::ActiveTrace(), nullptr);
    {
      ASUP_TRACE_STAGE(obs::Stage::kMatch);
      { ASUP_TRACE_STAGE(obs::Stage::kCacheLookup); }
    }
    ASUP_TRACE_NOTE("docs_hidden", 2);
  }
  ASSERT_EQ(sink.total_published(), 1u);
  const obs::QueryTrace trace = sink.Snapshot()[0];
  EXPECT_EQ(trace.query(), "traced");
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].stage, obs::Stage::kMatch);
  EXPECT_EQ(trace.spans()[0].depth, 0u);
  EXPECT_EQ(trace.spans()[1].stage, obs::Stage::kCacheLookup);
  EXPECT_EQ(trace.spans()[1].depth, 1u);
  // The inner span is contained in the outer one.
  EXPECT_GE(trace.spans()[1].start_ns, trace.spans()[0].start_ns);
  EXPECT_GE(trace.spans()[0].duration_ns, trace.spans()[1].duration_ns);
  ASSERT_EQ(trace.notes().size(), 1u);
  EXPECT_STREQ(trace.notes()[0].key, "docs_hidden");
  EXPECT_DOUBLE_EQ(trace.notes()[0].value, 2.0);
}

TEST(ScopedQueryTrace, NestedScopesRestoreTheOuterTrace) {
  obs::TraceRingSink sink(4);
  TraceSinkScope installed(sink);
  obs::ScopedQueryTrace outer("outer");
  obs::QueryTrace* outer_trace = obs::ActiveTrace();
  ASSERT_NE(outer_trace, nullptr);
  {
    obs::ScopedQueryTrace inner("inner");
    EXPECT_NE(obs::ActiveTrace(), outer_trace);
  }
  EXPECT_EQ(obs::ActiveTrace(), outer_trace);
  EXPECT_EQ(sink.total_published(), 1u);  // only the inner one so far
  EXPECT_EQ(sink.Snapshot()[0].query(), "inner");
}

TEST(ScopedStageTimer, FeedsStageHistogramWithoutActiveTrace) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.Reset();
  { ASUP_TRACE_STAGE(obs::Stage::kCover); }
  obs::Histogram* histogram =
      registry.FindHistogram("asup_pipeline_stage_ns{stage=\"cover\"}");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Snap().total_count, 1u);
}

TEST(StageName, CoversEveryStage) {
  for (size_t s = 0; s < obs::kNumStages; ++s) {
    EXPECT_STRNE(obs::StageName(static_cast<obs::Stage>(s)), "?");
  }
}

}  // namespace
}  // namespace asup

#else  // !ASUP_METRICS_ENABLED

// Compiled-out build: the trace macros must be valid statements that
// evaluate nothing.
TEST(TraceCompiledOut, MacrosAreInert) {
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  ASUP_TRACE_STAGE(would_not_compile_if_evaluated);
  ASUP_TRACE_NOTE("key", bump());
  EXPECT_EQ(evaluations, 0);
}

#endif  // ASUP_METRICS_ENABLED
