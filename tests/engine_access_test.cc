#include "asup/engine/access_policy.h"

#include <gtest/gtest.h>

#include <set>

#include "asup/attack/query_pool.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

TEST(RateLimitTest, AllowsWithinQuota) {
  Rig rig = MakeRig(300, 5);
  AccessPolicy policy;
  policy.queries_per_period = 10;
  RateLimitedService limited(*rig.engine, policy);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(limited.Search(rig.Q("sports")).status, QueryStatus::kDeclined);
  }
  EXPECT_EQ(limited.queries_this_period(), 10u);
  EXPECT_FALSE(limited.blocked());
}

TEST(RateLimitTest, RefusesBeyondQuota) {
  Rig rig = MakeRig(300, 5);
  AccessPolicy policy;
  policy.queries_per_period = 3;
  RateLimitedService limited(*rig.engine, policy);
  for (int i = 0; i < 3; ++i) limited.Search(rig.Q("sports"));
  const auto refused = limited.Search(rig.Q("game"));
  EXPECT_EQ(refused.status, QueryStatus::kDeclined);
  EXPECT_TRUE(refused.docs.empty());
  EXPECT_TRUE(limited.blocked());
  EXPECT_EQ(limited.refused(), 1u);
}

TEST(RateLimitTest, QuotaRefillsNextPeriod) {
  Rig rig = MakeRig(300, 5);
  AccessPolicy policy;
  policy.queries_per_period = 2;
  policy.block_periods = 1;
  RateLimitedService limited(*rig.engine, policy);
  limited.Search(rig.Q("sports"));
  limited.Search(rig.Q("game"));
  EXPECT_EQ(limited.Search(rig.Q("team")).status, QueryStatus::kDeclined);
  limited.AdvancePeriod();
  EXPECT_NE(limited.Search(rig.Q("team")).status, QueryStatus::kDeclined);
}

TEST(RateLimitTest, LongBlockPersistsAcrossPeriods) {
  Rig rig = MakeRig(300, 5);
  AccessPolicy policy;
  policy.queries_per_period = 1;
  policy.block_periods = 3;
  RateLimitedService limited(*rig.engine, policy);
  limited.Search(rig.Q("sports"));
  limited.Search(rig.Q("game"));  // exceeds -> blocked for 3 periods
  limited.AdvancePeriod();
  EXPECT_EQ(limited.Search(rig.Q("team")).status, QueryStatus::kDeclined);
  limited.AdvancePeriod();
  EXPECT_EQ(limited.Search(rig.Q("team")).status, QueryStatus::kDeclined);
  limited.AdvancePeriod();
  EXPECT_NE(limited.Search(rig.Q("team")).status, QueryStatus::kDeclined);
}

TEST(RateLimitTest, ZeroBlockPeriodsIsForever) {
  Rig rig = MakeRig(300, 5);
  AccessPolicy policy;
  policy.queries_per_period = 1;
  policy.block_periods = 0;
  RateLimitedService limited(*rig.engine, policy);
  limited.Search(rig.Q("sports"));
  limited.Search(rig.Q("game"));  // exceeds -> blocked permanently
  for (int period = 0; period < 5; ++period) {
    limited.AdvancePeriod();
    EXPECT_EQ(limited.Search(rig.Q("team")).status, QueryStatus::kDeclined);
  }
}

TEST(RateLimitTest, PassesThroughAnswers) {
  Rig rig = MakeRig(300, 5);
  AccessPolicy policy;
  RateLimitedService limited(*rig.engine, policy);
  const auto direct = rig.engine->Search(rig.Q("sports"));
  const auto via_limit = limited.Search(rig.Q("sports"));
  EXPECT_EQ(direct.status, via_limit.status);
  EXPECT_EQ(direct.DocIds(), via_limit.DocIds());
  EXPECT_EQ(limited.k(), rig.engine->k());
}

TEST(RateLimitTest, BoundsBruteForceCrawl) {
  // The reason the paper's brute-force attack fails: quota * k bounds the
  // crawlable documents per period.
  Rig rig = MakeRig(500, 5, /*seed=*/7, /*held_out_size=*/300);
  AccessPolicy policy;
  policy.queries_per_period = 20;
  RateLimitedService limited(*rig.engine, policy);
  QueryPool pool(*rig.held_out);
  std::set<DocId> crawled;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto result = limited.Search(pool.QueryAt(i));
    if (result.status == QueryStatus::kDeclined) break;
    for (const auto& scored : result.docs) crawled.insert(scored.doc);
  }
  EXPECT_LE(crawled.size(), 20u * 5u);
  EXPECT_LT(crawled.size(), rig.corpus->size() / 2);
}

}  // namespace
}  // namespace asup
