#include "asup/workload/aol_like.h"

#include <set>

#include <gtest/gtest.h>

#include "asup/workload/query_log.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

AolLikeConfig SmallLog() {
  AolLikeConfig config;
  config.log_size = 2000;
  config.unique_queries = 600;
  return config;
}

TEST(AolLikeTest, GeneratesRequestedSizes) {
  Rig rig = MakeRig(500, 5);
  AolLikeWorkload workload(*rig.corpus, SmallLog());
  EXPECT_EQ(workload.log().size(), 2000u);
  EXPECT_EQ(workload.unique_queries().size(), 600u);
}

TEST(AolLikeTest, LogDrawsFromUniquePopulation) {
  Rig rig = MakeRig(500, 5);
  AolLikeWorkload workload(*rig.corpus, SmallLog());
  std::set<std::string> population;
  for (const auto& q : workload.unique_queries()) {
    population.insert(q.canonical());
  }
  for (const auto& q : workload.log()) {
    EXPECT_TRUE(population.count(q.canonical()));
  }
}

TEST(AolLikeTest, LogContainsDuplicates) {
  // Zipf popularity must produce repeated queries (the paper notes the
  // workload may contain duplicates).
  Rig rig = MakeRig(500, 5);
  AolLikeWorkload workload(*rig.corpus, SmallLog());
  std::set<std::string> seen;
  size_t duplicates = 0;
  for (const auto& q : workload.log()) {
    if (!seen.insert(q.canonical()).second) ++duplicates;
  }
  EXPECT_GT(duplicates, workload.log().size() / 10);
}

TEST(AolLikeTest, QueriesHaveOneToFourWords) {
  Rig rig = MakeRig(500, 5);
  AolLikeWorkload workload(*rig.corpus, SmallLog());
  for (const auto& q : workload.unique_queries()) {
    EXPECT_GE(q.terms().size(), 1u);
    EXPECT_LE(q.terms().size(), 4u);
  }
}

TEST(AolLikeTest, MostQueriesMatchSomething) {
  Rig rig = MakeRig(500, 5);
  AolLikeWorkload workload(*rig.corpus, SmallLog());
  size_t matched = 0;
  for (const auto& q : workload.unique_queries()) {
    if (rig.engine->MatchCount(q) > 0) ++matched;
  }
  EXPECT_GT(static_cast<double>(matched) / workload.unique_queries().size(),
            0.7);
}

TEST(AolLikeTest, ManyQueriesOverflow) {
  // The paper's key utility observation: most real queries overflow the
  // top-k interface.
  Rig rig = MakeRig(800, 5);
  AolLikeWorkload workload(*rig.corpus, SmallLog());
  size_t overflow = 0;
  for (const auto& q : workload.log()) {
    if (rig.engine->MatchCount(q) > rig.engine->k()) ++overflow;
  }
  EXPECT_GT(static_cast<double>(overflow) / workload.log().size(), 0.4);
}

TEST(AolLikeTest, DeterministicForSeed) {
  Rig rig = MakeRig(300, 5);
  AolLikeWorkload a(*rig.corpus, SmallLog());
  AolLikeWorkload b(*rig.corpus, SmallLog());
  for (size_t i = 0; i < a.log().size(); ++i) {
    EXPECT_EQ(a.log()[i].canonical(), b.log()[i].canonical());
  }
}

TEST(WorkloadProfileTest, ProfilesBasicCounts) {
  Rig rig = MakeRig(800, 5);
  AolLikeConfig config = SmallLog();
  config.log_size = 500;
  AolLikeWorkload workload(*rig.corpus, config);
  const WorkloadProfile profile =
      ProfileWorkload(*rig.engine, workload.log(), 2.0);
  EXPECT_EQ(profile.num_queries, 500u);
  EXPECT_GE(profile.overflow_fraction, profile.gamma_overflow_fraction);
  EXPECT_GT(profile.avg_docs_returned, 0.0);
  EXPECT_LE(profile.avg_docs_returned, 5.0);
}

TEST(WorkloadProfileTest, TheoremBoundsAreValidProbabilities) {
  Rig rig = MakeRig(800, 5);
  AolLikeConfig config = SmallLog();
  config.log_size = 500;
  AolLikeWorkload workload(*rig.corpus, config);
  const WorkloadProfile profile =
      ProfileWorkload(*rig.engine, workload.log(), 2.0);
  for (double gamma : {1.5, 2.0, 5.0, 10.0}) {
    const double recall_bound = profile.RecallLowerBound(gamma);
    const double precision_bound = profile.PrecisionLowerBound(gamma);
    EXPECT_GT(recall_bound, 0.0) << gamma;
    EXPECT_LE(recall_bound, 1.0) << gamma;
    EXPECT_GT(precision_bound, 0.0) << gamma;
    EXPECT_LE(precision_bound, 1.0) << gamma;
  }
}

TEST(WorkloadProfileTest, BoundsDegradeWithGamma) {
  Rig rig = MakeRig(800, 5);
  AolLikeConfig config = SmallLog();
  config.log_size = 400;
  AolLikeWorkload workload(*rig.corpus, config);
  const WorkloadProfile profile =
      ProfileWorkload(*rig.engine, workload.log(), 2.0);
  EXPECT_GE(profile.PrecisionLowerBound(2.0),
            profile.PrecisionLowerBound(10.0));
}

}  // namespace
}  // namespace asup
