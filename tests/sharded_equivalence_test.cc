#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/sharded_service.h"
#include "asup/index/sharded_index.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/state_io.h"
#include "asup/util/thread_pool.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

// The sharded scatter-gather engine is specified to be *bitwise* equal to
// the single-index serial engine — same documents, same double scores,
// same suppression state — for every shard count and with or without a
// thread pool. These tests pin that contract.

const size_t kShardCounts[] = {1, 2, 3, 4, 7};

std::vector<KeywordQuery> Workload(const Rig& rig) {
  std::vector<KeywordQuery> queries;
  for (const char* text :
       {"sports", "game", "team", "league", "win", "coach", "season",
        "score", "sports game", "team league win", "game score",
        "sports team coach", "notaword", ""}) {
    queries.push_back(rig.Q(text));
  }
  // A few synthetic vocabulary words, so the workload is not limited to
  // the generator's seeded topic heads.
  const Vocabulary& vocab = rig.corpus->vocabulary();
  for (TermId t = 0; t < 40 && t < vocab.size(); t += 7) {
    queries.push_back(rig.Q(vocab.WordOf(t)));
    if (t + 1 < vocab.size()) {
      queries.push_back(rig.Q(vocab.WordOf(t) + " " + vocab.WordOf(t + 1)));
    }
  }
  return queries;
}

void ExpectBitwiseEqual(const RankedMatches& a, const RankedMatches& b,
                        const std::string& label) {
  EXPECT_EQ(a.total_matches, b.total_matches) << label;
  ASSERT_EQ(a.docs.size(), b.docs.size()) << label;
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].doc, b.docs[i].doc) << label << " rank " << i;
    // Bitwise, not approximate: the sharded engine scores against the
    // global context with identical arithmetic.
    EXPECT_EQ(a.docs[i].score, b.docs[i].score) << label << " rank " << i;
  }
}

void ExpectBitwiseEqual(const SearchResult& a, const SearchResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  ASSERT_EQ(a.docs.size(), b.docs.size()) << label;
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].doc, b.docs[i].doc) << label << " rank " << i;
    EXPECT_EQ(a.docs[i].score, b.docs[i].score) << label << " rank " << i;
  }
}

TEST(ShardedIndexTest, PartitionInvariants) {
  Rig rig = MakeRig(503, 10);
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex sharded(*rig.corpus, shards);
    ASSERT_EQ(sharded.NumShards(), shards);
    EXPECT_EQ(sharded.NumDocuments(), rig.index->NumDocuments());
    size_t total = 0;
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(sharded.ShardBase(s), total);
      total += sharded.Shard(s).NumDocuments();
      // Near-equal ranges: sizes differ by at most one document.
      EXPECT_GE(sharded.Shard(s).NumDocuments(),
                sharded.NumDocuments() / shards);
      EXPECT_LE(sharded.Shard(s).NumDocuments(),
                sharded.NumDocuments() / shards + 1);
    }
    EXPECT_EQ(total, sharded.NumDocuments());
  }
}

TEST(ShardedIndexTest, ShardCountClampedToCorpusSize) {
  Rig rig = MakeRig(3, 2);
  ShardedInvertedIndex sharded(*rig.corpus, 16);
  EXPECT_EQ(sharded.NumShards(), 3u);
  ShardedInvertedIndex zero(*rig.corpus, 0);
  EXPECT_EQ(zero.NumShards(), 1u);
}

TEST(ShardedIndexTest, GlobalStatsMatchSingleIndex) {
  Rig rig = MakeRig(617, 10);
  const IndexStats& single = rig.index->stats();
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex sharded(*rig.corpus, shards);
    EXPECT_EQ(sharded.stats().num_documents, single.num_documents);
    EXPECT_EQ(sharded.stats().num_terms, single.num_terms);
    EXPECT_EQ(sharded.stats().num_postings, single.num_postings);
    // Bitwise: the average is computed with the same arithmetic.
    EXPECT_EQ(sharded.stats().average_doc_length, single.average_doc_length);
    for (TermId t = 0; t < rig.corpus->vocabulary().size(); ++t) {
      ASSERT_EQ(sharded.DocumentFrequency(t), rig.index->DocumentFrequency(t))
          << "term " << t;
    }
  }
}

TEST(ShardedIndexTest, LocalIdSpaceIsSingleIndexLocalIdSpace) {
  Rig rig = MakeRig(229, 10);
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex sharded(*rig.corpus, shards);
    const uint32_t n = static_cast<uint32_t>(sharded.NumDocuments());
    for (uint32_t local = 0; local < n; ++local) {
      EXPECT_EQ(sharded.LocalToId(local), rig.index->LocalToId(local));
      EXPECT_EQ(sharded.LocalOf(sharded.LocalToId(local)), local);
      const size_t s = sharded.ShardOfLocal(local);
      ASSERT_LT(s, sharded.NumShards());
      EXPECT_EQ(sharded.ShardBase(s) +
                    sharded.Shard(s).LocalOf(sharded.LocalToId(local)),
                local);
    }
  }
}

class ShardedEngineEquivalenceTest : public ::testing::TestWithParam<bool> {};

TEST_P(ShardedEngineEquivalenceTest, MatchingIsBitwiseEqualToSingleIndex) {
  const bool with_pool = GetParam();
  Rig rig = MakeRig(700, 10);
  std::unique_ptr<ThreadPool> pool =
      with_pool ? std::make_unique<ThreadPool>(4) : nullptr;
  const auto queries = Workload(rig);
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex index(*rig.corpus, shards);
    ShardedSearchService engine(index, rig.engine->k(), pool.get());
    for (const KeywordQuery& q : queries) {
      const std::string label =
          "shards=" + std::to_string(shards) + " q=\"" + q.canonical() + "\"";
      ExpectBitwiseEqual(engine.TopMatches(q, 25),
                         rig.engine->TopMatches(q, 25), label);
      EXPECT_EQ(engine.MatchCount(q), rig.engine->MatchCount(q)) << label;
      EXPECT_EQ(engine.MatchIds(q), rig.engine->MatchIds(q)) << label;
      const std::vector<DocId> ids = rig.engine->MatchIds(q);
      const auto sharded_ranked = engine.RankDocs(q, ids);
      const auto single_ranked = rig.engine->RankDocs(q, ids);
      ASSERT_EQ(sharded_ranked.size(), single_ranked.size()) << label;
      for (size_t i = 0; i < sharded_ranked.size(); ++i) {
        EXPECT_EQ(sharded_ranked[i].doc, single_ranked[i].doc) << label;
        EXPECT_EQ(sharded_ranked[i].score, single_ranked[i].score) << label;
      }
    }
  }
}

TEST_P(ShardedEngineEquivalenceTest, SearchResultsAreBitwiseEqual) {
  const bool with_pool = GetParam();
  Rig rig = MakeRig(450, 5);
  std::unique_ptr<ThreadPool> pool =
      with_pool ? std::make_unique<ThreadPool>(3) : nullptr;
  const auto queries = Workload(rig);
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex index(*rig.corpus, shards);
    ShardedSearchService engine(index, rig.engine->k(), pool.get());
    for (const KeywordQuery& q : queries) {
      ExpectBitwiseEqual(engine.Search(q), rig.engine->Search(q),
                         "shards=" + std::to_string(shards));
    }
  }
}

TEST_P(ShardedEngineEquivalenceTest, AsSimpleOverShardedIsBitwiseEqual) {
  const bool with_pool = GetParam();
  Rig rig = MakeRig(520, 5);
  std::unique_ptr<ThreadPool> pool =
      with_pool ? std::make_unique<ThreadPool>(4) : nullptr;
  const auto queries = Workload(rig);
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex index(*rig.corpus, shards);
    ShardedSearchService sharded_base(index, rig.engine->k(), pool.get());

    AsSimpleConfig config;
    config.gamma = 2.0;
    AsSimpleEngine over_plain(*rig.engine, config);
    AsSimpleEngine over_sharded(sharded_base, config);

    // Same segment: suppression sees one logical corpus either way.
    EXPECT_EQ(over_sharded.segment().segment_index(),
              over_plain.segment().segment_index());
    EXPECT_EQ(over_sharded.segment().mu(), over_plain.segment().mu());

    for (const KeywordQuery& q : queries) {
      ExpectBitwiseEqual(over_sharded.Search(q), over_plain.Search(q),
                         "shards=" + std::to_string(shards) + " q=\"" +
                             q.canonical() + "\"");
    }
    // Θ_R evolved identically...
    EXPECT_EQ(over_sharded.NumActivatedDocs(), over_plain.NumActivatedDocs());
    for (DocId doc = 0; doc < 40; ++doc) {
      EXPECT_EQ(over_sharded.IsActivated(doc), over_plain.IsActivated(doc));
    }
    // ...and the serialized defense states are byte-identical.
    std::ostringstream plain_bytes, sharded_bytes;
    ASSERT_TRUE(SaveDefenseState(over_plain, plain_bytes));
    ASSERT_TRUE(SaveDefenseState(over_sharded, sharded_bytes));
    EXPECT_EQ(plain_bytes.str(), sharded_bytes.str())
        << "shards=" << shards;
  }
}

TEST_P(ShardedEngineEquivalenceTest, AsArbiOverShardedIsBitwiseEqual) {
  const bool with_pool = GetParam();
  Rig rig = MakeTopicalRig(600, 5);
  std::unique_ptr<ThreadPool> pool =
      with_pool ? std::make_unique<ThreadPool>(4) : nullptr;
  const auto queries = Workload(rig);
  for (size_t shards : kShardCounts) {
    ShardedInvertedIndex index(*rig.corpus, shards);
    ShardedSearchService sharded_base(index, rig.engine->k(), pool.get());

    AsArbiConfig config;
    config.simple.gamma = 2.0;
    AsArbiEngine over_plain(*rig.engine, config);
    AsArbiEngine over_sharded(sharded_base, config);

    for (const KeywordQuery& q : queries) {
      ExpectBitwiseEqual(over_sharded.Search(q), over_plain.Search(q),
                         "shards=" + std::to_string(shards) + " q=\"" +
                             q.canonical() + "\"");
      // Re-issue immediately: both must hit their caches with the same
      // answer (deterministic processing, Section 2.1).
      ExpectBitwiseEqual(over_sharded.Search(q), over_plain.Search(q),
                         "reissue shards=" + std::to_string(shards));
    }
    // The two engines took the same virtual/simple decisions...
    EXPECT_EQ(over_sharded.stats().virtual_answers,
              over_plain.stats().virtual_answers);
    EXPECT_EQ(over_sharded.stats().simple_answers,
              over_plain.stats().simple_answers);
    EXPECT_EQ(over_sharded.history().NumQueries(),
              over_plain.history().NumQueries());
    // ...and the full serialized state (Θ_R + history + cache) is
    // byte-identical.
    std::ostringstream plain_bytes, sharded_bytes;
    ASSERT_TRUE(SaveDefenseState(over_plain, plain_bytes));
    ASSERT_TRUE(SaveDefenseState(over_sharded, sharded_bytes));
    EXPECT_EQ(plain_bytes.str(), sharded_bytes.str())
        << "shards=" << shards;
  }
}

TEST_P(ShardedEngineEquivalenceTest, StateRoundTripsAcrossEngineKinds) {
  // A snapshot taken over the sharded engine restores into an AS-SIMPLE
  // over the single index (and vice versa): the dense local id space is
  // identical, so persisted Θ_R is portable across deployments.
  const bool with_pool = GetParam();
  Rig rig = MakeRig(380, 5);
  std::unique_ptr<ThreadPool> pool =
      with_pool ? std::make_unique<ThreadPool>(2) : nullptr;
  ShardedInvertedIndex index(*rig.corpus, 3);
  ShardedSearchService sharded_base(index, rig.engine->k(), pool.get());

  AsSimpleConfig config;
  AsSimpleEngine over_sharded(sharded_base, config);
  for (const KeywordQuery& q : Workload(rig)) over_sharded.Search(q);

  std::stringstream bytes;
  ASSERT_TRUE(SaveDefenseState(over_sharded, bytes));
  AsSimpleEngine restored(*rig.engine, config);
  ASSERT_TRUE(LoadDefenseState(restored, bytes));
  EXPECT_EQ(restored.NumActivatedDocs(), over_sharded.NumActivatedDocs());
  ExpectBitwiseEqual(restored.Search(rig.Q("sports")),
                     over_sharded.Search(rig.Q("sports")), "restored");
}

INSTANTIATE_TEST_SUITE_P(SerialAndPooled, ShardedEngineEquivalenceTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "WithThreadPool" : "Serial";
                         });

}  // namespace
}  // namespace asup
