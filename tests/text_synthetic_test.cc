#include "asup/text/synthetic_corpus.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace asup {
namespace {

SyntheticCorpusConfig SmallConfig() {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 3000;
  config.num_topics = 16;
  config.words_per_topic = 200;
  config.seed = 77;
  return config;
}

TEST(SyntheticCorpusTest, GeneratesRequestedCount) {
  SyntheticCorpusGenerator generator(SmallConfig());
  Corpus corpus = generator.Generate(500);
  EXPECT_EQ(corpus.size(), 500u);
}

TEST(SyntheticCorpusTest, IdsAreUniqueAcrossCalls) {
  SyntheticCorpusGenerator generator(SmallConfig());
  Corpus a = generator.Generate(300);
  Corpus b = generator.Generate(300);
  std::unordered_set<DocId> ids;
  for (const Document& doc : a.documents()) ids.insert(doc.id());
  for (const Document& doc : b.documents()) {
    EXPECT_TRUE(ids.insert(doc.id()).second);
  }
  EXPECT_EQ(ids.size(), 600u);
}

TEST(SyntheticCorpusTest, LengthsWithinClamp) {
  auto config = SmallConfig();
  config.min_doc_length = 10;
  config.max_doc_length = 500;
  SyntheticCorpusGenerator generator(config);
  Corpus corpus = generator.Generate(1000);
  for (const Document& doc : corpus.documents()) {
    EXPECT_GE(doc.length(), 10u);
    EXPECT_LE(doc.length(), 500u);
  }
}

TEST(SyntheticCorpusTest, SeedWordsAreInVocabulary) {
  SyntheticCorpusGenerator generator(SmallConfig());
  const auto& vocab = *generator.vocabulary();
  for (const auto& topic : SyntheticCorpusGenerator::SeedTopicWords()) {
    for (const auto& word : topic) {
      EXPECT_TRUE(vocab.Lookup(word).has_value()) << word;
    }
  }
}

TEST(SyntheticCorpusTest, SportsTopicProducesSportsDocs) {
  SyntheticCorpusGenerator generator(SmallConfig());
  Corpus corpus = generator.Generate(2000);
  const TermId sports = *generator.vocabulary()->Lookup("sports");
  const uint64_t with_sports = corpus.CountWhere(
      [sports](const Document& d) { return d.Contains(sports); });
  // Topic 0 is the most popular topic and "sports" is its head word, so a
  // nontrivial fraction of documents must contain it.
  EXPECT_GT(with_sports, corpus.size() / 50);
  EXPECT_LT(with_sports, corpus.size());
}

TEST(SyntheticCorpusTest, DeterministicForSeed) {
  SyntheticCorpusGenerator g1(SmallConfig());
  SyntheticCorpusGenerator g2(SmallConfig());
  Corpus a = g1.Generate(100);
  Corpus b = g2.Generate(100);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.documents()[i].id(), b.documents()[i].id());
    EXPECT_EQ(a.documents()[i].length(), b.documents()[i].length());
    EXPECT_EQ(a.documents()[i].terms(), b.documents()[i].terms());
  }
}

TEST(SyntheticCorpusTest, DifferentSeedsDiffer) {
  auto config1 = SmallConfig();
  auto config2 = SmallConfig();
  config2.seed = 78;
  SyntheticCorpusGenerator g1(config1);
  SyntheticCorpusGenerator g2(config2);
  Corpus a = g1.Generate(50);
  Corpus b = g2.Generate(50);
  bool any_diff = false;
  for (size_t i = 0; i < 50 && !any_diff; ++i) {
    any_diff = !(a.documents()[i].terms() == b.documents()[i].terms());
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticCorpusTest, HeavyTailedDocumentFrequencies) {
  // The most frequent word should appear in far more documents than the
  // median word — the Zipf structure the attacks depend on.
  SyntheticCorpusGenerator generator(SmallConfig());
  Corpus corpus = generator.Generate(1500);
  std::vector<uint32_t> df(generator.vocabulary()->size(), 0);
  for (const Document& doc : corpus.documents()) {
    for (const TermFreq& entry : doc.terms()) df[entry.term]++;
  }
  std::sort(df.begin(), df.end(), std::greater<uint32_t>());
  EXPECT_GT(df[0], corpus.size() / 2);  // head word: in most documents
  EXPECT_GT(df[0], 20 * std::max<uint32_t>(df[df.size() / 2], 1));
}

TEST(SyntheticCorpusTest, TopicalCooccurrence) {
  // Documents containing "sports" should contain "game" far more often
  // than random documents do — the property the correlated-query attack
  // needs. Use enough topics that topic 0 is not corpus-dominant (as in
  // the default configuration).
  auto config = SmallConfig();
  config.num_topics = 48;
  SyntheticCorpusGenerator generator(config);
  Corpus corpus = generator.Generate(3000);
  const TermId sports = *generator.vocabulary()->Lookup("sports");
  const TermId game = *generator.vocabulary()->Lookup("game");
  uint64_t sports_docs = 0;
  uint64_t sports_and_game = 0;
  uint64_t game_docs = 0;
  for (const Document& doc : corpus.documents()) {
    const bool has_sports = doc.Contains(sports);
    const bool has_game = doc.Contains(game);
    sports_docs += has_sports;
    game_docs += has_game;
    sports_and_game += has_sports && has_game;
  }
  ASSERT_GT(sports_docs, 0u);
  ASSERT_GT(game_docs, 0u);
  const double p_game_given_sports =
      static_cast<double>(sports_and_game) / static_cast<double>(sports_docs);
  const double p_game =
      static_cast<double>(game_docs) / static_cast<double>(corpus.size());
  EXPECT_GT(p_game_given_sports, 3.0 * p_game);
}

}  // namespace
}  // namespace asup
