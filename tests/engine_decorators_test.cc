// Tests for the SearchService decorators: QueryCountingService,
// TimingService and SynchronizedService — including concurrent callers,
// since the counting/timing decorators now sit in front of thread-safe
// engines inside the parallel batch subsystem.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/search_service.h"
#include "asup/engine/synchronized_service.h"
#include "asup/util/thread_pool.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

/// Minimal inner service with canned behavior and *unsynchronized* mutable
/// state — a stand-in for the deliberately single-threaded services that
/// SynchronizedService exists to protect.
class FakeService : public SearchService {
 public:
  explicit FakeService(size_t k = 5) : k_(k) {}

  SearchResult Search(const KeywordQuery& query) override {
    // Non-atomic read-modify-write: a data race unless the caller
    // serializes. ThreadSanitizer flags any unprotected concurrent use.
    ++calls_;
    SearchResult result;
    result.status = QueryStatus::kValid;
    result.docs.push_back({static_cast<DocId>(query.terms().size()), 1.0});
    return result;
  }

  size_t k() const override { return k_; }
  uint64_t calls() const { return calls_; }

 private:
  size_t k_;
  uint64_t calls_ = 0;
};

TEST(QueryCountingServiceTest, CountsAndDelegates) {
  Rig rig = MakeRig(300, 5);
  QueryCountingService counting(*rig.engine);
  EXPECT_EQ(counting.k(), rig.engine->k());
  EXPECT_EQ(counting.queries_issued(), 0u);

  const auto query = rig.Q("sports game");
  const SearchResult direct = rig.engine->Search(query);
  const SearchResult counted = counting.Search(query);
  EXPECT_EQ(counted.status, direct.status);
  EXPECT_EQ(counted.DocIds(), direct.DocIds());
  EXPECT_EQ(counting.queries_issued(), 1u);

  counting.Search(rig.Q("team"));
  counting.Search(rig.Q("team"));
  EXPECT_EQ(counting.queries_issued(), 3u);

  counting.Reset();
  EXPECT_EQ(counting.queries_issued(), 0u);
}

TEST(QueryCountingServiceTest, ConcurrentCallersLoseNoIncrements) {
  FakeService fake;
  SynchronizedService synced(fake);
  QueryCountingService counting(synced);
  Rig rig = MakeRig(200, 5);
  const auto query = rig.Q("sports");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counting.Search(query);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counting.queries_issued(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(fake.calls(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TimingServiceTest, AccumulatesTimeAndQueries) {
  Rig rig = MakeRig(300, 5);
  TimingService timing(*rig.engine);
  EXPECT_EQ(timing.k(), rig.engine->k());
  EXPECT_EQ(timing.queries(), 0u);
  EXPECT_EQ(timing.total_nanos(), 0);
  EXPECT_EQ(timing.MeanNanos(), 0.0);

  timing.Search(rig.Q("sports game"));
  timing.Search(rig.Q("team"));
  EXPECT_EQ(timing.queries(), 2u);
  EXPECT_GT(timing.total_nanos(), 0);
  EXPECT_NEAR(timing.MeanNanos(),
              static_cast<double>(timing.total_nanos()) / 2.0, 1e-9);

  timing.Reset();
  EXPECT_EQ(timing.queries(), 0u);
  EXPECT_EQ(timing.total_nanos(), 0);
}

TEST(TimingServiceTest, ConcurrentCallersAggregateWork) {
  Rig rig = MakeRig(300, 5);
  TimingService timing(*rig.engine);
  const auto query = rig.Q("sports");

  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads * kPerThread, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) timing.Search(query);
  });
  EXPECT_EQ(timing.queries(), static_cast<uint64_t>(kThreads) * kPerThread);
  // total_nanos sums per-call latencies across threads; every call took a
  // nonzero amount of time, so the sum is at least the call count.
  EXPECT_GE(timing.total_nanos(),
            static_cast<int64_t>(timing.queries()));
  EXPECT_GT(timing.MeanNanos(), 0.0);
}

TEST(SynchronizedServiceTest, DelegatesTransparently) {
  Rig rig = MakeRig(300, 5);
  SynchronizedService synced(*rig.engine);
  EXPECT_EQ(synced.k(), rig.engine->k());
  const auto query = rig.Q("sports game");
  const SearchResult direct = rig.engine->Search(query);
  const SearchResult wrapped = synced.Search(query);
  EXPECT_EQ(wrapped.status, direct.status);
  EXPECT_EQ(wrapped.DocIds(), direct.DocIds());
}

TEST(SynchronizedServiceTest, SerializesRacyInnerService) {
  // FakeService's counter is a plain uint64_t; only the wrapper's mutex
  // makes the concurrent hammering below well-defined. Run under
  // -DASUP_SANITIZE=thread to have TSan certify the serialization.
  FakeService fake;
  SynchronizedService synced(fake);
  Rig rig = MakeRig(200, 5);
  const auto query = rig.Q("sports");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) synced.Search(query);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(fake.calls(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(DecoratorStackTest, CountingOverTimingOverSynchronized) {
  // The stack used by the overhead experiments, exercised end to end.
  Rig rig = MakeRig(300, 5);
  SynchronizedService synced(*rig.engine);
  TimingService timing(synced);
  QueryCountingService counting(timing);

  for (int i = 0; i < 10; ++i) counting.Search(rig.Q("sports game"));
  EXPECT_EQ(counting.queries_issued(), 10u);
  EXPECT_EQ(timing.queries(), 10u);
  EXPECT_GT(timing.total_nanos(), 0);
  EXPECT_EQ(counting.k(), rig.engine->k());
}

}  // namespace
}  // namespace asup
