#include "asup/index/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "asup/index/inverted_index.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CorpusIoTest, RoundTripsDocumentsAndVocabulary) {
  Rig rig = MakeRig(300, 5);
  const std::string path = TempPath("roundtrip.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->size(), rig.corpus->size());
  EXPECT_EQ(loaded->vocabulary().size(), rig.corpus->vocabulary().size());
  for (size_t i = 0; i < rig.corpus->size(); ++i) {
    const Document& original = rig.corpus->documents()[i];
    const Document& copy = loaded->documents()[i];
    EXPECT_EQ(copy.id(), original.id());
    EXPECT_EQ(copy.length(), original.length());
    EXPECT_EQ(copy.terms(), original.terms());
  }
  for (TermId id = 0; id < rig.corpus->vocabulary().size(); id += 97) {
    EXPECT_EQ(loaded->vocabulary().WordOf(id),
              rig.corpus->vocabulary().WordOf(id));
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadedCorpusIndexesIdentically) {
  Rig rig = MakeRig(300, 5);
  const std::string path = TempPath("reindex.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());

  InvertedIndex reloaded_index(*loaded);
  PlainSearchEngine reloaded_engine(reloaded_index, 5);
  for (const char* w : {"sports", "game", "sports team"}) {
    const auto q1 = rig.Q(w);
    const auto q2 = KeywordQuery::Parse(loaded->vocabulary(), w);
    EXPECT_EQ(rig.engine->Search(q1).DocIds(),
              reloaded_engine.Search(q2).DocIds())
        << w;
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadCorpus(TempPath("does_not_exist.asup")).has_value());
}

TEST(CorpusIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.asup");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a corpus";
  }
  EXPECT_FALSE(LoadCorpus(path).has_value());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, RejectsTruncatedFile) {
  Rig rig = MakeRig(100, 5);
  const std::string path = TempPath("truncated.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadCorpus(path).has_value());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, EmptyCorpusRoundTrips) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddWord("lonely");
  Corpus corpus(vocab, {});
  const std::string path = TempPath("empty.asup");
  ASSERT_TRUE(SaveCorpus(corpus, path));
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->vocabulary().size(), 1u);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, SaveToUnwritablePathFails) {
  Rig rig = MakeRig(50, 5);
  EXPECT_FALSE(SaveCorpus(*rig.corpus, "/nonexistent_dir/x/y.asup"));
}

}  // namespace
}  // namespace asup
