#include "asup/index/corpus_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asup/index/inverted_index.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Byte-level builders mirroring the on-disk format, for crafting corrupt
// files the saver itself can never produce.
void AppendVar(uint32_t value, std::string& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::string CorpusFileHeader(const std::vector<std::string>& words) {
  std::string bytes = "ASUP";
  bytes += std::string("\x01\x00\x00\x00", 4);  // version 1, little-endian
  AppendVar(static_cast<uint32_t>(words.size()), bytes);
  for (const std::string& word : words) {
    AppendVar(static_cast<uint32_t>(word.size()), bytes);
    bytes += word;
  }
  return bytes;
}

std::optional<Corpus> LoadFromBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return LoadCorpus(in);
}

TEST(CorpusIoTest, RoundTripsDocumentsAndVocabulary) {
  Rig rig = MakeRig(300, 5);
  const std::string path = TempPath("roundtrip.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->size(), rig.corpus->size());
  EXPECT_EQ(loaded->vocabulary().size(), rig.corpus->vocabulary().size());
  for (size_t i = 0; i < rig.corpus->size(); ++i) {
    const Document& original = rig.corpus->documents()[i];
    const Document& copy = loaded->documents()[i];
    EXPECT_EQ(copy.id(), original.id());
    EXPECT_EQ(copy.length(), original.length());
    EXPECT_EQ(copy.terms(), original.terms());
  }
  for (TermId id = 0; id < rig.corpus->vocabulary().size(); id += 97) {
    EXPECT_EQ(loaded->vocabulary().WordOf(id),
              rig.corpus->vocabulary().WordOf(id));
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadedCorpusIndexesIdentically) {
  Rig rig = MakeRig(300, 5);
  const std::string path = TempPath("reindex.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());

  InvertedIndex reloaded_index(*loaded);
  PlainSearchEngine reloaded_engine(reloaded_index, 5);
  for (const char* w : {"sports", "game", "sports team"}) {
    const auto q1 = rig.Q(w);
    const auto q2 = KeywordQuery::Parse(loaded->vocabulary(), w);
    EXPECT_EQ(rig.engine->Search(q1).DocIds(),
              reloaded_engine.Search(q2).DocIds())
        << w;
  }
  std::remove(path.c_str());
}

TEST(CorpusIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadCorpus(TempPath("does_not_exist.asup")).has_value());
}

TEST(CorpusIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad_magic.asup");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a corpus";
  }
  EXPECT_FALSE(LoadCorpus(path).has_value());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, RejectsTruncatedFile) {
  Rig rig = MakeRig(100, 5);
  const std::string path = TempPath("truncated.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadCorpus(path).has_value());
  std::remove(path.c_str());
}

TEST(CorpusIoTest, EmptyCorpusRoundTrips) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddWord("lonely");
  Corpus corpus(vocab, {});
  const std::string path = TempPath("empty.asup");
  ASSERT_TRUE(SaveCorpus(corpus, path));
  auto loaded = LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->vocabulary().size(), 1u);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, SaveToUnwritablePathFails) {
  Rig rig = MakeRig(50, 5);
  EXPECT_FALSE(SaveCorpus(*rig.corpus, "/nonexistent_dir/x/y.asup"));
}

TEST(CorpusIoTest, StreamAndPathOverloadsProduceIdenticalBytes) {
  Rig rig = MakeRig(60, 5);
  std::ostringstream stream_out;
  ASSERT_TRUE(SaveCorpus(*rig.corpus, stream_out));
  const std::string path = TempPath("stream_vs_path.asup");
  ASSERT_TRUE(SaveCorpus(*rig.corpus, path));
  std::ifstream in(path, std::ios::binary);
  const std::string file_bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
  EXPECT_EQ(stream_out.str(), file_bytes);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, RejectsDuplicateDocumentIds) {
  // Corpus keeps an id -> document map; two documents with one id would
  // corrupt Get()/Contains(). The saver cannot produce this, so craft it.
  std::string bytes = CorpusFileHeader({"alpha", "beta"});
  AppendVar(2, bytes);  // document count
  for (int copy = 0; copy < 2; ++copy) {
    AppendVar(7, bytes);  // id — identical both times
    AppendVar(3, bytes);  // token length
    AppendVar(1, bytes);  // distinct terms
    AppendVar(0, bytes);  // delta -> term 0
    AppendVar(3, bytes);  // frequency
  }
  EXPECT_FALSE(LoadFromBytes(bytes).has_value());
}

TEST(CorpusIoTest, RejectsNonAscendingTerms) {
  // A zero delta after the first term repeats a term id, breaking the
  // sorted-unique invariant Document's binary search relies on.
  std::string bytes = CorpusFileHeader({"alpha", "beta"});
  AppendVar(1, bytes);
  AppendVar(1, bytes);  // id
  AppendVar(4, bytes);  // token length
  AppendVar(2, bytes);  // distinct terms
  AppendVar(1, bytes);  // delta -> term 1
  AppendVar(2, bytes);  // frequency
  AppendVar(0, bytes);  // delta 0 -> term 1 again
  AppendVar(2, bytes);  // frequency
  EXPECT_FALSE(LoadFromBytes(bytes).has_value());
}

TEST(CorpusIoTest, RejectsZeroFrequency) {
  std::string bytes = CorpusFileHeader({"alpha"});
  AppendVar(1, bytes);
  AppendVar(1, bytes);  // id
  AppendVar(1, bytes);  // token length
  AppendVar(1, bytes);  // distinct terms
  AppendVar(0, bytes);  // delta -> term 0
  AppendVar(0, bytes);  // frequency 0: invalid
  EXPECT_FALSE(LoadFromBytes(bytes).has_value());
}

TEST(CorpusIoTest, RejectsTermBeyondVocabulary) {
  std::string bytes = CorpusFileHeader({"alpha"});
  AppendVar(1, bytes);
  AppendVar(1, bytes);  // id
  AppendVar(1, bytes);  // token length
  AppendVar(1, bytes);  // distinct terms
  AppendVar(1, bytes);  // delta -> term 1, but |vocab| == 1
  AppendVar(1, bytes);  // frequency
  EXPECT_FALSE(LoadFromBytes(bytes).has_value());
}

TEST(CorpusIoTest, RejectsHugeClaimedDocCountWithoutPayload) {
  // A header claiming 2^28 documents followed by nothing must fail fast —
  // and must not reserve gigabytes up front on the claim alone.
  std::string bytes = CorpusFileHeader({"alpha"});
  AppendVar(1u << 28, bytes);
  EXPECT_FALSE(LoadFromBytes(bytes).has_value());
}

TEST(CorpusIoTest, RejectsDuplicateVocabularyWords) {
  std::string bytes = CorpusFileHeader({"alpha", "alpha"});
  AppendVar(0, bytes);  // document count
  EXPECT_FALSE(LoadFromBytes(bytes).has_value());
}

}  // namespace
}  // namespace asup
