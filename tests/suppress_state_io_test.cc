#include "asup/suppress/state_io.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

std::vector<KeywordQuery> WarmupQueries(const Rig& rig) {
  std::vector<KeywordQuery> queries;
  for (const char* w : {"sports", "game", "sports game", "team",
                        "sports team", "score", "league", "game team"}) {
    queries.push_back(rig.Q(w));
  }
  return queries;
}

bool SameAnswers(const SearchResult& a, const SearchResult& b) {
  if (a.status != b.status || a.docs.size() != b.docs.size()) return false;
  for (size_t i = 0; i < a.docs.size(); ++i) {
    if (a.docs[i].doc != b.docs[i].doc) return false;
  }
  return true;
}

TEST(StateIoTest, SimpleRoundTripRestoresAnswers) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  std::vector<SearchResult> answers;
  for (const auto& q : WarmupQueries(rig)) {
    answers.push_back(original.Search(q));
  }

  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));

  // A freshly restarted engine would answer differently...
  AsSimpleEngine restarted(*rig.engine, config);
  // ...until the state is restored.
  ASSERT_TRUE(LoadDefenseState(restarted, snapshot));
  EXPECT_EQ(restarted.NumActivatedDocs(), original.NumActivatedDocs());
  const auto queries = WarmupQueries(rig);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers(restarted.Search(queries[i]), answers[i])) << i;
  }
}

TEST(StateIoTest, SimpleLoadsLegacyV1Snapshot) {
  // Backward compatibility: a v1 snapshot is a v2 snapshot minus the
  // 8-byte corpus content fingerprint, under the 'ASS1' magic. Splicing a
  // v2 snapshot down to the v1 layout must still restore (content check
  // skipped, config fingerprint still enforced).
  Rig rig = MakeRig(520, 5);
  AsSimpleEngine original(*rig.engine, AsSimpleConfig{});
  std::vector<SearchResult> answers;
  for (const auto& q : WarmupQueries(rig)) {
    answers.push_back(original.Search(q));
  }
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  std::string bytes = snapshot.str();
  ASSERT_EQ(bytes.substr(0, 4), "ASS2");
  bytes[3] = '1';
  // Drop the content fingerprint: bytes [28, 36) after magic(4) +
  // corpus_size(8) + gamma(8) + key(8).
  bytes.erase(4 + 8 + 8 + 8, 8);

  std::stringstream v1(bytes);
  AsSimpleEngine restarted(*rig.engine, AsSimpleConfig{});
  ASSERT_TRUE(LoadDefenseState(restarted, v1));
  EXPECT_EQ(restarted.NumActivatedDocs(), original.NumActivatedDocs());
  const auto queries = WarmupQueries(rig);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers(restarted.Search(queries[i]), answers[i])) << i;
  }
}

TEST(StateIoTest, RestartWithoutStateChangesAnswers) {
  // The scenario persistence exists to prevent: losing Θ_R makes a
  // restarted engine answer at least one warmed query differently.
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  std::vector<SearchResult> answers;
  for (const auto& q : WarmupQueries(rig)) {
    answers.push_back(original.Search(q));
  }
  // Replaying the *same* order from scratch would reproduce everything
  // (that is what determinism means); the hazard is a client re-issuing a
  // later query first, which the restarted engine now processes with an
  // empty Θ_R. Replay in reverse order.
  AsSimpleEngine amnesiac(*rig.engine, config);
  const auto queries = WarmupQueries(rig);
  bool any_difference = false;
  for (size_t i = queries.size(); i-- > 0;) {
    if (!SameAnswers(amnesiac.Search(queries[i]), answers[i])) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(StateIoTest, SimpleRejectsConfigMismatch) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  original.Search(rig.Q("sports"));
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));

  AsSimpleConfig other;
  other.gamma = 3.0;
  AsSimpleEngine incompatible(*rig.engine, other);
  EXPECT_FALSE(LoadDefenseState(incompatible, snapshot));
  EXPECT_EQ(incompatible.NumActivatedDocs(), 0u);  // unchanged on failure
}

TEST(StateIoTest, SimpleRejectsDifferentKey) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  AsSimpleConfig rekeyed;
  rekeyed.secret_key = 0x1234;
  AsSimpleEngine incompatible(*rig.engine, rekeyed);
  EXPECT_FALSE(LoadDefenseState(incompatible, snapshot));
}

TEST(StateIoTest, SimpleRejectsGarbage) {
  Rig rig = MakeRig(300, 5);
  AsSimpleEngine engine(*rig.engine, AsSimpleConfig{});
  std::stringstream garbage("this is not a snapshot at all");
  EXPECT_FALSE(LoadDefenseState(engine, garbage));
}

TEST(StateIoTest, ArbiRoundTripRestoresAnswersAndHistory) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsArbiConfig config;
  AsArbiEngine original(*rig.engine, config);
  std::vector<KeywordQuery> queries;
  for (const char* w : {"sports game", "sports team", "sports score",
                        "sports league", "sports coach"}) {
    queries.push_back(rig.Q(w));
  }
  std::vector<SearchResult> answers;
  for (const auto& q : queries) answers.push_back(original.Search(q));
  ASSERT_GT(original.history().NumQueries(), 0u);

  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));

  AsArbiEngine restarted(*rig.engine, config);
  ASSERT_TRUE(LoadDefenseState(restarted, snapshot));
  EXPECT_EQ(restarted.history().NumQueries(),
            original.history().NumQueries());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers(restarted.Search(queries[i]), answers[i])) << i;
  }
  // The restored history keeps powering virtual query processing for new
  // covered queries.
  const uint64_t virtuals_before = restarted.stats().virtual_answers;
  restarted.Search(rig.Q("sports player"));
  restarted.Search(rig.Q("sports match"));
  EXPECT_GE(restarted.stats().virtual_answers, virtuals_before);
}

TEST(StateIoTest, ArbiRejectsSimpleSnapshot) {
  Rig rig = MakeRig(300, 5);
  AsSimpleEngine simple(*rig.engine, AsSimpleConfig{});
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(simple, snapshot));
  AsArbiEngine arbi(*rig.engine, AsArbiConfig{});
  EXPECT_FALSE(LoadDefenseState(arbi, snapshot));
}

TEST(StateIoTest, ArbiRejectsTruncatedSnapshot) {
  Rig rig = MakeTopicalRig(520, 50);
  AsArbiEngine original(*rig.engine, AsArbiConfig{});
  original.Search(rig.Q("sports game"));
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  const std::string bytes = snapshot.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  AsArbiEngine restarted(*rig.engine, AsArbiConfig{});
  EXPECT_FALSE(LoadDefenseState(restarted, truncated));
}

TEST(StateIoTest, SimpleFailedLoadLeavesWarmEngineUnchanged) {
  // "Unchanged on failure" must hold for an engine that already has state,
  // not just a fresh one: a deployment retries a corrupt snapshot without
  // losing the state it is running on.
  Rig rig = MakeRig(520, 5);
  AsSimpleEngine engine(*rig.engine, AsSimpleConfig{});
  std::vector<SearchResult> answers;
  for (const auto& q : WarmupQueries(rig)) answers.push_back(engine.Search(q));
  const size_t activated = engine.NumActivatedDocs();

  std::stringstream garbage("ASS1 but then nothing sensible follows here");
  EXPECT_FALSE(LoadDefenseState(engine, garbage));
  EXPECT_EQ(engine.NumActivatedDocs(), activated);
  const auto queries = WarmupQueries(rig);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers(engine.Search(queries[i]), answers[i])) << i;
  }
}

TEST(StateIoTest, ArbiTailCorruptionLeavesEngineFullyUnchanged) {
  // The AS-ARBI snapshot nests the AS-SIMPLE section first; a snapshot
  // whose *history/cache tail* is corrupt must not half-commit the inner
  // AS-SIMPLE state (the loader stages it before committing anything).
  Rig rig = MakeTopicalRig(520, 50);
  AsArbiEngine original(*rig.engine, AsArbiConfig{});
  original.Search(rig.Q("sports game"));
  original.Search(rig.Q("sports team"));
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  const std::string bytes = snapshot.str();
  ASSERT_GT(original.simple_engine().NumActivatedDocs(), 0u);

  // Dropping the final byte corrupts the trailing cache section only; the
  // nested AS-SIMPLE section still parses cleanly.
  std::stringstream tail_corrupt(bytes.substr(0, bytes.size() - 1));
  AsArbiEngine restarted(*rig.engine, AsArbiConfig{});
  EXPECT_FALSE(LoadDefenseState(restarted, tail_corrupt));
  EXPECT_EQ(restarted.history().NumQueries(), 0u);
  EXPECT_EQ(restarted.simple_engine().NumActivatedDocs(), 0u);
}

TEST(StateIoTest, SimpleRejectsUnknownDocumentId) {
  // Θ_R entries are universe document ids; an id outside the corpus cannot
  // be mapped to a local bitmap slot and must be rejected, not aborted on.
  Rig rig = MakeRig(300, 5);
  AsSimpleEngine original(*rig.engine, AsSimpleConfig{});
  original.Search(rig.Q("sports"));
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  std::string bytes = snapshot.str();

  // v2 layout: magic(4) + corpus_size(8) + gamma(8) + key(8) +
  // content_fingerprint(8) + count(8) + first universe doc id (8 bytes,
  // little-endian). Overwrite that id with one no universe document uses.
  ASSERT_GT(original.NumActivatedDocs(), 0u);
  const size_t id_offset = 4 + 8 + 8 + 8 + 8 + 8;
  ASSERT_GE(bytes.size(), id_offset + 8);
  for (size_t i = 0; i < 8; ++i) {
    bytes[id_offset + i] = static_cast<char>(0xff);
  }
  std::stringstream corrupt(bytes);
  AsSimpleEngine restarted(*rig.engine, AsSimpleConfig{});
  EXPECT_FALSE(LoadDefenseState(restarted, corrupt));
  EXPECT_EQ(restarted.NumActivatedDocs(), 0u);
}

}  // namespace
}  // namespace asup
