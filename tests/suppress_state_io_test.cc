#include "asup/suppress/state_io.h"

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

std::vector<KeywordQuery> WarmupQueries(const Rig& rig) {
  std::vector<KeywordQuery> queries;
  for (const char* w : {"sports", "game", "sports game", "team",
                        "sports team", "score", "league", "game team"}) {
    queries.push_back(rig.Q(w));
  }
  return queries;
}

bool SameAnswers(const SearchResult& a, const SearchResult& b) {
  if (a.status != b.status || a.docs.size() != b.docs.size()) return false;
  for (size_t i = 0; i < a.docs.size(); ++i) {
    if (a.docs[i].doc != b.docs[i].doc) return false;
  }
  return true;
}

TEST(StateIoTest, SimpleRoundTripRestoresAnswers) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  std::vector<SearchResult> answers;
  for (const auto& q : WarmupQueries(rig)) {
    answers.push_back(original.Search(q));
  }

  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));

  // A freshly restarted engine would answer differently...
  AsSimpleEngine restarted(*rig.engine, config);
  // ...until the state is restored.
  ASSERT_TRUE(LoadDefenseState(restarted, snapshot));
  EXPECT_EQ(restarted.NumActivatedDocs(), original.NumActivatedDocs());
  const auto queries = WarmupQueries(rig);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers(restarted.Search(queries[i]), answers[i])) << i;
  }
}

TEST(StateIoTest, RestartWithoutStateChangesAnswers) {
  // The scenario persistence exists to prevent: losing Θ_R makes a
  // restarted engine answer at least one warmed query differently.
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  std::vector<SearchResult> answers;
  for (const auto& q : WarmupQueries(rig)) {
    answers.push_back(original.Search(q));
  }
  // Replaying the *same* order from scratch would reproduce everything
  // (that is what determinism means); the hazard is a client re-issuing a
  // later query first, which the restarted engine now processes with an
  // empty Θ_R. Replay in reverse order.
  AsSimpleEngine amnesiac(*rig.engine, config);
  const auto queries = WarmupQueries(rig);
  bool any_difference = false;
  for (size_t i = queries.size(); i-- > 0;) {
    if (!SameAnswers(amnesiac.Search(queries[i]), answers[i])) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(StateIoTest, SimpleRejectsConfigMismatch) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  original.Search(rig.Q("sports"));
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));

  AsSimpleConfig other;
  other.gamma = 3.0;
  AsSimpleEngine incompatible(*rig.engine, other);
  EXPECT_FALSE(LoadDefenseState(incompatible, snapshot));
  EXPECT_EQ(incompatible.NumActivatedDocs(), 0u);  // unchanged on failure
}

TEST(StateIoTest, SimpleRejectsDifferentKey) {
  Rig rig = MakeRig(520, 5);
  AsSimpleConfig config;
  AsSimpleEngine original(*rig.engine, config);
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  AsSimpleConfig rekeyed;
  rekeyed.secret_key = 0x1234;
  AsSimpleEngine incompatible(*rig.engine, rekeyed);
  EXPECT_FALSE(LoadDefenseState(incompatible, snapshot));
}

TEST(StateIoTest, SimpleRejectsGarbage) {
  Rig rig = MakeRig(300, 5);
  AsSimpleEngine engine(*rig.engine, AsSimpleConfig{});
  std::stringstream garbage("this is not a snapshot at all");
  EXPECT_FALSE(LoadDefenseState(engine, garbage));
}

TEST(StateIoTest, ArbiRoundTripRestoresAnswersAndHistory) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsArbiConfig config;
  AsArbiEngine original(*rig.engine, config);
  std::vector<KeywordQuery> queries;
  for (const char* w : {"sports game", "sports team", "sports score",
                        "sports league", "sports coach"}) {
    queries.push_back(rig.Q(w));
  }
  std::vector<SearchResult> answers;
  for (const auto& q : queries) answers.push_back(original.Search(q));
  ASSERT_GT(original.history().NumQueries(), 0u);

  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));

  AsArbiEngine restarted(*rig.engine, config);
  ASSERT_TRUE(LoadDefenseState(restarted, snapshot));
  EXPECT_EQ(restarted.history().NumQueries(),
            original.history().NumQueries());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(SameAnswers(restarted.Search(queries[i]), answers[i])) << i;
  }
  // The restored history keeps powering virtual query processing for new
  // covered queries.
  const uint64_t virtuals_before = restarted.stats().virtual_answers;
  restarted.Search(rig.Q("sports player"));
  restarted.Search(rig.Q("sports match"));
  EXPECT_GE(restarted.stats().virtual_answers, virtuals_before);
}

TEST(StateIoTest, ArbiRejectsSimpleSnapshot) {
  Rig rig = MakeRig(300, 5);
  AsSimpleEngine simple(*rig.engine, AsSimpleConfig{});
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(simple, snapshot));
  AsArbiEngine arbi(*rig.engine, AsArbiConfig{});
  EXPECT_FALSE(LoadDefenseState(arbi, snapshot));
}

TEST(StateIoTest, ArbiRejectsTruncatedSnapshot) {
  Rig rig = MakeTopicalRig(520, 50);
  AsArbiEngine original(*rig.engine, AsArbiConfig{});
  original.Search(rig.Q("sports game"));
  std::stringstream snapshot;
  ASSERT_TRUE(SaveDefenseState(original, snapshot));
  const std::string bytes = snapshot.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  AsArbiEngine restarted(*rig.engine, AsArbiConfig{});
  EXPECT_FALSE(LoadDefenseState(restarted, truncated));
}

}  // namespace
}  // namespace asup
