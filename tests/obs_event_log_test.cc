// Tests for the structured event log (src/asup/obs/event_log.h): append /
// snapshot ordering, bounded retention with explicit drop accounting,
// per-thread staging, export round-trips, macro dispatch through the
// installed sinks, and the compile-out contract of the OFF build.

#include "asup/obs/event_log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace asup {
namespace {

#if ASUP_METRICS_ENABLED

obs::Event MakeEvent(uint64_t sequence, uint64_t client = 1) {
  obs::Event event;
  event.kind = obs::EventKind::kAnswerServed;
  event.client = client;
  event.query_hash = 0x1234;
  event.sequence = sequence;
  event.a = static_cast<int64_t>(sequence);
  return event;
}

class EventLogScope {
 public:
  explicit EventLogScope(obs::EventLog& log) { obs::InstallEventLog(&log); }
  ~EventLogScope() { obs::InstallEventLog(nullptr); }
};

TEST(EventLog, SnapshotReturnsAppendsInSequenceOrder) {
  obs::EventLog log(1024);
  for (uint64_t s = 10; s > 0; --s) log.Append(MakeEvent(s));
  const std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, i + 1);
  }
  EXPECT_EQ(log.total_appended(), 10u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, BoundedRetentionCountsDrops) {
  obs::MetricsRegistry::Default().Reset();
  // Tiny capacity: every shard ring holds one event. A single-threaded
  // appender drains into its one assigned shard, so exactly one event
  // survives and every other append is an accounted overwrite.
  obs::EventLog log(obs::EventLog::kShards);
  const uint64_t total = 4 * obs::EventLog::kShards;
  for (uint64_t s = 1; s <= total; ++s) log.Append(MakeEvent(s));
  log.Flush();
  EXPECT_EQ(log.total_appended(), total);
  const std::vector<obs::Event> kept = log.Snapshot();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].sequence, total);  // the newest append wins
  EXPECT_EQ(log.dropped(), total - 1);
  EXPECT_EQ(obs::MetricsRegistry::Default().CounterValues().at(
                "asup_obs_events_dropped_total"),
            total - 1);
}

TEST(EventLog, StagedAppendsBecomeVisibleOnFlush) {
  obs::EventLog log(1024);
  log.Append(MakeEvent(1));  // sits in this thread's staging buffer
  EXPECT_EQ(log.total_appended(), 1u);
  log.Flush();
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST(EventLog, ConcurrentAppendsAreLosslessUnderCapacity) {
  obs::EventLog log(1 << 16);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append(MakeEvent(static_cast<uint64_t>(t) * kPerThread + i + 1,
                             static_cast<uint64_t>(t)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.total_appended(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.Snapshot().size(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, WriteJsonlEmitsOneObjectPerEvent) {
  obs::EventLog log(16);
  obs::Event event = MakeEvent(7, /*client=*/3);
  event.kind = obs::EventKind::kAnswerHidden;
  event.b = -2;
  log.Append(event);
  std::ostringstream out;
  log.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"seq\":7,\"kind\":\"answer_hidden\",\"client\":3,"
            "\"qhash\":4660,\"a\":7,\"b\":-2}\n");
}

TEST(EventLog, BinaryExportRoundTrips) {
  obs::EventLog log(64);
  for (uint64_t s = 1; s <= 5; ++s) {
    obs::Event event = MakeEvent(s, s % 2);
    event.kind = static_cast<obs::EventKind>(s % obs::kNumEventKinds);
    event.b = -static_cast<int64_t>(s);
    log.Append(event);
  }
  std::stringstream stream;
  log.WriteBinary(stream);
  std::vector<obs::Event> decoded;
  ASSERT_TRUE(obs::EventLog::ReadBinary(stream, &decoded));
  const std::vector<obs::Event> original = log.Snapshot();
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i].kind, original[i].kind);
    EXPECT_EQ(decoded[i].client, original[i].client);
    EXPECT_EQ(decoded[i].query_hash, original[i].query_hash);
    EXPECT_EQ(decoded[i].sequence, original[i].sequence);
    EXPECT_EQ(decoded[i].a, original[i].a);
    EXPECT_EQ(decoded[i].b, original[i].b);
  }
}

TEST(EventLog, ReadBinaryRejectsGarbage) {
  std::stringstream stream("not an event log");
  std::vector<obs::Event> decoded;
  EXPECT_FALSE(obs::EventLog::ReadBinary(stream, &decoded));
}

TEST(EmitEvent, FansOutToInstalledLogWithGlobalSequence) {
  obs::EventLog log(64);
  EventLogScope scope(log);
  EXPECT_TRUE(obs::EventSinksInstalled());
  ASUP_EVENT_EMIT(kCacheHit, 5, 77, 3, 0);
  ASUP_EVENT_EMIT(kCoverFound, 5, 77, 2, 9);
  const std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kCacheHit);
  EXPECT_EQ(events[1].kind, obs::EventKind::kCoverFound);
  EXPECT_EQ(events[0].client, 5u);
  EXPECT_EQ(events[0].query_hash, 77u);
  EXPECT_EQ(events[0].a, 3);
  EXPECT_EQ(events[1].b, 9);
  // EmitEvent stamps a strictly increasing global sequence.
  EXPECT_LT(events[0].sequence, events[1].sequence);
}

TEST(EmitEvent, QueryIssuedMacroEmitsPerTermEvents) {
  obs::EventLog log(64);
  EventLogScope scope(log);
  const std::vector<uint32_t> terms = {11, 22, 33};
  ASUP_EVENT_QUERY_ISSUED(9, 1234, terms);
  const std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kQueryIssued);
  EXPECT_EQ(events[0].a, 3);  // distinct term count
  for (size_t i = 0; i < terms.size(); ++i) {
    EXPECT_EQ(events[i + 1].kind, obs::EventKind::kQueryTerm);
    EXPECT_EQ(events[i + 1].a, static_cast<int64_t>(terms[i]));
    EXPECT_EQ(events[i + 1].client, 9u);
  }
}

TEST(EmitEvent, MacrosDoNotEvaluateOperandsWithoutSinks) {
  ASSERT_EQ(obs::InstalledEventLog(), nullptr);
  ASSERT_EQ(obs::InstalledWatchtower(), nullptr);
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  ASUP_EVENT_EMIT(kCacheHit, bump(), bump(), bump(), bump());
  EXPECT_EQ(evaluations, 0);
}

TEST(EventKindName, CoversTheTaxonomy) {
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kQueryIssued),
               "query_issued");
  EXPECT_STREQ(obs::EventKindName(obs::EventKind::kSuspicionFlag),
               "suspicion_flag");
}

#else  // !ASUP_METRICS_ENABLED

// The compiled-out event macros must not evaluate their operands (the
// same contract as the disabled metric macros).
TEST(EventLogCompiledOut, MacrosDoNotEvaluateOperands) {
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  const std::vector<uint32_t> terms = {1, 2, 3};
  ASUP_EVENT_EMIT(kCacheHit, bump(), bump(), bump(), bump());
  ASUP_EVENT_QUERY_ISSUED(bump(), bump(), terms);
  EXPECT_EQ(evaluations, 0);
}

#endif  // ASUP_METRICS_ENABLED

}  // namespace
}  // namespace asup
