#include "asup/engine/query.h"

#include <memory>

#include <gtest/gtest.h>

namespace asup {
namespace {

Vocabulary MakeVocab() {
  Vocabulary vocab;
  vocab.AddWord("sigmod");
  vocab.AddWord("2012");
  vocab.AddWord("acm");
  return vocab;
}

TEST(KeywordQueryTest, CanonicalizationSortsAndLowercases) {
  Vocabulary vocab = MakeVocab();
  const auto a = KeywordQuery::FromWords(vocab, {"SIGMOD", "2012"});
  const auto b = KeywordQuery::FromWords(vocab, {"2012", "sigmod"});
  EXPECT_EQ(a.canonical(), "2012 sigmod");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(KeywordQueryTest, DuplicatesDropped) {
  Vocabulary vocab = MakeVocab();
  const auto q = KeywordQuery::FromWords(vocab, {"acm", "ACM", "acm"});
  EXPECT_EQ(q.canonical(), "acm");
  EXPECT_EQ(q.terms().size(), 1u);
}

TEST(KeywordQueryTest, UnknownWordMakesQueryUnanswerable) {
  Vocabulary vocab = MakeVocab();
  const auto q = KeywordQuery::FromWords(vocab, {"sigmod", "mars"});
  EXPECT_TRUE(q.has_unknown_word());
  EXPECT_TRUE(q.terms().empty());
  // Canonical form keeps the unknown word (two different unknown-word
  // queries must not collide in the answer cache).
  EXPECT_EQ(q.canonical(), "mars sigmod");
}

TEST(KeywordQueryTest, TermsAreSorted) {
  Vocabulary vocab = MakeVocab();
  const auto q = KeywordQuery::FromWords(vocab, {"acm", "sigmod", "2012"});
  const auto& terms = q.terms();
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LT(terms[i - 1], terms[i]);
  }
}

TEST(KeywordQueryTest, FromTermsRoundTrips) {
  Vocabulary vocab = MakeVocab();
  const auto q = KeywordQuery::FromTerms(
      vocab, {*vocab.Lookup("sigmod"), *vocab.Lookup("acm")});
  EXPECT_EQ(q.canonical(), "acm sigmod");
  EXPECT_FALSE(q.has_unknown_word());
  EXPECT_EQ(q.terms().size(), 2u);
}

TEST(KeywordQueryTest, ParseSplitsPunctuation) {
  Vocabulary vocab = MakeVocab();
  const auto q = KeywordQuery::Parse(vocab, "ACM/SIGMOD (2012)");
  EXPECT_EQ(q.canonical(), "2012 acm sigmod");
  EXPECT_EQ(q.terms().size(), 3u);
}

TEST(KeywordQueryTest, EmptyQuery) {
  Vocabulary vocab = MakeVocab();
  const auto q = KeywordQuery::FromWords(vocab, {});
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.terms().empty());
  EXPECT_FALSE(q.has_unknown_word());
}

TEST(KeywordQueryTest, DistinctQueriesDistinctHashes) {
  Vocabulary vocab = MakeVocab();
  const auto a = KeywordQuery::FromWords(vocab, {"sigmod"});
  const auto b = KeywordQuery::FromWords(vocab, {"acm"});
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace asup
