// Edge cases and abort paths spanning modules.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "asup/eval/utility.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_simple.h"
#include "asup/util/check.h"
#include "asup/util/csv.h"
#include "asup/util/stopwatch.h"
#include "asup/workload/aol_like.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

TEST(EdgeCasesTest, EmptyCorpusIndex) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddWord("word");
  Corpus corpus(vocab, {});
  InvertedIndex index(corpus);
  EXPECT_EQ(index.NumDocuments(), 0u);
  EXPECT_EQ(index.stats().num_terms, 0u);
  PlainSearchEngine engine(index, 5);
  const auto result =
      engine.Search(KeywordQuery::Parse(*vocab, "word"));
  EXPECT_EQ(result.status, QueryStatus::kUnderflow);
}

TEST(EdgeCasesTest, SingleDocumentCorpusWithDefense) {
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<Document> docs;
  docs.emplace_back(0, std::vector<TermId>{vocab->AddWord("alpha"),
                                           vocab->AddWord("beta")});
  Corpus corpus(vocab, std::move(docs));
  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 5);
  AsSimpleEngine defended(engine, AsSimpleConfig{});
  // n = 1 sits at the bottom of segment [1, 2).
  EXPECT_EQ(defended.segment().segment_index(), 0);
  const auto result =
      defended.Search(KeywordQuery::Parse(*vocab, "alpha"));
  EXPECT_LE(result.docs.size(), 1u);
}

TEST(EdgeCasesTest, EmptyQuerySearch) {
  Rig rig = MakeRig(100, 5);
  const auto q = KeywordQuery::Parse(rig.corpus->vocabulary(), "");
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(rig.engine->Search(q).status, QueryStatus::kUnderflow);
}

TEST(EdgeCasesTest, TopMatchesWithZeroLimit) {
  Rig rig = MakeRig(200, 5);
  const auto ranked = rig.engine->TopMatches(rig.Q("sports"), 0);
  EXPECT_TRUE(ranked.docs.empty());
  EXPECT_GT(ranked.total_matches, 0u);
}

TEST(EdgeCasesTest, RankDocsEmptySpan) {
  Rig rig = MakeRig(100, 5);
  EXPECT_TRUE(rig.engine->RankDocs(rig.Q("sports"), {}).empty());
}

TEST(EdgeCasesTest, MeasureUtilityEmptyLog) {
  Rig rig = MakeRig(100, 5);
  const auto points =
      MeasureUtility(*rig.engine, *rig.engine, {}, 10);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].queries, 0u);
  EXPECT_EQ(points[0].recall, 1.0);
}

TEST(EdgeCasesTest, WorkloadContainsReformulationFamilies) {
  // The reformulation mechanism must produce queries in subset/superset
  // relations (the "sigmod 2012" / "acm sigmod 2012" pattern).
  Rig rig = MakeRig(400, 5);
  AolLikeConfig config;
  config.log_size = 400;
  config.unique_queries = 200;
  AolLikeWorkload workload(*rig.corpus, config);
  size_t families = 0;
  const auto& uniques = workload.unique_queries();
  for (size_t i = 0; i < uniques.size() && families == 0; ++i) {
    for (size_t j = 0; j < uniques.size(); ++j) {
      if (i == j) continue;
      const auto& small = uniques[i].terms();
      const auto& big = uniques[j].terms();
      if (small.empty() || small.size() >= big.size()) continue;
      if (std::includes(big.begin(), big.end(), small.begin(),
                        small.end())) {
        ++families;
        break;
      }
    }
  }
  EXPECT_GT(families, 0u);
}

TEST(EdgeCasesDeathTest, CsvUnknownColumnAborts) {
  CsvTable table({"a"});
  EXPECT_DEATH(table.Column("nope"), "unknown column");
}

// The corpus id aborts come from ASUP_CHECK contracts, which
// Release-family builds compile out unless -DASUP_ENABLE_CONTRACTS=ON
// (the CI `contracts` job); only expect the death where it can happen.
#if ASUP_CONTRACTS_ENABLED
TEST(EdgeCasesDeathTest, CorpusDuplicateIdAborts) {
  auto vocab = std::make_shared<Vocabulary>();
  const TermId t = vocab->AddWord("x");
  std::vector<Document> docs;
  docs.emplace_back(7, std::vector<TermId>{t});
  docs.emplace_back(7, std::vector<TermId>{t});
  EXPECT_DEATH(Corpus(vocab, std::move(docs)), "duplicate");
}

TEST(EdgeCasesDeathTest, CorpusUnknownIdAborts) {
  auto vocab = std::make_shared<Vocabulary>();
  const TermId t = vocab->AddWord("x");
  std::vector<Document> docs;
  docs.emplace_back(1, std::vector<TermId>{t});
  Corpus corpus(vocab, std::move(docs));
  EXPECT_DEATH(corpus.Get(99), "unknown");
}
#endif  // ASUP_CONTRACTS_ENABLED

TEST(EdgeCasesTest, StopwatchMeasuresForwardTime) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  EXPECT_GT(watch.ElapsedNanos(), 0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  const int64_t first = watch.ElapsedNanos();
  EXPECT_GE(watch.ElapsedNanos(), first);
  watch.Reset();
  EXPECT_LT(watch.ElapsedNanos(), first + 1000000000);
}

}  // namespace
}  // namespace asup
