// Violation: a *Locked helper that touches guarded state but does not
// declare its precondition with ASUP_REQUIRES. The analysis flags the
// guarded access inside the helper — exactly the hole the old regex lint
// (which only checked the *name*) could not see into.

#include "asup/util/annotated_mutex.h"

namespace {

class Table {
 public:
  void Insert(int v) ASUP_EXCLUDES(mutex_) {
    asup::MutexLock lock(mutex_);
    InsertLocked(v);
  }

 private:
  // BAD: missing ASUP_REQUIRES(mutex_); the size_ access below is
  // unprotected as far as the analysis can prove.
  void InsertLocked(int v) { size_ += v; }

  asup::Mutex mutex_;
  int size_ ASUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Insert(1);
  return 0;
}
