// Violation: writing a guarded field while holding only the shared
// (reader) side of its SharedMutex. Reads under ReaderLock are legal;
// writes need the exclusive side — the discipline the suppression engines'
// epoch locks depend on (queries shared, migration exclusive).

#include "asup/util/annotated_mutex.h"

namespace {

class EpochState {
 public:
  int Read() const ASUP_EXCLUDES(mutex_) {
    asup::ReaderLock lock(mutex_);
    return epoch_;  // OK: shared side suffices for reads
  }

  void Bump() ASUP_EXCLUDES(mutex_) {
    asup::ReaderLock lock(mutex_);
    ++epoch_;  // BAD: writing under the shared side
  }

 private:
  mutable asup::SharedMutex mutex_;
  int epoch_ ASUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  EpochState s;
  s.Bump();
  return s.Read();
}
