# Negative-compilation driver for the thread-safety analysis (DESIGN.md §14).
#
# Each case is compiled twice with the configured compiler:
#   1. control: -fsyntax-only without the analysis flags — must ALWAYS
#      succeed, proving the case is valid C++ and a later failure is the
#      analysis speaking, not a syntax error.
#   2. analysis: -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror —
#      must fail for EXPECT=fail cases with a thread-safety diagnostic, and
#      must stay clean for the EXPECT=pass control case (guards the macro
#      layer itself against bitrot that would make *everything* "fail").
#
# Usage (wired up by tests/CMakeLists.txt, Clang toolchains only):
#   cmake -DCXX=<clang++> -DSRC=<case.cc> -DINC=<repo>/src
#         -DEXPECT=fail|pass -P run_case.cmake

foreach(var CXX SRC INC EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_case.cmake: missing -D${var}=...")
  endif()
endforeach()

set(BASE_ARGS -std=c++20 -fsyntax-only "-I${INC}" "${SRC}")

execute_process(
  COMMAND "${CXX}" ${BASE_ARGS}
  RESULT_VARIABLE control_result
  OUTPUT_VARIABLE control_out
  ERROR_VARIABLE control_err)
if(NOT control_result EQUAL 0)
  message(FATAL_ERROR
      "control compile of ${SRC} failed — the case is broken C++, not a "
      "thread-safety finding:\n${control_err}")
endif()

execute_process(
  COMMAND "${CXX}" -Wthread-safety -Wthread-safety-beta -Werror ${BASE_ARGS}
  RESULT_VARIABLE tsa_result
  OUTPUT_VARIABLE tsa_out
  ERROR_VARIABLE tsa_err)

if(EXPECT STREQUAL "pass")
  if(NOT tsa_result EQUAL 0)
    message(FATAL_ERROR
        "clean case ${SRC} was rejected by the analysis — the annotation "
        "macros or wrappers are broken:\n${tsa_err}")
  endif()
elseif(EXPECT STREQUAL "fail")
  if(tsa_result EQUAL 0)
    message(FATAL_ERROR
        "violation case ${SRC} compiled clean under -Wthread-safety — the "
        "analysis no longer catches this class of bug")
  endif()
  if(NOT tsa_err MATCHES "thread-safety")
    message(FATAL_ERROR
        "violation case ${SRC} failed, but not with a thread-safety "
        "diagnostic:\n${tsa_err}")
  endif()
else()
  message(FATAL_ERROR "run_case.cmake: EXPECT must be 'fail' or 'pass', "
                      "got '${EXPECT}'")
endif()
