// Violation: acquiring two mutexes against their declared
// ASUP_ACQUIRED_BEFORE order — the deadlock class DESIGN.md §13's
// epoch-before-history DAG exists to prevent. Caught only under
// -Wthread-safety-beta (ordering checks are beta), which is why the CI job
// and this harness enable it.

#include "asup/util/annotated_mutex.h"

namespace {

class Pipeline {
 public:
  void Forward() ASUP_EXCLUDES(epoch_, history_) {
    asup::MutexLock a(epoch_);
    asup::MutexLock b(history_);
  }

  void Inverted() ASUP_EXCLUDES(epoch_, history_) {
    asup::MutexLock b(history_);
    asup::MutexLock a(epoch_);  // BAD: epoch_ is declared acquired first
  }

 private:
  asup::Mutex epoch_ ASUP_ACQUIRED_BEFORE(history_);
  asup::Mutex history_;
};

}  // namespace

int main() {
  Pipeline p;
  p.Forward();
  p.Inverted();
  return 0;
}
