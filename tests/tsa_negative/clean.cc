// Positive control: exercises every annotation the violation cases abuse,
// correctly. Must compile clean under -Wthread-safety -Wthread-safety-beta
// -Werror; if this case fails, the macro layer or the wrapper types broke
// and the other cases' failures mean nothing.

#include <condition_variable>

#include "asup/util/annotated_mutex.h"

namespace {

class Annotated {
 public:
  int Get() const ASUP_EXCLUDES(mutex_) {
    asup::MutexLock lock(mutex_);
    return value_;
  }

  void Set(int v) ASUP_EXCLUDES(mutex_) {
    {
      asup::MutexLock lock(mutex_);
      SetLocked(v);
    }
    changed_.notify_all();
  }

  void WaitFor(int v) ASUP_EXCLUDES(mutex_) {
    asup::MutexLock lock(mutex_);
    while (value_ != v) lock.Wait(changed_);
  }

  int ReadShared() const ASUP_EXCLUDES(shared_mutex_) {
    asup::ReaderLock lock(shared_mutex_);
    return shared_value_;
  }

  void WriteExclusive(int v) ASUP_EXCLUDES(shared_mutex_) {
    asup::WriterLock lock(shared_mutex_);
    shared_value_ = v;
  }

  void InDeclaredOrder() ASUP_EXCLUDES(first_, second_) {
    asup::MutexLock a(first_);
    asup::MutexLock b(second_);
  }

 private:
  void SetLocked(int v) ASUP_REQUIRES(mutex_) { value_ = v; }

  mutable asup::Mutex mutex_;
  int value_ ASUP_GUARDED_BY(mutex_) = 0;
  std::condition_variable changed_;

  mutable asup::SharedMutex shared_mutex_;
  int shared_value_ ASUP_GUARDED_BY(shared_mutex_) = 0;

  asup::Mutex first_ ASUP_ACQUIRED_BEFORE(second_);
  asup::Mutex second_;
};

}  // namespace

int main() {
  Annotated a;
  a.Set(1);
  a.WaitFor(1);
  a.WriteExclusive(2);
  a.InDeclaredOrder();
  return a.Get() + a.ReadShared();
}
