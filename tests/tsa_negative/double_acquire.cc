// Violation: acquiring a non-recursive mutex the thread already holds —
// self-deadlock at runtime, compile error under the analysis.

#include "asup/util/annotated_mutex.h"

namespace {

class Store {
 public:
  void Touch() ASUP_EXCLUDES(mutex_) {
    mutex_.Lock();
    mutex_.Lock();  // BAD: already held; std::mutex self-deadlocks here
    ++value_;
    mutex_.Unlock();
    mutex_.Unlock();
  }

 private:
  asup::Mutex mutex_;
  int value_ ASUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Store s;
  s.Touch();
  return 0;
}
