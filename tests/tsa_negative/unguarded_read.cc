// Violation: reading an ASUP_GUARDED_BY field without holding its mutex.
// The analysis must reject Get() — this is the core guarantee every
// annotated field in the codebase relies on.

#include "asup/util/annotated_mutex.h"

namespace {

class Counter {
 public:
  int Get() const {
    return value_;  // BAD: mutex_ not held
  }

  void Increment() ASUP_EXCLUDES(mutex_) {
    asup::MutexLock lock(mutex_);
    ++value_;
  }

 private:
  mutable asup::Mutex mutex_;
  int value_ ASUP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get();
}
