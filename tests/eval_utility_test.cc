#include "asup/eval/utility.h"

#include <gtest/gtest.h>

#include "asup/suppress/as_arbi.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

SearchResult MakeResult(std::vector<DocId> ids) {
  SearchResult result;
  result.status = ids.empty() ? QueryStatus::kUnderflow : QueryStatus::kValid;
  for (DocId id : ids) result.docs.push_back({id, 0.0});
  return result;
}

TEST(UtilityMeterTest, IdenticalAnswersArePerfect) {
  UtilityMeter meter;
  meter.Observe(MakeResult({1, 2, 3}), MakeResult({1, 2, 3}));
  EXPECT_EQ(meter.recall(), 1.0);
  EXPECT_EQ(meter.precision(), 1.0);
}

TEST(UtilityMeterTest, DisjointAnswersAreZero) {
  UtilityMeter meter;
  meter.Observe(MakeResult({1, 2}), MakeResult({3, 4}));
  EXPECT_EQ(meter.recall(), 0.0);
  EXPECT_EQ(meter.precision(), 0.0);
}

TEST(UtilityMeterTest, FalseNegativesHitRecall) {
  UtilityMeter meter;
  meter.Observe(MakeResult({1, 2, 3, 4}), MakeResult({1, 2}));
  EXPECT_EQ(meter.recall(), 0.5);
  EXPECT_EQ(meter.precision(), 1.0);
}

TEST(UtilityMeterTest, FalsePositivesHitPrecision) {
  UtilityMeter meter;
  meter.Observe(MakeResult({1, 2}), MakeResult({1, 2, 3, 4}));
  EXPECT_EQ(meter.recall(), 1.0);
  EXPECT_EQ(meter.precision(), 0.5);
}

TEST(UtilityMeterTest, EmptyAnswersCountAsPerfect) {
  UtilityMeter meter;
  meter.Observe(MakeResult({}), MakeResult({}));
  EXPECT_EQ(meter.recall(), 1.0);
  EXPECT_EQ(meter.precision(), 1.0);
}

TEST(UtilityMeterTest, AveragesOverQueries) {
  UtilityMeter meter;
  meter.Observe(MakeResult({1, 2}), MakeResult({1, 2}));  // recall 1
  meter.Observe(MakeResult({1, 2}), MakeResult({1}));     // recall 0.5
  EXPECT_EQ(meter.count(), 2u);
  EXPECT_NEAR(meter.recall(), 0.75, 1e-12);
  EXPECT_EQ(meter.precision(), 1.0);
}

TEST(MeasureUtilityTest, PerfectAgainstItself) {
  Rig rig = MakeRig(400, 5);
  std::vector<KeywordQuery> log;
  for (const char* w : {"sports", "game", "team", "score", "league"}) {
    log.push_back(rig.Q(w));
  }
  const auto points = MeasureUtility(*rig.engine, *rig.engine, log, 2);
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.back().recall, 1.0);
  EXPECT_EQ(points.back().precision, 1.0);
  EXPECT_EQ(points.back().rank_distance, 0.0);
  EXPECT_EQ(points.back().queries, log.size());
}

TEST(MeasureUtilityTest, DefendedEngineUtilityInRange) {
  Rig rig = MakeRig(700, 5);
  PlainSearchEngine reference(*rig.index, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  std::vector<KeywordQuery> log;
  for (const char* w : {"sports", "game", "team", "sports game", "score",
                        "league", "coach", "win", "season", "player"}) {
    log.push_back(rig.Q(w));
  }
  const auto points = MeasureUtility(reference, defended, log, 5);
  ASSERT_FALSE(points.empty());
  const auto& final = points.back();
  EXPECT_GT(final.recall, 0.2);
  EXPECT_LE(final.recall, 1.0);
  EXPECT_GT(final.precision, 0.2);
  EXPECT_LE(final.precision, 1.0);
  EXPECT_GE(final.rank_distance, 0.0);
  EXPECT_LE(final.rank_distance, 1.0);
}

TEST(MeasureUtilityTest, ReportCadence) {
  Rig rig = MakeRig(300, 5);
  std::vector<KeywordQuery> log(7, rig.Q("sports"));
  const auto points = MeasureUtility(*rig.engine, *rig.engine, log, 3);
  // Points at 3, 6, and final 7.
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].queries, 3u);
  EXPECT_EQ(points[1].queries, 6u);
  EXPECT_EQ(points[2].queries, 7u);
}

}  // namespace
}  // namespace asup
