#include "asup/util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(CsvTableTest, HeaderOnly) {
  CsvTable table({"a", "b"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_EQ(out.str(), "a,b\n");
}

TEST(CsvTableTest, RowsRoundTrip) {
  CsvTable table({"x", "y"});
  table.AddRow({1.0, 2.5});
  table.AddRow({3.0, -4.0});
  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.NumColumns(), 2u);
  EXPECT_EQ(table.At(0, 1), 2.5);
  EXPECT_EQ(table.At(1, 0), 3.0);
}

TEST(CsvTableTest, ColumnByName) {
  CsvTable table({"queries", "estimate"});
  table.AddRow({100, 5000});
  table.AddRow({200, 5100});
  const std::vector<double> estimates = table.Column("estimate");
  ASSERT_EQ(estimates.size(), 2u);
  EXPECT_EQ(estimates[0], 5000);
  EXPECT_EQ(estimates[1], 5100);
}

TEST(CsvTableTest, PrintFormat) {
  CsvTable table({"a", "b"});
  table.AddRow({1.0, 0.5});
  std::ostringstream out;
  table.Print(out);
  EXPECT_EQ(out.str(), "a,b\n1,0.5\n");
}

TEST(FormatCellTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatCell(1.0), "1");
  EXPECT_EQ(FormatCell(0.25), "0.25");
  EXPECT_EQ(FormatCell(123456), "123456");
}

TEST(FormatCellTest, LargeValuesUseCompactForm) {
  EXPECT_EQ(FormatCell(1e12), "1e+12");
}

}  // namespace
}  // namespace asup
