#include <gtest/gtest.h>

#include "asup/attack/correlation_adv.h"
#include "asup/text/vocabulary.h"

namespace asup {
namespace {

Vocabulary MakeVocab() {
  Vocabulary vocab;
  vocab.AddWord("sports");
  vocab.AddWord("finance");
  vocab.AddWord("weather");
  return vocab;
}

SearchResult Answer(std::initializer_list<DocId> ids) {
  SearchResult result;
  for (DocId id : ids) result.docs.push_back(ScoredDoc{id, 1.0});
  return result;
}

TEST(AdvantageReportTest, RatesAndAdvantage) {
  AdvantageReport report;
  report.Record(true, true);    // tp
  report.Record(true, true);    // tp
  report.Record(false, true);   // fn
  report.Record(false, false);  // tn
  report.Record(true, false);   // fp
  EXPECT_EQ(report.total(), 5u);
  EXPECT_DOUBLE_EQ(report.TruePositiveRate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.TrueNegativeRate(), 0.5);
  EXPECT_DOUBLE_EQ(report.Advantage(), (2.0 / 3.0 + 0.5) / 2.0 - 0.5);
}

TEST(AdvantageReportTest, PerfectClassifierScoresHalf) {
  AdvantageReport report;
  report.Record(true, true);
  report.Record(false, false);
  EXPECT_DOUBLE_EQ(report.Advantage(), 0.5);
}

TEST(AdvantageReportTest, SingleClassGameIsVacuous) {
  AdvantageReport only_negatives;
  only_negatives.Record(true, false);
  only_negatives.Record(false, false);
  EXPECT_EQ(only_negatives.Advantage(), 0.0);

  AdvantageReport only_positives;
  only_positives.Record(true, true);
  EXPECT_EQ(only_positives.Advantage(), 0.0);
}

TEST(AdvantageReportTest, ConstantClassifierHasNoAdvantage) {
  AdvantageReport report;
  report.Record(true, true);
  report.Record(true, true);
  report.Record(true, false);  // always predicts "virtual"
  EXPECT_DOUBLE_EQ(report.Advantage(), 0.0);  // TPR 1, TNR 0
}

TEST(CorrelationAdversaryTest, FirstContactAnswerIsNotVirtual) {
  const Vocabulary vocab = MakeVocab();
  CorrelationAdversary adversary;
  const KeywordQuery query = KeywordQuery::Parse(vocab, "sports");
  EXPECT_FALSE(adversary.ObserveAndClassify(query, Answer({1, 2, 3})));
  const CorrelationFeatures& features = adversary.last_features();
  EXPECT_EQ(features.answer_size, 3u);
  EXPECT_EQ(features.novel_docs, 3u);
  EXPECT_DOUBLE_EQ(features.novel_fraction, 1.0);
  EXPECT_EQ(features.repeat_terms, 0u);
  EXPECT_EQ(features.query_repeats, 0u);
  EXPECT_EQ(adversary.disclosed_docs(), 3u);
  EXPECT_EQ(adversary.observations(), 1u);
}

TEST(CorrelationAdversaryTest, RepeatedAllDisclosedAnswerIsVirtual) {
  const Vocabulary vocab = MakeVocab();
  CorrelationAdversary adversary;
  const KeywordQuery query = KeywordQuery::Parse(vocab, "sports");
  EXPECT_FALSE(adversary.ObserveAndClassify(query, Answer({1, 2, 3})));
  EXPECT_TRUE(adversary.ObserveAndClassify(query, Answer({1, 2, 3})));
  const CorrelationFeatures& features = adversary.last_features();
  EXPECT_EQ(features.novel_docs, 0u);
  EXPECT_EQ(features.repeat_terms, 1u);
  EXPECT_EQ(features.query_repeats, 1u);
}

TEST(CorrelationAdversaryTest, NovelDocumentBreaksTheVerdict) {
  const Vocabulary vocab = MakeVocab();
  CorrelationAdversary adversary;
  const KeywordQuery query = KeywordQuery::Parse(vocab, "sports");
  adversary.ObserveAndClassify(query, Answer({1, 2, 3}));
  // One never-disclosed document in the answer: cannot be a pure history
  // cover under the default max_novel_fraction = 0.
  EXPECT_FALSE(adversary.ObserveAndClassify(query, Answer({1, 2, 9})));
  EXPECT_DOUBLE_EQ(adversary.last_features().novel_fraction, 1.0 / 3.0);
  // The slack option admits it.
  CorrelationAdversaryOptions lax;
  lax.max_novel_fraction = 0.5;
  CorrelationAdversary lax_adversary(lax);
  const KeywordQuery q2 = KeywordQuery::Parse(vocab, "sports");
  lax_adversary.ObserveAndClassify(q2, Answer({1, 2, 3}));
  EXPECT_TRUE(lax_adversary.ObserveAndClassify(q2, Answer({1, 2, 9})));
}

TEST(CorrelationAdversaryTest, RepeatTermRequirementGatesFreshTerms) {
  const Vocabulary vocab = MakeVocab();
  CorrelationAdversary adversary;
  adversary.ObserveAndClassify(KeywordQuery::Parse(vocab, "sports"),
                               Answer({1, 2}));
  // All-disclosed answer but a first-contact term: virtual processing
  // cannot trigger without history overlap, so default options say fresh.
  EXPECT_FALSE(adversary.ObserveAndClassify(
      KeywordQuery::Parse(vocab, "finance"), Answer({1, 2})));

  CorrelationAdversaryOptions no_gate;
  no_gate.require_repeat_term = false;
  CorrelationAdversary ungated(no_gate);
  ungated.ObserveAndClassify(KeywordQuery::Parse(vocab, "sports"),
                             Answer({1, 2}));
  EXPECT_TRUE(ungated.ObserveAndClassify(KeywordQuery::Parse(vocab, "finance"),
                                         Answer({1, 2})));
}

TEST(CorrelationAdversaryTest, EmptyAnswerIsNeverVirtual) {
  const Vocabulary vocab = MakeVocab();
  CorrelationAdversary adversary;
  const KeywordQuery query = KeywordQuery::Parse(vocab, "weather");
  adversary.ObserveAndClassify(query, Answer({7}));
  EXPECT_FALSE(adversary.ObserveAndClassify(query, Answer({})));
  EXPECT_EQ(adversary.last_features().answer_size, 0u);
  EXPECT_DOUBLE_EQ(adversary.last_features().novel_fraction, 0.0);
}

TEST(CorrelationAdversaryTest, ResetClearsHistory) {
  const Vocabulary vocab = MakeVocab();
  CorrelationAdversary adversary;
  const KeywordQuery query = KeywordQuery::Parse(vocab, "sports");
  adversary.ObserveAndClassify(query, Answer({1, 2, 3}));
  EXPECT_TRUE(adversary.ObserveAndClassify(query, Answer({1, 2, 3})));
  adversary.Reset();
  EXPECT_EQ(adversary.disclosed_docs(), 0u);
  EXPECT_EQ(adversary.observations(), 0u);
  // Post-reset, the same observation is first contact again.
  EXPECT_FALSE(adversary.ObserveAndClassify(query, Answer({1, 2, 3})));
}

}  // namespace
}  // namespace asup
