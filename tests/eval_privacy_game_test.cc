#include "asup/eval/privacy_game.h"

#include <memory>

#include <gtest/gtest.h>

#include "asup/eval/experiment.h"

namespace asup {
namespace {

// The suppression transient requires a corpus large relative to the query
// budget (see DESIGN.md): 17000 documents sit near the bottom of the
// [16384, 32768) segment (μ ≈ 1.04), so AS-SIMPLE pushes estimates toward
// the segment top ~32768 while the truth is 17000.
class PrivacyGameTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentEnv::Options options;
    options.universe_size = 17000;
    options.held_out_size = 3000;
    options.seed = 2012;
    env_ = new ExperimentEnv(options);
    index_ = new InvertedIndex(env_->universe());
    plain_ = new PlainSearchEngine(*index_, 5);
  }

  static void TearDownTestSuite() {
    delete plain_;
    delete index_;
    delete env_;
    plain_ = nullptr;
    index_ = nullptr;
    env_ = nullptr;
  }

  static ExperimentEnv* env_;
  static InvertedIndex* index_;
  static PlainSearchEngine* plain_;
};

ExperimentEnv* PrivacyGameTest::env_ = nullptr;
InvertedIndex* PrivacyGameTest::index_ = nullptr;
PlainSearchEngine* PrivacyGameTest::plain_ = nullptr;

constexpr double kTruth = 17000.0;

PrivacyGameConfig GameConfig() {
  PrivacyGameConfig config;
  config.epsilon = 0.5 * kTruth;
  config.query_budget = 3000;
  config.trials = 6;
  return config;
}

TEST_F(PrivacyGameTest, AdversaryWinsAgainstUndefendedEngine) {
  const auto result = PlayPrivacyGame(
      [&] { return std::make_unique<PlainSearchEngine>(*index_, 5); },
      env_->pool(), AggregateQuery::Count(), FetchFrom(env_->universe()),
      kTruth, GameConfig());
  EXPECT_GE(result.win_rate, 0.75);
  EXPECT_NEAR(result.estimates.Mean(), kTruth, 0.25 * kTruth);
}

TEST_F(PrivacyGameTest, AsSimpleSuppressesTheGame) {
  AsSimpleConfig config;
  config.gamma = 2.0;
  const auto result = PlayPrivacyGame(
      [&]() -> std::unique_ptr<SearchService> {
        // Fresh defense state per play, shared (immutable) base engine.
        return std::make_unique<AsSimpleEngine>(*plain_, config);
      },
      env_->pool(), AggregateQuery::Count(), FetchFrom(env_->universe()),
      kTruth, GameConfig());
  // The defended estimate concentrates near the segment top (~32768), far
  // outside the adversary's ±ε/2 interval around the truth.
  EXPECT_LE(result.win_rate, 0.25);
  EXPECT_GT(result.estimates.Mean(), 1.25 * kTruth);
}

TEST_F(PrivacyGameTest, ResultRecordsTruth) {
  PrivacyGameConfig config;
  config.epsilon = 100.0;
  config.query_budget = 500;
  config.trials = 2;
  const auto result = PlayPrivacyGame(
      [&] { return std::make_unique<PlainSearchEngine>(*index_, 5); },
      env_->pool(), AggregateQuery::Count(), FetchFrom(env_->universe()),
      kTruth, config);
  EXPECT_EQ(result.true_value, kTruth);
  EXPECT_EQ(result.estimates.count(), 2u);
}

TEST(ExperimentEnvTest, BuildsNestedCorporaAndPool) {
  ExperimentEnv::Options options;
  options.universe_size = 500;
  options.held_out_size = 200;
  options.corpus_config.vocabulary_size = 2000;
  options.corpus_config.num_topics = 8;
  options.corpus_config.words_per_topic = 100;
  ExperimentEnv env(options);
  EXPECT_EQ(env.universe().size(), 500u);
  EXPECT_EQ(env.held_out().size(), 200u);
  EXPECT_GT(env.pool().size(), 500u);

  Corpus small = env.SampleCorpus(100, 1);
  EXPECT_EQ(small.size(), 100u);
  for (const Document& doc : small.documents()) {
    EXPECT_TRUE(env.universe().Contains(doc.id()));
  }
}

TEST(ExperimentEnvTest, EngineStackWiring) {
  ExperimentEnv::Options options;
  options.universe_size = 300;
  options.held_out_size = 100;
  options.corpus_config.vocabulary_size = 1500;
  options.corpus_config.num_topics = 8;
  options.corpus_config.words_per_topic = 100;
  ExperimentEnv env(options);

  auto plain = EngineStack::Plain(env.universe(), 5);
  EXPECT_EQ(&plain.service(), &plain.plain());

  AsSimpleConfig simple;
  auto with_simple = EngineStack::WithSimple(env.universe(), 5, simple);
  EXPECT_EQ(&with_simple.service(),
            static_cast<SearchService*>(with_simple.simple()));

  AsArbiConfig arbi;
  auto with_arbi = EngineStack::WithArbi(env.universe(), 5, arbi);
  EXPECT_EQ(&with_arbi.service(),
            static_cast<SearchService*>(with_arbi.arbi()));

  const auto q = KeywordQuery::Parse(env.vocabulary(), "sports");
  EXPECT_FALSE(plain.service().Search(q).docs.empty());
  EXPECT_LE(with_arbi.service().Search(q).docs.size(), 5u);
}

TEST(TrajectoriesToCsvTest, AlignsSeries) {
  std::vector<std::vector<EstimationPoint>> trajectories{
      {{100, 1.0}, {200, 2.0}, {300, 3.0}},
      {{100, 10.0}, {200, 20.0}},
  };
  const CsvTable table = TrajectoriesToCsv({"a", "b"}, trajectories);
  EXPECT_EQ(table.NumColumns(), 3u);
  EXPECT_EQ(table.NumRows(), 2u);  // truncated to the shortest
  EXPECT_EQ(table.At(1, 0), 200.0);
  EXPECT_EQ(table.At(1, 1), 2.0);
  EXPECT_EQ(table.At(1, 2), 20.0);
}

}  // namespace
}  // namespace asup
