// Acceptance tests for the watchtower detection experiment
// (src/asup/eval/detection_experiment.h): the dynamic estimator must be
// detectable against benign epoch-stream traffic (advantage > 0.3 under a
// defense) while the benign-only stream stays below 5% false positives.
// In the ASUP_METRICS=OFF build the run must report itself disabled.

#include "asup/eval/detection_experiment.h"

#include <gtest/gtest.h>

namespace asup {
namespace {

#if ASUP_METRICS_ENABLED

TEST(DetectionExperiment, BenignOnlyStreamStaysBelowFprBudget) {
  const DetectionConfig config;
  for (DefenseKind defense :
       {DefenseKind::kNone, DefenseKind::kSimple, DefenseKind::kArbi}) {
    const DetectionReport report =
        RunDetectionExperiment(config, defense, AttackerKind::kNone);
    ASSERT_TRUE(report.enabled);
    EXPECT_EQ(report.attacker_queries, 0u);
    EXPECT_GT(report.benign_queries, 0u);
    EXPECT_LE(report.fpr, 0.05) << DefenseKindName(defense);
    EXPECT_EQ(report.benign_flagged, 0u) << DefenseKindName(defense);
  }
}

TEST(DetectionExperiment, DynamicEstimatorIsDetectedUnderDefense) {
  const DetectionConfig config;
  const DetectionReport report = RunDetectionExperiment(
      config, DefenseKind::kSimple, AttackerKind::kDynamic);
  ASSERT_TRUE(report.enabled);
  EXPECT_GT(report.advantage, 0.3);
  EXPECT_DOUBLE_EQ(report.tpr, 1.0);
  EXPECT_LE(report.fpr, 0.05);

  // The attacker row exists, is flagged, and separates from the benign
  // population on the pool-replay features, not just on volume.
  ASSERT_FALSE(report.clients.empty());
  const DetectionClientRow& attacker = report.clients.back();
  ASSERT_TRUE(attacker.is_attacker);
  EXPECT_EQ(attacker.client, kDetectionAttackerClient);
  EXPECT_TRUE(attacker.flagged);
  for (const DetectionClientRow& row : report.clients) {
    if (row.is_attacker) continue;
    EXPECT_FALSE(row.flagged);
    // Bona fide clients keep discovering vocabulary; the maintained pool
    // does not.
    EXPECT_GT(row.distinct_term_growth, attacker.distinct_term_growth);
  }
  EXPECT_GT(report.events_ingested, report.benign_queries);
  EXPECT_GT(report.queries_scored, 0u);
}

TEST(DetectionExperiment, RunsAreDeterministicInTheConfig) {
  DetectionConfig config;
  // Shrink the run: determinism only needs two identical replays.
  config.stream.num_epochs = 1;
  config.attacker_budget_per_epoch = 500;
  const DetectionReport a = RunDetectionExperiment(
      config, DefenseKind::kSimple, AttackerKind::kDynamic);
  const DetectionReport b = RunDetectionExperiment(
      config, DefenseKind::kSimple, AttackerKind::kDynamic);
  EXPECT_EQ(a.benign_queries, b.benign_queries);
  EXPECT_EQ(a.attacker_queries, b.attacker_queries);
  EXPECT_EQ(a.events_ingested, b.events_ingested);
  EXPECT_DOUBLE_EQ(a.advantage, b.advantage);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (size_t i = 0; i < a.clients.size(); ++i) {
    EXPECT_EQ(a.clients[i].client, b.clients[i].client);
    EXPECT_EQ(a.clients[i].flagged, b.clients[i].flagged);
    EXPECT_DOUBLE_EQ(a.clients[i].smoothed_score,
                     b.clients[i].smoothed_score);
  }
}

TEST(DetectionExperiment, SummaryCsvHasOneRowPerRun) {
  DetectionConfig config;
  config.stream.num_epochs = 1;
  config.attacker_budget_per_epoch = 200;
  std::vector<DetectionReport> runs;
  runs.push_back(
      RunDetectionExperiment(config, DefenseKind::kNone, AttackerKind::kNone));
  const CsvTable summary = DetectionSummaryCsv(runs);
  EXPECT_EQ(summary.NumRows(), 1u);
  EXPECT_EQ(summary.columns().front(), "defense");
  const CsvTable clients = DetectionClientsCsv(runs[0]);
  EXPECT_EQ(clients.NumRows(), runs[0].clients.size());
}

#else  // !ASUP_METRICS_ENABLED

TEST(DetectionExperiment, ReportsDisabledWhenMetricsCompiledOut) {
  const DetectionConfig config;
  const DetectionReport report = RunDetectionExperiment(
      config, DefenseKind::kSimple, AttackerKind::kDynamic);
  EXPECT_FALSE(report.enabled);
  EXPECT_TRUE(report.clients.empty());
  EXPECT_EQ(report.benign_queries, 0u);
  // The CSV shells still work so OFF-build tooling does not branch.
  EXPECT_EQ(DetectionClientsCsv(report).NumRows(), 0u);
}

#endif  // ASUP_METRICS_ENABLED

}  // namespace
}  // namespace asup
