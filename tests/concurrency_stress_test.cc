// The deterministic concurrency harness of the parallel batch subsystem:
// identical workloads are executed serially and concurrently and the
// answers compared bitwise. Run these under ThreadSanitizer
// (-DASUP_SANITIZE=thread) to turn the interleavings the harness provokes
// into detected races rather than silent corruption.

#include <algorithm>
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/parallel_service.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/synchronized_service.h"
#include "asup/index/corpus_manager.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/text/corpus_delta.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/workload/aol_like.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

std::vector<KeywordQuery> AolLog(const Rig& rig, size_t size) {
  AolLikeConfig config;
  config.log_size = size;
  config.unique_queries = size / 3;
  AolLikeWorkload workload(*rig.corpus, config);
  return workload.log();
}

void ExpectBitwiseEqual(const SearchResult& a, const SearchResult& b,
                        size_t at) {
  ASSERT_EQ(a.status, b.status) << "query " << at;
  ASSERT_EQ(a.docs.size(), b.docs.size()) << "query " << at;
  for (size_t d = 0; d < a.docs.size(); ++d) {
    ASSERT_EQ(a.docs[d].doc, b.docs[d].doc) << "query " << at;
    ASSERT_EQ(a.docs[d].score, b.docs[d].score) << "query " << at;
  }
}

TEST(ConcurrencyStressTest, PlainEngineSerialVsConcurrentEquivalence) {
  // The undefended engine is stateless, so free-running concurrency must
  // already be bitwise equivalent to a serial loop.
  Rig rig = MakeRig(800, 5);
  const auto log = AolLog(rig, 600);

  std::vector<SearchResult> serial;
  serial.reserve(log.size());
  for (const auto& query : log) serial.push_back(rig.engine->Search(query));

  ThreadPool pool(8);
  const auto concurrent =
      BatchExecutor(pool).ExecuteConcurrent(*rig.engine, log);
  ASSERT_EQ(concurrent.size(), serial.size());
  for (size_t i = 0; i < log.size(); ++i) {
    ExpectBitwiseEqual(concurrent[i], serial[i], i);
  }
}

TEST(ConcurrencyStressTest, DefendedSerialVsDeterministicParallelEquivalence) {
  // The headline equivalence: a stateful AS-ARBI engine executed through
  // the deterministic parallel batch produces bitwise-identical answers —
  // and identical suppression state — to a serial engine over an identical
  // corpus, no matter how the prefetch phase interleaves.
  Rig serial_rig = MakeTopicalRig(2000, 5, /*seed=*/17);
  Rig batch_rig = MakeTopicalRig(2000, 5, /*seed=*/17);
  AsArbiConfig config;
  AsArbiEngine serial_engine(*serial_rig.engine, config);
  AsArbiEngine batch_engine(*batch_rig.engine, config);
  const auto log = AolLog(serial_rig, 900);

  std::vector<SearchResult> serial;
  serial.reserve(log.size());
  for (const auto& query : log) serial.push_back(serial_engine.Search(query));

  ThreadPool pool(8);
  const auto batched =
      BatchExecutor(pool).ExecuteDeterministic(batch_engine, log);

  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < log.size(); ++i) {
    ExpectBitwiseEqual(batched[i], serial[i], i);
  }
  EXPECT_EQ(batch_engine.history().NumQueries(),
            serial_engine.history().NumQueries());
  EXPECT_EQ(batch_engine.simple_engine().NumActivatedDocs(),
            serial_engine.simple_engine().NumActivatedDocs());
  EXPECT_EQ(batch_engine.stats().virtual_answers,
            serial_engine.stats().virtual_answers);
}

TEST(ConcurrencyStressTest, SameQuerySameAnswerUnderFreeRunningThreads) {
  // Section 2.1's determinism guarantee under concurrency: every
  // observation of a query — from any thread, at any interleaving — must
  // equal every other observation of that query.
  Rig rig = MakeRig(800, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});

  const auto log = AolLog(rig, 60);
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;

  std::vector<std::map<std::string, std::vector<DocId>>> seen(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> intra_thread_mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Thread-dependent order, so claims and cache hits interleave.
        const auto& query = log[(round * (t + 3) + t) % log.size()];
        const std::vector<DocId> docs = defended.Search(query).DocIds();
        auto [it, inserted] = seen[t].try_emplace(query.canonical(), docs);
        if (!inserted && it->second != docs) {
          intra_thread_mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(intra_thread_mismatches.load(), 0);

  // Cross-thread and cross-time: every observation equals a serial
  // re-issue after the storm (which is a cache hit by construction).
  for (const auto& per_thread : seen) {
    for (const auto& [canonical, docs] : per_thread) {
      for (const auto& query : log) {
        if (query.canonical() != canonical) continue;
        EXPECT_EQ(defended.Search(query).DocIds(), docs)
            << "query '" << canonical << "'";
        break;
      }
    }
  }
}

TEST(ConcurrencyStressTest, InvariantsHoldUnderFreeRunningThreads) {
  // Regardless of interleaving: |answer| <= k, every answered document
  // matches the query, and underflow <=> empty answer.
  Rig rig = MakeRig(700, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  const auto log = AolLog(rig, 80);

  std::atomic<int> violations{0};
  ThreadPool pool(8);
  pool.ParallelFor(log.size() * 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const auto& query = log[i % log.size()];
      const SearchResult result = defended.Search(query);
      if (result.docs.size() > defended.k()) violations.fetch_add(1);
      if (result.docs.empty() !=
          (result.status == QueryStatus::kUnderflow)) {
        violations.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(violations.load(), 0);

  // Subset-of-match-set, verified serially against the undefended engine.
  for (const auto& query : log) {
    std::vector<DocId> matches = rig.engine->MatchIds(query);
    std::sort(matches.begin(), matches.end());
    for (DocId doc : defended.Search(query).DocIds()) {
      EXPECT_TRUE(std::binary_search(matches.begin(), matches.end(), doc))
          << "non-matching doc in answer of '" << query.canonical() << "'";
    }
  }
}

TEST(ConcurrencyStressTest, ConcurrentBatchesThroughParallelService) {
  // Whole batches issued from several client threads at once, against one
  // shared defended engine wrapped in ParallelSearchService.
  Rig rig = MakeRig(600, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  ThreadPool pool(4);
  ParallelSearchService service(defended, pool);
  const auto log = AolLog(rig, 120);

  std::vector<std::thread> clients;
  std::atomic<int> violations{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      const auto results = service.SearchBatch(log);
      if (results.size() != log.size()) violations.fetch_add(1);
      for (const auto& result : results) {
        if (result.docs.size() > service.k()) violations.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(violations.load(), 0);

  // All duplicate issues of each query collapsed to one cached answer.
  for (const auto& query : log) {
    const auto a = defended.Search(query).DocIds();
    const auto b = defended.Search(query).DocIds();
    EXPECT_EQ(a, b);
  }
}

TEST(ConcurrencyStressTest, AnswerCacheSurvivesEpochMigrationStorm) {
  // The lock-order edge the static analysis pins down with
  // ASUP_ACQUIRED_BEFORE (epoch before history, DESIGN.md §13), provoked
  // dynamically: searcher threads hold the epoch lock shared and dip into
  // the history lock for cover checks and recording, while a mutator
  // thread publishes new corpus epochs. Each publish makes the next
  // Search() migrate lazily — taking the epoch lock exclusive and then the
  // history lock for compaction — mid-storm. Duplicate queries keep the
  // AnswerCache claim/publish protocol hot across the epoch flips. Under
  // ThreadSanitizer (-DASUP_SANITIZE=thread) any ordering or publication
  // bug the annotations claim to rule out becomes a reported race or
  // deadlock here.
  SyntheticCorpusConfig gen_config;
  gen_config.vocabulary_size = 2000;
  gen_config.num_topics = 12;
  gen_config.words_per_topic = 150;
  gen_config.seed = 23;
  SyntheticCorpusGenerator generator(gen_config);
  CorpusManager manager(generator.Generate(400));
  constexpr size_t kTopK = 5;
  PlainSearchEngine base(manager, kTopK);
  AsArbiEngine defended(base, AsArbiConfig{});

  AolLikeConfig log_config;
  log_config.log_size = 90;
  log_config.unique_queries = 30;  // duplicates exercise the cache
  const auto log = [&] {
    const auto snapshot = manager.Current();
    return AolLikeWorkload(snapshot->corpus(), log_config).log();
  }();

  constexpr int kSearchers = 6;
  constexpr int kRounds = 60;
  constexpr int kEpochs = 4;
  std::atomic<int> violations{0};
  std::atomic<bool> mutating{true};

  std::vector<std::thread> searchers;
  for (int t = 0; t < kSearchers; ++t) {
    searchers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto& query = log[(round * (t + 5) + t) % log.size()];
        const SearchResult result = defended.Search(query);
        if (result.docs.size() > kTopK) violations.fetch_add(1);
      }
    });
  }
  std::thread mutator([&] {
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      CorpusDelta delta;
      const Corpus fresh = generator.Generate(60);
      delta.add.assign(fresh.documents().begin(), fresh.documents().end());
      manager.Apply(delta);
      std::this_thread::yield();
    }
    mutating.store(false);
  });
  for (auto& searcher : searchers) searcher.join();
  mutator.join();

  EXPECT_EQ(violations.load(), 0);

  // Quiesced: converge on the final epoch, then every re-issue must be a
  // deterministic (cached) answer at that epoch.
  defended.MigrateToCurrentEpoch();
  EXPECT_EQ(defended.StateEpoch(), manager.CurrentEpoch());
  EXPECT_GE(defended.stats().epoch_migrations, 1u);
  for (const auto& query : log) {
    const auto first = defended.Search(query).DocIds();
    EXPECT_EQ(defended.Search(query).DocIds(), first)
        << "query '" << query.canonical() << "'";
  }
}

TEST(ConcurrencyStressTest, SynchronizedWrapperStillSerializesEverything) {
  // The coarse wrapper remains the fallback for services without internal
  // synchronization; hammer it to keep it honest.
  Rig rig = MakeRig(500, 5);
  AsSimpleEngine defended(*rig.engine, AsSimpleConfig{});
  SynchronizedService synced(defended);

  std::vector<std::thread> threads;
  std::atomic<int> violations{0};
  const auto log = AolLog(rig, 40);
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 30; ++round) {
        const auto& query = log[(t * 7 + round) % log.size()];
        if (synced.Search(query).docs.size() > synced.k()) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace asup
