// Cross-configuration property tests: invariants that must hold for every
// defense, at every k, γ, and corpus size. Each property is checked over a
// batch of bona fide queries.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_decline.h"
#include "asup/suppress/as_simple.h"
#include "asup/workload/aol_like.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

enum class DefenseKind { kSimple, kArbi, kDecline };

std::unique_ptr<SearchService> MakeDefense(PlainSearchEngine& engine,
                                           DefenseKind kind, double gamma) {
  switch (kind) {
    case DefenseKind::kSimple: {
      AsSimpleConfig config;
      config.gamma = gamma;
      return std::make_unique<AsSimpleEngine>(engine, config);
    }
    case DefenseKind::kArbi: {
      AsArbiConfig config;
      config.simple.gamma = gamma;
      return std::make_unique<AsArbiEngine>(engine, config);
    }
    case DefenseKind::kDecline: {
      AsDeclineConfig config;
      config.simple.gamma = gamma;
      return std::make_unique<AsDeclineEngine>(engine, config);
    }
  }
  return nullptr;
}

const char* KindName(DefenseKind kind) {
  switch (kind) {
    case DefenseKind::kSimple:
      return "AS-SIMPLE";
    case DefenseKind::kArbi:
      return "AS-ARBI";
    case DefenseKind::kDecline:
      return "AS-DECLINE";
  }
  return "?";
}

using Config = std::tuple<DefenseKind, size_t /*k*/, double /*gamma*/,
                          size_t /*corpus size*/>;

class DefenseProperties : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const auto [kind, k, gamma, corpus_size] = GetParam();
    rig_ = MakeRig(corpus_size, k, /*seed=*/813);
    defense_ = MakeDefense(*rig_.engine, kind, gamma);

    AolLikeConfig log_config;
    log_config.log_size = 300;
    log_config.unique_queries = 150;
    log_config.seed = 29;
    workload_ = std::make_unique<AolLikeWorkload>(*rig_.corpus, log_config);
  }

  Rig rig_;
  std::unique_ptr<SearchService> defense_;
  std::unique_ptr<AolLikeWorkload> workload_;
};

TEST_P(DefenseProperties, AnswersAreMatchingSubsetsWithinK) {
  const auto [kind, k, gamma, corpus_size] = GetParam();
  for (const auto& query : workload_->log()) {
    const SearchResult result = defense_->Search(query);
    EXPECT_LE(result.docs.size(), k);
    const auto match_ids = rig_.engine->MatchIds(query);
    const std::set<DocId> matches(match_ids.begin(), match_ids.end());
    std::set<DocId> seen;
    for (const auto& scored : result.docs) {
      EXPECT_TRUE(matches.count(scored.doc))
          << KindName(kind) << " returned a non-matching doc";
      EXPECT_TRUE(seen.insert(scored.doc).second)
          << KindName(kind) << " returned a duplicate doc";
    }
  }
}

TEST_P(DefenseProperties, AnswersAreRankedByScore) {
  for (const auto& query : workload_->log()) {
    const SearchResult result = defense_->Search(query);
    for (size_t i = 1; i < result.docs.size(); ++i) {
      const auto& prev = result.docs[i - 1];
      const auto& cur = result.docs[i];
      EXPECT_TRUE(prev.score > cur.score ||
                  (prev.score == cur.score && prev.doc < cur.doc));
    }
  }
}

TEST_P(DefenseProperties, RepeatedQueriesAreIdentical) {
  // Deterministic processing (Section 2.1): replaying the whole log must
  // return byte-identical answers, despite all the state the defense
  // accumulated in between.
  std::vector<SearchResult> first;
  first.reserve(workload_->unique_queries().size());
  for (const auto& query : workload_->unique_queries()) {
    first.push_back(defense_->Search(query));
  }
  for (size_t i = 0; i < workload_->unique_queries().size(); ++i) {
    const SearchResult again =
        defense_->Search(workload_->unique_queries()[i]);
    EXPECT_EQ(again.status, first[i].status);
    ASSERT_EQ(again.docs.size(), first[i].docs.size());
    for (size_t d = 0; d < again.docs.size(); ++d) {
      EXPECT_EQ(again.docs[d].doc, first[i].docs[d].doc);
    }
  }
}

TEST_P(DefenseProperties, StatusesAreConsistent) {
  const auto [kind, k, gamma, corpus_size] = GetParam();
  for (const auto& query : workload_->log()) {
    const SearchResult result = defense_->Search(query);
    switch (result.status) {
      case QueryStatus::kUnderflow:
        EXPECT_TRUE(result.docs.empty());
        break;
      case QueryStatus::kValid:
      case QueryStatus::kOverflow:
        EXPECT_FALSE(result.docs.empty());
        break;
      case QueryStatus::kDeclined:
        EXPECT_EQ(kind, DefenseKind::kDecline);
        EXPECT_TRUE(result.docs.empty());
        break;
    }
    // A query matching nothing must never produce an answer.
    if (rig_.engine->MatchCount(query) == 0) {
      EXPECT_EQ(result.status, QueryStatus::kUnderflow);
    }
  }
}

TEST_P(DefenseProperties, UnderflowOnUnknownWords) {
  const auto q = rig_.Q("zzzunknownzzz");
  EXPECT_EQ(defense_->Search(q).status, QueryStatus::kUnderflow);
}

TEST_P(DefenseProperties, KIsForwarded) {
  const auto [kind, k, gamma, corpus_size] = GetParam();
  EXPECT_EQ(defense_->k(), k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DefenseProperties,
    ::testing::Combine(
        ::testing::Values(DefenseKind::kSimple, DefenseKind::kArbi,
                          DefenseKind::kDecline),
        ::testing::Values<size_t>(5, 50),
        ::testing::Values(2.0, 5.0),
        ::testing::Values<size_t>(300, 1100)),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name = KindName(std::get<0>(info.param));
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "_k" + std::to_string(std::get<1>(info.param)) + "_g" +
             std::to_string(static_cast<int>(std::get<2>(info.param))) +
             "_n" + std::to_string(std::get<3>(info.param));
    });

// The segment-emulation property across same-segment corpus sizes: fresh
// answers of a valid query scale as 1/μ.
class SegmentEmulation : public ::testing::TestWithParam<size_t> {};

TEST_P(SegmentEmulation, FreshAnswerSizeTracksLhsFraction) {
  const size_t corpus_size = GetParam();  // all within [256, 512)
  Rig rig = MakeRig(corpus_size, 50, /*seed=*/7);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine defended(*rig.engine, config);
  const double mu = defended.segment().mu();
  // On a fresh engine nothing is hidden, so the answer size is exactly
  // min(round(|M|/μ), k) with |M| = min(|q|, γ·k).
  size_t checked = 0;
  for (const char* w : {"sports game", "sports team", "game team",
                        "sports score", "game score", "sports game team"}) {
    const auto q = rig.Q(w);
    const size_t matches = rig.engine->MatchCount(q);
    if (matches == 0) continue;
    const size_t m_size = std::min<size_t>(matches, 100);  // γ·k = 100
    const size_t expected = std::min<size_t>(
        static_cast<size_t>(
            std::llround(static_cast<double>(m_size) / mu)),
        50);
    AsSimpleEngine fresh(*rig.engine, config);
    EXPECT_EQ(fresh.Search(q).docs.size(), expected) << w;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(SameSegment, SegmentEmulation,
                         ::testing::Values<size_t>(260, 300, 380, 460, 505));

}  // namespace
}  // namespace asup
