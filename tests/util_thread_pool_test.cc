#include "asup/util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <vector>

#include <gtest/gtest.h>

#include "asup/util/annotated_mutex.h"
#include "asup/util/atomic_bitmap.h"
#include "asup/util/sharded_mutex.h"

namespace asup {
namespace {

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool defaulted(0);
  EXPECT_EQ(defaulted.num_threads(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  Mutex mutex;
  std::condition_variable all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        MutexLock lock(mutex);
        all_done.notify_all();
      }
    });
  }
  MutexLock lock(mutex);
  while (done.load() != kTasks) lock.Wait(all_done);
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);

  std::atomic<int> hits{0};
  pool.ParallelFor(1, [&](size_t begin, size_t end) {
    hits.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForMakesProgress) {
  // The caller participates in its own loop, so inner loops issued from
  // worker threads cannot deadlock even when every worker is occupied.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(16, [&](size_t inner_begin, size_t inner_end) {
        total.fetch_add(static_cast<int>(inner_end - inner_begin));
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(AtomicBitmapTest, TestAndSetReportsPriorValue) {
  AtomicBitmap bitmap(130);
  EXPECT_EQ(bitmap.size(), 130u);
  EXPECT_FALSE(bitmap.Test(0));
  EXPECT_FALSE(bitmap.TestAndSet(0));
  EXPECT_TRUE(bitmap.TestAndSet(0));
  EXPECT_TRUE(bitmap.Test(0));
  EXPECT_FALSE(bitmap.TestAndSet(129));
  EXPECT_EQ(bitmap.Count(), 2u);
  EXPECT_EQ(bitmap.SetBits(), (std::vector<size_t>{0, 129}));
  bitmap.ClearAll();
  EXPECT_EQ(bitmap.Count(), 0u);
}

TEST(AtomicBitmapTest, ConcurrentTestAndSetElectsOneWinnerPerBit) {
  constexpr size_t kBits = 4096;
  AtomicBitmap bitmap(kBits);
  ThreadPool pool(4);
  std::atomic<size_t> wins{0};
  // Every index is claimed by several chunks' worth of contenders; exactly
  // one TestAndSet per bit may observe "previously unset".
  pool.ParallelFor(kBits * 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (!bitmap.TestAndSet(i % kBits)) wins.fetch_add(1);
    }
  });
  EXPECT_EQ(wins.load(), kBits);
  EXPECT_EQ(bitmap.Count(), kBits);
}

TEST(ShardedMutexTest, ShardsArePowerOfTwoAndStable) {
  ShardedMutex mutexes(10);
  EXPECT_EQ(mutexes.num_shards(), 16u);
  const size_t shard = mutexes.ShardOf(12345);
  EXPECT_EQ(mutexes.ShardOf(12345), shard);
  EXPECT_LT(shard, mutexes.num_shards());
  MutexLock lock(mutexes.MutexFor(12345));
}

TEST(ShardedMutexTest, LockAllAcquiresEveryShard) {
  ShardedMutex mutexes(4);
  auto locks = mutexes.LockAll();
  EXPECT_EQ(locks.size(), mutexes.num_shards());
  for (const auto& lock : locks) EXPECT_TRUE(lock.owns_lock());
}

}  // namespace
}  // namespace asup
