// Smoke test for the paper-invariant contract layer (util/check.h): builds
// with contracts enabled must abort — loudly, with the failed expression —
// when an invariant is deliberately violated, and must run the legitimate
// paths without tripping any check. In builds without contracts the
// violations below are unreachable by construction elsewhere, so the death
// tests skip.

#include "asup/util/check.h"

#include <sstream>

#include <gtest/gtest.h>

#include "asup/engine/answer_cache.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/cover_finder.h"
#include "asup/suppress/history_store.h"
#include "asup/suppress/segment.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

#if ASUP_CONTRACTS_ENABLED

TEST(ContractsDeathTest, SegmentRejectsDegenerateGamma) {
  // γ ≤ 1 breaks μ ∈ (1, γ] and the hide probability 1 − μ/γ ∈ [0, 1).
  EXPECT_DEATH(IndistinguishableSegment(100, 1.0), "ASUP_CHECK failed");
  EXPECT_DEATH(IndistinguishableSegment(100, 0.5), "ASUP_CHECK failed");
}

TEST(ContractsDeathTest, SegmentRejectsEmptyCorpus) {
  EXPECT_DEATH(IndistinguishableSegment(0, 2.0), "ASUP_CHECK failed");
}

TEST(ContractsDeathTest, AnswerCacheRejectsUnclaimedPublish) {
  // Publishing without LookupOrClaim violates the claim protocol that makes
  // "same query ⇒ same answer" hold under concurrency.
  EXPECT_DEATH(
      {
        AnswerCache cache;
        cache.Publish("rogue query", SearchResult{});
      },
      "ASUP_CHECK failed");
}

TEST(ContractsDeathTest, AnswerCacheRejectsDoublePublish) {
  EXPECT_DEATH(
      {
        AnswerCache cache;
        SearchResult scratch;
        (void)cache.LookupOrClaim("q", &scratch);
        cache.Publish("q", SearchResult{});
        cache.Publish("q", SearchResult{});
      },
      "ASUP_CHECK failed");
}

TEST(ContractsDeathTest, AnswerCacheRejectsAbandonOfPublishedAnswer) {
  EXPECT_DEATH(
      {
        AnswerCache cache;
        SearchResult scratch;
        (void)cache.LookupOrClaim("q", &scratch);
        cache.Publish("q", SearchResult{});
        cache.Abandon("q");
      },
      "ASUP_CHECK failed");
}

TEST(ContractsDeathTest, CoverFinderRejectsZeroCoverRatio) {
  EXPECT_DEATH(
      {
        HistoryStore history;
        CoverFinder finder(history, 5, 0.0);
      },
      "ASUP_CHECK failed");
}

TEST(ContractsDeathTest, CheckEqReportsBothValues) {
  EXPECT_DEATH(ASUP_CHECK_EQ(2 + 2, 5), "\\(4 vs. 5\\)");
}

#else  // !ASUP_CONTRACTS_ENABLED

TEST(ContractsDeathTest, SkippedWithoutContracts) {
  GTEST_SKIP() << "contracts compiled out (NDEBUG build without "
                  "-DASUP_ENABLE_CONTRACTS=ON)";
}

#endif  // ASUP_CONTRACTS_ENABLED

// The legitimate paths must run clean with every contract armed: this is
// the "paper invariants asserted at least once" half of the smoke test.
// (The full ctest suite under the contracts build covers far more; this
// test keeps a minimal end-to-end pass next to the death tests.)
TEST(ContractsTest, DefendedEnginesRunCleanUnderContracts) {
  Rig rig = MakeRig(520, 5);
  AsSimpleEngine simple(*rig.engine, AsSimpleConfig{});
  AsArbiEngine arbi(*rig.engine, AsArbiConfig{});
  for (const char* w :
       {"sports", "game", "sports game", "team", "sports team", "score"}) {
    const SearchResult s = simple.Search(rig.Q(w));
    const SearchResult a = arbi.Search(rig.Q(w));
    EXPECT_LE(s.docs.size(), simple.k());
    EXPECT_LE(a.docs.size(), arbi.k());
  }
  // Re-issue: cache path, still contract-clean and deterministic.
  const SearchResult again = simple.Search(rig.Q("sports"));
  EXPECT_LE(again.docs.size(), simple.k());
}

TEST(ContractsTest, DisabledChecksDoNotEvaluateOperands) {
#if ASUP_CONTRACTS_ENABLED
  GTEST_SKIP() << "contracts enabled in this build";
#else
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations > 0; };
  ASUP_CHECK(count());
  ASUP_CHECK_EQ(count(), true);
  ASUP_DCHECK(count());
  EXPECT_EQ(evaluations, 0);
#endif
}

}  // namespace
}  // namespace asup
