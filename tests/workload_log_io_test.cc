#include "asup/workload/log_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "asup/workload/aol_like.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LogIoTest, RoundTripsAWorkload) {
  Rig rig = MakeRig(300, 5);
  AolLikeConfig config;
  config.log_size = 200;
  config.unique_queries = 80;
  AolLikeWorkload workload(*rig.corpus, config);

  const std::string path = TempPath("log_roundtrip.txt");
  ASSERT_TRUE(SaveQueryLog(workload.log(), path));
  const auto loaded = LoadQueryLog(path, rig.corpus->vocabulary());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), workload.log().size());
  for (size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ((*loaded)[i].canonical(), workload.log()[i].canonical());
    EXPECT_EQ((*loaded)[i].terms(), workload.log()[i].terms());
  }
  std::remove(path.c_str());
}

TEST(LogIoTest, LoadParsesRawText) {
  Rig rig = MakeRig(100, 5);
  const std::string path = TempPath("raw_log.txt");
  {
    std::ofstream out(path);
    out << "sports game\n";
    out << "\n";  // blank line skipped
    out << "  TEAM sports \n";
    out << "wordthatdoesnotexist\n";  // preserved as unanswerable
  }
  const auto loaded = LoadQueryLog(path, rig.corpus->vocabulary());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].canonical(), "game sports");
  EXPECT_EQ((*loaded)[1].canonical(), "sports team");
  EXPECT_TRUE((*loaded)[2].has_unknown_word());
  EXPECT_TRUE((*loaded)[2].terms().empty());
  std::remove(path.c_str());
}

TEST(LogIoTest, MissingFileReturnsNullopt) {
  Rig rig = MakeRig(50, 5);
  EXPECT_FALSE(
      LoadQueryLog(TempPath("nope.txt"), rig.corpus->vocabulary())
          .has_value());
}

TEST(LogIoTest, LoadedLogIsReplayable) {
  Rig rig = MakeRig(400, 5);
  const std::string path = TempPath("replay_log.txt");
  {
    std::ofstream out(path);
    out << "sports\ngame team\nsports game\n";
  }
  const auto loaded = LoadQueryLog(path, rig.corpus->vocabulary());
  ASSERT_TRUE(loaded.has_value());
  for (const auto& query : *loaded) {
    const auto result = rig.engine->Search(query);
    EXPECT_NE(result.status, QueryStatus::kDeclined);
  }
  std::remove(path.c_str());
}

TEST(LogIoTest, SaveToUnwritablePathFails) {
  EXPECT_FALSE(SaveQueryLog({}, "/nonexistent_dir/x/log.txt"));
}

}  // namespace
}  // namespace asup
