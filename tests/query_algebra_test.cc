// Property tests of the iterator algebra (engine/doc_iterator.h): random
// And/Or/Not trees over random corpora, checked against a brute-force
// set-algebra oracle that never touches the index or the iterators.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/doc_iterator.h"
#include "asup/engine/query_node.h"
#include "asup/index/inverted_index.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/random.h"

namespace asup {
namespace {

// Brute-force oracle: evaluates the tree by scanning documents, sharing no
// code with the compile/execute path under test.
std::set<uint32_t> Oracle(const InvertedIndex& index, const QueryNode& node) {
  std::set<uint32_t> out;
  switch (node.kind()) {
    case QueryNode::Kind::kTerm:
      for (uint32_t local = 0; local < index.NumDocuments(); ++local) {
        if (index.DocAt(local).Contains(node.term())) out.insert(local);
      }
      return out;
    case QueryNode::Kind::kAnd: {
      bool first = true;
      for (const QueryNode& child : node.children()) {
        const std::set<uint32_t> hits = Oracle(index, child);
        if (first) {
          out = hits;
          first = false;
        } else {
          std::set<uint32_t> kept;
          std::set_intersection(out.begin(), out.end(), hits.begin(),
                                hits.end(), std::inserter(kept, kept.end()));
          out = std::move(kept);
        }
      }
      return out;
    }
    case QueryNode::Kind::kOr:
      for (const QueryNode& child : node.children()) {
        const std::set<uint32_t> hits = Oracle(index, child);
        out.insert(hits.begin(), hits.end());
      }
      return out;
    case QueryNode::Kind::kNot: {
      const std::set<uint32_t> hits = Oracle(index, node.children()[0]);
      for (uint32_t local = 0; local < index.NumDocuments(); ++local) {
        if (!hits.count(local)) out.insert(local);
      }
      return out;
    }
    case QueryNode::Kind::kEmpty:
      return out;
  }
  return out;
}

// Random tree: leaves are terms (occasionally unindexed ids just past the
// vocabulary, occasionally Empty); inner nodes are And/Or with 1..8
// children or Not. Small vocabularies make duplicate terms frequent.
QueryNode RandomTree(Rng& rng, size_t vocab_size, int depth) {
  const uint64_t roll = rng.UniformBelow(depth == 0 ? 8 : 16);
  if (roll < 7) {
    return QueryNode::Term(
        static_cast<TermId>(rng.UniformBelow(vocab_size + 16)));
  }
  if (roll == 7) return QueryNode::MakeEmpty();
  if (roll == 15) return QueryNode::Not(RandomTree(rng, vocab_size, depth - 1));
  const size_t arity = 1 + rng.UniformBelow(8);
  std::vector<QueryNode> children;
  children.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    children.push_back(RandomTree(rng, vocab_size, depth - 1));
  }
  return roll < 12 ? QueryNode::And(std::move(children))
                   : QueryNode::Or(std::move(children));
}

Corpus SmallCorpus(uint64_t seed, size_t docs) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 60;
  config.num_topics = 4;
  config.words_per_topic = 12;
  config.seed = seed;
  SyntheticCorpusGenerator generator(config);
  return generator.Generate(docs);
}

void ExpectTreeMatchesOracle(const InvertedIndex& index,
                             const QueryNode& node) {
  const std::set<uint32_t> expected_set = Oracle(index, node);
  const std::vector<uint32_t> expected(expected_set.begin(),
                                       expected_set.end());
  for (const OrStrategy strategy :
       {OrStrategy::kAdaptive, OrStrategy::kFlat, OrStrategy::kHeap}) {
    EXPECT_EQ(ExecuteLocals(index, node, strategy), expected);
    EXPECT_EQ(ExecuteCount(index, node, strategy), expected.size());
  }
  // ExecuteMatch must agree on the documents and report each one's true
  // per-term frequencies for the tree's terms.
  const std::vector<TermId> terms = node.CollectTerms();
  const std::vector<MatchedDoc> matches = ExecuteMatch(index, node, terms);
  ASSERT_EQ(matches.size(), expected.size());
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].local_doc, expected[i]);
    ASSERT_EQ(matches[i].freqs.size(), terms.size());
    for (size_t t = 0; t < terms.size(); ++t) {
      EXPECT_EQ(matches[i].freqs[t],
                index.DocAt(matches[i].local_doc).FrequencyOf(terms[t]));
    }
  }
}

class QueryAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryAlgebraTest, RandomTreesMatchSetAlgebraOracle) {
  const Corpus corpus = SmallCorpus(900 + GetParam(), 150);
  const InvertedIndex index(corpus);
  const size_t vocab = corpus.vocabulary().size();
  Rng rng(17 + GetParam());
  for (int round = 0; round < 120; ++round) {
    const QueryNode node = RandomTree(rng, vocab, 3);
    ExpectTreeMatchesOracle(index, node);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryAlgebraTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(QueryAlgebraShapesTest, HandPickedShapes) {
  const Corpus corpus = SmallCorpus(5, 120);
  const InvertedIndex index(corpus);
  const TermId a = 3, b = 7, c = 11, d = 19;
  const TermId unknown = static_cast<TermId>(corpus.vocabulary().size() + 5);

  std::vector<QueryNode> shapes;
  // Duplicate terms inside And and Or.
  shapes.push_back(QueryNode::And({QueryNode::Term(a), QueryNode::Term(a)}));
  shapes.push_back(QueryNode::Or({QueryNode::Term(a), QueryNode::Term(a)}));
  // Unknown term erases an And, vanishes from an Or.
  shapes.push_back(
      QueryNode::And({QueryNode::Term(a), QueryNode::Term(unknown)}));
  shapes.push_back(
      QueryNode::Or({QueryNode::Term(a), QueryNode::Term(unknown)}));
  // Explicit Empty children.
  shapes.push_back(QueryNode::And({QueryNode::Term(a), QueryNode::MakeEmpty()}));
  shapes.push_back(QueryNode::Or({QueryNode::MakeEmpty(), QueryNode::Term(b)}));
  // Single-child composites collapse.
  shapes.push_back(QueryNode::And({QueryNode::Term(c)}));
  shapes.push_back(QueryNode::Or({QueryNode::Term(c)}));
  // Not, double Not, Not of Empty (= everything), Not of everything.
  shapes.push_back(QueryNode::Not(QueryNode::Term(a)));
  shapes.push_back(QueryNode::Not(QueryNode::Not(QueryNode::Term(a))));
  shapes.push_back(QueryNode::Not(QueryNode::MakeEmpty()));
  shapes.push_back(QueryNode::Not(QueryNode::Not(QueryNode::MakeEmpty())));
  // (a AND b) OR (c AND NOT d) — the mixed shape engines will see from a
  // boolean front end.
  shapes.push_back(QueryNode::Or(
      {QueryNode::And({QueryNode::Term(a), QueryNode::Term(b)}),
       QueryNode::And(
           {QueryNode::Term(c), QueryNode::Not(QueryNode::Term(d))})}));
  // Wide And / Or of 8 children.
  {
    std::vector<QueryNode> wide;
    for (TermId t = 0; t < 8; ++t) wide.push_back(QueryNode::Term(t * 5));
    shapes.push_back(QueryNode::And(std::vector<QueryNode>(wide)));
    shapes.push_back(QueryNode::Or(std::move(wide)));
  }

  for (size_t i = 0; i < shapes.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectTreeMatchesOracle(index, shapes[i]);
  }
}

// The conjunctive fast shape must expose aligned TermIterators (no
// document lookups during scoring), and its frequencies must equal the
// fallback path's.
TEST(QueryAlgebraShapesTest, ConjunctionExposesAlignedTerms) {
  const Corpus corpus = SmallCorpus(6, 120);
  const InvertedIndex index(corpus);
  const QueryNode node =
      QueryNode::And({QueryNode::Term(2), QueryNode::Term(9)});
  const CompiledQuery compiled = CompileQuery(index, node);
  ASSERT_EQ(compiled.aligned_terms.size(), 2u);
  // Rarest-first ordering.
  EXPECT_LE(compiled.aligned_terms[0]->CostEstimate(),
            compiled.aligned_terms[1]->CostEstimate());
  ExpectTreeMatchesOracle(index, node);
}

TEST(QueryAlgebraShapesTest, GeneralTreesHaveNoAlignedTerms) {
  const Corpus corpus = SmallCorpus(7, 60);
  const InvertedIndex index(corpus);
  const QueryNode node =
      QueryNode::Or({QueryNode::Term(2), QueryNode::Term(9)});
  EXPECT_TRUE(CompileQuery(index, node).aligned_terms.empty());
}

}  // namespace
}  // namespace asup
