#include "asup/text/structured.h"

#include <memory>

#include <gtest/gtest.h>

#include "asup/attack/aggregate.h"
#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/as_arbi.h"

namespace asup {
namespace {

StructuredTable MakeProducts() {
  auto vocab = std::make_shared<Vocabulary>();
  StructuredTable table(vocab, {"brand", "category", "review"});
  table.AddTuple({"Acme", "camera", "poor quality, broken on arrival"});
  table.AddTuple({"Acme", "laptop", "great value"});
  table.AddTuple({"Bolt", "camera", "poor battery"});
  table.AddTuple({"Bolt", "phone", "excellent screen"});
  table.AddTuple({"Acme", "phone", "poor quality speaker"});
  return table;
}

TEST(StructuredTableTest, TuplesBecomeDocuments) {
  StructuredTable table = MakeProducts();
  EXPECT_EQ(table.size(), 5u);
  Corpus corpus = table.ToCorpus();
  EXPECT_EQ(corpus.size(), 5u);
}

TEST(StructuredTableTest, PlainKeywordSearchWorks) {
  StructuredTable table = MakeProducts();
  Corpus corpus = table.ToCorpus();
  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 10);
  // "poor" appears in three reviews.
  const auto result =
      engine.Search(KeywordQuery::Parse(corpus.vocabulary(), "poor"));
  EXPECT_EQ(result.docs.size(), 3u);
  // Conjunctive across attributes: brand word + review word.
  const auto acme_poor =
      engine.Search(KeywordQuery::Parse(corpus.vocabulary(), "acme poor"));
  EXPECT_EQ(acme_poor.docs.size(), 2u);
}

TEST(StructuredTableTest, AttributeTermsScopeSelection) {
  StructuredTable table = MakeProducts();
  Corpus corpus = table.ToCorpus();
  // "camera" as a category vs anywhere: tuple 0 and 2 are cameras.
  const auto category_camera = table.AttributeTerm("category", "camera");
  ASSERT_TRUE(category_camera.has_value());
  EXPECT_EQ(AggregateQuery::CountContaining(*category_camera)
                .TrueValue(corpus),
            2.0);
  // "poor" scoped to the review attribute.
  const auto review_poor = table.AttributeTerm("review", "poor");
  ASSERT_TRUE(review_poor.has_value());
  EXPECT_EQ(AggregateQuery::CountContaining(*review_poor).TrueValue(corpus),
            3.0);
  // A brand word does not leak into other attributes.
  EXPECT_FALSE(table.AttributeTerm("category", "acme").has_value());
}

TEST(StructuredTableTest, AttributeTermIsCaseInsensitive) {
  StructuredTable table = MakeProducts();
  EXPECT_TRUE(table.AttributeTerm("brand", "ACME").has_value());
  EXPECT_EQ(table.AttributeTerm("brand", "ACME"),
            table.AttributeTerm("brand", "acme"));
}

TEST(StructuredTableTest, ScopedTermsDoNotPolluteKeywordSearch) {
  StructuredTable table = MakeProducts();
  Corpus corpus = table.ToCorpus();
  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 10);
  // Querying the literal scoped form via the keyword box tokenizes into
  // ("brand", "acme") — the '=' splits — and "brand" alone matches nothing
  // since it is not a value word.
  const auto result =
      engine.Search(KeywordQuery::Parse(corpus.vocabulary(), "brand=acme"));
  EXPECT_EQ(result.status, QueryStatus::kUnderflow);
}

TEST(StructuredTableTest, DefensesApplyUnchanged) {
  // The §8 extension claim: the flattened table runs behind AS-ARBI with
  // no further work.
  auto vocab = std::make_shared<Vocabulary>();
  StructuredTable table(vocab, {"brand", "review"});
  for (int i = 0; i < 400; ++i) {
    table.AddTuple({i % 3 == 0 ? "Acme" : "Bolt",
                    i % 5 == 0 ? "poor quality item" : "fine sturdy item"});
  }
  Corpus corpus = table.ToCorpus();
  InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 5);
  AsArbiEngine defended(engine, AsArbiConfig{});
  const auto q = KeywordQuery::Parse(corpus.vocabulary(), "poor");
  const auto result = defended.Search(q);
  EXPECT_LE(result.docs.size(), 5u);
  EXPECT_NE(result.status, QueryStatus::kUnderflow);
}

TEST(StructuredTableTest, SharedVocabularyAcrossTables) {
  auto vocab = std::make_shared<Vocabulary>();
  StructuredTable a(vocab, {"x"});
  StructuredTable b(vocab, {"x"});
  a.AddTuple({"hello world"});
  b.AddTuple({"hello there"});
  EXPECT_EQ(a.AttributeTerm("x", "hello"), b.AttributeTerm("x", "hello"));
}

}  // namespace
}  // namespace asup
