#include "asup/suppress/guarantee.h"

#include <cmath>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(GuaranteeTest, MatchesTheoremFormula) {
  // n = 1536, γ = 2: segment [1024, 2048), ceiling power 2048.
  const auto g = ComputeGuarantee(/*corpus_size=*/1536, /*gamma=*/2.0,
                                  /*k=*/5, /*dmax=*/100,
                                  /*aggregate_value=*/1536.0,
                                  /*delta=*/0.9);
  EXPECT_NEAR(g.epsilon, 2048.0 * 0.9 * 1536.0 / 1536.0, 1e-9);
  EXPECT_EQ(g.delta, 0.9);
  EXPECT_NEAR(g.query_budget_c, std::sqrt(1536.0 / (100.0 * 5.0)), 1e-12);
  EXPECT_EQ(g.win_probability_p, 0.5);
}

TEST(GuaranteeTest, ExactPowerUsesOwnValue) {
  // ⌈log 1024 / log 2⌉ = 10 exactly: the emulated top is 1024 itself.
  const auto g = ComputeGuarantee(1024, 2.0, 5, 10, 1024.0, 1.0);
  EXPECT_NEAR(g.epsilon, 1024.0, 1e-9);
}

TEST(GuaranteeTest, EpsilonScalesWithAggregate) {
  const auto count = ComputeGuarantee(1500, 2.0, 5, 10, 1500.0, 0.5);
  const auto sum = ComputeGuarantee(1500, 2.0, 5, 10, 150000.0, 0.5);
  EXPECT_NEAR(sum.epsilon / count.epsilon, 100.0, 1e-9);
}

TEST(GuaranteeTest, BudgetShrinksWithDmaxAndK) {
  const auto loose = ComputeGuarantee(100000, 2.0, 5, 10, 1.0, 0.5);
  const auto tight = ComputeGuarantee(100000, 2.0, 50, 100, 1.0, 0.5);
  EXPECT_GT(loose.query_budget_c, tight.query_budget_c);
}

TEST(GuaranteeTest, BudgetGrowsWithCorpus) {
  const auto small = ComputeGuarantee(10000, 2.0, 5, 10, 1.0, 0.5);
  const auto large = ComputeGuarantee(1000000, 2.0, 5, 10, 1.0, 0.5);
  EXPECT_NEAR(large.query_budget_c / small.query_budget_c, 10.0, 1e-9);
}

TEST(GuaranteeTest, LargerGammaWidensEpsilon) {
  const auto g2 = ComputeGuarantee(1500, 2.0, 5, 10, 1500.0, 0.5);
  const auto g10 = ComputeGuarantee(1500, 10.0, 5, 10, 1500.0, 0.5);
  EXPECT_GT(g10.epsilon, g2.epsilon);
}

class GuaranteeSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(GuaranteeSweep, EpsilonBracketsAggregateGranularity) {
  const auto [n, gamma] = GetParam();
  const double aggregate = static_cast<double>(n);
  const auto g = ComputeGuarantee(n, gamma, 5, 10, aggregate, 1.0);
  // With δ = 1 and qA = n, ε is the emulated segment top: at least the
  // aggregate itself, at most γ times it.
  EXPECT_GE(g.epsilon, aggregate * (1.0 - 1e-9));
  EXPECT_LE(g.epsilon, gamma * aggregate * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuaranteeSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 10, 1000, 4097, 100000),
                       ::testing::Values(1.5, 2.0, 5.0, 10.0)));

}  // namespace
}  // namespace asup
