#include "asup/eval/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(FinalEstimateSpreadTest, FewerThanTwoTrajectoriesIsZero) {
  EXPECT_EQ(FinalEstimateSpread({}), 0.0);
  EXPECT_EQ(FinalEstimateSpread({{{100, 5.0}}}), 0.0);
}

TEST(FinalEstimateSpreadTest, IdenticalFinalsIsZero) {
  const std::vector<std::vector<EstimationPoint>> t{
      {{100, 2.0}, {200, 10.0}},
      {{100, 7.0}, {200, 10.0}},
  };
  EXPECT_EQ(FinalEstimateSpread(t), 0.0);
}

TEST(FinalEstimateSpreadTest, ComputesRelativeSpread) {
  const std::vector<std::vector<EstimationPoint>> t{
      {{200, 10.0}},
      {{200, 20.0}},
      {{200, 30.0}},
  };
  // (30 - 10) / 20.
  EXPECT_NEAR(FinalEstimateSpread(t), 1.0, 1e-12);
}

TEST(FinalEstimateSpreadTest, IgnoresEmptyTrajectories) {
  const std::vector<std::vector<EstimationPoint>> t{
      {},
      {{200, 10.0}},
      {{200, 30.0}},
  };
  EXPECT_NEAR(FinalEstimateSpread(t), 1.0, 1e-12);
}

TEST(FinalEstimateSpreadTest, UsesOnlyFinalPoints) {
  const std::vector<std::vector<EstimationPoint>> t{
      {{100, 1000.0}, {200, 10.0}},  // wild early value must not matter
      {{100, 0.0}, {200, 10.0}},
  };
  EXPECT_EQ(FinalEstimateSpread(t), 0.0);
}

TEST(ScaleTest, DefaultIsSmall) {
  unsetenv("ASUP_SCALE");
  EXPECT_FALSE(PaperScale());
  EXPECT_EQ(ScaledSize(10, 100), 10u);
}

TEST(ScaleTest, PaperScaleViaEnv) {
  setenv("ASUP_SCALE", "paper", 1);
  EXPECT_TRUE(PaperScale());
  EXPECT_EQ(ScaledSize(10, 100), 100u);
  unsetenv("ASUP_SCALE");
}

TEST(ScaleTest, OtherValuesAreSmall) {
  setenv("ASUP_SCALE", "huge", 1);
  EXPECT_FALSE(PaperScale());
  unsetenv("ASUP_SCALE");
}

TEST(ExperimentEnvTest, PoolFilterPlumbsThrough) {
  ExperimentEnv::Options options;
  options.universe_size = 300;
  options.held_out_size = 150;
  options.corpus_config.vocabulary_size = 1500;
  options.corpus_config.num_topics = 8;
  options.corpus_config.words_per_topic = 100;
  ExperimentEnv unfiltered(options);
  options.pool_max_df_fraction = 0.05;
  ExperimentEnv filtered(options);
  EXPECT_LT(filtered.pool().size(), unfiltered.pool().size());
}

}  // namespace
}  // namespace asup
