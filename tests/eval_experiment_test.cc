#include "asup/eval/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(FinalEstimateSpreadTest, FewerThanTwoTrajectoriesIsZero) {
  EXPECT_EQ(FinalEstimateSpread({}), 0.0);
  EXPECT_EQ(FinalEstimateSpread({{{100, 5.0}}}), 0.0);
}

TEST(FinalEstimateSpreadTest, IdenticalFinalsIsZero) {
  const std::vector<std::vector<EstimationPoint>> t{
      {{100, 2.0}, {200, 10.0}},
      {{100, 7.0}, {200, 10.0}},
  };
  EXPECT_EQ(FinalEstimateSpread(t), 0.0);
}

TEST(FinalEstimateSpreadTest, ComputesRelativeSpread) {
  const std::vector<std::vector<EstimationPoint>> t{
      {{200, 10.0}},
      {{200, 20.0}},
      {{200, 30.0}},
  };
  // (30 - 10) / 20.
  EXPECT_NEAR(FinalEstimateSpread(t), 1.0, 1e-12);
}

TEST(FinalEstimateSpreadTest, IgnoresEmptyTrajectories) {
  const std::vector<std::vector<EstimationPoint>> t{
      {},
      {{200, 10.0}},
      {{200, 30.0}},
  };
  EXPECT_NEAR(FinalEstimateSpread(t), 1.0, 1e-12);
}

TEST(FinalEstimateSpreadTest, UsesOnlyFinalPoints) {
  const std::vector<std::vector<EstimationPoint>> t{
      {{100, 1000.0}, {200, 10.0}},  // wild early value must not matter
      {{100, 0.0}, {200, 10.0}},
  };
  EXPECT_EQ(FinalEstimateSpread(t), 0.0);
}

TEST(ScaleTest, DefaultIsSmall) {
  unsetenv("ASUP_SCALE");
  EXPECT_FALSE(PaperScale());
  EXPECT_EQ(ScaledSize(10, 100), 10u);
}

TEST(ScaleTest, PaperScaleViaEnv) {
  setenv("ASUP_SCALE", "paper", 1);
  EXPECT_TRUE(PaperScale());
  EXPECT_EQ(ScaledSize(10, 100), 100u);
  unsetenv("ASUP_SCALE");
}

TEST(ScaleTest, OtherValuesAreSmall) {
  setenv("ASUP_SCALE", "huge", 1);
  EXPECT_FALSE(PaperScale());
  unsetenv("ASUP_SCALE");
}

TEST(ExperimentEnvTest, PoolFilterPlumbsThrough) {
  ExperimentEnv::Options options;
  options.universe_size = 300;
  options.held_out_size = 150;
  options.corpus_config.vocabulary_size = 1500;
  options.corpus_config.num_topics = 8;
  options.corpus_config.words_per_topic = 100;
  ExperimentEnv unfiltered(options);
  options.pool_max_df_fraction = 0.05;
  ExperimentEnv filtered(options);
  EXPECT_LT(filtered.pool().size(), unfiltered.pool().size());
}

TEST(EngineStackTest, PluggableScorerReachesTheBaseEngine) {
  ExperimentEnv::Options options;
  options.universe_size = 300;
  options.held_out_size = 100;
  options.corpus_config.vocabulary_size = 1500;
  options.corpus_config.num_topics = 8;
  options.corpus_config.words_per_topic = 100;
  const ExperimentEnv env(options);
  const Corpus corpus = env.SampleCorpus(200, /*salt=*/1);

  EngineStack bm25 = EngineStack::Plain(corpus, 10);
  EngineStack tfidf =
      EngineStack::Plain(corpus, 10, std::make_unique<TfIdfScorer>());
  EngineStack defended_tfidf = EngineStack::WithSimple(
      corpus, 10, AsSimpleConfig{}, std::make_unique<TfIdfScorer>());

  // Some query must rank differently under the two scorers — and the
  // defended stack must be suppressing the TF-IDF ranking, not BM25's.
  bool ranking_differs = false;
  for (size_t i = 0; i < env.pool().size() && i < 200; ++i) {
    const KeywordQuery& q = env.pool().QueryAt(i);
    const SearchResult a = bm25.service().Search(q);
    const SearchResult b = tfidf.service().Search(q);
    ASSERT_EQ(a.docs.size(), b.docs.size()) << q.canonical();
    for (size_t r = 0; r < a.docs.size(); ++r) {
      if (a.docs[r].doc != b.docs[r].doc || a.docs[r].score != b.docs[r].score)
        ranking_differs = true;
    }
    const SearchResult defended = defended_tfidf.service().Search(q);
    // Every defended answer document keeps its TF-IDF score from M(q) (the
    // top γ·k of the *same-scorer* base ranking): suppression hides and
    // trims, it never re-scores.
    const RankedMatches deep = defended_tfidf.plain().TopMatches(q, 20);
    for (const ScoredDoc& doc : defended.docs) {
      const auto it = std::find_if(
          deep.docs.begin(), deep.docs.end(),
          [&](const ScoredDoc& d) { return d.doc == doc.doc; });
      ASSERT_NE(it, deep.docs.end()) << q.canonical();
      EXPECT_EQ(it->score, doc.score) << q.canonical();
    }
  }
  EXPECT_TRUE(ranking_differs);
}

}  // namespace
}  // namespace asup
