#include "asup/suppress/cover_finder.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace asup {
namespace {

class CoverFinderTest : public ::testing::Test {
 protected:
  CoverFinderTest() {
    for (const char* w :
         {"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}) {
      vocab_.AddWord(w);
    }
  }

  KeywordQuery Q(const std::string& word) {
    return KeywordQuery::FromWords(vocab_, {word});
  }

  Vocabulary vocab_;
  HistoryStore history_;
};

TEST_F(CoverFinderTest, EmptyMatchSetNotCovered) {
  CoverFinder finder(history_, 5, 1.0);
  EXPECT_FALSE(finder.Find({}).found);
}

TEST_F(CoverFinderTest, NoHistoryNotCovered) {
  CoverFinder finder(history_, 5, 1.0);
  EXPECT_FALSE(finder.Find({1, 2, 3}).found);
}

TEST_F(CoverFinderTest, SingleQueryCover) {
  history_.Record(Q("a"), {1, 2, 3, 4});
  CoverFinder finder(history_, 5, 1.0);
  const auto cover = finder.Find({2, 3});
  ASSERT_TRUE(cover.found);
  EXPECT_EQ(cover.query_indices, (std::vector<uint32_t>{0}));
}

TEST_F(CoverFinderTest, NeedsTwoQueries) {
  history_.Record(Q("a"), {1, 2});
  history_.Record(Q("b"), {3, 4});
  CoverFinder finder(history_, 5, 1.0);
  const auto cover = finder.Find({1, 3});
  ASSERT_TRUE(cover.found);
  ASSERT_EQ(cover.query_indices.size(), 2u);
  std::vector<uint32_t> sorted = cover.query_indices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint32_t>{0, 1}));
}

TEST_F(CoverFinderTest, UncoveredDocumentFails) {
  history_.Record(Q("a"), {1, 2});
  CoverFinder finder(history_, 5, 1.0);
  EXPECT_FALSE(finder.Find({1, 2, 99}).found);
}

TEST_F(CoverFinderTest, CoverSizeLimitRespected) {
  // Five disjoint historic answers, cover size 3: six docs spread over
  // five queries cannot be covered by three.
  for (int i = 0; i < 5; ++i) {
    history_.Record(Q(std::string(1, static_cast<char>('a' + i))),
                    {static_cast<DocId>(2 * i), static_cast<DocId>(2 * i + 1)});
  }
  CoverFinder finder3(history_, 3, 1.0);
  EXPECT_FALSE(finder3.Find({0, 2, 4, 6, 8, 9}).found);
  CoverFinder finder5(history_, 5, 1.0);
  EXPECT_TRUE(finder5.Find({0, 2, 4, 6, 8, 9}).found);
}

TEST_F(CoverFinderTest, ExactSearchBeatsGreedyTrap) {
  // Classic greedy trap: the "tempting" 3-element set is not part of any
  // 3-set cover — a pure greedy that picks it first needs 4 sets, but the
  // exact search must still find the cover {b, c, d}.
  history_.Record(Q("a"), {0, 1, 2});  // greedy would pick this first
  history_.Record(Q("b"), {0, 3});
  history_.Record(Q("c"), {1, 4});
  history_.Record(Q("d"), {2, 5});
  CoverFinder finder(history_, 3, 1.0);
  const auto cover = finder.Find({0, 1, 2, 3, 4, 5});
  ASSERT_TRUE(cover.found);
  ASSERT_EQ(cover.query_indices.size(), 3u);
  std::vector<uint32_t> sorted = cover.query_indices;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint32_t>{1, 2, 3}));
}

TEST_F(CoverFinderTest, PartialCoverRatio) {
  history_.Record(Q("a"), {1, 2, 3});
  CoverFinder strict(history_, 5, 1.0);
  EXPECT_FALSE(strict.Find({1, 2, 3, 4, 5}).found);
  CoverFinder loose(history_, 5, 0.6);
  EXPECT_TRUE(loose.Find({1, 2, 3, 4, 5}).found);  // 3/5 = 60%
}

TEST_F(CoverFinderTest, PartialCoverRespectsSize) {
  history_.Record(Q("a"), {1});
  history_.Record(Q("b"), {2});
  history_.Record(Q("c"), {3});
  CoverFinder finder(history_, 2, 0.75);
  // Best 2 queries cover 2 of 4 = 50% < 75%.
  EXPECT_FALSE(finder.Find({1, 2, 3, 4}).found);
}

TEST_F(CoverFinderTest, DuplicateAnswersNoDoubleCount) {
  history_.Record(Q("a"), {1, 2});
  history_.Record(Q("b"), {1, 2});
  CoverFinder finder(history_, 2, 1.0);
  EXPECT_FALSE(finder.Find({1, 2, 3}).found);
  EXPECT_TRUE(finder.Find({1, 2}).found);
}

TEST_F(CoverFinderTest, ManyCandidatesStillFast) {
  // 200 historic queries, each covering one doc; cover of a 5-doc match
  // set must pick the right 5 among 200.
  for (int i = 0; i < 200; ++i) {
    history_.Record(Q("a"), {static_cast<DocId>(i)});
  }
  CoverFinder finder(history_, 5, 1.0);
  const auto cover = finder.Find({10, 50, 100, 150, 199});
  ASSERT_TRUE(cover.found);
  EXPECT_EQ(cover.query_indices.size(), 5u);
}

TEST_F(CoverFinderTest, CoverIsActuallyACover) {
  // Random-ish structure; verify the returned indices truly cover.
  history_.Record(Q("a"), {1, 4, 7});
  history_.Record(Q("b"), {2, 4, 8});
  history_.Record(Q("c"), {3, 7, 9});
  history_.Record(Q("d"), {1, 2, 3});
  CoverFinder finder(history_, 3, 1.0);
  const std::vector<DocId> match{1, 2, 3, 4, 7};
  const auto cover = finder.Find(match);
  ASSERT_TRUE(cover.found);
  std::set<DocId> covered;
  for (uint32_t qi : cover.query_indices) {
    for (DocId d : history_.QueryAt(qi).answer) covered.insert(d);
  }
  for (DocId d : match) EXPECT_TRUE(covered.count(d)) << d;
}

}  // namespace
}  // namespace asup
