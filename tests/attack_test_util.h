#ifndef ASUP_TESTS_ATTACK_TEST_UTIL_H_
#define ASUP_TESTS_ATTACK_TEST_UTIL_H_

/// Shared fixtures of the attack/eval test suites: canned query pools,
/// the recallable-count ground truth the pool estimators are unbiased for,
/// and an epoch rig (CorpusManager-backed engine + epoch-stream builder)
/// for dynamic-corpus attack tests.

#include <memory>
#include <set>
#include <string>

#include "asup/attack/correlated.h"
#include "asup/attack/query_pool.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/search_service.h"
#include "asup/index/corpus_manager.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/workload/epoch_stream.h"
#include "test_util.h"

namespace asup {
namespace testing_util {

/// Canned single-word pool over a rig's held-out corpus (the standard
/// adversary pool of the attack suites). Requires the rig to have been
/// built with held_out_size > 0.
inline QueryPool MakePool(const Rig& rig, double max_df_fraction = 1.0) {
  QueryPool::Options options;
  options.max_df_fraction = max_df_fraction;
  return QueryPool(*rig.held_out, options);
}

/// Canned correlated-query attack seeded on the "sports" topic head word
/// (the attack of the paper's Section 5.1 experiments).
inline CorrelatedQueryAttack MakeSportsAttack(
    const Rig& rig, const CorrelatedQueryAttack::Options& options = {}) {
  return CorrelatedQueryAttack(*rig.held_out, "sports", options);
}

/// Number of documents recallable through the pool (return-degree >= 1
/// under the top-k interface): the quantity the pool-based estimators
/// actually estimate.
inline double RecallableCount(SearchService& service, const QueryPool& pool) {
  std::set<DocId> recalled;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (const ScoredDoc& scored : service.Search(pool.QueryAt(i)).docs) {
      recalled.insert(scored.doc);
    }
  }
  return static_cast<double>(recalled.size());
}

inline double RecallableCount(const Rig& rig, const QueryPool& pool) {
  return RecallableCount(*rig.engine, pool);
}

/// A dynamic-corpus rig: the generator stays alive (epoch streams borrow
/// it for additions), the corpus lives inside a CorpusManager, and the
/// engine answers against the manager's current epoch.
struct EpochRig {
  std::unique_ptr<SyntheticCorpusGenerator> generator;
  std::unique_ptr<Corpus> held_out;
  std::unique_ptr<CorpusManager> manager;
  std::unique_ptr<PlainSearchEngine> engine;

  KeywordQuery Q(const std::string& text) const {
    return KeywordQuery::Parse(manager->Current()->corpus().vocabulary(),
                               text);
  }

  const Corpus& corpus() const { return manager->Current()->corpus(); }

  /// Builds a deterministic epoch stream against this rig's generator.
  EpochStream MakeStream(const EpochStreamConfig& config) const {
    return EpochStream(*generator, config);
  }
};

/// Same corpus profile as MakeRig (2000-word vocabulary, 12 topics), but
/// managed: the corpus is epoch 1 of a CorpusManager.
inline EpochRig MakeEpochRig(size_t corpus_size, size_t k, uint64_t seed = 7,
                             size_t held_out_size = 0) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 2000;
  config.num_topics = 12;
  config.words_per_topic = 150;
  config.seed = seed;
  EpochRig rig;
  rig.generator = std::make_unique<SyntheticCorpusGenerator>(config);
  Corpus initial = rig.generator->Generate(corpus_size);
  if (held_out_size > 0) {
    rig.held_out =
        std::make_unique<Corpus>(rig.generator->Generate(held_out_size));
  }
  rig.manager = std::make_unique<CorpusManager>(std::move(initial));
  rig.engine = std::make_unique<PlainSearchEngine>(*rig.manager, k);
  return rig;
}

}  // namespace testing_util
}  // namespace asup

#endif  // ASUP_TESTS_ATTACK_TEST_UTIL_H_
