// Suppression-state migration across corpus epochs: the segment arithmetic
// (μ = n/γ^⌊log n/log γ⌋) must be recomputed for the new corpus size, the
// returned-before set Θ_R must be remapped through universe document ids,
// and AS-ARBI's history must be compacted to surviving documents — all
// exactly as if the defense had been configured on the new corpus fresh.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/search_engine.h"
#include "asup/index/corpus_manager.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/segment.h"
#include "asup/text/corpus_delta.h"
#include "asup/text/synthetic_corpus.h"

namespace asup {
namespace {

SyntheticCorpusConfig GenConfig(uint64_t seed = 13) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 2000;
  config.num_topics = 12;
  config.words_per_topic = 150;
  config.seed = seed;
  return config;
}

CorpusDelta AddDocs(SyntheticCorpusGenerator& generator, size_t count) {
  CorpusDelta delta;
  const Corpus fresh = generator.Generate(count);
  delta.add.assign(fresh.documents().begin(), fresh.documents().end());
  return delta;
}

CorpusDelta RemoveEveryNth(const Corpus& corpus, size_t stride) {
  CorpusDelta delta;
  for (size_t pos = 0; pos < corpus.size(); pos += stride) {
    delta.remove.push_back(corpus.documents()[pos].id());
  }
  return delta;
}

void ExpectSegmentsEqual(const IndistinguishableSegment& actual,
                         const IndistinguishableSegment& expected) {
  EXPECT_EQ(actual.corpus_size(), expected.corpus_size());
  EXPECT_EQ(actual.segment_index(), expected.segment_index());
  EXPECT_DOUBLE_EQ(actual.mu(), expected.mu());
  EXPECT_DOUBLE_EQ(actual.gamma(), expected.gamma());
}

TEST(EpochMigrationTest, MuRecomputedAcrossSegmentBoundaries) {
  // Grow the corpus across a γ-segment boundary for each γ: the migrated
  // segment must match the one a fresh defense would derive, including the
  // segment index bump (γ=2: 300→600 crosses 2^9=512; γ=5: crosses 5^4=625
  // only after the second growth; γ=10: stays inside [100, 1000)).
  for (const double gamma : {2.0, 5.0, 10.0}) {
    SCOPED_TRACE(gamma);
    SyntheticCorpusGenerator generator(GenConfig());
    CorpusManager manager(generator.Generate(300));
    PlainSearchEngine base(manager, 5);
    AsSimpleConfig config;
    config.gamma = gamma;
    AsSimpleEngine engine(base, config);
    ExpectSegmentsEqual(engine.segment(),
                        IndistinguishableSegment(300, gamma));

    for (const size_t add : {300u, 350u}) {
      manager.Apply(AddDocs(generator, add));
      engine.MigrateToCurrentEpoch();
      const size_t n = manager.Current()->NumDocuments();
      ExpectSegmentsEqual(engine.segment(),
                          IndistinguishableSegment(n, gamma));
      EXPECT_EQ(engine.StateEpoch(), manager.CurrentEpoch());
    }
    // 300 → 600 → 950: γ=2 must have crossed a boundary (2^9 = 512).
    if (gamma == 2.0) {
      EXPECT_EQ(engine.segment().segment_index(), 9);
    }
    EXPECT_EQ(engine.stats().epoch_migrations, 2u);
  }
}

TEST(EpochMigrationTest, ExactPowerOfGammaYieldsMuOne) {
  // Land the corpus exactly on γ^i: μ must be exactly 1.0 (the corpus IS
  // the segment bottom), so no trim (1/μ = 1) and maximal edge removal
  // (keep-prob 1/γ).
  SyntheticCorpusGenerator generator(GenConfig());
  CorpusManager manager(generator.Generate(300));
  PlainSearchEngine base(manager, 5);
  AsSimpleConfig config;
  config.gamma = 2.0;
  AsSimpleEngine engine(base, config);

  manager.Apply(AddDocs(generator, 512 - 300));
  engine.MigrateToCurrentEpoch();
  EXPECT_EQ(engine.segment().corpus_size(), 512u);
  EXPECT_EQ(engine.segment().segment_index(), 9);
  EXPECT_DOUBLE_EQ(engine.segment().mu(), 1.0);
  EXPECT_DOUBLE_EQ(engine.segment().lhs_keep_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(engine.segment().edge_keep_probability(), 0.5);
}

TEST(EpochMigrationTest, GrowThenShrinkRestoresSegment) {
  // Adding documents and then removing the same number returns to the
  // original segment arithmetic bit-for-bit (μ depends only on n and γ).
  SyntheticCorpusGenerator generator(GenConfig());
  CorpusManager manager(generator.Generate(400));
  PlainSearchEngine base(manager, 5);
  AsSimpleEngine engine(base, AsSimpleConfig{});
  const IndistinguishableSegment original = engine.segment();

  manager.Apply(AddDocs(generator, 200));
  engine.MigrateToCurrentEpoch();
  EXPECT_NE(engine.segment().corpus_size(), original.corpus_size());

  // Remove 200 of the 600 documents (every 3rd position).
  manager.Apply(RemoveEveryNth(manager.Current()->corpus(), 3));
  engine.MigrateToCurrentEpoch();
  ExpectSegmentsEqual(engine.segment(), original);
  EXPECT_EQ(engine.stats().epoch_migrations, 2u);
}

TEST(EpochMigrationTest, MigratedSegmentMatchesFreshDefense) {
  // After any migration chain, the maintained engine's segment must be
  // indistinguishable from a defense constructed fresh on the same base.
  SyntheticCorpusGenerator generator(GenConfig());
  CorpusManager manager(generator.Generate(333));
  PlainSearchEngine base(manager, 5);
  AsSimpleEngine maintained(base, AsSimpleConfig{});
  manager.Apply(AddDocs(generator, 167));
  manager.Apply(RemoveEveryNth(manager.Current()->corpus(), 7));
  maintained.MigrateToCurrentEpoch();

  AsSimpleEngine fresh(base, AsSimpleConfig{});
  ExpectSegmentsEqual(maintained.segment(), fresh.segment());
  EXPECT_EQ(maintained.StateEpoch(), fresh.StateEpoch());
}

TEST(EpochMigrationTest, ThetaRRemapSurvivesAddsAndDropsRemovedDocs) {
  SyntheticCorpusGenerator generator(GenConfig());
  CorpusManager manager(generator.Generate(500));
  PlainSearchEngine base(manager, 5);
  AsSimpleEngine engine(base, AsSimpleConfig{});

  const Vocabulary& vocabulary = manager.Current()->corpus().vocabulary();
  for (const char* text : {"sports", "game", "team", "score", "league",
                           "sports game", "sports team", "game score"}) {
    engine.Search(KeywordQuery::Parse(vocabulary, text));
  }
  ASSERT_GT(engine.NumActivatedDocs(), 0u);
  std::set<DocId> activated;
  for (const Document& doc : manager.Current()->corpus().documents()) {
    if (engine.IsActivated(doc.id())) activated.insert(doc.id());
  }
  ASSERT_EQ(activated.size(), engine.NumActivatedDocs());

  // Pure growth: every activated document survives the remap.
  manager.Apply(AddDocs(generator, 120));
  engine.MigrateToCurrentEpoch();
  EXPECT_EQ(engine.NumActivatedDocs(), activated.size());
  for (const DocId doc : activated) {
    EXPECT_TRUE(engine.IsActivated(doc));
  }

  // Now remove a slice of the corpus; activation must drop by exactly the
  // number of removed-and-activated documents and survive for the rest.
  const CorpusDelta removal = RemoveEveryNth(manager.Current()->corpus(), 4);
  std::set<DocId> removed(removal.remove.begin(), removal.remove.end());
  size_t removed_activated = 0;
  for (const DocId doc : activated) {
    removed_activated += removed.count(doc);
  }
  ASSERT_GT(removed_activated, 0u);
  manager.Apply(removal);
  engine.MigrateToCurrentEpoch();
  EXPECT_EQ(engine.NumActivatedDocs(), activated.size() - removed_activated);
  for (const DocId doc : activated) {
    if (removed.count(doc) == 0) {
      EXPECT_TRUE(engine.IsActivated(doc));
    }
  }
}

TEST(EpochMigrationTest, ArbiHistoryCompactionDropsRemovedDocs) {
  // AS-ARBI history entries must be compacted on migration: answers lose
  // removed documents (a virtual answer may never resurrect a deleted
  // document), and entries whose answers empty out are dropped entirely.
  SyntheticCorpusConfig topical;
  topical.vocabulary_size = 10000;
  topical.num_topics = 96;
  topical.words_per_topic = 300;
  topical.seed = 99;
  SyntheticCorpusGenerator generator(topical);
  CorpusManager manager(generator.Generate(1050));
  PlainSearchEngine base(manager, 50);
  AsArbiEngine engine(base, AsArbiConfig{});

  const Vocabulary& vocabulary = manager.Current()->corpus().vocabulary();
  for (const char* text : {"sports game", "sports team", "sports score",
                           "sports league", "sports coach"}) {
    engine.Search(KeywordQuery::Parse(vocabulary, text));
  }
  const size_t queries_before = engine.history().NumQueries();
  ASSERT_GT(queries_before, 0u);

  manager.Apply(RemoveEveryNth(manager.Current()->corpus(), 2));
  std::set<DocId> surviving;
  for (const Document& doc : manager.Current()->corpus().documents()) {
    surviving.insert(doc.id());
  }
  engine.MigrateToCurrentEpoch();
  EXPECT_EQ(engine.StateEpoch(), manager.CurrentEpoch());
  EXPECT_EQ(engine.stats().epoch_migrations, 1u);

  EXPECT_LE(engine.history().NumQueries(), queries_before);
  for (size_t i = 0; i < engine.history().NumQueries(); ++i) {
    const HistoryStore::HistoricQuery& entry = engine.history().QueryAt(i);
    EXPECT_FALSE(entry.answer.empty());
    for (const DocId doc : entry.answer) {
      EXPECT_TRUE(surviving.count(doc)) << "historic answer kept a removed "
                                        << "document";
    }
  }
  // Migration is idempotent at the same epoch.
  engine.MigrateToCurrentEpoch();
  EXPECT_EQ(engine.stats().epoch_migrations, 1u);
}

TEST(EpochMigrationTest, LazyMigrationHappensOnNextSearch) {
  // Search() migrates lazily: no explicit MigrateToCurrentEpoch call, just
  // a query arriving after a publish.
  SyntheticCorpusGenerator generator(GenConfig());
  CorpusManager manager(generator.Generate(300));
  PlainSearchEngine base(manager, 5);
  AsSimpleEngine engine(base, AsSimpleConfig{});
  const Vocabulary& vocabulary = manager.Current()->corpus().vocabulary();
  engine.Search(KeywordQuery::Parse(vocabulary, "sports"));
  EXPECT_EQ(engine.stats().epoch_migrations, 0u);

  manager.Apply(AddDocs(generator, 150));
  EXPECT_EQ(engine.StateEpoch(), manager.CurrentEpoch() - 1);
  engine.Search(KeywordQuery::Parse(vocabulary, "game"));
  EXPECT_EQ(engine.StateEpoch(), manager.CurrentEpoch());
  EXPECT_EQ(engine.stats().epoch_migrations, 1u);
  EXPECT_EQ(engine.segment().corpus_size(), 450u);
}

}  // namespace
}  // namespace asup
