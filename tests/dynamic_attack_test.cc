#include <gtest/gtest.h>

#include <cmath>

#include "asup/eval/dynamic_attack_experiment.h"

namespace asup {
namespace {

// The acceptance workload of issue 6: a 10-epoch size-neutral churn stream
// at the harness defaults (n = 300, census estimator). Shared by the
// undefended and the defended runs so both face the byte-identical
// workload.
DynamicAttackConfig AcceptanceConfig() {
  DynamicAttackConfig config;
  config.stream.kind = EpochStreamKind::kChurn;
  config.stream.num_epochs = 9;  // 9 deltas on top of the initial epoch
  return config;
}

// Acceptance criterion, both arms asserted: the dynamic estimator tracks
// the undefended engine within 10% over a 10-epoch churn stream, and under
// AS-ARBI (same seed, same workload) the defense either inflates the
// estimator's error at least 3x or reduces the correlation adversary to
// (approximately) random guessing.
TEST(DynamicAttackTest, AcceptanceChurnUndefendedVsAsArbi) {
  const DynamicAttackConfig config = AcceptanceConfig();
  const DynamicAttackReport none = RunDynamicAttack(config, DefenseKind::kNone);
  const DynamicAttackReport arbi = RunDynamicAttack(config, DefenseKind::kArbi);

  ASSERT_EQ(none.rows.size(), 10u);
  ASSERT_EQ(arbi.rows.size(), 10u);
  EXPECT_EQ(none.workload, EpochStreamKind::kChurn);

  // (a) Convergence: the census estimator recovers the pool-recallable
  // count essentially exactly on the undefended engine.
  EXPECT_LT(none.mean_rel_error, 0.10);
  EXPECT_LT(none.final_rel_error, 0.10);
  for (const DynamicEpochRow& row : none.rows) {
    EXPECT_GT(row.true_value, 0.0);
    EXPECT_LE(row.queries_spent, config.per_epoch_budget);
  }

  // The undefended engine never serves virtually, so the distinguishing
  // game is vacuous there and the advantage must report 0 by definition.
  EXPECT_EQ(none.adversary_report.true_positives +
                none.adversary_report.false_negatives,
            0u);
  EXPECT_EQ(none.adversary_advantage, 0.0);

  // Under AS-ARBI the game is real: a large share of the re-issued pool is
  // served virtually from the history.
  EXPECT_GT(arbi.adversary_report.true_positives +
                arbi.adversary_report.false_negatives,
            0u);

  // (b) The defense holds on at least one front — both arms evaluated, the
  // disjunction asserted exactly as the acceptance criterion states it.
  const bool error_inflated =
      arbi.mean_rel_error >= 3.0 * none.mean_rel_error;
  const bool adversary_blind = std::abs(arbi.adversary_advantage) <= 0.05;
  EXPECT_TRUE(error_inflated || adversary_blind)
      << "arbi mean_rel_error=" << arbi.mean_rel_error
      << " vs none=" << none.mean_rel_error
      << ", advantage=" << arbi.adversary_advantage;

  // Which arm holds is itself a finding worth pinning: at census scale the
  // persistent estimator re-measures post-suppression return degrees and
  // sees through the answer reshaping (see EXPERIMENTS.md), so AS-ARBI's
  // win is making virtual answers indistinguishable: the correlation
  // adversary's advantage over coin flipping stays below 5%.
  EXPECT_TRUE(adversary_blind)
      << "advantage=" << arbi.adversary_advantage;
}

// The paper-predicted degradation (SIMPLE-ADV analysis, Section 4): in the
// transient regime — query budget small against the corpus, Θ_R far from
// saturation — suppression pushes estimates toward the segment top γ^(i+1),
// because documents are counted at first disclosure but re-probed at the
// suppressed return rate. Same scale as eval_privacy_game_test: 17000
// documents sit near the bottom of segment [16384, 32768).
TEST(DynamicAttackTest, SuppressionTransientInflatesEstimates) {
  DynamicAttackConfig config;
  config.corpus_config.vocabulary_size = 10000;
  config.corpus_config.num_topics = 96;
  config.corpus_config.words_per_topic = 300;
  config.initial_corpus_size = 17000;
  config.held_out_size = 3000;
  config.pool_max_df_fraction = 1.0;
  config.per_epoch_budget = 3000;
  config.estimator.maintained_pool_size = 400;
  config.stream.kind = EpochStreamKind::kChurn;
  config.stream.num_epochs = 1;
  config.stream.docs_per_epoch = 500;

  const DynamicAttackReport none = RunDynamicAttack(config, DefenseKind::kNone);
  const DynamicAttackReport simple =
      RunDynamicAttack(config, DefenseKind::kSimple);
  ASSERT_FALSE(none.rows.empty());
  ASSERT_FALSE(simple.rows.empty());

  const DynamicEpochRow& none_first = none.rows.front();
  const DynamicEpochRow& simple_first = simple.rows.front();

  // Budget-constrained but unbiased: 3000 queries against 17000 documents
  // still land within 5% on the undefended engine.
  EXPECT_LT(none_first.rel_error, 0.05);

  // AS-SIMPLE inflates the first-epoch error at least 3x and pushes the
  // estimate upward, toward the segment top — the direction the paper's
  // SIMPLE-ADV margin predicts.
  EXPECT_GE(simple_first.rel_error, 3.0 * none_first.rel_error);
  EXPECT_GT(simple_first.estimate, none_first.estimate);
  EXPECT_GT(simple_first.estimate, simple_first.true_value);
}

// Size-alternating workload: the estimator's per-epoch deltas recover the
// sign of every corpus-size change — the n-delta leakage the suppression
// layer does not hide, even across AS-ARBI (answers are re-frozen per
// epoch, so epoch-to-epoch answer drift tracks the corpus).
TEST(DynamicAttackTest, AlternateStreamLeaksDeltaSigns) {
  DynamicAttackConfig config = AcceptanceConfig();
  config.stream.kind = EpochStreamKind::kAlternate;
  const DynamicAttackReport none = RunDynamicAttack(config, DefenseKind::kNone);

  ASSERT_EQ(none.rows.size(), 10u);
  EXPECT_EQ(none.delta_sign_evaluated, 9u);
  EXPECT_EQ(none.delta_sign_accuracy, 1.0);
  for (const DynamicEpochRow& row : none.rows) {
    EXPECT_GE(row.mu, 1.0);
    EXPECT_LT(row.mu, config.gamma);
  }
}

DynamicAttackReport TinyReport(DefenseKind defense, double est1, double est2) {
  DynamicAttackReport report;
  report.defense = defense;
  DynamicEpochRow row;
  row.epoch = 1;
  row.corpus_size = 200;
  row.true_value = 200.0;
  row.estimate = est1;
  row.rel_error = std::abs(est1 - 200.0) / 200.0;
  report.rows.push_back(row);
  row.epoch = 2;
  row.estimate = est2;
  row.rel_error = std::abs(est2 - 200.0) / 200.0;
  report.rows.push_back(row);
  report.mean_rel_error = (report.rows[0].rel_error + report.rows[1].rel_error) / 2.0;
  return report;
}

TEST(DynamicAttackTest, EpochsCsvZipsRunsByDefense) {
  const std::vector<DynamicAttackReport> runs = {
      TinyReport(DefenseKind::kNone, 200.0, 201.0),
      TinyReport(DefenseKind::kArbi, 230.0, 260.0)};
  const CsvTable table = DynamicAttackEpochsCsv(runs);
  ASSERT_EQ(table.NumColumns(), 7u);  // epoch,n,true + 2 runs x (est,relerr)
  ASSERT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.At(0, 0), 1.0);
  EXPECT_EQ(table.At(0, 1), 200.0);
  EXPECT_EQ(table.At(0, 3), 200.0);  // none_est
  EXPECT_EQ(table.At(1, 5), 260.0);  // arbi_est, epoch 2
}

TEST(DynamicAttackTest, SummaryCsvHasOneRowPerRun) {
  const std::vector<DynamicAttackReport> runs = {
      TinyReport(DefenseKind::kNone, 200.0, 200.0),
      TinyReport(DefenseKind::kSimple, 240.0, 240.0),
      TinyReport(DefenseKind::kArbi, 260.0, 260.0)};
  const CsvTable table = DynamicAttackSummaryCsv(runs);
  ASSERT_EQ(table.NumRows(), 3u);
  EXPECT_EQ(table.At(0, 0), 0.0);
  EXPECT_EQ(table.At(1, 0), 1.0);
  EXPECT_EQ(table.At(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(table.At(1, 1), 0.2);  // mean relerr of the 240 run
}

}  // namespace
}  // namespace asup
